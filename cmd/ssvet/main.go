// Command ssvet is the repository's custom vet tool. It implements the
// `go vet -vettool` unitchecker protocol with no dependency on
// golang.org/x/tools: the go command invokes it once per package with a
// JSON config file describing the sources and the export data of every
// dependency, and ssvet typechecks the package and runs the passes in
// tools/analyzers over it.
//
// Usage (from the repository root):
//
//	go build -o ssvet ./cmd/ssvet
//	go vet -vettool=./ssvet ./...
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"spinstreams/tools/analyzers"
)

// config mirrors the JSON the go command hands a vettool; field names are
// the protocol (see cmd/vendor/golang.org/x/tools/go/analysis/unitchecker
// in the Go distribution).
type config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && args[0] == "-V=full":
		// The go command fingerprints vettools by this line for build
		// caching; the content hash of the executable is the version.
		exe, err := os.Executable()
		if err != nil {
			fatal(err)
		}
		data, err := os.ReadFile(exe)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s version devel comments-go-here buildID=%02x\n", exe, sha256.Sum256(data))
		return
	case len(args) == 1 && args[0] == "-flags":
		// No analyzer exposes flags.
		fmt.Println("[]")
		return
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		if err := run(args[0]); err != nil {
			fatal(err)
		}
		return
	}
	fmt.Fprintf(os.Stderr, "usage: ssvet [-V=full | -flags | package.cfg]\n")
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "ssvet: %v\n", err)
	os.Exit(1)
}

func run(cfgPath string) error {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return err
	}
	var cfg config
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fmt.Errorf("parsing %s: %w", cfgPath, err)
	}
	// ssvet keeps no cross-package facts, but the protocol requires the
	// vetx output to exist for dependents to read.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0o666); err != nil {
			return err
		}
	}
	if cfg.VetxOnly {
		return nil
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return nil
			}
			return err
		}
		files = append(files, f)
	}

	// Imports resolve through the export data the go command supplied:
	// import path -> canonical package path -> export file.
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "source"
	}
	tcfg := types.Config{
		Importer: importer.ForCompiler(fset, compiler, lookup),
		Sizes:    types.SizesFor("gc", build.Default.GOARCH),
	}
	if cfg.GoVersion != "" {
		tcfg.GoVersion = cfg.GoVersion
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
		Instances:  make(map[*ast.Ident]types.Instance),
	}
	pkg, err := tcfg.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil
		}
		return err
	}

	pass := &analyzers.Pass{Fset: fset, Files: files, Pkg: pkg, Info: info}
	type finding struct {
		analyzer *analyzers.Analyzer
		d        analyzers.Diagnostic
	}
	var finds []finding
	for _, a := range analyzers.All {
		for _, d := range a.Run(pass) {
			finds = append(finds, finding{a, d})
			fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.Pos), d.Message)
		}
	}
	// SSVET_SARIF_DIR collects findings as one SARIF log per flagged
	// package (the go command runs one ssvet process per package, so a
	// shared file would race); CI uploads the directory as an artifact.
	if dir := os.Getenv("SSVET_SARIF_DIR"); dir != "" && len(finds) > 0 {
		rules := make([]map[string]any, len(analyzers.All))
		for i, a := range analyzers.All {
			rules[i] = map[string]any{
				"id":               a.Name,
				"shortDescription": map[string]any{"text": a.Doc},
			}
		}
		results := make([]map[string]any, len(finds))
		for i, f := range finds {
			pos := fset.Position(f.d.Pos)
			results[i] = map[string]any{
				"ruleId":  f.analyzer.Name,
				"level":   "error",
				"message": map[string]any{"text": f.d.Message},
				"locations": []map[string]any{{
					"physicalLocation": map[string]any{
						"artifactLocation": map[string]any{"uri": pos.Filename},
						"region":           map[string]any{"startLine": pos.Line, "startColumn": pos.Column},
					},
				}},
			}
		}
		doc := map[string]any{
			"version": "2.1.0",
			"$schema": "https://json.schemastore.org/sarif-2.1.0.json",
			"runs": []map[string]any{{
				"tool":    map[string]any{"driver": map[string]any{"name": "ssvet", "rules": rules}},
				"results": results,
			}},
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return err
		}
		name := strings.ReplaceAll(cfg.ImportPath, "/", "-") + ".sarif"
		if err := os.WriteFile(dir+string(os.PathSeparator)+name, data, 0o644); err != nil {
			return err
		}
	}
	if len(finds) > 0 {
		os.Exit(1)
	}
	return nil
}
