// Command benchgate is the CI benchmark regression gate: it compares a
// freshly measured BenchmarkRuntimeRawThroughput record (written by the
// benchmark under SS_BENCH_JSON) against the committed baseline and fails
// when the batched dataplane regresses beyond the allowed fraction.
//
// The gate is deliberately one-sided and coarse: CI machines are noisy,
// so only a large sustained drop on the headline transport fails the
// build. Other series (per-tuple, the *-obs variants) and the measured
// observability overhead are reported for the log but never fail the
// gate on their own — overhead has a dedicated threshold flag that can be
// enabled on quiet hardware.
//
// Usage:
//
//	go run ./cmd/benchgate -baseline BENCH_runtime.json -candidate BENCH_candidate.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// record mirrors the JSON written by BenchmarkRuntimeRawThroughput. Older
// baselines may lack the obs fields; the gate treats them as absent
// rather than zero.
type record struct {
	Benchmark string             `json:"benchmark"`
	TuplesPer map[string]float64 `json:"tuples_per_sec"`
	ObsOver   map[string]float64 `json:"obs_overhead"`
}

func load(path string) (*record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.TuplesPer) == 0 {
		return nil, fmt.Errorf("%s: no tuples_per_sec series", path)
	}
	return &r, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_runtime.json", "committed baseline record")
	candidatePath := flag.String("candidate", "", "freshly measured record (required)")
	maxRegression := flag.Float64("max-regression", 0.20, "max allowed fractional drop in batched throughput")
	maxObsOverhead := flag.Float64("max-obs-overhead", 0, "fail if candidate obs_overhead exceeds this fraction (0 disables)")
	flag.Parse()

	if *candidatePath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -candidate is required")
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: baseline: %v\n", err)
		os.Exit(2)
	}
	cand, err := load(*candidatePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: candidate: %v\n", err)
		os.Exit(2)
	}

	// Report every series both records share, sorted for stable logs.
	keys := make([]string, 0, len(base.TuplesPer))
	for k := range base.TuplesPer {
		if _, ok := cand.TuplesPer[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		b, c := base.TuplesPer[k], cand.TuplesPer[k]
		change := 0.0
		if b > 0 {
			change = c/b - 1
		}
		fmt.Printf("%-14s baseline %12.0f t/s  candidate %12.0f t/s  %+6.1f%%\n", k, b, c, change*100)
	}
	for _, k := range []string{"per-tuple", "batched"} {
		if ov, ok := cand.ObsOver[k]; ok {
			fmt.Printf("%-14s obs overhead %5.1f%%\n", k, ov*100)
		}
	}

	failed := false
	// The gate proper: the batched transport is the dataplane headline
	// (PR 1's ~7x speedup); a large drop there is what the gate exists
	// to catch.
	b, okB := base.TuplesPer["batched"]
	c, okC := cand.TuplesPer["batched"]
	switch {
	case !okB || !okC:
		fmt.Fprintln(os.Stderr, "benchgate: batched series missing from baseline or candidate")
		failed = true
	case b <= 0:
		fmt.Fprintln(os.Stderr, "benchgate: baseline batched throughput is not positive")
		failed = true
	case c < b*(1-*maxRegression):
		fmt.Fprintf(os.Stderr, "benchgate: FAIL batched throughput %.0f t/s is %.1f%% below baseline %.0f t/s (limit %.0f%%)\n",
			c, (1-c/b)*100, b, *maxRegression*100)
		failed = true
	}
	if *maxObsOverhead > 0 {
		for k, ov := range cand.ObsOver {
			if ov > *maxObsOverhead {
				fmt.Fprintf(os.Stderr, "benchgate: FAIL %s obs overhead %.1f%% exceeds %.1f%%\n",
					k, ov*100, *maxObsOverhead*100)
				failed = true
			}
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}
