// Command benchgate is the CI benchmark regression gate: it compares a
// freshly measured BenchmarkRuntimeRawThroughput record (written by the
// benchmark under SS_BENCH_JSON) against the committed baseline and fails
// when the batched dataplane regresses beyond the allowed fraction.
//
// The gate is deliberately one-sided and coarse: CI machines are noisy,
// so only a large sustained drop on the headline transport fails the
// build. The optional -min-spsc-factor gate instead compares two series
// inside the candidate record (spsc vs batched), which is noise-robust
// and holds the single-producer ring to an actual speedup. Other series (per-tuple, the *-obs and *-est variants) and the
// measured observability/estimator overheads are reported for the log but
// never fail the gate on their own — each overhead has a dedicated
// threshold flag that can be enabled on quiet hardware.
//
// Usage:
//
//	go run ./cmd/benchgate -baseline BENCH_runtime.json -candidate BENCH_candidate.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

// record mirrors the JSON written by BenchmarkRuntimeRawThroughput. Older
// baselines may lack the obs fields; the gate treats them as absent
// rather than zero.
type record struct {
	Benchmark string             `json:"benchmark"`
	TuplesPer map[string]float64 `json:"tuples_per_sec"`
	ObsOver   map[string]float64 `json:"obs_overhead"`
	// EstOver is the occupancy sampler's throughput cost over the *-obs
	// baseline (the probe-free estimator's only dataplane footprint).
	EstOver map[string]float64 `json:"est_overhead"`
	// ReconfigStallP99Ms is BenchmarkReconfigStall's p99 pause-fence
	// stall, merged into the same record; zero when the benchmark did not
	// run (older baselines), which disables the stall gate.
	ReconfigStallP99Ms float64 `json:"reconfig_stall_p99_ms"`
}

// optRecord mirrors the JSON written by BenchmarkSolverCacheAutoFuse in
// internal/opt: how many steady-state solves a direct solver performs on
// the autofuse workload versus how many the memoizing cache actually
// computes. The ratio is structural (it depends on the candidate count,
// not on wall clock), so unlike the throughput gate it is tight: the
// optimizer claims at least a 2x reduction, and the gate holds it to
// that.
type optRecord struct {
	Benchmark string  `json:"benchmark"`
	Graphs    int     `json:"graphs"`
	Direct    int     `json:"direct_solves"`
	Cached    int     `json:"cached_solves"`
	Ratio     float64 `json:"ratio"`
}

func loadOpt(path string) (*optRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r optRecord
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if r.Cached <= 0 || r.Direct <= 0 {
		return nil, fmt.Errorf("%s: solve counts missing or non-positive", path)
	}
	return &r, nil
}

func load(path string) (*record, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r record
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.TuplesPer) == 0 {
		return nil, fmt.Errorf("%s: no tuples_per_sec series", path)
	}
	return &r, nil
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_runtime.json", "committed baseline record")
	candidatePath := flag.String("candidate", "", "freshly measured record (required)")
	maxRegression := flag.Float64("max-regression", 0.20, "max allowed fractional drop in batched throughput")
	minSPSCFactor := flag.Float64("min-spsc-factor", 0, "fail unless candidate spsc throughput is at least this multiple of its batched throughput (0 disables)")
	maxObsOverhead := flag.Float64("max-obs-overhead", 0, "fail if candidate obs_overhead exceeds this fraction (0 disables)")
	maxEstOverhead := flag.Float64("max-est-overhead", 0, "fail if the candidate's batched est_overhead (occupancy sampler cost over the obs baseline) exceeds this fraction (0 disables)")
	maxStallFactor := flag.Float64("max-stall-factor", 4.0, "max allowed growth factor of the reconfiguration p99 stall over baseline")
	stallFloorMs := flag.Float64("stall-floor-ms", 1.0, "ignore stall regressions while the candidate p99 stays under this many ms (scheduler noise floor)")
	optBaselinePath := flag.String("opt-baseline", "BENCH_optimizer.json", "committed solver-cache baseline record")
	optCandidatePath := flag.String("opt-candidate", "", "freshly measured solver-cache record (enables the optimizer gate)")
	minOptRatio := flag.Float64("min-opt-ratio", 2.0, "min direct/cached solve ratio for the optimizer gate")
	flag.Parse()

	if *optCandidatePath != "" {
		gateOptimizer(*optBaselinePath, *optCandidatePath, *minOptRatio)
		if *candidatePath == "" {
			fmt.Println("benchgate: ok")
			return
		}
	}
	if *candidatePath == "" {
		fmt.Fprintln(os.Stderr, "benchgate: -candidate is required")
		os.Exit(2)
	}
	base, err := load(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: baseline: %v\n", err)
		os.Exit(2)
	}
	cand, err := load(*candidatePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: candidate: %v\n", err)
		os.Exit(2)
	}

	// Report every series both records share, sorted for stable logs.
	keys := make([]string, 0, len(base.TuplesPer))
	for k := range base.TuplesPer {
		if _, ok := cand.TuplesPer[k]; ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		b, c := base.TuplesPer[k], cand.TuplesPer[k]
		change := 0.0
		if b > 0 {
			change = c/b - 1
		}
		fmt.Printf("%-14s baseline %12.0f t/s  candidate %12.0f t/s  %+6.1f%%\n", k, b, c, change*100)
	}
	for _, k := range []string{"per-tuple", "batched", "spsc"} {
		if ov, ok := cand.ObsOver[k]; ok {
			fmt.Printf("%-14s obs overhead %5.1f%%\n", k, ov*100)
		}
	}
	for _, k := range []string{"per-tuple", "batched"} {
		if ov, ok := cand.EstOver[k]; ok {
			fmt.Printf("%-14s est overhead %5.1f%%\n", k, ov*100)
		}
	}

	failed := false
	// The gate proper: the batched transport is the dataplane headline
	// (PR 1's ~7x speedup); a large drop there is what the gate exists
	// to catch.
	b, okB := base.TuplesPer["batched"]
	c, okC := cand.TuplesPer["batched"]
	switch {
	case !okB || !okC:
		fmt.Fprintln(os.Stderr, "benchgate: batched series missing from baseline or candidate")
		failed = true
	case b <= 0:
		fmt.Fprintln(os.Stderr, "benchgate: baseline batched throughput is not positive")
		failed = true
	case c < b*(1-*maxRegression):
		fmt.Fprintf(os.Stderr, "benchgate: FAIL batched throughput %.0f t/s is %.1f%% below baseline %.0f t/s (limit %.0f%%)\n",
			c, (1-c/b)*100, b, *maxRegression*100)
		failed = true
	}
	// The SPSC gate is a ratio within the candidate record, not a
	// baseline comparison: both series ran on the same machine in the same
	// process, so host noise largely cancels and the single-producer ring
	// must actually beat the batched MPSC path it specializes.
	if *minSPSCFactor > 0 {
		s, okS := cand.TuplesPer["spsc"]
		switch {
		case !okS || !okC || c <= 0:
			fmt.Fprintln(os.Stderr, "benchgate: FAIL spsc gate enabled but candidate lacks spsc or batched series")
			failed = true
		case s < c**minSPSCFactor:
			fmt.Fprintf(os.Stderr, "benchgate: FAIL spsc throughput %.0f t/s is %.2fx batched %.0f t/s (need %.2fx)\n",
				s, s/c, c, *minSPSCFactor)
			failed = true
		default:
			fmt.Printf("%-14s spsc/batched factor %.2fx (gate %.2fx)\n", "spsc", s/c, *minSPSCFactor)
		}
	}
	if *maxObsOverhead > 0 {
		for k, ov := range cand.ObsOver {
			if ov > *maxObsOverhead {
				fmt.Fprintf(os.Stderr, "benchgate: FAIL %s obs overhead %.1f%% exceeds %.1f%%\n",
					k, ov*100, *maxObsOverhead*100)
				failed = true
			}
		}
	}
	// The estimator gate covers only the batched series — the headline
	// transport the throughput gate also watches; the per-tuple est
	// overhead is reported above but never fails the build (the slow
	// transport's relative noise would make it flaky).
	if *maxEstOverhead > 0 {
		ov, ok := cand.EstOver["batched"]
		switch {
		case !ok:
			fmt.Fprintln(os.Stderr, "benchgate: FAIL est gate enabled but candidate has no batched est_overhead")
			failed = true
		case ov > *maxEstOverhead:
			fmt.Fprintf(os.Stderr, "benchgate: FAIL batched est overhead %.1f%% exceeds %.1f%%\n",
				ov*100, *maxEstOverhead*100)
			failed = true
		}
	}
	// The reconfiguration stall gate: live ApplyDelta pauses only the
	// rescaled stations, and the fence must stay cheap. Active only when
	// both records carry the metric; sub-millisecond candidates are inside
	// scheduler noise and never fail.
	if base.ReconfigStallP99Ms > 0 && cand.ReconfigStallP99Ms > 0 {
		fmt.Printf("%-14s baseline p99 %8.3f ms  candidate %8.3f ms  %+6.1f%%\n",
			"reconfig-stall", base.ReconfigStallP99Ms, cand.ReconfigStallP99Ms,
			(cand.ReconfigStallP99Ms/base.ReconfigStallP99Ms-1)*100)
		if cand.ReconfigStallP99Ms > *stallFloorMs &&
			cand.ReconfigStallP99Ms > base.ReconfigStallP99Ms**maxStallFactor {
			fmt.Fprintf(os.Stderr, "benchgate: FAIL reconfiguration p99 stall %.3f ms exceeds %.1fx baseline %.3f ms\n",
				cand.ReconfigStallP99Ms, *maxStallFactor, base.ReconfigStallP99Ms)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
	fmt.Println("benchgate: ok")
}

// gateOptimizer enforces the solver-cache claim: the memoizing solver
// must perform at least minRatio times fewer steady-state solves than a
// direct solver on the autofuse workload. Exits non-zero on failure.
func gateOptimizer(baselinePath, candidatePath string, minRatio float64) {
	cand, err := loadOpt(candidatePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchgate: opt candidate: %v\n", err)
		os.Exit(2)
	}
	ratio := float64(cand.Direct) / float64(cand.Cached)
	fmt.Printf("%-14s %d graphs: %d direct solves, %d cached solves, ratio %.2fx\n",
		"solver-cache", cand.Graphs, cand.Direct, cand.Cached, ratio)
	if base, err := loadOpt(baselinePath); err != nil {
		// The baseline is informational for this gate (the ratio bound
		// is absolute), so a missing one is reported but not fatal.
		fmt.Fprintf(os.Stderr, "benchgate: opt baseline: %v (skipping comparison)\n", err)
	} else {
		baseRatio := float64(base.Direct) / float64(base.Cached)
		fmt.Printf("%-14s baseline ratio %.2fx  candidate %+.1f%%\n",
			"solver-cache", baseRatio, (ratio/baseRatio-1)*100)
	}
	if ratio < minRatio {
		fmt.Fprintf(os.Stderr, "benchgate: FAIL solver-cache ratio %.2fx is below the required %.2fx\n",
			ratio, minRatio)
		os.Exit(1)
	}
}
