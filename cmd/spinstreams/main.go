// Command spinstreams is the CLI front-end of the static optimization
// tool: the workflow the paper drives through its GUI (Section 4.1),
// exposed as subcommands over the XML topology formalism.
//
// Usage:
//
//	spinstreams analyze    -in topo.xml
//	spinstreams optimize   -in topo.xml [-out opt.xml] [-max-replicas N] [-fuse] [-trace-json trace.json] [-trace-dot trace.dot]
//	spinstreams candidates -in topo.xml
//	spinstreams fuse       -in topo.xml -members op3,op4,op5 [-name F] [-out fused.xml]
//	spinstreams generate   -in topo.xml -out main.go [-members ...]
//	spinstreams run        -in topo.xml [-duration 5s] [-replicas auto] [-drift] [-reoptimize]
//	spinstreams run        -in topo.xml -autotune [-autotune-rounds N] [-autotune-interval 2s] [-reconfig-stall-budget 1s]
//	spinstreams simulate   -in topo.xml [-horizon 40]
//	spinstreams vet        -in topo.xml [-members ...] [-trace trace.json] [-format text|json|sarif] [-o report]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"spinstreams/internal/codegen"
	"spinstreams/internal/core"
	"spinstreams/internal/dot"
	mbox "spinstreams/internal/mailbox"
	"spinstreams/internal/obs"
	"spinstreams/internal/operators"
	"spinstreams/internal/opt"
	"spinstreams/internal/plan"
	"spinstreams/internal/profiler"
	"spinstreams/internal/qsim"
	"spinstreams/internal/runtime"
	"spinstreams/internal/xmlio"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "spinstreams:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		usage()
		return fmt.Errorf("missing subcommand")
	}
	switch args[0] {
	case "analyze":
		return cmdAnalyze(args[1:])
	case "optimize":
		return cmdOptimize(args[1:])
	case "candidates":
		return cmdCandidates(args[1:])
	case "fuse":
		return cmdFuse(args[1:])
	case "autofuse":
		return cmdAutoFuse(args[1:])
	case "dot":
		return cmdDot(args[1:])
	case "generate":
		return cmdGenerate(args[1:])
	case "run":
		return cmdRun(args[1:])
	case "simulate":
		return cmdSimulate(args[1:])
	case "profile":
		return cmdProfile(args[1:])
	case "vet":
		return cmdVet(args[1:])
	case "help", "-h", "--help":
		usage()
		return nil
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `spinstreams — static optimization tool for stream processing topologies

subcommands:
  analyze     steady-state throughput prediction under backpressure
  optimize    bottleneck elimination via operator fission
  candidates  ranked operator-fusion suggestions
  fuse        fuse a subgraph into a meta-operator and predict the outcome
  autofuse    repeatedly apply safe fusions automatically
  dot         render the topology (optionally annotated) as Graphviz DOT
  generate    emit a runnable Go program for the topology
  run         execute the topology on the goroutine runtime
  simulate    run the discrete-event simulation
  profile     measure the catalog operators (service time, selectivity)
  vet         statically verify a topology (structure, cost model, rewrite traces)
`)
}

func loadTopology(path string) (*core.Topology, error) {
	if path == "" {
		return nil, fmt.Errorf("-in is required")
	}
	return xmlio.ReadFile(path)
}

func printAnalysis(t *core.Topology, a *core.Analysis, replicas bool) {
	fmt.Printf("%-28s %-22s %12s %12s %10s", "operator", "kind", "arrive(t/s)", "depart(t/s)", "rho")
	if replicas {
		fmt.Printf(" %9s", "replicas")
	}
	fmt.Println()
	for i := 0; i < t.Len(); i++ {
		op := t.Op(core.OpID(i))
		fmt.Printf("%-28s %-22s %12.1f %12.1f %10.3f", op.Name, op.Kind, a.Lambda[i], a.Delta[i], a.Rho[i])
		if replicas {
			fmt.Printf(" %9d", a.Replicas[i])
		}
		fmt.Println()
	}
	fmt.Printf("predicted throughput: %.1f items/s\n", a.Throughput())
	if a.Bottlenecked() {
		names := make([]string, 0, len(a.Limiting))
		for _, id := range a.Limiting {
			names = append(names, t.Op(id).Name)
		}
		fmt.Printf("limiting operators: %s\n", strings.Join(names, ", "))
	}
}

func cmdAnalyze(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	in := fs.String("in", "", "input topology XML")
	latency := fs.Bool("latency", false, "also estimate per-operator and end-to-end latency (M/M/1)")
	mailbox := fs.Int("mailbox", 64, "mailbox capacity assumed for saturated operators")
	if err := fs.Parse(args); err != nil {
		return err
	}
	t, err := loadTopology(*in)
	if err != nil {
		return err
	}
	a, err := core.SteadyState(t)
	if errors.Is(err, core.ErrCyclic) {
		fmt.Println("topology has feedback edges: using the cyclic traffic-equation analysis")
		a, err = core.SteadyStateCyclic(t)
	}
	if err != nil {
		return err
	}
	printAnalysis(t, a, false)
	if *latency {
		est, err := core.EstimateLatency(t, a, core.MM1, *mailbox)
		if err != nil {
			return err
		}
		fmt.Printf("%-28s %14s %14s\n", "operator", "wait(ms)", "sojourn(ms)")
		for i := 0; i < t.Len(); i++ {
			fmt.Printf("%-28s %14.3f %14.3f\n",
				t.Op(core.OpID(i)).Name, est.Wait[i]*1e3, est.Sojourn[i]*1e3)
		}
		fmt.Printf("expected end-to-end latency: %.3f ms\n", est.EndToEnd*1e3)
		for _, v := range est.Saturated {
			fmt.Printf("saturated (buffer-bound delay): %s\n", t.Op(v).Name)
		}
	}
	return nil
}

// writeTrace exports a pipeline result's rewrite trace as JSON and/or a
// DOT overlay of the final topology.
func writeTrace(res *opt.Result, jsonPath, dotPath string) error {
	if jsonPath != "" {
		data, err := res.Trace.JSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote %s (schema %s)\n", jsonPath, opt.TraceSchema)
	}
	if dotPath != "" {
		f, err := os.Create(dotPath)
		if err != nil {
			return err
		}
		if err := dot.WriteOverlay(f, res, dot.Options{Name: "rewrite-overlay", RankLR: true}); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", dotPath)
	}
	return nil
}

func cmdOptimize(args []string) error {
	fs := flag.NewFlagSet("optimize", flag.ContinueOnError)
	in := fs.String("in", "", "input topology XML")
	out := fs.String("out", "", "write the optimized topology XML here (replica degrees included)")
	maxReplicas := fs.Int("max-replicas", 0, "replica budget (0 = unbounded)")
	emitter := fs.Duration("emitter-cost", 0, "emitter/collector service time for the saturation check")
	fuse := fs.Bool("fuse", false, "also run the fusion pass after bottleneck elimination")
	traceJSON := fs.String("trace-json", "", "write the structured rewrite trace (JSON) here")
	traceDot := fs.String("trace-dot", "", "write the rewrite trace as an annotated DOT overlay here")
	vet := fs.Bool("vet", false, "print positioned vet diagnostics for the input before optimizing")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *vet {
		if err := preVet(*in, false); err != nil {
			return err
		}
	}
	t, err := loadTopology(*in)
	if err != nil {
		return err
	}
	res, err := opt.Run(t, opt.Options{
		Fission: core.FissionOptions{
			MaxReplicas:        *maxReplicas,
			EmitterServiceTime: emitter.Seconds(),
		},
		DisableFusion: !*fuse,
	})
	if err != nil {
		return err
	}
	fis := res.Fission
	printAnalysis(t, fis.Analysis, true)
	fmt.Printf("total replicas: %d (%d additional)\n", fis.TotalReplicas, fis.AdditionalReplicas)
	if fis.Capped {
		fmt.Println("replica budget capped the parallelization")
	}
	for _, u := range fis.Unresolved {
		fmt.Printf("unresolved bottleneck: %s (%s)\n", t.Op(u).Name, t.Op(u).Kind)
	}
	if *fuse && res.Fusion != nil {
		for _, step := range res.Fusion.Steps {
			fmt.Printf("fused {%s} -> %s (T=%.3f ms, rho=%.2f)\n",
				strings.Join(step.MemberNames, ", "), step.FusedName, step.ServiceTime*1e3, step.Utilization)
		}
	}
	if *out != "" {
		if err := xmlio.WriteFileOptimized(*out, "optimized", res.Final.Topology(), res.Replicas()); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return writeTrace(res, *traceJSON, *traceDot)
}

func cmdCandidates(args []string) error {
	fs := flag.NewFlagSet("candidates", flag.ContinueOnError)
	in := fs.String("in", "", "input topology XML")
	if err := fs.Parse(args); err != nil {
		return err
	}
	t, err := loadTopology(*in)
	if err != nil {
		return err
	}
	cands, err := core.FusionCandidates(t, nil)
	if err != nil {
		return err
	}
	if len(cands) == 0 {
		fmt.Println("no feasible fusion candidates")
		return nil
	}
	fmt.Printf("%-40s %12s %14s\n", "members", "fused rho", "fused T (ms)")
	for _, c := range cands {
		names := make([]string, 0, len(c.Members))
		for _, m := range c.Members {
			names = append(names, t.Op(m).Name)
		}
		fmt.Printf("%-40s %12.3f %14.3f\n", strings.Join(names, ","), c.FusedUtilization, c.ServiceTime*1e3)
	}
	return nil
}

func parseMembers(t *core.Topology, list string) ([]core.OpID, error) {
	if list == "" {
		return nil, fmt.Errorf("-members is required (comma-separated operator names)")
	}
	var members []core.OpID
	for _, name := range strings.Split(list, ",") {
		id, ok := t.Lookup(strings.TrimSpace(name))
		if !ok {
			return nil, fmt.Errorf("unknown operator %q", name)
		}
		members = append(members, id)
	}
	sort.Slice(members, func(a, b int) bool { return members[a] < members[b] })
	return members, nil
}

func cmdFuse(args []string) error {
	fs := flag.NewFlagSet("fuse", flag.ContinueOnError)
	in := fs.String("in", "", "input topology XML")
	out := fs.String("out", "", "write the fused topology XML here")
	list := fs.String("members", "", "comma-separated names of the subgraph to fuse")
	name := fs.String("name", "", "meta-operator name")
	if err := fs.Parse(args); err != nil {
		return err
	}
	t, err := loadTopology(*in)
	if err != nil {
		return err
	}
	members, err := parseMembers(t, *list)
	if err != nil {
		return err
	}
	fused, report, err := core.Fuse(t, members, *name)
	if err != nil {
		return err
	}
	fmt.Printf("fused service time: %.3f ms\n", report.ServiceTime*1e3)
	fmt.Printf("throughput: %.1f -> %.1f items/s (predicted)\n", report.ThroughputBefore, report.ThroughputAfter)
	if report.IntroducesBottleneck {
		fmt.Printf("ALERT: fusion introduces a bottleneck (%.0f%% degradation predicted)\n", report.Degradation()*100)
	} else {
		fmt.Println("fusion is feasible: no bottleneck introduced")
	}
	printAnalysis(fused, report.After, false)
	if *out != "" {
		if err := xmlio.WriteFile(*out, "fused", fused); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return nil
}

func cmdDot(args []string) error {
	fs := flag.NewFlagSet("dot", flag.ContinueOnError)
	in := fs.String("in", "", "input topology XML")
	out := fs.String("out", "", "output .dot file (default stdout)")
	annotate := fs.Bool("annotate", true, "color nodes by steady-state utilization")
	optimize := fs.Bool("optimize", false, "annotate with the bottleneck-elimination result")
	if err := fs.Parse(args); err != nil {
		return err
	}
	t, err := loadTopology(*in)
	if err != nil {
		return err
	}
	opts := dot.Options{Name: "spinstreams", RankLR: true}
	if *optimize {
		fis, err := core.EliminateBottlenecks(t, core.FissionOptions{})
		if err != nil {
			return err
		}
		opts.Analysis = fis.Analysis
	} else if *annotate {
		a, err := core.SteadyState(t)
		if err != nil {
			return err
		}
		opts.Analysis = a
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return dot.Write(w, t, opts)
}

func cmdAutoFuse(args []string) error {
	fs := flag.NewFlagSet("autofuse", flag.ContinueOnError)
	in := fs.String("in", "", "input topology XML")
	out := fs.String("out", "", "write the fused topology XML here")
	maxRho := fs.Float64("max-utilization", 0.9, "reject fusions whose meta-operator exceeds this utilization")
	traceJSON := fs.String("trace-json", "", "write the structured rewrite trace (JSON) here")
	traceDot := fs.String("trace-dot", "", "write the rewrite trace as an annotated DOT overlay here")
	if err := fs.Parse(args); err != nil {
		return err
	}
	t, err := loadTopology(*in)
	if err != nil {
		return err
	}
	pres, err := opt.Run(t, opt.Options{
		Fusion:         core.AutoFuseOptions{MaxUtilization: *maxRho},
		DisableFission: true,
	})
	if err != nil {
		return err
	}
	res := pres.Fusion
	for _, step := range res.Steps {
		fmt.Printf("fused {%s} -> %s (T=%.3f ms, rho=%.2f)\n",
			strings.Join(step.MemberNames, ", "), step.FusedName, step.ServiceTime*1e3, step.Utilization)
	}
	fmt.Printf("operators: %d -> %d; predicted throughput: %.1f -> %.1f items/s\n",
		res.OperatorsBefore, res.OperatorsAfter, res.ThroughputBefore, res.ThroughputAfter)
	if *out != "" {
		if err := xmlio.WriteFile(*out, "autofused", res.Topology); err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *out)
	}
	return writeTrace(pres, *traceJSON, *traceDot)
}

func cmdProfile(args []string) error {
	fs := flag.NewFlagSet("profile", flag.ContinueOnError)
	samples := fs.Int("samples", 20000, "sample items per operator")
	seed := fs.Uint64("seed", 1, "synthetic input seed")
	if err := fs.Parse(args); err != nil {
		return err
	}
	fmt.Printf("%-18s %-22s %14s %10s %10s\n", "operator", "kind", "service(us)", "in-sel", "out-sel")
	for _, name := range operators.Catalog() {
		op, err := operators.Build(operators.Spec{Impl: name, WindowLen: 1000, Slide: 10, Seed: *seed})
		if err != nil {
			return err
		}
		prof, err := profiler.Measure(op, profiler.Config{Samples: *samples, Seed: *seed})
		if err != nil {
			return err
		}
		fmt.Printf("%-18s %-22s %14.2f %10.2f %10.3f\n",
			name, op.Meta().Kind, prof.ServiceTime*1e6, prof.InputSelectivity, prof.OutputSelectivity)
	}
	return nil
}

// specsFromImpls derives operator specs from the topology's Impl fields.
func specsFromImpls(t *core.Topology) []operators.Spec {
	specs := make([]operators.Spec, t.Len())
	for i := 0; i < t.Len(); i++ {
		op := t.Op(core.OpID(i))
		impl := op.Impl
		if op.Kind == core.KindSource {
			impl = "source"
		}
		if impl == "" {
			impl = "identity"
		}
		spec := operators.Spec{Impl: impl}
		if op.Keys != nil {
			spec.NumKeys = len(op.Keys.Freq)
		}
		if op.InputSelectivity > 1 {
			spec.WindowLen = int(op.InputSelectivity) * 10
			spec.Slide = int(op.InputSelectivity)
		}
		specs[i] = spec
	}
	return specs
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ContinueOnError)
	in := fs.String("in", "", "input topology XML")
	out := fs.String("out", "", "output .go file (default stdout)")
	list := fs.String("members", "", "optional subgraph to fuse in the generated program")
	optimize := fs.Bool("optimize", false, "embed the bottleneck-elimination replication degrees")
	if err := fs.Parse(args); err != nil {
		return err
	}
	t, err := loadTopology(*in)
	if err != nil {
		return err
	}
	input := codegen.Input{Topology: t, Specs: specsFromImpls(t)}
	if *list != "" {
		input.FuseMembers, err = parseMembers(t, *list)
		if err != nil {
			return err
		}
	}
	if *optimize {
		fis, err := core.EliminateBottlenecks(t, core.FissionOptions{})
		if err != nil {
			return err
		}
		input.Replicas = fis.Analysis.Replicas
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return codegen.Generate(w, input)
}

func cmdRun(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	in := fs.String("in", "", "input topology XML")
	duration := fs.Duration("duration", 5*time.Second, "run length")
	mailbox := fs.Int("mailbox", 64, "mailbox capacity (tuples)")
	seed := fs.Uint64("seed", 1, "random seed")
	optimize := fs.Bool("optimize", false, "apply bottleneck elimination before running")
	nodes := fs.Int("nodes", 1, "partition the plan across N TCP-connected nodes")
	mode := fs.String("mailbox-mode", "tuple", "dataplane transport: tuple (one channel send per item), batch (pooled micro-batches), spsc or auto (lock-free ring on analyzer-proven single-producer edges, batch elsewhere)")
	batch := fs.Int("batch", 0, "micro-batch size in batch mode (0 = runtime default)")
	linger := fs.Duration("linger", 0, "max wait before a partial batch is flushed (0 = runtime default)")
	warmup := fs.Duration("warmup", 0, "measurement warmup excluded from the window (0 = duration/4; must be < duration)")
	maxRestarts := fs.Int("max-restarts", 0, "restart a panicked operator up to N times, then degrade (0 = crash, <0 = unlimited)")
	retryBackoff := fs.Duration("retry-backoff", 0, "initial redial backoff for failed cross-node sends with -nodes > 1 (0 = default 2ms)")
	sendDeadline := fs.Duration("send-deadline", 0, "per-frame retry deadline for cross-node sends with -nodes > 1 (0 = default 2s, <0 = fail fast)")
	metricsAddr := fs.String("metrics-addr", "", "serve live metrics over HTTP on this address (/metrics Prometheus text, /snapshot JSON, /debug/vars expvar)")
	drift := fs.Bool("drift", false, "after the run, compare the cost model's predictions against the measured rates")
	reoptimize := fs.Bool("reoptimize", false, "after the run, re-run the optimizer on the measured profiles and print the delta plan")
	autotune := fs.Bool("autotune", false, "close the loop live: measure, re-optimize, and apply delta plans in-flight without a restart")
	autotuneRounds := fs.Int("autotune-rounds", 2, "measure/re-optimize/apply rounds with -autotune")
	autotuneInterval := fs.Duration("autotune-interval", 2*time.Second, "measurement window per autotune round")
	estimator := fs.Bool("estimator", false, "probe-free measurement: reconstruct service rates online from periodic mailbox-occupancy sampling instead of timed probes")
	estimatorInterval := fs.Duration("estimator-interval", 0, "occupancy sampling tick with -estimator (0 = 1ms default)")
	stallBudget := fs.Duration("reconfig-stall-budget", time.Second, "max pause a live reconfiguration may hold before it aborts")
	vet := fs.Bool("vet", false, "print positioned vet diagnostics for the input before running")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *vet {
		if err := preVet(*in, false); err != nil {
			return err
		}
	}
	// Flag-level validation: the library treats zero as "use default",
	// so nonsense explicitly typed on the command line is rejected here.
	if *mailbox <= 0 {
		return fmt.Errorf("run: -mailbox %d, want > 0", *mailbox)
	}
	if *autotuneInterval <= 0 {
		return fmt.Errorf("run: -autotune-interval %v, want > 0", *autotuneInterval)
	}
	if *stallBudget <= 0 {
		return fmt.Errorf("run: -reconfig-stall-budget %v, want > 0", *stallBudget)
	}
	if *autotuneRounds <= 0 {
		return fmt.Errorf("run: -autotune-rounds %d, want > 0", *autotuneRounds)
	}
	if *autotune && *nodes > 1 {
		return fmt.Errorf("run: -autotune reconfigures the in-process engine and is incompatible with -nodes > 1")
	}
	if *estimatorInterval < 0 {
		return fmt.Errorf("run: -estimator-interval %v, want >= 0", *estimatorInterval)
	}
	if *estimator && *nodes > 1 {
		return fmt.Errorf("run: -estimator samples the in-process engine and is incompatible with -nodes > 1")
	}
	transport, err := mbox.ParseMode(*mode)
	if err != nil {
		return err
	}
	t, err := loadTopology(*in)
	if err != nil {
		return err
	}
	var replicas []int
	var predicted float64
	if *optimize {
		fis, err := core.EliminateBottlenecks(t, core.FissionOptions{})
		if err != nil {
			return err
		}
		replicas = fis.Analysis.Replicas
		predicted = fis.Analysis.Throughput()
	} else {
		a, err := core.SteadyState(t)
		if err != nil {
			return err
		}
		predicted = a.Throughput()
	}
	binding := &runtime.Binding{Ops: map[core.OpID]operators.Operator{}}
	for i, spec := range specsFromImpls(t) {
		if spec.Impl == "source" || spec.Impl == "" {
			continue
		}
		op, err := operators.Build(spec)
		if err != nil {
			return err
		}
		binding.Ops[core.OpID(i)] = op
	}
	runCfg := runtime.Config{
		Duration:            *duration,
		Warmup:              *warmup,
		MailboxSize:         *mailbox,
		Seed:                *seed,
		Mailbox:             transport,
		Batch:               *batch,
		Linger:              *linger,
		MaxRestarts:         *maxRestarts,
		ReconfigStallBudget: *stallBudget,
		AutotuneInterval:    *autotuneInterval,
		Estimator:           *estimator,
		EstimatorInterval:   *estimatorInterval,
	}
	var reg *obs.Registry
	if *metricsAddr != "" || *drift || *reoptimize || *autotune || *estimator {
		reg = obs.New()
		runCfg.Obs = reg
	}
	if *metricsAddr != "" {
		bound, shutdown, err := reg.Serve(*metricsAddr)
		if err != nil {
			return fmt.Errorf("run: metrics server: %w", err)
		}
		defer shutdown()
		fmt.Printf("metrics: http://%s/metrics\n", bound)
	}
	var m *runtime.Metrics
	// em carries the estimator's probe-free measurement into the drift /
	// re-optimization report when -estimator is set.
	var em *obs.Measurement
	if *autotune {
		c, err := runtime.StartTopology(t, replicas, binding, runCfg)
		if err != nil {
			return err
		}
		rep, aerr := c.Autotune(context.Background(), runtime.AutotuneOptions{
			Interval: *autotuneInterval,
			Rounds:   *autotuneRounds,
			OnRound: func(r runtime.AutotuneRound) {
				fmt.Printf("autotune round %d: measured %.1f items/s (model %.1f, err %+.1f%%)\n",
					r.Round, r.Drift.MeasuredThroughput, r.Drift.PredictedThroughput, 100*r.Drift.ThroughputErr)
				switch {
				case r.Apply != nil:
					fmt.Printf("  applied live (epoch %d, stall %s, %d keys migrated):\n", r.Apply.Epoch, r.Apply.Stall, r.Apply.MigratedKeys)
					fmt.Print(r.Delta.String())
				case r.Delta != nil && !r.Delta.Empty():
					fmt.Println("  delta proposed but not applied:")
					fmt.Print(r.Delta.String())
				default:
					fmt.Println("  deployment already optimal under the measured profiles")
				}
			},
		})
		replicas = c.Replicas()
		if *estimator && (*drift || *reoptimize) {
			if em, err = c.Estimator().Measure(); err != nil {
				c.Stop()
				return fmt.Errorf("run: estimator: %w", err)
			}
		}
		m, err = c.Stop()
		if aerr != nil {
			return aerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("autotune: applied %d delta plan(s) over %d round(s) without a restart\n", rep.Applied(), len(rep.Rounds))
	} else if *nodes > 1 {
		p, err := plan.Build(t, plan.Options{Replicas: replicas})
		if err != nil {
			return err
		}
		m, err = runtime.RunDistributed(context.Background(), p, binding, runtime.DistributedConfig{
			Config:       runCfg,
			Nodes:        *nodes,
			RetryBackoff: *retryBackoff,
			SendDeadline: *sendDeadline,
		})
		if err != nil {
			return err
		}
	} else if *estimator && (*drift || *reoptimize) {
		// The probe-free measurement lives on the controller; run the
		// plain duration through it so the report below can be built from
		// occupancy-derived profiles instead of (absent) probe histograms.
		c, err := runtime.StartTopology(t, replicas, binding, runCfg)
		if err != nil {
			return err
		}
		time.Sleep(*duration)
		if em, err = c.Estimator().Measure(); err != nil {
			c.Stop()
			return fmt.Errorf("run: estimator: %w", err)
		}
		if m, err = c.Stop(); err != nil {
			return err
		}
	} else {
		m, err = runtime.RunTopology(context.Background(), t, replicas, binding, runCfg)
		if err != nil {
			return err
		}
	}
	fmt.Printf("predicted throughput: %.1f items/s\n", predicted)
	fmt.Printf("measured  throughput: %.1f items/s\n", m.Throughput)
	if m.Restarts > 0 || m.Degraded > 0 {
		fmt.Printf("operator restarts: %d (degraded stations: %d)\n", m.Restarts, m.Degraded)
	}
	for op, d := range m.Departure {
		fmt.Printf("  %-28s departure %10.1f items/s (arrival %10.1f)\n",
			t.Op(core.OpID(op)).Name, d, m.Arrival[op])
	}
	if *drift || *reoptimize {
		var rep *obs.DriftReport
		var err error
		if em != nil {
			rep, err = obs.DriftFromProfiles(t, replicas, em.Rates, em.Profiles, em.Confidence)
		} else {
			rep, err = obs.Drift(t, replicas, reg)
		}
		if err != nil {
			return fmt.Errorf("run: drift: %w", err)
		}
		if *drift {
			fmt.Print(rep.String())
		}
		if *reoptimize {
			delta, err := opt.Reoptimize(opt.NewSnapshot(t), rep, opt.Options{})
			if err != nil {
				return fmt.Errorf("run: reoptimize: %w", err)
			}
			fmt.Println("re-optimization on measured profiles:")
			fmt.Print(delta.String())
		}
	}
	return nil
}

func cmdSimulate(args []string) error {
	fs := flag.NewFlagSet("simulate", flag.ContinueOnError)
	in := fs.String("in", "", "input topology XML")
	horizon := fs.Float64("horizon", 40, "simulated seconds")
	mailbox := fs.Int("mailbox", 64, "mailbox capacity")
	seed := fs.Uint64("seed", 1, "random seed")
	optimize := fs.Bool("optimize", false, "apply bottleneck elimination before simulating")
	shedding := fs.Bool("shedding", false, "use load-shedding semantics (drop on full mailboxes) instead of backpressure")
	if err := fs.Parse(args); err != nil {
		return err
	}
	t, err := loadTopology(*in)
	if err != nil {
		return err
	}
	var replicas []int
	var predicted float64
	if *optimize {
		fis, err := core.EliminateBottlenecks(t, core.FissionOptions{})
		if err != nil {
			return err
		}
		replicas = fis.Analysis.Replicas
		predicted = fis.Analysis.Throughput()
	} else {
		a, err := core.SteadyState(t)
		if err != nil {
			return err
		}
		predicted = a.Throughput()
	}
	if *shedding {
		shed, err := core.SteadyStateShedding(t)
		if err != nil {
			return err
		}
		predicted = shed.SinkRate
	}
	res, err := qsim.SimulateTopology(t, replicas, qsim.Config{
		Seed: *seed, Horizon: *horizon, BufferSize: *mailbox, Shedding: *shedding,
	})
	if err != nil {
		return err
	}
	if *shedding {
		fmt.Printf("predicted delivered throughput (shedding): %.1f items/s\n", predicted)
	} else {
		fmt.Printf("predicted throughput: %.1f items/s\n", predicted)
	}
	fmt.Printf("simulated throughput: %.1f items/s (%d events)\n", res.Throughput, res.Events)
	for op, d := range res.Departure {
		fmt.Printf("  %-28s departure %10.1f items/s (arrival %10.1f", t.Op(core.OpID(op)).Name, d, res.Arrival[op])
		if res.Dropped[op] > 0 {
			fmt.Printf(", dropped %10.1f", res.Dropped[op])
		}
		fmt.Printf(")\n")
	}
	return nil
}
