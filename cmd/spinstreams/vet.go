package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"spinstreams/internal/lint"
	"spinstreams/internal/xmlio"
)

// cmdVet is the static verification front-end: it lints a topology
// document (structure, cost model, optional fusion candidate and rewrite
// trace) and renders the report as text, JSON, or SARIF. The exit status
// is non-zero when any error-severity diagnostic fires, so the command
// slots directly into CI.
func cmdVet(args []string) error {
	fs := flag.NewFlagSet("vet", flag.ContinueOnError)
	in := fs.String("in", "", "input topology XML")
	members := fs.String("members", "", "comma-separated fusion candidate to verify against the Section 3.3 preconditions")
	budget := fs.Int("replica-budget", 0, "replica budget the deployment must fit (0 = unbounded)")
	replicas := fs.String("replicas", "", "comma-separated deployed replication degrees, one per operator in document order (enables the replica and transport-demotion checks)")
	allowCycles := fs.Bool("allow-cycles", false, "accept feedback edges and analyze them with the fixed-point solver")
	tracePath := fs.String("trace", "", "rewrite trace JSON to replay against the topology")
	mailboxSize := fs.Int("mailbox-size", 0, "bounded mailbox capacity assumed by the back-pressure checks (0 = runtime default)")
	burstFactor := fs.Float64("burst-factor", 0, "arrival-rate multiplier for the SPSC burst-capacity check (0 = skip)")
	burstSeconds := fs.Float64("burst-seconds", 0, "burst duration every SPSC ring must absorb without filling (0 = skip)")
	format := fs.String("format", "text", "output format: text, json, or sarif")
	out := fs.String("o", "", "write the report here instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *in == "" {
		return fmt.Errorf("-in is required")
	}

	opts := vetOptions{
		members:      *members,
		budget:       *budget,
		allowCycles:  *allowCycles,
		tracePath:    *tracePath,
		mailboxSize:  *mailboxSize,
		burstFactor:  *burstFactor,
		burstSeconds: *burstSeconds,
	}
	if *replicas != "" {
		for _, field := range strings.Split(*replicas, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(field))
			if err != nil {
				return fmt.Errorf("vet: -replicas: %v", err)
			}
			opts.replicas = append(opts.replicas, n)
		}
	}
	rep, err := vetFile(*in, opts)
	if err != nil {
		return err
	}

	var rendered []byte
	switch *format {
	case "text":
		var b strings.Builder
		if err := rep.Text(&b); err != nil {
			return err
		}
		rendered = []byte(b.String())
	case "json":
		if rendered, err = rep.JSON(); err != nil {
			return err
		}
		rendered = append(rendered, '\n')
	case "sarif":
		if rendered, err = rep.SARIF(); err != nil {
			return err
		}
		rendered = append(rendered, '\n')
	default:
		return fmt.Errorf("vet: unknown format %q (want text, json, or sarif)", *format)
	}
	if *out != "" {
		if err := os.WriteFile(*out, rendered, 0o644); err != nil {
			return err
		}
	} else if _, err := os.Stdout.Write(rendered); err != nil {
		return err
	}

	if errs, warns, _ := rep.Counts(); errs > 0 {
		return fmt.Errorf("vet: %d error(s), %d warning(s)", errs, warns)
	}
	return nil
}

type vetOptions struct {
	members      string
	budget       int
	replicas     []int
	allowCycles  bool
	tracePath    string
	mailboxSize  int
	burstFactor  float64
	burstSeconds float64
}

// vetFile runs the document-level verifier on path with positioned
// diagnostics, resolving keysFile references relative to the document.
func vetFile(path string, o vetOptions) (*lint.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	doc, pos, err := xmlio.DecodeDocument(f)
	if err != nil {
		return nil, err
	}
	cfg := lint.Config{
		File: path,
		KeyLoader: func(ref string) ([]float64, error) {
			return xmlio.LoadKeyFile(filepath.Join(filepath.Dir(path), ref))
		},
		Replicas:        o.replicas,
		ReplicaBudget:   o.budget,
		AllowCycles:     o.allowCycles,
		MailboxCapacity: o.mailboxSize,
		BurstFactor:     o.burstFactor,
		BurstSeconds:    o.burstSeconds,
	}
	if o.members != "" {
		for _, m := range strings.Split(o.members, ",") {
			cfg.FuseMembers = append(cfg.FuseMembers, strings.TrimSpace(m))
		}
	}
	if o.tracePath != "" {
		trace, err := os.ReadFile(o.tracePath)
		if err != nil {
			return nil, err
		}
		cfg.Trace = trace
	}
	return lint.RunDocument(doc, pos, cfg), nil
}

// preVet is the -vet flag on run/optimize: lint the input first, print
// any findings to stderr, and refuse to proceed on errors.
func preVet(path string, allowCycles bool) error {
	rep, err := vetFile(path, vetOptions{allowCycles: allowCycles})
	if err != nil {
		return err
	}
	if len(rep.Diagnostics) > 0 {
		if err := rep.Text(os.Stderr); err != nil {
			return err
		}
	}
	if rep.HasErrors() {
		return fmt.Errorf("vet: input rejected")
	}
	return nil
}
