package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spinstreams/internal/core"
	"spinstreams/internal/xmlio"
)

// writePaperTopology writes the Section 5.4 example to a temp XML file.
func writePaperTopology(t *testing.T) string {
	t.Helper()
	topo, _ := core.PaperExampleTopology(core.PaperExampleTable1)
	path := filepath.Join(t.TempDir(), "topo.xml")
	if err := xmlio.WriteFile(path, "paper", topo); err != nil {
		t.Fatal(err)
	}
	return path
}

// capture runs the CLI with args and returns its stdout.
func capture(t *testing.T, args ...string) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := run(args)
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

func TestCLIAnalyze(t *testing.T) {
	out, err := capture(t, "analyze", "-in", writePaperTopology(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"predicted throughput: 1000.0", "op1", "op6"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIOptimize(t *testing.T) {
	// Make op2 stateless and slow so fission triggers.
	topo, _ := core.PaperExampleTopology(core.PaperExampleTable1)
	op2, _ := topo.Lookup("op2")
	topo.Op(op2).Kind = core.KindStateless
	topo.Op(op2).ServiceTime = 0.004
	in := filepath.Join(t.TempDir(), "in.xml")
	if err := xmlio.WriteFile(in, "t", topo); err != nil {
		t.Fatal(err)
	}
	outFile := filepath.Join(t.TempDir(), "out.xml")
	out, err := capture(t, "optimize", "-in", in, "-out", outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "total replicas:") {
		t.Errorf("output missing replica summary:\n%s", out)
	}
	if _, err := xmlio.ReadFile(outFile); err != nil {
		t.Errorf("optimized XML unreadable: %v", err)
	}
}

func TestCLICandidatesAndFuse(t *testing.T) {
	path := writePaperTopology(t)
	out, err := capture(t, "candidates", "-in", path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "op3") {
		t.Errorf("candidates missing op3 subgraph:\n%s", out)
	}
	fusedFile := filepath.Join(t.TempDir(), "fused.xml")
	out, err = capture(t, "fuse", "-in", path, "-members", "op3,op4,op5", "-name", "F", "-out", fusedFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "fusion is feasible") {
		t.Errorf("fuse output:\n%s", out)
	}
	back, err := xmlio.ReadFile(fusedFile)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := back.Lookup("F"); !ok {
		t.Error("fused topology lost the meta-operator")
	}
}

func TestCLIFuseAlert(t *testing.T) {
	topo, _ := core.PaperExampleTopology(core.PaperExampleTable2)
	path := filepath.Join(t.TempDir(), "t2.xml")
	if err := xmlio.WriteFile(path, "t2", topo); err != nil {
		t.Fatal(err)
	}
	out, err := capture(t, "fuse", "-in", path, "-members", "op3,op4,op5")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ALERT") {
		t.Errorf("expected bottleneck alert:\n%s", out)
	}
}

func TestCLIAutoFuse(t *testing.T) {
	out, err := capture(t, "autofuse", "-in", writePaperTopology(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "operators: 6 ->") {
		t.Errorf("autofuse output:\n%s", out)
	}
}

func TestCLISimulate(t *testing.T) {
	out, err := capture(t, "simulate", "-in", writePaperTopology(t), "-horizon", "10")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "simulated throughput:") {
		t.Errorf("simulate output:\n%s", out)
	}
}

func TestCLIGenerate(t *testing.T) {
	outFile := filepath.Join(t.TempDir(), "main.go")
	if _, err := capture(t, "generate", "-in", writePaperTopology(t), "-out", outFile); err != nil {
		t.Fatal(err)
	}
	src, err := os.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(src), "package main") {
		t.Error("generated file is not a main package")
	}
}

func TestCLIErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing subcommand accepted")
	}
	if err := run([]string{"bogus"}); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run([]string{"analyze"}); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"analyze", "-in", "/nonexistent.xml"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{"fuse", "-in", writePaperTopology(t)}); err == nil {
		t.Error("fuse without members accepted")
	}
	if err := run([]string{"fuse", "-in", writePaperTopology(t), "-members", "ghost"}); err == nil {
		t.Error("unknown member accepted")
	}
	if err := run([]string{"help"}); err != nil {
		t.Errorf("help failed: %v", err)
	}
}

// TestCLIRunValidation pins the run subcommand's config validation:
// nonsense typed on the command line must be rejected — either by the
// flag layer itself or by the runtime config validation it feeds — and
// never silently coerced into a runnable configuration.
func TestCLIRunValidation(t *testing.T) {
	topo := writePaperTopology(t)
	cases := []struct {
		name string
		args []string
	}{
		{"negative duration", []string{"-duration", "-1s"}},
		{"warmup equals duration", []string{"-duration", "1s", "-warmup", "1s"}},
		{"warmup exceeds duration", []string{"-duration", "1s", "-warmup", "2s"}},
		{"negative warmup", []string{"-warmup", "-1s"}},
		{"zero mailbox", []string{"-mailbox", "0"}},
		{"negative mailbox", []string{"-mailbox", "-3"}},
		{"negative batch", []string{"-batch", "-8"}},
		{"negative linger", []string{"-linger", "-1ms"}},
		{"unknown mailbox mode", []string{"-mailbox-mode", "bogus"}},
		{"negative estimator interval", []string{"-estimator", "-estimator-interval", "-1ms"}},
		{"estimator with distributed nodes", []string{"-estimator", "-nodes", "2"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			args := append([]string{"run", "-in", topo}, tc.args...)
			if err := run(args); err == nil {
				t.Errorf("run %v accepted", tc.args)
			}
		})
	}
}

// TestCLIRunWithFaultToleranceFlags exercises the happy path with the
// fault-tolerance and dataplane knobs set, confirming they parse and
// reach the runtime.
func TestCLIRunWithFaultToleranceFlags(t *testing.T) {
	out, err := capture(t, "run", "-in", writePaperTopology(t),
		"-duration", "400ms", "-warmup", "100ms", "-max-restarts", "2",
		"-mailbox-mode", "batch", "-batch", "8", "-linger", "200us")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "measured  throughput") {
		t.Errorf("run output incomplete:\n%s", out)
	}
}

func TestCLIProfile(t *testing.T) {
	out, err := capture(t, "profile", "-samples", "500")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"identity", "wquantile", "skyline", "service(us)"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile output missing %q", want)
		}
	}
}

func TestCLIDot(t *testing.T) {
	out, err := capture(t, "dot", "-in", writePaperTopology(t))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "digraph") || !strings.Contains(out, "rho=") {
		t.Errorf("dot output incomplete:\n%s", out)
	}
}

func TestCLIAnalyzeLatency(t *testing.T) {
	out, err := capture(t, "analyze", "-in", writePaperTopology(t), "-latency")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "end-to-end latency") {
		t.Errorf("latency output missing:\n%s", out)
	}
}

// TestCLIOptimizeTrace pins the rewrite-trace exports: -trace-json emits
// the schema-documented JSON trace and -trace-dot the annotated overlay.
func TestCLIOptimizeTrace(t *testing.T) {
	dir := t.TempDir()
	jsonFile := filepath.Join(dir, "trace.json")
	dotFile := filepath.Join(dir, "trace.dot")
	outFile := filepath.Join(dir, "opt.xml")
	out, err := capture(t, "optimize", "-in", writePaperTopology(t), "-fuse",
		"-out", outFile, "-trace-json", jsonFile, "-trace-dot", dotFile)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"total replicas:", "fused {op3, op4, op5}", "wrote " + jsonFile} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(jsonFile)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"schema": "spinstreams/rewrite-trace/v1"`, `"action": "fuse"`} {
		if !strings.Contains(string(data), want) {
			t.Errorf("trace JSON missing %q:\n%s", want, data)
		}
	}
	overlay, err := os.ReadFile(dotFile)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"digraph", "fused (round 1)", "predicted throughput:"} {
		if !strings.Contains(string(overlay), want) {
			t.Errorf("overlay missing %q:\n%s", want, overlay)
		}
	}
	// The optimized XML round-trips with its fused meta-operator.
	back, err := xmlio.ReadFile(outFile)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := back.Lookup("fused1"); !ok {
		t.Error("optimized XML lost the fused meta-operator")
	}
}

// TestCLIRunReoptimize exercises run -reoptimize end to end: the drift
// report feeds opt.Reoptimize and the delta plan is printed.
func TestCLIRunReoptimize(t *testing.T) {
	out, err := capture(t, "run", "-in", writePaperTopology(t),
		"-duration", "600ms", "-warmup", "150ms", "-reoptimize")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "re-optimization on measured profiles:") {
		t.Errorf("run output missing the delta plan:\n%s", out)
	}
}

// TestCLIRunEstimatorReoptimize exercises the probe-free path end to end:
// with -estimator the drift and re-optimization reports are built from
// occupancy-derived profiles instead of timed-probe histograms, so the
// same reports must come out without any probe machinery running.
func TestCLIRunEstimatorReoptimize(t *testing.T) {
	out, err := capture(t, "run", "-in", writePaperTopology(t),
		"-duration", "700ms", "-warmup", "150ms", "-estimator", "-drift", "-reoptimize")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Model-vs-measured drift") {
		t.Errorf("run output missing the drift report:\n%s", out)
	}
	if !strings.Contains(out, "re-optimization on measured profiles:") {
		t.Errorf("run output missing the delta plan:\n%s", out)
	}
}

// TestCLIRunAutotuneEstimator drives the full autonomic loop from the
// command line with probe-free measurement: autotune rounds fed by the
// estimator must complete and report their outcome.
func TestCLIRunAutotuneEstimator(t *testing.T) {
	out, err := capture(t, "run", "-in", writePaperTopology(t),
		"-autotune", "-autotune-rounds", "2", "-autotune-interval", "300ms",
		"-estimator", "-estimator-interval", "1ms")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "autotune round 0:") {
		t.Errorf("run output missing autotune rounds:\n%s", out)
	}
	if !strings.Contains(out, "autotune: applied") {
		t.Errorf("run output missing the autotune summary:\n%s", out)
	}
}

// writeChainTopology writes src -> mid -> sink with a stateless mid of
// the given service time, for vet tests that need controllable load.
func writeChainTopology(t *testing.T, midService float64) string {
	t.Helper()
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 1e-3})
	mid := topo.MustAddOperator(core.Operator{Name: "mid", Kind: core.KindStateless, ServiceTime: midService})
	sink := topo.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 1e-4})
	topo.MustConnect(src, mid, 1)
	topo.MustConnect(mid, sink, 1)
	path := filepath.Join(t.TempDir(), "chain.xml")
	if err := xmlio.WriteFile(path, "chain", topo); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCLIVetZeroReplicasNormalized(t *testing.T) {
	// Degree 0 means "not deployed yet"; vet normalizes it to 1 instead of
	// rejecting the vector or dividing by zero in the cost model.
	out, err := capture(t, "vet", "-in", writeChainTopology(t, 1e-4), "-replicas", "0,0,0")
	if err != nil {
		t.Fatalf("zero replica degrees must vet clean, got %v:\n%s", err, out)
	}
	if !strings.Contains(out, "0 error(s)") {
		t.Errorf("unexpected report:\n%s", out)
	}
}

func TestCLIVetBudgetOverflowIsWarningOnly(t *testing.T) {
	// Exceeding the budget is advice (SS1006), not a gate: the exit code
	// stays zero so CI can surface it without failing the build.
	out, err := capture(t, "vet", "-in", writeChainTopology(t, 1e-4),
		"-replicas", "1,6,1", "-replica-budget", "4")
	if err != nil {
		t.Fatalf("warnings-only report must exit zero, got %v:\n%s", err, out)
	}
	if !strings.Contains(out, "SS1006 warning") {
		t.Errorf("missing SS1006 over-budget warning:\n%s", out)
	}
}

func TestCLIVetMisalignedReplicasIsError(t *testing.T) {
	out, err := capture(t, "vet", "-in", writeChainTopology(t, 1e-4), "-replicas", "1,2")
	if err == nil {
		t.Fatalf("misaligned replica vector must exit non-zero:\n%s", out)
	}
	if !strings.Contains(out, "SS1000") {
		t.Errorf("missing SS1000 diagnostic:\n%s", out)
	}
}

func TestCLIVetBurstFlags(t *testing.T) {
	// rho 0.8 chain under a 2x/1s burst: SS3002 fires as a warning (exit
	// zero), and sizing the mailbox per the suggestion silences it.
	in := writeChainTopology(t, 8e-4)
	out, err := capture(t, "vet", "-in", in, "-burst-factor", "2", "-burst-seconds", "1")
	if err != nil {
		t.Fatalf("burst warning must not gate, got %v:\n%s", err, out)
	}
	if !strings.Contains(out, "SS3002 warning") {
		t.Errorf("missing SS3002 burst warning:\n%s", out)
	}
	out, err = capture(t, "vet", "-in", in,
		"-burst-factor", "2", "-burst-seconds", "1", "-mailbox-size", "750")
	if err != nil || strings.Contains(out, "SS3002") {
		t.Errorf("sized-up mailbox still flagged (%v):\n%s", err, out)
	}
}
