package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spinstreams/internal/experiments"
)

// TestUnknownExperimentListsRegistry pins the fix for silently mistyped
// -exp names: the error must name the offender and carry the registry so
// the user can pick a real one.
func TestUnknownExperimentListsRegistry(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-exp", "fig77"}, &out)
	if err == nil {
		t.Fatal("unknown -exp accepted")
	}
	msg := err.Error()
	if !strings.Contains(msg, `"fig77"`) {
		t.Errorf("error does not name the unknown experiment: %v", msg)
	}
	for _, want := range []string{"registered scenarios:", "fig7", "corpus"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error does not list %q: %v", want, msg)
		}
	}
}

func TestUnknownTagListsRegistry(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-scenario-tag", "nope"}, &out)
	if err == nil {
		t.Fatal("unknown -scenario-tag accepted")
	}
	if !strings.Contains(err.Error(), "registered scenarios:") {
		t.Errorf("error does not list the registry: %v", err)
	}
}

func TestListFlag(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	listing := out.String()
	for _, name := range experiments.Names() {
		if !strings.Contains(listing, name) {
			t.Errorf("-list output missing scenario %q", name)
		}
	}
	if !strings.Contains(listing, "tags:") {
		t.Error("-list output missing the tag summary")
	}
}

// TestCorpusExportsCSVAndJSON runs a tiny corpus slice end to end through
// the CLI and checks the results/ schema: scenario_corpus.csv plus a JSON
// report whose metadata names the scenario and seed.
func TestCorpusExportsCSVAndJSON(t *testing.T) {
	dir := t.TempDir()
	var out bytes.Buffer
	err := run([]string{
		"-exp", "corpus", "-topologies", "2", "-corpus-horizon", "4",
		"-corpus-rounds", "2", "-workloads", "steady,hotkey", "-out", dir,
	}, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Section 5 corpus") {
		t.Errorf("stdout missing the corpus summary:\n%s", out.String())
	}
	csvBytes, err := os.ReadFile(filepath.Join(dir, "scenario_corpus.csv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(csvBytes)), "\n")
	if want := 1 + 2*2*3; len(lines) != want { // header + topologies x workloads x modes
		t.Errorf("CSV has %d lines, want %d", len(lines), want)
	}
	if !strings.HasPrefix(lines[0], "topology,seed,fingerprint") {
		t.Errorf("unexpected CSV header %q", lines[0])
	}
	raw, err := os.ReadFile(filepath.Join(dir, "scenario_corpus.json"))
	if err != nil {
		t.Fatal(err)
	}
	var rep experiments.JSONReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Meta.Scenario != "corpus" || rep.Meta.Seed != 42 {
		t.Errorf("meta = %+v, want scenario corpus seed 42", rep.Meta)
	}
	if rep.Meta.GeneratedAt == "" {
		t.Error("meta missing generated_at timestamp")
	}
	if len(rep.Rows) != 2*2*3 {
		t.Errorf("JSON rows = %d, want %d", len(rep.Rows), 2*2*3)
	}
}

// TestScenarioTagRunsSubset checks tag filtering drives real runs.
func TestScenarioTagRunsSubset(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario-tag", "ablation", "-quick"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"=== KEYPART ===", "=== BUFFERS ===", "=== LATENCY ==="} {
		if !strings.Contains(s, want) {
			t.Errorf("tag run missing %s:\n%s", want, s)
		}
	}
}
