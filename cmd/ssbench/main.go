// Command ssbench regenerates every table and figure of the paper's
// evaluation (Section 5) on the simulated testbed; see EXPERIMENTS.md for
// the recorded paper-vs-measured comparison.
//
// Usage:
//
//	ssbench                         # run everything (50-topology testbed)
//	ssbench -exp fig7               # one experiment: fig7 fig8 fig9 fig10
//	                                  table1 table2 keypart buffers latency
//	ssbench -exp fig7live           # accuracy against the live goroutine runtime
//	ssbench -exp drift              # predict→optimize→run→verify walkthrough (paper example)
//	ssbench -exp reopt              # drift→reoptimize walkthrough (delta plan from measured profiles)
//	ssbench -exp autotune           # live autonomic loop: measure, re-optimize, apply the delta in-flight
//	ssbench -quick                  # smaller testbed, shorter horizon
//	ssbench -csv out/               # also export each data series as CSV
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"spinstreams/internal/core"
	"spinstreams/internal/experiments"
	"spinstreams/internal/mailbox"
	"spinstreams/internal/qsim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ssbench:", err)
		os.Exit(1)
	}
}

func run() error {
	exp := flag.String("exp", "all", "experiment: all, fig7, fig8, fig9, fig10, table1, table2, keypart, buffers, latency, shedding, elasticity, fig7live, drift, reopt, autotune (live runs only with -exp fig7live / -exp drift / -exp reopt / -exp autotune)")
	seed := flag.Uint64("seed", 42, "testbed seed")
	topologies := flag.Int("topologies", 50, "testbed size")
	horizon := flag.Float64("horizon", 40, "simulated seconds per measurement")
	quick := flag.Bool("quick", false, "small testbed and short horizon")
	csvDir := flag.String("csv", "", "also write each experiment's data series as CSV into this directory")
	liveTopologies := flag.Int("live-topologies", 8, "testbed entries for fig7live")
	liveDuration := flag.Duration("live-duration", 3*time.Second, "wall-clock run per topology for fig7live")
	liveMailbox := flag.String("mailbox", "tuple", "fig7live dataplane transport: tuple or batch")
	liveBatch := flag.Int("batch", 0, "fig7live micro-batch size in batch mode (0 = runtime default)")
	liveLinger := flag.Duration("linger", 0, "fig7live max wait before a partial batch flushes (0 = runtime default)")
	liveRestarts := flag.Int("max-restarts", 0, "fig7live: restart a panicked operator up to N times, then degrade (0 = crash, <0 = unlimited)")
	driftTable := flag.Int("drift-table", 2, "drift: paper-example service-time variant (1 or 2)")
	reoptSlow := flag.Float64("reopt-slow", 3, "reopt/autotune: factor by which the deployed hot operator is slower than declared")
	autotuneRounds := flag.Int("autotune-rounds", 3, "autotune: measure/re-optimize/apply rounds")
	autotuneInterval := flag.Duration("autotune-interval", 800*time.Millisecond, "autotune: measurement window per round")
	flag.Parse()
	liveTransport, err := mailbox.ParseMode(*liveMailbox)
	if err != nil {
		return err
	}

	setup := experiments.Setup{
		Seed:       *seed,
		Topologies: *topologies,
		Sim:        qsim.Config{Horizon: *horizon},
	}
	if *quick {
		setup.Topologies = 10
		setup.Sim.Horizon = 15
	}

	publish := func(name string, res interface {
		fmt.Stringer
		experiments.Tabular
	}) error {
		fmt.Println(res)
		if *csvDir == "" {
			return nil
		}
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(*csvDir, name+".csv")
		fh, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := experiments.WriteCSV(fh, res); err != nil {
			fh.Close()
			return err
		}
		return fh.Close()
	}

	runOne := func(name string) error {
		switch name {
		case "fig7":
			res, err := experiments.Fig7(setup)
			if err != nil {
				return err
			}
			return publish(name, res)
		case "fig8":
			res, err := experiments.Fig8(setup)
			if err != nil {
				return err
			}
			return publish(name, res)
		case "fig9":
			res, err := experiments.Fig9(setup)
			if err != nil {
				return err
			}
			return publish(name, res)
		case "fig10":
			res, err := experiments.Fig10(setup)
			if err != nil {
				return err
			}
			return publish(name, res)
		case "table1":
			res, err := experiments.Table(setup, core.PaperExampleTable1)
			if err != nil {
				return err
			}
			return publish(name, res)
		case "table2":
			res, err := experiments.Table(setup, core.PaperExampleTable2)
			if err != nil {
				return err
			}
			return publish(name, res)
		case "keypart":
			res, err := experiments.KeyPartitioningAblation(100, 8, nil)
			if err != nil {
				return err
			}
			return publish(name, res)
		case "buffers":
			res, err := experiments.BufferSizeAblation(setup, nil)
			if err != nil {
				return err
			}
			return publish(name, res)
		case "latency":
			res, err := experiments.Latency(setup, nil)
			if err != nil {
				return err
			}
			return publish(name, res)
		case "shedding":
			res, err := experiments.Shedding(setup)
			if err != nil {
				return err
			}
			return publish(name, res)
		case "elasticity":
			res, err := experiments.Elasticity(setup, experiments.ElasticityOptions{})
			if err != nil {
				return err
			}
			return publish(name, res)
		case "fig7live":
			res, err := experiments.Fig7Live(context.Background(), setup, experiments.LiveOptions{
				Topologies:  *liveTopologies,
				Duration:    *liveDuration,
				Transport:   liveTransport,
				Batch:       *liveBatch,
				Linger:      *liveLinger,
				MaxRestarts: *liveRestarts,
			})
			if err != nil {
				return err
			}
			return publish(name, res)
		case "drift":
			variant := core.PaperExampleTable2
			if *driftTable == 1 {
				variant = core.PaperExampleTable1
			}
			res, err := experiments.DriftDemo(context.Background(), variant, experiments.LiveOptions{
				Duration:    *liveDuration,
				Transport:   liveTransport,
				Batch:       *liveBatch,
				Linger:      *liveLinger,
				MaxRestarts: *liveRestarts,
			})
			if err != nil {
				return err
			}
			return publish(name, res)
		case "reopt":
			res, err := experiments.ReoptimizeDemo(context.Background(), *reoptSlow, experiments.LiveOptions{
				Duration:    *liveDuration,
				Transport:   liveTransport,
				Batch:       *liveBatch,
				Linger:      *liveLinger,
				MaxRestarts: *liveRestarts,
			})
			if err != nil {
				return err
			}
			return publish(name, res)
		case "autotune":
			res, err := experiments.AutotuneDemo(context.Background(), *reoptSlow, *autotuneRounds, experiments.LiveOptions{
				Duration:    *autotuneInterval,
				Transport:   liveTransport,
				Batch:       *liveBatch,
				Linger:      *liveLinger,
				MaxRestarts: *liveRestarts,
			})
			if err != nil {
				return err
			}
			return publish(name, res)
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
	}

	if *exp == "all" {
		for _, name := range []string{"fig7", "fig8", "fig9", "fig10", "table1", "table2", "keypart", "buffers", "latency", "shedding", "elasticity"} {
			fmt.Printf("=== %s ===\n", strings.ToUpper(name))
			if err := runOne(name); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		return nil
	}
	return runOne(*exp)
}
