// Command ssbench runs the scenario registry: every table and figure of
// the paper's evaluation (Section 5), the ablations and live walkthroughs,
// and the extended corpus; see EXPERIMENTS.md for the recorded
// paper-vs-measured comparison.
//
// Usage:
//
//	ssbench                         # run the default sweep (50-topology testbed)
//	ssbench -list                   # print the scenario registry with tags
//	ssbench -exp fig7               # one scenario by name
//	ssbench -exp corpus -out results # Section 5 corpus, CSV+JSON under results/
//	ssbench -scenario-tag ablation  # every scenario carrying a tag
//	ssbench -quick                  # smaller testbed, shorter horizon
//	ssbench -csv out/               # also export each data series as CSV
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"spinstreams/internal/experiments"
	"spinstreams/internal/mailbox"
	"spinstreams/internal/qsim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "ssbench:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("ssbench", flag.ContinueOnError)
	exp := fs.String("exp", "all", "scenario name (see -list), or 'all' for the default sweep")
	tag := fs.String("scenario-tag", "", "run every registered scenario carrying this tag instead of -exp")
	list := fs.Bool("list", false, "print the scenario registry with tags and exit")
	seed := fs.Uint64("seed", 42, "testbed seed")
	topologies := fs.Int("topologies", 50, "testbed size")
	horizon := fs.Float64("horizon", 40, "simulated seconds per measurement")
	quick := fs.Bool("quick", false, "small testbed and short horizon")
	csvDir := fs.String("csv", "", "also write each scenario's data series as CSV into this directory")
	outDir := fs.String("out", "", "write each scenario's data series as CSV and JSON (with run metadata) into this directory")
	liveTopologies := fs.Int("live-topologies", 8, "testbed entries for fig7live")
	liveDuration := fs.Duration("live-duration", 3*time.Second, "wall-clock run per topology for fig7live")
	liveMailbox := fs.String("mailbox", "tuple", "live dataplane transport: tuple, batch, spsc or auto (per-edge ring selection)")
	liveBatch := fs.Int("batch", 0, "live micro-batch size in batch mode (0 = runtime default)")
	liveLinger := fs.Duration("linger", 0, "live max wait before a partial batch flushes (0 = runtime default)")
	liveRestarts := fs.Int("max-restarts", 0, "live runs: restart a panicked operator up to N times, then degrade (0 = crash, <0 = unlimited)")
	driftTable := fs.Int("drift-table", 2, "drift: paper-example service-time variant (1 or 2)")
	reoptSlow := fs.Float64("reopt-slow", 3, "reopt/autotune: factor by which the deployed hot operator is slower than declared")
	autotuneRounds := fs.Int("autotune-rounds", 3, "autotune: measure/re-optimize/apply rounds")
	autotuneInterval := fs.Duration("autotune-interval", 800*time.Millisecond, "autotune: measurement window per round")
	corpusHorizon := fs.Float64("corpus-horizon", 12, "corpus: simulated seconds per measurement")
	corpusRounds := fs.Int("corpus-rounds", 8, "corpus: autotune hill-climb measurement rounds")
	corpusWorkloads := fs.String("workloads", "", "corpus: comma-separated workload shapes (default steady,bursty,diurnal,hotkey)")
	estimatorSeeds := fs.Int("estimator-seeds", 0, "estimator: corpus seeds for the probe-free sweep (0 = default 34)")
	dataplaneDepth := fs.Int("dataplane-depth", 0, "dataplane: operators in the single-producer chain (0 = default 8)")
	dataplaneDuration := fs.Duration("dataplane-duration", 0, "dataplane: wall-clock run per transport (0 = default 2s)")
	fs.SetOutput(stdout)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		fmt.Fprint(stdout, experiments.DescribeRegistry())
		return nil
	}
	liveTransport, err := mailbox.ParseMode(*liveMailbox)
	if err != nil {
		return err
	}

	setup := experiments.Setup{
		Seed:       *seed,
		Topologies: *topologies,
		Sim:        qsim.Config{Horizon: *horizon},
	}
	corpus := experiments.CorpusOptions{
		Topologies: *topologies,
		Horizon:    *corpusHorizon,
		Rounds:     *corpusRounds,
	}
	if *corpusWorkloads != "" {
		corpus.Workloads = strings.Split(*corpusWorkloads, ",")
	}
	estimator := experiments.EstimatorOptions{Seeds: *estimatorSeeds}
	if *quick {
		setup.Topologies = 10
		setup.Sim.Horizon = 15
		corpus.Topologies = 5
		corpus.Horizon = 6
		corpus.Rounds = 3
		if estimator.Seeds == 0 {
			estimator.Seeds = 8
		}
	}
	opts := experiments.Options{
		Setup: setup,
		Live: experiments.LiveOptions{
			Topologies:  *liveTopologies,
			Duration:    *liveDuration,
			Transport:   liveTransport,
			Batch:       *liveBatch,
			Linger:      *liveLinger,
			MaxRestarts: *liveRestarts,
		},
		Corpus:    corpus,
		Estimator: estimator,
		Dataplane: experiments.DataplaneOptions{
			Depth:    *dataplaneDepth,
			Duration: *dataplaneDuration,
		},
		DriftTable:       *driftTable,
		SlowFactor:       *reoptSlow,
		AutotuneRounds:   *autotuneRounds,
		AutotuneInterval: *autotuneInterval,
	}

	var scenarios []experiments.Scenario
	switch {
	case *tag != "":
		scenarios = experiments.WithTag(*tag)
		if len(scenarios) == 0 {
			return fmt.Errorf("no scenario carries tag %q\n%s", *tag, experiments.DescribeRegistry())
		}
	case *exp == "all":
		scenarios = experiments.WithTag("default")
	default:
		for _, name := range strings.Split(*exp, ",") {
			s, ok := experiments.Get(name)
			if !ok {
				return fmt.Errorf("unknown experiment %q\n%s", name, experiments.DescribeRegistry())
			}
			scenarios = append(scenarios, s)
		}
	}

	banner := len(scenarios) > 1
	for _, s := range scenarios {
		if banner {
			fmt.Fprintf(stdout, "=== %s ===\n", strings.ToUpper(s.Name))
		}
		if err := runScenario(stdout, s, opts, *csvDir, *outDir); err != nil {
			return fmt.Errorf("%s: %w", s.Name, err)
		}
	}
	return nil
}

// runScenario executes one registry entry: run, check, print, export.
func runScenario(stdout io.Writer, s experiments.Scenario, opts experiments.Options, csvDir, outDir string) error {
	start := time.Now()
	res, err := s.Run(context.Background(), opts)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)
	if s.Check != nil {
		if err := s.Check(res); err != nil {
			return fmt.Errorf("check failed: %w", err)
		}
	}
	fmt.Fprintln(stdout, res)
	if csvDir != "" {
		if err := writeFile(filepath.Join(csvDir, s.Name+".csv"), func(w io.Writer) error {
			return experiments.WriteCSV(w, res)
		}); err != nil {
			return err
		}
	}
	if outDir != "" {
		meta := experiments.RunMeta{
			Scenario:       s.Name,
			Seed:           opts.Setup.Seed,
			GeneratedAt:    start.UTC().Format(time.RFC3339),
			ElapsedSeconds: elapsed.Seconds(),
		}
		if err := writeFile(filepath.Join(outDir, "scenario_"+s.Name+".csv"), func(w io.Writer) error {
			return experiments.WriteCSV(w, res)
		}); err != nil {
			return err
		}
		if err := writeFile(filepath.Join(outDir, "scenario_"+s.Name+".json"), func(w io.Writer) error {
			return experiments.WriteJSON(w, meta, res)
		}); err != nil {
			return err
		}
	}
	return nil
}

func writeFile(path string, fill func(io.Writer) error) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	fh, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fill(fh); err != nil {
		fh.Close()
		return err
	}
	return fh.Close()
}
