// Command sstopogen generates random streaming topologies per Algorithm 5
// of the paper and writes them as SpinStreams XML files — the tool that
// builds the evaluation testbed.
//
// Usage:
//
//	sstopogen -n 50 -seed 42 -out testbed/     # testbed/topo01.xml ...
//	sstopogen -vertices 12 -edges 14           # one sized topology to stdout
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"spinstreams/internal/randtopo"
	"spinstreams/internal/xmlio"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sstopogen:", err)
		os.Exit(1)
	}
}

func run() error {
	n := flag.Int("n", 1, "number of topologies")
	seed := flag.Uint64("seed", 42, "generator seed")
	out := flag.String("out", "", "output directory (default: single topology to stdout)")
	vertices := flag.Int("vertices", 0, "exact vertex count (0 = random in [2,20])")
	edges := flag.Int("edges", 0, "expected edge count (with -vertices)")
	sourceFactor := flag.Float64("source-factor", 1.33, "source rate vs fastest operator")
	flag.Parse()

	cfg := randtopo.Config{Seed: *seed, SourceFactor: *sourceFactor}

	if *out == "" {
		g, err := generate(cfg, *vertices, *edges)
		if err != nil {
			return err
		}
		return xmlio.Write(os.Stdout, "generated", g.Topology)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	bed, err := randtopo.Testbed(cfg, *n)
	if err != nil {
		return err
	}
	for i, g := range bed {
		path := filepath.Join(*out, fmt.Sprintf("topo%02d.xml", i+1))
		if err := xmlio.WriteFile(path, fmt.Sprintf("testbed-%02d", i+1), g.Topology); err != nil {
			return err
		}
		fmt.Printf("wrote %s (%d operators, %d edges)\n", path, g.Topology.Len(), g.Topology.NumEdges())
	}
	return nil
}

func generate(cfg randtopo.Config, vertices, edges int) (*randtopo.Generated, error) {
	if vertices > 0 {
		if edges <= 0 {
			edges = vertices - 1
		}
		return randtopo.GenerateSized(cfg, vertices, edges)
	}
	return randtopo.Generate(cfg)
}
