package main

import (
	"os"
	"path/filepath"
	"testing"

	"spinstreams/internal/randtopo"
	"spinstreams/internal/xmlio"
)

func TestGenerateSizedPath(t *testing.T) {
	g, err := generate(randtopo.Config{Seed: 1}, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	if g.Topology.Len() != 8 {
		t.Fatalf("vertices = %d, want 8", g.Topology.Len())
	}
}

func TestGenerateRandomPath(t *testing.T) {
	g, err := generate(randtopo.Config{Seed: 2}, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Topology.Len() < 2 {
		t.Fatalf("vertices = %d", g.Topology.Len())
	}
}

func TestGenerateDefaultEdges(t *testing.T) {
	// -vertices without -edges defaults to a spanning count.
	g, err := generate(randtopo.Config{Seed: 3}, 6, 0)
	if err != nil {
		t.Fatal(err)
	}
	if g.Topology.NumEdges() < 5 {
		t.Fatalf("edges = %d, want >= v-1", g.Topology.NumEdges())
	}
}

func TestTestbedFilesAreReadable(t *testing.T) {
	dir := t.TempDir()
	bed, err := randtopo.Testbed(randtopo.Config{Seed: 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, g := range bed {
		path := filepath.Join(dir, "t.xml")
		if err := xmlio.WriteFile(path, "t", g.Topology); err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if _, err := xmlio.ReadFile(path); err != nil {
			t.Fatalf("entry %d unreadable: %v", i, err)
		}
		if err := os.Remove(path); err != nil {
			t.Fatal(err)
		}
	}
}
