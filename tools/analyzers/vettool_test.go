package analyzers

import (
	"os/exec"
	"path/filepath"
	"testing"
)

// TestVettoolEndToEnd builds cmd/ssvet and drives it through the real
// `go vet -vettool` protocol over a package subset that exercises both
// passes (the mailbox dataplane and the obs counter cells).
func TestVettoolEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("builds binaries")
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	bin := filepath.Join(t.TempDir(), "ssvet")
	build := exec.Command("go", "build", "-o", bin, "./cmd/ssvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build ssvet: %v\n%s", err, out)
	}
	vet := exec.Command("go", "vet", "-vettool="+bin,
		"./internal/mailbox", "./internal/obs", "./tools/analyzers")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool: %v\n%s", err, out)
	}
}
