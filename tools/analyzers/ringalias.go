package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// RingAlias enforces the SPSC ring's zero-copy aliasing protocol: the
// slice windows handed out by Peek and Reserve point straight into ring
// slots and stay valid only until the matching Consume / Publish — after
// the release the producer (or the next reservation) reuses the slots
// under the window. The pass flags, per function:
//
//   - any use of a window after a matching lexically-dominating release
//     on the same mailbox (len/cap are exempt: they read the slice
//     header, never the slots);
//   - any escape of the window or a subslice of it out of the local
//     scope — returned, sent on a channel, stored into a field, index,
//     global or composite literal, or captured by a go/defer closure —
//     because nothing bounds the retention of an escaped alias.
//
// A release only dominates later uses when its innermost enclosing block
// also encloses them, so the common `if sink { inbox.Consume(n);
// continue }` shape does not poison the fall-through path. Passing the
// window (or a slot pointer) as a plain call argument is allowed: calls
// return before the caller releases.
var RingAlias = &Analyzer{
	Name: "ringalias",
	Doc:  "flag retention of SPSC Peek/Reserve windows past the matching Consume/Publish",
	Run:  runRingAlias,
}

// ringBindMethods pairs each window-producing method with its release.
var ringBindMethods = map[string]string{
	"Peek":    "Consume",
	"Reserve": "Publish",
}

// ringCall reports whether call invokes a mailbox-package method named
// name on some receiver, returning the receiver expression's string form
// (the pass's notion of "the same mailbox").
func ringCall(info *types.Info, call *ast.CallExpr, names map[string]string, wantRelease bool) (method, recv string, ok bool) {
	sel, selOk := call.Fun.(*ast.SelectorExpr)
	if !selOk {
		return "", "", false
	}
	m := sel.Sel.Name
	matched := false
	if wantRelease {
		for _, rel := range names {
			if rel == m {
				matched = true
			}
		}
	} else {
		_, matched = names[m]
	}
	if !matched {
		return "", "", false
	}
	selection, selOk := info.Selections[sel]
	if !selOk || selection.Kind() != types.MethodVal {
		return "", "", false
	}
	r := selection.Recv()
	if ptr, isPtr := r.(*types.Pointer); isPtr {
		r = ptr.Elem()
	}
	named, isNamed := r.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil || pkg.Path() != mailboxPkgPath {
		return "", "", false
	}
	return m, types.ExprString(sel.X), true
}

// ringWindow is one window variable with every position that (re)binds
// it — a loop typically rebinds the same variable each iteration, and a
// release only poisons uses after it up to the next rebind.
type ringWindow struct {
	obj     types.Object // the window variable
	bindPos []token.Pos  // where Peek/Reserve (re)bound it
	recv    string       // mailbox receiver expression
	release string       // Consume or Publish
}

// ringRelease is one Consume/Publish call site.
type ringRelease struct {
	pos    token.Pos
	recv   string
	method string
	blocks []*ast.BlockStmt // enclosing blocks, outermost first
}

func runRingAlias(pass *Pass) []Diagnostic {
	if strings.HasPrefix(pass.Pkg.Path(), mailboxPkgPath) {
		return nil // the ring implementation manipulates its own slots
	}
	var diags []Diagnostic
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			diags = append(diags, ringAliasFunc(pass, fn)...)
		}
	}
	return diags
}

// ringAliasFunc analyzes one function body.
func ringAliasFunc(pass *Pass, fn *ast.FuncDecl) []Diagnostic {
	info := pass.Info

	// Pass 1: window bindings (`win, ok := m.Peek(done)`; first LHS is
	// the window), plus local aliases of already-tracked windows.
	windows := map[types.Object]*ringWindow{}
	collectBindings := func() bool {
		added := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Rhs) != 1 {
				return true
			}
			id, ok := as.Lhs[0].(*ast.Ident)
			if !ok || id.Name == "_" {
				return true
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				return true
			}
			if call, isCall := as.Rhs[0].(*ast.CallExpr); isCall {
				if m, recv, isRing := ringCall(info, call, ringBindMethods, false); isRing {
					if w := windows[obj]; w != nil {
						for _, p := range w.bindPos {
							if p == id.Pos() {
								return true
							}
						}
						w.bindPos = append(w.bindPos, id.Pos())
						return true
					}
					windows[obj] = &ringWindow{obj: obj, bindPos: []token.Pos{id.Pos()}, recv: recv, release: ringBindMethods[m]}
					added = true
					return true
				}
			}
			if windows[obj] != nil {
				return true
			}
			// Alias: `w2 := win` or `w2 := win[1:]` joins win's binding.
			if root := ringAliasRoot(info, as.Rhs[0], windows); root != nil {
				windows[obj] = &ringWindow{obj: obj, bindPos: append([]token.Pos(nil), root.bindPos...), recv: root.recv, release: root.release}
				added = true
			}
			return true
		})
		return added
	}
	for collectBindings() {
	}
	if len(windows) == 0 {
		return nil
	}

	// Pass 2: releases, with their enclosing block chains.
	var releases []ringRelease
	var walkBlocks func(n ast.Node, blocks []*ast.BlockStmt)
	walkBlocks = func(n ast.Node, blocks []*ast.BlockStmt) {
		if n == nil {
			return
		}
		if b, ok := n.(*ast.BlockStmt); ok {
			blocks = append(blocks[:len(blocks):len(blocks)], b)
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if m, recv, isRing := ringCall(info, call, ringBindMethods, true); isRing {
				releases = append(releases, ringRelease{pos: call.Pos(), recv: recv, method: m, blocks: blocks})
			}
		}
		for _, c := range childNodes(n) {
			walkBlocks(c, blocks)
		}
	}
	walkBlocks(fn.Body, nil)

	// Pass 3: uses, walked with the ancestor path in hand.
	var diags []Diagnostic
	var path []ast.Node
	var visit func(n ast.Node)
	visit = func(n ast.Node) {
		if n == nil {
			return
		}
		path = append(path, n)
		defer func() { path = path[:len(path)-1] }()
		if id, ok := n.(*ast.Ident); ok {
			obj := info.Uses[id]
			if obj != nil && windows[obj] != nil {
				diags = append(diags, ringCheckUse(pass, fn, windows[obj], releases, id, path)...)
			}
		}
		for _, c := range childNodes(n) {
			visit(c)
		}
	}
	visit(fn.Body)
	return diags
}

// ringAliasRoot returns the tracked window an expression aliases: the
// expression must be a tracked ident or a chain of slice expressions
// over one (indexing yields a value, not an alias).
func ringAliasRoot(info *types.Info, e ast.Expr, windows map[types.Object]*ringWindow) *ringWindow {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if obj := info.Uses[x]; obj != nil {
				return windows[obj]
			}
			return nil
		case *ast.SliceExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// ringCheckUse reports the protocol violations one window use commits.
func ringCheckUse(pass *Pass, fn *ast.FuncDecl, w *ringWindow, releases []ringRelease, id *ast.Ident, path []ast.Node) []Diagnostic {
	var diags []Diagnostic
	use := id.Pos()

	// Use-after-release: a matching release between the latest binding
	// and the use whose innermost block encloses the use.
	var bind token.Pos
	for _, p := range w.bindPos {
		if p < use && p > bind {
			bind = p
		}
	}
	if bind != token.NoPos && !ringLenCapArg(path, id) {
		useBlocks := map[*ast.BlockStmt]bool{}
		for _, n := range path {
			if b, ok := n.(*ast.BlockStmt); ok {
				useBlocks[b] = true
			}
		}
		for _, rel := range releases {
			if rel.method != w.release || rel.recv != w.recv {
				continue
			}
			if rel.pos <= bind || rel.pos >= use {
				continue
			}
			if len(rel.blocks) == 0 || !useBlocks[rel.blocks[len(rel.blocks)-1]] {
				continue // release in a branch the use does not follow
			}
			diags = append(diags, Diagnostic{Pos: use, Message: fmt.Sprintf(
				"use of ring window %q after %s.%s: the slots may already be reused (window is valid only until the release)",
				id.Name, w.recv, w.release)})
			break
		}
	}

	// Escapes: the window (or a subslice alias) leaving the local scope.
	if how := ringEscape(pass.Info, id, path); how != "" {
		diags = append(diags, Diagnostic{Pos: use, Message: fmt.Sprintf(
			"ring window %q escapes (%s): slots handed out by %s are reused after %s and must not be retained",
			id.Name, how, w.recv, w.release)})
	}
	return diags
}

// ringLenCapArg reports whether the use is an argument of len or cap —
// slice-header reads that never touch the slots.
func ringLenCapArg(path []ast.Node, id *ast.Ident) bool {
	for i := len(path) - 2; i >= 0; i-- {
		call, ok := path[i].(*ast.CallExpr)
		if !ok {
			continue
		}
		if f, isIdent := call.Fun.(*ast.Ident); isIdent && (f.Name == "len" || f.Name == "cap") {
			return true
		}
	}
	return false
}

// ringEscape classifies the escape a window use commits, or "" when the
// use is local. The alias expression is the outermost slice/paren chain
// the ident roots; its parent context decides.
func ringEscape(info *types.Info, id *ast.Ident, path []ast.Node) string {
	// Find the outermost expression that still aliases the slots: the
	// ident itself, extended through slice and paren expressions.
	top := len(path) - 1 // index of id in path
	for top > 0 {
		switch p := path[top-1].(type) {
		case *ast.SliceExpr:
			if p.X == path[top] {
				top--
				continue
			}
		case *ast.ParenExpr:
			top--
			continue
		}
		break
	}
	alias := path[top].(ast.Expr)
	if top == 0 {
		return ""
	}
	// Captured by a go/defer closure anywhere up the path: the capture
	// itself is the escape — the closure reads the slots after the
	// enclosing function may have released them. The FuncLit is the
	// CallExpr's Fun in `go func() { ... }()`, so step over the call to
	// reach the statement.
	for i := top - 1; i > 0; i-- {
		if _, ok := path[i].(*ast.FuncLit); !ok {
			continue
		}
		j := i - 1
		if call, ok := path[j].(*ast.CallExpr); ok && j > 0 && call.Fun == path[i] {
			j--
		}
		switch path[j].(type) {
		case *ast.GoStmt:
			return "captured by a go closure"
		case *ast.DeferStmt:
			return "captured by a defer closure"
		}
	}
	switch parent := path[top-1].(type) {
	case *ast.ReturnStmt:
		return "returned"
	case *ast.SendStmt:
		if parent.Value == alias {
			return "sent on a channel"
		}
	case *ast.CompositeLit:
		return "stored in a composite literal"
	case *ast.KeyValueExpr:
		return "stored in a composite literal"
	case *ast.AssignStmt:
		for i, rhs := range parent.Rhs {
			if rhs != alias || i >= len(parent.Lhs) {
				continue
			}
			switch lhs := parent.Lhs[i].(type) {
			case *ast.Ident:
				if lhs.Name == "_" {
					return ""
				}
				if obj := info.Defs[lhs]; obj != nil {
					return "" // new local alias: tracked separately
				}
				if obj := info.Uses[lhs]; obj != nil && obj.Parent() != nil && obj.Parent().Parent() == types.Universe {
					return "assigned to a package-level variable"
				}
				return "" // existing local: tracked separately
			default:
				return "stored through " + types.ExprString(parent.Lhs[i])
			}
		}
	}
	return ""
}

// childNodes returns the direct AST children of n, in source order.
func childNodes(n ast.Node) []ast.Node {
	var out []ast.Node
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if first {
			first = false
			return true
		}
		if c != nil {
			out = append(out, c)
		}
		return false
	})
	return out
}
