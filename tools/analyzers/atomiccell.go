package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
)

// AtomicCell forbids non-atomic access to struct fields of sync/atomic
// types, such as the obs metrics registry's counter cells. A field like
// `Consumed atomic.Uint64` must be used as a method receiver
// (`c.Consumed.Add(1)`) or through its address (`&c.Consumed`); any other
// use — assigning it, copying it into a variable, passing it by value —
// duplicates the cell and the copy's updates are lost.
var AtomicCell = &Analyzer{
	Name: "atomiccell",
	Doc:  "flag non-atomic access to sync/atomic struct fields (copying or assigning a counter cell)",
	Run:  runAtomicCell,
}

// atomicType reports whether t (after pointer indirection) is a named
// type defined in sync/atomic, e.g. atomic.Uint64 or atomic.Bool.
func atomicType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && pkg.Path() == "sync/atomic"
}

func runAtomicCell(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	for _, file := range pass.Files {
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return false
			}
			stack = append(stack, n)
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			selection, ok := pass.Info.Selections[sel]
			if !ok || selection.Kind() != types.FieldVal {
				return true
			}
			if !atomicType(selection.Type()) {
				return true
			}
			if len(stack) < 2 {
				return true
			}
			switch parent := stack[len(stack)-2].(type) {
			case *ast.SelectorExpr:
				// c.Consumed.Add(1) / c.Consumed.Load(): the cell is a method
				// receiver; the method's own atomicity applies.
				if parent.X == sel {
					return true
				}
			case *ast.UnaryExpr:
				// &c.Consumed: passing the cell by address keeps it shared.
				if parent.Op.String() == "&" && parent.X == sel {
					return true
				}
			}
			fieldName := selection.Obj().Name()
			diags = append(diags, Diagnostic{
				Pos: sel.Pos(),
				Message: fmt.Sprintf(
					"non-atomic access to %s field %s: use its methods or take its address, copying a %s tears the counter",
					selection.Type(), fieldName, selection.Type()),
			})
			return true
		})
	}
	return diags
}
