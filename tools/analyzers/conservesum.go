package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// ConserveSum proves the bookkeeping side of the tuple-conservation
// identity
//
//	Generated == Delivered + Shed + Failed + Drained + Abandoned
//
// for every package that declares a Totals counter struct with exactly
// those legs. The identity is checked dynamically by tests and the
// experiments harness, but it is only meaningful if the counters are
// actually maintained: a leg with no accumulation site in its owning
// package can never record a tuple's fate, and the "conserved" verdict
// becomes vacuous. Per Totals-declaring package the pass requires:
//
//   - every counter field has at least one write site (assignment,
//     compound assignment, increment, or composite-literal entry) on a
//     Totals-typed expression in the package;
//   - a Sum method, if declared, references every outcome leg and does
//     NOT fold in Generated — Sum is the right-hand side of the identity,
//     and including the left-hand side makes the check trivially true;
//   - a String method, if declared, renders every leg, so logged totals
//     can always be balanced by eye.
var ConserveSum = &Analyzer{
	Name: "conservesum",
	Doc:  "require every Totals conservation counter to be accumulated, summed, and printed consistently",
	Run:  runConserveSum,
}

// totalsOutcomes are the right-hand-side legs of the identity.
var totalsOutcomes = []string{"Delivered", "Shed", "Failed", "Drained", "Abandoned"}

// totalsFields is the full counter set, left-hand side first.
var totalsFields = append([]string{"Generated"}, totalsOutcomes...)

func runConserveSum(pass *Pass) []Diagnostic {
	tn, fieldPos := findTotalsDecl(pass)
	if tn == nil {
		return nil
	}
	info := pass.Info

	isTotals := func(t types.Type) bool {
		if t == nil {
			return false
		}
		if ptr, ok := t.(*types.Pointer); ok {
			t = ptr.Elem()
		}
		named, ok := t.(*types.Named)
		return ok && named.Obj() == tn
	}

	written := map[string]bool{}
	markWrite := func(e ast.Expr) {
		if sel, ok := e.(*ast.SelectorExpr); ok && isTotals(info.Types[sel.X].Type) {
			written[sel.Sel.Name] = true
		}
	}
	var sum, str *ast.FuncDecl
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Recv == nil || len(x.Recv.List) != 1 || !isTotals(info.Types[x.Recv.List[0].Type].Type) {
					return true
				}
				switch x.Name.Name {
				case "Sum":
					sum = x
				case "String":
					str = x
				}
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					markWrite(lhs)
				}
			case *ast.IncDecStmt:
				markWrite(x.X)
			case *ast.CompositeLit:
				if !isTotals(info.Types[x].Type) {
					return true
				}
				keyed := false
				for _, el := range x.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						keyed = true
						if id, ok := kv.Key.(*ast.Ident); ok {
							written[id.Name] = true
						}
					}
				}
				if !keyed && len(x.Elts) == len(totalsFields) {
					for _, f := range totalsFields {
						written[f] = true
					}
				}
			}
			return true
		})
	}

	var diags []Diagnostic
	for _, f := range totalsFields {
		if !written[f] {
			diags = append(diags, Diagnostic{Pos: fieldPos[f], Message: fmt.Sprintf(
				"conservation counter Totals.%s is never accumulated in package %s: the identity Generated == Delivered+Shed+Failed+Drained+Abandoned cannot hold for a leg that is never counted", f, pass.Pkg.Name())})
		}
	}
	if sum != nil {
		refs := fieldRefs(info, isTotals, sum)
		for _, f := range totalsOutcomes {
			if !refs[f] {
				diags = append(diags, Diagnostic{Pos: sum.Pos(), Message: fmt.Sprintf(
					"Totals.Sum omits outcome counter %s: the conservation check Generated == Sum() would silently ignore tuples accounted there", f)})
			}
		}
		if refs["Generated"] {
			diags = append(diags, Diagnostic{Pos: sum.Pos(), Message: "Totals.Sum folds in Generated: Sum is the right-hand side of the conservation identity and must total the outcome legs only"})
		}
	}
	if str != nil {
		refs := fieldRefs(info, isTotals, str)
		for _, f := range totalsFields {
			if !refs[f] {
				diags = append(diags, Diagnostic{Pos: str.Pos(), Message: fmt.Sprintf(
					"Totals.String omits %s: logged totals must show every leg so the conservation identity can be balanced from output", f)})
			}
		}
	}
	return diags
}

// findTotalsDecl locates a struct type named Totals declaring exactly the
// uint64 conservation counters, returning its type object and each
// counter field's declaration position.
func findTotalsDecl(pass *Pass) (*types.TypeName, map[string]token.Pos) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != "Totals" {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				pos := map[string]token.Pos{}
				for _, f := range st.Fields.List {
					for _, name := range f.Names {
						pos[name.Name] = name.Pos()
					}
				}
				all := true
				for _, f := range totalsFields {
					if _, has := pos[f]; !has {
						all = false
					}
				}
				if !all {
					continue
				}
				if tn, ok := pass.Info.Defs[ts.Name].(*types.TypeName); ok {
					return tn, pos
				}
			}
		}
	}
	return nil, nil
}

// fieldRefs collects which Totals fields a method body reads.
func fieldRefs(info *types.Info, isTotals func(types.Type) bool, fn *ast.FuncDecl) map[string]bool {
	refs := map[string]bool{}
	if fn.Body == nil {
		return refs
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok && isTotals(info.Types[sel.X].Type) {
			refs[sel.Sel.Name] = true
		}
		return true
	})
	return refs
}
