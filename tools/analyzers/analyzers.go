// Package analyzers holds the project's custom static-analysis passes,
// run over the whole repository via `go vet -vettool=$(which ssvet)`.
// The passes encode runtime invariants the type system cannot:
//
//   - atomiccell: fields of sync/atomic types (the obs counter cells) may
//     only be touched through their methods or by address — copying or
//     plain-assigning one silently tears the counter;
//   - mailboxaccount: the results of mailbox Send/SendMany/Drain carry
//     the tuple-accounting outcome (Sent/Dropped/Closed, drained counts);
//     discarding them breaks the dataplane's capacity bookkeeping;
//   - ringalias: the slice windows SPSC Peek/Reserve hand out alias ring
//     slots and die at the matching Consume/Publish — retaining or
//     escaping one reads slots the producer is already overwriting;
//   - epochfence: every mutation of the runtime's epoch tables (routing
//     plan, transports, keyed state) must be dominated by a pause-fence
//     acquire, and a demoted edge may never be re-promoted to a ring;
//   - conservesum: every Totals conservation counter must be accumulated
//     somewhere, and Sum/String must cover the identity's legs exactly.
//
// The framework below is deliberately tiny — the standard go/analysis
// machinery lives in golang.org/x/tools, which this repository does not
// depend on. cmd/ssvet adapts these passes to the `go vet -vettool`
// unitchecker protocol.
package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Pass is one analyzer's view of a type-checked package.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Diagnostic is one finding, positioned in the package's sources.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Analyzer is one named pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) []Diagnostic
}

// All lists every pass, in the order ssvet runs them.
var All = []*Analyzer{AtomicCell, MailboxAccount, RingAlias, EpochFence, ConserveSum}
