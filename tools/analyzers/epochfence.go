package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// EpochFence enforces the live-reconfiguration protocol of
// internal/runtime: the epoch tables (routing plan, transport bindings,
// observability cells, fault streams, retirement marks) and operator
// keyed state may only change under a pause fence — the runtime's
// correctness argument is exactly "every mutation is dominated by a
// fence acquire, and the atomic table swap publishes it" — and a
// demotion path must never hand a station back a fresh SPSC ring.
//
// Per function, a mutation is considered fence-dominated when one holds:
//
//   - the function receives a *fence (parameter or receiver) — a static
//     capability only fence-holding callers can supply;
//   - a .pause(...) call on a fence lexically precedes the mutation in
//     the same function body;
//   - the mutated tables value is function-fresh: built here by a
//     &tables{...} literal, as in the initial engine construction, so no
//     running station can observe it yet.
//
// Checked mutations: assignments (element or whole-field) reached
// through a tables-typed expression, ImportKey calls (keyed-state
// migration), and Store calls publishing a *tables. Additionally,
// element writes X.mailboxes[i] = v on non-fresh tables must take v
// from demoteInbox — the constructor that can only produce the MPSC
// path — so a demoted edge cannot be re-promoted to a ring whose
// single-producer proof no longer holds.
var EpochFence = &Analyzer{
	Name: "epochfence",
	Doc:  "require pause-fence domination for epoch-table and keyed-state mutations; demotions never re-promote a ring",
	Run:  runEpochFence,
}

const runtimePkgPath = "spinstreams/internal/runtime"

// tablesFields are the epoch-table fields the pass guards.
var tablesFields = map[string]bool{
	"epoch":     true,
	"p":         true,
	"mailboxes": true,
	"senders":   true,
	"st":        true,
	"stFaults":  true,
	"retired":   true,
}

func runEpochFence(pass *Pass) []Diagnostic {
	if !strings.HasPrefix(pass.Pkg.Path(), runtimePkgPath) {
		return nil
	}
	var diags []Diagnostic
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			diags = append(diags, epochFenceFunc(pass, fn)...)
		}
	}
	return diags
}

// isNamed reports whether t (after pointer indirection) is the named
// type name declared in a runtime package.
func isNamed(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != name {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && strings.HasPrefix(pkg.Path(), runtimePkgPath)
}

func epochFenceFunc(pass *Pass, fn *ast.FuncDecl) []Diagnostic {
	info := pass.Info

	// A *fence parameter or receiver is the static capability.
	hasFence := false
	fields := []*ast.FieldList{fn.Type.Params}
	if fn.Recv != nil {
		fields = append(fields, fn.Recv)
	}
	for _, fl := range fields {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			if isNamed(info.Types[f.Type].Type, "fence") {
				hasFence = true
			}
		}
	}

	// Lexically preceding fence.pause(...) calls.
	var pausePos []token.Pos
	// Function-fresh tables roots (x := &tables{...}).
	fresh := map[types.Object]bool{}
	// Idents bound from demoteInbox calls.
	demoted := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "pause" {
				if isNamed(info.Types[sel.X].Type, "fence") {
					pausePos = append(pausePos, x.Pos())
				}
			}
		case *ast.AssignStmt:
			if len(x.Rhs) != 1 {
				return true
			}
			id, ok := x.Lhs[0].(*ast.Ident)
			if !ok {
				return true
			}
			obj := info.Defs[id]
			if obj == nil {
				obj = info.Uses[id]
			}
			if obj == nil {
				return true
			}
			if un, ok := x.Rhs[0].(*ast.UnaryExpr); ok && un.Op == token.AND {
				if cl, ok := un.X.(*ast.CompositeLit); ok && isNamed(info.Types[cl].Type, "tables") {
					fresh[obj] = true
				}
			}
			if call, ok := x.Rhs[0].(*ast.CallExpr); ok {
				name := ""
				switch f := call.Fun.(type) {
				case *ast.Ident:
					name = f.Name
				case *ast.SelectorExpr:
					name = f.Sel.Name
				}
				if name == "demoteInbox" {
					demoted[obj] = true
				}
			}
		}
		return true
	})

	fenced := func(pos token.Pos) bool {
		if hasFence {
			return true
		}
		for _, p := range pausePos {
			if p < pos {
				return true
			}
		}
		return false
	}
	isFresh := func(root *ast.Ident) bool {
		if root == nil {
			return false
		}
		obj := info.Uses[root]
		if obj == nil {
			obj = info.Defs[root]
		}
		return obj != nil && fresh[obj]
	}

	var diags []Diagnostic
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				field, root, element, ok := tablesFieldWrite(info, lhs)
				if !ok {
					continue
				}
				freshRoot := isFresh(root)
				if !freshRoot && !fenced(lhs.Pos()) {
					diags = append(diags, Diagnostic{Pos: lhs.Pos(), Message: fmt.Sprintf(
						"epoch-table field %s mutated outside a pause fence: pass the *fence in or pause before mutating", field)})
				}
				if field == "mailboxes" && element && !freshRoot {
					if !fromDemoteInbox(info, x, lhs, demoted) {
						diags = append(diags, Diagnostic{Pos: lhs.Pos(), Message: "replacing a live station's inbox must go through demoteInbox: a demoted edge may never be re-promoted to an SPSC ring"})
					}
				}
			}
		case *ast.IncDecStmt:
			if field, root, _, ok := tablesFieldWrite(info, x.X); ok && !isFresh(root) && !fenced(x.Pos()) {
				diags = append(diags, Diagnostic{Pos: x.Pos(), Message: fmt.Sprintf(
					"epoch-table field %s mutated outside a pause fence: pass the *fence in or pause before mutating", field)})
			}
		case *ast.CallExpr:
			sel, ok := x.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch sel.Sel.Name {
			case "ImportKey":
				if !fenced(x.Pos()) {
					diags = append(diags, Diagnostic{Pos: x.Pos(), Message: "keyed-state migration (ImportKey) outside a pause fence: the owning station must be paused and drained first"})
				}
			case "Store":
				if len(x.Args) != 1 || !isNamed(info.Types[x.Args[0]].Type, "tables") {
					return true
				}
				argFresh := false
				if id, isIdent := x.Args[0].(*ast.Ident); isIdent {
					argFresh = isFresh(id)
				}
				if !argFresh && !fenced(x.Pos()) {
					diags = append(diags, Diagnostic{Pos: x.Pos(), Message: "publishing epoch tables outside a pause fence: the swap's ordering guarantees need the fence"})
				}
			}
		}
		return true
	})
	return diags
}

// tablesFieldWrite decodes an lvalue that reaches through a tables-typed
// expression: the guarded field name, the root identifier of the chain
// (nil when the base is not a plain identifier), and whether the write
// indexes into the field (element write) rather than replacing it.
func tablesFieldWrite(info *types.Info, lhs ast.Expr) (field string, root *ast.Ident, element bool, ok bool) {
	e := lhs
	indexed := false
	for {
		switch x := e.(type) {
		case *ast.IndexExpr:
			indexed = true
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			if tv, has := info.Types[x.X]; has && isNamed(tv.Type, "tables") && tablesFields[x.Sel.Name] {
				return x.Sel.Name, baseIdent(x.X), indexed, true
			}
			indexed = false
			e = x.X
		default:
			return "", nil, false, false
		}
	}
}

// baseIdent returns the identifier at the base of a selector/index
// chain, or nil.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// fromDemoteInbox reports whether the value assigned into a mailboxes
// slot is (or was bound from) a demoteInbox result.
func fromDemoteInbox(info *types.Info, as *ast.AssignStmt, lhs ast.Expr, demoted map[types.Object]bool) bool {
	var rhs ast.Expr
	for i, l := range as.Lhs {
		if l == lhs && i < len(as.Rhs) {
			rhs = as.Rhs[i]
		}
	}
	if rhs == nil && len(as.Rhs) == 1 {
		rhs = as.Rhs[0]
	}
	switch v := rhs.(type) {
	case *ast.CallExpr:
		switch f := v.Fun.(type) {
		case *ast.Ident:
			return f.Name == "demoteInbox"
		case *ast.SelectorExpr:
			return f.Sel.Name == "demoteInbox"
		}
	case *ast.Ident:
		if obj := info.Uses[v]; obj != nil {
			return demoted[obj]
		}
	}
	return false
}
