package analyzers

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// The tests typecheck synthetic snippets against stub packages registered
// under the real import paths ("sync/atomic", the mailbox package): the
// analyzers key only on package paths and method names, so minimal
// non-generic stubs exercise the same detection logic without depending
// on export data for the real packages.

const atomicStub = `package atomic
type Uint64 struct{ v uint64 }
func (u *Uint64) Add(d uint64) uint64 { u.v += d; return u.v }
func (u *Uint64) Load() uint64        { return u.v }
func (u *Uint64) Store(x uint64)      { u.v = x }
type Bool struct{ v bool }
func (b *Bool) Load() bool   { return b.v }
func (b *Bool) Store(x bool) { b.v = x }
`

const mailboxStub = `package mailbox
type SendResult int
type Sender struct{}
func (s *Sender) Send(v int) SendResult                { return 0 }
func (s *Sender) SendMany(vs []int) (int, int, bool)   { return 0, 0, false }
func (s *Sender) Flush()                               {}
type Mailbox struct{}
func (m *Mailbox) Drain() int { return 0 }
`

// mapImporter resolves imports from pre-typechecked stub packages.
type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m[path]; ok {
		return pkg, nil
	}
	return importer.Default().Import(path)
}

func checkStub(t *testing.T, fset *token.FileSet, path, src string) *types.Package {
	t.Helper()
	f, err := parser.ParseFile(fset, path+".go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := (&types.Config{Importer: mapImporter{}}).Check(path, fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// analyze typechecks src against the stubs and runs a over it.
func analyze(t *testing.T, a *Analyzer, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	imp := mapImporter{
		"sync/atomic":  checkStub(t, fset, "sync/atomic", atomicStub),
		mailboxPkgPath: checkStub(t, fset, mailboxPkgPath, mailboxStub),
	}
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := (&types.Config{Importer: imp}).Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return a.Run(&Pass{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info})
}

func lines(t *testing.T, fset *token.FileSet, ds []Diagnostic) []int {
	t.Helper()
	out := make([]int, len(ds))
	for i, d := range ds {
		out[i] = fset.Position(d.Pos).Line
	}
	return out
}

func TestAtomicCellAllowsMethodAndAddress(t *testing.T) {
	ds := analyze(t, AtomicCell, `package p
import "sync/atomic"
type Cell struct {
	Consumed atomic.Uint64
	Degraded atomic.Bool
}
func ok(c *Cell) uint64 {
	c.Consumed.Add(1)
	c.Degraded.Store(true)
	p := &c.Consumed
	return p.Load()
}
`)
	if len(ds) != 0 {
		t.Fatalf("clean code flagged: %v", ds)
	}
}

func TestAtomicCellFlagsCopies(t *testing.T) {
	src := `package p
import "sync/atomic"
type Cell struct {
	Consumed atomic.Uint64
}
func bad(c, d *Cell) {
	x := c.Consumed
	_ = x
	c.Consumed = d.Consumed
}
`
	ds := analyze(t, AtomicCell, src)
	// Line 7 copies the cell; line 9 assigns it (both sides flagged).
	if len(ds) != 3 {
		t.Fatalf("want 3 diagnostics, got %d: %v", len(ds), ds)
	}
	for _, d := range ds {
		if d.Message == "" {
			t.Error("empty message")
		}
	}
}

func TestMailboxAccountAllowsCheckedResults(t *testing.T) {
	ds := analyze(t, MailboxAccount, fmt.Sprintf(`package p
import mb %q
func ok(s *mb.Sender, m *mb.Mailbox) int {
	if s.Send(1) != 0 {
		return 0
	}
	sent, dropped, _ := s.SendMany(nil)
	s.Flush()
	return sent + dropped + m.Drain()
}
`, mailboxPkgPath))
	if len(ds) != 0 {
		t.Fatalf("clean code flagged: %v", ds)
	}
}

func TestMailboxAccountFlagsDiscards(t *testing.T) {
	ds := analyze(t, MailboxAccount, fmt.Sprintf(`package p
import mb %q
func bad(s *mb.Sender, m *mb.Mailbox) {
	s.Send(1)
	_ = s.Send(2)
	_, _, _ = s.SendMany(nil)
	m.Drain()
	go s.Send(3)
	defer m.Drain()
}
`, mailboxPkgPath))
	if len(ds) != 6 {
		t.Fatalf("want 6 diagnostics, got %d: %v", len(ds), ds)
	}
}
