package analyzers

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// The tests typecheck synthetic snippets against stub packages registered
// under the real import paths ("sync/atomic", the mailbox package): the
// analyzers key only on package paths and method names, so minimal
// non-generic stubs exercise the same detection logic without depending
// on export data for the real packages.

const atomicStub = `package atomic
type Uint64 struct{ v uint64 }
func (u *Uint64) Add(d uint64) uint64 { u.v += d; return u.v }
func (u *Uint64) Load() uint64        { return u.v }
func (u *Uint64) Store(x uint64)      { u.v = x }
type Bool struct{ v bool }
func (b *Bool) Load() bool   { return b.v }
func (b *Bool) Store(x bool) { b.v = x }
`

const mailboxStub = `package mailbox
type SendResult int
type Sender struct{}
func (s *Sender) Send(v int) SendResult                { return 0 }
func (s *Sender) SendMany(vs []int) (int, int, bool)   { return 0, 0, false }
func (s *Sender) Flush()                               {}
type Mailbox struct{}
func (m *Mailbox) Drain() int { return 0 }
func (m *Mailbox) Peek(done chan struct{}) ([]int, bool)    { return nil, false }
func (m *Mailbox) Consume(n int)                            {}
func (m *Mailbox) Reserve(n int, done chan struct{}) []int  { return nil }
func (m *Mailbox) Publish(n int)                            {}
`

// mapImporter resolves imports from pre-typechecked stub packages.
type mapImporter map[string]*types.Package

func (m mapImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := m[path]; ok {
		return pkg, nil
	}
	return importer.Default().Import(path)
}

func checkStub(t *testing.T, fset *token.FileSet, path, src string) *types.Package {
	t.Helper()
	f, err := parser.ParseFile(fset, path+".go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := (&types.Config{Importer: mapImporter{}}).Check(path, fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

// analyze typechecks src against the stubs and runs a over it.
func analyze(t *testing.T, a *Analyzer, src string) []Diagnostic {
	t.Helper()
	return analyzeAt(t, a, "p", src)
}

// analyzeAt typechecks src under an explicit package path — the
// epochfence pass keys on the runtime package's import path.
func analyzeAt(t *testing.T, a *Analyzer, path, src string) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	imp := mapImporter{
		"sync/atomic":  checkStub(t, fset, "sync/atomic", atomicStub),
		mailboxPkgPath: checkStub(t, fset, mailboxPkgPath, mailboxStub),
	}
	f, err := parser.ParseFile(fset, "p.go", src, 0)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	pkg, err := (&types.Config{Importer: imp}).Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	return a.Run(&Pass{Fset: fset, Files: []*ast.File{f}, Pkg: pkg, Info: info})
}

func lines(t *testing.T, fset *token.FileSet, ds []Diagnostic) []int {
	t.Helper()
	out := make([]int, len(ds))
	for i, d := range ds {
		out[i] = fset.Position(d.Pos).Line
	}
	return out
}

func TestAtomicCellAllowsMethodAndAddress(t *testing.T) {
	ds := analyze(t, AtomicCell, `package p
import "sync/atomic"
type Cell struct {
	Consumed atomic.Uint64
	Degraded atomic.Bool
}
func ok(c *Cell) uint64 {
	c.Consumed.Add(1)
	c.Degraded.Store(true)
	p := &c.Consumed
	return p.Load()
}
`)
	if len(ds) != 0 {
		t.Fatalf("clean code flagged: %v", ds)
	}
}

func TestAtomicCellFlagsCopies(t *testing.T) {
	src := `package p
import "sync/atomic"
type Cell struct {
	Consumed atomic.Uint64
}
func bad(c, d *Cell) {
	x := c.Consumed
	_ = x
	c.Consumed = d.Consumed
}
`
	ds := analyze(t, AtomicCell, src)
	// Line 7 copies the cell; line 9 assigns it (both sides flagged).
	if len(ds) != 3 {
		t.Fatalf("want 3 diagnostics, got %d: %v", len(ds), ds)
	}
	for _, d := range ds {
		if d.Message == "" {
			t.Error("empty message")
		}
	}
}

func TestMailboxAccountAllowsCheckedResults(t *testing.T) {
	ds := analyze(t, MailboxAccount, fmt.Sprintf(`package p
import mb %q
func ok(s *mb.Sender, m *mb.Mailbox) int {
	if s.Send(1) != 0 {
		return 0
	}
	sent, dropped, _ := s.SendMany(nil)
	s.Flush()
	return sent + dropped + m.Drain()
}
`, mailboxPkgPath))
	if len(ds) != 0 {
		t.Fatalf("clean code flagged: %v", ds)
	}
}

func TestMailboxAccountFlagsDiscards(t *testing.T) {
	ds := analyze(t, MailboxAccount, fmt.Sprintf(`package p
import mb %q
func bad(s *mb.Sender, m *mb.Mailbox) {
	s.Send(1)
	_ = s.Send(2)
	_, _, _ = s.SendMany(nil)
	m.Drain()
	go s.Send(3)
	defer m.Drain()
}
`, mailboxPkgPath))
	if len(ds) != 6 {
		t.Fatalf("want 6 diagnostics, got %d: %v", len(ds), ds)
	}
}

func TestRingAliasAllowsProtocolUse(t *testing.T) {
	ds := analyze(t, RingAlias, fmt.Sprintf(`package p
import mb %q
func okPeek(m *mb.Mailbox, done chan struct{}) int {
	win, okp := m.Peek(done)
	if !okp {
		return 0
	}
	n := 0
	for i := range win {
		n += win[i]
	}
	m.Consume(len(win))
	return n + len(win)
}
func okReserve(m *mb.Mailbox, done chan struct{}) {
	win := m.Reserve(4, done)
	for i := range win {
		win[i] = i
	}
	m.Publish(len(win))
}
func okRebind(m *mb.Mailbox, done chan struct{}) {
	for {
		win, okp := m.Peek(done)
		if !okp {
			return
		}
		_ = win[0]
		m.Consume(len(win))
	}
}
func okBranch(m *mb.Mailbox, done chan struct{}, sink bool) int {
	for {
		win, _ := m.Peek(done)
		if sink {
			m.Consume(len(win))
			continue
		}
		_ = win[0]
		m.Consume(len(win))
		return 0
	}
}
func okMixed(m *mb.Mailbox, done chan struct{}) {
	win, _ := m.Peek(done)
	m.Publish(3)
	_ = win[0]
	m.Consume(len(win))
}
`, mailboxPkgPath))
	if len(ds) != 0 {
		t.Fatalf("protocol-respecting code flagged: %v", ds)
	}
}

func TestRingAliasFlagsUseAfterRelease(t *testing.T) {
	ds := analyze(t, RingAlias, fmt.Sprintf(`package p
import mb %q
func bad(m *mb.Mailbox, done chan struct{}) int {
	win, _ := m.Peek(done)
	m.Consume(len(win))
	return win[0]
}
`, mailboxPkgPath))
	if len(ds) != 1 {
		t.Fatalf("want 1 diagnostic, got %d: %v", len(ds), ds)
	}
}

func TestRingAliasFlagsEscapes(t *testing.T) {
	ds := analyze(t, RingAlias, fmt.Sprintf(`package p
import mb %q
var g []int
func escapes(m *mb.Mailbox, done chan struct{}) []int {
	win, _ := m.Peek(done)
	g = win
	ch := make(chan []int, 1)
	ch <- win[1:]
	s := struct{ w []int }{w: win}
	_ = s
	go func() { _ = win }()
	return win
}
`, mailboxPkgPath))
	if len(ds) != 5 {
		t.Fatalf("want 5 escape diagnostics, got %d: %v", len(ds), ds)
	}
}

// epochStub declares local stand-ins for the runtime's fence/tables
// machinery; epochfence keys on type names within the runtime package
// path, so a snippet typechecked at that path exercises the real logic.
const epochStub = `
type fence struct{}
func (f *fence) pause(id int, drain bool) (int, error) { return 0, nil }
type planT struct{ Stations []int }
type cell struct{}
func (c *cell) Store(t *tables) {}
type tables struct {
	epoch     uint64
	p         *planT
	mailboxes []int
	senders   [][]int
	st        []int
	stFaults  []int
	retired   []bool
}
type engine struct{ live cell }
type keyed struct{}
func (k *keyed) ImportKey(id int, v int) {}
func newInbox() int    { return 0 }
func demoteInbox() int { return 0 }
`

func TestEpochFenceFlagsUnfencedMutations(t *testing.T) {
	ds := analyzeAt(t, EpochFence, runtimePkgPath, `package runtime
`+epochStub+`
func bad(nt *tables, e *engine, k *keyed) {
	nt.epoch = 1
	nt.p.Stations = append(nt.p.Stations, 1)
	nt.retired[0] = true
	k.ImportKey(1, 2)
	e.live.Store(nt)
}
`)
	if len(ds) != 5 {
		t.Fatalf("want 5 diagnostics, got %d: %v", len(ds), ds)
	}
}

func TestEpochFenceAllowsFenceParam(t *testing.T) {
	ds := analyzeAt(t, EpochFence, runtimePkgPath, `package runtime
`+epochStub+`
func ok(f *fence, nt *tables, e *engine, k *keyed) {
	nt.epoch = 1
	nt.p.Stations = append(nt.p.Stations, 1)
	k.ImportKey(1, 2)
	e.live.Store(nt)
}
`)
	if len(ds) != 0 {
		t.Fatalf("fence-holding code flagged: %v", ds)
	}
}

func TestEpochFenceLexicalPauseOrder(t *testing.T) {
	ds := analyzeAt(t, EpochFence, runtimePkgPath, `package runtime
`+epochStub+`
func mixed(nt *tables, e *engine) {
	nt.epoch = 1
	f := &fence{}
	f.pause(0, true)
	nt.senders[0] = nil
	e.live.Store(nt)
}
`)
	// Only the pre-pause mutation is flagged.
	if len(ds) != 1 {
		t.Fatalf("want 1 diagnostic, got %d: %v", len(ds), ds)
	}
}

func TestEpochFenceAllowsFreshTables(t *testing.T) {
	ds := analyzeAt(t, EpochFence, runtimePkgPath, `package runtime
`+epochStub+`
func build(e *engine) {
	nt := &tables{}
	nt.epoch = 1
	nt.mailboxes = append(nt.mailboxes, newInbox())
	nt.mailboxes[0] = newInbox()
	e.live.Store(nt)
}
`)
	if len(ds) != 0 {
		t.Fatalf("fresh-tables construction flagged: %v", ds)
	}
}

func TestEpochFenceDemotionNeverRepromotes(t *testing.T) {
	ds := analyzeAt(t, EpochFence, runtimePkgPath, `package runtime
`+epochStub+`
func swap(f *fence, nt *tables) {
	nt.mailboxes[0] = newInbox()
	m := demoteInbox()
	nt.mailboxes[1] = m
	nt.mailboxes[2] = demoteInbox()
}
`)
	// Fenced, so only the non-demoteInbox replacement is flagged.
	if len(ds) != 1 {
		t.Fatalf("want 1 diagnostic, got %d: %v", len(ds), ds)
	}
}

func TestEpochFenceIgnoresOtherPackages(t *testing.T) {
	ds := analyze(t, EpochFence, `package p
`+epochStub+`
func bad(nt *tables) {
	nt.epoch = 1
}
`)
	if len(ds) != 0 {
		t.Fatalf("non-runtime package flagged: %v", ds)
	}
}

func TestConserveSumAllowsBalancedTotals(t *testing.T) {
	ds := analyze(t, ConserveSum, `package p
type Totals struct {
	Generated, Delivered, Shed, Failed, Drained, Abandoned uint64
}
func acc(t *Totals) {
	t.Generated++
	t.Delivered += 2
	t.Shed = 1
	t.Failed++
	t.Drained++
	t.Abandoned++
}
func (t Totals) Sum() uint64 {
	return t.Delivered + t.Shed + t.Failed + t.Drained + t.Abandoned
}
func (t Totals) String() string {
	_ = t.Generated + t.Delivered + t.Shed + t.Failed + t.Drained + t.Abandoned
	return ""
}
`)
	if len(ds) != 0 {
		t.Fatalf("balanced Totals flagged: %v", ds)
	}
}

func TestConserveSumCountsCompositeLiterals(t *testing.T) {
	ds := analyze(t, ConserveSum, `package p
type Totals struct {
	Generated, Delivered, Shed, Failed, Drained, Abandoned uint64
}
func mk() Totals {
	return Totals{Generated: 1, Delivered: 1, Shed: 1, Failed: 1, Drained: 1, Abandoned: 1}
}
`)
	if len(ds) != 0 {
		t.Fatalf("keyed composite literal not counted as writes: %v", ds)
	}
}

func TestConserveSumFlagsGaps(t *testing.T) {
	ds := analyze(t, ConserveSum, `package p
type Totals struct {
	Generated, Delivered, Shed, Failed, Drained, Abandoned uint64
}
func acc(t *Totals) {
	t.Generated++
	t.Delivered++
	t.Shed++
	t.Failed++
	t.Drained++
}
func (t Totals) Sum() uint64 {
	return t.Generated + t.Delivered + t.Shed + t.Failed + t.Drained
}
func (t Totals) String() string {
	_ = t.Delivered + t.Shed + t.Failed + t.Drained + t.Abandoned
	return ""
}
`)
	// Abandoned never accumulated; Sum omits Abandoned and folds in
	// Generated; String omits Generated.
	if len(ds) != 4 {
		t.Fatalf("want 4 diagnostics, got %d: %v", len(ds), ds)
	}
}

func TestConserveSumIgnoresUnrelatedTotals(t *testing.T) {
	ds := analyze(t, ConserveSum, `package p
type Totals struct{ Rows int }
`)
	if len(ds) != 0 {
		t.Fatalf("unrelated Totals type flagged: %v", ds)
	}
}
