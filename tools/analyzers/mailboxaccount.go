package analyzers

import (
	"fmt"
	"go/ast"
	"go/types"
)

// MailboxAccount enforces the dataplane's tuple-accounting contract: the
// results of mailbox Send, SendMany and Drain carry the accounting
// outcome — a SendResult (Sent/Dropped/Closed/Timeout) or drained/sent
// counts that the caller must fold into its metrics. A call whose result
// is discarded (an expression statement, an all-blank assignment, or a
// go/defer statement) pushes tuples the books never see.
var MailboxAccount = &Analyzer{
	Name: "mailboxaccount",
	Doc:  "flag discarded results of mailbox Send/SendMany/Drain (tuple accounting must be updated)",
	Run:  runMailboxAccount,
}

// mailboxMethods are the result-carrying methods the pass guards.
var mailboxMethods = map[string]bool{
	"Send":     true,
	"SendMany": true,
	"Drain":    true,
}

const mailboxPkgPath = "spinstreams/internal/mailbox"

// mailboxCall reports whether call is a guarded method call on a mailbox
// type, returning the method name.
func mailboxCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !mailboxMethods[sel.Sel.Name] {
		return "", false
	}
	selection, ok := info.Selections[sel]
	if !ok || selection.Kind() != types.MethodVal {
		return "", false
	}
	recv := selection.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil || pkg.Path() != mailboxPkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}

func runMailboxAccount(pass *Pass) []Diagnostic {
	var diags []Diagnostic
	report := func(call *ast.CallExpr, name, how string) {
		diags = append(diags, Diagnostic{
			Pos: call.Pos(),
			Message: fmt.Sprintf(
				"result of mailbox %s discarded (%s): the accounting outcome must reach the metrics", name, how),
		})
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					if name, ok := mailboxCall(pass.Info, call); ok {
						report(call, name, "expression statement")
					}
				}
			case *ast.GoStmt:
				if name, ok := mailboxCall(pass.Info, stmt.Call); ok {
					report(stmt.Call, name, "go statement")
				}
			case *ast.DeferStmt:
				if name, ok := mailboxCall(pass.Info, stmt.Call); ok {
					report(stmt.Call, name, "defer statement")
				}
			case *ast.AssignStmt:
				allBlank := len(stmt.Rhs) == 1
				for _, lhs := range stmt.Lhs {
					if id, ok := lhs.(*ast.Ident); !ok || id.Name != "_" {
						allBlank = false
					}
				}
				if !allBlank {
					return true
				}
				if call, ok := stmt.Rhs[0].(*ast.CallExpr); ok {
					if name, ok := mailboxCall(pass.Info, call); ok {
						report(call, name, "assigned to blank")
					}
				}
			}
			return true
		})
	}
	return diags
}
