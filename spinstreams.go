// Package spinstreams is a static optimization tool and execution stack
// for data stream processing applications, reproducing "SpinStreams: a
// Static Optimization Tool for Data Stream Processing Applications"
// (Mencagli, Dazzi, Tonci — Middleware 2018).
//
// The package is a facade over the library's subsystems:
//
//   - topology modeling and the steady-state backpressure cost model
//     (Algorithm 1), operator fission with optimal replication degrees
//     (Algorithm 2), and operator fusion of single-front-end subgraphs
//     (Algorithm 3) — internal/core;
//   - the XML topology formalism — internal/xmlio;
//   - the catalog of 20 real-world operators (maps, filters, windowed
//     aggregations, spatial queries, band-joins) — internal/operators;
//   - physical plan expansion (emitters, replicas, collectors,
//     meta-operators) — internal/plan;
//   - a deterministic discrete-event simulator of the topology as a
//     queueing network with Blocking-After-Service semantics —
//     internal/qsim;
//   - a live goroutine runtime with bounded-channel mailboxes (the
//     SS2Akka analog) — internal/runtime;
//   - random testbed generation (Algorithm 5), profiling and Go code
//     generation — internal/randtopo, internal/profiler,
//     internal/codegen.
//
// Quick start:
//
//	t := spinstreams.NewTopology()
//	src := t.MustAddOperator(spinstreams.Operator{Name: "src", Kind: spinstreams.KindSource, ServiceTime: 1e-3})
//	hot := t.MustAddOperator(spinstreams.Operator{Name: "hot", Kind: spinstreams.KindStateless, ServiceTime: 4e-3})
//	sink := t.MustAddOperator(spinstreams.Operator{Name: "sink", Kind: spinstreams.KindSink, ServiceTime: 1e-4})
//	t.MustConnect(src, hot, 1)
//	t.MustConnect(hot, sink, 1)
//	a, _ := spinstreams.Analyze(t)              // predicted throughput: 250/s (hot is a bottleneck)
//	res, _ := spinstreams.Optimize(t, spinstreams.FissionOptions{})
//	_ = a
//	_ = res                                     // hot gets ceil(4) = 4 replicas; throughput 1000/s
//
// See the runnable programs under examples/ for full scenarios.
package spinstreams

import (
	"context"
	"io"

	"spinstreams/internal/core"
	"spinstreams/internal/faultinject"
	"spinstreams/internal/lint"
	"spinstreams/internal/obs"
	"spinstreams/internal/operators"
	"spinstreams/internal/opt"
	"spinstreams/internal/plan"
	"spinstreams/internal/qsim"
	"spinstreams/internal/runtime"
	"spinstreams/internal/xmlio"
)

// Re-exported topology model types.
type (
	// Topology is a rooted acyclic graph of operators; see core.Topology.
	Topology = core.Topology
	// Operator is one vertex of a topology.
	Operator = core.Operator
	// OpID identifies an operator within a topology.
	OpID = core.OpID
	// Kind classifies an operator's state.
	Kind = core.Kind
	// KeyDistribution is the key-frequency profile of a
	// partitioned-stateful operator.
	KeyDistribution = core.KeyDistribution
	// Analysis is the result of the steady-state cost model.
	Analysis = core.Analysis
	// FissionOptions tunes bottleneck elimination.
	FissionOptions = core.FissionOptions
	// FissionResult is the outcome of bottleneck elimination.
	FissionResult = core.FissionResult
	// FusionReport is the predicted outcome of an operator fusion.
	FusionReport = core.FusionReport
	// FusionCandidate is a ranked fusion suggestion.
	FusionCandidate = core.FusionCandidate
	// SimConfig tunes the discrete-event simulation.
	SimConfig = qsim.Config
	// SimResult is a simulation outcome.
	SimResult = qsim.Result
	// RunConfig tunes live execution on the goroutine runtime.
	RunConfig = runtime.Config
	// RunMetrics is a live execution outcome.
	RunMetrics = runtime.Metrics
	// RunTotals is the lifetime tuple accounting of a run; on unit-gain
	// topologies Generated == Delivered + Shed + Failed + Drained +
	// Abandoned exactly.
	RunTotals = runtime.Totals
	// FaultInjector deterministically injects faults into a run via
	// RunConfig.Faults; see internal/faultinject.
	FaultInjector = faultinject.Injector
	// FaultInjectorConfig selects the fault schedule.
	FaultInjectorConfig = faultinject.Config
	// Binding supplies operator implementations to the runtime.
	Binding = runtime.Binding
	// Tuple is the unit of data flowing through executed topologies.
	Tuple = operators.Tuple
	// Spec selects a catalog operator implementation.
	Spec = operators.Spec
	// Plan is a physical execution plan.
	Plan = plan.Plan
	// ObsRegistry is the per-station metrics registry; pass one via
	// RunConfig.Obs to enable timed sampling, tracer hooks, the HTTP
	// metrics endpoint and post-run snapshots.
	ObsRegistry = obs.Registry
	// ObsSnapshot is a point-in-time view of a registry.
	ObsSnapshot = obs.Snapshot
	// Tracer receives station lifecycle callbacks (receive, serve, emit,
	// restart, degrade); register via ObsRegistry.AddTracer before the run.
	Tracer = obs.Tracer
	// DriftReport compares the cost model's predictions against a run's
	// measured rates.
	DriftReport = obs.DriftReport
)

// Operator kinds.
const (
	KindSource              = core.KindSource
	KindStateless           = core.KindStateless
	KindPartitionedStateful = core.KindPartitionedStateful
	KindStateful            = core.KindStateful
	KindSink                = core.KindSink
)

// NewTopology returns an empty topology.
func NewTopology() *Topology { return core.NewTopology() }

// Analyze runs the steady-state analysis (Algorithm 1): per-operator
// departure rates and the predicted topology throughput under
// backpressure.
func Analyze(t *Topology) (*Analysis, error) { return core.SteadyState(t) }

// Optimize eliminates bottlenecks via operator fission (Algorithm 2).
func Optimize(t *Topology, opts FissionOptions) (*FissionResult, error) {
	return core.EliminateBottlenecks(t, opts)
}

// Fuse replaces the subgraph with a meta-operator (Algorithm 3) and
// predicts the outcome; the returned topology is a new graph.
func Fuse(t *Topology, members []OpID, name string) (*Topology, *FusionReport, error) {
	return core.Fuse(t, members, name)
}

// Candidates proposes fusion subgraphs ranked by the meta-operator's
// predicted utilization, most underutilized first.
func Candidates(t *Topology) ([]FusionCandidate, error) {
	return core.FusionCandidates(t, nil)
}

// AutoFuse repeatedly applies the safest fusion candidate until none
// qualifies, coarsening the topology without hurting predicted throughput
// (the automation the paper lists as future work).
func AutoFuse(t *Topology, opts core.AutoFuseOptions) (*core.AutoFuseResult, error) {
	return core.AutoFuse(t, opts)
}

// AutoFuseOptions and AutoFuseResult configure and report AutoFuse.
type (
	AutoFuseOptions = core.AutoFuseOptions
	AutoFuseResult  = core.AutoFuseResult
)

// EstimateLatency predicts per-operator queueing delays and the expected
// end-to-end latency from a steady-state analysis (pass nil to compute
// one); an extension of the paper's throughput-only models, validated
// against the simulator's measured waiting times.
func EstimateLatency(t *Topology, a *Analysis, model core.LatencyModel, bufferCapacity int) (*core.LatencyEstimate, error) {
	return core.EstimateLatency(t, a, model, bufferCapacity)
}

// Latency model selectors and result type.
type (
	LatencyModel    = core.LatencyModel
	LatencyEstimate = core.LatencyEstimate
)

// Queueing approximations for EstimateLatency.
const (
	MM1 = core.MM1
	MD1 = core.MD1
)

// Optimizer pipeline types (internal/opt): the pass-pipeline driver that
// composes Algorithms 1-3 over an immutable topology snapshot with a
// memoizing steady-state solver and a structured rewrite trace.
type (
	// OptimizerOptions configures the pass pipeline (fission and fusion
	// options, pass toggles, cyclic admission).
	OptimizerOptions = opt.Options
	// OptimizerResult is the pipeline outcome: final snapshot, per-pass
	// results, replica degrees mapped to the final topology, the rewrite
	// trace and the solver-cache statistics.
	OptimizerResult = opt.Result
	// RewriteTrace is the structured record of every optimizer decision,
	// exportable as JSON (schema opt.TraceSchema).
	RewriteTrace = opt.Trace
	// DeltaPlan is Reoptimize's output: replica changes and fusions to
	// undo under measured profiles.
	DeltaPlan = opt.DeltaPlan
)

// OptimizePipeline runs the full pass pipeline — analysis, bottleneck
// elimination, fusion — and returns the composite result with its
// rewrite trace. Equivalent to running Analyze, Optimize and AutoFuse in
// sequence, but with shared solver memoization and provenance.
func OptimizePipeline(t *Topology, opts OptimizerOptions) (*OptimizerResult, error) {
	return opt.Run(t, opts)
}

// Reoptimize closes the adaptation loop: it substitutes a drift report's
// measured profiles into the topology, re-runs the optimizer pipeline,
// and returns the delta plan (replica changes, fusions to undo) that
// moves the deployment to the new optimum.
func Reoptimize(t *Topology, drift *DriftReport, opts OptimizerOptions) (*DeltaPlan, error) {
	return opt.Reoptimize(opt.NewSnapshot(t), drift, opts)
}

// AnalyzeCyclic runs the steady-state analysis extended to topologies with
// feedback edges (the cyclic generality the paper lists as future work):
// the traffic equations are solved by fixed-point iteration and the source
// is scaled against the binding capacity.
func AnalyzeCyclic(t *Topology) (*Analysis, error) { return core.SteadyStateCyclic(t) }

// AnalyzeShedding evaluates the topology under load-shedding semantics
// (Section 2's alternative to backpressure): saturated operators discard
// their excess instead of throttling upstream, and the analysis reports
// the resulting loss.
func AnalyzeShedding(t *Topology) (*core.SheddingAnalysis, error) {
	return core.SteadyStateShedding(t)
}

// SheddingAnalysis is the load-shedding steady state.
type SheddingAnalysis = core.SheddingAnalysis

// Simulate measures the topology in the discrete-event simulator; replicas
// (from Optimize) may be nil.
func Simulate(t *Topology, replicas []int, cfg SimConfig) (*SimResult, error) {
	return qsim.SimulateTopology(t, replicas, cfg)
}

// Execute runs the topology live on the goroutine runtime.
func Execute(ctx context.Context, t *Topology, replicas []int, binding *Binding, cfg RunConfig) (*RunMetrics, error) {
	return runtime.RunTopology(ctx, t, replicas, binding, cfg)
}

// Live reconfiguration re-exports (internal/runtime's controller/epoch
// architecture): a deployment started with StartLive keeps running while
// DeltaPlans are applied in-flight — replica rescaling, keyed-state
// migration, fusion undo — under a bounded pause fence.
type (
	// LiveController owns a running deployment that can be reconfigured
	// in-flight; obtain one from StartLive.
	LiveController = runtime.Controller
	// LiveApplyReport describes one in-flight DeltaPlan application.
	LiveApplyReport = runtime.ApplyReport
	// AutotuneOptions tunes the controller's autonomic loop.
	AutotuneOptions = runtime.AutotuneOptions
	// AutotuneRound is one measure/re-optimize/apply iteration.
	AutotuneRound = runtime.AutotuneRound
	// AutotuneReport collects the loop's rounds.
	AutotuneReport = runtime.AutotuneReport
)

// StartLive deploys the topology on the goroutine runtime and returns a
// controller that keeps it running until Stop. Unlike Execute, the
// deployment can be reconfigured while tuples flow: ApplyDelta rescales
// operators, migrates keyed state, and undoes fusions in-flight, and
// Autotune closes the measure → re-optimize → apply loop automatically.
func StartLive(t *Topology, replicas []int, binding *Binding, cfg RunConfig) (*LiveController, error) {
	return runtime.StartTopology(t, replicas, binding, cfg)
}

// ApplyDelta applies a Reoptimize delta plan to a live deployment without
// restarting it: replica changes and fusion undos are fenced per change,
// with unaffected stations running throughout.
func ApplyDelta(c *LiveController, d *DeltaPlan) (*LiveApplyReport, error) {
	return c.ApplyDelta(d)
}

// DistributedConfig tunes ExecuteDistributed.
type DistributedConfig = runtime.DistributedConfig

// NewFaultInjector builds a deterministic fault injector for
// RunConfig.Faults. Injectors are single-use: build a fresh one per run.
func NewFaultInjector(cfg FaultInjectorConfig) *FaultInjector { return faultinject.New(cfg) }

// ExecuteDistributed partitions the topology's physical plan across nodes
// that exchange items over TCP (the Akka-Remoting analog the paper lists
// as future work); backpressure propagates across the network.
func ExecuteDistributed(ctx context.Context, t *Topology, replicas []int, binding *Binding, cfg DistributedConfig) (*RunMetrics, error) {
	p, err := plan.Build(t, plan.Options{Replicas: replicas})
	if err != nil {
		return nil, err
	}
	return runtime.RunDistributed(ctx, p, binding, cfg)
}

// NewObsRegistry builds an empty metrics registry for RunConfig.Obs. The
// runtime binds it to the physical plan at Run time; after (or during) a
// run, Snapshot(), WritePrometheus, Serve and ComputeDrift read it.
func NewObsRegistry() *ObsRegistry { return obs.New() }

// ComputeDrift re-derives per-operator profiles from the registry's
// measured steady-state window, re-runs the cost model on them, and
// reports the relative error between predicted and measured departure
// rates and utilizations — the measure → predict → verify loop of the
// paper's workflow, closed on live data.
// Replicas (from Optimize) may be nil for an unreplicated run.
func ComputeDrift(t *Topology, replicas []int, r *ObsRegistry) (*DriftReport, error) {
	return obs.Drift(t, replicas, r)
}

// BuildOperator constructs a catalog operator implementation.
func BuildOperator(spec Spec) (operators.Operator, error) { return operators.Build(spec) }

// OperatorCatalog lists the built-in operator implementations.
func OperatorCatalog() []string { return operators.Catalog() }

// ReadTopology parses the XML topology formalism.
func ReadTopology(r io.Reader) (*Topology, error) { return xmlio.Read(r) }

// ReadTopologyFile parses an XML topology file.
func ReadTopologyFile(path string) (*Topology, error) { return xmlio.ReadFile(path) }

// WriteTopology serializes a topology as XML.
func WriteTopology(w io.Writer, name string, t *Topology) error { return xmlio.Write(w, name, t) }

// Static verification ("spinstreams vet") re-exports.
type (
	// LintConfig tunes a verification run; see lint.Config.
	LintConfig = lint.Config
	// LintReport is the outcome: diagnostics with stable SS-codes,
	// renderable as text, JSON, or SARIF; see lint.Report.
	LintReport = lint.Report
	// LintDiagnostic is one finding; see lint.Diagnostic.
	LintDiagnostic = lint.Diagnostic
)

// Vet statically verifies a topology: graph shape, probability and key
// mass, cost-model convergence, optional fusion-candidate and
// rewrite-trace checks. The optimizer pipeline runs the same checks as a
// mandatory pre-pass.
func Vet(t *Topology, cfg LintConfig) *LintReport { return lint.Run(t, cfg) }

// PaperExample builds the six-operator fusion example of Section 5.4
// (Figure 11 / Tables 1-2) and the subgraph the paper fuses.
func PaperExample(table2 bool) (*Topology, []OpID) {
	variant := core.PaperExampleTable1
	if table2 {
		variant = core.PaperExampleTable2
	}
	return core.PaperExampleTopology(variant)
}
