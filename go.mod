module spinstreams

go 1.22
