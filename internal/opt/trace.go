package opt

import (
	"encoding/json"
	"fmt"

	"spinstreams/internal/core"
	"spinstreams/internal/keypart"
	"spinstreams/internal/lint"
	"spinstreams/internal/plan"
)

// TraceSchema identifies the rewrite-trace JSON layout; bump on breaking
// changes. The schema is documented in DESIGN.md ("Optimizer
// architecture").
const TraceSchema = "spinstreams/rewrite-trace/v1"

// Trace is the structured provenance of one pipeline run: every
// restructuring decision, in the order it was taken, with enough context
// to reconstruct why. Traces are deterministic — no timestamps, no
// machine identifiers — so they can be committed as golden files.
type Trace struct {
	// Schema is TraceSchema.
	Schema string `json:"schema"`
	// Fingerprint is the input topology's fingerprint, in hex.
	Fingerprint string `json:"fingerprint"`
	// Operators and Edges size the input topology.
	Operators int `json:"operators"`
	Edges     int `json:"edges"`
	// Cyclic marks topologies analyzed with the fixed-point solver.
	Cyclic bool `json:"cyclic,omitempty"`
	// Lint carries the mandatory pre-pass diagnostics that did not abort
	// the run (warnings and infos; errors abort before a trace exists).
	Lint []lint.Diagnostic `json:"lint,omitempty"`
	// Passes holds one entry per executed pass, in execution order.
	Passes []*PassTrace `json:"passes"`
	// ThroughputBefore is the plain Algorithm 1 prediction on the input;
	// ThroughputAfter is the prediction for the final restructured
	// topology under the chosen replication degrees.
	ThroughputBefore float64 `json:"throughput_before"`
	ThroughputAfter  float64 `json:"throughput_after"`
	// FinalFingerprint is the final topology's fingerprint, in hex; the
	// lint trace-replay check (SS2001) verifies a replay of the recorded
	// rewrites reproduces it.
	FinalFingerprint string `json:"final_fingerprint"`
	// Transports records the deployed plan's per-inbox transport
	// derivation: which physical stations' inboxes the producer-set
	// analysis proves single-producer (SPSC ring) versus multi-producer
	// (MPSC batched path). The lint trace-replay check re-expands the
	// plan from the replayed topology and Replicas and verifies every
	// decision. Absent on traces older than the analysis.
	Transports *TransportTrace `json:"transports,omitempty"`
}

// TransportTrace is the rewrite trace's record of the edge-topology
// transport analysis on the deployed plan.
type TransportTrace struct {
	// Replicas are the deployed replication degrees indexed by the final
	// topology's operators — the input plan expansion needs to reproduce
	// the physical station graph the decisions are about.
	Replicas []int `json:"replicas"`
	// Stations holds one decision per physical station, in plan order.
	Stations []TransportDecision `json:"stations"`
}

// TransportDecision is one inbox's tag.
type TransportDecision struct {
	// Station is the physical station's name (plan expansion derives
	// emitter/collector names from the operator's).
	Station string `json:"station"`
	// Producers is the inbox's fan-in: how many stations hold an
	// out-edge into it.
	Producers int `json:"producers"`
	// Transport is "spsc" when the analysis proves at most one producer,
	// "mpsc" otherwise.
	Transport string `json:"transport"`
}

// PassTrace records one pass's execution.
type PassTrace struct {
	// Pass is the pass name ("analyze", "fission", "fusion", ...).
	Pass string `json:"pass"`
	// Skipped carries the reason when the pass did not run (e.g. the
	// restructuring passes on a cyclic topology).
	Skipped string `json:"skipped,omitempty"`
	// Steps are the decisions, in order.
	Steps []TraceStep `json:"steps,omitempty"`
	// ThroughputBefore/After bracket the pass's effect on the predicted
	// topology throughput.
	ThroughputBefore float64 `json:"throughput_before,omitempty"`
	ThroughputAfter  float64 `json:"throughput_after,omitempty"`
}

// Step actions.
const (
	// StepSourceCorrection is a Theorem 3.2 source-rate correction:
	// operator Operator saturated at utilization Rho, so the source
	// departure rate was divided by Rho (CorrectionFactor = 1/Rho) down
	// to SourceRate.
	StepSourceCorrection = "source-correction"
	// StepFission parallelized Operator to Replicas replicas (PMax set
	// for partitioned-stateful operators).
	StepFission = "fission"
	// StepFissionReject records a saturated operator fission could not
	// unblock; Reason says why.
	StepFissionReject = "fission-reject"
	// StepReplicaBudget records the hold-off budget trimming Operator
	// from FromReplicas to Replicas.
	StepReplicaBudget = "replica-budget"
	// StepFuse applied a fusion: Members collapsed into Operator with
	// the given ServiceTime and Utilization.
	StepFuse = "fuse"
	// StepFuseReject records a rejected fusion candidate.
	StepFuseReject = "fuse-reject"
	// StepLiveApply records the in-flight application of one DeltaPlan
	// entry by the runtime's reconfigurer: a replica rescale (Operator,
	// FromReplicas -> Replicas) or a fusion undo (Operator split back
	// into Members). Live steps change the physical plan, not the
	// logical topology, so provenance replay checks them without
	// mutating the replayed topology.
	StepLiveApply = "live_apply"
)

// TraceStep is one decision. Which fields are meaningful depends on
// Action; unused fields are omitted from the JSON.
type TraceStep struct {
	Action   string   `json:"action"`
	Operator string   `json:"operator,omitempty"`
	Members  []string `json:"members,omitempty"`
	// Round numbers autofuse rounds (1-based; 0 elsewhere).
	Round int `json:"round,omitempty"`
	// Rho is the utilization that triggered the decision.
	Rho float64 `json:"rho,omitempty"`
	// CorrectionFactor is Theorem 3.2's 1/rho multiplier.
	CorrectionFactor float64 `json:"correction_factor,omitempty"`
	// SourceRate is the corrected source departure rate.
	SourceRate float64 `json:"source_rate,omitempty"`
	// Replicas is the chosen (or budget-trimmed) degree; FromReplicas
	// the degree before trimming.
	Replicas     int `json:"replicas,omitempty"`
	FromReplicas int `json:"from_replicas,omitempty"`
	// PMax is the most loaded replica's input share.
	PMax float64 `json:"pmax,omitempty"`
	// ServiceTime is a fused meta-operator's predicted service time.
	ServiceTime float64 `json:"service_time,omitempty"`
	// Utilization is a fusion candidate's predicted utilization.
	Utilization float64 `json:"utilization,omitempty"`
	// ThroughputBefore/After bracket an applied fusion.
	ThroughputBefore float64 `json:"throughput_before,omitempty"`
	ThroughputAfter  float64 `json:"throughput_after,omitempty"`
	// Reason explains rejections and skips.
	Reason string `json:"reason,omitempty"`
}

func newTrace(s *Snapshot) *Trace {
	return &Trace{
		Schema:      TraceSchema,
		Fingerprint: fmt.Sprintf("%016x", s.Fingerprint()),
		Operators:   s.Len(),
		Edges:       s.Topology().NumEdges(),
	}
}

// transportTrace expands the final topology into its deployed plan and
// records the producer-set transport analysis for every physical
// station, so the runtime's per-edge binding is reproducible from the
// trace alone and `spinstreams vet` can replay it.
func transportTrace(final *core.Topology, replicas []int, part keypart.Partitioner, allowCycles bool) (*TransportTrace, error) {
	p, err := plan.Build(final, plan.Options{
		Replicas:    replicas,
		Partitioner: part,
		AllowCycles: allowCycles,
	})
	if err != nil {
		return nil, err
	}
	in := plan.FanIn(p)
	ts := plan.Transports(p)
	tt := &TransportTrace{
		Replicas: append([]int(nil), replicas...),
		Stations: make([]TransportDecision, len(p.Stations)),
	}
	for i := range p.Stations {
		tt.Stations[i] = TransportDecision{
			Station:   p.Stations[i].Name,
			Producers: len(in[i]),
			Transport: ts[i].String(),
		}
	}
	return tt, nil
}

// pass opens a new pass record and returns it for step appends.
func (tr *Trace) pass(name string) *PassTrace {
	p := &PassTrace{Pass: name}
	tr.Passes = append(tr.Passes, p)
	return p
}

func (p *PassTrace) step(s TraceStep) { p.Steps = append(p.Steps, s) }

// corrections appends one StepSourceCorrection per Theorem 3.2 correction
// in a.
func (p *PassTrace) corrections(t *core.Topology, a *core.Analysis) {
	for _, c := range a.Corrections {
		p.step(TraceStep{
			Action:           StepSourceCorrection,
			Operator:         t.Op(c.Op).Name,
			Rho:              c.Rho,
			CorrectionFactor: 1 / c.Rho,
			SourceRate:       c.SourceRate,
		})
	}
}

// liveApplyPass renders a delta plan as one live_apply pass: replica
// changes first, fusion undos second, each group sorted by operator.
func liveApplyPass(d *DeltaPlan) *PassTrace {
	p := &PassTrace{
		Pass:             "live_apply",
		ThroughputBefore: d.PredictedBefore,
		ThroughputAfter:  d.PredictedAfter,
	}
	for _, c := range d.sortedChanges() {
		p.step(TraceStep{
			Action:       StepLiveApply,
			Operator:     c.Operator,
			FromReplicas: c.From,
			Replicas:     c.To,
		})
	}
	for _, u := range d.sortedUndo() {
		p.step(TraceStep{
			Action:   StepLiveApply,
			Operator: u.Operator,
			Members:  append([]string(nil), u.Members...),
			Rho:      u.Rho,
		})
	}
	return p
}

// AppendLiveApply appends a live_apply pass documenting that the runtime
// applied the delta plan in flight, so the re-optimization run's trace
// also covers what actually happened to the running plan.
func (tr *Trace) AppendLiveApply(d *DeltaPlan) *PassTrace {
	p := liveApplyPass(d)
	tr.Passes = append(tr.Passes, p)
	return p
}

// LiveTrace builds the rewrite trace of a live reconfiguration, anchored
// at the deployed topology: its fingerprint is the deployed topology's
// (not the re-profiled one the optimizer ran on), and its only pass is
// the live_apply record of the delta plan. Live steps do not rewrite the
// logical topology, so the final fingerprint equals the input one and
// `spinstreams vet -trace` can replay the trace against the deployed
// topology's XML.
func LiveTrace(t *core.Topology, d *DeltaPlan) *Trace {
	tr := newTrace(NewSnapshot(t))
	tr.ThroughputBefore = d.PredictedBefore
	tr.ThroughputAfter = d.PredictedAfter
	tr.Passes = append(tr.Passes, liveApplyPass(d))
	tr.FinalFingerprint = tr.Fingerprint
	return tr
}

// JSON renders the trace as indented JSON.
func (tr *Trace) JSON() ([]byte, error) {
	return json.MarshalIndent(tr, "", "  ")
}
