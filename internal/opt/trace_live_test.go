package opt

import (
	"os"
	"path/filepath"
	"testing"

	"spinstreams/internal/core"
)

// TestLiveTraceGolden pins the byte-stable rendering of a live
// reconfiguration trace: the paper's fused Table 1 example rescaled and
// unfused in-flight. The golden is part of the provenance contract —
// `spinstreams vet -trace` replays exactly this layout — so any drift in
// field order, omission rules, or step sorting must show up here.
func TestLiveTraceGolden(t *testing.T) {
	topo, sub := core.PaperExampleTopology(core.PaperExampleTable1)
	fused, _, err := core.Fuse(topo, sub, "F")
	if err != nil {
		t.Fatal(err)
	}
	delta := &DeltaPlan{
		Changes: []ReplicaChange{
			{Operator: "op2", From: 1, To: 3},
		},
		Undo: []FusionUndo{
			{Operator: "F", Members: memberNames(topo, sub), Rho: 1.5},
		},
		PredictedBefore: 250,
		PredictedAfter:  1000,
	}
	tr := LiveTrace(fused, delta)
	if tr.Fingerprint != tr.FinalFingerprint {
		t.Errorf("live trace must not rewrite the logical topology: %s -> %s",
			tr.Fingerprint, tr.FinalFingerprint)
	}
	got, err := tr.JSON()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')
	path := filepath.Join("testdata", "trace-paper-table1-live.json")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if string(want) != string(got) {
		t.Errorf("live trace drifted from golden %s;\ngot:\n%s", path, got)
	}
}

func memberNames(t *core.Topology, members []core.OpID) []string {
	names := make([]string, len(members))
	for i, id := range members {
		names[i] = t.Op(id).Name
	}
	return names
}
