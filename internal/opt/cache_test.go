package opt

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"spinstreams/internal/core"
	"spinstreams/internal/randtopo"
)

// benchGraphs generates the 50-operator underutilized randtopo graphs
// the solver-cache benchmark runs autofuse over. SourceFactor < 1 slows
// the source below the other operators so fusion candidates exist (the
// paper's bottlenecked 1.33 setup leaves nothing to fuse).
func benchGraphs(tb testing.TB, n int) []*core.Topology {
	tb.Helper()
	graphs := make([]*core.Topology, 0, n)
	for seed := uint64(1); len(graphs) < n; seed++ {
		g, err := randtopo.Generate(randtopo.Config{
			Seed:         seed,
			MinOps:       50,
			MaxOps:       50,
			SourceFactor: 0.25,
		})
		if err != nil {
			tb.Fatalf("generate seed %d: %v", seed, err)
		}
		graphs = append(graphs, g.Topology)
	}
	return graphs
}

// TestSolverCacheAgreesWithDirect: the cache must be observationally
// identical to the direct solver on autofuse.
func TestSolverCacheAgreesWithDirect(t *testing.T) {
	for _, topo := range benchGraphs(t, 3) {
		direct, err := core.AutoFuse(topo, core.AutoFuseOptions{})
		if err != nil {
			t.Fatal(err)
		}
		cache := NewSolverCache()
		cached, err := core.AutoFuseWith(topo, core.AutoFuseOptions{}, cache)
		if err != nil {
			t.Fatal(err)
		}
		if len(direct.Steps) != len(cached.Steps) {
			t.Fatalf("cache changed the fusion outcome: %d vs %d steps", len(cached.Steps), len(direct.Steps))
		}
		for i := range direct.Steps {
			if direct.Steps[i].FusedName != cached.Steps[i].FusedName ||
				direct.Steps[i].ServiceTime != cached.Steps[i].ServiceTime {
				t.Errorf("step %d differs: %+v vs %+v", i, cached.Steps[i], direct.Steps[i])
			}
		}
		if direct.ThroughputAfter != cached.ThroughputAfter {
			t.Errorf("throughput %v vs %v", cached.ThroughputAfter, direct.ThroughputAfter)
		}
	}
}

// TestSolverCacheRatio is the functional form of the benchmark gate: on
// 50-operator randtopo graphs the cache must at least halve the number
// of steady-state solves autofuse performs.
func TestSolverCacheRatio(t *testing.T) {
	var total CacheStats
	for _, topo := range benchGraphs(t, 5) {
		cache := NewSolverCache()
		if _, err := core.AutoFuseWith(topo, core.AutoFuseOptions{}, cache); err != nil {
			t.Fatal(err)
		}
		s := cache.Stats()
		if s.Lookups != s.Hits+s.Misses {
			t.Fatalf("inconsistent stats: %+v", s)
		}
		total.Lookups += s.Lookups
		total.Hits += s.Hits
		total.Misses += s.Misses
	}
	if r := total.Ratio(); r < 2 {
		t.Errorf("solve-reduction ratio %.2f < 2 (stats %+v)", r, total)
	}
}

// optBenchRecord is the JSON row benchgate consumes (committed baseline:
// BENCH_optimizer.json at the repo root).
type optBenchRecord struct {
	Benchmark string  `json:"benchmark"`
	Graphs    int     `json:"graphs"`
	Direct    int     `json:"direct_solves"`
	Cached    int     `json:"cached_solves"`
	Ratio     float64 `json:"ratio"`
}

// BenchmarkSolverCacheAutoFuse measures autofuse over 50-operator
// randtopo graphs with the memoizing solver and reports the
// solve-reduction ratio vs the direct solver (direct solves = cache
// lookups, since the cache sees exactly the demand a direct solver would
// execute). Set SS_OPT_BENCH_JSON to a path to emit the benchgate record.
func BenchmarkSolverCacheAutoFuse(b *testing.B) {
	graphs := benchGraphs(b, 5)
	var total CacheStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		total = CacheStats{}
		for _, topo := range graphs {
			cache := NewSolverCache()
			if _, err := core.AutoFuseWith(topo, core.AutoFuseOptions{}, cache); err != nil {
				b.Fatal(err)
			}
			s := cache.Stats()
			total.Lookups += s.Lookups
			total.Hits += s.Hits
			total.Misses += s.Misses
		}
	}
	b.StopTimer()
	b.ReportMetric(total.Ratio(), "solves/cached-solve")
	if path := os.Getenv("SS_OPT_BENCH_JSON"); path != "" {
		rec := optBenchRecord{
			Benchmark: "solver-cache-autofuse",
			Graphs:    len(graphs),
			Direct:    total.Lookups,
			Cached:    total.Misses,
			Ratio:     total.Ratio(),
		}
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		fmt.Printf("wrote %s: %+v\n", path, rec)
	}
}
