package opt

import (
	"encoding/binary"
	"sync"

	"spinstreams/internal/core"
	"spinstreams/internal/keypart"
)

// CacheStats counts solver-cache traffic. Lookups is the number of
// steady-state solves the computation demanded; Misses is how many the
// cache actually ran. Lookups/Misses is therefore the solve-reduction
// factor a direct (uncached) solver would have paid, which is what the
// optimizer benchmark gates on.
type CacheStats struct {
	Lookups int `json:"lookups"`
	Hits    int `json:"hits"`
	Misses  int `json:"misses"`
}

// Ratio returns Lookups/Misses (1 when nothing was cached).
func (s CacheStats) Ratio() float64 {
	if s.Misses == 0 {
		return 1
	}
	return float64(s.Lookups) / float64(s.Misses)
}

// SolverCache memoizes steady-state analyses keyed by topology
// fingerprint (plus the pinned replication degrees for the replica-aware
// variant). It implements core.Solver, so the classic drivers
// (core.AutoFuseWith, core.FuseWith) can be pointed at it unchanged.
//
// Two caveats follow from the keying:
//
//   - Cached *core.Analysis values are shared: every caller with the same
//     inputs receives the same pointer and must treat it as immutable.
//     All core drivers already do.
//
//   - The replica-aware key does not include the partitioner, so one
//     cache instance must only ever see one partitioner (the pipeline
//     constructs a fresh cache per run and threads its single configured
//     partitioner everywhere, satisfying this by construction).
type SolverCache struct {
	mu     sync.Mutex
	plain  map[uint64]*core.Analysis
	pinned map[string]*core.Analysis
	stats  CacheStats
}

// NewSolverCache returns an empty cache.
func NewSolverCache() *SolverCache {
	return &SolverCache{
		plain:  make(map[uint64]*core.Analysis),
		pinned: make(map[string]*core.Analysis),
	}
}

// SteadyState implements core.Solver: Algorithm 1 memoized by topology
// fingerprint.
func (c *SolverCache) SteadyState(t *core.Topology) (*core.Analysis, error) {
	fp := t.Fingerprint()
	c.mu.Lock()
	c.stats.Lookups++
	if a, ok := c.plain[fp]; ok {
		c.stats.Hits++
		c.mu.Unlock()
		return a, nil
	}
	c.stats.Misses++
	c.mu.Unlock()

	a, err := core.SteadyState(t)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.plain[fp] = a
	c.mu.Unlock()
	return a, nil
}

// SteadyStateWithReplicas implements core.Solver, memoized by fingerprint
// plus the replica vector.
func (c *SolverCache) SteadyStateWithReplicas(t *core.Topology, replicas []int, part keypart.Partitioner) (*core.Analysis, error) {
	key := pinnedKey(t.Fingerprint(), replicas)
	c.mu.Lock()
	c.stats.Lookups++
	if a, ok := c.pinned[key]; ok {
		c.stats.Hits++
		c.mu.Unlock()
		return a, nil
	}
	c.stats.Misses++
	c.mu.Unlock()

	a, err := core.SteadyStateWithReplicas(t, replicas, part)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	c.pinned[key] = a
	c.mu.Unlock()
	return a, nil
}

// Stats returns a copy of the traffic counters.
func (c *SolverCache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

func pinnedKey(fp uint64, replicas []int) string {
	buf := make([]byte, 8+8*len(replicas))
	binary.LittleEndian.PutUint64(buf, fp)
	for i, n := range replicas {
		binary.LittleEndian.PutUint64(buf[8+8*i:], uint64(n))
	}
	return string(buf)
}
