package opt

import (
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"spinstreams/internal/core"
	"spinstreams/internal/randtopo"
)

var update = flag.Bool("update", false, "rewrite golden trace files")

// equivalenceInputs are the topologies the equivalence harness covers:
// the paper example in both service-time variants plus the randtopo
// golden-fingerprint seeds pinned in randtopo's own tests.
func equivalenceInputs(t *testing.T) map[string]*core.Topology {
	t.Helper()
	in := map[string]*core.Topology{}
	for name, v := range map[string]core.PaperExampleVariant{
		"paper-table1": core.PaperExampleTable1,
		"paper-table2": core.PaperExampleTable2,
	} {
		topo, _ := core.PaperExampleTopology(v)
		in[name] = topo
	}
	for name, seed := range map[string]uint64{
		"randtopo-seed1":    1,
		"randtopo-seed7":    7,
		"randtopo-seed42":   42,
		"randtopo-seed1234": 1234,
	} {
		g, err := randtopo.Generate(randtopo.Config{Seed: seed})
		if err != nil {
			t.Fatalf("generate seed topology %s: %v", name, err)
		}
		in[name] = g.Topology
	}
	return in
}

func sameAnalysis(t *testing.T, label string, want, got *core.Analysis) {
	t.Helper()
	if want.Throughput() != got.Throughput() {
		t.Errorf("%s: throughput %v != %v", label, got.Throughput(), want.Throughput())
	}
	for i := range want.Lambda {
		if want.Lambda[i] != got.Lambda[i] || want.Rho[i] != got.Rho[i] || want.Delta[i] != got.Delta[i] {
			t.Errorf("%s: operator %d differs: lambda %v/%v rho %v/%v delta %v/%v",
				label, i, got.Lambda[i], want.Lambda[i], got.Rho[i], want.Rho[i], got.Delta[i], want.Delta[i])
		}
		if want.Replicas[i] != got.Replicas[i] {
			t.Errorf("%s: operator %d replicas %d != %d", label, i, got.Replicas[i], want.Replicas[i])
		}
	}
}

// TestPipelineEquivalence is the acceptance harness: the pipeline must
// reproduce the classic entry points' decisions exactly — identical
// Analysis, fission degrees, fusion accept/reject sequence, and final
// predicted throughput — on the paper example (both tables) and the
// randtopo golden-fingerprint seeds.
func TestPipelineEquivalence(t *testing.T) {
	for name, topo := range equivalenceInputs(t) {
		t.Run(name, func(t *testing.T) {
			seedAnalysis, err := core.SteadyState(topo)
			if err != nil {
				t.Fatalf("seed steady state: %v", err)
			}
			seedFission, err := core.EliminateBottlenecks(topo, core.FissionOptions{})
			if err != nil {
				t.Fatalf("seed fission: %v", err)
			}
			seedFusion, err := core.AutoFuse(topo, core.AutoFuseOptions{})
			if err != nil {
				t.Fatalf("seed autofuse: %v", err)
			}

			res, err := Run(topo, Options{})
			if err != nil {
				t.Fatalf("pipeline: %v", err)
			}

			sameAnalysis(t, "baseline", seedAnalysis, res.Baseline)

			if res.Fission == nil {
				t.Fatal("pipeline dropped the fission result")
			}
			sameAnalysis(t, "fission", seedFission.Analysis, res.Fission.Analysis)
			if res.Fission.TotalReplicas != seedFission.TotalReplicas ||
				res.Fission.AdditionalReplicas != seedFission.AdditionalReplicas ||
				res.Fission.Capped != seedFission.Capped {
				t.Errorf("fission summary differs: %+v vs %+v", res.Fission, seedFission)
			}

			if res.Fusion == nil {
				t.Fatal("pipeline dropped the fusion result")
			}
			if len(res.Fusion.Steps) != len(seedFusion.Steps) {
				t.Fatalf("fusion applied %d steps, seed applied %d", len(res.Fusion.Steps), len(seedFusion.Steps))
			}
			for i, step := range res.Fusion.Steps {
				want := seedFusion.Steps[i]
				if step.FusedName != want.FusedName || step.ServiceTime != want.ServiceTime ||
					step.Utilization != want.Utilization {
					t.Errorf("fusion step %d differs: %+v vs %+v", i, step, want)
				}
				for j := range want.MemberNames {
					if step.MemberNames[j] != want.MemberNames[j] {
						t.Errorf("fusion step %d member %d: %s != %s", i, j, step.MemberNames[j], want.MemberNames[j])
					}
				}
			}
			if res.Fusion.ThroughputAfter != seedFusion.ThroughputAfter {
				t.Errorf("fusion throughput %v != %v", res.Fusion.ThroughputAfter, seedFusion.ThroughputAfter)
			}
			if got := res.Final.Topology().Fingerprint(); got != seedFusion.Topology.Fingerprint() {
				t.Errorf("final topology fingerprint %016x != seed %016x", got, seedFusion.Topology.Fingerprint())
			}
		})
	}
}

// TestPipelineReplicasMapping checks that fission degrees survive the
// fusion rewrite: survivors keep their degree (matched by name), fused
// meta-operators get one.
func TestPipelineReplicasMapping(t *testing.T) {
	topo, _ := core.PaperExampleTopology(core.PaperExampleTable1)
	res, err := Run(topo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	final := res.Final.Topology()
	reps := res.Replicas()
	if len(reps) != final.Len() {
		t.Fatalf("replicas cover %d of %d operators", len(reps), final.Len())
	}
	input := res.Input.Topology()
	for i := 0; i < final.Len(); i++ {
		op := final.Op(core.OpID(i))
		if len(op.Fused) > 0 {
			if reps[i] != 1 {
				t.Errorf("meta-operator %s has %d replicas, want 1", op.Name, reps[i])
			}
			continue
		}
		id, ok := input.Lookup(op.Name)
		if !ok {
			t.Fatalf("survivor %s missing from input topology", op.Name)
		}
		if want := res.Fission.Analysis.Replicas[id]; reps[i] != want {
			t.Errorf("survivor %s has %d replicas, want %d", op.Name, reps[i], want)
		}
	}
	if res.Analysis == nil || res.Analysis.Throughput() <= 0 {
		t.Fatal("final analysis missing")
	}
}

// TestPipelineDisabledPasses pins the single-purpose configurations the
// CLI commands use.
func TestPipelineDisabledPasses(t *testing.T) {
	topo, _ := core.PaperExampleTopology(core.PaperExampleTable2)

	fissionOnly, err := Run(topo, Options{DisableFusion: true})
	if err != nil {
		t.Fatal(err)
	}
	if fissionOnly.Fusion != nil {
		t.Error("fusion ran despite DisableFusion")
	}
	if fissionOnly.Final != fissionOnly.Input {
		t.Error("fission-only run rewrote the topology")
	}
	seed, err := core.EliminateBottlenecks(topo, core.FissionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := fissionOnly.Analysis.Throughput(), seed.Analysis.Throughput(); math.Abs(got-want) > 1e-9*want {
		t.Errorf("fission-only throughput %v, seed %v", got, want)
	}

	fusionOnly, err := Run(topo, Options{DisableFission: true})
	if err != nil {
		t.Fatal(err)
	}
	if fusionOnly.Fission != nil {
		t.Error("fission ran despite DisableFission")
	}
	for i, n := range fusionOnly.Replicas() {
		if n != 1 {
			t.Errorf("fusion-only run replicated operator %d to %d", i, n)
		}
	}
}

// TestPipelineShapePasses covers the optional evaluation passes.
func TestPipelineEvaluationPasses(t *testing.T) {
	topo, _ := core.PaperExampleTopology(core.PaperExampleTable1)
	res, err := Run(topo, Options{Shedding: true, LatencyModel: core.MM1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Shedding == nil {
		t.Error("shedding pass produced no analysis")
	}
	if res.Latency == nil || res.Latency.EndToEnd <= 0 {
		t.Error("latency pass produced no estimate")
	}
}

// TestPipelineCyclic runs a retry-loop topology through the pipeline:
// the analysis must match the fixed-point solver exactly and the
// restructuring passes must skip with a recorded reason.
func TestPipelineCyclic(t *testing.T) {
	topo := retryLoopTopology(t)
	res, err := Run(topo, Options{AllowCycles: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cyclic || !res.Trace.Cyclic {
		t.Fatal("cyclic run not marked cyclic")
	}
	want, err := core.SteadyStateCyclic(topo)
	if err != nil {
		t.Fatal(err)
	}
	sameAnalysis(t, "cyclic", want, res.Analysis)
	skips := 0
	for _, p := range res.Trace.Passes {
		if p.Skipped != "" {
			skips++
		}
	}
	if skips != 2 {
		t.Errorf("expected fission+fusion to skip, got %d skips", skips)
	}
	if res.Fission != nil || res.Fusion != nil {
		t.Error("restructuring results present on cyclic run")
	}

	// Without AllowCycles the pipeline must refuse.
	if _, err := Run(topo, Options{}); err == nil {
		t.Error("cyclic topology accepted without AllowCycles")
	}
}

func retryLoopTopology(t *testing.T) *core.Topology {
	t.Helper()
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "source", Kind: core.KindSource, ServiceTime: 1e-3})
	work := topo.MustAddOperator(core.Operator{Name: "work", Kind: core.KindStateless, ServiceTime: 0.6e-3})
	check := topo.MustAddOperator(core.Operator{Name: "check", Kind: core.KindStateless, ServiceTime: 0.2e-3})
	sink := topo.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.1e-3})
	topo.MustConnect(src, work, 1)
	topo.MustConnect(work, check, 1)
	topo.MustConnect(check, work, 0.3) // retry loop
	topo.MustConnect(check, sink, 0.7)
	return topo
}

// TestPipelineDeterminism: two runs over the same input must produce
// byte-identical traces (the golden files depend on it).
func TestPipelineDeterminism(t *testing.T) {
	g, err := randtopo.Generate(randtopo.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := Run(g.Topology, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Run(g.Topology, Options{})
	if err != nil {
		t.Fatal(err)
	}
	j1, err := res1.Trace.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, err := res2.Trace.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Error("traces differ between identical runs")
	}
}

// TestGoldenTraces pins the full rewrite traces for the paper example
// and three randtopo fingerprint seeds. Regenerate with `go test
// ./internal/opt -run TestGoldenTraces -update`.
func TestGoldenTraces(t *testing.T) {
	cases := []struct {
		name string
		topo *core.Topology
	}{}
	table1, _ := core.PaperExampleTopology(core.PaperExampleTable1)
	table2, _ := core.PaperExampleTopology(core.PaperExampleTable2)
	cases = append(cases,
		struct {
			name string
			topo *core.Topology
		}{"paper-table1", table1},
		struct {
			name string
			topo *core.Topology
		}{"paper-table2", table2},
	)
	for _, seed := range []uint64{1, 7, 42} {
		g, err := randtopo.Generate(randtopo.Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		cases = append(cases, struct {
			name string
			topo *core.Topology
		}{name: "randtopo-seed" + itoa(seed), topo: g.Topology})
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(tc.topo, Options{})
			if err != nil {
				t.Fatal(err)
			}
			got, err := res.Trace.JSON()
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "trace-"+tc.name+".json")
			if *update {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if string(want) != string(got) {
				t.Errorf("trace drifted from golden %s;\ngot:\n%s", path, got)
			}
		})
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// TestSnapshotImmutability: mutating the original topology after taking
// a snapshot must not change the snapshot.
func TestSnapshotImmutability(t *testing.T) {
	topo, _ := core.PaperExampleTopology(core.PaperExampleTable1)
	s := NewSnapshot(topo)
	fp := s.Fingerprint()
	topo.Op(1).ServiceTime *= 2
	if s.Fingerprint() != fp || s.Topology().Fingerprint() != fp {
		t.Error("snapshot changed when the original topology was mutated")
	}
	if topo.Fingerprint() == fp {
		t.Error("fingerprint ignored a service-time change")
	}
}
