package opt

import (
	"fmt"

	"spinstreams/internal/core"
)

// Context carries the run-scoped machinery every pass shares: the
// configured options, the memoizing solver, the trace under construction
// and the result being assembled.
type Context struct {
	Opts   Options
	Cache  *SolverCache
	Trace  *Trace
	Result *Result
	// cyclic is set by the analyze pass when the topology needs the
	// fixed-point solver; the restructuring passes skip and say so.
	cyclic bool
}

// Pass is one stage of the optimizer. Run receives the current snapshot
// and returns the snapshot subsequent passes should see: the same one
// when the pass only analyzes or annotates (analyze, fission — degrees
// live in the result, not the graph), a new one when the pass rewrites
// the topology (fusion). Passes must not mutate the snapshot they
// receive.
type Pass interface {
	Name() string
	Run(ctx *Context, s *Snapshot) (*Snapshot, error)
}

// skipCyclic records a skipped pass on cyclic input.
func skipCyclic(ctx *Context, name string) {
	p := ctx.Trace.pass(name)
	p.Skipped = "cyclic topology: restructuring passes require a DAG"
}

// AnalyzePass runs Algorithm 1 (or the cyclic fixed-point solver) on the
// input snapshot and records the Theorem 3.2 source corrections.
type AnalyzePass struct{}

// Name implements Pass.
func (AnalyzePass) Name() string { return "analyze" }

// Run implements Pass.
func (AnalyzePass) Run(ctx *Context, s *Snapshot) (*Snapshot, error) {
	t := s.Topology()
	p := ctx.Trace.pass("analyze")

	var a *core.Analysis
	var err error
	if t.Validate() == nil {
		a, err = ctx.Cache.SteadyState(t)
	} else if ctx.Opts.AllowCycles && t.ValidateCyclic() == nil {
		ctx.cyclic = true
		ctx.Result.Cyclic = true
		ctx.Trace.Cyclic = true
		a, err = core.SteadyStateCyclic(t)
	} else {
		err = t.Validate()
	}
	if err != nil {
		return nil, fmt.Errorf("opt: analyze: %w", err)
	}
	p.corrections(t, a)
	src := t.Source()
	p.ThroughputBefore = t.Op(src).Rate() * t.Op(src).Gain() // uncorrected emission
	p.ThroughputAfter = a.Throughput()
	ctx.Result.Baseline = a
	ctx.Trace.ThroughputBefore = a.Throughput()
	return s, nil
}

// FissionPass runs Algorithm 2 (bottleneck elimination). It chooses
// replication degrees but never rewrites the graph, which is why it can
// run before fusion without changing what fusion sees — the pinned pass
// ordering the pipeline documents.
type FissionPass struct{}

// Name implements Pass.
func (FissionPass) Name() string { return "fission" }

// Run implements Pass.
func (FissionPass) Run(ctx *Context, s *Snapshot) (*Snapshot, error) {
	if ctx.cyclic {
		skipCyclic(ctx, "fission")
		return s, nil
	}
	t := s.Topology()
	p := ctx.Trace.pass("fission")
	p.ThroughputBefore = ctx.Result.Baseline.Throughput()

	opts := ctx.Opts.Fission
	opts.Trace = &core.FissionTrace{
		OnFission: func(v core.OpID, rho float64, replicas int, pmax float64) {
			p.step(TraceStep{
				Action:   StepFission,
				Operator: t.Op(v).Name,
				Rho:      rho,
				Replicas: replicas,
				PMax:     pmax,
			})
		},
		OnReject: func(v core.OpID, rho float64, reason string) {
			p.step(TraceStep{
				Action:   StepFissionReject,
				Operator: t.Op(v).Name,
				Rho:      rho,
				Reason:   reason,
			})
		},
		OnBudget: func(v core.OpID, from, to int) {
			p.step(TraceStep{
				Action:       StepReplicaBudget,
				Operator:     t.Op(v).Name,
				FromReplicas: from,
				Replicas:     to,
			})
		},
	}
	res, err := core.EliminateBottlenecks(t, opts)
	if err != nil {
		return nil, fmt.Errorf("opt: fission: %w", err)
	}
	p.corrections(t, res.Analysis)
	p.ThroughputAfter = res.Analysis.Throughput()
	ctx.Result.Fission = res
	return s, nil
}

// FusionPass runs the automatic operator-fusion loop (Algorithm 3 inside
// the accept/reject driver), routed through the solver cache. It returns
// a new snapshot when fusions were applied.
type FusionPass struct{}

// Name implements Pass.
func (FusionPass) Name() string { return "fusion" }

// Run implements Pass.
func (FusionPass) Run(ctx *Context, s *Snapshot) (*Snapshot, error) {
	if ctx.cyclic {
		skipCyclic(ctx, "fusion")
		return s, nil
	}
	p := ctx.Trace.pass("fusion")
	p.ThroughputBefore = ctx.Result.Baseline.Throughput()

	opts := ctx.Opts.Fusion
	opts.Trace = &core.FusionTrace{
		OnApply: func(round int, step core.AutoFuseStep, report *core.FusionReport) {
			p.step(TraceStep{
				Action:           StepFuse,
				Operator:         step.FusedName,
				Members:          step.MemberNames,
				Round:            round + 1,
				ServiceTime:      step.ServiceTime,
				Utilization:      step.Utilization,
				ThroughputBefore: report.ThroughputBefore,
				ThroughputAfter:  report.ThroughputAfter,
			})
		},
		OnReject: func(round int, memberNames []string, utilization float64, reason string) {
			p.step(TraceStep{
				Action:      StepFuseReject,
				Members:     memberNames,
				Round:       round + 1,
				Utilization: utilization,
				Reason:      reason,
			})
		},
	}
	res, err := core.AutoFuseWith(s.Topology(), opts, ctx.Cache)
	if err != nil {
		return nil, fmt.Errorf("opt: fusion: %w", err)
	}
	p.ThroughputAfter = res.ThroughputAfter
	ctx.Result.Fusion = res
	if len(res.Steps) == 0 {
		return s, nil
	}
	// AutoFuse built res.Topology fresh (clone + rewrites); own it.
	return newOwnedSnapshot(res.Topology), nil
}

// SheddingPass evaluates the load-shedding alternative semantics on the
// current (post-fusion) topology, for the report only — it takes no
// restructuring decisions.
type SheddingPass struct{}

// Name implements Pass.
func (SheddingPass) Name() string { return "shedding" }

// Run implements Pass.
func (SheddingPass) Run(ctx *Context, s *Snapshot) (*Snapshot, error) {
	if ctx.cyclic {
		skipCyclic(ctx, "shedding")
		return s, nil
	}
	p := ctx.Trace.pass("shedding")
	a, err := core.SteadyStateShedding(s.Topology())
	if err != nil {
		return nil, fmt.Errorf("opt: shedding: %w", err)
	}
	p.ThroughputBefore = a.SourceRate
	p.ThroughputAfter = a.SinkRate
	ctx.Result.Shedding = a
	return s, nil
}

// LatencyPass layers the queueing-latency estimate on the final analysis
// (final topology under the chosen replication degrees).
type LatencyPass struct{}

// Name implements Pass.
func (LatencyPass) Name() string { return "latency" }

// Run implements Pass.
func (LatencyPass) Run(ctx *Context, s *Snapshot) (*Snapshot, error) {
	p := ctx.Trace.pass("latency")
	if err := ctx.ensureFinal(s); err != nil {
		return nil, err
	}
	est, err := core.EstimateLatency(s.Topology(), ctx.Result.Analysis, ctx.Opts.LatencyModel, ctx.Opts.BufferCapacity)
	if err != nil {
		return nil, fmt.Errorf("opt: latency: %w", err)
	}
	p.ThroughputAfter = ctx.Result.Analysis.Throughput()
	ctx.Result.Latency = est
	return s, nil
}
