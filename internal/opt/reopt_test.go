package opt

import (
	"strings"
	"testing"

	"spinstreams/internal/core"
	"spinstreams/internal/obs"
	"spinstreams/internal/profiler"
	"spinstreams/internal/stats"
)

// driftPipeline builds a small topology where the deployed profile says
// "map keeps up" (rho 0.5) but the measured profile says it saturates
// (needs 3 replicas).
func driftPipeline() *core.Topology {
	t := core.NewTopology()
	src := t.MustAddOperator(core.Operator{Name: "source", Kind: core.KindSource, ServiceTime: 1e-3})
	m := t.MustAddOperator(core.Operator{Name: "map", Kind: core.KindStateless, ServiceTime: 0.5e-3})
	sink := t.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.1e-3})
	t.MustConnect(src, m, 1)
	t.MustConnect(m, sink, 1)
	return t
}

func TestReoptimizeReplicaDelta(t *testing.T) {
	topo := driftPipeline()
	drift := &obs.DriftReport{
		// Measured: map is 5x slower than profiled (2.5ms -> rho 2.5).
		MeasuredProfiles: []profiler.Profile{
			{}, // source: no measurement, keep the profile
			{ServiceTime: 2.5e-3},
			{}, // sink: keep
		},
		Replicas: []int{1, 1, 1},
	}
	snap := NewSnapshot(topo)
	plan, err := Reoptimize(snap, drift, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Empty() {
		t.Fatal("expected a non-empty delta plan")
	}
	if len(plan.Changes) != 1 {
		t.Fatalf("expected one replica change, got %+v", plan.Changes)
	}
	c := plan.Changes[0]
	if c.Operator != "map" || c.From != 1 || c.To != 3 {
		t.Errorf("unexpected change %+v, want map 1 -> 3", c)
	}
	if len(plan.Undo) != 0 {
		t.Errorf("unexpected undo suggestions: %+v", plan.Undo)
	}
	// Under measured reality the current config sustains 1/2.5ms = 400
	// t/s; with 3 replicas the source's 1000 t/s is restored.
	if plan.PredictedBefore >= plan.PredictedAfter {
		t.Errorf("plan does not improve throughput: %v -> %v", plan.PredictedBefore, plan.PredictedAfter)
	}
	if plan.PredictedAfter < 999 || plan.PredictedAfter > 1001 {
		t.Errorf("predicted after = %v, want ~1000", plan.PredictedAfter)
	}
	if plan.Result == nil || plan.Result.Trace == nil {
		t.Error("plan is missing the re-optimization result/trace")
	}
	if !strings.Contains(plan.String(), "map") {
		t.Errorf("plan rendering lacks the operator: %q", plan.String())
	}
	// The snapshot must be untouched by re-optimization.
	if topo.Op(1).ServiceTime != 0.5e-3 || snap.Topology().Op(1).ServiceTime != 0.5e-3 {
		t.Error("reoptimize mutated the input profile")
	}
}

func TestReoptimizeFusionUndo(t *testing.T) {
	// A deployed topology containing a fused meta-operator that the
	// measured profiles saturate. Meta-operators are stateful, so
	// fission cannot help; the plan must suggest unfusing it.
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "source", Kind: core.KindSource, ServiceTime: 1e-3})
	fused := topo.MustAddOperator(core.Operator{
		Name: "fused1", Kind: core.KindStateful, ServiceTime: 0.8e-3,
		Fused: []string{"clean", "enrich"},
	})
	sink := topo.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.1e-3})
	topo.MustConnect(src, fused, 1)
	topo.MustConnect(fused, sink, 1)

	drift := &obs.DriftReport{
		MeasuredProfiles: []profiler.Profile{
			{},
			{ServiceTime: 2e-3}, // fused region measured at rho 2
			{},
		},
		Replicas: []int{1, 1, 1},
	}
	plan, err := Reoptimize(NewSnapshot(topo), drift, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Undo) != 1 {
		t.Fatalf("expected one undo suggestion, got %+v", plan.Undo)
	}
	u := plan.Undo[0]
	if u.Operator != "fused1" || len(u.Members) != 2 || u.Members[0] != "clean" {
		t.Errorf("unexpected undo %+v", u)
	}
	if u.Rho < 1-1e-9 {
		t.Errorf("undo rho %v, want saturated", u.Rho)
	}
	if len(plan.Changes) != 0 {
		t.Errorf("unexpected replica changes: %+v", plan.Changes)
	}
	if !strings.Contains(plan.String(), "unfuse") {
		t.Errorf("plan rendering lacks the unfuse line: %q", plan.String())
	}
}

func TestReoptimizeNoDrift(t *testing.T) {
	topo := driftPipeline()
	drift := &obs.DriftReport{
		// Measurements agree with the profile.
		MeasuredProfiles: []profiler.Profile{{}, {ServiceTime: 0.5e-3}, {}},
		Replicas:         []int{1, 1, 1},
	}
	plan, err := Reoptimize(NewSnapshot(topo), drift, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Empty() {
		t.Errorf("expected an empty plan, got %+v", plan)
	}
	if !strings.Contains(plan.String(), "already optimal") {
		t.Errorf("empty-plan rendering: %q", plan.String())
	}
}

func TestReoptimizeErrors(t *testing.T) {
	topo := driftPipeline()
	snap := NewSnapshot(topo)
	if _, err := Reoptimize(snap, nil, Options{}); err == nil {
		t.Error("nil drift report accepted")
	}
	if _, err := Reoptimize(snap, &obs.DriftReport{}, Options{}); err == nil {
		t.Error("drift report without profiles accepted")
	}
}

// TestDriftReportCarriesProfiles checks the obs side of the loop: a
// report built from a snapshot exposes the measured profiles and the
// replication degrees Reoptimize diffs against.
func TestDriftReportCarriesProfiles(t *testing.T) {
	topo := driftPipeline()
	snap := &obs.Snapshot{Stations: []obs.StationSnapshot{
		{StationInfo: obs.StationInfo{Name: "source", Op: 0, Role: "source", Source: true},
			Emitted: 1000,
			Service: stats.HistogramSummary{Sum: 1_000_000_000, Count: 1000}},
		{StationInfo: obs.StationInfo{Name: "map", Op: 1, Role: "worker"},
			Consumed: 1000, Arrived: 1000, Emitted: 1000,
			Service: stats.HistogramSummary{Sum: 2_500_000_000, Count: 1000}},
		{StationInfo: obs.StationInfo{Name: "sink", Op: 2, Role: "worker", Sink: true},
			Consumed: 1000, Arrived: 1000,
			Service: stats.HistogramSummary{Sum: 100_000_000, Count: 1000}},
	}}
	m := &obs.MeasuredRates{
		Seconds:    1,
		Departure:  []float64{1000, 400, 0},
		Arrival:    []float64{0, 1000, 400},
		Dropped:    make([]float64, 3),
		Consumed:   []float64{1000, 400, 400},
		Throughput: 1000,
	}
	rep, err := obs.DriftFrom(topo, []int{1, 1, 1}, m, snap)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.MeasuredProfiles) != 3 {
		t.Fatalf("report carries %d profiles, want 3", len(rep.MeasuredProfiles))
	}
	if got := rep.MeasuredProfiles[1].ServiceTime; got < 2.4e-3 || got > 2.6e-3 {
		t.Errorf("measured map service time %v, want ~2.5ms", got)
	}
	if len(rep.Replicas) != 3 || rep.Replicas[1] != 1 {
		t.Errorf("report replicas %v", rep.Replicas)
	}

	plan, err := Reoptimize(NewSnapshot(topo), rep, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Changes) != 1 || plan.Changes[0].Operator != "map" || plan.Changes[0].To != 3 {
		t.Errorf("end-to-end plan %+v, want map -> 3", plan.Changes)
	}
}
