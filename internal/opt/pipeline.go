package opt

import (
	"fmt"

	"spinstreams/internal/core"
	"spinstreams/internal/lint"
)

// Options configures one pipeline run.
type Options struct {
	// Fission tunes the bottleneck-elimination pass. Its Trace field is
	// owned by the pipeline and overwritten.
	Fission core.FissionOptions
	// Fusion tunes the automatic fusion pass. Its Trace field is owned
	// by the pipeline and overwritten.
	Fusion core.AutoFuseOptions
	// DisableFission / DisableFusion drop the respective pass, matching
	// the classic single-purpose CLI commands (`optimize` = fission
	// only, `autofuse` = fusion only).
	DisableFission bool
	DisableFusion  bool
	// Shedding adds the load-shedding evaluation pass.
	Shedding bool
	// LatencyModel, when non-zero, adds the latency-estimation pass;
	// BufferCapacity is its saturated-operator buffer bound (0 = default).
	LatencyModel   core.LatencyModel
	BufferCapacity int
	// AllowCycles analyzes cyclic topologies with the fixed-point solver
	// instead of failing; the restructuring passes skip them.
	AllowCycles bool
	// MailboxCapacity, BurstFactor and BurstSeconds tune the bounded-queue
	// verification post-pass (SS3001/SS3002) over the optimized plan. A
	// zero capacity assumes the runtime default; the burst check is
	// skipped unless both burst knobs are set.
	MailboxCapacity int
	BurstFactor     float64
	BurstSeconds    float64
}

// Result is everything one pipeline run produced.
type Result struct {
	// Input and Final are the snapshots before and after restructuring;
	// they are the same snapshot when no fusion was applied.
	Input, Final *Snapshot
	// Baseline is Algorithm 1 (or the cyclic solver) on the input.
	Baseline *core.Analysis
	// Fission is the bottleneck-elimination outcome; nil when the pass
	// was disabled or skipped. Its replica degrees index the *input*
	// topology — use Replicas() for degrees aligned with Final.
	Fission *core.FissionResult
	// Fusion is the automatic-fusion outcome; nil when disabled/skipped.
	Fusion *core.AutoFuseResult
	// Analysis is the final topology under the chosen replication
	// degrees: the pipeline's headline prediction.
	Analysis *core.Analysis
	// Shedding and Latency are the optional evaluation passes' outputs.
	Shedding *core.SheddingAnalysis
	Latency  *core.LatencyEstimate
	// Trace is the rewrite provenance.
	Trace *Trace
	// CacheStats reports the solver cache's traffic for this run.
	CacheStats CacheStats
	// Cyclic marks runs analyzed with the fixed-point solver.
	Cyclic bool

	replicas []int
}

// Replicas returns the replication degree per operator of the Final
// topology: fission degrees carried over by name for operators that
// survived fusion, one for fused meta-operators (the paper forbids
// replicating them). The returned slice is shared; do not modify.
func (r *Result) Replicas() []int { return r.replicas }

// Throughput is the final predicted topology throughput.
func (r *Result) Throughput() float64 { return r.Analysis.Throughput() }

// Pipeline is an ordered list of passes over a shared snapshot.
type Pipeline struct {
	Opts   Options
	Passes []Pass
}

// New builds the default pipeline for opts: analyze, fission, fusion,
// then the optional shedding and latency evaluation passes. The order is
// pinned (see the package comment); construct a Pipeline literal to
// deviate.
func New(opts Options) *Pipeline {
	p := &Pipeline{Opts: opts}
	p.Passes = append(p.Passes, AnalyzePass{})
	if !opts.DisableFission {
		p.Passes = append(p.Passes, FissionPass{})
	}
	if !opts.DisableFusion {
		p.Passes = append(p.Passes, FusionPass{})
	}
	if opts.Shedding {
		p.Passes = append(p.Passes, SheddingPass{})
	}
	if opts.LatencyModel != 0 {
		p.Passes = append(p.Passes, LatencyPass{})
	}
	return p
}

// Run executes the default pipeline on t.
func Run(t *core.Topology, opts Options) (*Result, error) {
	return New(opts).Run(t)
}

// Run executes the pipeline on a snapshot of t.
func (p *Pipeline) Run(t *core.Topology) (*Result, error) {
	if len(p.Passes) == 0 || p.Passes[0].Name() != "analyze" {
		return nil, fmt.Errorf("opt: pipeline must start with the analyze pass")
	}
	snap := NewSnapshot(t)
	ctx := &Context{
		Opts:   p.Opts,
		Cache:  NewSolverCache(),
		Result: &Result{Input: snap},
		Trace:  newTrace(snap),
	}
	ctx.Result.Trace = ctx.Trace

	// Mandatory vet pre-pass: errors abort the run before any pass
	// executes; warnings attach to the trace. The pre-pass dry-runs the
	// solver through the pipeline's cache, so it adds no extra solves —
	// the analyze pass hits the memoized result.
	pre := lint.Run(snap.Topology(), lint.Config{
		AllowCycles: p.Opts.AllowCycles,
		Solver:      ctx.Cache,
	})
	if err := pre.Err(); err != nil {
		return nil, fmt.Errorf("opt: vet: %w", err)
	}
	ctx.Trace.Lint = pre.Diagnostics

	cur := snap
	var err error
	for _, pass := range p.Passes {
		cur, err = pass.Run(ctx, cur)
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.ensureFinal(cur); err != nil {
		return nil, err
	}
	// Mandatory verification post-pass: bounded-queue interpretation of
	// the *optimized* plan under its deployed replica degrees
	// (SS3001/SS3002). The pre-pass vets the topology the user wrote;
	// this vets the one the pipeline is about to ship — restructuring
	// changes the plan the back-pressure argument runs over. Errors
	// abort the run; warnings attach to the trace with the pre-pass
	// findings.
	post := lint.VerifyPlan(cur.Topology(), lint.Config{
		AllowCycles:     p.Opts.AllowCycles,
		Replicas:        ctx.Result.replicas,
		MailboxCapacity: p.Opts.MailboxCapacity,
		BurstFactor:     p.Opts.BurstFactor,
		BurstSeconds:    p.Opts.BurstSeconds,
	})
	if err := post.Err(); err != nil {
		return nil, fmt.Errorf("opt: verify optimized plan: %w", err)
	}
	ctx.Trace.Lint = append(ctx.Trace.Lint, post.Diagnostics...)
	ctx.Result.Final = cur
	ctx.Result.CacheStats = ctx.Cache.Stats()
	ctx.Trace.ThroughputAfter = ctx.Result.Analysis.Throughput()
	ctx.Trace.FinalFingerprint = fmt.Sprintf("%016x", cur.Fingerprint())
	return ctx.Result, nil
}

// ensureFinal computes, once, the final replica mapping and the final
// analysis for the current snapshot. Fission degrees index the input
// topology; survivors are matched to the final topology by name (fusion
// preserves survivor names), and meta-operators get degree one.
func (ctx *Context) ensureFinal(cur *Snapshot) error {
	res := ctx.Result
	if res.Analysis != nil {
		return nil
	}
	final := cur.Topology()
	replicas := make([]int, final.Len())
	for i := range replicas {
		replicas[i] = 1
	}
	replicated := false
	if res.Fission != nil {
		input := res.Input.Topology()
		for i := 0; i < final.Len(); i++ {
			if id, ok := input.Lookup(final.Op(core.OpID(i)).Name); ok {
				if n := res.Fission.Analysis.Replicas[id]; n > 1 {
					replicas[i] = n
					replicated = true
				}
			}
		}
	}
	res.replicas = replicas

	var a *core.Analysis
	var err error
	switch {
	case ctx.cyclic:
		a, err = core.SteadyStateCyclic(final)
	case replicated:
		a, err = ctx.Cache.SteadyStateWithReplicas(final, replicas, ctx.Opts.Fission.Partitioner)
	default:
		a, err = ctx.Cache.SteadyState(final)
	}
	if err != nil {
		return fmt.Errorf("opt: final analysis: %w", err)
	}
	res.Analysis = a
	// Record the edge-topology transport analysis on the deployed plan:
	// the runtime derives each inbox's transport from the same producer
	// sets, so the trace is the replayable proof behind every SPSC
	// binding.
	tt, err := transportTrace(final, replicas, ctx.Opts.Fission.Partitioner, ctx.cyclic || ctx.Opts.AllowCycles)
	if err != nil {
		return fmt.Errorf("opt: transport analysis: %w", err)
	}
	ctx.Trace.Transports = tt
	return nil
}
