package opt

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"spinstreams/internal/core"
	"spinstreams/internal/lint"
	"spinstreams/internal/obs"
	"spinstreams/internal/profiler"
)

// ReplicaChange is one operator whose replication degree should change.
type ReplicaChange struct {
	Operator string `json:"operator"`
	From     int    `json:"from"`
	To       int    `json:"to"`
}

// FusionUndo flags a fused meta-operator that the measured profiles turn
// into a bottleneck: meta-operators cannot be replicated (Section 4.2),
// so un-fusing its members is the only restructuring that can recover
// the lost throughput.
type FusionUndo struct {
	Operator string   `json:"operator"`
	Members  []string `json:"members"`
	// Rho is the meta-operator's utilization under the measured profiles
	// and the re-optimized replication degrees.
	Rho float64 `json:"rho"`
}

// DeltaPlan is the output of Reoptimize: the minimal set of
// reconfigurations that moves the running topology from the degrees it
// was deployed with to the degrees the measured profiles demand.
type DeltaPlan struct {
	// Changes lists operators whose replication degree should change,
	// in topology order.
	Changes []ReplicaChange `json:"changes"`
	// Undo lists fusions that should be reverted.
	Undo []FusionUndo `json:"undo,omitempty"`
	// PredictedBefore is the predicted throughput of the *current*
	// configuration under the measured profiles — what the running
	// system is expected to sustain as reality stands.
	PredictedBefore float64 `json:"predicted_before"`
	// PredictedAfter is the predicted throughput after applying the
	// plan (modulo fusion undos, which need a redeploy).
	PredictedAfter float64 `json:"predicted_after"`
	// Result is the full re-optimization run on the re-profiled
	// topology, including its rewrite trace.
	Result *Result `json:"-"`
}

// Empty reports a no-op plan.
func (p *DeltaPlan) Empty() bool { return len(p.Changes) == 0 && len(p.Undo) == 0 }

// sortedChanges returns the replica changes ordered by operator name, so
// renderings and traces are byte-stable regardless of discovery order.
func (p *DeltaPlan) sortedChanges() []ReplicaChange {
	cs := append([]ReplicaChange(nil), p.Changes...)
	sort.Slice(cs, func(i, j int) bool { return cs[i].Operator < cs[j].Operator })
	return cs
}

// sortedUndo returns the fusion undos ordered by operator name.
func (p *DeltaPlan) sortedUndo() []FusionUndo {
	us := append([]FusionUndo(nil), p.Undo...)
	sort.Slice(us, func(i, j int) bool { return us[i].Operator < us[j].Operator })
	return us
}

// String renders the plan as the table the CLI prints. Changes and undos
// are sorted by operator, so reconfiguration logs are byte-stable.
func (p *DeltaPlan) String() string {
	var b strings.Builder
	if p.Empty() {
		b.WriteString("re-optimization: configuration already optimal for the measured profiles\n")
	}
	for _, c := range p.sortedChanges() {
		fmt.Fprintf(&b, "replicas %-20s %d -> %d\n", c.Operator, c.From, c.To)
	}
	for _, u := range p.sortedUndo() {
		fmt.Fprintf(&b, "unfuse   %-20s (members: %s; rho %.3f under measured profiles)\n",
			u.Operator, strings.Join(u.Members, ", "), u.Rho)
	}
	fmt.Fprintf(&b, "predicted throughput: %.1f t/s now, %.1f t/s after re-optimization\n",
		p.PredictedBefore, p.PredictedAfter)
	return b.String()
}

// blendProfiles weights measured profiles against the topology's declared
// ones per operator: confidence 1 trusts the measurement outright, 0 keeps
// the declared profile (expressed as a zero service time, which
// profiler.Apply treats as "leave the vertex untouched"). Confidences are
// clamped to [0,1]; measurements without a service time fall back to the
// declared profile regardless of confidence.
func blendProfiles(t *core.Topology, measured []profiler.Profile, confidence []float64) []profiler.Profile {
	out := append([]profiler.Profile(nil), measured...)
	for i := range out {
		if i >= t.Len() {
			break
		}
		conf := 0.0
		if i < len(confidence) {
			conf = confidence[i]
		}
		if conf < 0 {
			conf = 0
		} else if conf > 1 {
			conf = 1
		}
		p := &out[i]
		if p.ServiceTime <= 0 || conf == 0 {
			p.ServiceTime = 0
			p.InputSelectivity = 0
			p.OutputSelectivity = 0
			continue
		}
		decl := t.Op(core.OpID(i))
		p.ServiceTime = conf*p.ServiceTime + (1-conf)*decl.ServiceTime
		if p.OutputSelectivity > 0 {
			declOut := decl.OutputSelectivity
			if declOut <= 0 {
				declOut = 1
			}
			p.OutputSelectivity = conf*p.OutputSelectivity + (1-conf)*declOut
		}
	}
	return out
}

// Reoptimize closes the drift loop: it substitutes the drift report's
// measured service times and selectivities into the snapshot's topology,
// re-runs the optimizer pipeline on the re-profiled topology, and diffs
// the outcome against the configuration the report was measured under
// (drift.Replicas; all ones when nil). The snapshot is not modified.
//
// The drift report must carry measured profiles (obs.Drift populates
// them whenever a registry snapshot is available).
func Reoptimize(s *Snapshot, drift *obs.DriftReport, opts Options) (*DeltaPlan, error) {
	if drift == nil {
		return nil, errors.New("opt: reoptimize: nil drift report")
	}
	if len(drift.MeasuredProfiles) == 0 {
		return nil, errors.New("opt: reoptimize: drift report carries no measured profiles")
	}
	// Refuse reports measured against a different topology (redeployed
	// since profiling): computing a delta plan against the wrong graph
	// would emit reconfigurations for operators that no longer exist.
	stations := make([]string, len(drift.Rows))
	for i, row := range drift.Rows {
		stations[i] = row.Name
	}
	if ds := lint.CheckDrift(s.Topology(), stations, drift.Replicas, len(drift.MeasuredProfiles)); len(ds) > 0 {
		return nil, fmt.Errorf("opt: reoptimize: %w", &lint.Error{Diagnostics: ds})
	}
	profiles := drift.MeasuredProfiles
	if drift.ProfileConfidence != nil {
		// Estimator-fed reports carry per-operator confidences: blend each
		// estimate toward the declared model in proportion, so a couple of
		// noisy busy intervals nudge the profile instead of rewriting it.
		profiles = blendProfiles(s.Topology(), profiles, drift.ProfileConfidence)
	}
	reprofiled := s.Clone()
	if err := profiler.Apply(reprofiled, profiles); err != nil {
		return nil, fmt.Errorf("opt: reoptimize: %w", err)
	}

	// Predicted throughput of the deployed configuration under measured
	// reality.
	current := drift.Replicas
	var before *core.Analysis
	var err error
	if current == nil {
		before, err = core.SteadyState(reprofiled)
	} else {
		before, err = core.SteadyStateWithReplicas(reprofiled, current, opts.Fission.Partitioner)
	}
	if err != nil {
		return nil, fmt.Errorf("opt: reoptimize: current configuration: %w", err)
	}

	res, err := Run(reprofiled, opts)
	if err != nil {
		return nil, fmt.Errorf("opt: reoptimize: %w", err)
	}

	plan := &DeltaPlan{
		PredictedBefore: before.Throughput(),
		PredictedAfter:  res.Throughput(),
		Result:          res,
	}

	// Replica deltas, diffed on the input topology (the deployed one).
	input := res.Input.Topology()
	target := make([]int, input.Len())
	for i := range target {
		target[i] = 1
	}
	if res.Fission != nil {
		copy(target, res.Fission.Analysis.Replicas)
	}
	for i := 0; i < input.Len(); i++ {
		from := 1
		if i < len(current) {
			from = current[i]
		}
		if target[i] != from {
			plan.Changes = append(plan.Changes, ReplicaChange{
				Operator: input.Op(core.OpID(i)).Name,
				From:     from,
				To:       target[i],
			})
		}
	}

	// Fusions to undo: meta-operators still saturated after re-optimizing
	// the replica degrees. Replication cannot help them, so the plan
	// surfaces them for a redeploy.
	post := res.Baseline
	if res.Fission != nil {
		post = res.Fission.Analysis
	}
	for i := 0; i < input.Len(); i++ {
		op := input.Op(core.OpID(i))
		if len(op.Fused) == 0 {
			continue
		}
		if post.Rho[i] >= 1-1e-9 {
			plan.Undo = append(plan.Undo, FusionUndo{
				Operator: op.Name,
				Members:  append([]string(nil), op.Fused...),
				Rho:      post.Rho[i],
			})
		}
	}
	return plan, nil
}
