package opt

import "spinstreams/internal/core"

// Snapshot is an immutable view of a topology at one point in the
// pipeline. The constructor deep-copies the input, so later mutations of
// the original cannot invalidate the fingerprint or any cached analysis
// keyed on it. Passes receive a snapshot and return either the same
// snapshot (analysis-only passes, fission — which picks degrees but never
// rewrites the graph) or a new one built from a restructured topology
// (fusion).
//
// Immutability contract: Topology() exposes the underlying graph so
// passes can run the core algorithms on it, but callers must not modify
// it — use Clone() to obtain a private mutable copy. The contract is
// documented rather than enforced because core's analyses need the
// concrete *core.Topology.
type Snapshot struct {
	topo *core.Topology
	fp   uint64
}

// NewSnapshot deep-copies t into a new snapshot.
func NewSnapshot(t *core.Topology) *Snapshot {
	return newOwnedSnapshot(t.Clone())
}

// newOwnedSnapshot wraps a topology the caller guarantees nobody else
// mutates (e.g. the fresh output of core.Fuse), skipping the defensive
// copy.
func newOwnedSnapshot(t *core.Topology) *Snapshot {
	return &Snapshot{topo: t, fp: t.Fingerprint()}
}

// Topology returns the snapshot's graph. Treat it as read-only.
func (s *Snapshot) Topology() *core.Topology { return s.topo }

// Clone returns a private mutable copy of the snapshot's topology.
func (s *Snapshot) Clone() *core.Topology { return s.topo.Clone() }

// Fingerprint is the 64-bit hash of the complete topology profile; equal
// fingerprints mean identical analyses (see core.Topology.Fingerprint).
func (s *Snapshot) Fingerprint() uint64 { return s.fp }

// Len returns the operator count.
func (s *Snapshot) Len() int { return s.topo.Len() }
