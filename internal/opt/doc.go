// Package opt is the pass-pipeline optimizer driver: it composes the
// paper's Algorithms 1-3 (steady-state analysis, bottleneck elimination,
// operator fusion) plus the shedding and latency models into an ordered
// sequence of passes over a shared immutable topology snapshot.
//
// The pipeline adds three capabilities the loose core entry points lack:
//
//   - Incremental solving. Every steady-state analysis is routed through a
//     SolverCache keyed by Topology.Fingerprint, so autofuse's
//     accept/reject loop (which re-solves the unchanged current topology
//     once per candidate) stops re-solving identical subproblems.
//     BenchmarkSolverCacheAutoFuse quantifies the win on randtopo graphs.
//
//   - Rewrite provenance. Every decision — Theorem 3.2 source
//     corrections, fission degrees with their utilization triggers,
//     rejected fission and fusion candidates with reasons, applied
//     fusions with before/after predicted throughput — lands in a
//     structured Trace exportable as JSON (see DESIGN.md for the schema)
//     or as a DOT overlay (internal/dot.WriteOverlay).
//
//   - Re-entrancy. Reoptimize consumes an obs.DriftReport from a live
//     run, substitutes the measured service times and selectivities into
//     the profile, re-runs the pipeline, and emits a DeltaPlan: which
//     operators change replication degree and which fusions should be
//     undone now that reality disagrees with the profile.
//
// Pass ordering is deterministic and pinned: analyze, fission, fusion
// (then optionally shedding and latency). Fission runs first because it
// only chooses replication degrees — it never rewrites the graph — so the
// fusion pass sees the same topology the seed tool's AutoFuse saw and the
// pipeline reproduces the classic entry points' decisions exactly
// (TestPipelineEquivalence). Cyclic topologies are analyzed with the
// fixed-point solver; the restructuring passes skip them and record why.
package opt
