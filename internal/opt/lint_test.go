package opt

import (
	"strings"
	"testing"

	"spinstreams/internal/core"
	"spinstreams/internal/lint"
	"spinstreams/internal/obs"
	"spinstreams/internal/profiler"
	"spinstreams/internal/xmlio"
)

// TestPipelineTraceReplaysCleanly is the provenance loop: the trace a
// pipeline run emits must replay against its own input with zero SS2001
// diagnostics, and the recorded final fingerprint must match.
func TestPipelineTraceReplaysCleanly(t *testing.T) {
	top, err := xmlio.ReadFile("../../testdata/paper-table1.xml")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(top, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace.FinalFingerprint == "" {
		t.Fatal("trace has no final fingerprint")
	}
	data, err := res.Trace.JSON()
	if err != nil {
		t.Fatal(err)
	}
	rep := lint.Run(top, lint.Config{Trace: data})
	if rep.HasErrors() {
		t.Fatalf("own trace does not replay: %v", rep.Err())
	}
}

// TestPipelineTraceReplayCatchesTampering flips the final fingerprint and
// expects the replay to flag it.
func TestPipelineTraceReplayCatchesTampering(t *testing.T) {
	top, err := xmlio.ReadFile("../../testdata/paper-table1.xml")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(top, Options{})
	if err != nil {
		t.Fatal(err)
	}
	res.Trace.FinalFingerprint = "0000000000000000"
	data, err := res.Trace.JSON()
	if err != nil {
		t.Fatal(err)
	}
	rep := lint.Run(top, lint.Config{Trace: data})
	if !rep.HasErrors() {
		t.Fatal("tampered final fingerprint not flagged")
	}
	found := false
	for _, d := range rep.Diagnostics {
		if d.Code == lint.CodeTraceReplay {
			found = true
		}
	}
	if !found {
		t.Fatalf("want SS2001, got %v", rep.Diagnostics)
	}
}

// TestPipelineRefusesLintErrors feeds the pipeline a topology with a
// probability-mass hole and expects the vet pre-pass to abort the run with
// the diagnostic code in the error.
func TestPipelineRefusesLintErrors(t *testing.T) {
	top := core.NewTopology()
	src, _ := top.AddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 1e-3})
	mid, _ := top.AddOperator(core.Operator{Name: "mid", Kind: core.KindStateless, ServiceTime: 1e-4})
	sink, _ := top.AddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 1e-4})
	if err := top.Connect(src, mid, 0.5); err != nil { // mass hole: only 50% routed
		t.Fatal(err)
	}
	if err := top.Connect(mid, sink, 1); err != nil {
		t.Fatal(err)
	}
	_, err := Run(top, Options{})
	if err == nil {
		t.Fatal("pipeline accepted a lint-rejected topology")
	}
	if !strings.Contains(err.Error(), lint.CodeProbabilityMass) {
		t.Fatalf("error does not carry the diagnostic code: %v", err)
	}
}

// TestReoptimizeRefusesMismatchedDrift redeploys a different topology and
// expects Reoptimize to refuse the stale drift report with SS2002.
func TestReoptimizeRefusesMismatchedDrift(t *testing.T) {
	top, err := xmlio.ReadFile("../../testdata/paper-table1.xml")
	if err != nil {
		t.Fatal(err)
	}
	snap := NewSnapshot(top)
	profiles := make([]profiler.Profile, top.Len())
	for i := range profiles {
		profiles[i] = profiler.Profile{ServiceTime: 1e-3, InputSelectivity: 1, OutputSelectivity: 1}
	}
	drift := &obs.DriftReport{
		Rows:             []obs.DriftRow{{Name: "not-a-station"}},
		MeasuredProfiles: profiles,
	}
	_, err = Reoptimize(snap, drift, Options{})
	if err == nil {
		t.Fatal("Reoptimize accepted a drift report for a different topology")
	}
	if !strings.Contains(err.Error(), lint.CodeDriftMismatch) {
		t.Fatalf("error does not carry SS2002: %v", err)
	}
}
