package runtime

import (
	"context"
	"errors"
	"time"

	"spinstreams/internal/obs"
	"spinstreams/internal/opt"
)

// AutotuneOptions tunes the controller's autonomic loop.
type AutotuneOptions struct {
	// Interval is one round's measurement-window length (default
	// Config.AutotuneInterval).
	Interval time.Duration
	// Rounds is the number of measure/re-optimize/apply rounds (default 1).
	Rounds int
	// Opt configures the re-optimization (budgets, thresholds).
	Opt opt.Options
	// OnRound, when set, observes each completed round.
	OnRound func(AutotuneRound)
}

// AutotuneRound is one iteration of the loop: what was measured, what the
// optimizer proposed, and what the runtime did about it.
type AutotuneRound struct {
	// Round numbers the iteration, starting at 0.
	Round int
	// Drift compares the window's measured rates against the model.
	Drift *obs.DriftReport
	// Delta is the re-optimizer's proposal (empty when the deployment is
	// already optimal under the measured profiles).
	Delta *opt.DeltaPlan
	// Apply reports the live application of a non-empty delta.
	Apply *ApplyReport
	// Trace is the provenance trace of the applied delta, anchored at the
	// deployed topology (a live_apply step per spinstreams vet's replay).
	Trace *opt.Trace
}

// AutotuneReport collects the loop's rounds.
type AutotuneReport struct {
	Rounds []AutotuneRound
}

// Applied counts the rounds that applied a non-empty delta.
func (r *AutotuneReport) Applied() int {
	n := 0
	for _, round := range r.Rounds {
		if round.Apply != nil {
			n++
		}
	}
	return n
}

// Autotune runs the paper's autonomic loop on the live topology: measure
// a window, build the drift report, re-optimize on the measured profiles,
// and apply the resulting DeltaPlan in-flight — then measure again. Each
// applied delta is recorded as a live_apply step on the re-optimization's
// rewrite trace (and as a standalone trace in the round), so provenance
// replay covers live runs. The loop needs a controller started with
// StartTopology and returns after Rounds iterations, a context cancel, or
// the first error; the topology keeps running either way (call Stop for
// metrics).
func (c *Controller) Autotune(ctx context.Context, o AutotuneOptions) (*AutotuneReport, error) {
	if c.topo == nil {
		return nil, errors.New("runtime: Autotune needs a controller started with StartTopology")
	}
	interval := o.Interval
	if interval <= 0 {
		interval = c.e.cfg.AutotuneInterval
	}
	rounds := o.Rounds
	if rounds <= 0 {
		rounds = 1
	}
	sleepCtx(ctx, c.e.cfg.Warmup)
	rep := &AutotuneReport{}
	for r := 0; r < rounds; r++ {
		if ctx.Err() != nil {
			return rep, nil
		}
		c.beginWindow()
		if c.e.est != nil {
			c.e.est.BeginWindow()
		}
		sleepCtx(ctx, interval)
		c.e.reg.MarkWindowEnd()
		dr, err := c.measureRound()
		if err != nil {
			return rep, err
		}
		delta, err := opt.Reoptimize(opt.NewSnapshot(c.topo), dr, o.Opt)
		if err != nil {
			return rep, err
		}
		round := AutotuneRound{Round: r, Drift: dr, Delta: delta}
		if delta != nil && !delta.Empty() {
			ar, err := c.ApplyDelta(delta)
			round.Apply = ar
			if err != nil {
				rep.Rounds = append(rep.Rounds, round)
				return rep, err
			}
			round.Trace = opt.LiveTrace(c.topo, delta)
			if delta.Result != nil && delta.Result.Trace != nil {
				delta.Result.Trace.AppendLiveApply(delta)
			}
		}
		rep.Rounds = append(rep.Rounds, round)
		if o.OnRound != nil {
			o.OnRound(round)
		}
	}
	return rep, nil
}

// measureRound builds one round's drift report: from the online estimator
// when Config.Estimator is set (occupancy-derived rates and profiles with
// confidence weights, no timed probes), from the registry's window marks
// and probe histograms otherwise.
func (c *Controller) measureRound() (*obs.DriftReport, error) {
	if c.e.est == nil {
		return obs.Drift(c.topo, c.Replicas(), c.e.reg)
	}
	m, err := c.e.est.Measure()
	if err != nil {
		return nil, err
	}
	return obs.DriftFromProfiles(c.topo, c.Replicas(), m.Rates, m.Profiles, m.Confidence)
}
