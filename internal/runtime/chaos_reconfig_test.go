package runtime

import (
	"fmt"
	"testing"
	"time"

	"spinstreams/internal/faultinject"
	"spinstreams/internal/mailbox"
	"spinstreams/internal/obs"
	"spinstreams/internal/opt"
)

// TestChaosReconfigConservation is the live-reconfiguration chaos
// invariant: faults (slowdowns, panics with unlimited restart, send
// delays, plus shedding from a tight SendTimeout) keep firing WHILE the
// controller rescales operators in-flight — expand, expand, grow, shrink
// — and every generated tuple is still accounted for exactly, in both
// transports, across multiple fault schedules. A panic inside a pause
// fence restarts the station without wedging the fence; a fault inside a
// migration must not duplicate or lose keys' tuples.
func TestChaosReconfigConservation(t *testing.T) {
	for sched := 0; sched < chaosSchedules(t); sched++ {
		for _, mode := range []mailbox.Mode{mailbox.PerTuple, mailbox.Batched, mailbox.Auto} {
			t.Run(fmt.Sprintf("seed%d/%v", sched, mode), func(t *testing.T) {
				t.Parallel()
				inj := faultinject.New(faultinject.Config{
					Seed:          uint64(5000 + sched),
					SlowdownProb:  0.002,
					SlowdownFor:   100 * time.Microsecond,
					PanicProb:     0.0005,
					SendDelayProb: 0.002,
					SendDelayFor:  50 * time.Microsecond,
				})
				topo := pipeline(t, 0.0002, 0.0002, 0.0001, 0.0001)
				cfg := Config{
					Seed:                uint64(5000 + sched),
					MailboxSize:         32,
					NoServicePadding:    true,
					SendTimeout:         200 * time.Microsecond,
					Mailbox:             mode,
					Batch:               16,
					Linger:              300 * time.Microsecond,
					MaxRestarts:         -1,
					Faults:              inj,
					Obs:                 obs.New(),
					ReconfigStallBudget: 10 * time.Second,
				}
				c, err := StartTopology(topo, nil, nil, cfg)
				if err != nil {
					t.Fatal(err)
				}
				steps := []opt.ReplicaChange{
					{Operator: "sB", From: 1, To: 2},
					{Operator: "sC", From: 1, To: 3},
					{Operator: "sB", From: 2, To: 3},
					{Operator: "sB", From: 3, To: 2},
				}
				for i, chg := range steps {
					time.Sleep(60 * time.Millisecond)
					rep, err := c.ApplyDelta(&opt.DeltaPlan{Changes: []opt.ReplicaChange{chg}})
					if err != nil {
						t.Fatalf("step %d (%s %d->%d): %v", i, chg.Operator, chg.From, chg.To, err)
					}
					if rep.Epoch != uint64(i+1) {
						t.Errorf("step %d: epoch %d, want %d", i, rep.Epoch, i+1)
					}
				}
				time.Sleep(60 * time.Millisecond)
				m := mustStop(t, c)
				checkConservation(t, m)
				checkRegistryConservation(t, m, c.e.reg)
				checkCreditsRestored(t, c.e)
				if m.Totals.Delivered == 0 {
					t.Fatal("nothing delivered despite unlimited restarts")
				}
				if got := c.Replicas()[1]; got != 2 {
					t.Errorf("sB replicas = %d, want 2 after the shrink", got)
				}
				fc := inj.Counts()
				if fc.Slowdowns+fc.Panics+fc.SendDelays == 0 {
					t.Fatal("fault schedule never fired")
				}
			})
		}
	}
}

// TestChaosReconfigPanicDuringFence pins the hard case directly: a high
// panic rate guarantees panics land while a pause fence is draining the
// rescaled station, and the fence must still complete (restart, not
// deadlock) with exact accounting after Stop.
func TestChaosReconfigPanicDuringFence(t *testing.T) {
	inj := faultinject.New(faultinject.Config{
		Seed:      77,
		PanicProb: 0.01,
	})
	topo := pipeline(t, 0.0002, 0.0002, 0.0001, 0.0001)
	cfg := Config{
		Seed:                77,
		MailboxSize:         32,
		NoServicePadding:    true,
		SendTimeout:         200 * time.Microsecond,
		MaxRestarts:         -1,
		Faults:              inj,
		Obs:                 obs.New(),
		ReconfigStallBudget: 10 * time.Second,
	}
	c, err := StartTopology(topo, nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	rep, err := c.ApplyDelta(&opt.DeltaPlan{Changes: []opt.ReplicaChange{
		{Operator: "sB", From: 1, To: 3},
		{Operator: "sC", From: 1, To: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rescaled != 2 {
		t.Errorf("rescaled %d, want 2", rep.Rescaled)
	}
	time.Sleep(100 * time.Millisecond)
	m := mustStop(t, c)
	checkConservation(t, m)
	checkRegistryConservation(t, m, c.e.reg)
	checkCreditsRestored(t, c.e)
	if fc := inj.Counts(); fc.Panics == 0 {
		t.Fatal("fault schedule injected no panics")
	}
	if m.Restarts == 0 {
		t.Fatal("panics fired but no restarts recorded")
	}
}
