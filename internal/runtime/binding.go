package runtime

import (
	"fmt"
	"time"

	"spinstreams/internal/core"
	"spinstreams/internal/operators"
	"spinstreams/internal/plan"
	"spinstreams/internal/stats"
)

// Binding supplies the executable implementations behind a plan's logical
// operators: ordinary operators by prototype (replicas are Cloned), and
// meta-operators for vertices produced by fusion.
type Binding struct {
	// Ops maps logical operator IDs to implementation prototypes. Worker
	// stations clone their prototype, so replicas never share state.
	Ops map[core.OpID]operators.Operator
	// Meta maps fused vertices to their meta-operators.
	Meta map[core.OpID]*MetaOperator
}

// Bind builds a binding from per-operator specs (e.g. randtopo.Generated):
// specs[i] configures logical operator i; source entries and empty Impls
// are skipped.
func Bind(t *core.Topology, specs []operators.Spec) (*Binding, error) {
	b := &Binding{Ops: make(map[core.OpID]operators.Operator)}
	for i, spec := range specs {
		if spec.Impl == "" || spec.Impl == "source" {
			continue
		}
		op, err := operators.Build(spec)
		if err != nil {
			return nil, fmt.Errorf("bind operator %d: %w", i, err)
		}
		b.Ops[core.OpID(i)] = op
	}
	_ = t
	return b, nil
}

func (b *Binding) validate(p *plan.Plan) error {
	for id := range b.Meta {
		if int(id) >= len(p.EntryOf) {
			return fmt.Errorf("runtime: meta binding for unknown operator %d", id)
		}
	}
	for id := range b.Ops {
		if int(id) >= len(p.EntryOf) {
			return fmt.Errorf("runtime: binding for unknown operator %d", id)
		}
	}
	return nil
}

// executor returns the per-station processing function, whether it paces
// itself, and the live operator instance behind it (nil for pass-throughs
// and the ordering closures). The instance is exposed so the lifecycle
// seam can carry it across a pause and the reconfiguration controller can
// migrate its keyed state. Emitters and collectors forward items
// unchanged; workers apply their bound operator (cloned per station) or
// meta-operator; member stations produced by a live fusion undo clone the
// fused member's prototype; unbound workers pass through. Meta-operators
// pad internally to the per-item path cost (Algorithm 4), so the station
// loop must not pad them again to the fused mean.
func (b *Binding) executor(st *plan.Station, cfg Config) (exec func(operators.Tuple, *[]routed), selfPaced bool, inst operators.Operator, minst *metaInstance) {
	switch st.Role {
	case plan.RoleEmitter:
		if cfg.PreserveOrder && stationGain(st) == 1 {
			// Stamp each item with the emitter's own sequence so the
			// collector can restore order after the parallel replicas.
			var seq uint64
			return func(in operators.Tuple, outs *[]routed) {
				seq++
				in.Seq = seq
				*outs = append(*outs, routed{tuple: in, dest: -1})
			}, false, nil, nil
		}
		return forward, false, nil, nil
	case plan.RoleCollector:
		if cfg.PreserveOrder && stationGain(st) == 1 {
			next := uint64(1)
			held := make(map[uint64]operators.Tuple)
			return func(in operators.Tuple, outs *[]routed) {
				held[in.Seq] = in
				for {
					t, ok := held[next]
					if !ok {
						return
					}
					delete(held, next)
					next++
					*outs = append(*outs, routed{tuple: t, dest: -1})
				}
			}, false, nil, nil
		}
		return forward, false, nil, nil
	}
	// A member station runs one sub-operator of a formerly fused vertex
	// (st.Op still names the fused vertex, so this must be resolved before
	// the Meta lookup would instantiate the whole meta-operator again).
	if st.Member > 0 && b.Meta != nil {
		if m, ok := b.Meta[st.Op]; ok {
			if proto, ok := m.Prototypes[core.OpID(st.Member-1)]; ok {
				op := proto.Clone()
				return opExec(op), false, op, nil
			}
		}
	}
	if b.Meta != nil {
		if m, ok := b.Meta[st.Op]; ok {
			mi := m.instance(cfg)
			return mi.process, true, nil, mi
		}
	}
	if b.Ops != nil {
		if proto, ok := b.Ops[st.Op]; ok {
			op := proto.Clone()
			return opExec(op), false, op, nil
		}
	}
	// Unbound worker: emulate the station's profiled selectivity exactly,
	// like the simulator does — a deterministic credit accumulator emits
	// floor(credit) items per input, so the live queueing network carries
	// the steady-state rates the cost model was given even when no
	// business logic is attached.
	if st.Gain != 1 && st.Gain > 0 {
		credit := 0.0
		gain := st.Gain
		return func(in operators.Tuple, outs *[]routed) {
			credit += gain
			for credit >= 1 {
				credit--
				*outs = append(*outs, routed{tuple: in, dest: -1})
			}
		}, false, nil, nil
	}
	// A nil executor marks the trivial unit-gain pass-through; the actor
	// loops forward the input tuple directly, skipping the closure call
	// and the routed-slice round trip per item.
	return nil, false, nil, nil
}

// opExec wraps a concrete operator instance into the station processing
// closure; kept separate so migrations can rebuild the closure around an
// instance whose state they just moved.
func opExec(op operators.Operator) func(operators.Tuple, *[]routed) {
	return func(in operators.Tuple, outs *[]routed) {
		op.Process(in, func(t operators.Tuple) {
			*outs = append(*outs, routed{tuple: t, dest: -1})
		})
	}
}

// forward passes items through unchanged (plain emitters and collectors).
func forward(in operators.Tuple, outs *[]routed) {
	*outs = append(*outs, routed{tuple: in, dest: -1})
}

// stationGain is the logical operator's rate multiplier carried on emitter
// and collector stations; order restoration is sound only at unit gain.
func stationGain(st *plan.Station) float64 {
	in, out := st.InputSelectivity, st.OutputSelectivity
	if in <= 0 {
		in = 1
	}
	if out <= 0 {
		out = 1
	}
	return out / in
}

// MetaOperator executes a fused subgraph inside one actor, per Algorithm 4
// of the paper: each input item is processed by the front-end operator;
// results headed to members of the subgraph are processed in turn by those
// members' functions (following the subgraph's routing), and results headed
// outside are emitted to the corresponding operator of the fused topology.
type MetaOperator struct {
	// Sub is the original (pre-fusion) topology.
	Sub *core.Topology
	// Members are the fused vertices (IDs in Sub); Front is the unique
	// front-end.
	Members []core.OpID
	Front   core.OpID
	// Prototypes supplies each member's implementation.
	Prototypes map[core.OpID]operators.Operator
	// SurvivorIDs translates external destinations from Sub IDs to IDs in
	// the fused topology (FusionReport.SurvivorIDs).
	SurvivorIDs map[core.OpID]core.OpID
	// Seed drives the internal probabilistic routing.
	Seed uint64
}

// NewMetaOperator builds the meta-operator for a fusion performed on sub.
func NewMetaOperator(sub *core.Topology, report *core.FusionReport, protos map[core.OpID]operators.Operator, seed uint64) (*MetaOperator, error) {
	if report == nil {
		return nil, fmt.Errorf("runtime: nil fusion report")
	}
	for _, m := range report.Members {
		if _, ok := protos[m]; !ok {
			return nil, fmt.Errorf("runtime: missing prototype for fused member %q", sub.Op(m).Name)
		}
	}
	return &MetaOperator{
		Sub:         sub,
		Members:     report.Members,
		Front:       report.FrontEnd,
		Prototypes:  protos,
		SurvivorIDs: report.SurvivorIDs,
		Seed:        seed,
	}, nil
}

// metaInstance is the per-actor instantiation: cloned member operators plus
// routing state.
type metaInstance struct {
	m       *MetaOperator
	ops     map[core.OpID]operators.Operator
	members map[core.OpID]bool
	rng     *stats.RNG
	// sched paces the whole meta-operator: each item is padded to the sum
	// of the service times of the members it traversed.
	sched *pacer
	// work is the traversal queue of (vertex, tuple) pairs.
	work []metaItem
}

type metaItem struct {
	at  core.OpID
	tup operators.Tuple
}

func (m *MetaOperator) instance(cfg Config) *metaInstance {
	inst := &metaInstance{
		m:       m,
		ops:     make(map[core.OpID]operators.Operator, len(m.Members)),
		members: make(map[core.OpID]bool, len(m.Members)),
		rng:     stats.NewRNG(m.Seed + 0xfeed),
	}
	if !cfg.NoServicePadding {
		inst.sched = newPacer(0)
	}
	for _, id := range m.Members {
		inst.ops[id] = m.Prototypes[id].Clone()
		inst.members[id] = true
	}
	return inst
}

// process runs Algorithm 4 for one input item: the front-end's function is
// applied first and results flowing to other members are processed in
// turn, so the item's cost is the sequential composition of the member
// functions along its path. The subgraph is acyclic, so the traversal
// always terminates.
func (mi *metaInstance) process(in operators.Tuple, outs *[]routed) {
	started := time.Now()
	var pathCost float64
	mi.work = mi.work[:0]
	mi.work = append(mi.work, metaItem{at: mi.m.Front, tup: in})
	for len(mi.work) > 0 {
		item := mi.work[0]
		mi.work = mi.work[1:]
		op := mi.ops[item.at]
		pathCost += mi.m.Sub.Op(item.at).ServiceTime
		op.Process(item.tup, func(t operators.Tuple) {
			dest := mi.route(item.at, t)
			if dest < 0 {
				return
			}
			if mi.members[dest] {
				mi.work = append(mi.work, metaItem{at: dest, tup: t})
				return
			}
			fusedID, ok := mi.m.SurvivorIDs[dest]
			if !ok {
				return
			}
			*outs = append(*outs, routed{tuple: t, dest: fusedID})
		})
	}
	if mi.sched != nil {
		mi.sched.waitFor(started, time.Duration(pathCost*float64(time.Second)))
	}
}

// route samples the destination of one output of member v using the
// original subgraph's edge probabilities.
func (mi *metaInstance) route(v core.OpID, t operators.Tuple) core.OpID {
	out := mi.m.Sub.Out(v)
	if len(out) == 0 {
		return -1
	}
	if len(out) == 1 {
		return out[0].To
	}
	_ = t
	u := mi.rng.Float64()
	acc := 0.0
	for _, e := range out {
		acc += e.Prob
		if u < acc {
			return e.To
		}
	}
	return out[len(out)-1].To
}
