package runtime

import (
	"sync"

	"spinstreams/internal/faultinject"
	"spinstreams/internal/mailbox"
	"spinstreams/internal/obs"
	"spinstreams/internal/operators"
	"spinstreams/internal/plan"
)

// tables is the swappable routing state of one engine epoch: the physical
// plan, the mailboxes and per-station sender arrays bound to it, the
// observability cells and fault streams indexed by station. The engine
// publishes tables through an atomic pointer; a live reconfiguration
// builds a new value copy-on-write (station entries it does not touch
// keep their mailbox, sender and counter-cell pointers) and swaps it in
// while every affected station is parked, so running stations only ever
// observe a consistent epoch. Stale reads are safe by construction: a
// station that was not paused sees identical entries in the old and new
// tables.
type tables struct {
	// epoch counts table swaps; epoch 0 is the initial deployment.
	epoch uint64
	p     *plan.Plan
	// mailboxes[i] is station i's inbox.
	mailboxes []*mailbox.Mailbox[operators.Tuple]
	// senders[station][edgeIdx] is the station's producer handle for its
	// edgeIdx-th output edge; each station goroutine owns its senders, so
	// partial micro-batches are single-writer. The controller only
	// touches a station's senders while it is parked.
	senders [][]*mailbox.Sender[operators.Tuple]
	// st[i] is station i's observability cell (the accounting path).
	st []*obs.Station
	// stFaults[i] is station i's injected fault stream (nil entries when
	// no injector is configured).
	stFaults []*faultinject.StationFaults
	// retired[i] marks stations a reconfiguration drained and stopped;
	// they keep their plan slot (and their lifetime counters) but no
	// longer run.
	retired []bool
}

// tab returns the engine's current tables.
func (e *engine) tab() *tables { return e.live.Load() }

// stationCtl is the lifecycle seam between one station goroutine and the
// reconfiguration controller: stop interrupts the station's blocking
// receive, parked/release form the pause handshake, and inst/preset hand
// the live operator instance across the fence. The station only touches
// its own ctl; the controller touches it only around the park handshake,
// whose channel operations order every unsynchronized field access.
type stationCtl struct {
	mu sync.Mutex
	// stop interrupts the station's blocking receive. The controller
	// closes it to pause the station (resume installs a fresh channel);
	// engine shutdown closes every station's stop for good.
	stop       chan struct{}
	stopClosed bool
	// draining asks the station to empty its inbox before parking (set
	// for stations about to be drained out of the plan or migrated).
	draining bool
	// parked is closed by the station once it has quiesced; release is
	// closed by the controller to let it continue. Both are recreated by
	// requestPause for each pause cycle.
	parked  chan struct{}
	release chan struct{}
	// retired tells a released station to exit instead of resuming.
	retired bool
	// inst / minst expose the live operator instance the station bound
	// for the current epoch; the controller reads them only while the
	// station is parked (the parked close orders the accesses).
	inst  operators.Operator
	minst *metaInstance
	// preset / presetMeta carry an operator instance into the station's
	// next epoch: a station re-binds on every resume, so without a
	// preset a pause would wipe operator state. The pause path presets
	// the station's own live instance; migrations override it.
	preset     operators.Operator
	presetMeta *metaInstance
}

// stopCh returns the current stop channel; stations fetch it once per
// lifecycle segment (resume replaces the channel).
func (ctl *stationCtl) stopCh() chan struct{} {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	return ctl.stop
}

// closeStop interrupts the station's receive; idempotent.
func (ctl *stationCtl) closeStop() {
	ctl.mu.Lock()
	if !ctl.stopClosed {
		close(ctl.stop)
		ctl.stopClosed = true
	}
	ctl.mu.Unlock()
}

// drainRequested reports whether the pending pause asked the station to
// empty its inbox before parking.
func (ctl *stationCtl) drainRequested() bool {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	return ctl.draining
}

// publish exposes the instance the station bound for this epoch.
func (ctl *stationCtl) publish(inst operators.Operator, minst *metaInstance) {
	ctl.inst, ctl.minst = inst, minst
}

// carry presets the station's live instance for its next epoch, so
// operator state survives a pause/resume cycle. Called on the pause exit
// path only — a panic exit leaves the preset empty and the restart binds
// a fresh instance, as restarts always have.
func (ctl *stationCtl) carry(inst operators.Operator, minst *metaInstance) {
	ctl.preset, ctl.presetMeta = inst, minst
}

// requestPause arms a pause: fresh handshake channels, the drain flag,
// then the stop close that the station will observe.
func (ctl *stationCtl) requestPause(drain bool) {
	ctl.mu.Lock()
	ctl.draining = drain
	ctl.parked = make(chan struct{})
	ctl.release = make(chan struct{})
	if !ctl.stopClosed {
		close(ctl.stop)
		ctl.stopClosed = true
	}
	ctl.mu.Unlock()
}

// parkedCh returns the channel the station closes once parked.
func (ctl *stationCtl) parkedCh() chan struct{} {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	return ctl.parked
}

// resume releases a parked station: a fresh stop channel is installed
// before the release close, so the station's next segment blocks
// normally. With retire set the station exits instead.
func (ctl *stationCtl) resume(retire bool) {
	ctl.mu.Lock()
	if retire {
		ctl.retired = true
	}
	ctl.draining = false
	ctl.stop = make(chan struct{})
	ctl.stopClosed = false
	release := ctl.release
	ctl.mu.Unlock()
	if release != nil {
		close(release)
	}
}

// isRetired reports whether the controller retired the station.
func (ctl *stationCtl) isRetired() bool {
	ctl.mu.Lock()
	defer ctl.mu.Unlock()
	return ctl.retired
}

// park completes the pause handshake from the station side: it signals
// the controller and blocks until released (continue), retired or
// shutdown (both: exit). It returns true to continue running.
func (ctl *stationCtl) park(done <-chan struct{}) bool {
	ctl.mu.Lock()
	parked, release := ctl.parked, ctl.release
	ctl.mu.Unlock()
	if parked == nil {
		// Stop closed without a pause request: shutdown raced the
		// station's exit checks.
		return false
	}
	close(parked)
	select {
	case <-release:
	case <-done:
		return false
	}
	return !ctl.isRetired()
}

// ctl returns station id's lifecycle handle, or nil when the station was
// never spawned.
func (e *engine) ctl(id plan.StationID) *stationCtl {
	e.ctlMu.Lock()
	defer e.ctlMu.Unlock()
	if int(id) >= len(e.ctls) {
		return nil
	}
	return e.ctls[id]
}

// spawnStation registers a lifecycle handle for the station and starts
// its goroutine; preset/presetMeta seed its first epoch with a migrated
// operator instance.
func (e *engine) spawnStation(id plan.StationID, seed uint64, preset operators.Operator, presetMeta *metaInstance) {
	ctl := &stationCtl{stop: make(chan struct{}), preset: preset, presetMeta: presetMeta}
	e.ctlMu.Lock()
	for len(e.ctls) <= int(id) {
		e.ctls = append(e.ctls, nil)
	}
	e.ctls[id] = ctl
	e.ctlMu.Unlock()
	e.wg.Add(1)
	go e.runStation(id, ctl, seed)
}

// isShutdown reports whether the engine-wide done channel fired.
func (e *engine) isShutdown() bool {
	select {
	case <-e.done:
		return true
	default:
		return false
	}
}

// interruptStations closes every station's stop channel so blocked
// receives return; with e.done already closed the stations exit instead
// of parking.
func (e *engine) interruptStations() {
	e.ctlMu.Lock()
	ctls := append([]*stationCtl(nil), e.ctls...)
	e.ctlMu.Unlock()
	for _, ctl := range ctls {
		if ctl != nil {
			ctl.closeStop()
		}
	}
}

// shutdown stops every station (the engine-wide done close aborts
// blocked sends, the per-station stop closes interrupt receives), waits
// for them, and drains the mailboxes so every surviving tuple is
// accounted.
func (e *engine) shutdown() {
	close(e.done)
	e.interruptStations()
	e.wg.Wait()
	e.drainMailboxes()
}
