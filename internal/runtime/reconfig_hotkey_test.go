package runtime

import (
	"testing"
	"time"

	"spinstreams/internal/core"
	"spinstreams/internal/operators"
	"spinstreams/internal/opt"
)

// hotKeyTopology declares a keyed aggregation whose key distribution has
// one key carrying over half the traffic — the skew that pins keypart's
// achievable pmax and forces the partitioner to isolate the hot key.
func hotKeyTopology(numKeys int, hotShare float64) *core.Topology {
	freq := make([]float64, numKeys)
	rest := (1 - hotShare) / float64(numKeys-1)
	for i := range freq {
		freq[i] = rest
	}
	freq[0] = hotShare
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 0.0005})
	agg := topo.MustAddOperator(core.Operator{
		Name: "agg", Kind: core.KindPartitionedStateful, ServiceTime: 0.002,
		Keys: &core.KeyDistribution{Freq: freq},
	})
	sink := topo.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.0002})
	topo.MustConnect(src, agg, 1)
	topo.MustConnect(agg, sink, 1)
	return topo
}

// hotKeyController starts the topology with a unit-gain keyed binding
// (window and slide of 1: every input emits exactly one output, so the
// exact conservation identity applies) and a generator skewed so the hot
// key really does dominate the generated traffic, not just the declared
// profile.
func hotKeyController(t *testing.T, topo *core.Topology, seed uint64) *Controller {
	t.Helper()
	aggID, _ := topo.Lookup("agg")
	numKeys := len(topo.Op(aggID).Keys.Freq)
	binding := &Binding{Ops: map[core.OpID]operators.Operator{
		aggID: operators.MustBuild(operators.Spec{Impl: "wsum", WindowLen: 1, Slide: 1, NumKeys: numKeys}),
	}}
	cfg := ctlCfg(seed)
	gen, err := operators.NewGenerator(operators.GeneratorConfig{Seed: seed + 1, NumKeys: numKeys, KeySkew: 2.2})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Generator = gen
	c, err := StartTopology(topo, nil, binding, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestControllerHotKeyRescaleAffinity rescales a keyed operator whose key
// 0 carries 55% of the declared traffic and asserts the partitioner's
// decisions survive the epoch swap: the greedy assignment consolidates the
// requested 3 replicas down to 2 (0.55 / 0.45 — a third replica cannot
// beat the hot key's pmax floor), the hot key sits alone on its replica,
// and every surviving replica instance holds exactly the keys the final
// assignment routes to it.
func TestControllerHotKeyRescaleAffinity(t *testing.T) {
	const numKeys = 10
	topo := hotKeyTopology(numKeys, 0.55)
	c := hotKeyController(t, topo, 31)
	time.Sleep(150 * time.Millisecond) // accumulate keyed state

	rep, err := c.ApplyDelta(&opt.DeltaPlan{Changes: []opt.ReplicaChange{{Operator: "agg", From: 1, To: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rescaled != 1 || rep.Epoch != 1 {
		t.Fatalf("report = %+v, want Rescaled 1 at epoch 1", rep)
	}
	if rep.MigratedKeys == 0 {
		t.Error("rescale migrated no keys despite accumulated state")
	}
	time.Sleep(100 * time.Millisecond)
	m := mustStop(t, c)
	checkConserved(t, m)

	aggID, _ := topo.Lookup("agg")
	tb := c.e.tab()
	entry := tb.p.EntryOf[aggID]
	kr := tb.p.Stations[entry].KeyReplica
	if len(kr) != numKeys {
		t.Fatalf("emitter KeyReplica has %d entries, want %d", len(kr), numKeys)
	}
	workers := tb.p.WorkersOf[aggID]
	if len(workers) != 2 {
		t.Fatalf("hot-key skew deployed %d replicas, want 2 (consolidation: 0.45 merges under the 0.55 pmax)", len(workers))
	}
	hot := kr[0]
	for k := 1; k < numKeys; k++ {
		if kr[k] == hot {
			t.Errorf("cold key %d shares replica %d with the hot key", k, hot)
		}
		if kr[k] != kr[1] {
			t.Errorf("cold keys split across replicas: key %d on %d, key 1 on %d", k, kr[k], kr[1])
		}
	}

	held := 0
	for slot, wid := range workers {
		ctl := c.e.ctl(wid)
		if ctl == nil || ctl.inst == nil {
			continue
		}
		ks, ok := ctl.inst.(operators.KeyedState)
		if !ok {
			t.Fatalf("replica %d instance does not expose keyed state", slot)
		}
		for _, k := range ks.StateKeys() {
			held++
			if owner := kr[int(k)%numKeys]; owner != slot {
				t.Errorf("key %d held by replica slot %d, assignment says %d — state did not follow the key", k, slot, owner)
			}
		}
	}
	if held == 0 {
		t.Error("no keyed state survived the rescale")
	}
}

// TestControllerHotKeyRescaleConservesTuples drives a full expand/shrink
// cycle under hot-key skew and asserts the exact lifetime identity
// Generated == Delivered + Shed + Failed + Drained + Abandoned: the two
// epoch swaps (with their pause fences, drains and state migrations) must
// not lose or duplicate a single tuple.
func TestControllerHotKeyRescaleConservesTuples(t *testing.T) {
	topo := hotKeyTopology(10, 0.55)
	c := hotKeyController(t, topo, 33)
	time.Sleep(120 * time.Millisecond)

	if _, err := c.ApplyDelta(&opt.DeltaPlan{Changes: []opt.ReplicaChange{{Operator: "agg", From: 1, To: 3}}}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(120 * time.Millisecond)

	aggID, _ := topo.Lookup("agg")
	cur := c.Replicas()[aggID]
	if cur < 2 {
		t.Fatalf("replicas after expand = %d, want >= 2", cur)
	}
	rep, err := c.ApplyDelta(&opt.DeltaPlan{Changes: []opt.ReplicaChange{{Operator: "agg", From: cur, To: 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 2 {
		t.Errorf("epoch = %d, want 2", rep.Epoch)
	}
	time.Sleep(120 * time.Millisecond)

	m := mustStop(t, c)
	checkConserved(t, m)
	if m.Totals.Generated == 0 || m.Totals.Delivered == 0 {
		t.Fatalf("no traffic flowed: %+v", m.Totals)
	}
}
