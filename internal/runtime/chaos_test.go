package runtime

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"spinstreams/internal/faultinject"
	"spinstreams/internal/mailbox"
	"spinstreams/internal/plan"
)

// chaosSchedules returns how many randomized fault schedules each chaos
// test runs. SS_CHAOS_SCHEDULES overrides the default of 3, so CI can
// run a single-schedule smoke in the fast job and the full sweep under
// -race.
func chaosSchedules(t *testing.T) int {
	t.Helper()
	if s := os.Getenv("SS_CHAOS_SCHEDULES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad SS_CHAOS_SCHEDULES=%q", s)
		}
		return n
	}
	return 3
}

// chaosRun executes a unit-gain pipeline on the local engine with the
// given injector and returns the metrics plus the engine (for mailbox
// credit checks).
func chaosRun(t *testing.T, mode mailbox.Mode, inj *faultinject.Injector, maxRestarts int) (*Metrics, *engine) {
	t.Helper()
	topo := pipeline(t, 0.0002, 0.0002, 0.0001, 0.0001)
	p, err := plan.Build(topo, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Seed:             7,
		Duration:         500 * time.Millisecond,
		Warmup:           150 * time.Millisecond,
		MailboxSize:      32,
		NoServicePadding: true,
		SendTimeout:      200 * time.Microsecond,
		Mailbox:          mode,
		Batch:            16,
		Linger:           300 * time.Microsecond,
		MaxRestarts:      maxRestarts,
		Faults:           inj,
	}
	cfg, err = cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	e, err := newEngine(p, &Binding{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return m, e
}

// checkConservation asserts the exact lifetime identity for unit-gain
// topologies: Generated == Delivered + Shed + Failed + Drained +
// Abandoned.
func checkConservation(t *testing.T, m *Metrics) {
	t.Helper()
	tt := m.Totals
	out := tt.Delivered + tt.Shed + tt.Failed + tt.Drained + tt.Abandoned
	if tt.Generated != out {
		t.Fatalf("conservation violated: generated %d != delivered %d + shed %d + failed %d + drained %d + abandoned %d = %d",
			tt.Generated, tt.Delivered, tt.Shed, tt.Failed, tt.Drained, tt.Abandoned, out)
	}
	if tt.Generated == 0 {
		t.Fatal("source generated nothing")
	}
}

// checkCreditsRestored asserts the drain pass returned every capacity
// credit: no mailbox still accounts queued tuples.
func checkCreditsRestored(t *testing.T, e *engine) {
	t.Helper()
	for i := range e.mailboxes {
		if q := e.mailboxes[i].Queued(); q != 0 {
			t.Fatalf("station %d mailbox still holds %d credits after drain", i, q)
		}
	}
}

// TestChaosConservationLocal is the core chaos invariant: under injected
// slowdowns, panics (with unlimited restart), and send delays — plus
// shedding from a tight SendTimeout — every generated tuple is accounted
// for exactly, in both transports, across multiple fault schedules.
func TestChaosConservationLocal(t *testing.T) {
	for sched := 0; sched < chaosSchedules(t); sched++ {
		for _, mode := range []mailbox.Mode{mailbox.PerTuple, mailbox.Batched} {
			t.Run(fmt.Sprintf("seed%d/%v", sched, mode), func(t *testing.T) {
				t.Parallel()
				inj := faultinject.New(faultinject.Config{
					Seed:          uint64(2000 + sched),
					SlowdownProb:  0.002,
					SlowdownFor:   100 * time.Microsecond,
					PanicProb:     0.0005,
					SendDelayProb: 0.002,
					SendDelayFor:  50 * time.Microsecond,
				})
				m, e := chaosRun(t, mode, inj, -1)
				checkConservation(t, m)
				checkCreditsRestored(t, e)
				if m.Totals.Delivered == 0 {
					t.Fatal("nothing delivered despite unlimited restarts")
				}
				c := inj.Counts()
				if c.Slowdowns+c.Panics+c.SendDelays == 0 {
					t.Fatal("fault schedule never fired")
				}
				if c.Panics > 0 && m.Restarts == 0 {
					t.Fatalf("%d injected panics but no restarts recorded", c.Panics)
				}
			})
		}
	}
}

// TestChaosSheddingParityUnderFaults asserts the shedding semantics
// survive injected faults identically in both transports: tuples are
// shed (not lost) under pressure, and the conservation identity holds
// for each mode.
func TestChaosSheddingParityUnderFaults(t *testing.T) {
	for _, mode := range []mailbox.Mode{mailbox.PerTuple, mailbox.Batched} {
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			inj := faultinject.New(faultinject.Config{
				Seed:          99,
				SlowdownProb:  0.05,
				SlowdownFor:   300 * time.Microsecond,
				SendDelayProb: 0.01,
				SendDelayFor:  100 * time.Microsecond,
			})
			m, e := chaosRun(t, mode, inj, -1)
			checkConservation(t, m)
			checkCreditsRestored(t, e)
			if m.Totals.Shed == 0 {
				t.Fatal("no shedding under injected slowdowns with a tight SendTimeout")
			}
			if m.Totals.Delivered == 0 {
				t.Fatal("nothing delivered")
			}
		})
	}
}

// TestChaosDegradedStation exhausts a station's restart budget and
// verifies graceful degradation: the run completes, the degraded station
// keeps consuming (so the upstream cannot deadlock), and accounting
// stays exact with the discarded tuples counted as failed.
func TestChaosDegradedStation(t *testing.T) {
	for _, mode := range []mailbox.Mode{mailbox.PerTuple, mailbox.Batched} {
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			inj := faultinject.New(faultinject.Config{
				Seed:      4,
				PanicProb: 0.02,
			})
			m, e := chaosRun(t, mode, inj, 2)
			checkConservation(t, m)
			checkCreditsRestored(t, e)
			if m.Degraded == 0 {
				t.Fatal("no station degraded despite 2% panic rate and a budget of 2")
			}
			if m.Totals.Failed == 0 {
				t.Fatal("degraded stations recorded no failed tuples")
			}
			// The source must have kept producing long after the first
			// panics: a deadlocked pipeline would freeze Generated near
			// the mailbox capacity.
			if m.Totals.Generated < 1000 {
				t.Fatalf("source starved after degradation: generated only %d", m.Totals.Generated)
			}
			var restarts uint64
			for _, st := range m.Stations {
				restarts += st.Restarts
			}
			if restarts != m.Restarts {
				t.Fatalf("per-station restarts sum %d != total %d", restarts, m.Restarts)
			}
		})
	}
}

// TestChaosRecoveryDisabledByDefault pins the backward-compatible
// default: MaxRestarts 0 installs no recover, so runs without faults
// behave exactly as before (and the accounting buckets stay empty except
// for shutdown residue).
func TestChaosRecoveryDisabledByDefault(t *testing.T) {
	t.Parallel()
	m, e := chaosRun(t, mailbox.PerTuple, nil, 0)
	checkConservation(t, m)
	checkCreditsRestored(t, e)
	if m.Restarts != 0 || m.Degraded != 0 {
		t.Fatalf("restarts %d degraded %d on a fault-free run", m.Restarts, m.Degraded)
	}
	if m.Totals.Failed != 0 {
		t.Fatalf("failed %d without any panics", m.Totals.Failed)
	}
}

// TestChaosDistributedConnReset injects periodic connection resets with
// partial writes into a two-node pipeline and verifies the retry/backoff
// path: the run survives, traffic keeps flowing after resets, and the
// conservation identity holds with network in-flight loss accounted.
func TestChaosDistributedConnReset(t *testing.T) {
	for sched := 0; sched < chaosSchedules(t); sched++ {
		t.Run(fmt.Sprintf("seed%d", sched), func(t *testing.T) {
			topo := pipeline(t, 0.0005, 0.0002, 0.0001)
			p, err := plan.Build(topo, plan.Options{})
			if err != nil {
				t.Fatal(err)
			}
			inj := faultinject.New(faultinject.Config{
				Seed:              uint64(3000 + sched),
				ResetEveryWrites:  40,
				PartialWriteBytes: 7,
			})
			cfg := DistributedConfig{
				Config: Config{
					Seed:        uint64(sched),
					Duration:    1200 * time.Millisecond,
					Warmup:      300 * time.Millisecond,
					MailboxSize: 32,
					MaxRestarts: -1,
					Faults:      inj,
				},
				Nodes:        2,
				RetryBackoff: time.Millisecond,
				SendDeadline: 2 * time.Second,
			}
			m, err := RunDistributed(context.Background(), p, nil, cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkConservation(t, m)
			c := inj.Counts()
			if c.ConnResets == 0 {
				t.Fatal("no connection resets fired")
			}
			// Retry/backoff must keep the pipeline alive across resets:
			// the source paces at 2000/s, so a dead edge would strand
			// nearly everything.
			if m.Totals.Delivered < m.Totals.Generated/2 {
				t.Fatalf("pipeline did not survive resets: delivered %d of %d (resets %d)",
					m.Totals.Delivered, m.Totals.Generated, c.ConnResets)
			}
		})
	}
}

// TestChaosDistributedLegacyStickyError pins the opt-out: a negative
// SendDeadline restores the historical behaviour where the first write
// error kills the edge — and the accounting still balances.
func TestChaosDistributedLegacyStickyError(t *testing.T) {
	topo := pipeline(t, 0.0005, 0.0002, 0.0001)
	p, err := plan.Build(topo, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(faultinject.Config{
		Seed:             11,
		ResetEveryWrites: 25,
	})
	cfg := DistributedConfig{
		Config: Config{
			Seed:        11,
			Duration:    900 * time.Millisecond,
			Warmup:      200 * time.Millisecond,
			MailboxSize: 32,
			Faults:      inj,
		},
		Nodes:        2,
		SendDeadline: -1,
	}
	m, err := RunDistributed(context.Background(), p, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, m)
	if inj.Counts().ConnResets == 0 {
		t.Fatal("no reset fired")
	}
}
