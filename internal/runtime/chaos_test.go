package runtime

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"spinstreams/internal/faultinject"
	"spinstreams/internal/mailbox"
	"spinstreams/internal/obs"
	"spinstreams/internal/plan"
)

// chaosSchedules returns how many randomized fault schedules each chaos
// test runs. SS_CHAOS_SCHEDULES overrides the default of 3, so CI can
// run a single-schedule smoke in the fast job and the full sweep under
// -race.
func chaosSchedules(t *testing.T) int {
	t.Helper()
	if s := os.Getenv("SS_CHAOS_SCHEDULES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad SS_CHAOS_SCHEDULES=%q", s)
		}
		return n
	}
	return 3
}

// chaosRun executes a unit-gain pipeline on the local engine with the
// given injector and returns the metrics plus the engine (for mailbox
// credit checks).
func chaosRun(t *testing.T, mode mailbox.Mode, inj *faultinject.Injector, maxRestarts int) (*Metrics, *engine) {
	t.Helper()
	topo := pipeline(t, 0.0002, 0.0002, 0.0001, 0.0001)
	p, err := plan.Build(topo, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Every chaos run binds a caller-style registry, so the sampled
	// instrumentation paths (histograms, probes) are exercised under
	// faults and the registry's recomputed totals can be cross-checked.
	cfg := Config{
		Seed:             7,
		Duration:         500 * time.Millisecond,
		Warmup:           150 * time.Millisecond,
		MailboxSize:      32,
		NoServicePadding: true,
		SendTimeout:      200 * time.Microsecond,
		Mailbox:          mode,
		Batch:            16,
		Linger:           300 * time.Microsecond,
		MaxRestarts:      maxRestarts,
		Faults:           inj,
		Obs:              obs.New(),
	}
	cfg, err = cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	e, err := newEngine(p, &Binding{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m, err := e.execute(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	return m, e
}

// checkConservation asserts the exact lifetime identity for unit-gain
// topologies: Generated == Delivered + Shed + Failed + Drained +
// Abandoned.
func checkConservation(t *testing.T, m *Metrics) {
	t.Helper()
	tt := m.Totals
	out := tt.Delivered + tt.Shed + tt.Failed + tt.Drained + tt.Abandoned
	if tt.Generated != out {
		t.Fatalf("conservation violated: generated %d != delivered %d + shed %d + failed %d + drained %d + abandoned %d = %d",
			tt.Generated, tt.Delivered, tt.Shed, tt.Failed, tt.Drained, tt.Abandoned, out)
	}
	if tt.Generated == 0 {
		t.Fatal("source generated nothing")
	}
}

// checkRegistryConservation recomputes the conservation identity purely
// from registry counters — no engine state involved — and cross-checks the
// recomputed totals against the engine's Metrics view to the tuple: both
// read the same atomic cells, so any difference is a double- or
// under-count on one of the accounting paths.
func checkRegistryConservation(t *testing.T, m *Metrics, reg *obs.Registry) {
	t.Helper()
	tot := reg.Snapshot().Totals()
	if tot.Generated != tot.Sum() {
		t.Fatalf("registry conservation violated: %v (sum %d)", tot, tot.Sum())
	}
	want := obs.Totals{
		Generated: m.Totals.Generated,
		Delivered: m.Totals.Delivered,
		Shed:      m.Totals.Shed,
		Failed:    m.Totals.Failed,
		Drained:   m.Totals.Drained,
		Abandoned: m.Totals.Abandoned,
	}
	if tot != want {
		t.Fatalf("registry totals %v != engine totals %v", tot, want)
	}
}

// checkCreditsRestored asserts the drain pass returned every capacity
// credit: no mailbox still accounts queued tuples.
func checkCreditsRestored(t *testing.T, e *engine) {
	t.Helper()
	tb := e.tab()
	for i := range tb.mailboxes {
		if q := tb.mailboxes[i].Queued(); q != 0 {
			t.Fatalf("station %d mailbox still holds %d credits after drain", i, q)
		}
	}
}

// TestChaosConservationLocal is the core chaos invariant: under injected
// slowdowns, panics (with unlimited restart), and send delays — plus
// shedding from a tight SendTimeout — every generated tuple is accounted
// for exactly, in every transport, across multiple fault schedules. The
// auto policy runs the whole chain on SPSC rings (fan-in 1 everywhere),
// so the ring's blocking, shedding, and drain paths all see the faults.
func TestChaosConservationLocal(t *testing.T) {
	for sched := 0; sched < chaosSchedules(t); sched++ {
		for _, mode := range []mailbox.Mode{mailbox.PerTuple, mailbox.Batched, mailbox.Auto} {
			t.Run(fmt.Sprintf("seed%d/%v", sched, mode), func(t *testing.T) {
				t.Parallel()
				inj := faultinject.New(faultinject.Config{
					Seed:          uint64(2000 + sched),
					SlowdownProb:  0.002,
					SlowdownFor:   100 * time.Microsecond,
					PanicProb:     0.0005,
					SendDelayProb: 0.002,
					SendDelayFor:  50 * time.Microsecond,
				})
				m, e := chaosRun(t, mode, inj, -1)
				checkConservation(t, m)
				checkRegistryConservation(t, m, e.reg)
				checkCreditsRestored(t, e)
				if m.Totals.Delivered == 0 {
					t.Fatal("nothing delivered despite unlimited restarts")
				}
				c := inj.Counts()
				if c.Slowdowns+c.Panics+c.SendDelays == 0 {
					t.Fatal("fault schedule never fired")
				}
				if c.Panics > 0 && m.Restarts == 0 {
					t.Fatalf("%d injected panics but no restarts recorded", c.Panics)
				}
			})
		}
	}
}

// TestChaosSheddingParityUnderFaults asserts the shedding semantics
// survive injected faults identically in every transport: tuples are
// shed (not lost) under pressure, and the conservation identity holds
// for each mode.
func TestChaosSheddingParityUnderFaults(t *testing.T) {
	for _, mode := range []mailbox.Mode{mailbox.PerTuple, mailbox.Batched, mailbox.Auto} {
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			inj := faultinject.New(faultinject.Config{
				Seed:          99,
				SlowdownProb:  0.05,
				SlowdownFor:   300 * time.Microsecond,
				SendDelayProb: 0.01,
				SendDelayFor:  100 * time.Microsecond,
			})
			m, e := chaosRun(t, mode, inj, -1)
			checkConservation(t, m)
			checkRegistryConservation(t, m, e.reg)
			checkCreditsRestored(t, e)
			if m.Totals.Shed == 0 {
				t.Fatal("no shedding under injected slowdowns with a tight SendTimeout")
			}
			if m.Totals.Delivered == 0 {
				t.Fatal("nothing delivered")
			}
		})
	}
}

// TestChaosDegradedStation exhausts a station's restart budget and
// verifies graceful degradation: the run completes, the degraded station
// keeps consuming (so the upstream cannot deadlock), and accounting
// stays exact with the discarded tuples counted as failed.
func TestChaosDegradedStation(t *testing.T) {
	for _, mode := range []mailbox.Mode{mailbox.PerTuple, mailbox.Batched, mailbox.Auto} {
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			inj := faultinject.New(faultinject.Config{
				Seed:      4,
				PanicProb: 0.02,
			})
			m, e := chaosRun(t, mode, inj, 2)
			checkConservation(t, m)
			checkRegistryConservation(t, m, e.reg)
			checkCreditsRestored(t, e)
			if m.Degraded == 0 {
				t.Fatal("no station degraded despite 2% panic rate and a budget of 2")
			}
			if m.Totals.Failed == 0 {
				t.Fatal("degraded stations recorded no failed tuples")
			}
			// The source must have kept producing long after the first
			// panics: a deadlocked pipeline would freeze Generated near
			// the mailbox capacity.
			if m.Totals.Generated < 1000 {
				t.Fatalf("source starved after degradation: generated only %d", m.Totals.Generated)
			}
			var restarts uint64
			for _, st := range m.Stations {
				restarts += st.Restarts
			}
			if restarts != m.Restarts {
				t.Fatalf("per-station restarts sum %d != total %d", restarts, m.Restarts)
			}
		})
	}
}

// TestChaosRecoveryDisabledByDefault pins the backward-compatible
// default: MaxRestarts 0 installs no recover, so runs without faults
// behave exactly as before (and the accounting buckets stay empty except
// for shutdown residue).
func TestChaosRecoveryDisabledByDefault(t *testing.T) {
	t.Parallel()
	m, e := chaosRun(t, mailbox.PerTuple, nil, 0)
	checkConservation(t, m)
	checkCreditsRestored(t, e)
	if m.Restarts != 0 || m.Degraded != 0 {
		t.Fatalf("restarts %d degraded %d on a fault-free run", m.Restarts, m.Degraded)
	}
	if m.Totals.Failed != 0 {
		t.Fatalf("failed %d without any panics", m.Totals.Failed)
	}
}

// countingTracer records how many times each lifecycle hook fired, plus
// the tuple totals passed through the hooks. All fields are atomic
// because tracers fire from every station goroutine concurrently.
type countingTracer struct {
	receives, received atomic.Uint64
	serves, served     atomic.Uint64
	emits, emitted     atomic.Uint64
	restarts, degrades atomic.Uint64
}

func (c *countingTracer) OnReceive(_, n int) {
	c.receives.Add(1)
	c.received.Add(uint64(n))
}
func (c *countingTracer) OnServe(_, n int, _ time.Duration) {
	c.serves.Add(1)
	c.served.Add(uint64(n))
}
func (c *countingTracer) OnEmit(_, n int) {
	c.emits.Add(1)
	c.emitted.Add(uint64(n))
}
func (c *countingTracer) OnRestart(_ int, _ uint64) { c.restarts.Add(1) }
func (c *countingTracer) OnDegrade(_ int)           { c.degrades.Add(1) }

// TestChaosTracerLifecycle runs a panicking schedule with a tracer
// attached and checks the hook contract: an installed tracer forces full
// (unsampled) service accounting, so the tuples seen via OnServe equal
// the registry's consumed total, every injected restart and degradation
// surfaces through the hooks, and emit accounting covers both admitted
// and shed tuples.
func TestChaosTracerLifecycle(t *testing.T) {
	for _, mode := range []mailbox.Mode{mailbox.PerTuple, mailbox.Batched, mailbox.Auto} {
		t.Run(mode.String(), func(t *testing.T) {
			t.Parallel()
			inj := faultinject.New(faultinject.Config{
				Seed:      21,
				PanicProb: 0.01,
			})
			topo := pipeline(t, 0.0002, 0.0002, 0.0001, 0.0001)
			p, err := plan.Build(topo, plan.Options{})
			if err != nil {
				t.Fatal(err)
			}
			reg := obs.New()
			tr := &countingTracer{}
			reg.AddTracer(tr)
			cfg := Config{
				Seed:             7,
				Duration:         500 * time.Millisecond,
				Warmup:           150 * time.Millisecond,
				MailboxSize:      32,
				NoServicePadding: true,
				SendTimeout:      200 * time.Microsecond,
				Mailbox:          mode,
				Batch:            16,
				Linger:           300 * time.Microsecond,
				MaxRestarts:      2,
				Faults:           inj,
				Obs:              reg,
			}
			cfg, err = cfg.withDefaults()
			if err != nil {
				t.Fatal(err)
			}
			e, err := newEngine(p, &Binding{}, cfg)
			if err != nil {
				t.Fatal(err)
			}
			m, err := e.execute(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			checkConservation(t, m)
			checkRegistryConservation(t, m, reg)

			// A tracer forces full (unsampled) service accounting, so
			// OnServe must cover every successfully served tuple. Tuples a
			// panic or degradation counted as consumed never reach OnServe:
			// per-tuple that is exactly the failed bucket; batched epochs
			// additionally lose the partially-processed batch in hand
			// (bounded by Batch per panicked epoch).
			var consumed, failed uint64
			for _, st := range reg.Snapshot().Stations {
				consumed += st.Consumed
				failed += st.Failed
			}
			served := tr.served.Load()
			if served > consumed {
				t.Errorf("OnServe saw %d tuples but only %d consumed (double-fire)", served, consumed)
			}
			slack := failed + uint64(cfg.Batch)*(m.Restarts+uint64(m.Degraded))
			if consumed-served > slack {
				t.Errorf("OnServe saw %d of %d consumed tuples; gap %d exceeds panic-loss bound %d (sampling not disabled?)",
					served, consumed, consumed-served, slack)
			}
			if served == 0 {
				t.Error("OnServe never fired")
			}
			if tr.receives.Load() == 0 || tr.received.Load() == 0 {
				t.Error("OnReceive never fired")
			}
			if tr.emits.Load() == 0 {
				t.Error("OnEmit never fired")
			}
			if got, want := tr.restarts.Load(), m.Restarts; got != want {
				t.Errorf("OnRestart fired %d times, engine recorded %d restarts", got, want)
			}
			if got, want := tr.degrades.Load(), m.Degraded; got != uint64(want) {
				t.Errorf("OnDegrade fired %d times, engine degraded %d stations", got, want)
			}
			if c := inj.Counts(); c.Panics == 0 {
				t.Fatal("fault schedule injected no panics")
			}
		})
	}
}

// TestChaosDistributedConnReset injects periodic connection resets with
// partial writes into a two-node pipeline and verifies the retry/backoff
// path: the run survives, traffic keeps flowing after resets, and the
// conservation identity holds with network in-flight loss accounted.
func TestChaosDistributedConnReset(t *testing.T) {
	for sched := 0; sched < chaosSchedules(t); sched++ {
		t.Run(fmt.Sprintf("seed%d", sched), func(t *testing.T) {
			topo := pipeline(t, 0.0005, 0.0002, 0.0001)
			p, err := plan.Build(topo, plan.Options{})
			if err != nil {
				t.Fatal(err)
			}
			inj := faultinject.New(faultinject.Config{
				Seed:              uint64(3000 + sched),
				ResetEveryWrites:  40,
				PartialWriteBytes: 7,
			})
			reg := obs.New()
			cfg := DistributedConfig{
				Config: Config{
					Seed:        uint64(sched),
					Duration:    1200 * time.Millisecond,
					Warmup:      300 * time.Millisecond,
					MailboxSize: 32,
					MaxRestarts: -1,
					Faults:      inj,
					Obs:         reg,
				},
				Nodes:        2,
				RetryBackoff: time.Millisecond,
				SendDeadline: 2 * time.Second,
			}
			m, err := RunDistributed(context.Background(), p, nil, cfg)
			if err != nil {
				t.Fatal(err)
			}
			checkConservation(t, m)
			// Registry recomputation must survive the network accounting
			// too: cross-node edges contribute their in-flight loss from
			// the edge frame counters.
			checkRegistryConservation(t, m, reg)
			c := inj.Counts()
			if c.ConnResets == 0 {
				t.Fatal("no connection resets fired")
			}
			// Retry/backoff must keep the pipeline alive across resets:
			// the source paces at 2000/s, so a dead edge would strand
			// nearly everything.
			if m.Totals.Delivered < m.Totals.Generated/2 {
				t.Fatalf("pipeline did not survive resets: delivered %d of %d (resets %d)",
					m.Totals.Delivered, m.Totals.Generated, c.ConnResets)
			}
		})
	}
}

// TestChaosDistributedLegacyStickyError pins the opt-out: a negative
// SendDeadline restores the historical behaviour where the first write
// error kills the edge — and the accounting still balances.
func TestChaosDistributedLegacyStickyError(t *testing.T) {
	topo := pipeline(t, 0.0005, 0.0002, 0.0001)
	p, err := plan.Build(topo, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	inj := faultinject.New(faultinject.Config{
		Seed:             11,
		ResetEveryWrites: 25,
	})
	reg := obs.New()
	cfg := DistributedConfig{
		Config: Config{
			Seed:        11,
			Duration:    900 * time.Millisecond,
			Warmup:      200 * time.Millisecond,
			MailboxSize: 32,
			Faults:      inj,
			Obs:         reg,
		},
		Nodes:        2,
		SendDeadline: -1,
	}
	m, err := RunDistributed(context.Background(), p, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	checkConservation(t, m)
	checkRegistryConservation(t, m, reg)
	if inj.Counts().ConnResets == 0 {
		t.Fatal("no reset fired")
	}
}
