package runtime

import (
	"context"
	"strings"
	"testing"
	"time"

	"spinstreams/internal/core"
	"spinstreams/internal/lint"
	"spinstreams/internal/obs"
	"spinstreams/internal/operators"
)

// slowOp is a unit-gain stateless operator whose real cost exceeds
// whatever the model declares: the drift injection for autotune tests.
type slowOp struct{ d time.Duration }

func (s *slowOp) Name() string           { return "slow" }
func (s *slowOp) Meta() operators.Meta   { return operators.Meta{Kind: core.KindStateless} }
func (s *slowOp) Clone() operators.Operator { return &slowOp{d: s.d} }

func (s *slowOp) Process(in operators.Tuple, emit operators.Emit) {
	time.Sleep(s.d)
	emit(in)
}

// TestControllerAutotuneEndToEnd closes the paper's autonomic loop live:
// a deployment whose hot operator runs 3x slower than declared is
// measured, re-optimized, and rescaled in-flight — no restart — after
// which the measured throughput recovers and the applied delta's
// provenance trace replays cleanly under the linter.
func TestControllerAutotuneEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second autonomic loop")
	}
	model := core.NewTopology()
	src := model.MustAddOperator(core.Operator{Name: "source", Kind: core.KindSource, ServiceTime: 2e-3})
	hot := model.MustAddOperator(core.Operator{Name: "hot", Kind: core.KindStateless, ServiceTime: 1e-3})
	sink := model.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.2e-3})
	model.MustConnect(src, hot, 1)
	model.MustConnect(hot, sink, 1)

	// Declared: 1ms (rho 0.5 at the 500/s source). Deployed: 3ms.
	binding := &Binding{Ops: map[core.OpID]operators.Operator{
		hot: &slowOp{d: 3 * time.Millisecond},
	}}
	reg := obs.New()
	cfg := Config{
		Seed:                31,
		Warmup:              300 * time.Millisecond,
		ReconfigStallBudget: 5 * time.Second,
		Obs:                 reg,
	}
	c, err := StartTopology(model, nil, binding, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Autotune(context.Background(), AutotuneOptions{
		Interval: 700 * time.Millisecond,
		Rounds:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied() < 1 {
		t.Fatalf("autotune applied no delta in %d rounds", len(rep.Rounds))
	}
	var applied *AutotuneRound
	for i := range rep.Rounds {
		if rep.Rounds[i].Apply != nil {
			applied = &rep.Rounds[i]
			break
		}
	}
	if applied.Delta.Empty() || applied.Apply.Rescaled < 1 {
		t.Errorf("applied round: delta %s, report %+v", applied.Delta, applied.Apply)
	}
	if applied.Drift == nil || applied.Drift.MeasuredProfiles == nil {
		t.Error("applied round carries no drift profiles")
	}
	if got := c.Replicas()[hot]; got < 2 {
		t.Errorf("hot replicas = %d, want >= 2 after autotune", got)
	}

	// The replica change is visible in the live observability snapshot.
	snap := reg.Snapshot()
	found := false
	for _, ss := range snap.Stations {
		if strings.HasPrefix(ss.Name, "hot/replica") {
			found = true
			break
		}
	}
	if !found {
		t.Error("no hot/replica* station in the obs snapshot")
	}

	// The live_apply trace replays cleanly against the deployed topology.
	if applied.Trace == nil {
		t.Fatal("applied round has no live trace")
	}
	traceJSON, err := applied.Trace.JSON()
	if err != nil {
		t.Fatal(err)
	}
	lrep := lint.Run(model, lint.Config{Trace: traceJSON})
	if lrep.HasErrors() {
		t.Errorf("live trace replay has errors:\n%+v", lrep.Diagnostics)
	}

	// Stop measures the final (post-apply) window: throughput must have
	// recovered past the single-instance ceiling of 1/3ms.
	m := mustStop(t, c)
	if m.Throughput < 370 {
		t.Errorf("post-apply throughput = %.1f/s, want > 370/s (pre-apply ceiling ~333/s)", m.Throughput)
	}
	checkConserved(t, m)
}

// TestAutotuneEstimatorProbeFree closes the same autonomic loop with
// Config.Estimator: the drift that drives each round comes from
// occupancy-sampled service-rate estimates, and no timed probe may run —
// after the loop, every station's Service histogram must be empty (the
// probe path is the only writer). The misdeclared hot operator must still
// be caught and rescaled in-flight, proving the estimator's profiles are
// strong enough to drive reoptimization, not just to report drift.
func TestAutotuneEstimatorProbeFree(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second autonomic loop")
	}
	model := core.NewTopology()
	src := model.MustAddOperator(core.Operator{Name: "source", Kind: core.KindSource, ServiceTime: 2e-3})
	hot := model.MustAddOperator(core.Operator{Name: "hot", Kind: core.KindStateless, ServiceTime: 1e-3})
	sink := model.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.2e-3})
	model.MustConnect(src, hot, 1)
	model.MustConnect(hot, sink, 1)

	binding := &Binding{Ops: map[core.OpID]operators.Operator{
		hot: &slowOp{d: 3 * time.Millisecond},
	}}
	reg := obs.New()
	cfg := Config{
		Seed:                37,
		Warmup:              300 * time.Millisecond,
		ReconfigStallBudget: 5 * time.Second,
		Obs:                 reg,
		Estimator:           true,
	}
	c, err := StartTopology(model, nil, binding, cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Autotune(context.Background(), AutotuneOptions{
		Interval: 700 * time.Millisecond,
		Rounds:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Applied() < 1 {
		t.Fatalf("estimator-driven autotune applied no delta in %d rounds", len(rep.Rounds))
	}
	for i := range rep.Rounds {
		if dr := rep.Rounds[i].Drift; dr == nil || dr.ProfileConfidence == nil {
			t.Errorf("round %d: drift report missing estimator confidences (probe path used?)", i)
		}
	}
	if got := c.Replicas()[hot]; got < 2 {
		t.Errorf("hot replicas = %d, want >= 2 after estimator-driven autotune", got)
	}
	m := mustStop(t, c)
	// Zero timed probes: the Service histograms have exactly one writer —
	// the probe sampler — and Config.Estimator must have disabled it.
	for _, ss := range reg.Snapshot().Stations {
		if ss.Service.Count != 0 {
			t.Errorf("station %s recorded %d timed probes; estimator mode must be probe-free", ss.Name, ss.Service.Count)
		}
	}
	if m.Throughput < 370 {
		t.Errorf("post-apply throughput = %.1f/s, want > 370/s (pre-apply ceiling ~333/s)", m.Throughput)
	}
	checkConserved(t, m)
}
