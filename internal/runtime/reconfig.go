package runtime

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"spinstreams/internal/core"
	"spinstreams/internal/faultinject"
	"spinstreams/internal/keypart"
	"spinstreams/internal/mailbox"
	"spinstreams/internal/obs"
	"spinstreams/internal/operators"
	"spinstreams/internal/opt"
	"spinstreams/internal/plan"
	"spinstreams/internal/stats"
)

// Controller owns a live run of a plan: unlike Run, which executes for a
// fixed duration, Start returns immediately and the caller decides when
// to measure, reconfigure (ApplyDelta) and stop. It is the runtime side
// of the paper's autonomic loop: obs.Drift feeds opt.Reoptimize, whose
// DeltaPlan the controller applies in-flight — replica rescales with
// keyed-state migration, and fusion undos that split a fused station
// back into its members — without restarting the topology.
//
// All reconfiguration entry points are serialized on an internal mutex;
// Stop wins over a concurrent ApplyDelta. A controller serves one run.
type Controller struct {
	e *engine
	// topo is the deployed logical topology (nil when started from a raw
	// plan; ApplyDelta then refuses, since DeltaPlans name operators).
	topo *core.Topology
	// part recomputes key->replica assignments on rescale; matches the
	// planner's default partitioner.
	part keypart.Partitioner

	mu sync.Mutex
	// replicas is the current replication degree per logical operator,
	// updated by every applied change (obs.Drift needs it).
	replicas []int
	stopped  bool
	// stalls records the fence duration of every applied change, for the
	// reconfiguration-stall benchmark.
	stalls []time.Duration
	// demoted accumulates the SPSC->MPSC inbox demotions of the ApplyDelta
	// in progress (ApplyReport.Demoted); guarded by mu like the rest.
	demoted int
	seeds   *stats.RNG
	// snap1/winStart bracket the current measurement window.
	snap1    counterSnapshot
	winStart time.Time
}

// ApplyReport summarizes one ApplyDelta.
type ApplyReport struct {
	// Epoch is the routing-table epoch after the apply (0 = initial
	// deployment, incremented once per applied change).
	Epoch uint64
	// Rescaled and Unfused count the applied changes.
	Rescaled int
	Unfused  int
	// Demoted counts inboxes the applied changes moved off the SPSC ring
	// onto the batched MPSC path because the new plan makes them
	// multi-producer (per-edge transport policies only). Demotion happens
	// inside the change's fence with an exact drain, so no tuple is lost;
	// rings are never promoted back mid-run.
	Demoted int
	// Stall is the longest pause fence any single change held: the time
	// from the first pause request to the release of the last affected
	// station. Unaffected stations kept running throughout.
	Stall time.Duration
	// MigratedKeys counts partitioning keys whose state moved between
	// operator instances.
	MigratedKeys int
}

// Start deploys the plan and returns a running controller. The engine
// runs until Stop; measurement windows are bracketed by beginWindow (Start
// opens one) and read by Stop.
func Start(p *plan.Plan, binding *Binding, cfg Config) (*Controller, error) {
	if p == nil || len(p.Stations) == 0 {
		return nil, errors.New("runtime: empty plan")
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if binding == nil {
		binding = &Binding{}
	}
	if err := binding.validate(p); err != nil {
		return nil, err
	}
	e, err := newEngine(p, binding, cfg)
	if err != nil {
		return nil, err
	}
	c := &Controller{
		e:     e,
		part:  keypart.Greedy{},
		seeds: stats.NewRNG(cfg.Seed + 0x1eaf),
	}
	e.startStations()
	c.beginWindow()
	return c, nil
}

// StartTopology plans the topology with the given replication degrees,
// binds the operator implementations, and starts a controller that can
// resolve DeltaPlan operator names against the topology.
func StartTopology(t *core.Topology, replicas []int, binding *Binding, cfg Config) (*Controller, error) {
	p, err := plan.Build(t, plan.Options{Replicas: replicas})
	if err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	c, err := Start(p, binding, cfg)
	if err != nil {
		return nil, err
	}
	c.topo = t
	c.replicas = make([]int, t.Len())
	for i := range c.replicas {
		c.replicas[i] = 1
		if replicas != nil && i < len(replicas) && replicas[i] > 1 {
			c.replicas[i] = replicas[i]
		}
		// The planner may have consolidated a keyed fission.
		if ws := p.WorkersOf[i]; len(ws) > 0 {
			c.replicas[i] = len(ws)
		}
	}
	return c, nil
}

// Registry exposes the run's observability registry (drift reports,
// snapshots).
func (c *Controller) Registry() *obs.Registry { return c.e.reg }

// Epoch returns the current routing-table epoch.
func (c *Controller) Epoch() uint64 { return c.e.tab().epoch }

// Replicas returns the current per-operator replication degrees.
func (c *Controller) Replicas() []int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]int(nil), c.replicas...)
}

// Stalls returns the pause-fence duration of every change applied so far.
func (c *Controller) Stalls() []time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]time.Duration(nil), c.stalls...)
}

// beginWindow opens a fresh measurement window; Stop (and each Autotune
// round) closes it.
func (c *Controller) beginWindow() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.snap1 = c.e.snapshotAll()
	c.e.reg.MarkWindowBegin()
	c.winStart = time.Now()
}

// Stop shuts the engine down and reports metrics. Rates cover the window
// opened by the last beginWindow; Totals are lifetime.
func (c *Controller) Stop() (*Metrics, error) {
	c.mu.Lock()
	if c.stopped {
		c.mu.Unlock()
		return nil, errors.New("runtime: controller already stopped")
	}
	c.stopped = true
	snap1, winStart := c.snap1, c.winStart
	c.mu.Unlock()
	snap2 := c.e.snapshotAll()
	c.e.reg.MarkWindowEnd()
	window := time.Since(winStart).Seconds()
	c.e.shutdown()
	return c.e.buildMetrics(window, snap1, snap2), nil
}

// ApplyDelta applies a re-optimization delta to the running topology:
// each replica change and fusion undo is applied as one epoch fence —
// pause the affected stations, rebuild the routing tables copy-on-write,
// migrate keyed state, swap, release. Tuples keep flowing through every
// unaffected station. Changes apply sequentially in deterministic
// (name-sorted) order; on error the already-applied prefix stays applied
// and the failing change's fence is fully released, so the topology is
// always left running.
func (c *Controller) ApplyDelta(d *opt.DeltaPlan) (*ApplyReport, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.stopped || c.e.isShutdown() {
		return nil, errors.New("runtime: controller is stopped")
	}
	rep := &ApplyReport{Epoch: c.e.tab().epoch}
	c.demoted = 0
	defer func() { rep.Demoted = c.demoted }()
	if d == nil || d.Empty() {
		return rep, nil
	}
	if c.e.cfg.PreserveOrder {
		return rep, errors.New("runtime: live reconfiguration is incompatible with PreserveOrder (collector reorder state cannot be migrated)")
	}
	if c.topo == nil {
		return rep, errors.New("runtime: ApplyDelta resolves operator names against the logical topology; start the controller with StartTopology")
	}
	changes := append([]opt.ReplicaChange(nil), d.Changes...)
	sort.Slice(changes, func(i, j int) bool { return changes[i].Operator < changes[j].Operator })
	undos := append([]opt.FusionUndo(nil), d.Undo...)
	sort.Slice(undos, func(i, j int) bool { return undos[i].Operator < undos[j].Operator })
	for _, ch := range changes {
		stall, moved, err := c.applyRescale(ch)
		c.noteStall(rep, stall)
		rep.MigratedKeys += moved
		if err != nil {
			rep.Epoch = c.e.tab().epoch
			return rep, fmt.Errorf("runtime: rescale %q: %w", ch.Operator, err)
		}
		rep.Rescaled++
	}
	for _, u := range undos {
		stall, err := c.applyUnfuse(u)
		c.noteStall(rep, stall)
		if err != nil {
			rep.Epoch = c.e.tab().epoch
			return rep, fmt.Errorf("runtime: unfuse %q: %w", u.Operator, err)
		}
		rep.Unfused++
	}
	rep.Epoch = c.e.tab().epoch
	return rep, nil
}

// noteDemoted records a change's inbox demotions for the apply report.
func (c *Controller) noteDemoted(ids []plan.StationID) { c.demoted += len(ids) }

func (c *Controller) noteStall(rep *ApplyReport, stall time.Duration) {
	if stall <= 0 {
		return
	}
	c.stalls = append(c.stalls, stall)
	if stall > rep.Stall {
		rep.Stall = stall
	}
}

// fence tracks the stations one change paused, so success releases them
// into the new epoch and failure resumes them unchanged.
type fence struct {
	c        *Controller
	deadline time.Time
	started  time.Time
	paused   []*stationCtl
	// pausedID remembers which stations this fence holds, so a second
	// pause request for the same station (e.g. a demotion target that is
	// also in the change's producer set) is detected instead of
	// re-arming the handshake under a parked station.
	pausedID map[plan.StationID]*stationCtl
}

func (c *Controller) newFence() *fence {
	return &fence{
		c:        c,
		deadline: time.Now().Add(c.e.cfg.ReconfigStallBudget),
		pausedID: make(map[plan.StationID]*stationCtl),
	}
}

// holds reports whether the fence already paused the station.
func (f *fence) holds(id plan.StationID) bool {
	_, ok := f.pausedID[id]
	return ok
}

// pause requests a pause (draining the inbox first when drain is set) and
// waits for the station to park, bounded by the stall budget.
func (f *fence) pause(id plan.StationID, drain bool) (*stationCtl, error) {
	if f.started.IsZero() {
		f.started = time.Now()
	}
	if ctl, ok := f.pausedID[id]; ok {
		// Already parked under this fence; re-arming requestPause would
		// strand the station on stale handshake channels.
		return ctl, nil
	}
	ctl := f.c.e.ctl(id)
	if ctl == nil {
		return nil, fmt.Errorf("station %d was never spawned", id)
	}
	f.pausedID[id] = ctl
	ctl.requestPause(drain)
	f.paused = append(f.paused, ctl)
	timer := time.NewTimer(time.Until(f.deadline))
	defer timer.Stop()
	select {
	case <-ctl.parkedCh():
		return ctl, nil
	case <-timer.C:
		return nil, fmt.Errorf("stall budget %v exceeded pausing station %d", f.c.e.cfg.ReconfigStallBudget, id)
	case <-f.c.e.done:
		return nil, errors.New("engine stopped during reconfiguration")
	}
}

// abort resumes every paused station unchanged (stations that never made
// it to the park still see the release when they get there).
func (f *fence) abort() {
	for _, ctl := range f.paused {
		ctl.resume(false)
	}
}

// stall is the fence duration so far.
func (f *fence) stall() time.Duration {
	if f.started.IsZero() {
		return 0
	}
	return time.Since(f.started)
}

// topoIndex returns each station's position in a topological order of the
// physical plan, or an error when the plan is cyclic (the sequential
// pause protocol relies on sends only flowing forward).
func topoIndex(p *plan.Plan) ([]int, error) {
	n := len(p.Stations)
	indeg := make([]int, n)
	for i := range p.Stations {
		for _, e := range p.Stations[i].Out {
			indeg[e.To]++
		}
	}
	order := make([]int, n)
	var queue []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			queue = append(queue, i)
		}
	}
	seen := 0
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		order[v] = seen
		seen++
		for _, e := range p.Stations[v].Out {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				queue = append(queue, int(e.To))
			}
		}
	}
	if seen != n {
		return nil, errors.New("physical plan is cyclic; live reconfiguration needs an acyclic plan")
	}
	return order, nil
}

// producersOf lists the live stations with an edge into target, sorted
// topologically. Pausing them in that order cannot deadlock: a producer
// only ever blocks sending to stations later in the order, which are
// still running when it is paused.
func producersOf(tb *tables, target plan.StationID, order []int) []plan.StationID {
	var prods []plan.StationID
	for i := range tb.p.Stations {
		if tb.retired[i] {
			continue
		}
		for _, e := range tb.p.Stations[i].Out {
			if e.To == target {
				prods = append(prods, plan.StationID(i))
				break
			}
		}
	}
	sort.Slice(prods, func(a, b int) bool { return order[prods[a]] < order[prods[b]] })
	return prods
}

// cloneTables copies the routing tables for a new epoch. Slices are
// copied one level deep; stations the change does not touch keep their
// mailbox, sender-row and counter-cell pointers, which is what makes
// stale reads by unaffected stations safe.
func cloneTables(tb *tables) *tables {
	return &tables{
		epoch:     tb.epoch + 1,
		p:         clonePlan(tb.p),
		mailboxes: append([]*mailbox.Mailbox[operators.Tuple](nil), tb.mailboxes...),
		senders:   append([][]*mailbox.Sender[operators.Tuple](nil), tb.senders...),
		st:        append([]*obs.Station(nil), tb.st...),
		stFaults:  append([]*faultinject.StationFaults(nil), tb.stFaults...),
		retired:   append([]bool(nil), tb.retired...),
	}
}

// clonePlan deep-copies the plan's station list and operator maps; Out
// slices are copied per station so edge retargeting never mutates the
// plan a running station may still be reading.
func clonePlan(p *plan.Plan) *plan.Plan {
	q := &plan.Plan{
		Stations:    append([]plan.Station(nil), p.Stations...),
		SourceID:    p.SourceID,
		WorkersOf:   make([][]plan.StationID, len(p.WorkersOf)),
		CollectorOf: append([]plan.StationID(nil), p.CollectorOf...),
		EntryOf:     append([]plan.StationID(nil), p.EntryOf...),
	}
	for i := range q.Stations {
		q.Stations[i].Out = append([]plan.Edge(nil), p.Stations[i].Out...)
	}
	for i := range p.WorkersOf {
		q.WorkersOf[i] = append([]plan.StationID(nil), p.WorkersOf[i]...)
	}
	return q
}

// addStation appends a station to the new epoch's plan and returns its
// id. The fence is the capability proving the change's stations are
// paused — routing-table growth must not race running senders.
func addStation(f *fence, nt *tables, s plan.Station) plan.StationID {
	_ = f // capability only: callers must hold the change's fence
	s.ID = plan.StationID(len(nt.p.Stations))
	nt.p.Stations = append(nt.p.Stations, s)
	return s.ID
}

// demoteTransports re-derives the per-inbox transports for the new epoch
// and swaps every proven-SPSC inbox the rewritten plan makes
// multi-producer onto the batched MPSC path, inside the change's fence.
// The demotion target's producers are all inside the fence already: its
// old single producer is being retired (or is paused), and any new
// producers are added stations that have not spawned yet — so a
// drain-pause of the target empties the ring exactly, and the swap
// conserves every admitted tuple. It runs before finishTables so the
// added producers' sender rows bind to the replacement mailbox; it
// returns the demoted targets, the live pre-existing producers whose
// sender rows must be rebuilt against the new mailbox, and the
// retiring-masked fan-in vector finishTables sizes added inboxes with.
// Rings are never promoted back (a rescale to degree 1 keeps the batched
// path), which keeps every fence local to the operator being changed.
func (c *Controller) demoteTransports(f *fence, nt *tables, retiring []plan.StationID) (demoted, rewired []plan.StationID, fanIn []int, err error) {
	// nt.retired does not yet cover the added stations (finishTables
	// appends their slots later); extend the mask to the rewritten plan.
	retired := make([]bool, len(nt.p.Stations))
	copy(retired, nt.retired)
	for _, id := range retiring {
		retired[id] = true
	}
	fanIn = liveFanIn(nt.p, retired)
	for i := range nt.mailboxes {
		if retired[i] || nt.mailboxes[i].Mode() != mailbox.SPSC || fanIn[i] <= 1 {
			continue
		}
		target := plan.StationID(i)
		if f.holds(target) {
			// The target parked without draining; swapping its inbox now
			// would strand whatever the ring still holds. No current
			// change shape pauses a demotion target itself — refuse and
			// leave the old epoch running rather than lose tuples.
			return demoted, rewired, fanIn, fmt.Errorf("station %d needs a transport demotion but is already fenced", i)
		}
		// Fence any live pre-existing producer first (added stations have
		// no lifecycle handle yet and cannot send before the swap), so
		// nothing publishes into the old ring after the drain.
		for j := range nt.p.Stations {
			if retired[j] || c.e.ctl(plan.StationID(j)) == nil || f.holds(plan.StationID(j)) {
				continue
			}
			for _, e := range nt.p.Stations[j].Out {
				if e.To == target {
					if _, err := f.pause(plan.StationID(j), false); err != nil {
						return demoted, rewired, fanIn, err
					}
					rewired = append(rewired, plan.StationID(j))
					break
				}
			}
		}
		if _, err := f.pause(target, true); err != nil {
			return demoted, rewired, fanIn, err
		}
		m, err := demoteInbox(c.e.cfg, fanIn[i])
		if err != nil {
			return demoted, rewired, fanIn, err
		}
		nt.mailboxes[i] = m
		demoted = append(demoted, target)
	}
	return demoted, rewired, fanIn, nil
}

// finishTables allocates the runtime state behind stations added to the
// new epoch — mailboxes, observability cells, fault streams — and builds
// sender rows for the added stations plus every station whose output
// edges the change rewired. fanIn is the retiring-masked producer count
// per station (from demoteTransports), which resolves each added inbox's
// transport under a per-edge policy. The fence is the capability proving
// every producer the new sender rows touch is paused.
func (c *Controller) finishTables(f *fence, nt *tables, added, rewired []plan.StationID, fanIn []int) error {
	_ = f // capability only: callers must hold the change's fence
	cfg := c.e.cfg
	infos := make([]obs.StationInfo, len(added))
	for i, id := range added {
		st := &nt.p.Stations[id]
		infos[i] = obs.StationInfo{
			Name:   st.Name,
			Role:   st.Role.String(),
			Op:     int(st.Op),
			Source: st.Role == plan.RoleSource,
			Sink:   len(st.Out) == 0,
		}
	}
	cells := c.e.reg.Extend(infos)
	for i, id := range added {
		m, err := newInbox(cfg, fanIn[id])
		if err != nil {
			return fmt.Errorf("station %d: %w", id, err)
		}
		nt.mailboxes = append(nt.mailboxes, m)
		nt.st = append(nt.st, cells[i])
		var fs *faultinject.StationFaults
		if cfg.Faults != nil {
			fs = cfg.Faults.Station(int(id))
		}
		nt.stFaults = append(nt.stFaults, fs)
		nt.retired = append(nt.retired, false)
		nt.senders = append(nt.senders, nil)
	}
	for _, id := range append(append([]plan.StationID(nil), added...), rewired...) {
		out := nt.p.Stations[id].Out
		row := make([]*mailbox.Sender[operators.Tuple], len(out))
		for j := range out {
			row[j] = nt.mailboxes[out[j].To].NewSender(cfg.SendTimeout)
		}
		nt.senders[id] = row
	}
	return nil
}

// retireStation marks a station retired in the new epoch; its lifetime
// counters stay in every sum. The fence is the capability proving the
// station is parked and drained before it is marked off the plan.
func retireStation(f *fence, nt *tables, id plan.StationID) {
	_ = f // capability only: callers must hold the change's fence
	nt.retired[id] = true
	nt.st[id].Retired.Store(true)
}

// retargetEdges points every edge into old at new instead, returning the
// ids of the stations whose rows changed. The fence is the capability
// proving the rewired producers are paused while their edges move.
func retargetEdges(f *fence, nt *tables, old, new plan.StationID) []plan.StationID {
	_ = f // capability only: callers must hold the change's fence
	var rewired []plan.StationID
	for i := range nt.p.Stations {
		changed := false
		for j := range nt.p.Stations[i].Out {
			if nt.p.Stations[i].Out[j].To == old {
				nt.p.Stations[i].Out[j].To = new
				changed = true
			}
		}
		if changed {
			rewired = append(rewired, plan.StationID(i))
		}
	}
	return rewired
}

// applyRescale routes one replica change to the matching structural
// operation: expand a single worker into an emitter/replicas/collector
// scaffold, or rescale an existing scaffold to a new replica count. A
// scaffold is never collapsed back to a plain worker (a change to 1
// keeps emitter and collector with one replica), a documented deviation
// that keeps the fence local to one operator.
func (c *Controller) applyRescale(ch opt.ReplicaChange) (time.Duration, int, error) {
	id, ok := c.topo.Lookup(ch.Operator)
	if !ok {
		return 0, 0, fmt.Errorf("unknown operator")
	}
	op := c.topo.Op(id)
	if ch.To < 1 {
		return 0, 0, fmt.Errorf("replica degree %d out of range", ch.To)
	}
	tb := c.e.tab()
	if int(id) >= len(tb.p.EntryOf) || tb.p.EntryOf[id] < 0 {
		return 0, 0, fmt.Errorf("operator has no station in the plan")
	}
	entry := tb.p.EntryOf[id]
	if tb.p.Stations[entry].Role == plan.RoleSource {
		return 0, 0, fmt.Errorf("the source cannot be rescaled")
	}
	if ch.To > 1 && !op.Kind.CanReplicate() {
		return 0, 0, fmt.Errorf("operator kind %s cannot be replicated", op.Kind)
	}
	if tb.p.CollectorOf[id] >= 0 {
		return c.rescale(id, ch.To)
	}
	if ch.To == 1 {
		return 0, 0, nil // already a single worker
	}
	return c.expand(id, ch.To)
}

// expand replaces operator op's single worker station with an emitter +
// m replicas + collector scaffold, migrating the worker's keyed state
// onto the replicas.
func (c *Controller) expand(op core.OpID, m int) (time.Duration, int, error) {
	e := c.e
	tb := e.tab()
	w := tb.p.EntryOf[op]
	wst := tb.p.Stations[w] // copied: the old plan stays untouched
	freq := wst.KeyFreq
	keyed := len(freq) > 0
	var asg keypart.Assignment
	if keyed {
		var err error
		asg, err = c.part.Partition(freq, m)
		if err != nil {
			return 0, 0, err
		}
		m = asg.Replicas
	}
	if m < 2 {
		// Consolidation says one replica carries the whole key load.
		return 0, 0, nil
	}
	order, err := topoIndex(tb.p)
	if err != nil {
		return 0, 0, err
	}
	f := c.newFence()
	for _, pid := range producersOf(tb, w, order) {
		if _, err := f.pause(pid, false); err != nil {
			f.abort()
			return f.stall(), 0, err
		}
	}
	wctl, err := f.pause(w, true)
	if err != nil {
		f.abort()
		return f.stall(), 0, err
	}

	nt := cloneTables(tb)
	disc := plan.RoundRobin
	if keyed {
		disc = plan.KeyHash
	}
	emitter := addStation(f, nt, plan.Station{
		Name: wst.Name + "/emitter", Role: plan.RoleEmitter, Op: op,
		ServiceTime: plan.DefaultEmitterServiceTime, Gain: 1,
		Discipline: disc,
		KeyReplica: append([]int(nil), asg.Replica...),
		KeyFreq:    freq,
	})
	workers := make([]plan.StationID, m)
	for r := 0; r < m; r++ {
		workers[r] = addStation(f, nt, plan.Station{
			Name: fmt.Sprintf("%s/replica%d", wst.Name, r), Role: plan.RoleWorker, Op: op, Replica: r,
			ServiceTime: wst.ServiceTime, Gain: wst.Gain,
			InputSelectivity:  wst.InputSelectivity,
			OutputSelectivity: wst.OutputSelectivity,
			Discipline:        plan.Probabilistic,
		})
	}
	collector := addStation(f, nt, plan.Station{
		Name: wst.Name + "/collector", Role: plan.RoleCollector, Op: op,
		ServiceTime: plan.DefaultEmitterServiceTime, Gain: 1,
		InputSelectivity:  wst.InputSelectivity,
		OutputSelectivity: wst.OutputSelectivity,
		Discipline:        plan.Probabilistic,
		Out:               append([]plan.Edge(nil), wst.Out...),
	})
	est := &nt.p.Stations[emitter]
	for r, wid := range workers {
		share := 1 / float64(m)
		if keyed && r < len(asg.Load) {
			share = asg.Load[r]
		}
		est.Out = append(est.Out, plan.Edge{To: wid, Prob: share})
		nt.p.Stations[wid].Out = []plan.Edge{{To: collector, Prob: 1}}
	}
	nt.p.EntryOf[op] = emitter
	nt.p.CollectorOf[op] = collector
	nt.p.WorkersOf[op] = workers
	rewired := retargetEdges(f, nt, w, emitter)
	added := append(append([]plan.StationID{emitter}, workers...), collector)
	demoted, extraRewired, fanIn, err := c.demoteTransports(f, nt, []plan.StationID{w})
	if err != nil {
		f.abort()
		return f.stall(), 0, err
	}
	c.noteDemoted(demoted)
	rewired = append(rewired, extraRewired...)
	if err := c.finishTables(f, nt, added, rewired, fanIn); err != nil {
		f.abort()
		return f.stall(), 0, err
	}

	// Migrate the old worker's keyed state onto fresh replica instances.
	presets := make([]operators.Operator, m)
	moved := 0
	if proto, ok := e.binding.Ops[op]; ok && proto != nil {
		for r := range presets {
			presets[r] = proto.Clone()
		}
		moved = migrateKeys(f, wctl.inst, presets, asg.Replica)
	}

	retireStation(f, nt, w)
	e.live.Store(nt)
	e.spawnStation(emitter, c.seeds.Uint64(), nil, nil)
	for r, wid := range workers {
		e.spawnStation(wid, c.seeds.Uint64(), presets[r], nil)
	}
	e.spawnStation(collector, c.seeds.Uint64(), nil, nil)
	wctl.resume(true)
	for _, ctl := range f.paused {
		if ctl != wctl {
			ctl.resume(false)
		}
	}
	stall := f.stall()
	if int(op) < len(c.replicas) {
		c.replicas[op] = m
	}
	return stall, moved, nil
}

// rescale changes the replica count of an already-expanded operator from
// n to m, reusing the first min(n, m) worker stations and migrating only
// the keys whose owner changed.
func (c *Controller) rescale(op core.OpID, m int) (time.Duration, int, error) {
	e := c.e
	tb := e.tab()
	entry := tb.p.EntryOf[op]
	collector := tb.p.CollectorOf[op]
	oldWorkers := append([]plan.StationID(nil), tb.p.WorkersOf[op]...)
	n := len(oldWorkers)
	est := tb.p.Stations[entry]
	freq := est.KeyFreq
	keyed := len(freq) > 0
	var asg keypart.Assignment
	if keyed {
		var err error
		asg, err = c.part.Partition(freq, m)
		if err != nil {
			return 0, 0, err
		}
		m = asg.Replicas
	}
	if m == n {
		return 0, 0, nil
	}
	keep := n
	if m < n {
		keep = m
	}
	opName := strings.TrimSuffix(est.Name, "/emitter")

	f := c.newFence()
	// The emitter is the workers' only producer: pause it first (its own
	// producers keep running against its mailbox), then drain the workers.
	_, err := f.pause(entry, false)
	if err != nil {
		f.abort()
		return f.stall(), 0, err
	}
	wctls := make([]*stationCtl, n)
	for i, wid := range oldWorkers {
		if wctls[i], err = f.pause(wid, true); err != nil {
			f.abort()
			return f.stall(), 0, err
		}
	}

	nt := cloneTables(tb)
	newWorkers := append([]plan.StationID(nil), oldWorkers[:keep]...)
	for r := n; r < m; r++ {
		wid := addStation(f, nt, plan.Station{
			Name: fmt.Sprintf("%s/replica%d", opName, r), Role: plan.RoleWorker, Op: op, Replica: r,
			ServiceTime: est.ServiceTime, Gain: 1,
			Discipline: plan.Probabilistic,
			Out:        []plan.Edge{{To: collector, Prob: 1}},
		})
		newWorkers = append(newWorkers, wid)
	}
	if len(oldWorkers) > 0 {
		// New replicas mirror the surviving workers, not the emitter.
		src := nt.p.Stations[oldWorkers[0]]
		for _, wid := range newWorkers[keep:] {
			st := &nt.p.Stations[wid]
			st.ServiceTime = src.ServiceTime
			st.Gain = src.Gain
			st.InputSelectivity = src.InputSelectivity
			st.OutputSelectivity = src.OutputSelectivity
		}
	}
	nest := &nt.p.Stations[entry]
	nest.Out = make([]plan.Edge, len(newWorkers))
	for r, wid := range newWorkers {
		share := 1 / float64(m)
		if keyed && r < len(asg.Load) {
			share = asg.Load[r]
		}
		nest.Out[r] = plan.Edge{To: wid, Prob: share}
	}
	nest.KeyReplica = append([]int(nil), asg.Replica...)
	nt.p.WorkersOf[op] = newWorkers
	added := append([]plan.StationID(nil), newWorkers[keep:]...)
	demoted, extraRewired, fanIn, err := c.demoteTransports(f, nt, oldWorkers[keep:])
	if err != nil {
		f.abort()
		return f.stall(), 0, err
	}
	c.noteDemoted(demoted)
	rewired := append([]plan.StationID{entry}, extraRewired...)
	if err := c.finishTables(f, nt, added, rewired, fanIn); err != nil {
		f.abort()
		return f.stall(), 0, err
	}

	// Destinations per new replica slot: surviving instances in place,
	// fresh clones for added slots. Only keys whose owner changed move.
	moved := 0
	dests := make([]operators.Operator, m)
	for r := 0; r < keep; r++ {
		dests[r] = wctls[r].inst
	}
	presets := make([]operators.Operator, len(newWorkers))
	if proto, ok := e.binding.Ops[op]; ok && proto != nil {
		for r := keep; r < m; r++ {
			inst := proto.Clone()
			dests[r] = inst
			presets[r] = inst
		}
	}
	if keyed {
		for i := 0; i < n; i++ {
			src, ok := wctls[i].inst.(operators.KeyedState)
			if !ok {
				continue
			}
			for _, k := range src.StateKeys() {
				nd := asg.Replica[int(k)%len(asg.Replica)]
				if nd == i && i < keep {
					continue
				}
				dst, ok := dests[nd].(operators.KeyedState)
				if !ok {
					continue
				}
				if v := src.ExportKey(k); v != nil {
					dst.ImportKey(k, v)
					moved++
				}
			}
		}
	}

	for _, wid := range oldWorkers[keep:] {
		retireStation(f, nt, wid)
	}
	e.live.Store(nt)
	for r := keep; r < len(newWorkers); r++ {
		e.spawnStation(newWorkers[r], c.seeds.Uint64(), presets[r], nil)
	}
	// Release the whole fence — emitter, workers (retiring the dropped
	// ones), and any station demoteTransports pulled in.
	retiree := make(map[*stationCtl]bool, n-keep)
	for i := keep; i < n; i++ {
		retiree[wctls[i]] = true
	}
	for _, ctl := range f.paused {
		ctl.resume(retiree[ctl])
	}
	stall := f.stall()
	if int(op) < len(c.replicas) {
		c.replicas[op] = m
	}
	return stall, moved, nil
}

// applyUnfuse splits a fused station back into one station per member
// sub-operator, handing each member its live instance from the paused
// meta-operator so accumulated state survives the split. Known
// limitation: the per-operator departure rate of an unfused operator
// sums all member stations, so internal member-to-member traffic is
// counted (vet's drift replay tolerates this via the operator's gain).
func (c *Controller) applyUnfuse(u opt.FusionUndo) (time.Duration, error) {
	id, ok := c.topo.Lookup(u.Operator)
	if !ok {
		return 0, fmt.Errorf("unknown operator")
	}
	var meta *MetaOperator
	if c.e.binding.Meta != nil {
		meta = c.e.binding.Meta[id]
	}
	if meta == nil {
		return 0, fmt.Errorf("operator has no meta-operator binding")
	}
	tb := c.e.tab()
	if int(id) >= len(tb.p.EntryOf) || tb.p.EntryOf[id] < 0 {
		return 0, fmt.Errorf("operator has no station in the plan")
	}
	w := tb.p.EntryOf[id]
	if tb.p.CollectorOf[id] >= 0 || len(tb.p.WorkersOf[id]) != 1 || tb.p.Stations[w].Member > 0 {
		return 0, fmt.Errorf("operator is not a single fused station")
	}
	wst := tb.p.Stations[w]
	order, err := topoIndex(tb.p)
	if err != nil {
		return 0, err
	}
	f := c.newFence()
	for _, pid := range producersOf(tb, w, order) {
		if _, err := f.pause(pid, false); err != nil {
			f.abort()
			return f.stall(), err
		}
	}
	wctl, err := f.pause(w, true)
	if err != nil {
		f.abort()
		return f.stall(), err
	}
	minst := wctl.minst
	if minst == nil {
		// The station never bound (or degraded): members start fresh.
		minst = meta.instance(c.e.cfg)
	}

	nt := cloneTables(tb)
	sub := meta.Sub
	stationOf := make(map[core.OpID]plan.StationID, len(meta.Members))
	memberIDs := make([]plan.StationID, 0, len(meta.Members))
	for _, v := range meta.Members {
		sop := sub.Op(v)
		sid := addStation(f, nt, plan.Station{
			Name: wst.Name + "/" + sop.Name, Role: plan.RoleWorker, Op: id,
			Member:      int(v) + 1,
			ServiceTime: sop.ServiceTime, Gain: sop.Gain(),
			InputSelectivity:  sop.InputSelectivity,
			OutputSelectivity: sop.OutputSelectivity,
			Discipline:        plan.Probabilistic,
		})
		stationOf[v] = sid
		memberIDs = append(memberIDs, sid)
	}
	for _, v := range meta.Members {
		st := &nt.p.Stations[stationOf[v]]
		for _, se := range sub.Out(v) {
			if mid, ok := stationOf[se.To]; ok {
				st.Out = append(st.Out, plan.Edge{To: mid, Prob: se.Prob})
				continue
			}
			survivor, ok := meta.SurvivorIDs[se.To]
			if !ok {
				continue
			}
			target := nt.p.EntryOf[survivor]
			port := 0
			for _, we := range wst.Out {
				if we.To == target {
					port = we.Port
					break
				}
			}
			st.Out = append(st.Out, plan.Edge{To: target, Prob: se.Prob, Port: port})
		}
	}
	front := stationOf[meta.Front]
	nt.p.EntryOf[id] = front
	nt.p.WorkersOf[id] = memberIDs
	rewired := retargetEdges(f, nt, w, front)
	demoted, extraRewired, fanIn, err := c.demoteTransports(f, nt, []plan.StationID{w})
	if err != nil {
		f.abort()
		return f.stall(), err
	}
	c.noteDemoted(demoted)
	rewired = append(rewired, extraRewired...)
	if err := c.finishTables(f, nt, memberIDs, rewired, fanIn); err != nil {
		f.abort()
		return f.stall(), err
	}

	retireStation(f, nt, w)
	c.e.live.Store(nt)
	for _, v := range meta.Members {
		c.e.spawnStation(stationOf[v], c.seeds.Uint64(), minst.ops[v], nil)
	}
	wctl.resume(true)
	for _, ctl := range f.paused {
		if ctl != wctl {
			ctl.resume(false)
		}
	}
	return f.stall(), nil
}

// migrateKeys moves every keyed entry of src onto the destination chosen
// by the key->replica assignment; it reports how many keys moved. The
// fence is the capability proving src's station is paused and drained —
// exporting keys from a running operator would race its own updates.
// (Unit tests exercising the bare data movement may pass nil.)
func migrateKeys(f *fence, src operators.Operator, dests []operators.Operator, assignment []int) int {
	_ = f // capability only: callers must hold the change's fence
	ks, ok := src.(operators.KeyedState)
	if !ok || len(assignment) == 0 {
		return 0
	}
	moved := 0
	for _, k := range ks.StateKeys() {
		r := assignment[int(k)%len(assignment)]
		if r < 0 || r >= len(dests) {
			continue
		}
		dst, ok := dests[r].(operators.KeyedState)
		if !ok {
			continue
		}
		if v := ks.ExportKey(k); v != nil {
			dst.ImportKey(k, v)
			moved++
		}
	}
	return moved
}
