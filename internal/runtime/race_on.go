//go:build race

package runtime

// raceEnabled reports whether the race detector is active; timing-based
// tests widen their tolerances under its 5-20x slowdown.
const raceEnabled = true
