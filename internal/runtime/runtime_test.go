package runtime

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spinstreams/internal/core"
	"spinstreams/internal/mailbox"
	"spinstreams/internal/operators"
	"spinstreams/internal/plan"
	"spinstreams/internal/stats"
)

func shortCfg(seed uint64) Config {
	return Config{
		Seed:     seed,
		Duration: 1500 * time.Millisecond,
		Warmup:   500 * time.Millisecond,
	}
}

func pipeline(t *testing.T, times ...float64) *core.Topology {
	t.Helper()
	topo := core.NewTopology()
	var prev core.OpID
	for i, st := range times {
		kind := core.KindStateless
		switch i {
		case 0:
			kind = core.KindSource
		case len(times) - 1:
			kind = core.KindSink
		}
		id := topo.MustAddOperator(core.Operator{
			Name: "s" + string(rune('A'+i)), Kind: kind, ServiceTime: st,
		})
		if i > 0 {
			topo.MustConnect(prev, id, 1)
		}
		prev = id
	}
	return topo
}

func TestRunPipelineMatchesModel(t *testing.T) {
	// Source at 200/s, stages faster: predicted throughput 200/s.
	topo := pipeline(t, 0.005, 0.002, 0.001)
	a, err := core.SteadyState(topo)
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunTopology(context.Background(), topo, nil, nil, shortCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.RelErr(m.Throughput, a.Throughput()); e > 0.15 {
		t.Errorf("throughput = %v, predicted %v (err %.3f)", m.Throughput, a.Throughput(), e)
	}
}

func TestRunBackpressure(t *testing.T) {
	// Middle stage at 100/s throttles the 500/s source via blocking sends.
	topo := pipeline(t, 0.002, 0.010, 0.001)
	m, err := RunTopology(context.Background(), topo, nil, nil, shortCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.RelErr(m.Throughput, 100); e > 0.15 {
		t.Errorf("throughput = %v, want ~100 (err %.3f)", m.Throughput, e)
	}
}

func TestRunFissionSpeedup(t *testing.T) {
	topo := pipeline(t, 0.002, 0.008, 0.001)
	fis, err := core.EliminateBottlenecks(topo, core.FissionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	base, err := RunTopology(context.Background(), topo, nil, nil, shortCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := RunTopology(context.Background(), topo, fis.Analysis.Replicas, nil, shortCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	if opt.Throughput < base.Throughput*1.5 {
		t.Errorf("fission speedup too small: %v -> %v", base.Throughput, opt.Throughput)
	}
	tol := 0.2
	if raceEnabled {
		tol = 0.4 // the race detector slows pacing by 5-20x
	}
	if e := stats.RelErr(opt.Throughput, fis.Analysis.Throughput()); e > tol {
		t.Errorf("optimized throughput = %v, predicted %v", opt.Throughput, fis.Analysis.Throughput())
	}
}

func TestRunFunctionalOperators(t *testing.T) {
	// Without padding, real operators transform data end to end: a scale
	// stage doubles the first field before the sink observes it.
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 0.0005})
	sc := topo.MustAddOperator(core.Operator{Name: "scale", Kind: core.KindStateless, ServiceTime: 0.0001})
	sink := topo.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.0001})
	topo.MustConnect(src, sc, 1)
	topo.MustConnect(sc, sink, 1)

	binding := &Binding{Ops: map[core.OpID]operators.Operator{
		sc: operators.MustBuild(operators.Spec{Impl: "scale", Param: 2}),
	}}
	var mu sync.Mutex
	var seen []operators.Tuple
	cfg := shortCfg(4)
	cfg.NoServicePadding = true
	cfg.Duration = 600 * time.Millisecond
	cfg.Warmup = 100 * time.Millisecond
	cfg.OnSink = func(op core.OpID, tp operators.Tuple) {
		mu.Lock()
		if len(seen) < 100 {
			seen = append(seen, tp)
		}
		mu.Unlock()
	}
	if _, err := RunTopology(context.Background(), topo, nil, binding, cfg); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) == 0 {
		t.Fatal("sink observed no tuples")
	}
	for _, tp := range seen {
		if tp.Field(0) < 0 || tp.Field(0) >= 2 {
			t.Fatalf("scaled field = %v, want in [0, 2)", tp.Field(0))
		}
	}
}

func TestRunKeyedFission(t *testing.T) {
	freq := make([]float64, 32)
	for i := range freq {
		freq[i] = 1.0 / 32
	}
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 0.002})
	ps := topo.MustAddOperator(core.Operator{
		Name: "agg", Kind: core.KindPartitionedStateful, ServiceTime: 0.005,
		Keys: &core.KeyDistribution{Freq: freq},
	})
	sink := topo.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.0005})
	topo.MustConnect(src, ps, 1)
	topo.MustConnect(ps, sink, 1)

	fis, err := core.EliminateBottlenecks(topo, core.FissionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fis.Analysis.Replicas[ps] < 2 {
		t.Fatalf("replicas = %d, want >= 2", fis.Analysis.Replicas[ps])
	}
	m, err := RunTopology(context.Background(), topo, fis.Analysis.Replicas, nil, shortCfg(5))
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.RelErr(m.Throughput, fis.Analysis.Throughput()); e > 0.25 {
		t.Errorf("throughput = %v, predicted %v", m.Throughput, fis.Analysis.Throughput())
	}
}

func TestRunMetaOperatorPaperExample(t *testing.T) {
	// Execute the Table 1 fusion live: the meta-operator actor applies
	// the member functions along the item's path (Algorithm 4) padded to
	// their profiled service times; throughput must stay ~1000/s and the
	// fused topology must not lose items.
	topo, sub := core.PaperExampleTopology(core.PaperExampleTable1)
	fused, report, err := core.Fuse(topo, sub, "F")
	if err != nil {
		t.Fatal(err)
	}
	protos := map[core.OpID]operators.Operator{}
	for _, m := range sub {
		protos[m] = operators.MustBuild(operators.Spec{Impl: "identity"})
	}
	meta, err := NewMetaOperator(topo, report, protos, 6)
	if err != nil {
		t.Fatal(err)
	}
	binding := &Binding{Meta: map[core.OpID]*MetaOperator{report.FusedID: meta}}
	m, err := RunTopology(context.Background(), fused, nil, binding, shortCfg(6))
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.RelErr(m.Throughput, report.ThroughputAfter); e > 0.2 {
		t.Errorf("throughput = %v, predicted %v (err %.3f)", m.Throughput, report.ThroughputAfter, e)
	}
	// Flow conservation: the sink's arrival rate tracks the source rate.
	sinkID, _ := fused.Lookup("op6")
	if e := stats.RelErr(m.Arrival[sinkID], m.Throughput); e > 0.1 {
		t.Errorf("sink arrival %v vs throughput %v", m.Arrival[sinkID], m.Throughput)
	}
}

func TestNewMetaOperatorValidation(t *testing.T) {
	topo, sub := core.PaperExampleTopology(core.PaperExampleTable1)
	_, report, err := core.Fuse(topo, sub, "F")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMetaOperator(topo, nil, nil, 0); err == nil {
		t.Error("nil report accepted")
	}
	if _, err := NewMetaOperator(topo, report, map[core.OpID]operators.Operator{}, 0); err == nil {
		t.Error("missing prototypes accepted")
	}
}

func TestRunRejectsEmptyPlan(t *testing.T) {
	if _, err := Run(context.Background(), nil, nil, Config{}); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := Run(context.Background(), &plan.Plan{}, nil, Config{}); err == nil {
		t.Error("empty plan accepted")
	}
}

func TestBindingValidate(t *testing.T) {
	topo := pipeline(t, 0.001, 0.001)
	p, err := plan.Build(topo, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := &Binding{Ops: map[core.OpID]operators.Operator{
		core.OpID(99): operators.MustBuild(operators.Spec{Impl: "identity"}),
	}}
	if _, err := Run(context.Background(), p, bad, shortCfg(7)); err == nil {
		t.Error("out-of-range binding accepted")
	}
}

func TestRunContextCancel(t *testing.T) {
	topo := pipeline(t, 0.001, 0.001)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	cfg := Config{Seed: 8, Duration: 30 * time.Second, Warmup: 10 * time.Second}
	if _, err := RunTopology(ctx, topo, nil, nil, cfg); err != nil {
		t.Fatal(err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("cancellation did not shorten the run")
	}
}

func TestRunStationMetrics(t *testing.T) {
	topo := pipeline(t, 0.002, 0.004, 0.0005)
	fis, err := core.EliminateBottlenecks(topo, core.FissionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunTopology(context.Background(), topo, fis.Analysis.Replicas, nil, shortCfg(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Stations) == 0 {
		t.Fatal("no station metrics")
	}
	var emitters, workers int
	var replicaRate float64
	for _, st := range m.Stations {
		switch st.Role {
		case plan.RoleEmitter:
			emitters++
		case plan.RoleWorker:
			workers++
			if st.Name == "sB/replica0" {
				replicaRate = st.ConsumeRate
			}
		}
	}
	if emitters != 1 {
		t.Errorf("emitters = %d, want 1", emitters)
	}
	if workers < 3 {
		t.Errorf("workers = %d, want replicas visible", workers)
	}
	// Each replica of the 250/s stage handles roughly half the 500/s flow.
	if replicaRate < 150 || replicaRate > 350 {
		t.Errorf("replica rate = %v, want ~250", replicaRate)
	}
}

func TestRunBandJoinPorts(t *testing.T) {
	// A band-join fed by two distinct upstream operators must receive
	// tuples tagged with distinct ports, so matches only occur across
	// sides. With both sides carrying identical values, every right-side
	// tuple matches the left window content.
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 0.0005})
	left := topo.MustAddOperator(core.Operator{Name: "left", Kind: core.KindStateless, ServiceTime: 0.0001})
	right := topo.MustAddOperator(core.Operator{Name: "right", Kind: core.KindStateless, ServiceTime: 0.0001})
	join := topo.MustAddOperator(core.Operator{Name: "join", Kind: core.KindStateful, ServiceTime: 0.0001})
	sink := topo.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.0001})
	topo.MustConnect(src, left, 0.5)
	topo.MustConnect(src, right, 0.5)
	topo.MustConnect(left, join, 1)
	topo.MustConnect(right, join, 1)
	topo.MustConnect(join, sink, 1)

	binding := &Binding{Ops: map[core.OpID]operators.Operator{
		// Wide band: everything within the window matches.
		join: operators.MustBuild(operators.Spec{Impl: "bandjoin", WindowLen: 16, Param: 1.0}),
	}}
	var matches atomic.Uint64
	cfg := shortCfg(50)
	cfg.NoServicePadding = true
	cfg.Duration = 700 * time.Millisecond
	cfg.Warmup = 200 * time.Millisecond
	cfg.OnSink = func(op core.OpID, tp operators.Tuple) { matches.Add(1) }
	if _, err := RunTopology(context.Background(), topo, nil, binding, cfg); err != nil {
		t.Fatal(err)
	}
	if matches.Load() == 0 {
		t.Fatal("band-join produced no matches across its two ports")
	}
}

func TestRunPreserveOrder(t *testing.T) {
	// Four replicas process in parallel; with PreserveOrder the collector
	// must release items in the emitter's sequence order.
	topo := pipeline(t, 0.001, 0.004, 0.0001)
	fis, err := core.EliminateBottlenecks(topo, core.FissionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if fis.Analysis.Replicas[1] != 4 {
		t.Fatalf("replicas = %d, want 4", fis.Analysis.Replicas[1])
	}
	var mu sync.Mutex
	var seqs []uint64
	cfg := shortCfg(60)
	cfg.PreserveOrder = true
	cfg.OnSink = func(op core.OpID, tp operators.Tuple) {
		mu.Lock()
		seqs = append(seqs, tp.Seq)
		mu.Unlock()
	}
	m, err := RunTopology(context.Background(), topo, fis.Analysis.Replicas, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seqs) < 100 {
		t.Fatalf("sink observed only %d items", len(seqs))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("order violated at %d: seq %d after %d", i, seqs[i], seqs[i-1])
		}
	}
	// Order restoration must not cost throughput.
	if e := stats.RelErr(m.Throughput, 1000); e > 0.2 {
		t.Errorf("throughput = %v, want ~1000", m.Throughput)
	}
}

func TestRunPreserveOrderSkipsNonUnitGain(t *testing.T) {
	// A replicated filter (gain 0.5) must not use the reorder buffer: the
	// run completes and delivers roughly half the items.
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 0.001})
	fil := topo.MustAddOperator(core.Operator{
		Name: "fil", Kind: core.KindStateless, ServiceTime: 0.003, OutputSelectivity: 0.5,
	})
	sink := topo.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.0001})
	topo.MustConnect(src, fil, 1)
	topo.MustConnect(fil, sink, 1)
	fis, err := core.EliminateBottlenecks(topo, core.FissionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := shortCfg(61)
	cfg.PreserveOrder = true
	m, err := RunTopology(context.Background(), topo, fis.Analysis.Replicas, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.RelErr(m.Arrival[sink], 500); e > 0.25 {
		t.Errorf("sink arrival = %v, want ~500 (reorder buffer must not stall)", m.Arrival[sink])
	}
}

func TestRunSendTimeoutSheds(t *testing.T) {
	// A short send timeout turns backpressure into load shedding: the
	// source runs at full speed and the bottleneck's mailbox discards the
	// excess (Akka BoundedMailbox semantics with a small timeout).
	topo := pipeline(t, 0.001, 0.004, 0.0001)
	model, err := core.SteadyStateShedding(topo)
	if err != nil {
		t.Fatal(err)
	}
	cfg := shortCfg(70)
	cfg.SendTimeout = time.Millisecond
	cfg.MailboxSize = 8
	m, err := RunTopology(context.Background(), topo, nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Akka's timeout semantics stall the sender for up to the timeout per
	// dropped item, so the source does not reach its full 1000/s; it must
	// still run far above the 250/s the pure-backpressure steady state
	// would allow.
	if m.Throughput < 400 {
		t.Errorf("source rate = %v, want well above the backpressure 250/s", m.Throughput)
	}
	if m.Dropped[1] < 100 {
		t.Errorf("drop rate = %v, want substantial shedding", m.Dropped[1])
	}
	// The sink still receives roughly the bottleneck-limited flow.
	if e := stats.RelErr(m.Arrival[2], model.SinkRate); e > 0.3 {
		t.Errorf("sink arrival = %v, model %v", m.Arrival[2], model.SinkRate)
	}
}

func TestConfigRejectsNonsense(t *testing.T) {
	// Invalid configurations must surface as errors, not be silently
	// coerced into something runnable.
	bad := map[string]Config{
		"warmup >= duration":   {Duration: time.Second, Warmup: time.Second},
		"warmup > duration":    {Duration: time.Second, Warmup: 2 * time.Second},
		"negative duration":    {Duration: -time.Second},
		"negative warmup":      {Warmup: -time.Second},
		"negative sendtimeout": {SendTimeout: -time.Millisecond},
		"negative mailbox":     {MailboxSize: -1},
		"negative batch":       {Batch: -8},
		"negative linger":      {Linger: -time.Millisecond},

		"negative reconfig stall budget": {ReconfigStallBudget: -time.Second},
		"negative autotune interval":     {AutotuneInterval: -time.Second},
	}
	for name, cfg := range bad {
		if _, err := cfg.withDefaults(); err == nil {
			t.Errorf("%s: accepted", name)
		}
		// The same rejection must reach every public entry point.
		topo := pipeline(t, 0.001, 0.001)
		if _, err := RunTopology(context.Background(), topo, nil, nil, cfg); err == nil {
			t.Errorf("%s: RunTopology accepted", name)
		}
		p, err := plan.Build(topo, plan.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := RunDistributed(context.Background(), p, nil, DistributedConfig{Config: cfg}); err == nil {
			t.Errorf("%s: RunDistributed accepted", name)
		}
	}
	// Zero values still take defaults.
	got, err := Config{}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if got.MailboxSize != 64 || got.Duration != 3*time.Second || got.Warmup != got.Duration/4 {
		t.Errorf("defaults not applied: %+v", got)
	}
	if got.Batch == 0 || got.Linger == 0 {
		t.Errorf("batch/linger defaults not applied: %+v", got)
	}
	if got.ReconfigStallBudget != time.Second || got.AutotuneInterval != 2*time.Second {
		t.Errorf("reconfiguration defaults not applied: %+v", got)
	}
}

func batchedCfg(seed uint64) Config {
	cfg := shortCfg(seed)
	cfg.Mailbox = mailbox.Batched
	return cfg
}

func TestRunBatchedMatchesModel(t *testing.T) {
	// The batched transport must carry the same steady state as the
	// per-tuple one: tuple-accounted credits keep BAS blocking identical.
	topo := pipeline(t, 0.005, 0.002, 0.001)
	a, err := core.SteadyState(topo)
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunTopology(context.Background(), topo, nil, nil, batchedCfg(80))
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.RelErr(m.Throughput, a.Throughput()); e > 0.15 {
		t.Errorf("throughput = %v, predicted %v (err %.3f)", m.Throughput, a.Throughput(), e)
	}
}

func TestRunBatchedBackpressure(t *testing.T) {
	// A bottleneck must throttle the source through blocked batched sends
	// exactly as through blocked channel sends.
	topo := pipeline(t, 0.002, 0.010, 0.001)
	m, err := RunTopology(context.Background(), topo, nil, nil, batchedCfg(81))
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.RelErr(m.Throughput, 100); e > 0.15 {
		t.Errorf("throughput = %v, want ~100 (err %.3f)", m.Throughput, e)
	}
}

func TestRunBatchedPreserveOrder(t *testing.T) {
	// Order restoration composes with the batched transport: batches
	// preserve per-edge FIFO, so the collector's sequence logic is
	// unchanged.
	topo := pipeline(t, 0.001, 0.004, 0.0001)
	fis, err := core.EliminateBottlenecks(topo, core.FissionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var seqs []uint64
	cfg := batchedCfg(82)
	cfg.PreserveOrder = true
	cfg.OnSink = func(op core.OpID, tp operators.Tuple) {
		mu.Lock()
		seqs = append(seqs, tp.Seq)
		mu.Unlock()
	}
	if _, err := RunTopology(context.Background(), topo, fis.Analysis.Replicas, nil, cfg); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seqs) < 100 {
		t.Fatalf("sink observed only %d items", len(seqs))
	}
	for i := 1; i < len(seqs); i++ {
		if seqs[i] != seqs[i-1]+1 {
			t.Fatalf("order violated at %d: seq %d after %d", i, seqs[i], seqs[i-1])
		}
	}
}

func TestBatchedSheddingParity(t *testing.T) {
	// Regression for the drop-accounting contract: with a send timeout,
	// the batched transport sheds exactly like the per-tuple one — only
	// tuples awaiting admission are dropped, never tuples a mailbox (or a
	// partial batch) already accepted. If admitted tuples were lost, the
	// bottleneck would consume less than its measured admissions and the
	// sink would fall below the shedding model's rate.
	topo := pipeline(t, 0.001, 0.004, 0.0001)
	model, err := core.SteadyStateShedding(topo)
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []mailbox.Mode{mailbox.PerTuple, mailbox.Batched} {
		t.Run(mode.String(), func(t *testing.T) {
			cfg := shortCfg(83)
			cfg.Mailbox = mode
			cfg.SendTimeout = time.Millisecond
			cfg.MailboxSize = 8
			m, err := RunTopology(context.Background(), topo, nil, nil, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if m.Dropped[1] < 100 {
				t.Errorf("drop rate = %v, want substantial shedding", m.Dropped[1])
			}
			// Conservation after admission: everything admitted into the
			// bottleneck's mailbox is consumed (the queue residue over the
			// window is at most MailboxSize items, negligible as a rate).
			var bottleneck *StationMetrics
			for i := range m.Stations {
				if m.Stations[i].Name == "sB" {
					bottleneck = &m.Stations[i]
				}
			}
			if bottleneck == nil {
				t.Fatal("bottleneck station not found")
			}
			if e := stats.RelErr(bottleneck.ConsumeRate, m.Arrival[1]); e > 0.1 {
				t.Errorf("bottleneck consumed %v/s of %v/s admitted (err %.3f): admitted tuples were lost",
					bottleneck.ConsumeRate, m.Arrival[1], e)
			}
			// And the sink still sees the bottleneck-limited flow.
			if e := stats.RelErr(m.Arrival[2], model.SinkRate); e > 0.3 {
				t.Errorf("sink arrival = %v, model %v", m.Arrival[2], model.SinkRate)
			}
		})
	}
}
