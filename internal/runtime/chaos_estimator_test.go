package runtime

import (
	"testing"
	"time"

	"spinstreams/internal/core"
	"spinstreams/internal/faultinject"
	"spinstreams/internal/obs"
	"spinstreams/internal/opt"
)

// Estimator lifecycle across live reconfiguration: the occupancy sampler
// reads whatever epoch tables the engine currently publishes, so an
// ApplyDelta mid-window must neither leak samplers on retired stations
// (a drained replica kept in the busy pool would dilute the operator's
// pooled rate forever) nor double-count carried stations (a station
// re-observed under a new epoch with a fresh baseline would count its
// tuples twice). These tests drive the PR 6 chaos reconfiguration
// sequence with the estimator on and pin both invariants on the
// measurement that comes out.

// estPipeline is a source-saturated pipeline: the 0.5 ms source offers
// 2000 t/s into a 2 ms bottleneck, so sB and everything downstream of a
// rescale accumulates queue and stays estimable.
func estPipeline(t *testing.T) *core.Topology {
	t.Helper()
	return pipeline(t, 0.0005, 0.002, 0.001, 0.0005)
}

func estConfig(seed uint64) Config {
	return Config{
		Seed:                seed,
		MailboxSize:         32,
		MaxRestarts:         -1,
		Obs:                 obs.New(),
		Estimator:           true,
		ReconfigStallBudget: 10 * time.Second,
	}
}

// opEstimate returns the estimate for the operator with the given name.
func opEstimate(t *testing.T, topo *core.Topology, m *obs.Measurement, name string) obs.RateEstimate {
	t.Helper()
	for i := 0; i < topo.Len(); i++ {
		if topo.Op(core.OpID(i)).Name == name {
			return m.Estimates[i]
		}
	}
	t.Fatalf("no operator %q", name)
	return obs.RateEstimate{}
}

// TestEstimatorAcrossReconfig rescales sB 1->2->3->2 and sC 1->3 while
// the estimator samples, then checks the pooled estimates describe the
// final epoch: worker counts match the live replica degrees (retired
// replicas dropped from the pool), the bottleneck's pooled per-replica
// rate still reads the non-blocking service rate (replication changes
// load, not capacity), and the windowed rates stay non-negative and
// finite (a carried station double-counted across an epoch swap shows up
// as an impossible rate).
func TestEstimatorAcrossReconfig(t *testing.T) {
	topo := estPipeline(t)
	c, err := StartTopology(topo, nil, nil, estConfig(9001))
	if err != nil {
		t.Fatal(err)
	}
	est := c.Estimator()
	if est == nil {
		t.Fatal("Config.Estimator set but controller has no estimator")
	}
	steps := []opt.ReplicaChange{
		{Operator: "sB", From: 1, To: 2},
		{Operator: "sC", From: 1, To: 3},
		{Operator: "sB", From: 2, To: 3},
		{Operator: "sB", From: 3, To: 2},
	}
	for i, chg := range steps {
		time.Sleep(80 * time.Millisecond)
		if _, err := c.ApplyDelta(&opt.DeltaPlan{Changes: []opt.ReplicaChange{chg}}); err != nil {
			t.Fatalf("step %d (%s %d->%d): %v", i, chg.Operator, chg.From, chg.To, err)
		}
	}

	// Measure a window that starts after the last swap: only live
	// stations of the final epoch may contribute busy time to it.
	est.BeginWindow()
	time.Sleep(400 * time.Millisecond)
	m, err := est.Measure()
	if err != nil {
		t.Fatalf("measure: %v", err)
	}

	for name, workers := range map[string]int{"sA": 1, "sB": 2, "sC": 3, "sD": 1} {
		if got := opEstimate(t, topo, m, name).Workers; got != workers {
			t.Errorf("%s: %d pooled workers, want %d (retired replicas must leave the pool)", name, got, workers)
		}
	}
	for op, r := range m.Rates.Consumed {
		if r < 0 || r != r {
			t.Errorf("op %d: impossible windowed consumption rate %v", op, r)
		}
	}
	// sB serves at 500 t/s per replica no matter how many replicas carry
	// the load; the pooled non-blocking estimate must track that, not the
	// per-replica throughput (which halved twice during the run).
	sb := opEstimate(t, topo, m, "sB")
	if sb.Confidence < 0.5 {
		t.Fatalf("bottleneck sB not estimable after reconfig: %+v", sb)
	}
	if sb.Rate < 300 || sb.Rate > 700 {
		t.Errorf("sB pooled rate %.1f t/s, want ~500 (non-blocking, replica-invariant)", sb.Rate)
	}

	mtr := mustStop(t, c)
	checkConservation(t, mtr)
	checkRegistryConservation(t, mtr, c.e.reg)
	if got := c.Replicas()[1]; got != 2 {
		t.Errorf("sB replicas = %d, want 2 after the shrink", got)
	}
}

// TestEstimatorChaosReconfig repeats the reconfiguration sequence under
// fault injection (panics with unlimited restarts, slowdowns, send
// delays): restarts and fences must not wedge the sampler or corrupt its
// counters — the measurement after the storm still has to be finite,
// non-negative and conservation must hold exactly.
func TestEstimatorChaosReconfig(t *testing.T) {
	inj := faultinject.New(faultinject.Config{
		Seed:          9100,
		SlowdownProb:  0.002,
		SlowdownFor:   100 * time.Microsecond,
		PanicProb:     0.002,
		SendDelayProb: 0.002,
		SendDelayFor:  50 * time.Microsecond,
	})
	cfg := estConfig(9100)
	cfg.Faults = inj
	cfg.SendTimeout = 200 * time.Microsecond
	topo := estPipeline(t)
	c, err := StartTopology(topo, nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	est := c.Estimator()
	est.BeginWindow()
	for i, chg := range []opt.ReplicaChange{
		{Operator: "sB", From: 1, To: 3},
		{Operator: "sC", From: 1, To: 2},
		{Operator: "sB", From: 3, To: 1},
	} {
		time.Sleep(80 * time.Millisecond)
		if _, err := c.ApplyDelta(&opt.DeltaPlan{Changes: []opt.ReplicaChange{chg}}); err != nil {
			t.Fatalf("step %d: %v", i, err)
		}
	}
	time.Sleep(80 * time.Millisecond)
	m, err := est.Measure()
	if err != nil {
		t.Fatalf("measure: %v", err)
	}
	for op := range m.Estimates {
		e := &m.Estimates[op]
		if e.Rate < 0 || e.Rate != e.Rate {
			t.Errorf("op %d: impossible rate %v after chaos", op, e.Rate)
		}
		if e.BusySeconds < 0 || e.BusySeconds > m.Seconds*float64(e.Workers+3) {
			t.Errorf("op %d: busy time %.3fs outside the %0.3fs window", op, e.BusySeconds, m.Seconds)
		}
	}
	mtr := mustStop(t, c)
	checkConservation(t, mtr)
	checkRegistryConservation(t, mtr, c.e.reg)
	if fc := inj.Counts(); fc.Panics == 0 {
		t.Skip("fault schedule injected no panics (seed too mild for this build)")
	}
	if mtr.Restarts == 0 {
		t.Error("panics fired but no restarts recorded")
	}
}
