package runtime

import (
	"context"
	"testing"
	"time"

	"spinstreams/internal/core"
	"spinstreams/internal/mailbox"
	"spinstreams/internal/plan"
	"spinstreams/internal/stats"
)

func TestDistributedPipelineMatchesModel(t *testing.T) {
	// Source at 200/s split across 2 nodes: throughput must match the
	// local prediction despite crossing TCP.
	topo := pipeline(t, 0.005, 0.002, 0.001)
	a, err := core.SteadyState(topo)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(topo, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DistributedConfig{Config: shortCfg(40), Nodes: 2}
	// Generous run length and tolerance: with one host CPU, concurrent
	// test packages can delay the TCP reader goroutines.
	cfg.Duration = 3 * time.Second
	cfg.Warmup = 1500 * time.Millisecond
	m, err := RunDistributed(context.Background(), p, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.RelErr(m.Throughput, a.Throughput()); e > 0.25 {
		t.Errorf("throughput = %v, predicted %v (err %.3f)", m.Throughput, a.Throughput(), e)
	}
}

func TestDistributedBackpressureOverTCP(t *testing.T) {
	// The bottleneck is on a remote node: backpressure must propagate
	// back through the TCP stream and throttle the source.
	topo := pipeline(t, 0.002, 0.010, 0.001)
	p, err := plan.Build(topo, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Socket and gob buffering add a few hundred items of effective
	// mailbox capacity on cross-node edges; the warmup must outlast the
	// fill transient before the steady state is measured.
	cfg := DistributedConfig{Config: shortCfg(41), Nodes: 3}
	cfg.Duration = 5 * time.Second
	cfg.Warmup = 3500 * time.Millisecond
	cfg.MailboxSize = 8
	m, err := RunDistributed(context.Background(), p, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Bottleneck rate 100/s; allow slack for residual buffering.
	if e := stats.RelErr(m.Throughput, 100); e > 0.25 {
		t.Errorf("throughput = %v, want ~100 (err %.3f)", m.Throughput, e)
	}
}

func TestDistributedWithReplicasAcrossNodes(t *testing.T) {
	topo := pipeline(t, 0.002, 0.008, 0.001)
	fis, err := core.EliminateBottlenecks(topo, core.FissionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(topo, plan.Options{Replicas: fis.Analysis.Replicas})
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunDistributed(context.Background(), p, nil, DistributedConfig{
		Config: shortCfg(42),
		Nodes:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.RelErr(m.Throughput, fis.Analysis.Throughput()); e > 0.25 {
		t.Errorf("throughput = %v, predicted %v", m.Throughput, fis.Analysis.Throughput())
	}
}

func TestDistributedSingleNodeEqualsLocal(t *testing.T) {
	// One node means no cross-node edges at all; behaves like Run.
	topo := pipeline(t, 0.002, 0.001)
	p, err := plan.Build(topo, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := RunDistributed(context.Background(), p, nil, DistributedConfig{
		Config: shortCfg(43),
		Nodes:  1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.RelErr(m.Throughput, 500); e > 0.15 {
		t.Errorf("throughput = %v, want ~500", m.Throughput)
	}
}

func TestDistributedValidation(t *testing.T) {
	topo := pipeline(t, 0.001, 0.001)
	p, err := plan.Build(topo, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunDistributed(context.Background(), nil, nil, DistributedConfig{}); err == nil {
		t.Error("nil plan accepted")
	}
	if _, err := RunDistributed(context.Background(), p, nil, DistributedConfig{
		Config: shortCfg(44), Assignment: []int{0},
	}); err == nil {
		t.Error("short assignment accepted")
	}
	if _, err := RunDistributed(context.Background(), p, nil, DistributedConfig{
		Config: shortCfg(44), Nodes: 2, Assignment: []int{0, 5},
	}); err == nil {
		t.Error("out-of-range node accepted")
	}
}

func TestAssignByOperator(t *testing.T) {
	topo := pipeline(t, 0.001, 0.004, 0.001)
	fis, err := core.EliminateBottlenecks(topo, core.FissionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(topo, plan.Options{Replicas: fis.Analysis.Replicas})
	if err != nil {
		t.Fatal(err)
	}
	asg := AssignByOperator(p, 2)
	if len(asg) != len(p.Stations) {
		t.Fatalf("assignment length %d, want %d", len(asg), len(p.Stations))
	}
	// All stations of a logical operator share a node.
	byOp := map[core.OpID]int{}
	for i, st := range p.Stations {
		if prev, ok := byOp[st.Op]; ok && prev != asg[i] {
			t.Errorf("operator %d split across nodes", st.Op)
		}
		byOp[st.Op] = asg[i]
	}
}

func TestDistributedBatchedPipeline(t *testing.T) {
	// The batched transport frames whole micro-batches per TCP write;
	// throughput must still match the model and network backpressure must
	// survive (run under -race in CI to exercise the concurrent batch
	// path).
	topo := pipeline(t, 0.005, 0.002, 0.001)
	a, err := core.SteadyState(topo)
	if err != nil {
		t.Fatal(err)
	}
	p, err := plan.Build(topo, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DistributedConfig{Config: shortCfg(42), Nodes: 2}
	cfg.Mailbox = mailbox.Batched
	cfg.Duration = 3 * time.Second
	cfg.Warmup = 1500 * time.Millisecond
	m, err := RunDistributed(context.Background(), p, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if e := stats.RelErr(m.Throughput, a.Throughput()); e > 0.25 {
		t.Errorf("throughput = %v, predicted %v (err %.3f)", m.Throughput, a.Throughput(), e)
	}
}
