package runtime

import (
	"testing"
	"time"

	"spinstreams/internal/core"
	"spinstreams/internal/mailbox"
	"spinstreams/internal/operators"
	"spinstreams/internal/opt"
	"spinstreams/internal/plan"
)

func TestResolveInboxMode(t *testing.T) {
	cases := []struct {
		global    mailbox.Mode
		producers int
		want      mailbox.Mode
	}{
		{mailbox.PerTuple, 1, mailbox.PerTuple},
		{mailbox.PerTuple, 3, mailbox.PerTuple},
		{mailbox.Batched, 1, mailbox.Batched},
		{mailbox.Batched, 3, mailbox.Batched},
		{mailbox.SPSC, 0, mailbox.SPSC},
		{mailbox.SPSC, 1, mailbox.SPSC},
		{mailbox.SPSC, 2, mailbox.Batched},
		{mailbox.Auto, 1, mailbox.SPSC},
		{mailbox.Auto, 2, mailbox.Batched},
	}
	for _, c := range cases {
		if got := resolveInboxMode(c.global, c.producers); got != c.want {
			t.Errorf("resolveInboxMode(%v, %d) = %v, want %v", c.global, c.producers, got, c.want)
		}
	}
}

// diamond builds src -> f1 -> {a, b} -> sink: the two branch operators
// share the sink, so the sink's inbox has two producers unless {f1, a, b}
// are fused into one station.
func diamond(t *testing.T) (*core.Topology, []core.OpID) {
	t.Helper()
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 0.002})
	f1 := topo.MustAddOperator(core.Operator{Name: "f1", Kind: core.KindStateless, ServiceTime: 0.0005})
	a := topo.MustAddOperator(core.Operator{Name: "a", Kind: core.KindStateless, ServiceTime: 0.0005})
	b := topo.MustAddOperator(core.Operator{Name: "b", Kind: core.KindStateless, ServiceTime: 0.0005})
	sink := topo.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.0005})
	topo.MustConnect(src, f1, 1)
	topo.MustConnect(f1, a, 0.5)
	topo.MustConnect(f1, b, 0.5)
	topo.MustConnect(a, sink, 1)
	topo.MustConnect(b, sink, 1)
	return topo, []core.OpID{f1, a, b}
}

func TestLiveFanIn(t *testing.T) {
	topo, sub := diamond(t)
	p, err := plan.Build(topo, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sinkID, _ := topo.Lookup("sink")
	sink := p.EntryOf[sinkID]

	in := liveFanIn(p, nil)
	if in[sink] != 2 {
		t.Errorf("sink fan-in = %d, want 2 (branches a and b)", in[sink])
	}
	// The nil-mask count must agree with the static analysis everywhere.
	for i, producers := range plan.FanIn(p) {
		if in[i] != len(producers) {
			t.Errorf("station %d: liveFanIn %d, plan.FanIn %d", i, in[i], len(producers))
		}
	}

	// Retiring branch b removes one of the sink's producers.
	bID := sub[2]
	retired := make([]bool, len(p.Stations))
	retired[p.EntryOf[bID]] = true
	if in := liveFanIn(p, retired); in[sink] != 1 {
		t.Errorf("sink fan-in with b retired = %d, want 1", in[sink])
	}
}

// TestAutoTransportBinding checks that an Auto-policy deployment binds
// every inbox to the transport the analyzer proves: the replicated
// operator's collector (three worker producers) runs batched MPSC, every
// single-producer inbox runs the SPSC ring.
func TestAutoTransportBinding(t *testing.T) {
	topo := pipeline(t, 0.002, 0.004, 0.001)
	cfg := ctlCfg(90)
	cfg.Mailbox = mailbox.Auto
	c, err := StartTopology(topo, []int{1, 3, 1}, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb := c.e.tab()
	ts := plan.Transports(tb.p)
	var spsc, batched int
	for i := range tb.mailboxes {
		want := mailbox.Batched
		if ts[i] == plan.TransportSPSC {
			want = mailbox.SPSC
		}
		if got := tb.mailboxes[i].Mode(); got != want {
			t.Errorf("station %q: inbox mode %v, analyzer proves %v", tb.p.Stations[i].Name, got, want)
		}
		switch ts[i] {
		case plan.TransportSPSC:
			spsc++
		default:
			batched++
		}
	}
	if batched != 1 {
		t.Errorf("batched inboxes = %d, want exactly 1 (the collector)", batched)
	}
	if spsc != len(tb.mailboxes)-1 {
		t.Errorf("spsc inboxes = %d, want %d", spsc, len(tb.mailboxes)-1)
	}
	mid, _ := topo.Lookup("sB")
	coll := tb.p.CollectorOf[mid]
	if got := tb.mailboxes[coll].Mode(); got != mailbox.Batched {
		t.Errorf("collector inbox mode = %v, want Batched", got)
	}
	time.Sleep(100 * time.Millisecond)
	checkConserved(t, mustStop(t, c))
}

// TestControllerUnfuseDemotesSPSC pins the SPSC -> MPSC demotion across
// a live reconfiguration. Fusing the diamond's {f1, a, b} makes the
// fused station the sink's only producer, so under the Auto policy the
// sink entry binds to the SPSC ring. Unfusing re-creates the two branch
// edges into the sink — fan-in 2 — and ApplyDelta must swap the ring for
// a batched mailbox inside the fence without losing a tuple.
func TestControllerUnfuseDemotesSPSC(t *testing.T) {
	topo, sub := diamond(t)
	fused, report, err := core.Fuse(topo, sub, "F")
	if err != nil {
		t.Fatal(err)
	}
	protos := map[core.OpID]operators.Operator{}
	for _, m := range sub {
		protos[m] = operators.MustBuild(operators.Spec{Impl: "identity"})
	}
	meta, err := NewMetaOperator(topo, report, protos, 24)
	if err != nil {
		t.Fatal(err)
	}
	binding := &Binding{Meta: map[core.OpID]*MetaOperator{report.FusedID: meta}}
	cfg := ctlCfg(91)
	cfg.Mailbox = mailbox.Auto
	c, err := StartTopology(fused, nil, binding, cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb := c.e.tab()
	sinkID, _ := fused.Lookup("sink")
	sinkStation := tb.p.EntryOf[sinkID]
	if got := tb.mailboxes[sinkStation].Mode(); got != mailbox.SPSC {
		t.Fatalf("sink inbox mode before unfuse = %v, want SPSC (fused F is the sole producer)", got)
	}

	time.Sleep(100 * time.Millisecond)
	rep, err := c.ApplyDelta(&opt.DeltaPlan{Undo: []opt.FusionUndo{{Operator: "F", Rho: 1.5}}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unfused != 1 || rep.Demoted != 1 {
		t.Errorf("report = %+v, want Unfused 1 and Demoted 1", rep)
	}

	tb = c.e.tab()
	if got := tb.mailboxes[sinkStation].Mode(); got != mailbox.Batched {
		t.Errorf("sink inbox mode after unfuse = %v, want Batched (two branch producers)", got)
	}
	// The member stations are fresh single-producer inboxes: still SPSC.
	for _, v := range meta.Members {
		name := "F/" + meta.Sub.Op(v).Name
		found := false
		for i := range tb.p.Stations {
			if tb.p.Stations[i].Name != name {
				continue
			}
			found = true
			if got := tb.mailboxes[i].Mode(); got != mailbox.SPSC {
				t.Errorf("member %q inbox mode = %v, want SPSC", name, got)
			}
		}
		if !found {
			t.Errorf("member station %q missing after unfuse", name)
		}
	}

	// The demotion must keep the stream flowing through the swapped inbox.
	before := tb.st[sinkStation].Arrived.Load()
	time.Sleep(150 * time.Millisecond)
	after := tb.st[sinkStation].Arrived.Load()
	if after <= before {
		t.Errorf("sink arrivals stalled after demotion: %d -> %d", before, after)
	}
	checkConserved(t, mustStop(t, c))
}
