package runtime

import (
	"strings"
	"testing"
	"time"

	"spinstreams/internal/core"
	"spinstreams/internal/operators"
	"spinstreams/internal/opt"
	"spinstreams/internal/plan"
)

// ctlCfg is a controller-friendly config: no padding (functional speed)
// and a generous stall budget so slow CI machines don't abort fences.
func ctlCfg(seed uint64) Config {
	return Config{
		Seed:                seed,
		NoServicePadding:    true,
		ReconfigStallBudget: 5 * time.Second,
	}
}

func mustStop(t *testing.T, c *Controller) *Metrics {
	t.Helper()
	m, err := c.Stop()
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func checkConserved(t *testing.T, m *Metrics) {
	t.Helper()
	got := m.Totals.Delivered + m.Totals.Shed + m.Totals.Failed + m.Totals.Drained + m.Totals.Abandoned
	if m.Totals.Generated != got {
		t.Errorf("conservation violated: generated %d, accounted %d (%+v)", m.Totals.Generated, got, m.Totals)
	}
}

func TestControllerExpandStateless(t *testing.T) {
	topo := pipeline(t, 0.002, 0.004, 0.001)
	c, err := StartTopology(topo, nil, nil, ctlCfg(21))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	rep, err := c.ApplyDelta(&opt.DeltaPlan{Changes: []opt.ReplicaChange{{Operator: "sB", From: 1, To: 3}}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rescaled != 1 || rep.Epoch != 1 {
		t.Errorf("report = %+v, want Rescaled 1 at epoch 1", rep)
	}
	if rep.Stall <= 0 {
		t.Errorf("expected a positive fence stall, got %v", rep.Stall)
	}
	mid, _ := topo.Lookup("sB")
	if got := c.Replicas()[mid]; got != 3 {
		t.Errorf("replicas = %d, want 3", got)
	}
	time.Sleep(150 * time.Millisecond)
	m := mustStop(t, c)

	byName := map[string]StationMetrics{}
	for _, sm := range m.Stations {
		byName[sm.Name] = sm
	}
	for _, want := range []string{"sB/emitter", "sB/replica0", "sB/replica2", "sB/collector"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("station %q missing from metrics", want)
		}
	}
	if !byName["sB"].Retired {
		t.Error("old worker sB not marked retired")
	}
	var replicated uint64
	for name, sm := range byName {
		if strings.HasPrefix(name, "sB/replica") {
			replicated += sm.Consumed
		}
	}
	if replicated == 0 {
		t.Error("no tuples flowed through the new replicas")
	}
	checkConserved(t, m)
}

func TestControllerKeyedRescaleMigratesState(t *testing.T) {
	const numKeys = 8
	freq := make([]float64, numKeys)
	for i := range freq {
		freq[i] = 1.0 / numKeys
	}
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 0.001})
	agg := topo.MustAddOperator(core.Operator{
		Name: "agg", Kind: core.KindPartitionedStateful, ServiceTime: 0.002,
		Keys: &core.KeyDistribution{Freq: freq},
	})
	sink := topo.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.0005})
	topo.MustConnect(src, agg, 1)
	topo.MustConnect(agg, sink, 1)

	binding := &Binding{Ops: map[core.OpID]operators.Operator{
		agg: operators.MustBuild(operators.Spec{Impl: "wsum", WindowLen: 64, Slide: 32, NumKeys: numKeys}),
	}}
	cfg := ctlCfg(22)
	gen, err := operators.NewGenerator(operators.GeneratorConfig{Seed: 23, NumKeys: numKeys})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Generator = gen
	c, err := StartTopology(topo, nil, binding, cfg)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(150 * time.Millisecond) // accumulate keyed window state

	rep, err := c.ApplyDelta(&opt.DeltaPlan{Changes: []opt.ReplicaChange{{Operator: "agg", From: 1, To: 2}}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rescaled != 1 {
		t.Fatalf("expand report = %+v", rep)
	}
	if rep.MigratedKeys == 0 {
		t.Error("expand migrated no keys despite accumulated state")
	}
	time.Sleep(100 * time.Millisecond)

	rep, err = c.ApplyDelta(&opt.DeltaPlan{Changes: []opt.ReplicaChange{{Operator: "agg", From: 2, To: 4}}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Epoch != 2 {
		t.Errorf("epoch = %d, want 2", rep.Epoch)
	}
	time.Sleep(100 * time.Millisecond)
	mustStop(t, c)

	// Every surviving replica instance must only hold keys the final
	// assignment routes to it — state followed the keys.
	tb := c.e.tab()
	entry := tb.p.EntryOf[agg]
	kr := tb.p.Stations[entry].KeyReplica
	if len(kr) != numKeys {
		t.Fatalf("emitter KeyReplica has %d entries, want %d", len(kr), numKeys)
	}
	workers := tb.p.WorkersOf[agg]
	if len(workers) < 2 {
		t.Fatalf("workers = %v, want >= 2 replicas", workers)
	}
	held := 0
	for slot, wid := range workers {
		ctl := c.e.ctl(wid)
		if ctl == nil || ctl.inst == nil {
			continue
		}
		ks, ok := ctl.inst.(operators.KeyedState)
		if !ok {
			t.Fatalf("replica %d instance does not expose keyed state", slot)
		}
		for _, k := range ks.StateKeys() {
			held++
			if owner := kr[int(k)%numKeys]; owner != slot {
				t.Errorf("key %d held by replica slot %d, assignment says %d", k, slot, owner)
			}
		}
	}
	if held == 0 {
		t.Error("no keyed state survived the rescales")
	}
}

func TestControllerUnfuseLive(t *testing.T) {
	topo, sub := core.PaperExampleTopology(core.PaperExampleTable1)
	fused, report, err := core.Fuse(topo, sub, "F")
	if err != nil {
		t.Fatal(err)
	}
	protos := map[core.OpID]operators.Operator{}
	for _, m := range sub {
		protos[m] = operators.MustBuild(operators.Spec{Impl: "identity"})
	}
	meta, err := NewMetaOperator(topo, report, protos, 24)
	if err != nil {
		t.Fatal(err)
	}
	binding := &Binding{Meta: map[core.OpID]*MetaOperator{report.FusedID: meta}}
	c, err := StartTopology(fused, nil, binding, ctlCfg(25))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(100 * time.Millisecond)
	rep, err := c.ApplyDelta(&opt.DeltaPlan{Undo: []opt.FusionUndo{{Operator: "F", Rho: 1.5}}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Unfused != 1 || rep.Epoch != 1 {
		t.Errorf("report = %+v, want Unfused 1 at epoch 1", rep)
	}

	// The split must keep the stream flowing: the sink's arrivals advance
	// after the fence released.
	tb := c.e.tab()
	sinkID, _ := fused.Lookup("op6")
	sinkStation := tb.p.EntryOf[sinkID]
	before := tb.st[sinkStation].Arrived.Load()
	time.Sleep(150 * time.Millisecond)
	after := tb.st[sinkStation].Arrived.Load()
	if after <= before {
		t.Errorf("sink arrivals stalled after unfuse: %d -> %d", before, after)
	}
	m := mustStop(t, c)
	names := map[string]bool{}
	for _, sm := range m.Stations {
		names[sm.Name] = sm.Retired
	}
	for _, v := range meta.Members {
		want := "F/" + meta.Sub.Op(v).Name
		if _, ok := names[want]; !ok {
			t.Errorf("member station %q missing", want)
		}
	}
	if retired, ok := names["F"]; !ok || !retired {
		t.Error("fused station F not retired")
	}
}

func TestApplyDeltaRefusals(t *testing.T) {
	topo := pipeline(t, 0.002, 0.004, 0.001)
	delta := func(op string, to int) *opt.DeltaPlan {
		return &opt.DeltaPlan{Changes: []opt.ReplicaChange{{Operator: op, From: 1, To: to}}}
	}

	// A raw-plan controller has no topology to resolve names against.
	p, err := plan.Build(topo, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Start(p, nil, ctlCfg(26))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ApplyDelta(delta("sB", 2)); err == nil {
		t.Error("raw-plan controller accepted a delta")
	}
	mustStop(t, c)

	// PreserveOrder and live reconfiguration are mutually exclusive.
	cfg := ctlCfg(27)
	cfg.PreserveOrder = true
	c, err = StartTopology(topo, nil, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ApplyDelta(delta("sB", 2)); err == nil {
		t.Error("PreserveOrder controller accepted a delta")
	}
	mustStop(t, c)

	c, err = StartTopology(topo, nil, nil, ctlCfg(28))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]*opt.DeltaPlan{
		"unknown operator": delta("nope", 2),
		"scale source":     delta("sA", 2),
		"degree zero":      delta("sB", 0),
	}
	for name, d := range cases {
		if _, err := c.ApplyDelta(d); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// An empty delta is a no-op, not an error, and refusals leave the
	// topology running.
	if rep, err := c.ApplyDelta(&opt.DeltaPlan{}); err != nil || rep.Epoch != 0 {
		t.Errorf("empty delta: rep=%+v err=%v", rep, err)
	}
	time.Sleep(50 * time.Millisecond)
	m := mustStop(t, c)
	if m.Totals.Generated == 0 {
		t.Error("topology generated nothing")
	}
	if _, err := c.ApplyDelta(delta("sB", 2)); err == nil {
		t.Error("stopped controller accepted a delta")
	}
	if _, err := c.Stop(); err == nil {
		t.Error("double Stop accepted")
	}

	// Stateful operators cannot be replicated.
	topo2 := core.NewTopology()
	src := topo2.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 0.001})
	st := topo2.MustAddOperator(core.Operator{Name: "state", Kind: core.KindStateful, ServiceTime: 0.001})
	sink := topo2.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.001})
	topo2.MustConnect(src, st, 1)
	topo2.MustConnect(st, sink, 1)
	c, err = StartTopology(topo2, nil, nil, ctlCfg(29))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ApplyDelta(delta("state", 2)); err == nil {
		t.Error("stateful operator rescale accepted")
	}
	mustStop(t, c)
}

func TestMigrateKeys(t *testing.T) {
	build := func() operators.Operator {
		return operators.MustBuild(operators.Spec{Impl: "wsum", WindowLen: 4, Slide: 4, NumKeys: 4})
	}
	src := build()
	for k := uint64(0); k < 4; k++ {
		src.Process(operators.Tuple{Key: k, Fields: []float64{1}}, func(operators.Tuple) {})
	}
	dests := []operators.Operator{build(), build()}
	assignment := []int{0, 1, 0, 1}
	moved := migrateKeys(nil, src, dests, assignment)
	if moved != 4 {
		t.Fatalf("moved %d keys, want 4", moved)
	}
	if got := src.(operators.KeyedState).StateKeys(); len(got) != 0 {
		t.Errorf("source still holds keys %v", got)
	}
	for slot, d := range dests {
		for _, k := range d.(operators.KeyedState).StateKeys() {
			if assignment[k] != slot {
				t.Errorf("key %d landed on slot %d, want %d", k, slot, assignment[k])
			}
		}
	}
	// Non-keyed operators migrate nothing.
	if n := migrateKeys(nil, operators.MustBuild(operators.Spec{Impl: "identity"}), dests, assignment); n != 0 {
		t.Errorf("identity migrated %d keys", n)
	}
}
