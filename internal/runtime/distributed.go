package runtime

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"spinstreams/internal/mailbox"
	"spinstreams/internal/operators"
	"spinstreams/internal/plan"
	"spinstreams/internal/stats"
)

// DistributedConfig tunes a distributed execution: the plan's stations are
// partitioned across nodes that exchange stream items over TCP — the
// analog of running the generated application on Akka's Remoting layer,
// which the paper names as its first future-work direction (Section 7).
//
// Backpressure keeps the Blocking-After-Service semantics across the
// network: a receiving node pushes incoming items into the target
// station's bounded mailbox with a blocking send, so when the mailbox
// fills the TCP reader stalls, the socket's flow-control window closes,
// and the remote sender's write blocks — exactly the stall the cost model
// assumes, with the socket buffers acting as a small amount of extra
// mailbox capacity (kept tight via SetReadBuffer/SetWriteBuffer).
type DistributedConfig struct {
	Config
	// Nodes is the number of nodes to partition the plan across
	// (default 2). Nodes run in-process but exchange items over real
	// loopback TCP connections.
	Nodes int
	// Assignment maps each station to its home node; nil assigns whole
	// logical operators round-robin so replicas stay with their emitter
	// and collector.
	Assignment []int
}

// AssignByOperator maps stations to nodes so that all stations of a
// logical operator (emitter, replicas, collector) are co-located, with
// operators distributed round-robin.
func AssignByOperator(p *plan.Plan, nodes int) []int {
	if nodes < 1 {
		nodes = 1
	}
	asg := make([]int, len(p.Stations))
	for i, st := range p.Stations {
		asg[i] = int(st.Op) % nodes
	}
	return asg
}

// wire is the gob frame exchanged between nodes. In batched mode a frame
// carries a whole micro-batch, amortizing the gob and syscall cost of a
// TCP write over many tuples; in per-tuple mode every frame holds one.
type wire struct {
	Tuples []operators.Tuple
}

// handshake opens a cross-node stream for one physical edge.
type handshake struct {
	From   plan.StationID
	Target plan.StationID
}

// RunDistributed executes the plan partitioned across TCP-connected nodes
// and reports the same metrics as Run. Meta-operators and bound operators
// execute on the station's home node.
func RunDistributed(ctx context.Context, p *plan.Plan, binding *Binding, cfg DistributedConfig) (*Metrics, error) {
	if p == nil || len(p.Stations) == 0 {
		return nil, errors.New("runtime: empty plan")
	}
	base, err := cfg.Config.withDefaults()
	if err != nil {
		return nil, err
	}
	cfg.Config = base
	if cfg.Nodes <= 0 {
		cfg.Nodes = 2
	}
	if cfg.Assignment == nil {
		cfg.Assignment = AssignByOperator(p, cfg.Nodes)
	}
	if len(cfg.Assignment) != len(p.Stations) {
		return nil, fmt.Errorf("runtime: assignment covers %d stations, plan has %d",
			len(cfg.Assignment), len(p.Stations))
	}
	for sid, node := range cfg.Assignment {
		if node < 0 || node >= cfg.Nodes {
			return nil, fmt.Errorf("runtime: station %d assigned to invalid node %d", sid, node)
		}
	}
	if binding == nil {
		binding = &Binding{}
	}
	if err := binding.validate(p); err != nil {
		return nil, err
	}

	eng, err := newEngine(p, binding, cfg.Config)
	if err != nil {
		return nil, err
	}
	d := &distEngine{
		engine:     eng,
		assignment: cfg.Assignment,
		nodes:      cfg.Nodes,
	}
	d.sendFn = d.send
	d.sendManyFn = d.sendMany

	if err := d.connect(); err != nil {
		d.shutdownTransport()
		return nil, err
	}
	metrics, err := d.run(ctx)
	d.shutdownTransport()
	return metrics, err
}

// distEngine extends the local engine with the TCP data plane.
type distEngine struct {
	*engine
	assignment []int
	nodes      int

	mu        sync.Mutex
	listeners []net.Listener
	conns     []net.Conn
	// senders maps station ID -> target station ID -> remote outbox.
	senders map[plan.StationID]map[plan.StationID]*remoteOutbox
	readers sync.WaitGroup
}

// remoteOutbox frames tuples onto one cross-node TCP stream. With batch 1
// every tuple is its own frame (the per-tuple transport); with a larger
// batch it accumulates a micro-batch, bounded by the linger so low-rate
// edges keep flowing. The blocking gob write is what propagates
// backpressure to the sending station.
type remoteOutbox struct {
	mu     sync.Mutex
	conn   net.Conn
	enc    *gob.Encoder
	batch  int
	linger time.Duration
	buf    []operators.Tuple
	timer  *time.Timer
	err    error
}

// send enqueues one tuple, flushing when the frame is full. The first
// write error — including one hit by a linger flush — is sticky, so the
// sending station observes it on its next send and shuts down.
func (o *remoteOutbox) send(t operators.Tuple) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.err != nil {
		return o.err
	}
	o.buf = append(o.buf, t)
	if len(o.buf) >= o.batch {
		return o.flushLocked()
	}
	if len(o.buf) == 1 {
		o.armTimerLocked()
	}
	return nil
}

func (o *remoteOutbox) flushLocked() error {
	if len(o.buf) == 0 {
		return o.err
	}
	err := o.enc.Encode(wire{Tuples: o.buf})
	o.buf = o.buf[:0]
	if err != nil && o.err == nil {
		o.err = err
	}
	if o.timer != nil {
		o.timer.Stop()
	}
	return o.err
}

func (o *remoteOutbox) flush() {
	o.mu.Lock()
	_ = o.flushLocked()
	o.mu.Unlock()
}

func (o *remoteOutbox) armTimerLocked() {
	if o.timer == nil {
		o.timer = time.AfterFunc(o.linger, o.flush)
		return
	}
	o.timer.Reset(o.linger)
}

// connect builds listeners per node and dials one stream per cross-node
// physical edge.
func (d *distEngine) connect() error {
	addrs := make([]string, d.nodes)
	for n := 0; n < d.nodes; n++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("runtime: node %d listen: %w", n, err)
		}
		d.listeners = append(d.listeners, ln)
		addrs[n] = ln.Addr().String()
		go d.acceptLoop(ln)
	}

	d.senders = make(map[plan.StationID]map[plan.StationID]*remoteOutbox)
	for i := range d.p.Stations {
		from := plan.StationID(i)
		for _, e := range d.p.Stations[i].Out {
			if d.assignment[from] == d.assignment[e.To] {
				continue
			}
			conn, err := net.Dial("tcp", addrs[d.assignment[e.To]])
			if err != nil {
				return fmt.Errorf("runtime: dial edge %d->%d: %w", from, e.To, err)
			}
			tuneConn(conn)
			d.mu.Lock()
			d.conns = append(d.conns, conn)
			d.mu.Unlock()
			enc := gob.NewEncoder(conn)
			if err := enc.Encode(handshake{From: from, Target: e.To}); err != nil {
				return fmt.Errorf("runtime: handshake edge %d->%d: %w", from, e.To, err)
			}
			if d.senders[from] == nil {
				d.senders[from] = make(map[plan.StationID]*remoteOutbox)
			}
			batch := 1
			if d.cfg.Mailbox == mailbox.Batched {
				batch = d.cfg.Batch
			}
			// The same encoder carries the handshake and the payload so
			// the byte stream stays aligned with the receiver's single
			// decoder.
			d.senders[from][e.To] = &remoteOutbox{
				conn: conn, enc: enc, batch: batch, linger: d.cfg.Linger,
			}
		}
	}
	return nil
}

// tuneConn shrinks the socket buffers so network buffering adds as little
// effective mailbox capacity as possible.
func tuneConn(conn net.Conn) {
	if tcp, ok := conn.(*net.TCPConn); ok {
		_ = tcp.SetReadBuffer(4 << 10)
		_ = tcp.SetWriteBuffer(4 << 10)
		_ = tcp.SetNoDelay(true)
	}
}

// acceptLoop receives cross-node streams for one node.
func (d *distEngine) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		tuneConn(conn)
		d.mu.Lock()
		d.conns = append(d.conns, conn)
		d.mu.Unlock()
		d.readers.Add(1)
		go d.readLoop(conn)
	}
}

// readLoop decodes items from one incoming stream and pushes them into the
// target mailbox. The blocking push is what propagates backpressure onto
// the TCP stream.
func (d *distEngine) readLoop(conn net.Conn) {
	defer d.readers.Done()
	dec := gob.NewDecoder(conn)
	var hs handshake
	if err := dec.Decode(&hs); err != nil {
		return
	}
	if int(hs.Target) < 0 || int(hs.Target) >= len(d.mailboxes) {
		return
	}
	// The reader gets its own producer handle on the target mailbox; a
	// blocking admission (no timeout) is what stalls the TCP stream and
	// propagates backpressure to the remote writer.
	snd := d.mailboxes[hs.Target].NewSender(0)
	for {
		var w wire
		if err := dec.Decode(&w); err != nil {
			return
		}
		for _, t := range w.Tuples {
			if snd.Send(t, d.done) != mailbox.Sent {
				return
			}
			// Both ends of the edge are counted here: emission is only
			// final once the item clears the network and lands in the
			// target mailbox (TCP windowing makes sender-side counts
			// bursty).
			d.arrived[hs.Target].Add(1)
			if int(hs.From) >= 0 && int(hs.From) < len(d.emitted) {
				d.emitted[hs.From].Add(1)
			}
		}
	}
}

// shutdownTransport closes the data plane.
func (d *distEngine) shutdownTransport() {
	d.mu.Lock()
	for _, ln := range d.listeners {
		ln.Close()
	}
	for _, c := range d.conns {
		c.Close()
	}
	d.mu.Unlock()
	d.readers.Wait()
}

// send routes one item: cross-node edges go over TCP, everything else
// through the in-process mailbox.
func (d *distEngine) send(from plan.StationID, edgeIdx int, edge *plan.Edge, t operators.Tuple) bool {
	if outs := d.senders[from]; outs != nil {
		if ob := outs[edge.To]; ob != nil {
			select {
			case <-d.done:
				return false
			default:
			}
			if err := ob.send(t); err != nil {
				return false
			}
			// Emission and arrival are counted on the receiving node's
			// read loop, once the item clears the network.
			return true
		}
	}
	return d.localSend(from, edgeIdx, edge, t)
}

// sendMany routes one output batch: cross-node edges append to the
// remote outbox (which frames whole micro-batches per TCP write),
// everything else goes through the in-process bulk path.
func (d *distEngine) sendMany(from plan.StationID, edgeIdx int, edge *plan.Edge, ts []operators.Tuple) bool {
	if outs := d.senders[from]; outs != nil {
		if ob := outs[edge.To]; ob != nil {
			select {
			case <-d.done:
				return false
			default:
			}
			for _, t := range ts {
				if err := ob.send(t); err != nil {
					return false
				}
			}
			return true
		}
	}
	return d.localSendMany(from, edgeIdx, edge, ts)
}

// run starts the actors and measures, mirroring the local engine but
// unblocking TCP writers on shutdown.
func (d *distEngine) run(ctx context.Context) (*Metrics, error) {
	rng := stats.NewRNG(d.cfg.Seed + 0x517c)
	for i := range d.p.Stations {
		st := &d.p.Stations[i]
		d.wg.Add(1)
		go d.runStation(st, rng.Uint64())
	}
	sleepCtx(ctx, d.cfg.Warmup)
	snap1 := d.snapshotAll()
	start := time.Now()
	sleepCtx(ctx, d.cfg.Duration-d.cfg.Warmup)
	snap2 := d.snapshotAll()
	window := time.Since(start).Seconds()
	close(d.done)
	// Waking actors stalled inside TCP writes: expire every connection.
	d.mu.Lock()
	for _, c := range d.conns {
		_ = c.SetDeadline(time.Now())
	}
	d.mu.Unlock()
	d.wg.Wait()
	return d.buildMetrics(window, snap1, snap2), nil
}
