package runtime

import (
	"context"
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"spinstreams/internal/mailbox"
	"spinstreams/internal/obs"
	"spinstreams/internal/operators"
	"spinstreams/internal/plan"
	"spinstreams/internal/stats"
)

var (
	// errShutdown aborts a remote send when the run is stopping.
	errShutdown = errors.New("runtime: shutdown")
	// errEdgeDown is the sticky legacy-mode error after a fatal write.
	errEdgeDown = errors.New("runtime: remote edge down")
)

// maxRetryBackoff caps the exponential redial backoff.
const maxRetryBackoff = 100 * time.Millisecond

// DistributedConfig tunes a distributed execution: the plan's stations are
// partitioned across nodes that exchange stream items over TCP — the
// analog of running the generated application on Akka's Remoting layer,
// which the paper names as its first future-work direction (Section 7).
//
// Backpressure keeps the Blocking-After-Service semantics across the
// network: a receiving node pushes incoming items into the target
// station's bounded mailbox with a blocking send, so when the mailbox
// fills the TCP reader stalls, the socket's flow-control window closes,
// and the remote sender's write blocks — exactly the stall the cost model
// assumes, with the socket buffers acting as a small amount of extra
// mailbox capacity (kept tight via SetReadBuffer/SetWriteBuffer).
type DistributedConfig struct {
	Config
	// Nodes is the number of nodes to partition the plan across
	// (default 2). Nodes run in-process but exchange items over real
	// loopback TCP connections.
	Nodes int
	// Assignment maps each station to its home node; nil assigns whole
	// logical operators round-robin so replicas stay with their emitter
	// and collector.
	Assignment []int
	// RetryBackoff is the initial pause before redialing a cross-node
	// connection after a write error; it doubles per attempt, capped at
	// maxRetryBackoff. Zero or negative selects the default (2ms).
	RetryBackoff time.Duration
	// SendDeadline bounds the total retry time for one in-flight frame.
	// When it expires, the frame's tuples are counted as dropped at the
	// target operator and the edge keeps accepting traffic (graceful
	// degradation instead of a dead pipeline). Zero selects the default
	// (2s); negative disables retry entirely — the first write error
	// permanently kills the edge and shuts its sender down, the
	// behaviour before fault tolerance.
	SendDeadline time.Duration
}

// AssignByOperator maps stations to nodes so that all stations of a
// logical operator (emitter, replicas, collector) are co-located, with
// operators distributed round-robin.
func AssignByOperator(p *plan.Plan, nodes int) []int {
	if nodes < 1 {
		nodes = 1
	}
	asg := make([]int, len(p.Stations))
	for i, st := range p.Stations {
		asg[i] = int(st.Op) % nodes
	}
	return asg
}

// wire is the gob frame exchanged between nodes. In batched mode a frame
// carries a whole micro-batch, amortizing the gob and syscall cost of a
// TCP write over many tuples; in per-tuple mode every frame holds one.
type wire struct {
	Tuples []operators.Tuple
}

// handshake opens a cross-node stream for one physical edge.
type handshake struct {
	From   plan.StationID
	Target plan.StationID
}

// RunDistributed executes the plan partitioned across TCP-connected nodes
// and reports the same metrics as Run. Meta-operators and bound operators
// execute on the station's home node.
func RunDistributed(ctx context.Context, p *plan.Plan, binding *Binding, cfg DistributedConfig) (*Metrics, error) {
	if p == nil || len(p.Stations) == 0 {
		return nil, errors.New("runtime: empty plan")
	}
	base, err := cfg.Config.withDefaults()
	if err != nil {
		return nil, err
	}
	cfg.Config = base
	if cfg.Mailbox == mailbox.SPSC || cfg.Mailbox == mailbox.Auto {
		// The network read loops push decoded frames into local inboxes
		// alongside the plan's own stations, so the plan-derived
		// single-producer proof does not cover a partitioned deployment;
		// every inbox runs on the MPSC batched path instead.
		cfg.Mailbox = mailbox.Batched
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 2
	}
	if cfg.Assignment == nil {
		cfg.Assignment = AssignByOperator(p, cfg.Nodes)
	}
	if len(cfg.Assignment) != len(p.Stations) {
		return nil, fmt.Errorf("runtime: assignment covers %d stations, plan has %d",
			len(cfg.Assignment), len(p.Stations))
	}
	for sid, node := range cfg.Assignment {
		if node < 0 || node >= cfg.Nodes {
			return nil, fmt.Errorf("runtime: station %d assigned to invalid node %d", sid, node)
		}
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 2 * time.Millisecond
	}
	if cfg.SendDeadline == 0 {
		cfg.SendDeadline = 2 * time.Second
	}
	if binding == nil {
		binding = &Binding{}
	}
	if err := binding.validate(p); err != nil {
		return nil, err
	}

	eng, err := newEngine(p, binding, cfg.Config)
	if err != nil {
		return nil, err
	}
	d := &distEngine{
		engine:       eng,
		assignment:   cfg.Assignment,
		nodes:        cfg.Nodes,
		retryBackoff: cfg.RetryBackoff,
		sendDeadline: cfg.SendDeadline,
	}
	d.sendFn = d.send
	d.sendManyFn = d.sendMany

	if err := d.connect(); err != nil {
		d.shutdownTransport()
		return nil, err
	}
	metrics, err := d.run(ctx)
	d.shutdownTransport()
	return metrics, err
}

// distEngine extends the local engine with the TCP data plane.
type distEngine struct {
	*engine
	assignment   []int
	nodes        int
	retryBackoff time.Duration
	sendDeadline time.Duration

	mu        sync.Mutex
	listeners []net.Listener
	conns     []net.Conn
	// senders maps station ID -> target station ID -> remote outbox.
	senders map[plan.StationID]map[plan.StationID]*remoteOutbox
	readers sync.WaitGroup

	// edges maps edgeKey to the registry's per-cross-node-edge frame
	// accounting (tuples in successfully encoded / decoded frames); the
	// wrote-recvd difference after shutdown is the network in-flight
	// loss, folded into Totals.Abandoned. The map is fully built before
	// any listener accepts and is only read afterwards.
	edges map[int]*obs.Edge
}

// edgeKey identifies one cross-node physical edge in the counter maps
// and toward the fault injector.
func edgeKey(from, to plan.StationID) int { return int(from)<<16 | int(to) }

// remoteOutbox frames tuples onto one cross-node TCP stream. With batch 1
// every tuple is its own frame (the per-tuple transport); with a larger
// batch it accumulates a micro-batch, bounded by the linger so low-rate
// edges keep flowing. The blocking gob write is what propagates
// backpressure to the sending station.
//
// A write error triggers redial with exponential backoff: the failed
// frame is re-encoded on the fresh connection (a frame is only counted
// written after a successful Encode, and an injected partial write can
// never deliver a decodable frame, so the retry cannot duplicate
// delivery). Past the per-frame deadline the frame's tuples are counted
// as shed at the target and the edge stays alive. Accounting invariant:
// every error return from send means the tuple has already been counted,
// so callers just stop.
type remoteOutbox struct {
	d            *distEngine
	from, target plan.StationID
	addr         string
	batch        int
	linger       time.Duration
	// backoff is the initial redial pause; deadline bounds total retry
	// time per frame. deadline < 0 selects the legacy sticky-error mode.
	backoff  time.Duration
	deadline time.Duration
	// edge is the registry's frame accounting for this cross-node edge
	// (Wrote side written here, shared across reconnects).
	edge *obs.Edge

	mu    sync.Mutex
	conn  net.Conn
	enc   *gob.Encoder
	buf   []operators.Tuple
	timer *time.Timer
	err   error
}

// send enqueues one tuple, flushing when the frame is full.
func (o *remoteOutbox) send(t operators.Tuple) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.err != nil {
		// Dead edge (legacy mode) or shutdown: account the tuple here so
		// the caller doesn't have to.
		o.d.tab().st[o.from].Abandoned.Add(1)
		return o.err
	}
	o.buf = append(o.buf, t)
	if len(o.buf) >= o.batch {
		return o.flushLocked()
	}
	if len(o.buf) == 1 {
		o.armTimerLocked()
	}
	return nil
}

func (o *remoteOutbox) flushLocked() error {
	if o.timer != nil {
		o.timer.Stop()
	}
	if len(o.buf) == 0 {
		return o.err
	}
	if err := o.enc.Encode(wire{Tuples: o.buf}); err == nil {
		o.edge.Wrote.Add(uint64(len(o.buf)))
		o.buf = o.buf[:0]
		return nil
	}
	if o.deadline < 0 {
		// Legacy mode: the first write error permanently kills the edge
		// and its sending station; the frame never left.
		o.err = errEdgeDown
		o.d.tab().st[o.from].Abandoned.Add(uint64(len(o.buf)))
		o.buf = o.buf[:0]
		return o.err
	}
	return o.retryLocked()
}

// retryLocked redials the edge with exponential backoff until the failed
// frame is delivered, the per-frame deadline expires (the frame is
// counted as shed at the target and the edge stays alive — graceful
// degradation), or the run shuts down (the frame is abandoned).
func (o *remoteOutbox) retryLocked() error {
	start := time.Now()
	back := o.backoff
	for {
		o.conn.Close()
		if !o.d.sleepBackoff(back) {
			o.err = errShutdown
			o.d.tab().st[o.from].Abandoned.Add(uint64(len(o.buf)))
			o.buf = o.buf[:0]
			return o.err
		}
		if back < maxRetryBackoff {
			back *= 2
		}
		if time.Since(start) >= o.deadline {
			o.d.tab().st[o.from].Emitted.Add(uint64(len(o.buf)))
			o.d.tab().st[o.target].Dropped.Add(uint64(len(o.buf)))
			o.buf = o.buf[:0]
			return nil
		}
		conn, enc, err := o.d.dialEdge(o.from, o.target, o.addr)
		if err != nil {
			continue
		}
		o.conn, o.enc = conn, enc
		// The fresh encoder re-sends gob type descriptors, which is
		// exactly what the receiver's fresh decoder on the new
		// connection expects.
		if o.enc.Encode(wire{Tuples: o.buf}) != nil {
			continue
		}
		o.edge.Wrote.Add(uint64(len(o.buf)))
		o.buf = o.buf[:0]
		return nil
	}
}

// abort accounts any frame still buffered at shutdown and kills the edge.
func (o *remoteOutbox) abort() {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.timer != nil {
		o.timer.Stop()
	}
	if n := len(o.buf); n > 0 {
		o.d.tab().st[o.from].Abandoned.Add(uint64(n))
		o.buf = nil
	}
	if o.err == nil {
		o.err = errShutdown
	}
}

func (o *remoteOutbox) flush() {
	o.mu.Lock()
	_ = o.flushLocked()
	o.mu.Unlock()
}

func (o *remoteOutbox) armTimerLocked() {
	if o.timer == nil {
		o.timer = time.AfterFunc(o.linger, o.flush)
		return
	}
	o.timer.Reset(o.linger)
}

// sleepBackoff pauses between redial attempts; it returns false when the
// run shut down during the pause.
func (d *distEngine) sleepBackoff(dur time.Duration) bool {
	t := time.NewTimer(dur)
	defer t.Stop()
	select {
	case <-d.done:
		return false
	case <-t.C:
		return true
	}
}

// connect builds listeners per node and dials one stream per cross-node
// physical edge.
func (d *distEngine) connect() error {
	// The per-edge frame counters must exist before any acceptLoop can
	// hand a connection to a readLoop. The distributed engine never
	// reconfigures, so its initial tables stay current for the whole run.
	p := d.tab().p
	d.edges = make(map[int]*obs.Edge)
	for i := range p.Stations {
		for _, e := range p.Stations[i].Out {
			if d.assignment[i] != d.assignment[e.To] {
				k := edgeKey(plan.StationID(i), e.To)
				d.edges[k] = d.reg.Edge(i, int(e.To))
			}
		}
	}

	addrs := make([]string, d.nodes)
	for n := 0; n < d.nodes; n++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return fmt.Errorf("runtime: node %d listen: %w", n, err)
		}
		d.listeners = append(d.listeners, ln)
		addrs[n] = ln.Addr().String()
		go d.acceptLoop(ln)
	}

	d.senders = make(map[plan.StationID]map[plan.StationID]*remoteOutbox)
	for i := range p.Stations {
		from := plan.StationID(i)
		for _, e := range p.Stations[i].Out {
			if d.assignment[from] == d.assignment[e.To] {
				continue
			}
			addr := addrs[d.assignment[e.To]]
			conn, enc, err := d.dialEdge(from, e.To, addr)
			if err != nil {
				return fmt.Errorf("runtime: dial edge %d->%d: %w", from, e.To, err)
			}
			if d.senders[from] == nil {
				d.senders[from] = make(map[plan.StationID]*remoteOutbox)
			}
			batch := 1
			if d.cfg.Mailbox == mailbox.Batched {
				batch = d.cfg.Batch
			}
			d.senders[from][e.To] = &remoteOutbox{
				d: d, from: from, target: e.To, addr: addr,
				conn: conn, enc: enc, batch: batch, linger: d.cfg.Linger,
				backoff: d.retryBackoff, deadline: d.sendDeadline,
				edge: d.edges[edgeKey(from, e.To)],
			}
		}
	}
	return nil
}

// dialEdge opens (or re-opens, during retry) the TCP stream for one
// cross-node edge: dial, tune, optionally wrap with the fault injector,
// and send the handshake. The same encoder carries the handshake and the
// payload so the byte stream stays aligned with the receiver's single
// decoder.
func (d *distEngine) dialEdge(from, to plan.StationID, addr string) (net.Conn, *gob.Encoder, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	tuneConn(conn)
	if d.cfg.Faults != nil {
		conn = d.cfg.Faults.WrapConn(edgeKey(from, to), conn)
	}
	d.mu.Lock()
	d.conns = append(d.conns, conn)
	d.mu.Unlock()
	enc := gob.NewEncoder(conn)
	if err := enc.Encode(handshake{From: from, Target: to}); err != nil {
		conn.Close()
		return nil, nil, err
	}
	return conn, enc, nil
}

// tuneConn shrinks the socket buffers so network buffering adds as little
// effective mailbox capacity as possible.
func tuneConn(conn net.Conn) {
	if tcp, ok := conn.(*net.TCPConn); ok {
		_ = tcp.SetReadBuffer(4 << 10)
		_ = tcp.SetWriteBuffer(4 << 10)
		_ = tcp.SetNoDelay(true)
	}
}

// acceptLoop receives cross-node streams for one node.
func (d *distEngine) acceptLoop(ln net.Listener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		tuneConn(conn)
		d.mu.Lock()
		d.conns = append(d.conns, conn)
		d.mu.Unlock()
		d.readers.Add(1)
		go d.readLoop(conn)
	}
}

// readLoop decodes items from one incoming stream and pushes them into the
// target mailbox. The blocking push is what propagates backpressure onto
// the TCP stream.
func (d *distEngine) readLoop(conn net.Conn) {
	defer d.readers.Done()
	// A decode error (including an injected partial frame) abandons the
	// connection; closing it makes the remote writer fail fast into its
	// retry path instead of blocking on a half-dead stream.
	defer conn.Close()
	dec := gob.NewDecoder(conn)
	var hs handshake
	if err := dec.Decode(&hs); err != nil {
		return
	}
	tb := d.tab()
	if int(hs.Target) < 0 || int(hs.Target) >= len(tb.mailboxes) {
		return
	}
	ed := d.edges[edgeKey(hs.From, hs.Target)]
	if ed == nil {
		// Not a planned cross-node edge; refuse the stream.
		return
	}
	// The reader gets its own producer handle on the target mailbox; a
	// blocking admission (no timeout) is what stalls the TCP stream and
	// propagates backpressure to the remote writer.
	snd := tb.mailboxes[hs.Target].NewSender(0)
	for {
		var w wire
		if err := dec.Decode(&w); err != nil {
			return
		}
		ed.Recvd.Add(uint64(len(w.Tuples)))
		for i, t := range w.Tuples {
			if snd.Send(t, d.done) != mailbox.Sent {
				// Shutdown mid-frame: the undelivered remainder is
				// decoded in-flight residue, accounted like mailbox
				// drain residue.
				tb.st[hs.Target].Drained.Add(uint64(len(w.Tuples) - i))
				return
			}
			// Both ends of the edge are counted here: emission is only
			// final once the item clears the network and lands in the
			// target mailbox (TCP windowing makes sender-side counts
			// bursty).
			tb.st[hs.Target].Arrived.Add(1)
			if int(hs.From) >= 0 && int(hs.From) < len(tb.st) {
				tb.st[hs.From].Emitted.Add(1)
			}
		}
	}
}

// shutdownTransport closes the data plane.
func (d *distEngine) shutdownTransport() {
	d.mu.Lock()
	for _, ln := range d.listeners {
		ln.Close()
	}
	for _, c := range d.conns {
		c.Close()
	}
	d.mu.Unlock()
	d.readers.Wait()
}

// send routes one item: cross-node edges go over TCP, everything else
// through the in-process mailbox.
func (d *distEngine) send(from plan.StationID, edgeIdx int, edge *plan.Edge, t operators.Tuple) bool {
	if outs := d.senders[from]; outs != nil {
		if ob := outs[edge.To]; ob != nil {
			tb := d.tab()
			select {
			case <-d.done:
				tb.st[from].Abandoned.Add(1)
				return false
			default:
			}
			if f := tb.stFaults[from]; f != nil {
				f.OnSend()
			}
			// Every error return from ob.send has already accounted the
			// tuple; emission and arrival of delivered tuples are
			// counted on the receiving node's read loop, once the item
			// clears the network.
			return ob.send(t) == nil
		}
	}
	return d.localSend(from, edgeIdx, edge, t)
}

// sendMany routes one output batch: cross-node edges append to the
// remote outbox (which frames whole micro-batches per TCP write),
// everything else goes through the in-process bulk path.
func (d *distEngine) sendMany(from plan.StationID, edgeIdx int, edge *plan.Edge, ts []operators.Tuple) bool {
	if outs := d.senders[from]; outs != nil {
		if ob := outs[edge.To]; ob != nil {
			tb := d.tab()
			select {
			case <-d.done:
				tb.st[from].Abandoned.Add(uint64(len(ts)))
				return false
			default:
			}
			if f := tb.stFaults[from]; f != nil {
				f.OnSend()
			}
			for i := range ts {
				if ob.send(ts[i]) != nil {
					// ts[i] was accounted by the outbox; the tail never
					// went anywhere.
					tb.st[from].Abandoned.Add(uint64(len(ts) - i - 1))
					return false
				}
			}
			return true
		}
	}
	return d.localSendMany(from, edgeIdx, edge, ts)
}

// run starts the actors and measures, mirroring the local engine but
// unblocking TCP writers on shutdown.
func (d *distEngine) run(ctx context.Context) (*Metrics, error) {
	rng := stats.NewRNG(d.cfg.Seed + 0x517c)
	for i := range d.tab().p.Stations {
		d.spawnStation(plan.StationID(i), rng.Uint64(), nil, nil)
	}
	sleepCtx(ctx, d.cfg.Warmup)
	snap1 := d.snapshotAll()
	d.reg.MarkWindowBegin()
	start := time.Now()
	sleepCtx(ctx, d.cfg.Duration-d.cfg.Warmup)
	snap2 := d.snapshotAll()
	d.reg.MarkWindowEnd()
	window := time.Since(start).Seconds()
	close(d.done)
	// Waking actors stalled inside TCP writes: expire every connection.
	d.mu.Lock()
	for _, c := range d.conns {
		_ = c.SetDeadline(time.Now())
	}
	d.mu.Unlock()
	d.interruptStations()
	d.wg.Wait()
	// Drain-on-shutdown: stations are gone, so tear the transport down
	// and wait for the readers (they are the last producers into the
	// mailboxes), account the outbox residue, then collect what is still
	// queued — in that order, so no producer races the drain.
	d.shutdownTransport()
	for _, outs := range d.senders {
		for _, ob := range outs {
			ob.abort()
		}
	}
	d.drainMailboxes()
	m := d.buildMetrics(window, snap1, snap2)
	// Network in-flight loss: tuples in frames written but never
	// decoded (severed connections, discarded socket buffers).
	var loss uint64
	for _, e := range d.edges {
		if wv, rv := e.Wrote.Load(), e.Recvd.Load(); wv > rv {
			loss += wv - rv
		}
	}
	m.Totals.Abandoned += loss
	return m, nil
}
