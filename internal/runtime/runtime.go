// Package runtime executes SpinStreams physical plans on goroutines: the
// repo's analog of the paper's SS2Akka layer on the Akka actor runtime
// (Section 4.2). Each station runs as one goroutine (an actor) with a
// bounded mailbox (internal/mailbox); a send into a full mailbox blocks
// the sender, which is exactly the Blocking-After-Service semantics the
// cost models assume. The mailbox offers three transports — per-tuple
// channel sends, pooled micro-batches, and a lock-free SPSC ring for
// inboxes the plan's producer-set analysis proves single-producer — all
// accounting capacity in tuples, so BAS holds under any of them (see
// transport.go for the per-inbox selection). Replicated operators execute
// behind
// emitter and collector actors; fused subgraphs execute inside a single
// meta-operator actor per Algorithm 4.
//
// The engine is structured for live reconfiguration: all routing state
// (plan, mailboxes, senders, counter cells) lives in an atomically
// swappable tables value, and every station goroutine runs lifecycle
// segments separated by a park/resume handshake (lifecycle.go). The
// Controller (reconfig.go) uses that seam to apply opt.DeltaPlan replica
// rescales and fusion undos while tuples keep flowing through the
// unaffected part of the plan.
//
// Because operators' real compute cost is far below the profiled service
// times the experiments assign, workers pad each item to the station's
// service time with a timed wait. Sleeping actors overlap freely, so the
// measured behaviour matches a deployment with one core per actor even on
// a small host (see DESIGN.md, substitutions).
package runtime

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"spinstreams/internal/core"
	"spinstreams/internal/faultinject"
	"spinstreams/internal/mailbox"
	"spinstreams/internal/obs"
	"spinstreams/internal/operators"
	"spinstreams/internal/plan"
	"spinstreams/internal/stats"
)

// Config tunes an execution.
type Config struct {
	// MailboxSize is the bounded mailbox capacity (default 64).
	MailboxSize int
	// Duration is the total run length (default 3s).
	Duration time.Duration
	// Warmup is the prefix excluded from measurement (default Duration/4).
	Warmup time.Duration
	// Seed drives probabilistic routing and the default source generator.
	Seed uint64
	// Generator produces source tuples; nil uses a default generator
	// derived from Seed.
	Generator *operators.Generator
	// NoServicePadding disables padding items to the stations' profiled
	// service times; operators then run at raw compute speed. Useful for
	// functional tests.
	NoServicePadding bool
	// OnSink, when set, observes every result leaving the topology
	// through a sink operator. It is invoked from sink actor goroutines
	// and must be safe for concurrent use and fast.
	OnSink func(op core.OpID, t operators.Tuple)
	// SendTimeout bounds how long a blocked send into a full mailbox may
	// stall before the item is discarded — exactly Akka's BoundedMailbox
	// enqueue timeout (the paper sets it far above the service times so
	// no item is ever dropped; a zero value here means block forever,
	// i.e. pure backpressure). Small values yield load-shedding
	// semantics.
	SendTimeout time.Duration
	// PreserveOrder makes the collectors of replicated operators restore
	// the emitters' sequential order (the "proper approaches for item
	// scheduling and collection, to preserve the sequential ordering" the
	// paper mentions for pipelined fission). It applies only to operators
	// with unit gain — with selectivity, replicas drop or multiply items
	// and a sequence-based reorder buffer would stall. Live
	// reconfiguration refuses ordered plans (the reorder state cannot yet
	// be migrated), so PreserveOrder and Controller.ApplyDelta are
	// mutually exclusive.
	PreserveOrder bool
	// Mailbox selects the dataplane transport policy: mailbox.PerTuple
	// (default) sends every item as one channel operation; mailbox.Batched
	// moves pooled micro-batches while still accounting capacity in
	// tuples, so BAS blocking — and with it the steady-state model — is
	// unchanged. mailbox.Auto (and mailbox.SPSC, its alias as a policy)
	// binds each inbox per edge from the deployed plan: inboxes the
	// producer-set analysis proves single-producer run on the lock-free
	// SPSC ring, all others on the batched MPSC path. A live
	// reconfiguration that turns a proven edge multi-producer demotes the
	// inbox back to the batched path inside the same epoch fence; rings
	// are never promoted mid-run.
	Mailbox mailbox.Mode
	// Batch is the micro-batch size in batched mode (default
	// mailbox.DefaultBatch). Ignored in per-tuple mode.
	Batch int
	// Linger bounds how long a partial batch may wait before being
	// flushed in batched mode (default mailbox.DefaultLinger), so
	// low-rate edges don't stall. Ignored in per-tuple mode.
	Linger time.Duration
	// MaxRestarts bounds how many times a station whose operator
	// panicked is restarted with a fresh operator instance. 0 (the
	// default) disables recovery entirely: a panic crashes the run, the
	// historical behaviour. N > 0 allows N restarts per station, after
	// which the station degrades into an accounted discard sink — it
	// keeps draining its inbox (so upstream backpressure cannot deadlock
	// on a dead operator and capacity credits keep returning) and counts
	// every tuple as failed. Negative restarts without bound.
	MaxRestarts int
	// ReconfigStallBudget bounds how long a live reconfiguration
	// (Controller.ApplyDelta) may spend pausing and draining the affected
	// stations. If the fence cannot be established within the budget the
	// reconfiguration aborts, every paused station resumes unchanged, and
	// ApplyDelta reports the timeout. Default 1s.
	ReconfigStallBudget time.Duration
	// AutotuneInterval is the measurement-window length of one
	// Controller.Autotune round: measure for the interval, re-optimize on
	// the drift report, apply the delta, repeat. Default 2s.
	AutotuneInterval time.Duration
	// Estimator enables probe-free online service-rate estimation (Beard &
	// Chamberlain): a sampler goroutine reads every mailbox's occupancy and
	// the station counters each EstimatorInterval, classifies regimes
	// (idle/busy/blocked-downstream) and reconstructs non-blocking service
	// rates without any timed probes — the per-tuple timing instrumentation
	// is switched off entirely. Controller.Autotune then adapts from
	// estimator measurements (obs.Estimator.Measure → obs.DriftFromProfiles)
	// instead of probe histograms.
	Estimator bool
	// EstimatorInterval is the occupancy sampling period (default 1ms).
	// Only meaningful with Estimator set.
	EstimatorInterval time.Duration
	// Faults, when non-nil, injects that deterministic fault schedule
	// into the run: per-tuple operator slowdowns and panics, per-send
	// delays, and — under the distributed engine — connection resets.
	// Build a fresh injector per run (see internal/faultinject).
	Faults *faultinject.Injector
	// Obs, when non-nil, binds the run to that observability registry:
	// its Snapshot/HTTP endpoints see the live counters, its tracers fire
	// at station lifecycle points, and sampled histograms (service time,
	// inter-arrival, queue depth, batch size) are recorded. When nil the
	// engine still routes every counter through a private registry — the
	// single accounting path Metrics is a view over — but skips the timed
	// sampling, so the uninstrumented hot path stays unchanged. A registry
	// serves one run at a time (the run rebinds and resets it).
	Obs *obs.Registry
}

// withDefaults fills zero fields and rejects nonsensical configurations
// instead of silently coercing them.
func (c Config) withDefaults() (Config, error) {
	if c.MailboxSize < 0 {
		return c, fmt.Errorf("runtime: negative MailboxSize %d", c.MailboxSize)
	}
	if c.MailboxSize == 0 {
		c.MailboxSize = 64
	}
	if c.Duration < 0 {
		return c, fmt.Errorf("runtime: negative Duration %v", c.Duration)
	}
	if c.Duration == 0 {
		c.Duration = 3 * time.Second
	}
	if c.Warmup < 0 {
		return c, fmt.Errorf("runtime: negative Warmup %v", c.Warmup)
	}
	if c.Warmup == 0 {
		c.Warmup = c.Duration / 4
	}
	if c.Warmup >= c.Duration {
		return c, fmt.Errorf("runtime: Warmup %v must be shorter than Duration %v", c.Warmup, c.Duration)
	}
	if c.SendTimeout < 0 {
		return c, fmt.Errorf("runtime: negative SendTimeout %v", c.SendTimeout)
	}
	if c.Batch < 0 {
		return c, fmt.Errorf("runtime: negative Batch %d", c.Batch)
	}
	if c.Batch == 0 {
		c.Batch = mailbox.DefaultBatch
	}
	if c.Linger < 0 {
		return c, fmt.Errorf("runtime: negative Linger %v", c.Linger)
	}
	if c.Linger == 0 {
		c.Linger = mailbox.DefaultLinger
	}
	if c.ReconfigStallBudget < 0 {
		return c, fmt.Errorf("runtime: negative ReconfigStallBudget %v", c.ReconfigStallBudget)
	}
	if c.ReconfigStallBudget == 0 {
		c.ReconfigStallBudget = time.Second
	}
	if c.AutotuneInterval < 0 {
		return c, fmt.Errorf("runtime: negative AutotuneInterval %v", c.AutotuneInterval)
	}
	if c.AutotuneInterval == 0 {
		c.AutotuneInterval = 2 * time.Second
	}
	if c.EstimatorInterval < 0 {
		return c, fmt.Errorf("runtime: negative EstimatorInterval %v", c.EstimatorInterval)
	}
	if c.EstimatorInterval == 0 {
		c.EstimatorInterval = time.Millisecond
	}
	if c.Generator == nil {
		g, err := operators.NewGenerator(operators.GeneratorConfig{Seed: c.Seed + 1})
		if err != nil {
			return c, err
		}
		c.Generator = g
	}
	return c, nil
}

// Metrics reports the measured steady-state behaviour of a run.
type Metrics struct {
	// Throughput is the measured source departure rate in items/s (the
	// paper's topology throughput).
	Throughput float64
	// Departure and Arrival are measured rates per logical operator.
	Departure []float64
	Arrival   []float64
	// Processed is the total number of items consumed by all stations in
	// the measurement window.
	Processed uint64
	// MeasuredSeconds is the length of the measurement window.
	MeasuredSeconds float64
	// Dropped is the rate of items discarded at each logical operator's
	// entry mailbox (items/s); non-zero only with a SendTimeout.
	Dropped []float64
	// Stations reports per-station consumption and emission rates
	// (replicas, emitters and collectors included).
	Stations []StationMetrics
	// Restarts is the total number of panic-recovery restarts across all
	// stations over the whole run (see Config.MaxRestarts).
	Restarts uint64
	// Degraded is the number of stations that exhausted their restart
	// budget and finished the run as accounted discard sinks.
	Degraded int
	// Totals is the whole-run tuple accounting (not windowed like the
	// rates above); see Totals for the conservation identity it obeys.
	Totals Totals
}

// Totals is the exact lifetime tuple accounting of a run, maintained so
// that under any fault schedule every generated tuple lands in exactly
// one bucket. For unit-gain topologies (every operator forwards each
// input exactly once, e.g. identity pipelines) the conservation identity
//
//	Generated == Delivered + Shed + Failed + Drained + Abandoned
//
// holds exactly — the chaos suite asserts it under injected faults, and
// across live reconfigurations (stations retired by an ApplyDelta keep
// their lifetime counters in the sums). Operators with non-unit
// selectivity break the identity by design (they consume or multiply
// tuples inside the operator).
type Totals struct {
	// Generated counts tuples produced by source stations.
	Generated uint64
	// Delivered counts results that left the system through a sink.
	Delivered uint64
	// Shed counts tuples discarded at admission by a SendTimeout, plus —
	// under the distributed engine — tuples in frames dropped after the
	// send deadline expired (graceful degradation of a dead edge).
	Shed uint64
	// Failed counts tuples lost to operator panics: the tuple in hand
	// when the panic fired, the unprocessed remainder of its input
	// batch, and everything consumed by a degraded station.
	Failed uint64
	// Drained counts tuples still queued in mailboxes (or undecoded
	// in-flight frame remainders) when the run stopped, collected by the
	// drain-on-shutdown pass.
	Drained uint64
	// Abandoned counts outputs of successfully processed tuples that
	// shutdown (or a dead distributed edge) kept from being admitted
	// downstream: aborted sends, residual output buffers, and network
	// in-flight loss (frames written but never decoded).
	Abandoned uint64
}

// StationMetrics is one physical station's measured behaviour.
type StationMetrics struct {
	// Name is the station name (e.g. "hot/replica2").
	Name string
	// Role is the station's role in the plan.
	Role plan.Role
	// Consumed and Emitted count items over the measurement window.
	Consumed, Emitted uint64
	// ConsumeRate and EmitRate are the corresponding rates in items/s.
	ConsumeRate, EmitRate float64
	// Restarts counts this station's panic-recovery restarts (whole run).
	Restarts uint64
	// Degraded reports whether the station exhausted its restart budget
	// and spent the rest of the run discarding (and accounting) input.
	Degraded bool
	// Retired reports that a live reconfiguration drained and stopped the
	// station before the run ended.
	Retired bool
}

// routed couples an output tuple with an optional explicit logical
// destination (meta-operators choose destinations themselves; -1 lets the
// station's routing discipline decide).
type routed struct {
	tuple operators.Tuple
	dest  core.OpID
}

// engine is one execution of a plan.
type engine struct {
	cfg     Config
	binding *Binding
	// live is the current epoch's routing state (plan, mailboxes, senders,
	// counter cells, fault streams); see tables in lifecycle.go. Station
	// goroutines re-read it at every lifecycle-segment boundary; the
	// reconfiguration controller swaps it while affected stations are
	// parked.
	live atomic.Pointer[tables]
	done chan struct{}
	wg   sync.WaitGroup
	// ctls[i] is station i's lifecycle handle (nil for never-spawned
	// slots); guarded by ctlMu because reconfiguration appends entries
	// while stations run.
	ctlMu sync.Mutex
	ctls  []*stationCtl

	// sendFn delivers one routed item along a physical edge (edgeIdx
	// indexes the station's Out slice); the local engine pushes into the
	// in-process mailbox, the distributed engine routes cross-node edges
	// over TCP. It returns false on shutdown.
	sendFn func(from plan.StationID, edgeIdx int, edge *plan.Edge, t operators.Tuple) bool
	// sendManyFn is the bulk counterpart used by the batched station
	// loop: it delivers a whole output batch along one edge with the
	// same per-tuple admission and shedding semantics as sendFn.
	sendManyFn func(from plan.StationID, edgeIdx int, edge *plan.Edge, ts []operators.Tuple) bool

	// reg is the observability registry every counter flows through (the
	// single accounting path; Metrics is a view over it). The per-station
	// cell slice lives in tables.st, indexed by StationID — one pointer
	// chase per atomic add. When the caller didn't supply a registry, reg
	// is private.
	reg *obs.Registry
	// tracers are the registry's lifecycle hooks, fetched once; sample
	// enables the timed histogram instrumentation (caller-supplied
	// registry only — see Config.Obs; the online estimator disables it:
	// probe-free means no per-tuple timing at all).
	tracers []obs.Tracer
	sample  bool
	// est is the online service-rate estimator (Config.Estimator); its
	// sampler goroutine starts with the stations and stops at shutdown.
	est *obs.Estimator
}

// newEngine allocates the shared engine state.
func newEngine(p *plan.Plan, binding *Binding, cfg Config) (*engine, error) {
	e := &engine{
		cfg:     cfg,
		binding: binding,
		done:    make(chan struct{}),
		reg:     cfg.Obs,
		sample:  cfg.Obs != nil && !cfg.Estimator,
	}
	if e.reg == nil {
		e.reg = obs.New()
	}
	tb := &tables{
		p:         p,
		mailboxes: make([]*mailbox.Mailbox[operators.Tuple], len(p.Stations)),
		senders:   make([][]*mailbox.Sender[operators.Tuple], len(p.Stations)),
		stFaults:  make([]*faultinject.StationFaults, len(p.Stations)),
		retired:   make([]bool, len(p.Stations)),
	}
	infos := make([]obs.StationInfo, len(p.Stations))
	for i := range p.Stations {
		st := &p.Stations[i]
		infos[i] = obs.StationInfo{
			Name:   st.Name,
			Role:   st.Role.String(),
			Op:     int(st.Op),
			Source: st.Role == plan.RoleSource,
			Sink:   len(st.Out) == 0,
		}
	}
	tb.st = e.reg.Bind(infos)
	e.tracers = e.reg.Tracers()
	if cfg.Faults != nil {
		for i := range tb.stFaults {
			tb.stFaults[i] = cfg.Faults.Station(i)
		}
	}
	// Transport selection is per inbox, derived from the plan: the
	// producer-set analysis proves which inboxes have a single sending
	// station, and those run on the lock-free SPSC ring when the policy
	// allows it. The legacy uniform modes pass through resolveInboxMode
	// unchanged, so a PerTuple or Batched config behaves exactly as before.
	fanIn := liveFanIn(p, nil)
	for i := range tb.mailboxes {
		m, err := newInbox(cfg, fanIn[i])
		if err != nil {
			return nil, fmt.Errorf("runtime: station %d: %w", i, err)
		}
		tb.mailboxes[i] = m
	}
	for i := range p.Stations {
		out := p.Stations[i].Out
		tb.senders[i] = make([]*mailbox.Sender[operators.Tuple], len(out))
		for j := range out {
			tb.senders[i][j] = tb.mailboxes[out[j].To].NewSender(cfg.SendTimeout)
		}
	}
	e.live.Store(tb)
	// Mailbox gauges (queue depth, capacity, blocked sends) reach
	// snapshots through the sampler — the mailboxes outlive the run, so
	// post-run snapshots still see the final figures. The sampler reads
	// the live tables because reconfiguration can append stations.
	e.reg.SetSampler(func(i int) obs.Gauges {
		cur := e.tab()
		if i >= len(cur.mailboxes) {
			return obs.Gauges{}
		}
		m := cur.mailboxes[i]
		return obs.Gauges{
			Queued:       uint64(m.Queued()),
			Capacity:     uint64(m.Capacity()),
			BlockedSends: m.Blocked(),
		}
	})
	e.sendFn = e.localSend
	e.sendManyFn = e.localSendMany
	return e, nil
}

// localSend pushes into the in-process mailbox, blocking on a full buffer
// (BAS) until shutdown — or, with a SendTimeout configured, discarding the
// item once the timeout expires (Akka's BoundedMailbox semantics). The
// timeout can only reject the item being admitted: tuples a mailbox has
// already accepted are never dropped, in either transport mode.
func (e *engine) localSend(from plan.StationID, edgeIdx int, edge *plan.Edge, t operators.Tuple) bool {
	tb := e.tab()
	if f := tb.stFaults[from]; f != nil {
		f.OnSend()
	}
	switch tb.senders[from][edgeIdx].Send(t, e.done) {
	case mailbox.Sent:
		tb.st[from].Emitted.Add(1)
		tb.st[edge.To].Arrived.Add(1)
		if len(e.tracers) != 0 {
			e.fireEmit(from, 1)
		}
		return true
	case mailbox.Dropped:
		tb.st[from].Emitted.Add(1)
		tb.st[edge.To].Dropped.Add(1)
		if len(e.tracers) != 0 {
			e.fireEmit(from, 1)
		}
		return true
	default: // mailbox.Closed: engine shutdown; the tuple was never admitted.
		tb.st[from].Abandoned.Add(1)
		return false
	}
}

// localSendMany delivers a whole output batch along one edge. Counter
// semantics match per-tuple sends exactly: every admitted tuple counts as
// emitted and arrived, every shed tuple as emitted and dropped.
func (e *engine) localSendMany(from plan.StationID, edgeIdx int, edge *plan.Edge, ts []operators.Tuple) bool {
	tb := e.tab()
	if f := tb.stFaults[from]; f != nil {
		f.OnSend()
	}
	sent, dropped, ok := tb.senders[from][edgeIdx].SendMany(ts, e.done)
	if n := uint64(sent + dropped); n > 0 {
		tb.st[from].Emitted.Add(n)
		tb.st[edge.To].Arrived.Add(uint64(sent))
		if dropped > 0 {
			tb.st[edge.To].Dropped.Add(uint64(dropped))
		}
		if len(e.tracers) != 0 {
			e.fireEmit(from, sent+dropped)
		}
	}
	if !ok {
		// Shutdown aborted the delivery part-way: the tail was never
		// admitted anywhere.
		tb.st[from].Abandoned.Add(uint64(len(ts) - sent - dropped))
	}
	return ok
}

// probe carries one station's timed instrumentation: histogram samples
// (service time, inter-arrival, queue depth, batch size) and the tracer
// lifecycle hooks. A nil probe — the default when no caller-supplied
// registry is configured — is safe to call and does nothing, so the hot
// loops pay only a static call with a nil check when observability is off.
type probe struct {
	st      *obs.Station
	inbox   *mailbox.Mailbox[operators.Tuple]
	tracers []obs.Tracer
	id      int
	// traced gates the per-event tracer hooks; when set, every event takes
	// the slow path and service timing covers every tuple.
	traced bool
	// last is the previous sampled receive event; pending counts tuples
	// arrived since then, so the mean inter-arrival gap stays exact under
	// subsampling.
	last    time.Time
	pending uint64
	// events and served drive the subsampled histogram records; flushed
	// remembers the events value at the last Receives flush, so the hot
	// path never touches the shared atomic and the Receives counter trails
	// live reads by at most one sampling period.
	events, served, flushed uint64
}

// sampleMask subsamples the timed instrumentation 1-in-128: dense enough
// that every station records a service sample on its first tuple (the
// mask fires at event 1) and a drift window still collects several
// samples per operator, sparse enough that the amortized
// histogram-and-clock cost stays inside the documented <5% dataplane
// overhead budget. Measured on the contended per-tuple transport, 1-in-64
// cost ~13% end-to-end (the sampled pauses disturb the channel convoy),
// 1-in-128 ~2%.
const sampleMask = 127

// newProbe returns a probe for the station, or nil when timed sampling is
// off (Config.Obs == nil).
func (e *engine) newProbe(tb *tables, id plan.StationID) *probe {
	if !e.sample {
		return nil
	}
	return &probe{
		st:      tb.st[id],
		inbox:   tb.mailboxes[id],
		tracers: e.tracers,
		traced:  len(e.tracers) > 0,
		id:      int(id),
	}
}

// onReceive records one receive event of n tuples. Unlike the other probe
// methods it is NOT nil-safe — callers guard — to keep the hot path
// inline-sized: two probe-local increments and a mask test, with
// everything shared (the Receives counter flush, tracer hooks, histogram
// records) deferred to onReceiveSlow on sampled or traced events.
func (p *probe) onReceive(n int) {
	p.pending += uint64(n)
	p.events++
	if p.traced || p.events&sampleMask == 1 {
		p.onReceiveSlow(n)
	}
}

// onReceiveSlow fires the OnReceive hooks and — on sampled events —
// flushes the receive-event counter and records inter-arrival time (mean
// gap per tuple since the previous sample), queue depth and batch size.
func (p *probe) onReceiveSlow(n int) {
	for _, t := range p.tracers {
		t.OnReceive(p.id, n)
	}
	if p.events&sampleMask != 1 {
		return
	}
	p.st.Receives.Add(p.events - p.flushed)
	p.flushed = p.events
	now := time.Now()
	if !p.last.IsZero() && p.pending > 0 {
		gap := uint64(now.Sub(p.last).Nanoseconds()) / p.pending
		p.st.InterArrival.RecordN(gap, p.pending)
	}
	p.last = now
	p.pending = 0
	p.st.QueueDepth.Record(uint64(p.inbox.Queued()))
	p.st.BatchSize.Record(uint64(n))
}

// sampleService reports whether this tuple's service episode should be
// timed: every 128th tuple, or every tuple while tracers are attached.
func (p *probe) sampleService() bool {
	if p == nil {
		return false
	}
	p.served++
	return p.traced || p.served&sampleMask == 1
}

// onServe records one timed service episode covering n tuples. The
// recorded value is the mean per-tuple wall time of the episode; for
// batched episodes that includes time blocked on downstream admission
// (backpressure is part of the effective service time the cost model
// predicts via BAS).
func (p *probe) onServe(started time.Time, n int) {
	if p == nil || n == 0 {
		return
	}
	elapsed := time.Since(started)
	p.st.Service.RecordN(uint64(elapsed.Nanoseconds())/uint64(n), uint64(n))
	for _, t := range p.tracers {
		t.OnServe(p.id, n, elapsed)
	}
}

// onEmit fires the OnEmit hook for n tuples leaving a sink. The untraced
// hot path is a single inlined flag test.
func (p *probe) onEmit(n int) {
	if p == nil || !p.traced || n == 0 {
		return
	}
	p.onEmitSlow(n)
}

//go:noinline
func (p *probe) onEmitSlow(n int) {
	for _, t := range p.tracers {
		t.OnEmit(p.id, n)
	}
}

// fireEmit fires OnEmit for tuples leaving a station along an edge; it is
// called from the send paths, which have no probe in scope, and is gated
// on the tracer list so the common untraced run pays one len check.
func (e *engine) fireEmit(id plan.StationID, n int) {
	for _, t := range e.tracers {
		t.OnEmit(int(id), n)
	}
}

// Run executes the plan for cfg.Duration and reports steady-state metrics.
// The binding supplies operator implementations per logical operator; a nil
// binding runs every non-source station as a pass-through (pure queueing
// behaviour, still faithful to the cost model).
func Run(ctx context.Context, p *plan.Plan, binding *Binding, cfg Config) (*Metrics, error) {
	if p == nil || len(p.Stations) == 0 {
		return nil, errors.New("runtime: empty plan")
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if binding == nil {
		binding = &Binding{}
	}
	if err := binding.validate(p); err != nil {
		return nil, err
	}
	e, err := newEngine(p, binding, cfg)
	if err != nil {
		return nil, err
	}
	return e.execute(ctx)
}

// startStations spawns one goroutine per station of the initial plan.
func (e *engine) startStations() {
	rng := stats.NewRNG(e.cfg.Seed + 0x9e37)
	tb := e.tab()
	for i := range tb.p.Stations {
		e.spawnStation(plan.StationID(i), rng.Uint64(), nil, nil)
	}
	e.startEstimator()
}

// execute starts the actors, measures the steady-state window and builds
// the metrics; shared by the local and distributed engines.
func (e *engine) execute(ctx context.Context) (*Metrics, error) {
	e.startStations()

	// Warmup, snapshot, measure, snapshot, stop. The registry window marks
	// bracket the same steady-state interval, so WindowRates and the drift
	// report measure what Metrics measures.
	sleepCtx(ctx, e.cfg.Warmup)
	snap1 := e.snapshotAll()
	e.reg.MarkWindowBegin()
	start := time.Now()
	sleepCtx(ctx, e.cfg.Duration-e.cfg.Warmup)
	snap2 := e.snapshotAll()
	e.reg.MarkWindowEnd()
	window := time.Since(start).Seconds()
	e.shutdown()
	return e.buildMetrics(window, snap1, snap2), nil
}

// drainMailboxes collects every tuple still queued after all stations
// exited, so shutdown leaves no unaccounted in-flight item and every
// capacity credit returns to its mailbox. Station goroutines flush their
// partial sender batches on exit (flushStationSenders), which
// happens-before wg.Wait, so by the time this runs all surviving tuples
// sit in mailboxes — including the mailboxes of stations a live
// reconfiguration retired mid-run.
func (e *engine) drainMailboxes() {
	tb := e.tab()
	for i := range tb.mailboxes {
		if n := tb.mailboxes[i].Drain(); n > 0 {
			tb.st[i].Drained.Add(uint64(n))
		}
	}
}

// counterSnapshot is one point-in-time view of all station counters.
type counterSnapshot struct {
	consumed, emitted, arrived, dropped []uint64
}

func (e *engine) snapshotAll() counterSnapshot {
	tb := e.tab()
	n := len(tb.p.Stations)
	s := counterSnapshot{
		consumed: make([]uint64, n),
		emitted:  make([]uint64, n),
		arrived:  make([]uint64, n),
		dropped:  make([]uint64, n),
	}
	for i := 0; i < n; i++ {
		s.consumed[i] = tb.st[i].Consumed.Load()
		s.emitted[i] = tb.st[i].Emitted.Load()
		s.arrived[i] = tb.st[i].Arrived.Load()
		s.dropped[i] = tb.st[i].Dropped.Load()
	}
	return s
}

// at reads a snapshot slice that may predate stations a reconfiguration
// added; missing entries read as zero (the station did not exist, so it
// had consumed nothing).
func at(s []uint64, i int) uint64 {
	if i < len(s) {
		return s[i]
	}
	return 0
}

// buildMetrics aggregates the two counter snapshots into per-operator and
// per-station rates, over the final tables (so stations added or retired
// by live reconfiguration are included).
func (e *engine) buildMetrics(window float64, snap1, snap2 counterSnapshot) *Metrics {
	tb := e.tab()
	p := tb.p
	m := &Metrics{
		Departure:       make([]float64, len(p.WorkersOf)),
		Arrival:         make([]float64, len(p.WorkersOf)),
		Dropped:         make([]float64, len(p.WorkersOf)),
		MeasuredSeconds: window,
		Stations:        make([]StationMetrics, len(p.Stations)),
	}
	for i := range p.Stations {
		consumed := at(snap2.consumed, i) - at(snap1.consumed, i)
		emitted := at(snap2.emitted, i) - at(snap1.emitted, i)
		m.Processed += consumed
		m.Stations[i] = StationMetrics{
			Name:        p.Stations[i].Name,
			Role:        p.Stations[i].Role,
			Consumed:    consumed,
			Emitted:     emitted,
			ConsumeRate: float64(consumed) / window,
			EmitRate:    float64(emitted) / window,
			Restarts:    tb.st[i].Restarts.Load(),
			Degraded:    tb.st[i].Degraded.Load(),
			Retired:     tb.retired[i],
		}
		m.Restarts += m.Stations[i].Restarts
		if m.Stations[i].Degraded {
			m.Degraded++
		}
		// Lifetime totals (not windowed): see the Totals doc for the
		// bucket definitions and the conservation identity. Retired
		// stations are included — their history happened.
		st := &p.Stations[i]
		m.Totals.Shed += tb.st[i].Dropped.Load()
		m.Totals.Failed += tb.st[i].Failed.Load()
		m.Totals.Abandoned += tb.st[i].Abandoned.Load()
		m.Totals.Drained += tb.st[i].Drained.Load()
		if st.Role == plan.RoleSource {
			m.Totals.Generated += tb.st[i].Consumed.Load()
		} else if len(st.Out) == 0 {
			m.Totals.Delivered += tb.st[i].Emitted.Load()
		}
	}
	for op := range p.WorkersOf {
		outSide := p.WorkersOf[op]
		if c := p.CollectorOf[op]; c >= 0 {
			outSide = []plan.StationID{c}
		}
		var emitted uint64
		for _, sid := range outSide {
			emitted += at(snap2.emitted, int(sid)) - at(snap1.emitted, int(sid))
		}
		m.Departure[op] = float64(emitted) / window
		if entry := p.EntryOf[op]; entry >= 0 {
			m.Arrival[op] = float64(at(snap2.arrived, int(entry))-at(snap1.arrived, int(entry))) / window
			m.Dropped[op] = float64(at(snap2.dropped, int(entry))-at(snap1.dropped, int(entry))) / window
		}
	}
	m.Throughput = m.Departure[p.Stations[p.SourceID].Op]
	return m
}

func sleepCtx(ctx context.Context, d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// runStation is the actor goroutine, structured as lifecycle segments: a
// segment runs the operator until shutdown or a pause request; between
// segments the station parks and waits for the controller to release or
// retire it, re-reading the routing tables afterwards so an epoch fence
// can swap them while it is parked.
func (e *engine) runStation(id plan.StationID, ctl *stationCtl, seed uint64) {
	defer e.wg.Done()
	rng := stats.NewRNG(seed)
	for {
		e.stationSegment(id, ctl, rng)
		// Hand partial output micro-batches to their target mailboxes on
		// every segment exit — each buffered tuple already holds a
		// capacity credit, so the flush cannot block — so either the
		// controller (pause) or the final drain pass (shutdown) sees
		// every surviving tuple in a mailbox.
		e.flushStationSenders(e.tab(), id)
		if e.isShutdown() {
			return
		}
		if !ctl.park(e.done) {
			return
		}
	}
}

// stationSegment runs the station until shutdown or a pause request. The
// operator body runs in epochs: a clean epoch ends at the segment
// boundary; a panicking epoch (an operator bug or an injected fault) is
// recovered when Config.MaxRestarts enables recovery, and the station
// restarts with a freshly bound operator instance until its budget is
// spent, after which it degrades into an accounted discard sink
// (runDegraded).
func (e *engine) stationSegment(id plan.StationID, ctl *stationCtl, rng *stats.RNG) {
	tb := e.tab()
	st := &tb.p.Stations[id]
	if st.Role == plan.RoleSource {
		e.runSource(tb, st, ctl, rng)
		return
	}
	if tb.st[id].Degraded.Load() {
		e.runDegraded(tb, st, ctl)
		return
	}
	for {
		if e.stationEpoch(tb, st, ctl, rng) {
			return
		}
		if max := e.cfg.MaxRestarts; max >= 0 && tb.st[id].Restarts.Load() >= uint64(max) {
			tb.st[id].Degraded.Store(true)
			for _, t := range e.tracers {
				t.OnDegrade(int(id))
			}
			e.runDegraded(tb, st, ctl)
			return
		}
		n := tb.st[id].Restarts.Add(1)
		for _, t := range e.tracers {
			t.OnRestart(int(id), n)
		}
	}
}

// flushStationSenders pushes the station's partial output batches into
// their target mailboxes and stops the linger timers. Buffered items
// hold credits, so this never blocks.
func (e *engine) flushStationSenders(tb *tables, id plan.StationID) {
	for _, s := range tb.senders[id] {
		s.Flush()
	}
}

// runDegraded drains the station's inbox after its restart budget is
// exhausted, so upstream backpressure cannot deadlock on a dead
// operator: every tuple is still consumed, counted as failed, and its
// capacity credit returned.
func (e *engine) runDegraded(tb *tables, st *plan.Station, ctl *stationCtl) {
	inbox := tb.mailboxes[st.ID]
	stop := ctl.stopCh()
	for {
		_, ok := inbox.Recv(stop)
		if !ok {
			if e.isShutdown() {
				return
			}
			if !ctl.drainRequested() || inbox.Pending() == 0 {
				return
			}
			if _, ok = inbox.Recv(e.done); !ok {
				return
			}
		}
		tb.st[st.ID].Consumed.Add(1)
		tb.st[st.ID].Failed.Add(1)
	}
}

// stationEpoch runs the operator until the segment ends (true) or a
// recovered panic (false). Each epoch binds its operator instance through
// the lifecycle seam: a pause presets the live instance so state survives
// the park, a restart binds a fresh one so a panic cannot resurrect state
// it may have corrupted.
func (e *engine) stationEpoch(tb *tables, st *plan.Station, ctl *stationCtl, rng *stats.RNG) bool {
	exec, selfPaced, inst, minst := e.bindStation(st, ctl)
	pace := newPacer(st.ServiceTime)
	// Without padding the clock read per item is pure dataplane overhead
	// (the pacer never runs); skip it so raw throughput measures the
	// transport, not the vDSO.
	usePace := !e.cfg.NoServicePadding && !selfPaced
	// Every non-per-tuple policy runs the batch-draining loop: RecvBatch
	// drains whole micro-batches from a batched inbox and whole ring runs
	// from an SPSC inbox, and the per-edge output buffers deliver in bulk
	// to either transport downstream.
	if e.cfg.Mailbox != mailbox.PerTuple {
		return e.stationEpochBatched(tb, st, ctl, rng, exec, usePace, pace, inst, minst)
	}
	return e.stationEpochTuple(tb, st, ctl, rng, exec, usePace, pace, inst, minst)
}

// bindStation resolves the operator instance for one epoch: a preset
// carried across a pause (or installed by a migration) wins; otherwise
// the binding clones a fresh instance. Either way the live instance is
// published on the ctl so the controller can migrate its state while the
// station is parked.
func (e *engine) bindStation(st *plan.Station, ctl *stationCtl) (exec func(operators.Tuple, *[]routed), selfPaced bool, inst operators.Operator, minst *metaInstance) {
	if mi := ctl.presetMeta; mi != nil {
		ctl.preset, ctl.presetMeta = nil, nil
		ctl.publish(nil, mi)
		return mi.process, true, nil, mi
	}
	if op := ctl.preset; op != nil {
		ctl.preset, ctl.presetMeta = nil, nil
		ctl.publish(op, nil)
		return opExec(op), false, op, nil
	}
	exec, selfPaced, inst, minst = e.binding.executor(st, e.cfg)
	ctl.publish(inst, minst)
	return exec, selfPaced, inst, minst
}

// stationEpochTuple is one per-tuple-transport epoch of the actor loop.
func (e *engine) stationEpochTuple(tb *tables, st *plan.Station, ctl *stationCtl, rng *stats.RNG, exec func(operators.Tuple, *[]routed), usePace bool, pace *pacer, inst operators.Operator, minst *metaInstance) (clean bool) {
	rr := 0
	outs := make([]routed, 0, 8)
	fl := tb.stFaults[st.ID]
	pr := e.newProbe(tb, st.ID)
	inbox := tb.mailboxes[st.ID]
	stop := ctl.stopCh()
	inHand := 0
	if e.cfg.MaxRestarts != 0 {
		defer func() {
			if r := recover(); r != nil {
				// The tuple in hand left the mailbox but its processing
				// died with the panic; its partial outputs die with it.
				tb.st[st.ID].Consumed.Add(uint64(inHand))
				tb.st[st.ID].Failed.Add(uint64(inHand))
				clean = false
			}
		}()
	}
	if exec == nil {
		exec = forward
	}
	for {
		tup, ok := inbox.Recv(stop)
		if !ok {
			if e.isShutdown() {
				return true
			}
			// Pause requested. A drain-before-pause keeps consuming with
			// the engine-wide done channel until the inbox is empty
			// (producers are already parked, so no new input arrives);
			// otherwise the live instance is carried across the park so
			// operator state survives the pause.
			if !ctl.drainRequested() || inbox.Pending() == 0 {
				ctl.carry(inst, minst)
				return true
			}
			if tup, ok = inbox.Recv(e.done); !ok {
				return true
			}
		}
		if pr != nil {
			pr.onReceive(1)
		}
		inHand = 1
		sampleSvc := pr.sampleService()
		var started time.Time
		if usePace || sampleSvc {
			started = time.Now()
		}
		if fl != nil {
			fl.OnProcess()
		}
		outs = outs[:0]
		exec(tup, &outs)
		if usePace {
			pace.wait(started)
		}
		if sampleSvc {
			pr.onServe(started, 1)
		}
		tb.st[st.ID].Consumed.Add(1)
		inHand = 0
		if len(st.Out) == 0 {
			// Sink: results leave the system.
			tb.st[st.ID].Emitted.Add(uint64(len(outs)))
			pr.onEmit(len(outs))
			if e.cfg.OnSink != nil {
				for _, o := range outs {
					e.cfg.OnSink(st.Op, o.tuple)
				}
			}
			continue
		}
		if !e.flush(tb, st, outs, rng, &rr) {
			return true
		}
	}
}

// stationEpochBatched is one batched-transport epoch of the actor loop:
// it drains whole micro-batches from the inbox, routes outputs into
// per-edge buffers, and delivers them in bulk. Operator execution,
// pacing, routing decisions, and shedding all remain per-tuple; only the
// queue synchronization and counter updates are amortized over batches.
// Output buffers never persist across input batches, so the engine holds
// no tuples outside a mailbox while idle — the upstream linger chain
// bounds end-to-end latency exactly as in per-tuple mode, and a pause
// request always finds the buffers empty.
func (e *engine) stationEpochBatched(tb *tables, st *plan.Station, ctl *stationCtl, rng *stats.RNG, exec func(operators.Tuple, *[]routed), usePace bool, pace *pacer, inst operators.Operator, minst *metaInstance) (clean bool) {
	rr := 0
	outs := make([]routed, 0, 8)
	inbox := tb.mailboxes[st.ID]
	stop := ctl.stopCh()
	sink := len(st.Out) == 0
	fl := tb.stFaults[st.ID]
	pr := e.newProbe(tb, st.ID)
	outBufs := make([][]operators.Tuple, len(st.Out))
	for i := range outBufs {
		outBufs[i] = make([]operators.Tuple, 0, e.cfg.Batch)
	}
	// abandonBufs counts (and clears) tuples stuck in the per-edge
	// output buffers when the epoch aborts: their inputs were processed,
	// but the outputs will never be admitted downstream.
	abandonBufs := func(extra int) {
		n := extra
		for i := range outBufs {
			n += len(outBufs[i])
			outBufs[i] = outBufs[i][:0]
		}
		if n > 0 {
			tb.st[st.ID].Abandoned.Add(uint64(n))
		}
	}
	var batch []operators.Tuple
	k := 0 // index of the tuple in hand within batch
	if e.cfg.MaxRestarts != 0 {
		defer func() {
			if r := recover(); r != nil {
				// batch[:k] processed fine (their unsent outputs are
				// abandoned below); batch[k:] — the tuple in hand plus
				// the unprocessed tail — died with the panic. The in-hand
				// tuple's partial outputs in outs die with it.
				tb.st[st.ID].Consumed.Add(uint64(len(batch)))
				tb.st[st.ID].Failed.Add(uint64(len(batch) - k))
				abandonBufs(0)
				clean = false
			}
		}()
	}
	// Trivial pass-through on a single edge (the common pipeline shape):
	// forward the input batch wholesale — no closure call, no routed
	// slice, no per-tuple routing decision. Pacing still needs the
	// per-tuple loop, and injected faults must observe every tuple for
	// the schedule to stay deterministic, so both disable it.
	forwardWhole := exec == nil && len(st.Out) == 1 && !usePace && fl == nil
	// The sink analogue: an unbound pass-through sink just counts the
	// batch out of the system — one Consumed/Emitted add per batch
	// instead of a per-tuple exec loop. OnSink callbacks, pacing, and
	// fault schedules all need to see individual tuples, so any of them
	// disables it.
	sinkWhole := exec == nil && sink && !usePace && fl == nil && e.cfg.OnSink == nil
	// A whole-batch station on a proven ring skips the copy-out entirely
	// and works on the ring slots in place.
	if ringWhole(tb, st, sinkWhole, forwardWhole) {
		return e.stationEpochRing(tb, st, ctl, sink, inst, minst)
	}
	if exec == nil {
		exec = forward
	}
	for {
		batch, k = nil, 0
		if inbox.Queued() == 0 {
			// About to go idle: hand partial output batches downstream
			// so a quiet edge never strands tuples behind this
			// station's empty inbox.
			e.flushStationSenders(tb, st.ID)
		}
		var ok bool
		batch, ok = inbox.RecvBatch(stop)
		if !ok {
			if e.isShutdown() {
				return true
			}
			// Pause requested; see stationEpochTuple for the drain
			// protocol. Output buffers are empty here (flushed after
			// every input batch), so only the operator instance needs to
			// cross the park.
			if !ctl.drainRequested() || inbox.Pending() == 0 {
				ctl.carry(inst, minst)
				return true
			}
			if batch, ok = inbox.RecvBatch(e.done); !ok {
				return true
			}
		}
		if pr != nil {
			pr.onReceive(len(batch))
		}
		if sinkWhole {
			n := uint64(len(batch))
			tb.st[st.ID].Consumed.Add(n)
			tb.st[st.ID].Emitted.Add(n)
			pr.onEmit(len(batch))
			inbox.Recycle(batch)
			continue
		}
		if forwardWhole {
			for i := range batch {
				batch[i].Port = st.Out[0].Port
			}
			ok := e.sendManyFn(st.ID, 0, &st.Out[0], batch)
			tb.st[st.ID].Consumed.Add(uint64(len(batch)))
			if !ok {
				// Shutdown mid-delivery; the unsent tail was accounted
				// as abandoned by the send path.
				return true
			}
			inbox.Recycle(batch)
			continue
		}
		// Batch service episodes are subsampled like per-tuple ones: a
		// fast-draining station receives many tiny batches, so reading
		// the clock on every one would dominate the probe's cost.
		sampleBatch := pr.sampleService()
		var batchStart time.Time
		if sampleBatch {
			batchStart = time.Now()
		}
		for k = 0; k < len(batch); k++ {
			tup := batch[k]
			var started time.Time
			if usePace {
				started = time.Now()
			}
			if fl != nil {
				fl.OnProcess()
			}
			outs = outs[:0]
			exec(tup, &outs)
			if usePace {
				pace.wait(started)
			}
			if sink {
				// Sink: results leave the system.
				tb.st[st.ID].Emitted.Add(uint64(len(outs)))
				pr.onEmit(len(outs))
				if e.cfg.OnSink != nil {
					for _, o := range outs {
						e.cfg.OnSink(st.Op, o.tuple)
					}
				}
				continue
			}
			for oi := 0; oi < len(outs); oi++ {
				idx := e.pickEdge(tb, st, outs[oi], rng, &rr)
				if idx < 0 {
					continue
				}
				t := outs[oi].tuple
				t.Port = st.Out[idx].Port
				outBufs[idx] = append(outBufs[idx], t)
				if len(outBufs[idx]) >= e.cfg.Batch {
					if !e.sendManyFn(st.ID, idx, &st.Out[idx], outBufs[idx]) {
						// Shutdown mid-batch: batch[:k+1] were processed
						// (stuck outputs become abandoned work), the
						// unprocessed tail becomes drain residue. The
						// failing buffer was already accounted by the
						// send path.
						outBufs[idx] = outBufs[idx][:0]
						tb.st[st.ID].Consumed.Add(uint64(k + 1))
						tb.st[st.ID].Drained.Add(uint64(len(batch) - k - 1))
						abandonBufs(len(outs) - oi - 1)
						return true
					}
					outBufs[idx] = outBufs[idx][:0]
				}
			}
		}
		tb.st[st.ID].Consumed.Add(uint64(len(batch)))
		if sampleBatch {
			pr.onServe(batchStart, len(batch))
		}
		inbox.Recycle(batch)
		batch, k = nil, 0
		for idx := range outBufs {
			if len(outBufs[idx]) == 0 {
				continue
			}
			if !e.sendManyFn(st.ID, idx, &st.Out[idx], outBufs[idx]) {
				outBufs[idx] = outBufs[idx][:0]
				abandonBufs(0)
				return true
			}
			outBufs[idx] = outBufs[idx][:0]
		}
	}
}

// runSource generates the input stream at the source's service rate,
// subject to backpressure on its output mailboxes. A pause request parks
// the source between tuples (nothing is buffered in per-tuple mode).
func (e *engine) runSource(tb *tables, st *plan.Station, ctl *stationCtl, rng *stats.RNG) {
	rr := 0
	pace := newPacer(st.ServiceTime)
	usePace := !e.cfg.NoServicePadding
	if e.cfg.Mailbox != mailbox.PerTuple {
		// Unpadded sources feeding a proven single-producer ring generate
		// straight into reserved ring slots (padding needs the per-tuple
		// pacer, so it keeps the staging loop). Re-checked every segment:
		// a reconfiguration that demotes the ring re-dispatches here.
		if !usePace {
			if ring := e.sourceRing(tb, st); ring != nil {
				e.runSourceRing(tb, st, ctl, ring)
				return
			}
		}
		e.runSourceBatched(tb, st, ctl, rng, usePace, pace)
		return
	}
	pr := e.newProbe(tb, st.ID)
	one := make([]routed, 1)
	stop := ctl.stopCh()
	for {
		select {
		case <-stop:
			return
		default:
		}
		sampleSvc := pr.sampleService()
		var started time.Time
		if usePace || sampleSvc {
			started = time.Now()
		}
		tup := e.cfg.Generator.Next()
		if usePace {
			pace.wait(started)
		}
		if sampleSvc {
			pr.onServe(started, 1)
		}
		tb.st[st.ID].Consumed.Add(1)
		one[0] = routed{tuple: tup, dest: -1}
		if !e.flush(tb, st, one, rng, &rr) {
			return
		}
	}
}

// runSourceBatched generates the stream in micro-batches: tuples are
// paced and routed individually, then delivered per edge in bulk. Under
// padding a linger bound flushes partial buffers so a slow source still
// feeds the pipeline promptly. A pause flushes the buffers downstream
// before parking (the tuples were generated and accounted); only
// shutdown abandons them.
func (e *engine) runSourceBatched(tb *tables, st *plan.Station, ctl *stationCtl, rng *stats.RNG, usePace bool, pace *pacer) {
	rr := 0
	pr := e.newProbe(tb, st.ID)
	stop := ctl.stopCh()
	outBufs := make([][]operators.Tuple, len(st.Out))
	for i := range outBufs {
		outBufs[i] = make([]operators.Tuple, 0, e.cfg.Batch)
	}
	buffered := 0
	var firstBuffered time.Time
	// abandonBufs accounts generated tuples stuck in the output buffers
	// when shutdown aborts the source.
	abandonBufs := func() {
		n := 0
		for i := range outBufs {
			n += len(outBufs[i])
			outBufs[i] = outBufs[i][:0]
		}
		if n > 0 {
			tb.st[st.ID].Abandoned.Add(uint64(n))
		}
	}
	flushAll := func() bool {
		for idx := range outBufs {
			if len(outBufs[idx]) == 0 {
				continue
			}
			if !e.sendManyFn(st.ID, idx, &st.Out[idx], outBufs[idx]) {
				// The failing buffer's tail was accounted by the send
				// path; the remaining edges' buffers are abandoned here.
				outBufs[idx] = outBufs[idx][:0]
				abandonBufs()
				return false
			}
			outBufs[idx] = outBufs[idx][:0]
		}
		buffered = 0
		return true
	}
	for {
		select {
		case <-stop:
			if e.isShutdown() {
				abandonBufs()
				return
			}
			// Pause: hand the buffered tuples downstream (consumers are
			// still running) so nothing is lost across the park.
			flushAll()
			return
		default:
		}
		sampleSvc := pr.sampleService()
		var started time.Time
		if usePace || sampleSvc {
			started = time.Now()
		}
		tup := e.cfg.Generator.Next()
		if usePace {
			pace.wait(started)
		}
		if sampleSvc {
			pr.onServe(started, 1)
		}
		tb.st[st.ID].Consumed.Add(1)
		idx := e.pickEdge(tb, st, routed{tuple: tup, dest: -1}, rng, &rr)
		if idx < 0 {
			continue
		}
		tup.Port = st.Out[idx].Port
		if buffered == 0 {
			firstBuffered = started
		}
		outBufs[idx] = append(outBufs[idx], tup)
		buffered++
		if len(outBufs[idx]) >= e.cfg.Batch ||
			(usePace && time.Since(firstBuffered) >= e.cfg.Linger) {
			if !flushAll() {
				return
			}
		}
	}
}

// flush delivers outputs downstream; a full mailbox blocks (BAS). It
// returns false when the engine is shutting down.
func (e *engine) flush(tb *tables, st *plan.Station, outs []routed, rng *stats.RNG, rr *int) bool {
	for i := range outs {
		idx := e.pickEdge(tb, st, outs[i], rng, rr)
		if idx < 0 {
			continue
		}
		edge := &st.Out[idx]
		t := outs[i].tuple
		t.Port = edge.Port
		if !e.sendFn(st.ID, idx, edge, t) {
			// The failing tuple was accounted by sendFn; the rest of
			// this output set never reached a mailbox.
			tb.st[st.ID].Abandoned.Add(uint64(len(outs) - i - 1))
			return false
		}
	}
	return true
}

// pickEdge selects the index of the output edge for one item per the
// station's routing discipline, or honors an explicit meta-operator
// destination; -1 means the item has no destination.
func (e *engine) pickEdge(tb *tables, st *plan.Station, o routed, rng *stats.RNG, rr *int) int {
	out := st.Out
	if len(out) == 0 {
		return -1
	}
	if o.dest >= 0 {
		entry := tb.p.EntryOf[o.dest]
		for i := range out {
			if out[i].To == entry {
				return i
			}
		}
		return -1
	}
	if len(out) == 1 {
		return 0
	}
	switch st.Discipline {
	case plan.RoundRobin:
		idx := *rr % len(out)
		*rr++
		return idx
	case plan.KeyHash:
		if n := len(st.KeyReplica); n > 0 {
			r := st.KeyReplica[int(o.tuple.Key)%n]
			if r >= 0 && r < len(out) {
				return r
			}
		}
		return int(o.tuple.Key) % len(out)
	default:
		u := rng.Float64()
		acc := 0.0
		for i := range out {
			acc += out[i].Prob
			if u < acc {
				return i
			}
		}
		return len(out) - 1
	}
}

// pacer stretches item handling to a station's profiled service time.
// Naive per-item sleeps accumulate the kernel's wakeup overshoot (up to a
// few milliseconds per sleep on coarse-tick hosts) into a large rate
// error; the pacer instead tracks an absolute completion schedule and
// compensates overshoot by skipping sleeps on subsequent items. The
// schedule may lag by at most slack before it resets, so an actor that
// idled (empty mailbox) or stalled (backpressure) cannot bank that time
// as service capacity beyond a short catch-up burst.
type pacer struct {
	next   time.Time
	period time.Duration
	slack  time.Duration
}

func newPacer(serviceTime float64) *pacer {
	period := time.Duration(serviceTime * float64(time.Second))
	slack := 2 * period
	// The slack must exceed the worst-case single-sleep overshoot, or
	// sub-overshoot periods would reset the schedule on every item and
	// run at the kernel tick rate instead of the service rate.
	if min := 10 * time.Millisecond; slack < min {
		slack = min
	}
	return &pacer{period: period, slack: slack}
}

// wait blocks until the schedule allows the next completion; started is the
// time this item's service began.
func (p *pacer) wait(started time.Time) {
	p.waitFor(started, p.period)
}

// waitFor paces one item whose service time differs from the configured
// period; meta-operators use it with the per-item path cost (Algorithm 4:
// the sequential composition of the member functions along the item's
// path).
func (p *pacer) waitFor(started time.Time, period time.Duration) {
	if period <= 0 {
		return
	}
	if p.next.IsZero() || started.Sub(p.next) > p.slack {
		p.next = started
	}
	p.next = p.next.Add(period)
	if d := time.Until(p.next); d > 20*time.Microsecond {
		time.Sleep(d)
	}
}

// RunTopology is a convenience wrapper: it plans the topology with the
// given replication degrees, binds operator implementations, and runs it.
func RunTopology(ctx context.Context, t *core.Topology, replicas []int, binding *Binding, cfg Config) (*Metrics, error) {
	p, err := plan.Build(t, plan.Options{Replicas: replicas})
	if err != nil {
		return nil, fmt.Errorf("runtime: %w", err)
	}
	return Run(ctx, p, binding, cfg)
}
