package runtime

import (
	"time"

	"spinstreams/internal/obs"
)

// Online estimator sampling (Config.Estimator): one engine-owned goroutine
// wakes every EstimatorInterval, reads each station's mailbox occupancy
// (an atomic depth the dataplane already accounts) and cumulative
// counters, derives the regime signal, and feeds the tick into the
// obs.Estimator. No per-tuple work: the dataplane hot paths are untouched,
// which is what lets the estimator replace the 1-in-128 timed probes.
//
// Lifecycle: the sampler reads whatever tables the engine currently
// publishes, so a mid-run ApplyDelta is handled naturally — stations are
// append-only across epochs, retired stations arrive flagged (the
// estimator freezes their accumulators), and stations an epoch added start
// accumulating from their first sample. The goroutine joins the engine's
// WaitGroup and exits on the engine-wide done close, before mailboxes are
// drained.

// startEstimator starts the occupancy sampler when Config.Estimator is
// set; idempotent per engine (called from startStations).
func (e *engine) startEstimator() {
	if !e.cfg.Estimator || e.est != nil {
		return
	}
	e.est = obs.NewEstimator(obs.EstimatorConfig{})
	interval := e.cfg.EstimatorInterval
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		last := time.Now()
		var buf []obs.StationSample
		for {
			select {
			case <-e.done:
				return
			case now := <-ticker.C:
				dt := now.Sub(last).Seconds()
				last = now
				if dt <= 0 {
					continue
				}
				buf = e.sampleStations(buf[:0])
				// The only error is a shrinking station set, which the
				// append-only epoch tables rule out.
				_ = e.est.Observe(dt, buf)
			}
		}
	}()
}

// sampleStations reads one occupancy sample of every station in the
// current epoch. The tables value is immutable once published (plans are
// cloned per epoch, Out slices included), so the reads race only against
// atomic counter writes.
func (e *engine) sampleStations(buf []obs.StationSample) []obs.StationSample {
	tb := e.tab()
	for i := range tb.mailboxes {
		cell := tb.st[i]
		queued, capacity := tb.mailboxes[i].Occupancy()
		s := obs.StationSample{
			Info:     cell.Info,
			Queued:   uint64(queued),
			Capacity: uint64(capacity),
			Consumed: cell.Consumed.Load(),
			Emitted:  cell.Emitted.Load(),
			Arrived:  cell.Arrived.Load(),
			Dropped:  cell.Dropped.Load(),
			Retired:  tb.retired[i] || cell.Retired.Load(),
		}
		// Blocked-downstream: some mailbox this station sends into is at
		// capacity. A shared downstream mailbox can flag a producer that
		// happened not to be sending this instant — that only excludes the
		// interval from the busy pool (lower confidence), it cannot bias
		// the rate estimate.
		for _, edge := range tb.p.Stations[i].Out {
			if q, c := tb.mailboxes[edge.To].Occupancy(); q >= c {
				s.Blocked = true
				break
			}
		}
		buf = append(buf, s)
	}
	return buf
}

// Estimator exposes the run's online estimator (nil unless
// Config.Estimator was set).
func (c *Controller) Estimator() *obs.Estimator { return c.e.est }
