package runtime

import (
	"time"

	"spinstreams/internal/mailbox"
	"spinstreams/internal/operators"
	"spinstreams/internal/plan"
)

// liveFanIn counts, per station, the distinct live stations holding an
// out-edge into it — the runtime's version of plan.FanIn, minus stations
// the mask marks retired (a retired station keeps its plan slot and its
// stale out-edges, but no longer sends). A nil mask counts everything,
// which is correct for the initial deployment. The count is what proves
// an inbox single-producer: each station is one goroutine, so fan-in <= 1
// means at most one sending goroutine ever touches the inbox.
func liveFanIn(p *plan.Plan, retired []bool) []int {
	in := make([]int, len(p.Stations))
	var targets []plan.StationID
	for i := range p.Stations {
		if retired != nil && retired[i] {
			continue
		}
		// A station with several edges to the same target (multi-port
		// routing) is still one producer of that inbox.
		targets = targets[:0]
		for _, e := range p.Stations[i].Out {
			dup := false
			for _, t := range targets {
				if t == e.To {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			targets = append(targets, e.To)
			in[e.To]++
		}
	}
	return in
}

// resolveInboxMode maps the configured transport policy and one inbox's
// live producer count to the concrete transport the inbox runs on.
// PerTuple and Batched are uniform legacy transports and pass through
// unchanged; SPSC and Auto are per-edge policies — the lock-free ring
// exactly where the plan proves a single producer, the batched MPSC path
// everywhere else. The result is always constructible (never Auto).
func resolveInboxMode(global mailbox.Mode, producers int) mailbox.Mode {
	switch global {
	case mailbox.PerTuple, mailbox.Batched:
		return global
	default: // mailbox.SPSC, mailbox.Auto
		if producers <= 1 {
			return mailbox.SPSC
		}
		return mailbox.Batched
	}
}

// sourceRing returns the downstream SPSC ring when the source qualifies
// for the zero-copy reservation path: a single out-edge whose target
// inbox is a ring, no send-timeout shedding (Reserve blocks under BAS;
// per-tuple timeout windows need Send/SendMany), and no injected faults
// (fault schedules must observe every tuple individually). The per-tuple
// generate loop with its staging buffer, copy, and per-item accounting
// collapses into fill-window/publish-once — the speedup the analyzer's
// single-producer proof buys at the head of a pipeline.
func (e *engine) sourceRing(tb *tables, st *plan.Station) *mailbox.Mailbox[operators.Tuple] {
	if len(st.Out) != 1 || e.cfg.SendTimeout != 0 || tb.stFaults[st.ID] != nil {
		return nil
	}
	if m := tb.mailboxes[st.Out[0].To]; m.Mode() == mailbox.SPSC {
		return m
	}
	return nil
}

// runSourceRing generates the stream directly into the downstream ring:
// reserve a window of free slots, fill it from the generator in place,
// publish once, account once. Counter semantics match runSourceBatched
// exactly — every published tuple counts generated (Consumed), emitted,
// and arrived — but amortized per window instead of per tuple.
// Unpublished window slots on stop were never generated and leave no
// accounting trace.
func (e *engine) runSourceRing(tb *tables, st *plan.Station, ctl *stationCtl, ring *mailbox.Mailbox[operators.Tuple]) {
	pr := e.newProbe(tb, st.ID)
	stop := ctl.stopCh()
	gen := e.cfg.Generator
	port := st.Out[0].Port
	src, dst := tb.st[st.ID], tb.st[st.Out[0].To]
	for {
		win, ok := ring.Reserve(e.cfg.Batch, stop)
		if !ok {
			// Pause or shutdown; nothing is staged outside the ring, so
			// there is nothing to flush or abandon.
			return
		}
		sampleSvc := pr.sampleService()
		var started time.Time
		if sampleSvc {
			started = time.Now()
		}
		for i := range win {
			gen.NextInto(&win[i])
			win[i].Port = port
		}
		ring.Publish(len(win))
		if sampleSvc {
			pr.onServe(started, len(win))
		}
		n := uint64(len(win))
		src.Consumed.Add(n)
		src.Emitted.Add(n)
		dst.Arrived.Add(n)
		if len(e.tracers) != 0 {
			e.fireEmit(st.ID, len(win))
		}
	}
}

// ringWhole reports whether the station's whole-batch fast path can run
// directly on its ring: the inbox must be SPSC (Peek/Consume are licensed
// by the single-producer proof), and a pass-through's single out-edge
// must land on another ring, because sendManyRing copies the window out
// synchronously — a non-ring downstream could retain the slice while the
// upstream producer recycles the slots under it. Sinks have no out-edge,
// so the inbox check alone decides.
func ringWhole(tb *tables, st *plan.Station, sinkWhole, forwardWhole bool) bool {
	if tb.mailboxes[st.ID].Mode() != mailbox.SPSC {
		return false
	}
	if sinkWhole {
		return true
	}
	return forwardWhole && tb.mailboxes[st.Out[0].To].Mode() == mailbox.SPSC
}

// stationEpochRing is the zero-copy consume loop for proven-SPSC
// pass-through stations: peek a contiguous run in place, forward it with
// one ring-to-ring copy (or, at a sink, just count it out of the system),
// consume the slots. Accounting is identical to the whole-batch paths in
// stationEpochBatched — one Consumed add per window, send-path counters
// via localSendMany — with the pooled-buffer copy-out deleted. The
// pause/drain protocol mirrors RecvBatch's: a pause with drain pending
// keeps taking windows off e.done until the inbox is empty.
func (e *engine) stationEpochRing(tb *tables, st *plan.Station, ctl *stationCtl, sink bool, inst operators.Operator, minst *metaInstance) (clean bool) {
	inbox := tb.mailboxes[st.ID]
	pr := e.newProbe(tb, st.ID)
	stop := ctl.stopCh()
	self := tb.st[st.ID]
	for {
		win, ok := inbox.Peek(stop)
		if !ok {
			if e.isShutdown() {
				return true
			}
			if !ctl.drainRequested() || inbox.Pending() == 0 {
				ctl.carry(inst, minst)
				return true
			}
			if win, ok = inbox.Peek(e.done); !ok {
				return true
			}
		}
		if pr != nil {
			pr.onReceive(len(win))
		}
		n := uint64(len(win))
		if sink {
			self.Consumed.Add(n)
			self.Emitted.Add(n)
			pr.onEmit(len(win))
			inbox.Consume(len(win))
			continue
		}
		for i := range win {
			win[i].Port = st.Out[0].Port
		}
		sent := e.sendManyFn(st.ID, 0, &st.Out[0], win)
		self.Consumed.Add(n)
		// Consume before returning on shutdown: the send path accounted
		// every window tuple (sent, dropped, or abandoned), so leaving
		// them in the ring would double-count them as drain residue.
		inbox.Consume(len(win))
		if !sent {
			return true
		}
	}
}

// newInbox builds one station's inbox in the resolved transport.
func newInbox(cfg Config, producers int) (*mailbox.Mailbox[operators.Tuple], error) {
	return mailbox.New[operators.Tuple](mailbox.Config{
		Capacity: cfg.MailboxSize,
		Mode:     resolveInboxMode(cfg.Mailbox, producers),
		Batch:    cfg.Batch,
		Linger:   cfg.Linger,
	})
}

// demoteInbox builds the replacement inbox for an edge whose SPSC proof
// a reconfiguration invalidated. It is the only constructor live
// reconfiguration may use to swap an existing station's inbox: it
// resolves the configured transport but never yields a ring, so a
// demoted edge can never be re-promoted to SPSC whose single-producer
// precondition no longer holds (the epochfence analyzer pins this).
func demoteInbox(cfg Config, producers int) (*mailbox.Mailbox[operators.Tuple], error) {
	mode := resolveInboxMode(cfg.Mailbox, producers)
	if mode == mailbox.SPSC {
		mode = mailbox.Batched
	}
	return mailbox.New[operators.Tuple](mailbox.Config{
		Capacity: cfg.MailboxSize,
		Mode:     mode,
		Batch:    cfg.Batch,
		Linger:   cfg.Linger,
	})
}
