package experiments

import (
	"fmt"
	"strings"

	"spinstreams/internal/core"
	"spinstreams/internal/plan"
	"spinstreams/internal/qsim"
	"spinstreams/internal/randtopo"
)

// ElasticStep records one reconfiguration round of the reactive baseline.
type ElasticStep struct {
	// Round is the reconfiguration index (0 = initial deployment).
	Round int
	// TotalReplicas after this round's scaling decisions.
	TotalReplicas int
	// Throughput measured during this round's observation interval.
	Throughput float64
}

// ElasticityResult compares the paper's static one-shot optimization
// against a reactive elastic controller — the "joint combination of static
// and dynamic optimizations" the paper leaves as future work (Section 7).
// The reactive baseline mimics threshold-based elasticity supports: deploy
// with one replica everywhere, observe an interval, add a replica to every
// saturated operator, repeat. The static tool reaches the same
// configuration in zero reconfigurations because the cost model predicts
// the optimum before deployment.
type ElasticityResult struct {
	// StaticThroughput is the simulator-measured throughput of the static
	// optimizer's one-shot configuration.
	StaticThroughput float64
	// StaticReplicas is the static configuration's total replica count.
	StaticReplicas int
	// Steps traces the reactive controller.
	Steps []ElasticStep
	// Reconfigurations counts the reactive rounds that changed the
	// topology (each implies an operator restart / state migration in a
	// real SPS).
	Reconfigurations int
	// ElasticThroughput is the reactive controller's final measured
	// throughput; ElasticReplicas its final replica count.
	ElasticThroughput float64
	ElasticReplicas   int
	// IntervalSeconds is the observation interval per round, so the
	// reactive time-to-converge is Reconfigurations * IntervalSeconds.
	IntervalSeconds float64
}

// ElasticityOptions tunes the comparison.
type ElasticityOptions struct {
	// TopologySeed picks the testbed topology (default: the setup seed).
	TopologySeed uint64
	// Interval is the simulated observation window per reactive round
	// (default 10 s).
	Interval float64
	// HighWatermark is the per-replica busy fraction that triggers
	// scale-up (default 0.9).
	HighWatermark float64
	// MaxRounds bounds the reactive controller (default 50).
	MaxRounds int
}

// Elasticity runs the comparison on one random topology.
func Elasticity(s Setup, opts ElasticityOptions) (*ElasticityResult, error) {
	s = s.withDefaults()
	if opts.Interval <= 0 {
		opts.Interval = 10
	}
	if opts.HighWatermark <= 0 || opts.HighWatermark >= 1 {
		opts.HighWatermark = 0.9
	}
	if opts.MaxRounds <= 0 {
		opts.MaxRounds = 50
	}
	topoSeed := opts.TopologySeed
	if topoSeed == 0 {
		topoSeed = s.Seed
	}
	cfg := s.Topo
	cfg.Seed = topoSeed
	g, err := randtopo.Generate(cfg)
	if err != nil {
		return nil, err
	}
	t := g.Topology

	// Static: one-shot model-driven configuration.
	fis, err := core.EliminateBottlenecks(t, core.FissionOptions{})
	if err != nil {
		return nil, err
	}
	simCfg := s.simConfig(0)
	simCfg.Horizon = opts.Interval * 2
	static, err := qsim.SimulateTopology(t, fis.Analysis.Replicas, simCfg)
	if err != nil {
		return nil, err
	}
	res := &ElasticityResult{
		StaticThroughput: static.Throughput,
		StaticReplicas:   fis.TotalReplicas,
		IntervalSeconds:  opts.Interval,
	}

	// Reactive: threshold-based scale-up loop.
	replicas := make([]int, t.Len())
	for i := range replicas {
		replicas[i] = 1
	}
	for round := 0; round <= opts.MaxRounds; round++ {
		roundCfg := s.simConfig(round + 1)
		roundCfg.Horizon = opts.Interval
		roundCfg.Warmup = opts.Interval / 4
		sim, err := qsim.SimulateTopology(t, replicas, roundCfg)
		if err != nil {
			return nil, err
		}
		total := 0
		for _, n := range replicas {
			total += n
		}
		res.Steps = append(res.Steps, ElasticStep{
			Round:         round,
			TotalReplicas: total,
			Throughput:    sim.Throughput,
		})
		res.ElasticThroughput = sim.Throughput
		res.ElasticReplicas = total

		// Scale every saturated replicable operator by one replica.
		hot := map[core.OpID]bool{}
		for _, st := range sim.Stations {
			if st.Role != plan.RoleWorker && st.Role != plan.RoleSource {
				continue
			}
			op := t.Op(st.Op)
			if op.Kind.CanReplicate() && st.BusyFrac >= opts.HighWatermark {
				hot[st.Op] = true
			}
		}
		if len(hot) == 0 {
			break
		}
		for id := range hot {
			replicas[id]++
		}
		res.Reconfigurations++
	}
	return res, nil
}

// String renders the comparison.
func (r *ElasticityResult) String() string {
	var b strings.Builder
	b.WriteString("Static one-shot optimization vs reactive elasticity\n")
	fmt.Fprintf(&b, "static: %d replicas, %.1f t/s, 0 reconfigurations\n",
		r.StaticReplicas, r.StaticThroughput)
	b.WriteString("reactive rounds:\n  round  replicas  throughput(t/s)\n")
	for _, s := range r.Steps {
		fmt.Fprintf(&b, "  %5d  %8d  %15.1f\n", s.Round, s.TotalReplicas, s.Throughput)
	}
	fmt.Fprintf(&b, "reactive: %d replicas, %.1f t/s after %d reconfigurations (~%.0f s of adaptation)\n",
		r.ElasticReplicas, r.ElasticThroughput, r.Reconfigurations,
		float64(r.Reconfigurations)*r.IntervalSeconds)
	ratio := 0.0
	if r.StaticThroughput > 0 {
		ratio = r.ElasticThroughput / r.StaticThroughput
	}
	fmt.Fprintf(&b, "reactive/static throughput ratio: %.2f\n", ratio)
	return b.String()
}

// Header implements Tabular.
func (r *ElasticityResult) Header() []string {
	return []string{"round", "replicas", "throughput"}
}

// TableRows implements Tabular.
func (r *ElasticityResult) TableRows() [][]string {
	rows := make([][]string, 0, len(r.Steps))
	for _, s := range r.Steps {
		rows = append(rows, []string{d(s.Round), d(s.TotalReplicas), f(s.Throughput)})
	}
	return rows
}
