package experiments

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"strings"

	"spinstreams/internal/core"
	"spinstreams/internal/plan"
	"spinstreams/internal/qsim"
	"spinstreams/internal/randtopo"
	"spinstreams/internal/stats"
)

// CorpusOptions tunes the Section 5 corpus runner.
type CorpusOptions struct {
	// Topologies is the corpus size (paper: 50).
	Topologies int
	// Workloads selects the traffic shapes (default steady, bursty,
	// diurnal, hotkey; see WorkloadByName).
	Workloads []string
	// Modes selects the optimization modes (default unopt, static,
	// autotune).
	Modes []string
	// Rounds bounds the autotune hill-climb (default 8 measurement
	// rounds beyond the initial deployment).
	Rounds int
	// Horizon is the simulated seconds per measurement (default 12; the
	// full-accuracy figures use 40, the corpus trades some variance for
	// a 3x larger scenario matrix).
	Horizon float64
}

func (o CorpusOptions) withDefaults() CorpusOptions {
	if o.Topologies <= 0 {
		o.Topologies = 50
	}
	if len(o.Workloads) == 0 {
		o.Workloads = []string{"steady", "bursty", "diurnal", "hotkey"}
	}
	if len(o.Modes) == 0 {
		o.Modes = []string{"unopt", "static", "autotune"}
	}
	if o.Rounds <= 0 {
		o.Rounds = 8
	}
	if o.Horizon <= 0 {
		o.Horizon = 12
	}
	return o
}

// CorpusRow is one (topology, workload, mode) measurement.
type CorpusRow struct {
	// Topology is the 1-based corpus index; Seed regenerates the exact
	// instance and Fingerprint (core.Topology.Fingerprint, hex) makes
	// reruns comparable without regenerating.
	Topology    int
	Seed        uint64
	Fingerprint string
	Operators   int
	Edges       int
	Workload    string
	// Mode is unopt (1 replica everywhere), static (Algorithm 2 on the
	// declared profiles) or autotune (measure/rescale feedback loop on
	// the deployed reality).
	Mode string
	// Replicas counts deployed worker stations (after any keypart
	// consolidation), the cost side of the comparison.
	Replicas int
	// Rounds is the number of adaptation measurements autotune consumed
	// (0 for the one-shot modes).
	Rounds int
	// Predicted is the model's throughput for this deployment under the
	// workload (PredictThroughput); Measured is the simulated one.
	Predicted float64
	Measured  float64
	RelErr    float64
	// VsStatic is Measured divided by the static mode's Measured for the
	// same topology and workload — the static-vs-autotune (and
	// static-vs-unopt) comparison column. 1 on the static rows.
	VsStatic float64
}

// CorpusWorkloadSummary aggregates one workload across the corpus.
type CorpusWorkloadSummary struct {
	Workload string
	// StaticGEUnopt is the fraction of topologies where the statically
	// optimized deployment is at least as fast as the unoptimized one
	// (within 2% simulation noise) — the paper's ordering.
	StaticGEUnopt float64
	// AutotuneVsStatic is the mean autotune/static measured-throughput
	// ratio; AutotuneReplicaRatio the mean autotune/static replica-count
	// ratio (the elasticity cost axis).
	AutotuneVsStatic     float64
	AutotuneReplicaRatio float64
	// ModelErr is the mean |measured-predicted| relative error across
	// all modes of this workload.
	ModelErr float64
}

// CorpusResult is the full corpus run.
type CorpusResult struct {
	Options   CorpusOptions
	TestSeed  uint64
	Rows      []CorpusRow
	Summaries []CorpusWorkloadSummary
}

// corpusSeed derives a deterministic sub-seed from the run seed and a
// label, so every simulation is independently seeded yet reproducible.
func corpusSeed(base uint64, label string) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%s", base, label)
	return h.Sum64()
}

// countWorkers counts deployed worker stations — the replica cost of a
// configuration after any keypart consolidation.
func countWorkers(r *qsim.Result) int {
	n := 0
	for _, st := range r.Stations {
		if st.Role == plan.RoleWorker {
			n++
		}
	}
	return n
}

// Corpus reproduces the paper's Section 5 testbed at scale: every seeded
// Algorithm 5 topology runs under every workload shape in every
// optimization mode, on the deterministic simulator.
func Corpus(ctx context.Context, s Setup, opts CorpusOptions) (*CorpusResult, error) {
	s = s.withDefaults()
	opts = opts.withDefaults()
	cfg := s.Topo
	if cfg.Seed == 0 {
		cfg.Seed = s.Seed
	}
	bed, err := randtopo.Testbed(cfg, opts.Topologies)
	if err != nil {
		return nil, fmt.Errorf("corpus: %w", err)
	}
	workloads := make([]Workload, 0, len(opts.Workloads))
	for _, name := range opts.Workloads {
		w, err := WorkloadByName(name)
		if err != nil {
			return nil, fmt.Errorf("corpus: %w", err)
		}
		workloads = append(workloads, w)
	}
	for _, m := range opts.Modes {
		switch m {
		case "unopt", "static", "autotune":
		default:
			return nil, fmt.Errorf("corpus: unknown mode %q (have unopt, static, autotune)", m)
		}
	}

	res := &CorpusResult{Options: opts, TestSeed: s.Seed}
	for ti, g := range bed {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		declared := g.Topology
		fp := fmt.Sprintf("%016x", declared.Fingerprint())
		staticReplicas, err := staticPlan(declared)
		if err != nil {
			return nil, fmt.Errorf("corpus topology %d: %w", ti+1, err)
		}
		for _, w := range workloads {
			deployed := w.Apply(declared)
			simCfg := func(label string) qsim.Config {
				c := s.Sim
				c.Horizon = opts.Horizon
				c.Warmup = 0 // withDefaults picks Horizon/4
				c.Seed = corpusSeed(s.Seed, fmt.Sprintf("t%d|%s|%s", ti+1, w.Name, label))
				c.RateEnvelope = w.Envelope
				return c
			}
			measured := map[string]float64{}
			for _, mode := range opts.Modes {
				var (
					replicas []int
					rounds   int
					sim      *qsim.Result
				)
				switch mode {
				case "unopt":
					sim, err = qsim.SimulateTopology(deployed, nil, simCfg("unopt"))
				case "static":
					// The static tool plans on the declared profiles; the
					// workload's reality (skewed keys, modulated rates) is
					// invisible to it.
					replicas = staticReplicas
					sim, err = qsim.SimulateTopology(deployed, replicas, simCfg("static"))
				case "autotune":
					replicas, rounds, sim, err = autotuneCorpus(deployed, w, simCfg, opts.Rounds)
				}
				if err != nil {
					return nil, fmt.Errorf("corpus topology %d %s/%s: %w", ti+1, w.Name, mode, err)
				}
				predicted, err := PredictThroughput(declared, replicas, w, simCfg("predict"))
				if err != nil {
					return nil, fmt.Errorf("corpus topology %d %s/%s predict: %w", ti+1, w.Name, mode, err)
				}
				res.Rows = append(res.Rows, CorpusRow{
					Topology:    ti + 1,
					Seed:        g.Seed,
					Fingerprint: fp,
					Operators:   declared.Len(),
					Edges:       declared.NumEdges(),
					Workload:    w.Name,
					Mode:        mode,
					Replicas:    countWorkers(sim),
					Rounds:      rounds,
					Predicted:   predicted,
					Measured:    sim.Throughput,
					RelErr:      stats.RelErr(sim.Throughput, predicted),
				})
				measured[mode] = sim.Throughput
			}
			// Fill the comparison column once the static reference exists.
			if ref, ok := measured["static"]; ok && ref > 0 {
				for i := len(res.Rows) - 1; i >= 0; i-- {
					row := &res.Rows[i]
					if row.Topology != ti+1 || row.Workload != w.Name {
						break
					}
					row.VsStatic = row.Measured / ref
				}
			}
		}
	}
	res.summarize()
	return res, nil
}

// staticPlan is the paper's one-shot static optimization: Algorithm 2 on
// the declared profiles.
func staticPlan(declared *core.Topology) ([]int, error) {
	fis, err := core.EliminateBottlenecks(declared, core.FissionOptions{})
	if err != nil {
		return nil, err
	}
	return fis.Analysis.Replicas, nil
}

// autotuneCorpus is the simulated analogue of the live
// runtime.Controller.Autotune loop: deploy with one replica everywhere,
// measure a window, scale up saturated replicable operators and release
// idle replicas, and keep a change only if the next window does not
// regress — a deterministic hill-climb on measured busy fractions that
// sees the deployed reality (hot keys, modulated arrivals) the static
// planner cannot.
func autotuneCorpus(deployed *core.Topology, w Workload, simCfg func(string) qsim.Config, rounds int) ([]int, int, *qsim.Result, error) {
	n := deployed.Len()
	cur := make([]int, n)
	for i := range cur {
		cur[i] = 1
	}
	curSim, err := qsim.SimulateTopology(deployed, cur, simCfg("autotune0"))
	if err != nil {
		return nil, 0, nil, err
	}
	used := 1
	frozen := make([]bool, n)
	const (
		saturated     = 0.95 // backpressure hides true demand: double
		highWatermark = 0.85
		lowWatermark  = 0.30
		target        = 0.7 // per-replica utilization the sizing aims at
		maxReplicas   = 64
	)
	for r := 1; r <= rounds; r++ {
		// Per-operator replica saturation: the busiest worker of the
		// operator (emitters/collectors pace routing, not service).
		busy := make([]float64, n)
		for _, st := range curSim.Stations {
			if st.Role != plan.RoleWorker {
				continue
			}
			if st.BusyFrac > busy[st.Op] {
				busy[st.Op] = st.BusyFrac
			}
		}
		next := append([]int(nil), cur...)
		var touched []int
		for i := 0; i < n; i++ {
			op := deployed.Op(core.OpID(i))
			if frozen[i] || op.Kind == core.KindSource || !op.Kind.CanReplicate() {
				continue
			}
			sized := int(math.Ceil(float64(cur[i]) * busy[i] / target))
			switch {
			case busy[i] >= saturated:
				// A saturated replica set measures busy ~= 1 whatever the
				// real demand, so grow multiplicatively (slow-start) until
				// a measurement shows headroom.
				next[i] = cur[i] * 2
			case busy[i] >= highWatermark && sized > cur[i]:
				next[i] = sized
			case busy[i] <= lowWatermark && cur[i] > 1:
				if sized < 1 {
					sized = 1
				}
				next[i] = sized
			}
			if next[i] > maxReplicas {
				next[i] = maxReplicas
			}
			if next[i] != cur[i] {
				touched = append(touched, i)
			}
		}
		if len(touched) == 0 {
			break
		}
		nextSim, err := qsim.SimulateTopology(deployed, next, simCfg(fmt.Sprintf("autotune%d", r)))
		if err != nil {
			return nil, 0, nil, err
		}
		used++
		if nextSim.Throughput >= curSim.Throughput*0.99 {
			cur, curSim = next, nextSim
		} else {
			// The change regressed (typically a pmax-bound hot key that
			// extra replicas cannot help): keep the old configuration and
			// stop touching those operators.
			for _, i := range touched {
				frozen[i] = true
			}
		}
	}
	return cur, used, curSim, nil
}

// summarize fills the per-workload aggregates from the rows.
func (r *CorpusResult) summarize() {
	type acc struct {
		topos                        map[int][3]float64 // mode -> throughput (unopt, static, autotune)
		modelErrSum                  float64
		modelErrN                    int
		replicasStatic, replicasAuto map[int]int
	}
	index := map[string]int{"unopt": 0, "static": 1, "autotune": 2}
	accs := map[string]*acc{}
	order := []string{}
	for _, row := range r.Rows {
		a, ok := accs[row.Workload]
		if !ok {
			a = &acc{topos: map[int][3]float64{}, replicasStatic: map[int]int{}, replicasAuto: map[int]int{}}
			accs[row.Workload] = a
			order = append(order, row.Workload)
		}
		t := a.topos[row.Topology]
		t[index[row.Mode]] = row.Measured
		a.topos[row.Topology] = t
		a.modelErrSum += row.RelErr
		a.modelErrN++
		switch row.Mode {
		case "static":
			a.replicasStatic[row.Topology] = row.Replicas
		case "autotune":
			a.replicasAuto[row.Topology] = row.Replicas
		}
	}
	for _, w := range order {
		a := accs[w]
		sum := CorpusWorkloadSummary{Workload: w}
		nOrder, nRatio, nReps := 0, 0, 0
		var ratioSum, repsSum float64
		for topo := 1; topo <= len(a.topos); topo++ {
			t, ok := a.topos[topo]
			if !ok {
				continue
			}
			unopt, static, auto := t[0], t[1], t[2]
			if unopt > 0 && static > 0 {
				nOrder++
				if static >= unopt*0.98 {
					sum.StaticGEUnopt++
				}
			}
			if static > 0 && auto > 0 {
				nRatio++
				ratioSum += auto / static
			}
			if rs, ra := a.replicasStatic[topo], a.replicasAuto[topo]; rs > 0 && ra > 0 {
				nReps++
				repsSum += float64(ra) / float64(rs)
			}
		}
		if nOrder > 0 {
			sum.StaticGEUnopt /= float64(nOrder)
		}
		if nRatio > 0 {
			sum.AutotuneVsStatic = ratioSum / float64(nRatio)
		}
		if nReps > 0 {
			sum.AutotuneReplicaRatio = repsSum / float64(nReps)
		}
		if a.modelErrN > 0 {
			sum.ModelErr = a.modelErrSum / float64(a.modelErrN)
		}
		r.Summaries = append(r.Summaries, sum)
	}
}

// String renders the corpus aggregates (the full matrix goes to CSV/JSON).
func (r *CorpusResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section 5 corpus — %d topologies x %d workloads x %d modes (seed %d, horizon %.0fs)\n",
		r.Options.Topologies, len(r.Options.Workloads), len(r.Options.Modes), r.TestSeed, r.Options.Horizon)
	b.WriteString("workload  static>=unopt  autotune/static(tps)  autotune/static(replicas)  model-err\n")
	for _, s := range r.Summaries {
		fmt.Fprintf(&b, "%-8s  %12.0f%%  %20.3f  %25.3f  %8.2f%%\n",
			s.Workload, s.StaticGEUnopt*100, s.AutotuneVsStatic, s.AutotuneReplicaRatio, s.ModelErr*100)
	}
	fmt.Fprintf(&b, "%d result rows\n", len(r.Rows))
	return b.String()
}

// Header implements Tabular.
func (r *CorpusResult) Header() []string {
	return []string{"topology", "seed", "fingerprint", "operators", "edges", "workload",
		"mode", "replicas", "rounds", "predicted", "measured", "rel_err", "vs_static"}
}

// TableRows implements Tabular.
func (r *CorpusResult) TableRows() [][]string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			d(row.Topology), fmt.Sprintf("%d", row.Seed), row.Fingerprint,
			d(row.Operators), d(row.Edges), row.Workload, row.Mode,
			d(row.Replicas), d(row.Rounds), f(row.Predicted), f(row.Measured),
			f(row.RelErr), f(row.VsStatic),
		})
	}
	return rows
}

// CheckCorpus asserts the paper's ordering on the corpus result: on the
// steady workload the statically optimized deployment must be at least
// as fast as the unoptimized one on >= 80% of the topologies, and every
// measurement must be live.
func CheckCorpus(res Result) error {
	r, ok := res.(*CorpusResult)
	if !ok {
		return fmt.Errorf("corpus check: unexpected result type %T", res)
	}
	for _, row := range r.Rows {
		if row.Measured <= 0 {
			return fmt.Errorf("corpus check: topology %d %s/%s measured no throughput",
				row.Topology, row.Workload, row.Mode)
		}
	}
	for _, s := range r.Summaries {
		if s.Workload == "steady" && s.StaticGEUnopt < 0.8 {
			return fmt.Errorf("corpus check: static >= unopt on only %.0f%% of steady topologies, want >= 80%%",
				s.StaticGEUnopt*100)
		}
	}
	return nil
}
