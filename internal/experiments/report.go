package experiments

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Tabular is implemented by experiment results that can export their data
// series as a table, for CSV output and downstream plotting.
type Tabular interface {
	// Header returns the column names.
	Header() []string
	// TableRows returns the data rows, stringified.
	TableRows() [][]string
}

// WriteCSV exports any tabular result.
func WriteCSV(w io.Writer, t Tabular) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Header()); err != nil {
		return fmt.Errorf("csv: %w", err)
	}
	if err := cw.WriteAll(t.TableRows()); err != nil {
		return fmt.Errorf("csv: %w", err)
	}
	cw.Flush()
	return cw.Error()
}

// RunMeta annotates an exported result. GeneratedAt and ElapsedSeconds
// are the only timing fields: the corpus determinism test zeroes them and
// requires the remaining bytes to be identical across reruns.
type RunMeta struct {
	Scenario       string  `json:"scenario"`
	Seed           uint64  `json:"seed"`
	GeneratedAt    string  `json:"generated_at,omitempty"`
	ElapsedSeconds float64 `json:"elapsed_seconds,omitempty"`
}

// JSONReport is the on-disk JSON schema: run metadata plus the same
// header/rows series the CSV export carries, in the same deterministic
// order (rows come from Tabular implementations that iterate slices, never
// maps).
type JSONReport struct {
	Meta   RunMeta    `json:"meta"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// WriteJSON exports any tabular result as an indented JSON report.
func WriteJSON(w io.Writer, meta RunMeta, t Tabular) error {
	rep := JSONReport{Meta: meta, Header: t.Header(), Rows: t.TableRows()}
	if rep.Rows == nil {
		rep.Rows = [][]string{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

func f(x float64) string { return strconv.FormatFloat(x, 'g', 6, 64) }
func d(x int) string     { return strconv.Itoa(x) }

// Header implements Tabular.
func (r *Fig7Result) Header() []string {
	return []string{"topology", "operators", "predicted", "measured", "rel_err"}
}

// TableRows implements Tabular.
func (r *Fig7Result) TableRows() [][]string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			d(row.Topology), d(row.Operators), f(row.Predicted), f(row.Measured), f(row.RelErr),
		})
	}
	return rows
}

// Header implements Tabular.
func (r *Fig8Result) Header() []string { return []string{"operator", "rel_err"} }

// TableRows implements Tabular.
func (r *Fig8Result) TableRows() [][]string {
	rows := make([][]string, 0, len(r.Errors))
	for i, e := range r.Errors {
		rows = append(rows, []string{d(i + 1), f(e)})
	}
	return rows
}

// Header implements Tabular.
func (r *Fig9Result) Header() []string {
	return []string{"topology", "operators", "additional_replicas", "predicted", "measured",
		"rel_err", "ideal", "stateful_blocked", "skew_blocked"}
}

// TableRows implements Tabular.
func (r *Fig9Result) TableRows() [][]string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			d(row.Topology), d(row.Operators), d(row.AdditionalReplicas),
			f(row.Predicted), f(row.Measured), f(row.RelErr),
			strconv.FormatBool(row.Ideal), strconv.FormatBool(row.StatefulBlocked),
			strconv.FormatBool(row.SkewBlocked),
		})
	}
	return rows
}

// Header implements Tabular.
func (r *Fig10Result) Header() []string {
	return []string{"topology", "bound", "replicas", "predicted", "measured"}
}

// TableRows implements Tabular.
func (r *Fig10Result) TableRows() [][]string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		bound := "original"
		switch {
		case row.Bound > 0:
			bound = d(row.Bound)
		case row.Bound < 0:
			bound = "unbounded"
		}
		rows = append(rows, []string{
			d(row.Topology), bound, d(row.Replicas), f(row.Predicted), f(row.Measured),
		})
	}
	return rows
}

// Header implements Tabular.
func (r *TableResult) Header() []string {
	return []string{"phase", "operator", "mu_inv_ms", "delta_inv_ms", "rho"}
}

// TableRows implements Tabular.
func (r *TableResult) TableRows() [][]string {
	var rows [][]string
	add := func(phase string, trs []TableRow) {
		for _, tr := range trs {
			rows = append(rows, []string{phase, tr.Name, f(tr.MuInv), f(tr.DeltaInv), f(tr.Rho)})
		}
	}
	add("before", r.Before)
	add("after", r.After)
	return rows
}

// Header implements Tabular.
func (r *KeyPartResult) Header() []string {
	return []string{"zipf_exp", "greedy_pmax", "hash_pmax", "greedy_replicas", "hash_replicas", "ideal_pmax"}
}

// TableRows implements Tabular.
func (r *KeyPartResult) TableRows() [][]string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			f(row.ZipfExp), f(row.GreedyPMax), f(row.HashPMax),
			d(row.GreedyReps), d(row.HashReps), f(row.IdealPMax),
		})
	}
	return rows
}

// Header implements Tabular.
func (r *BufferResult) Header() []string { return []string{"capacity", "throughput", "rel_err"} }

// TableRows implements Tabular.
func (r *BufferResult) TableRows() [][]string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{d(row.Capacity), f(row.Throughput), f(row.RelErr)})
	}
	return rows
}

// Header implements Tabular.
func (r *LatencyResult) Header() []string {
	return []string{"rho", "predicted_wait", "measured_wait", "rel_err"}
}

// TableRows implements Tabular.
func (r *LatencyResult) TableRows() [][]string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{f(row.Rho), f(row.PredictedWait), f(row.MeasuredWait), f(row.RelErr)})
	}
	return rows
}

// Header implements Tabular.
func (r *LiveResult) Header() []string {
	return []string{"topology", "operators", "predicted", "measured", "rel_err"}
}

// TableRows implements Tabular.
func (r *LiveResult) TableRows() [][]string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			d(row.Topology), d(row.Operators), f(row.Predicted), f(row.Measured), f(row.RelErr),
		})
	}
	return rows
}
