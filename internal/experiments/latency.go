package experiments

import (
	"fmt"
	"strings"

	"spinstreams/internal/core"
	"spinstreams/internal/qsim"
	"spinstreams/internal/stats"
)

// LatencyRow compares predicted and measured queueing delay at one load
// level.
type LatencyRow struct {
	Rho           float64
	PredictedWait float64
	MeasuredWait  float64
	RelErr        float64
}

// LatencyResult is the latency-model validation (an extension beyond the
// paper, which models throughput only): M/M/1 waiting times layered on the
// backpressure-corrected rates, checked against the simulator's measured
// mailbox delays across a load sweep.
type LatencyResult struct {
	Rows []LatencyRow
	// SaturatedWait is the measured wait at a saturated stage with the
	// given mailbox capacity, next to the buffer-bound prediction.
	BufferCapacity         int
	SaturatedPredictedWait float64
	SaturatedMeasuredWait  float64
}

// Latency sweeps the utilization of a middle stage and compares waiting
// times; then saturates the stage to validate the buffer-bound regime.
func Latency(s Setup, rhos []float64) (*LatencyResult, error) {
	s = s.withDefaults()
	if len(rhos) == 0 {
		rhos = []float64{0.2, 0.4, 0.6, 0.8}
	}
	const (
		mu       = 1000.0 // middle stage capacity, items/s
		capacity = 64
	)
	res := &LatencyResult{BufferCapacity: capacity}
	for i, rho := range rhos {
		topo := core.NewTopology()
		src := topo.MustAddOperator(core.Operator{
			Name: "src", Kind: core.KindSource, ServiceTime: 1 / (mu * rho),
		})
		mid := topo.MustAddOperator(core.Operator{
			Name: "mid", Kind: core.KindStateless, ServiceTime: 1 / mu,
		})
		sink := topo.MustAddOperator(core.Operator{
			Name: "sink", Kind: core.KindSink, ServiceTime: 0.2 / mu,
		})
		topo.MustConnect(src, mid, 1)
		topo.MustConnect(mid, sink, 1)

		est, err := core.EstimateLatency(topo, nil, core.MM1, capacity)
		if err != nil {
			return nil, err
		}
		cfg := s.simConfig(i)
		cfg.BufferSize = capacity
		if cfg.Horizon < 60 {
			cfg.Horizon = 60 // waiting times need longer averaging
		}
		sim, err := qsim.SimulateTopology(topo, nil, cfg)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, LatencyRow{
			Rho:           rho,
			PredictedWait: est.Wait[mid],
			MeasuredWait:  sim.Wait[mid],
			RelErr:        stats.RelErr(sim.Wait[mid], est.Wait[mid]),
		})
	}

	// Saturated regime: source twice as fast as the stage.
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 0.5 / mu})
	mid := topo.MustAddOperator(core.Operator{Name: "mid", Kind: core.KindStateful, ServiceTime: 1 / mu})
	sink := topo.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.2 / mu})
	topo.MustConnect(src, mid, 1)
	topo.MustConnect(mid, sink, 1)
	est, err := core.EstimateLatency(topo, nil, core.MM1, capacity)
	if err != nil {
		return nil, err
	}
	cfg := s.simConfig(99)
	cfg.BufferSize = capacity
	sim, err := qsim.SimulateTopology(topo, nil, cfg)
	if err != nil {
		return nil, err
	}
	res.SaturatedPredictedWait = est.Wait[mid]
	res.SaturatedMeasuredWait = sim.Wait[mid]
	return res, nil
}

// String renders the sweep.
func (r *LatencyResult) String() string {
	var b strings.Builder
	b.WriteString("Latency extension — M/M/1-on-steady-state vs simulation\n")
	b.WriteString("rho   predicted-wait(ms)  measured-wait(ms)  rel.err\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%.2f  %18.3f  %17.3f  %6.1f%%\n",
			row.Rho, row.PredictedWait*1e3, row.MeasuredWait*1e3, row.RelErr*100)
	}
	fmt.Fprintf(&b, "saturated stage (capacity %d): predicted %.1f ms, measured %.1f ms\n",
		r.BufferCapacity, r.SaturatedPredictedWait*1e3, r.SaturatedMeasuredWait*1e3)
	return b.String()
}
