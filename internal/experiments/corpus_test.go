package experiments

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"spinstreams/internal/core"
	"spinstreams/internal/qsim"
	"spinstreams/internal/randtopo"
)

// corpusTestOptions is a corpus slice small enough for unit tests but
// covering every workload and mode.
func corpusTestOptions() CorpusOptions {
	return CorpusOptions{Topologies: 3, Horizon: 5, Rounds: 3}
}

func TestCorpusSmoke(t *testing.T) {
	s := Setup{Seed: 42}
	opts := corpusTestOptions()
	res, err := Corpus(context.Background(), s, opts)
	if err != nil {
		t.Fatal(err)
	}
	wantRows := opts.Topologies * 4 * 3 // workloads x modes
	if len(res.Rows) != wantRows {
		t.Fatalf("rows = %d, want %d", len(res.Rows), wantRows)
	}
	if err := CheckCorpus(res); err != nil {
		t.Fatalf("corpus check: %v", err)
	}
	for _, row := range res.Rows {
		if len(row.Fingerprint) != 16 {
			t.Fatalf("row %+v: fingerprint %q not 16 hex chars", row, row.Fingerprint)
		}
		if row.Seed == 0 {
			t.Fatalf("row %+v: zero topology seed", row)
		}
		if row.Replicas < row.Operators-1 {
			t.Fatalf("row %+v: fewer worker stations than operators", row)
		}
		if row.Mode == "autotune" && row.Rounds == 0 {
			t.Fatalf("row %+v: autotune consumed no measurement rounds", row)
		}
		if row.VsStatic <= 0 {
			t.Fatalf("row %+v: missing static comparison column", row)
		}
	}
	if len(res.Summaries) != 4 {
		t.Fatalf("summaries = %d, want one per workload", len(res.Summaries))
	}
	// The fingerprints must match regenerating the same testbed.
	bed, err := randtopo.Testbed(randtopo.Config{Seed: 42}, opts.Topologies)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range res.Rows {
		want := fmt.Sprintf("%016x", bed[row.Topology-1].Topology.Fingerprint())
		if row.Fingerprint != want {
			t.Fatalf("topology %d fingerprint %s, regenerated %s", row.Topology, row.Fingerprint, want)
		}
	}
}

// TestCorpusDeterministic is the differential test pinning the corpus
// export byte for byte: the same seed and config must produce identical
// JSON reports once the timing fields in the metadata are held fixed —
// any nondeterministic map iteration in the registry, runner or reporters
// breaks this.
func TestCorpusDeterministic(t *testing.T) {
	render := func() []byte {
		res, err := Corpus(context.Background(), Setup{Seed: 7}, corpusTestOptions())
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		// Timing fields zeroed: everything else must be reproducible.
		if err := WriteJSON(&buf, RunMeta{Scenario: "corpus", Seed: 7}, res); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := render(), render()
	if !bytes.Equal(a, b) {
		t.Fatalf("same seed and config produced different JSON reports:\n--- a ---\n%s\n--- b ---\n%s", a, b)
	}
}

func TestCorpusRejectsUnknownInputs(t *testing.T) {
	if _, err := Corpus(context.Background(), Setup{Seed: 1}, CorpusOptions{
		Topologies: 1, Workloads: []string{"nope"},
	}); err == nil {
		t.Error("unknown workload accepted")
	}
	if _, err := Corpus(context.Background(), Setup{Seed: 1}, CorpusOptions{
		Topologies: 1, Modes: []string{"nope"},
	}); err == nil {
		t.Error("unknown mode accepted")
	}
}

// TestCorpusStaticOrdering asserts the paper's headline result holds on a
// larger slice: statically optimized throughput at least matches the
// unoptimized deployment on >= 80% of topologies under steady load.
func TestCorpusStaticOrdering(t *testing.T) {
	res, err := Corpus(context.Background(), Setup{Seed: 42}, CorpusOptions{
		Topologies: 8, Workloads: []string{"steady"}, Horizon: 6, Rounds: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckCorpus(res); err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Summaries {
		if s.Workload == "steady" && s.StaticGEUnopt < 0.8 {
			t.Fatalf("static >= unopt on only %.0f%% of steady topologies", s.StaticGEUnopt*100)
		}
	}
}

// TestPredictThroughputMatchesSimulation validates the workload
// generators against the queueing model in the regime where it applies:
// measurement windows long against the envelope period. The fluid
// bottleneck-queue approximation tracks steady and diurnal shapes
// closely; bursty on/off arrival (near-zero troughs, queue races) gets a
// loose bound — the corpus records its error rather than hiding it.
func TestPredictThroughputMatchesSimulation(t *testing.T) {
	bed, err := randtopo.Testbed(randtopo.Config{Seed: 42}, 3)
	if err != nil {
		t.Fatal(err)
	}
	tolerance := map[string]float64{"steady": 0.15, "hotkey": 0.20, "diurnal": 0.30, "bursty": 0.60}
	for ti, g := range bed {
		for name, tol := range tolerance {
			w, err := WorkloadByName(name)
			if err != nil {
				t.Fatal(err)
			}
			cfg := qsim.Config{Seed: uint64(1000*ti + len(name)), Horizon: 10, RateEnvelope: w.Envelope}
			deployed := w.Apply(g.Topology)
			sim, err := qsim.SimulateTopology(deployed, nil, cfg)
			if err != nil {
				t.Fatalf("topology %d %s: %v", ti+1, name, err)
			}
			pred, err := PredictThroughput(g.Topology, nil, w, cfg)
			if err != nil {
				t.Fatalf("topology %d %s: %v", ti+1, name, err)
			}
			if sim.Throughput <= 0 || pred <= 0 {
				t.Fatalf("topology %d %s: dead measurement sim=%v pred=%v", ti+1, name, sim.Throughput, pred)
			}
			relErr := (pred - sim.Throughput) / sim.Throughput
			if relErr < 0 {
				relErr = -relErr
			}
			if relErr > tol {
				t.Errorf("topology %d %s: predicted %.1f measured %.1f (err %.0f%% > %.0f%%)",
					ti+1, name, pred, sim.Throughput, relErr*100, tol*100)
			}
		}
	}
}

func TestWorkloadEnvelopesAverageToOne(t *testing.T) {
	for _, name := range []string{"bursty", "diurnal"} {
		w, err := WorkloadByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if mean := w.MeanEnvelope(0, 40); mean < 0.9 || mean > 1.1 {
			t.Errorf("%s: envelope mean %.3f over 40s, want ~1 (comparable offered load)", name, mean)
		}
	}
}

func TestWorkloadHotKeyApply(t *testing.T) {
	bed, err := randtopo.Testbed(randtopo.Config{Seed: 42}, 1)
	if err != nil {
		t.Fatal(err)
	}
	declared := bed[0].Topology
	w, err := WorkloadByName("hotkey")
	if err != nil {
		t.Fatal(err)
	}
	deployed := w.Apply(declared)
	if deployed == declared {
		t.Fatal("hotkey Apply returned the declared topology unchanged")
	}
	rewritten := 0
	for i := 0; i < declared.Len(); i++ {
		dop, sop := deployed.Op(core.OpID(i)), declared.Op(core.OpID(i))
		if sop.Keys == nil || len(sop.Keys.Freq) < 2 {
			continue
		}
		rewritten++
		if dop.Keys.Freq[0] <= 0.5 {
			t.Errorf("op %d: deployed hot-key share %.2f, want > 0.5", i, dop.Keys.Freq[0])
		}
		if sop.Keys.Freq[0] > 0.5 {
			t.Errorf("op %d: declared distribution was mutated", i)
		}
	}
	if rewritten == 0 {
		t.Skip("testbed entry has no partitioned-stateful operators")
	}
}
