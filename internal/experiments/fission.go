package experiments

import (
	"fmt"
	"strings"

	"spinstreams/internal/core"
	"spinstreams/internal/qsim"
	"spinstreams/internal/stats"
)

// Fig9Row is one topology's bottleneck-elimination outcome (Figure 9a/9b).
type Fig9Row struct {
	Topology           int
	Operators          int
	AdditionalReplicas int
	Predicted          float64
	Measured           float64
	RelErr             float64
	// Ideal reports whether the parallelized topology reaches the
	// source's generation rate (all bottlenecks removed).
	Ideal bool
	// StatefulBlocked reports that a non-replicable stateful operator
	// still limits throughput.
	StatefulBlocked bool
	// SkewBlocked reports that a partitioned-stateful operator remains a
	// bottleneck because its key skew prevents an even split (the paper's
	// "mitigated but not removed" case).
	SkewBlocked bool
}

// Fig9Result reproduces Figures 9a and 9b: the parallelism added by the
// bottleneck-elimination phase and the model accuracy on the parallelized
// topologies. The paper reaches ideal throughput on 43/50 topologies, with
// 7 blocked by stateful operators.
type Fig9Result struct {
	Rows            []Fig9Row
	Ideal           int
	StatefulBlocked int
	SkewBlocked     int
	ErrStat         stats.Summary
}

// Fig9 runs Algorithm 2 on the testbed and simulates the parallelized
// topologies.
func Fig9(s Setup) (*Fig9Result, error) {
	s = s.withDefaults()
	bed, err := buildTestbed(s)
	if err != nil {
		return nil, err
	}
	res := &Fig9Result{}
	errs := make([]float64, 0, len(bed))
	for i, g := range bed {
		fis, err := core.EliminateBottlenecks(g.Topology, core.FissionOptions{})
		if err != nil {
			return nil, fmt.Errorf("fig9 topology %d: %w", i+1, err)
		}
		sim, err := qsim.SimulateTopology(g.Topology, fis.Analysis.Replicas, s.simConfig(i))
		if err != nil {
			return nil, fmt.Errorf("fig9 topology %d: %w", i+1, err)
		}
		srcRate := g.Topology.Op(g.Topology.Source()).Rate()
		row := Fig9Row{
			Topology:           i + 1,
			Operators:          g.Topology.Len(),
			AdditionalReplicas: fis.AdditionalReplicas,
			Predicted:          fis.Analysis.Throughput(),
			Measured:           sim.Throughput,
			RelErr:             stats.RelErr(sim.Throughput, fis.Analysis.Throughput()),
			Ideal:              fis.Analysis.Throughput() >= 0.999*srcRate,
		}
		for _, u := range fis.Unresolved {
			if g.Topology.Op(u).Kind.CanReplicate() {
				row.SkewBlocked = true
			} else {
				row.StatefulBlocked = true
			}
		}
		if row.Ideal {
			res.Ideal++
		}
		if row.StatefulBlocked {
			res.StatefulBlocked++
		}
		if row.SkewBlocked {
			res.SkewBlocked++
		}
		res.Rows = append(res.Rows, row)
		errs = append(errs, row.RelErr)
	}
	res.ErrStat = stats.Summarize(errs)
	return res, nil
}

// String renders the Figure 9 series.
func (r *Fig9Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 9 — bottleneck elimination (per topology)\n")
	b.WriteString("topology  ops  add.replicas  predicted(t/s)  measured(t/s)  rel.err  ideal  stateful-blocked\n")
	for _, row := range r.Rows {
		blocked := "-"
		switch {
		case row.StatefulBlocked && row.SkewBlocked:
			blocked = "stateful+skew"
		case row.StatefulBlocked:
			blocked = "stateful"
		case row.SkewBlocked:
			blocked = "key-skew"
		}
		fmt.Fprintf(&b, "%8d  %3d  %12d  %14.1f  %13.1f  %6.2f%%  %5v  %s\n",
			row.Topology, row.Operators, row.AdditionalReplicas,
			row.Predicted, row.Measured, row.RelErr*100, row.Ideal, blocked)
	}
	fmt.Fprintf(&b, "ideal throughput reached: %d/%d; stateful-blocked: %d; skew-blocked: %d; mean model error %.2f%%\n",
		r.Ideal, len(r.Rows), r.StatefulBlocked, r.SkewBlocked, r.ErrStat.Mean*100)
	return b.String()
}

// Fig10Row is one (topology, bound) measurement of the hold-off
// replication experiment.
type Fig10Row struct {
	Topology  int
	Bound     int // 0 = original topology, -1 = unbounded
	Replicas  int
	Predicted float64
	Measured  float64
}

// Fig10Result reproduces Figure 10: throughput under replica budgets
// (bounds 30/35/40 and unbounded) on three topologies, showing
// proportional de-scaling.
type Fig10Result struct {
	Rows   []Fig10Row
	Bounds []int
}

// Fig10 sweeps replica budgets over the first three testbed topologies
// with enough parallelism demand to make the bounds bind.
func Fig10(s Setup) (*Fig10Result, error) {
	s = s.withDefaults()
	if s.Topo.ServiceTimeMax == 0 {
		// Stretch the service-time spread so optimal degrees are large
		// enough (the paper's bounds go up to 40 replicas).
		s.Topo.ServiceTimeMax = 40e-3
	}
	bed, err := buildTestbed(s)
	if err != nil {
		return nil, err
	}
	res := &Fig10Result{Bounds: []int{30, 35, 40}}
	picked := 0
	for i, g := range bed {
		if picked >= 3 {
			break
		}
		unbounded, err := core.EliminateBottlenecks(g.Topology, core.FissionOptions{})
		if err != nil {
			return nil, fmt.Errorf("fig10 topology %d: %w", i+1, err)
		}
		// Only topologies whose unbounded optimum exceeds the largest
		// bound show de-scaling.
		if unbounded.TotalReplicas <= res.Bounds[len(res.Bounds)-1] {
			continue
		}
		picked++
		// Original topology (no added parallelism).
		base, err := core.SteadyState(g.Topology)
		if err != nil {
			return nil, err
		}
		simBase, err := qsim.SimulateTopology(g.Topology, nil, s.simConfig(i))
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig10Row{
			Topology: picked, Bound: 0, Replicas: g.Topology.Len(),
			Predicted: base.Throughput(), Measured: simBase.Throughput,
		})
		for _, bound := range res.Bounds {
			fis, err := core.EliminateBottlenecks(g.Topology, core.FissionOptions{MaxReplicas: bound})
			if err != nil {
				return nil, err
			}
			sim, err := qsim.SimulateTopology(g.Topology, fis.Analysis.Replicas, s.simConfig(i))
			if err != nil {
				return nil, err
			}
			res.Rows = append(res.Rows, Fig10Row{
				Topology: picked, Bound: bound, Replicas: fis.TotalReplicas,
				Predicted: fis.Analysis.Throughput(), Measured: sim.Throughput,
			})
		}
		sim, err := qsim.SimulateTopology(g.Topology, unbounded.Analysis.Replicas, s.simConfig(i))
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, Fig10Row{
			Topology: picked, Bound: -1, Replicas: unbounded.TotalReplicas,
			Predicted: unbounded.Analysis.Throughput(), Measured: sim.Throughput,
		})
	}
	if picked == 0 {
		return nil, fmt.Errorf("fig10: no testbed topology needs more than %d replicas; enlarge the testbed", res.Bounds[len(res.Bounds)-1])
	}
	return res, nil
}

// String renders the Figure 10 bars.
func (r *Fig10Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 10 — throughput under replica budgets\n")
	b.WriteString("topology  bound      replicas  predicted(t/s)  measured(t/s)\n")
	for _, row := range r.Rows {
		bound := "original"
		switch {
		case row.Bound > 0:
			bound = fmt.Sprintf("%d", row.Bound)
		case row.Bound < 0:
			bound = "unbounded"
		}
		fmt.Fprintf(&b, "%8d  %-9s  %8d  %14.1f  %13.1f\n",
			row.Topology, bound, row.Replicas, row.Predicted, row.Measured)
	}
	return b.String()
}
