package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"spinstreams/internal/core"
	"spinstreams/internal/obs"
	"spinstreams/internal/runtime"
)

// DriftDemoResult is the measure→predict→verify walkthrough on the
// paper's six-operator example (Figure 11 / Tables 1-2): the static
// prediction, the optimizer's verdict, the live run's metrics, and the
// drift report comparing the two.
type DriftDemoResult struct {
	Variant core.PaperExampleVariant
	// Predicted is Algorithm 1 on the profiled topology.
	Predicted *core.Analysis
	// Fission is Algorithm 2's outcome. On the paper example every
	// operator is stateful, so the Table 2 bottleneck cannot be removed
	// by replication — the honest verdict the drift report then has to
	// confirm from measurements.
	Fission *core.FissionResult
	// Metrics is the live run's engine view.
	Metrics *runtime.Metrics
	// Report is the registry-derived drift report: measured departure
	// rates and utilizations against the prediction, plus a re-analysis
	// on the measured profiles.
	Report *obs.DriftReport
}

// DriftDemo closes the loop the paper's workflow promises: predict with
// Algorithm 1, optimize with Algorithm 2, execute on the live runtime
// with a metrics registry bound, and verify the prediction against the
// registry's measured rates. Variant selects the Table 1 (no bottleneck:
// drift validates a clean prediction) or Table 2 (fusion-grade
// bottleneck: drift confirms the saturated operator from measurements)
// service times.
func DriftDemo(ctx context.Context, variant core.PaperExampleVariant, opts LiveOptions) (*DriftDemoResult, error) {
	if opts.Duration <= 0 {
		opts.Duration = 3 * time.Second
	}
	if opts.MailboxSize <= 0 {
		opts.MailboxSize = 8
	}
	topo, _ := core.PaperExampleTopology(variant)
	a, err := core.SteadyState(topo)
	if err != nil {
		return nil, fmt.Errorf("drift demo: steady state: %w", err)
	}
	fis, err := core.EliminateBottlenecks(topo, core.FissionOptions{})
	if err != nil {
		return nil, fmt.Errorf("drift demo: fission: %w", err)
	}
	reg := obs.New()
	m, err := runtime.RunTopology(ctx, topo, fis.Analysis.Replicas, nil, runtime.Config{
		Seed:        1,
		Duration:    opts.Duration,
		Warmup:      opts.Duration / 3,
		MailboxSize: opts.MailboxSize,
		Mailbox:     opts.Transport,
		Batch:       opts.Batch,
		Linger:      opts.Linger,
		MaxRestarts: opts.MaxRestarts,
		Obs:         reg,
	})
	if err != nil {
		return nil, fmt.Errorf("drift demo: live run: %w", err)
	}
	rep, err := obs.Drift(topo, fis.Analysis.Replicas, reg)
	if err != nil {
		return nil, fmt.Errorf("drift demo: drift report: %w", err)
	}
	return &DriftDemoResult{
		Variant:   variant,
		Predicted: a,
		Fission:   fis,
		Metrics:   m,
		Report:    rep,
	}, nil
}

// Header implements Tabular: one row per operator of the drift report.
func (r *DriftDemoResult) Header() []string {
	return []string{"op", "name", "replicas", "predicted_rate", "measured_rate", "rel_err", "predicted_rho", "measured_rho", "saturated"}
}

// TableRows implements Tabular.
func (r *DriftDemoResult) TableRows() [][]string {
	rows := make([][]string, 0, len(r.Report.Rows))
	for _, row := range r.Report.Rows {
		n := 1
		if row.Op < len(r.Fission.Analysis.Replicas) {
			n = r.Fission.Analysis.Replicas[row.Op]
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", row.Op),
			row.Name,
			fmt.Sprintf("%d", n),
			fmt.Sprintf("%.2f", row.Predicted),
			fmt.Sprintf("%.2f", row.Measured),
			fmt.Sprintf("%.4f", row.RelErr),
			fmt.Sprintf("%.3f", row.PredictedRho),
			fmt.Sprintf("%.3f", row.MeasuredRho),
			fmt.Sprintf("%t", row.Saturated),
		})
	}
	return rows
}

// String renders the walkthrough.
func (r *DriftDemoResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Drift walkthrough — paper example (Table %d)\n", int(r.Variant))
	fmt.Fprintf(&b, "predicted throughput %.1f t/s", r.Predicted.Throughput())
	if len(r.Predicted.Limiting) > 0 {
		fmt.Fprintf(&b, ", limiting operators %v", r.Predicted.Limiting)
	}
	b.WriteString("\n")
	extra := 0
	for _, n := range r.Fission.Analysis.Replicas {
		if n > 1 {
			extra += n - 1
		}
	}
	if extra > 0 {
		fmt.Fprintf(&b, "fission: +%d replicas, predicted %.1f t/s\n",
			extra, r.Fission.Analysis.Throughput())
	} else {
		b.WriteString("fission: no replicable bottleneck (stateful operators), topology unchanged\n")
	}
	fmt.Fprintf(&b, "live run: measured throughput %.1f t/s over %.1fs\n",
		r.Metrics.Throughput, r.Report.Seconds)
	b.WriteString(r.Report.String())
	return b.String()
}
