package experiments

import (
	"context"
	"strings"
	"testing"
	"time"

	"spinstreams/internal/core"
	"spinstreams/internal/mailbox"
	"spinstreams/internal/qsim"
)

// quickSetup keeps test runs fast: a small testbed with a short horizon.
func quickSetup() Setup {
	return Setup{
		Seed:       42,
		Topologies: 8,
		Sim:        qsim.Config{Horizon: 15},
	}
}

func TestFig7(t *testing.T) {
	res, err := Fig7(quickSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(res.Rows))
	}
	// Shape check: the model's mean error is small (paper: < 3%; allow
	// slack for the short horizon).
	if res.ErrStat.Mean > 0.12 {
		t.Errorf("mean error %.3f too high", res.ErrStat.Mean)
	}
	for _, row := range res.Rows {
		if row.Predicted <= 0 || row.Measured <= 0 {
			t.Errorf("topology %d: non-positive rates %+v", row.Topology, row)
		}
	}
	if !strings.Contains(res.String(), "Figure 7") {
		t.Error("String() missing header")
	}
}

func TestFig8(t *testing.T) {
	res, err := Fig8(quickSetup())
	if err != nil {
		t.Fatal(err)
	}
	if res.Operators < 16 {
		t.Fatalf("operators = %d, want many", res.Operators)
	}
	if res.ErrStat.Mean > 0.20 {
		t.Errorf("mean per-operator error %.3f too high", res.ErrStat.Mean)
	}
	if !strings.Contains(res.String(), "Figure 8") {
		t.Error("String() missing header")
	}
}

func TestFig9(t *testing.T) {
	res, err := Fig9(quickSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// The optimizer must reach the ideal throughput on most topologies;
	// the rest must be explained by stateful bottlenecks.
	for _, row := range res.Rows {
		if !row.Ideal && !row.StatefulBlocked && !row.SkewBlocked {
			t.Errorf("topology %d neither ideal nor blocked: %+v", row.Topology, row)
		}
		if row.Predicted < 0.99*mustBaseThroughput(t, row.Topology) {
			// Fission never lowers throughput; sanity only.
			t.Errorf("topology %d: suspicious predicted %v", row.Topology, row.Predicted)
		}
	}
	if res.Ideal == 0 {
		t.Error("no topology reached ideal throughput")
	}
	if !strings.Contains(res.String(), "Figure 9") {
		t.Error("String() missing header")
	}
}

// mustBaseThroughput recomputes the non-optimized predicted throughput of
// testbed entry i for the quick setup.
func mustBaseThroughput(t *testing.T, topology1Based int) float64 {
	t.Helper()
	s := quickSetup().withDefaults()
	bed, err := buildTestbed(s)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.SteadyState(bed[topology1Based-1].Topology)
	if err != nil {
		t.Fatal(err)
	}
	return a.Throughput()
}

func TestFig10(t *testing.T) {
	s := quickSetup()
	s.Topologies = 25 // enough candidates needing > 40 replicas
	res, err := Fig10(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Proportional de-scaling: within a topology, larger bounds give
	// predicted throughput at least as high.
	byTopo := map[int][]Fig10Row{}
	for _, row := range res.Rows {
		byTopo[row.Topology] = append(byTopo[row.Topology], row)
	}
	for topo, rows := range byTopo {
		var orig, b30, unbounded *Fig10Row
		for i := range rows {
			switch rows[i].Bound {
			case 0:
				orig = &rows[i]
			case 30:
				b30 = &rows[i]
			case -1:
				unbounded = &rows[i]
			}
		}
		if orig == nil || b30 == nil || unbounded == nil {
			t.Fatalf("topology %d missing rows", topo)
		}
		if b30.Predicted < orig.Predicted*(1-1e-9) {
			t.Errorf("topology %d: bound 30 predicted %v below original %v", topo, b30.Predicted, orig.Predicted)
		}
		if unbounded.Predicted < b30.Predicted*(1-1e-9) {
			t.Errorf("topology %d: unbounded predicted %v below bound 30 %v", topo, unbounded.Predicted, b30.Predicted)
		}
	}
	if !strings.Contains(res.String(), "Figure 10") {
		t.Error("String() missing header")
	}
}

func TestTable1(t *testing.T) {
	res, err := Table(quickSetup(), core.PaperExampleTable1)
	if err != nil {
		t.Fatal(err)
	}
	if res.IntroducesBottleneck {
		t.Error("Table 1 flagged as bottleneck")
	}
	// Fused service time ~2.78 ms (paper: 2.80).
	if res.FusedServiceMs < 2.7 || res.FusedServiceMs > 2.9 {
		t.Errorf("fused service time = %v ms", res.FusedServiceMs)
	}
	if res.PredictedBefore != res.PredictedAfter {
		t.Errorf("Table 1 predicted throughput changed: %v -> %v",
			res.PredictedBefore, res.PredictedAfter)
	}
	out := res.String()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "after fusion") {
		t.Error("String() incomplete")
	}
}

func TestTable2(t *testing.T) {
	res, err := Table(quickSetup(), core.PaperExampleTable2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.IntroducesBottleneck {
		t.Error("Table 2 not flagged as bottleneck")
	}
	if res.FusedServiceMs < 4.3 || res.FusedServiceMs > 4.5 {
		t.Errorf("fused service time = %v ms (paper: 4.42)", res.FusedServiceMs)
	}
	// ~24% degradation predicted and measured (paper: 20%).
	if res.PredictedAfter >= res.PredictedBefore {
		t.Error("no predicted degradation")
	}
	if res.MeasuredAfter >= res.MeasuredBefore {
		t.Error("no measured degradation")
	}
}

func TestKeyPartitioningAblation(t *testing.T) {
	res, err := KeyPartitioningAblation(100, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	for _, row := range res.Rows {
		if row.GreedyPMax > row.HashPMax+1e-9 {
			t.Errorf("zipf %v: greedy pmax %v worse than hashing %v",
				row.ZipfExp, row.GreedyPMax, row.HashPMax)
		}
	}
	if !strings.Contains(res.String(), "key partitioning") {
		t.Error("String() missing header")
	}
}

func TestBufferSizeAblation(t *testing.T) {
	res, err := BufferSizeAblation(quickSetup(), []int{2, 16, 128})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatal("wrong row count")
	}
	// Large mailboxes track the prediction closely.
	last := res.Rows[len(res.Rows)-1]
	if last.RelErr > 0.08 {
		t.Errorf("capacity %d error %.3f too high", last.Capacity, last.RelErr)
	}
	if !strings.Contains(res.String(), "mailbox capacity") {
		t.Error("String() missing header")
	}
}

func TestLatencyExperiment(t *testing.T) {
	res, err := Latency(quickSetup(), []float64{0.3, 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Waiting time grows with load.
	if res.Rows[1].MeasuredWait <= res.Rows[0].MeasuredWait {
		t.Errorf("wait did not grow with load: %v -> %v",
			res.Rows[0].MeasuredWait, res.Rows[1].MeasuredWait)
	}
	// Loose agreement with the M/M/1 prediction.
	for _, row := range res.Rows {
		if row.RelErr > 0.6 {
			t.Errorf("rho %v: latency error %.2f too high", row.Rho, row.RelErr)
		}
	}
	// Saturated wait tracks the buffer-bound estimate within 2x.
	ratio := res.SaturatedMeasuredWait / res.SaturatedPredictedWait
	if ratio < 0.4 || ratio > 2.5 {
		t.Errorf("saturated wait ratio = %v", ratio)
	}
	if !strings.Contains(res.String(), "Latency extension") {
		t.Error("String() missing header")
	}
}

func TestFig7Live(t *testing.T) {
	if testing.Short() {
		t.Skip("live run takes wall-clock time")
	}
	res, err := Fig7Live(context.Background(), quickSetup(), LiveOptions{
		Topologies: 2,
		Duration:   1500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.ErrStat.Mean > 0.30 {
		t.Errorf("live mean error %.3f too high", res.ErrStat.Mean)
	}
	if !strings.Contains(res.String(), "live runtime") {
		t.Error("String() missing header")
	}
}

func TestFig7LiveBatchedAccuracy(t *testing.T) {
	// The batched dataplane must not change what the cost model predicts:
	// on 5 random testbed topologies the batched runtime has to agree
	// with core.SteadyState within the same error bound the per-tuple
	// transport is held to (capacity stays tuple-accounted, so BAS — and
	// with it the steady state — is transport-independent).
	if testing.Short() {
		t.Skip("live run takes wall-clock time")
	}
	const tolerance = 0.30 // same bound as TestFig7Live's per-tuple run
	opts := LiveOptions{
		Topologies: 5,
		Duration:   1200 * time.Millisecond,
	}
	perTuple, err := Fig7Live(context.Background(), quickSetup(), opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Transport = mailbox.Batched
	batched, err := Fig7Live(context.Background(), quickSetup(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(batched.Rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(batched.Rows))
	}
	if batched.ErrStat.Mean > tolerance {
		t.Errorf("batched live mean error %.3f exceeds the per-tuple bound %.2f",
			batched.ErrStat.Mean, tolerance)
	}
	t.Logf("mean rel.err: per-tuple %.3f, batched %.3f",
		perTuple.ErrStat.Mean, batched.ErrStat.Mean)
}

func TestCSVExport(t *testing.T) {
	res, err := Fig7(quickSetup())
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := WriteCSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(res.Rows)+1 {
		t.Fatalf("csv has %d lines, want %d", len(lines), len(res.Rows)+1)
	}
	if lines[0] != "topology,operators,predicted,measured,rel_err" {
		t.Errorf("header = %q", lines[0])
	}
	// Every tabular result exports a consistent table.
	tables := []Tabular{res}
	if t8, err := Fig8(quickSetup()); err == nil {
		tables = append(tables, t8)
	}
	if kp, err := KeyPartitioningAblation(50, 4, nil); err == nil {
		tables = append(tables, kp)
	}
	if tb, err := Table(quickSetup(), core.PaperExampleTable1); err == nil {
		tables = append(tables, tb)
	}
	for i, tab := range tables {
		cols := len(tab.Header())
		for _, row := range tab.TableRows() {
			if len(row) != cols {
				t.Errorf("table %d: row width %d, header %d", i, len(row), cols)
			}
		}
	}
}

func TestElasticity(t *testing.T) {
	s := quickSetup()
	res, err := Elasticity(s, ElasticityOptions{Interval: 6, MaxRounds: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Steps) == 0 {
		t.Fatal("no reactive rounds recorded")
	}
	// The reactive controller needs at least one reconfiguration on a
	// bottlenecked topology, while static needs none by construction.
	if res.Reconfigurations == 0 {
		t.Error("reactive controller converged without scaling a bottlenecked topology")
	}
	// Reactive converges to (at most) the static throughput.
	if res.ElasticThroughput > res.StaticThroughput*1.15 {
		t.Errorf("reactive %.1f exceeds static %.1f beyond noise",
			res.ElasticThroughput, res.StaticThroughput)
	}
	// Reactive throughput is non-decreasing over rounds (monotone
	// scale-up), within simulation noise.
	for i := 1; i < len(res.Steps); i++ {
		if res.Steps[i].Throughput < res.Steps[i-1].Throughput*0.85 {
			t.Errorf("round %d throughput dropped: %.1f -> %.1f",
				i, res.Steps[i-1].Throughput, res.Steps[i].Throughput)
		}
	}
	if !strings.Contains(res.String(), "reactive") {
		t.Error("String() incomplete")
	}
}

func TestShedding(t *testing.T) {
	res, err := Shedding(quickSetup())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.PredictedLoss < 0 || row.PredictedLoss > 1 {
			t.Errorf("topology %d: predicted loss %v", row.Topology, row.PredictedLoss)
		}
		// Shedding never delivers less than a trickle, and on bottlenecked
		// topologies it loses data where backpressure does not.
		if row.SheddingDelivered <= 0 {
			t.Errorf("topology %d: no delivery under shedding", row.Topology)
		}
	}
	// The loss model tracks the simulation.
	if res.LossErrStat.Mean > 0.08 {
		t.Errorf("mean loss error %.3f too high", res.LossErrStat.Mean)
	}
	if !strings.Contains(res.String(), "load shedding") {
		t.Error("String() incomplete")
	}
}

// TestReoptimizeDemo runs the drift→reoptimize walkthrough: the map
// operator deployed 3x slower than declared must come back from the
// measured profiles with a replica increase.
func TestReoptimizeDemo(t *testing.T) {
	res, err := ReoptimizeDemo(context.Background(), 3, LiveOptions{
		Duration: 1200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Delta.Empty() {
		t.Fatalf("expected a non-empty delta plan:\n%s", res.String())
	}
	found := false
	for _, c := range res.Delta.Changes {
		if c.Operator == "map" {
			found = true
			if c.From != 1 || c.To < 2 {
				t.Errorf("map replica change %d -> %d, want 1 -> >=2", c.From, c.To)
			}
		}
	}
	if !found {
		t.Errorf("delta plan misses the drifted operator:\n%s", res.Delta.String())
	}
	rows := res.TableRows()
	if len(rows) != 3 || len(rows[0]) != len(res.Header()) {
		t.Fatalf("tabular shape %dx%d", len(rows), len(rows[0]))
	}
	for _, want := range []string{"Reoptimize walkthrough", "delta plan from measured profiles:", "replicas"} {
		if !strings.Contains(res.String(), want) {
			t.Errorf("walkthrough missing %q:\n%s", want, res.String())
		}
	}
}
