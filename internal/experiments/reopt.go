package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"spinstreams/internal/core"
	"spinstreams/internal/obs"
	"spinstreams/internal/opt"
	"spinstreams/internal/runtime"
)

// ReoptimizeDemoResult is the drift→reoptimize walkthrough: a topology
// whose declared profile understates one operator's real cost runs live,
// the drift report rebuilds the measured profiles, and the optimizer
// pipeline re-runs on them to emit the delta plan that repairs the
// deployment.
type ReoptimizeDemoResult struct {
	// Model is the topology the optimizer planned with (declared
	// profiles); Deployed is what actually ran, with the hot operator
	// slowed by SlowFactor.
	Model, Deployed *core.Topology
	SlowFactor      float64
	// HotOp names the operator whose measured cost drifted.
	HotOp string
	// Metrics is the live run's engine view.
	Metrics *runtime.Metrics
	// Report is the drift report carrying the measured profiles.
	Report *obs.DriftReport
	// Delta is the re-optimization outcome: which operators change
	// replica degree under the measured profiles.
	Delta *opt.DeltaPlan
}

// ReoptimizeDemo continues the drift demo one step further: instead of
// only *reporting* that the model drifted from the measurements, it
// feeds the measured profiles back through the optimizer pipeline
// (opt.Reoptimize) and emits the delta plan. The deployment is seeded
// with an understated profile — a stateless operator declared at
// serviceTime but deployed slowFactor times slower — so the plan has a
// real correction to make: the operator's measured utilization exceeds
// one and fission assigns it the replica degree the declared profile
// never justified.
func ReoptimizeDemo(ctx context.Context, slowFactor float64, opts LiveOptions) (*ReoptimizeDemoResult, error) {
	if slowFactor <= 1 {
		slowFactor = 3
	}
	if opts.Duration <= 0 {
		opts.Duration = 3 * time.Second
	}
	if opts.MailboxSize <= 0 {
		opts.MailboxSize = 8
	}

	// The model: a pipeline whose stateless middle stage looks cheap
	// enough to leave unreplicated.
	model := core.NewTopology()
	src := model.MustAddOperator(core.Operator{Name: "source", Kind: core.KindSource, ServiceTime: 1e-3})
	mid := model.MustAddOperator(core.Operator{Name: "map", Kind: core.KindStateless, ServiceTime: 0.5e-3})
	sink := model.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.1e-3})
	model.MustConnect(src, mid, 1)
	model.MustConnect(mid, sink, 1)

	// Plan with fission only: the deployment keeps the model's shape, so
	// the drift report can compare station-for-station.
	res, err := opt.Run(model, opt.Options{DisableFusion: true})
	if err != nil {
		return nil, fmt.Errorf("reoptimize demo: plan: %w", err)
	}
	replicas := res.Replicas()

	// The deployment: same shape, but the map's real cost is slowFactor
	// times the declared one (the runtime paces stations by declared
	// service time, so this is what actually executes).
	deployed := model.Clone()
	deployed.Op(mid).ServiceTime *= slowFactor

	reg := obs.New()
	m, err := runtime.RunTopology(ctx, deployed, replicas, nil, runtime.Config{
		Seed:        1,
		Duration:    opts.Duration,
		Warmup:      opts.Duration / 3,
		MailboxSize: opts.MailboxSize,
		Mailbox:     opts.Transport,
		Batch:       opts.Batch,
		Linger:      opts.Linger,
		MaxRestarts: opts.MaxRestarts,
		Obs:         reg,
	})
	if err != nil {
		return nil, fmt.Errorf("reoptimize demo: live run: %w", err)
	}
	// Drift is computed against the *model*: predicted rates from the
	// declared profiles, measured rates and profiles from the registry.
	rep, err := obs.Drift(model, replicas, reg)
	if err != nil {
		return nil, fmt.Errorf("reoptimize demo: drift report: %w", err)
	}
	delta, err := opt.Reoptimize(opt.NewSnapshot(model), rep, opt.Options{})
	if err != nil {
		return nil, fmt.Errorf("reoptimize demo: reoptimize: %w", err)
	}
	return &ReoptimizeDemoResult{
		Model:      model,
		Deployed:   deployed,
		SlowFactor: slowFactor,
		HotOp:      "map",
		Metrics:    m,
		Report:     rep,
		Delta:      delta,
	}, nil
}

// Header implements Tabular: one row per operator, declared vs measured
// cost and the replica movement the delta plan prescribes.
func (r *ReoptimizeDemoResult) Header() []string {
	return []string{"op", "name", "declared_ms", "measured_ms", "replicas_before", "replicas_after"}
}

// TableRows implements Tabular.
func (r *ReoptimizeDemoResult) TableRows() [][]string {
	after := make(map[string]int)
	before := make(map[string]int)
	for _, c := range r.Delta.Changes {
		before[c.Operator], after[c.Operator] = c.From, c.To
	}
	rows := make([][]string, 0, r.Model.Len())
	for i := 0; i < r.Model.Len(); i++ {
		op := r.Model.Op(core.OpID(i))
		measured := 0.0
		if i < len(r.Report.MeasuredProfiles) {
			measured = r.Report.MeasuredProfiles[i].ServiceTime
		}
		b, a := 1, 1
		if r.Report.Replicas != nil {
			b = r.Report.Replicas[i]
			a = b
		}
		if n, ok := after[op.Name]; ok {
			b, a = before[op.Name], n
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", i),
			op.Name,
			fmt.Sprintf("%.3f", op.ServiceTime*1e3),
			fmt.Sprintf("%.3f", measured*1e3),
			fmt.Sprintf("%d", b),
			fmt.Sprintf("%d", a),
		})
	}
	return rows
}

// String renders the walkthrough.
func (r *ReoptimizeDemoResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Reoptimize walkthrough — %s deployed %.1fx slower than declared\n",
		r.HotOp, r.SlowFactor)
	fmt.Fprintf(&b, "live run: measured throughput %.1f t/s over %.1fs (predicted %.1f t/s)\n",
		r.Metrics.Throughput, r.Report.Seconds, r.Report.PredictedThroughput)
	b.WriteString(r.Report.String())
	b.WriteString("delta plan from measured profiles:\n")
	b.WriteString(r.Delta.String())
	return b.String()
}
