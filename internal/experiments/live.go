package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"spinstreams/internal/core"
	"spinstreams/internal/mailbox"
	"spinstreams/internal/runtime"
	"spinstreams/internal/stats"
)

// LiveRow is one topology's predicted-vs-live-measured throughput.
type LiveRow struct {
	Topology  int
	Operators int
	Predicted float64
	Measured  float64
	RelErr    float64
}

// LiveResult is Figure 7 measured on the live goroutine runtime instead of
// the simulator: real actors, real bounded channels, service times
// emulated by pacing. Wall-clock cost limits it to a subset of the testbed
// (each topology runs for LiveDuration of real time).
type LiveResult struct {
	Rows    []LiveRow
	ErrStat stats.Summary
}

// LiveOptions tunes the live accuracy run.
type LiveOptions struct {
	// Topologies caps how many testbed entries run live (default 8).
	Topologies int
	// Duration is the wall-clock run per topology (default 3s).
	Duration time.Duration
	// MailboxSize is the bounded mailbox capacity (default 8). Live runs
	// last seconds, not simulated minutes: mailboxes must fill within the
	// warmup for backpressure to engage, so they are kept small (the
	// steady-state model is capacity-independent; see the buffer
	// ablation).
	MailboxSize int
	// Transport selects the dataplane (per-tuple or batched); capacity
	// stays tuple-accounted either way, so predictions must hold under
	// both.
	Transport mailbox.Mode
	// Batch and Linger tune the batched transport (0 = runtime default).
	Batch  int
	Linger time.Duration
	// MaxRestarts bounds operator restart after a panic (0 = crash the
	// run, <0 = unlimited); long live runs can opt into graceful
	// degradation instead of losing the whole series to one fault.
	MaxRestarts int
}

// Fig7Live measures prediction accuracy against live execution.
func Fig7Live(ctx context.Context, s Setup, opts LiveOptions) (*LiveResult, error) {
	s = s.withDefaults()
	if opts.Topologies <= 0 {
		opts.Topologies = 8
	}
	if opts.Duration <= 0 {
		opts.Duration = 3 * time.Second
	}
	if opts.MailboxSize <= 0 {
		opts.MailboxSize = 8
	}
	if s.Topologies > opts.Topologies {
		s.Topologies = opts.Topologies
	}
	// Live pacing is reliable for service times well above the sleep
	// quantum; regenerate the testbed with a 1 ms floor.
	s.Topo.ServiceTimeMin = 1e-3
	s.Topo.ServiceTimeMax = 20e-3
	bed, err := buildTestbed(s)
	if err != nil {
		return nil, err
	}
	res := &LiveResult{}
	errs := make([]float64, 0, len(bed))
	for i, g := range bed {
		a, err := core.SteadyState(g.Topology)
		if err != nil {
			return nil, fmt.Errorf("fig7live topology %d: %w", i+1, err)
		}
		// A nil binding runs every station in selectivity-emulation mode:
		// the live actors carry exactly the profiled rates, which is what
		// the cost model predicts (real windowed operators would need
		// minutes of warmup to reach their steady-state selectivity).
		m, err := runtime.RunTopology(ctx, g.Topology, nil, nil, runtime.Config{
			Seed:        uint64(i + 1),
			Duration:    opts.Duration,
			Warmup:      opts.Duration / 3,
			MailboxSize: opts.MailboxSize,
			Mailbox:     opts.Transport,
			Batch:       opts.Batch,
			Linger:      opts.Linger,
			MaxRestarts: opts.MaxRestarts,
		})
		if err != nil {
			return nil, fmt.Errorf("fig7live topology %d: %w", i+1, err)
		}
		relErr := stats.RelErr(m.Throughput, a.Throughput())
		res.Rows = append(res.Rows, LiveRow{
			Topology:  i + 1,
			Operators: g.Topology.Len(),
			Predicted: a.Throughput(),
			Measured:  m.Throughput,
			RelErr:    relErr,
		})
		errs = append(errs, relErr)
	}
	res.ErrStat = stats.Summarize(errs)
	return res, nil
}

// String renders the live series.
func (r *LiveResult) String() string {
	var b strings.Builder
	b.WriteString("Figure 7 (live runtime) — accuracy against goroutine execution\n")
	b.WriteString("topology  ops  predicted(t/s)  measured(t/s)  rel.err\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d  %3d  %14.1f  %13.1f  %6.2f%%\n",
			row.Topology, row.Operators, row.Predicted, row.Measured, row.RelErr*100)
	}
	fmt.Fprintf(&b, "mean error %.2f%%  (stddev %.2f%%, max %.2f%%)\n",
		r.ErrStat.Mean*100, r.ErrStat.StdDev*100, r.ErrStat.Max*100)
	return b.String()
}
