package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"spinstreams/internal/core"
	"spinstreams/internal/faultinject"
	"spinstreams/internal/runtime"
)

// ChaosOptions tunes the fault-injection soak scenario.
type ChaosOptions struct {
	// Schedules is how many escalating fault schedules run (default 3).
	Schedules int
	// Duration is the wall-clock run per schedule (default 600ms).
	Duration time.Duration
	// PanicProb and SlowdownProb set the most aggressive schedule's
	// per-tuple fault probabilities; milder schedules scale them down
	// (defaults 0.002 and 0.01).
	PanicProb    float64
	SlowdownProb float64
}

func (o ChaosOptions) withDefaults() ChaosOptions {
	if o.Schedules <= 0 {
		o.Schedules = 3
	}
	if o.Duration <= 0 {
		o.Duration = 600 * time.Millisecond
	}
	if o.PanicProb <= 0 {
		o.PanicProb = 0.002
	}
	if o.SlowdownProb <= 0 {
		o.SlowdownProb = 0.01
	}
	return o
}

// ChaosRow is one fault schedule's tuple accounting.
type ChaosRow struct {
	Schedule  int
	PanicProb float64
	SlowProb  float64
	Generated uint64
	Delivered uint64
	Shed      uint64
	Failed    uint64
	Drained   uint64
	Abandoned uint64
	Restarts  uint64
	Panics    uint64
	Slowdowns uint64
	// Conserved reports the exact identity
	// Generated == Delivered+Shed+Failed+Drained+Abandoned.
	Conserved bool
}

// ChaosResult is the soak outcome across schedules.
type ChaosResult struct {
	Rows []ChaosRow
}

// chaosPipeline is a unit-gain pipeline (every stage forwards each input
// exactly once), the topology class for which the conservation identity
// holds exactly even under injected panics.
func chaosPipeline(times ...float64) *core.Topology {
	topo := core.NewTopology()
	var prev core.OpID
	for i, st := range times {
		kind := core.KindStateless
		switch i {
		case 0:
			kind = core.KindSource
		case len(times) - 1:
			kind = core.KindSink
		}
		id := topo.MustAddOperator(core.Operator{
			Name: "s" + string(rune('A'+i)), Kind: kind, ServiceTime: st,
		})
		if i > 0 {
			topo.MustConnect(prev, id, 1)
		}
		prev = id
	}
	return topo
}

// Chaos soaks the live runtime under escalating deterministic fault
// schedules and verifies the lifetime tuple-conservation identity: no
// generated tuple is ever double-counted or silently lost, whatever the
// panic/slowdown mix.
func Chaos(ctx context.Context, s Setup, opts ChaosOptions) (*ChaosResult, error) {
	s = s.withDefaults()
	opts = opts.withDefaults()
	res := &ChaosResult{}
	for i := 1; i <= opts.Schedules; i++ {
		scale := float64(i) / float64(opts.Schedules)
		fcfg := faultinject.Config{
			Seed:          s.Seed*1_000_003 + uint64(i),
			PanicProb:     opts.PanicProb * scale,
			SlowdownProb:  opts.SlowdownProb * scale,
			SendDelayProb: 0.01 * scale,
		}
		inj := faultinject.New(fcfg)
		topo := chaosPipeline(0.0002, 0.0002, 0.0001, 0.0001)
		m, err := runtime.RunTopology(ctx, topo, nil, nil, runtime.Config{
			Seed:        s.Seed + uint64(i),
			Duration:    opts.Duration,
			Warmup:      opts.Duration / 4,
			MailboxSize: 32,
			SendTimeout: 200 * time.Microsecond,
			MaxRestarts: -1,
			Faults:      inj,
		})
		if err != nil {
			return nil, fmt.Errorf("chaos schedule %d: %w", i, err)
		}
		tt := m.Totals
		c := inj.Counts()
		res.Rows = append(res.Rows, ChaosRow{
			Schedule:  i,
			PanicProb: fcfg.PanicProb,
			SlowProb:  fcfg.SlowdownProb,
			Generated: tt.Generated,
			Delivered: tt.Delivered,
			Shed:      tt.Shed,
			Failed:    tt.Failed,
			Drained:   tt.Drained,
			Abandoned: tt.Abandoned,
			Restarts:  m.Restarts,
			Panics:    c.Panics,
			Slowdowns: c.Slowdowns,
			Conserved: tt.Generated == tt.Delivered+tt.Shed+tt.Failed+tt.Drained+tt.Abandoned,
		})
	}
	return res, nil
}

// String renders the soak table.
func (r *ChaosResult) String() string {
	var b strings.Builder
	b.WriteString("Chaos soak — tuple conservation under injected faults (live runtime)\n")
	b.WriteString("schedule  panic-p  generated  delivered  failed  restarts  conserved\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d  %7.4f  %9d  %9d  %6d  %8d  %9v\n",
			row.Schedule, row.PanicProb, row.Generated, row.Delivered,
			row.Failed, row.Restarts, row.Conserved)
	}
	return b.String()
}

// Header implements Tabular.
func (r *ChaosResult) Header() []string {
	return []string{"schedule", "panic_prob", "slowdown_prob", "generated", "delivered",
		"shed", "failed", "drained", "abandoned", "restarts", "panics", "slowdowns", "conserved"}
}

// TableRows implements Tabular.
func (r *ChaosResult) TableRows() [][]string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			d(row.Schedule), f(row.PanicProb), f(row.SlowProb),
			fmt.Sprintf("%d", row.Generated), fmt.Sprintf("%d", row.Delivered),
			fmt.Sprintf("%d", row.Shed), fmt.Sprintf("%d", row.Failed),
			fmt.Sprintf("%d", row.Drained), fmt.Sprintf("%d", row.Abandoned),
			fmt.Sprintf("%d", row.Restarts), fmt.Sprintf("%d", row.Panics),
			fmt.Sprintf("%d", row.Slowdowns), fmt.Sprintf("%v", row.Conserved),
		})
	}
	return rows
}

// CheckChaos asserts every schedule conserved tuples and made progress.
func CheckChaos(res Result) error {
	r, ok := res.(*ChaosResult)
	if !ok {
		return fmt.Errorf("chaos check: unexpected result type %T", res)
	}
	for _, row := range r.Rows {
		if !row.Conserved {
			return fmt.Errorf("chaos check: schedule %d violated tuple conservation", row.Schedule)
		}
		if row.Delivered == 0 {
			return fmt.Errorf("chaos check: schedule %d delivered nothing", row.Schedule)
		}
		if row.Panics > 0 && row.Restarts == 0 {
			return fmt.Errorf("chaos check: schedule %d injected %d panics but saw no restarts",
				row.Schedule, row.Panics)
		}
	}
	return nil
}
