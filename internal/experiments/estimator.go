package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"

	"spinstreams/internal/core"
	"spinstreams/internal/obs"
	"spinstreams/internal/opt"
	"spinstreams/internal/plan"
	"spinstreams/internal/profiler"
	"spinstreams/internal/qsim"
	"spinstreams/internal/randtopo"
)

// Probe-free estimation sweep: the simulated analogue of the runtime's
// occupancy-sampling estimator, validated against qsim ground truth. Each
// run generates a random topology, simulates it with periodic occupancy
// sampling, feeds every sample into an obs.Estimator exactly as the live
// sampler goroutine would, and compares the reconstructed non-blocking
// service rates with the rates the simulator was configured with — plus
// the decision-level check: starting from deliberately misdeclared
// service times, re-optimization on the estimated profiles must crown the
// same bottleneck as re-optimization on the exact ones.

// EstimatorOptions tunes the probe-free estimation sweep.
type EstimatorOptions struct {
	// Seeds is the number of corpus topologies (x3 workloads; default 34,
	// the differential test's corpus).
	Seeds int
	// Horizon is the simulated seconds per run (default 8).
	Horizon float64
	// SampleEvery is the occupancy sampling tick in seconds (default 1e-3,
	// the runtime's estimator default).
	SampleEvery float64
	// ConfFloor is the confidence below which an estimate is excluded from
	// the error pool (default 0.60 — at confidence n/(n+8) that means at
	// least 12 completions of evidence behind every pooled estimate).
	ConfFloor float64
}

func (o EstimatorOptions) withDefaults() EstimatorOptions {
	if o.Seeds <= 0 {
		o.Seeds = 34
	}
	if o.Horizon <= 0 {
		o.Horizon = 8
	}
	if o.SampleEvery <= 0 {
		o.SampleEvery = 1e-3
	}
	if o.ConfFloor <= 0 {
		o.ConfFloor = 0.60
	}
	return o
}

// EstimatorRow aggregates one workload (or the pooled corpus) of the
// sweep.
type EstimatorRow struct {
	Workload string
	// Runs is the number of (seed, workload) simulations; Ops counts their
	// non-source operators, split into Confident (estimate above the
	// confidence floor, held to the error bounds) and LowConf (excluded —
	// "no evidence" degrades to the declared profile, it never invents a
	// rate).
	Runs, Ops, Confident, LowConf int
	// MedianErr/P95Err/MaxErr summarize the per-operator service-rate
	// relative error of the confident estimates.
	MedianErr, P95Err, MaxErr float64
	// Agreement is the fraction of runs where Reoptimize fed the estimated
	// profiles picks the same bottleneck as Reoptimize fed the exact ones,
	// from a misdeclared starting model.
	Agreement float64
}

// EstimatorResult is the full sweep.
type EstimatorResult struct {
	Options EstimatorOptions
	// Rows hold one summary per workload plus the pooled "all" row last.
	Rows []EstimatorRow
}

// estimatorWorkloads is the envelope sweep, matching the differential
// test corpus.
func estimatorWorkloads() []Workload {
	return []Workload{Steady(), Bursty(4, 0.25, 2), HotKeySkew(0.6)}
}

// estimatorTopology builds one corpus topology (service times 1-8 ms, the
// occupancy tick's neighbourhood, where discretization is hardest).
func estimatorTopology(seed uint64) (*core.Topology, error) {
	g, err := randtopo.Generate(randtopo.Config{
		Seed:           seed,
		MinOps:         4,
		MaxOps:         8,
		ServiceTimeMin: 1e-3,
		ServiceTimeMax: 8e-3,
	})
	if err != nil {
		return nil, err
	}
	return g.Topology, nil
}

// estimatorSimulate runs qsim over the deployed topology's plan with
// occupancy sampling and feeds the stream into a fresh estimator.
func estimatorSimulate(deployed *core.Topology, w Workload, seed uint64, o EstimatorOptions) (*obs.Measurement, error) {
	p, err := plan.Build(deployed, plan.Options{})
	if err != nil {
		return nil, fmt.Errorf("plan: %w", err)
	}
	infos := make([]obs.StationInfo, len(p.Stations))
	for i := range p.Stations {
		st := &p.Stations[i]
		infos[i] = obs.StationInfo{
			Name:   st.Name,
			Role:   st.Role.String(),
			Op:     int(st.Op),
			Source: st.Role == plan.RoleSource,
			Sink:   len(st.Out) == 0,
		}
	}
	est := obs.NewEstimator(obs.EstimatorConfig{})
	prev := 0.0
	var buf []obs.StationSample
	var observeErr error
	cfg := qsim.Config{
		Seed:         seed,
		Horizon:      o.Horizon,
		SampleEvery:  o.SampleEvery,
		RateEnvelope: w.Envelope,
		OnSample: func(now float64, sts []qsim.Sample) {
			dt := now - prev
			prev = now
			if dt <= 0 {
				return
			}
			buf = buf[:0]
			for _, s := range sts {
				buf = append(buf, obs.StationSample{
					Info:     infos[s.Station],
					Queued:   uint64(s.Queued),
					Capacity: uint64(s.Capacity),
					Consumed: s.Consumed,
					Emitted:  s.Emitted,
					Arrived:  s.Arrived,
					Dropped:  s.Dropped,
					Blocked:  s.Blocked,
				})
			}
			if err := est.Observe(dt, buf); err != nil && observeErr == nil {
				observeErr = err
			}
		},
	}
	if _, err := qsim.Simulate(p, cfg); err != nil {
		return nil, fmt.Errorf("simulate: %w", err)
	}
	if observeErr != nil {
		return nil, fmt.Errorf("observe: %w", observeErr)
	}
	return est.Measure()
}

// estimatorMisdeclare clones the topology with each declared service time
// scaled by a seeded factor in [0.6, 1.8] — the drifted model the
// estimator exists to correct.
func estimatorMisdeclare(topo *core.Topology, seed uint64) *core.Topology {
	mis := topo.Clone()
	rng := rand.New(rand.NewSource(int64(seed)*2654435761 + 97))
	for i := 0; i < mis.Len(); i++ {
		mis.Op(core.OpID(i)).ServiceTime *= 0.6 + 1.2*rng.Float64()
	}
	return mis
}

// estimatorBottleneck returns the non-source operator with the highest
// baseline utilization — the operator fission would attack first.
func estimatorBottleneck(res *opt.Result, topo *core.Topology) int {
	best, bestRho := -1, -1.0
	for i, rho := range res.Baseline.Rho {
		if topo.Op(core.OpID(i)).Kind == core.KindSource {
			continue
		}
		if rho > bestRho {
			best, bestRho = i, rho
		}
	}
	return best
}

// Estimator runs the probe-free estimation sweep.
func Estimator(ctx context.Context, o EstimatorOptions) (*EstimatorResult, error) {
	o = o.withDefaults()
	buckets := map[string]*estimatorBucket{}
	order := []string{}
	for seed := uint64(1); seed <= uint64(o.Seeds); seed++ {
		for _, w := range estimatorWorkloads() {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			b := buckets[w.Name]
			if b == nil {
				b = &estimatorBucket{}
				buckets[w.Name] = b
				order = append(order, w.Name)
			}
			base, err := estimatorTopology(seed)
			if err != nil {
				return nil, fmt.Errorf("estimator: seed %d: %w", seed, err)
			}
			deployed := w.Apply(base)
			m, err := estimatorSimulate(deployed, w, seed, o)
			if err != nil {
				return nil, fmt.Errorf("estimator: seed %d/%s: %w", seed, w.Name, err)
			}
			b.runs++
			for i := 0; i < deployed.Len(); i++ {
				op := deployed.Op(core.OpID(i))
				if op.Kind == core.KindSource {
					// A source's busy rate tracks the envelope-modulated
					// offered load, not 1/ServiceTime.
					continue
				}
				b.ops++
				if m.Confidence[i] < o.ConfFloor {
					b.low++
					continue
				}
				trueRate := 1 / op.ServiceTime
				b.errs = append(b.errs, math.Abs(m.Estimates[i].Rate-trueRate)/trueRate)
			}
			mis := estimatorMisdeclare(deployed, seed)
			repEst, err := obs.DriftFromProfiles(mis, nil, m.Rates, m.Profiles, m.Confidence)
			if err != nil {
				return nil, fmt.Errorf("estimator: seed %d/%s: drift: %w", seed, w.Name, err)
			}
			deltaEst, err := opt.Reoptimize(opt.NewSnapshot(mis), repEst, opt.Options{})
			if err != nil {
				return nil, fmt.Errorf("estimator: seed %d/%s: reoptimize: %w", seed, w.Name, err)
			}
			trueProfiles := make([]profiler.Profile, deployed.Len())
			for i := range trueProfiles {
				trueProfiles[i].ServiceTime = deployed.Op(core.OpID(i)).ServiceTime
			}
			repTrue, err := obs.DriftFromProfiles(mis, nil, m.Rates, trueProfiles, nil)
			if err != nil {
				return nil, fmt.Errorf("estimator: seed %d/%s: true drift: %w", seed, w.Name, err)
			}
			deltaTrue, err := opt.Reoptimize(opt.NewSnapshot(mis), repTrue, opt.Options{})
			if err != nil {
				return nil, fmt.Errorf("estimator: seed %d/%s: true reoptimize: %w", seed, w.Name, err)
			}
			estTop := estimatorBottleneck(deltaEst.Result, mis)
			trueTop := estimatorBottleneck(deltaTrue.Result, mis)
			trueRho := deltaTrue.Result.Baseline.Rho
			if estTop == trueTop ||
				(estTop >= 0 && trueTop >= 0 && trueRho[estTop] >= trueRho[trueTop]*0.90) {
				b.agree++
			}
		}
	}
	res := &EstimatorResult{Options: o}
	pooled := &estimatorBucket{}
	for _, name := range order {
		b := buckets[name]
		res.Rows = append(res.Rows, summarizeEstimator(name, b))
		pooled.errs = append(pooled.errs, b.errs...)
		pooled.runs += b.runs
		pooled.agree += b.agree
		pooled.ops += b.ops
		pooled.low += b.low
	}
	res.Rows = append(res.Rows, summarizeEstimator("all", pooled))
	return res, nil
}

// estimatorBucket accumulates one workload's sweep outcomes.
type estimatorBucket struct {
	errs        []float64
	runs, agree int
	ops, low    int
}

func summarizeEstimator(name string, b *estimatorBucket) EstimatorRow {
	row := EstimatorRow{
		Workload:  name,
		Runs:      b.runs,
		Ops:       b.ops,
		Confident: len(b.errs),
		LowConf:   b.low,
	}
	if b.runs > 0 {
		row.Agreement = float64(b.agree) / float64(b.runs)
	}
	if len(b.errs) > 0 {
		errs := append([]float64(nil), b.errs...)
		sort.Float64s(errs)
		row.MedianErr = errs[len(errs)/2]
		row.P95Err = errs[(len(errs)*95)/100]
		row.MaxErr = errs[len(errs)-1]
	}
	return row
}

// CheckEstimator holds the pooled sweep to the documented bounds: rate
// error median <= 10% and p95 <= 25% over confident operators, bottleneck
// agreement >= 90% of runs, and at least one confident operator per run on
// average (the floor must not silently exclude the corpus).
func CheckEstimator(r Result) error {
	res, ok := r.(*EstimatorResult)
	if !ok {
		return fmt.Errorf("estimator check: unexpected result type %T", r)
	}
	if len(res.Rows) == 0 {
		return fmt.Errorf("estimator check: no rows")
	}
	pooled := res.Rows[len(res.Rows)-1]
	if pooled.Workload != "all" {
		return fmt.Errorf("estimator check: pooled row missing")
	}
	if pooled.Confident < pooled.Runs {
		return fmt.Errorf("estimator check: only %d confident estimates over %d runs", pooled.Confident, pooled.Runs)
	}
	if pooled.MedianErr > 0.10 {
		return fmt.Errorf("estimator check: median rate error %.1f%% > 10%%", pooled.MedianErr*100)
	}
	if pooled.P95Err > 0.25 {
		return fmt.Errorf("estimator check: p95 rate error %.1f%% > 25%%", pooled.P95Err*100)
	}
	if pooled.Agreement < 0.90 {
		return fmt.Errorf("estimator check: bottleneck agreement %.1f%% < 90%%", pooled.Agreement*100)
	}
	return nil
}

// Header implements Tabular.
func (r *EstimatorResult) Header() []string {
	return []string{"workload", "runs", "ops", "confident", "low_conf", "median_err", "p95_err", "max_err", "bottleneck_agreement"}
}

// TableRows implements Tabular.
func (r *EstimatorResult) TableRows() [][]string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Workload,
			fmt.Sprintf("%d", row.Runs),
			fmt.Sprintf("%d", row.Ops),
			fmt.Sprintf("%d", row.Confident),
			fmt.Sprintf("%d", row.LowConf),
			fmt.Sprintf("%.4f", row.MedianErr),
			fmt.Sprintf("%.4f", row.P95Err),
			fmt.Sprintf("%.4f", row.MaxErr),
			fmt.Sprintf("%.4f", row.Agreement),
		})
	}
	return rows
}

// String renders the sweep.
func (r *EstimatorResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Probe-free estimation vs qsim ground truth (%d seeds x 3 workloads, %.0fs horizon, %.0fms tick)\n",
		r.Options.Seeds, r.Options.Horizon, r.Options.SampleEvery*1e3)
	b.WriteString("workload   runs   ops  confident  low   median     p95     max   agreement\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-9s %5d %5d %10d %4d %7.2f%% %6.2f%% %6.2f%% %10.1f%%\n",
			row.Workload, row.Runs, row.Ops, row.Confident, row.LowConf,
			row.MedianErr*100, row.P95Err*100, row.MaxErr*100, row.Agreement*100)
	}
	b.WriteString("confident = estimate above the confidence floor (>= 12 completions of evidence);\n")
	b.WriteString("low-confidence operators keep their declared profiles (the estimator never invents rates).\n")
	return b.String()
}
