package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"
)

// Result is what every scenario produces: a human-readable rendering plus
// a tabular data series for CSV/JSON export.
type Result interface {
	fmt.Stringer
	Tabular
}

// Options carries every knob a scenario may consume; cmd/ssbench fills it
// from flags and each scenario reads the fields it cares about.
type Options struct {
	// Setup configures the shared simulated testbed.
	Setup Setup
	// Live tunes scenarios that execute on the goroutine runtime.
	Live LiveOptions
	// Corpus tunes the Section 5 corpus runner.
	Corpus CorpusOptions
	// Chaos tunes the fault-injection soak scenario.
	Chaos ChaosOptions
	// Estimator tunes the probe-free estimation sweep.
	Estimator EstimatorOptions
	// Dataplane tunes the transport-comparison scenario.
	Dataplane DataplaneOptions
	// DriftTable selects the paper-example variant for the drift
	// walkthrough (1 or 2; default 2).
	DriftTable int
	// SlowFactor is the injected drift for reopt/autotune walkthroughs.
	SlowFactor float64
	// AutotuneRounds bounds the live autonomic loop.
	AutotuneRounds int
	// AutotuneInterval is the live measurement window per round.
	AutotuneInterval time.Duration
}

// Scenario is one declarative entry of the evaluation registry: what to
// run (topology source, workload shape and runtime mode live inside Run's
// closure over Options), how long, what the output schema is (the
// Result's Tabular implementation), and which invariants must hold
// (Check).
type Scenario struct {
	// Name is the stable identifier (`ssbench -exp <name>`).
	Name string
	// Tags classify the scenario for filtering (`ssbench -scenario-tag`):
	// "sim" (simulated substrate), "live" (goroutine runtime), "paper"
	// (reproduces a paper figure/table), "ablation", "extension",
	// "workload", "default" (part of the plain `ssbench` sweep).
	Tags []string
	// Summary is the one-line description `ssbench -list` prints.
	Summary string
	// Run executes the scenario.
	Run func(ctx context.Context, o Options) (Result, error)
	// Check, when non-nil, validates the scenario's acceptance
	// assertions against the result; a non-nil error fails the run.
	Check func(Result) error
}

// HasTag reports whether the scenario carries the tag.
func (s Scenario) HasTag(tag string) bool {
	for _, t := range s.Tags {
		if t == tag {
			return true
		}
	}
	return false
}

var registry = struct {
	byName map[string]Scenario
	names  []string // sorted
}{byName: map[string]Scenario{}}

// Register adds a scenario to the registry; it panics on duplicate or
// empty names (registration happens in init functions, so a bad entry is
// a programming error, not a runtime condition).
func Register(s Scenario) {
	if s.Name == "" {
		panic("experiments: scenario with empty name")
	}
	if s.Run == nil {
		panic("experiments: scenario " + s.Name + " has no Run")
	}
	if _, dup := registry.byName[s.Name]; dup {
		panic("experiments: duplicate scenario " + s.Name)
	}
	registry.byName[s.Name] = s
	registry.names = append(registry.names, s.Name)
	sort.Strings(registry.names)
}

// Get looks a scenario up by name.
func Get(name string) (Scenario, bool) {
	s, ok := registry.byName[name]
	return s, ok
}

// Names returns every registered scenario name in sorted order — the
// stable iteration order every enumerating caller must use, so reruns
// and reports never depend on map iteration.
func Names() []string {
	return append([]string(nil), registry.names...)
}

// All returns every scenario in sorted-name order.
func All() []Scenario {
	out := make([]Scenario, 0, len(registry.names))
	for _, n := range registry.names {
		out = append(out, registry.byName[n])
	}
	return out
}

// WithTag returns the scenarios carrying the tag, in sorted-name order.
func WithTag(tag string) []Scenario {
	var out []Scenario
	for _, n := range registry.names {
		if s := registry.byName[n]; s.HasTag(tag) {
			out = append(out, s)
		}
	}
	return out
}

// TagSet returns every tag in use, sorted.
func TagSet() []string {
	seen := map[string]bool{}
	for _, s := range registry.byName {
		for _, t := range s.Tags {
			seen[t] = true
		}
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}

// DescribeRegistry renders the registry as the `-list` table.
func DescribeRegistry() string {
	var b strings.Builder
	b.WriteString("registered scenarios:\n")
	for _, n := range Names() {
		s := registry.byName[n]
		fmt.Fprintf(&b, "  %-12s [%s] %s\n", s.Name, strings.Join(s.Tags, ","), s.Summary)
	}
	fmt.Fprintf(&b, "tags: %s\n", strings.Join(TagSet(), ", "))
	return b.String()
}
