package experiments

import (
	"fmt"
	"strings"

	"spinstreams/internal/core"
	"spinstreams/internal/qsim"
)

// TableRow is one operator's row in the Table 1/2 reproduction.
type TableRow struct {
	Name string
	// MuInv is the service time in ms (the tables' mu^-1 row).
	MuInv float64
	// DeltaInv is the predicted inter-departure time in ms.
	DeltaInv float64
	// Rho is the predicted utilization factor.
	Rho float64
}

// TableResult reproduces Table 1 or Table 2: the fusion walk-through on
// the six-operator topology of Figure 11, reporting per-operator figures
// before and after the fusion plus predicted and measured throughputs.
type TableResult struct {
	Variant core.PaperExampleVariant
	// Before and After are the per-operator rows of the two halves.
	Before, After []TableRow
	// FusedServiceMs is the meta-operator's predicted service time in ms
	// (paper: 2.80 for Table 1, 4.42 for Table 2).
	FusedServiceMs float64
	// Predicted/Measured topology throughputs, tuples/s.
	PredictedBefore, MeasuredBefore float64
	PredictedAfter, MeasuredAfter   float64
	// IntroducesBottleneck is the tool's alert (false for Table 1, true
	// for Table 2).
	IntroducesBottleneck bool
}

// Table runs the walk-through for the chosen variant; measurements come
// from the simulator configured by s.Sim.
func Table(s Setup, variant core.PaperExampleVariant) (*TableResult, error) {
	s = s.withDefaults()
	topo, sub := core.PaperExampleTopology(variant)
	fused, report, err := core.Fuse(topo, sub, "F")
	if err != nil {
		return nil, err
	}
	simBefore, err := qsim.SimulateTopology(topo, nil, s.simConfig(0))
	if err != nil {
		return nil, err
	}
	simAfter, err := qsim.SimulateTopology(fused, nil, s.simConfig(1))
	if err != nil {
		return nil, err
	}
	res := &TableResult{
		Variant:              variant,
		FusedServiceMs:       report.ServiceTime * 1e3,
		PredictedBefore:      report.ThroughputBefore,
		MeasuredBefore:       simBefore.Throughput,
		PredictedAfter:       report.ThroughputAfter,
		MeasuredAfter:        simAfter.Throughput,
		IntroducesBottleneck: report.IntroducesBottleneck,
	}
	res.Before = tableRows(topo, report.Before)
	res.After = tableRows(fused, report.After)
	return res, nil
}

func tableRows(t *core.Topology, a *core.Analysis) []TableRow {
	rows := make([]TableRow, 0, t.Len())
	for i := 0; i < t.Len(); i++ {
		deltaInv := 0.0
		if a.Delta[i] > 0 {
			deltaInv = 1e3 / a.Delta[i]
		}
		rows = append(rows, TableRow{
			Name:     t.Op(core.OpID(i)).Name,
			MuInv:    t.Op(core.OpID(i)).ServiceTime * 1e3,
			DeltaInv: deltaInv,
			Rho:      a.Rho[i],
		})
	}
	return rows
}

// String renders the table in the paper's layout.
func (r *TableResult) String() string {
	var b strings.Builder
	name := "Table 1 (fusion feasible)"
	if r.Variant == core.PaperExampleTable2 {
		name = "Table 2 (fusion introduces a bottleneck)"
	}
	fmt.Fprintf(&b, "%s — fused service time %.2f ms, alert=%v\n", name, r.FusedServiceMs, r.IntroducesBottleneck)
	render := func(title string, rows []TableRow, predicted, measured float64) {
		fmt.Fprintf(&b, "%s\n", title)
		b.WriteString("  metric    ")
		for _, row := range rows {
			fmt.Fprintf(&b, "%10s", row.Name)
		}
		b.WriteString("\n  mu^-1(ms) ")
		for _, row := range rows {
			fmt.Fprintf(&b, "%10.2f", row.MuInv)
		}
		b.WriteString("\n  d^-1(ms)  ")
		for _, row := range rows {
			fmt.Fprintf(&b, "%10.2f", row.DeltaInv)
		}
		b.WriteString("\n  rho       ")
		for _, row := range rows {
			fmt.Fprintf(&b, "%10.2f", row.Rho)
		}
		fmt.Fprintf(&b, "\n  throughput: %.0f predicted, %.0f measured (tuples/s)\n", predicted, measured)
	}
	render("original topology", r.Before, r.PredictedBefore, r.MeasuredBefore)
	render("topology after fusion", r.After, r.PredictedAfter, r.MeasuredAfter)
	return b.String()
}
