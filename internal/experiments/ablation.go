package experiments

import (
	"fmt"
	"strings"

	"spinstreams/internal/core"
	"spinstreams/internal/keypart"
	"spinstreams/internal/qsim"
	"spinstreams/internal/stats"
)

// KeyPartRow compares partitioners at one skew level.
type KeyPartRow struct {
	ZipfExp    float64
	GreedyPMax float64
	HashPMax   float64
	GreedyReps int
	HashReps   int
	IdealPMax  float64
}

// KeyPartResult is the key-partitioning ablation (DESIGN.md): greedy LPT
// packing versus load-oblivious hashing across ZipF skews.
type KeyPartResult struct {
	Keys     int
	Replicas int
	Rows     []KeyPartRow
}

// KeyPartitioningAblation measures pmax for both partitioners over a range
// of key skews.
func KeyPartitioningAblation(keys, replicas int, exps []float64) (*KeyPartResult, error) {
	if keys <= 0 {
		keys = 100
	}
	if replicas <= 0 {
		replicas = 8
	}
	if len(exps) == 0 {
		exps = []float64{0.5, 1.0, 1.5, 2.0, 2.5}
	}
	res := &KeyPartResult{Keys: keys, Replicas: replicas}
	for _, exp := range exps {
		freq := stats.ZipfWeights(keys, exp)
		g, err := keypart.Greedy{}.Partition(freq, replicas)
		if err != nil {
			return nil, err
		}
		h, err := keypart.ConsistentHash{Seed: 11}.Partition(freq, replicas)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, KeyPartRow{
			ZipfExp:    exp,
			GreedyPMax: g.PMax,
			HashPMax:   h.PMax,
			GreedyReps: g.Replicas,
			HashReps:   h.Replicas,
			IdealPMax:  1 / float64(replicas),
		})
	}
	return res, nil
}

// String renders the ablation table.
func (r *KeyPartResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — key partitioning (%d keys, %d replicas requested)\n", r.Keys, r.Replicas)
	b.WriteString("zipf-exp  greedy-pmax  hash-pmax  greedy-reps  hash-reps  ideal-pmax\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8.2f  %11.3f  %9.3f  %11d  %9d  %10.3f\n",
			row.ZipfExp, row.GreedyPMax, row.HashPMax, row.GreedyReps, row.HashReps, row.IdealPMax)
	}
	return b.String()
}

// BufferRow is one mailbox-capacity measurement.
type BufferRow struct {
	Capacity   int
	Throughput float64
	RelErr     float64
}

// BufferResult is the mailbox-capacity ablation: the steady-state model is
// capacity-independent, and the simulated throughput should be insensitive
// to the capacity beyond tiny mailboxes.
type BufferResult struct {
	Predicted float64
	Rows      []BufferRow
}

// BufferSizeAblation sweeps the mailbox capacity on the paper's example
// topology.
func BufferSizeAblation(s Setup, capacities []int) (*BufferResult, error) {
	s = s.withDefaults()
	if len(capacities) == 0 {
		capacities = []int{1, 2, 4, 8, 16, 64, 256}
	}
	topo, _ := core.PaperExampleTopology(core.PaperExampleTable2)
	a, err := core.SteadyState(topo)
	if err != nil {
		return nil, err
	}
	res := &BufferResult{Predicted: a.Throughput()}
	for i, c := range capacities {
		cfg := s.simConfig(i)
		cfg.BufferSize = c
		sim, err := qsim.SimulateTopology(topo, nil, cfg)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, BufferRow{
			Capacity:   c,
			Throughput: sim.Throughput,
			RelErr:     stats.RelErr(sim.Throughput, a.Throughput()),
		})
	}
	return res, nil
}

// String renders the sweep.
func (r *BufferResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation — mailbox capacity (predicted throughput %.1f t/s)\n", r.Predicted)
	b.WriteString("capacity  throughput(t/s)  rel.err\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d  %15.1f  %6.2f%%\n", row.Capacity, row.Throughput, row.RelErr*100)
	}
	return b.String()
}
