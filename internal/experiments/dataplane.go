package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"spinstreams/internal/core"
	"spinstreams/internal/mailbox"
	"spinstreams/internal/operators"
	"spinstreams/internal/plan"
	"spinstreams/internal/runtime"
)

// DataplaneOptions tunes the transport-comparison scenario.
type DataplaneOptions struct {
	// Depth is the number of operators in the linear chain (default 8).
	// Every edge of a chain is single-producer, so the analyzer proves
	// the whole pipeline SPSC-eligible — the ring's best case.
	Depth int
	// Duration is the wall-clock run per transport (default 2s).
	Duration time.Duration
	// MailboxSize is the per-inbox tuple capacity (default 512).
	MailboxSize int
	// Batch is the micro-batch size for the batched/spsc paths
	// (default 128).
	Batch int
}

func (o DataplaneOptions) withDefaults() DataplaneOptions {
	if o.Depth <= 0 {
		o.Depth = 8
	}
	if o.Duration <= 0 {
		o.Duration = 2 * time.Second
	}
	if o.MailboxSize <= 0 {
		o.MailboxSize = 512
	}
	if o.Batch <= 0 {
		o.Batch = 128
	}
	return o
}

// DataplaneRow is one transport's measurement on the chain.
type DataplaneRow struct {
	Transport  string
	Throughput float64
	// SpeedupVsTuple and SpeedupVsBatch normalize against the two
	// uniform transports (1.0 for the respective baseline row).
	SpeedupVsTuple float64
	SpeedupVsBatch float64
	// SPSCInboxes / MPSCInboxes count how the run bound the plan's
	// inboxes (uniform transports bind everything to one path).
	SPSCInboxes int
	MPSCInboxes int
	// Conserved reports the tuple-conservation identity for the run.
	Conserved bool
}

// DataplaneResult compares the dataplane transports on a deep
// single-producer chain with service padding disabled, so tuples/s is
// bounded by per-item synchronization cost — the quantity the SPSC ring
// exists to cut.
type DataplaneResult struct {
	Depth int
	Rows  []DataplaneRow
}

// Dataplane measures per-tuple, batched, and analyzer-selected SPSC
// transports on the same unpadded chain.
func Dataplane(ctx context.Context, o DataplaneOptions) (*DataplaneResult, error) {
	o = o.withDefaults()
	topo := core.NewTopology()
	var prev core.OpID
	for i := 0; i < o.Depth; i++ {
		kind := core.KindStateless
		switch i {
		case 0:
			kind = core.KindSource
		case o.Depth - 1:
			kind = core.KindSink
		}
		id := topo.MustAddOperator(core.Operator{
			Name: fmt.Sprintf("op%d", i+1), Kind: kind, ServiceTime: 0.001,
		})
		if i > 0 {
			topo.MustConnect(prev, id, 1)
		}
		prev = id
	}
	p, err := plan.Build(topo, plan.Options{})
	if err != nil {
		return nil, fmt.Errorf("dataplane: %w", err)
	}
	rings := 0
	for _, tr := range plan.Transports(p) {
		if tr == plan.TransportSPSC {
			rings++
		}
	}

	res := &DataplaneResult{Depth: o.Depth}
	for _, tc := range []struct {
		name string
		mode mailbox.Mode
	}{
		{"per-tuple", mailbox.PerTuple},
		{"batched", mailbox.Batched},
		{"spsc", mailbox.Auto},
	} {
		gen, err := operators.NewGenerator(operators.GeneratorConfig{
			Seed: 1, NumKeys: 4, NumFields: 1,
		})
		if err != nil {
			return nil, fmt.Errorf("dataplane: %w", err)
		}
		m, err := runtime.RunTopology(ctx, topo, nil, nil, runtime.Config{
			Seed:             1,
			Duration:         o.Duration,
			Warmup:           o.Duration / 4,
			MailboxSize:      o.MailboxSize,
			NoServicePadding: true,
			Mailbox:          tc.mode,
			Batch:            o.Batch,
			Generator:        gen,
		})
		if err != nil {
			return nil, fmt.Errorf("dataplane %s: %w", tc.name, err)
		}
		row := DataplaneRow{
			Transport:  tc.name,
			Throughput: m.Throughput,
			Conserved: m.Totals.Generated == m.Totals.Delivered+m.Totals.Shed+
				m.Totals.Failed+m.Totals.Drained+m.Totals.Abandoned,
			MPSCInboxes: len(p.Stations),
		}
		if tc.mode == mailbox.Auto {
			row.SPSCInboxes = rings
			row.MPSCInboxes = len(p.Stations) - rings
		}
		res.Rows = append(res.Rows, row)
	}
	base := res.Rows[0].Throughput
	batched := res.Rows[1].Throughput
	for i := range res.Rows {
		if base > 0 {
			res.Rows[i].SpeedupVsTuple = res.Rows[i].Throughput / base
		}
		if batched > 0 {
			res.Rows[i].SpeedupVsBatch = res.Rows[i].Throughput / batched
		}
	}
	return res, nil
}

// CheckDataplane asserts the scenario's structural invariants — the ones
// that hold on any machine: every transport conserves tuples, and the
// Auto policy bound every inbox of the chain to the ring (a chain has no
// multi-producer edge). Relative speeds are recorded, not asserted;
// cmd/benchgate holds the ring to its speedup on dedicated hardware.
func CheckDataplane(r Result) error {
	dr, ok := r.(*DataplaneResult)
	if !ok {
		return fmt.Errorf("dataplane: unexpected result type %T", r)
	}
	if len(dr.Rows) != 3 {
		return fmt.Errorf("dataplane: %d rows, want 3", len(dr.Rows))
	}
	for _, row := range dr.Rows {
		if !row.Conserved {
			return fmt.Errorf("dataplane %s: tuple conservation violated", row.Transport)
		}
		if row.Throughput <= 0 {
			return fmt.Errorf("dataplane %s: no throughput", row.Transport)
		}
	}
	spsc := dr.Rows[2]
	if spsc.MPSCInboxes != 0 {
		return fmt.Errorf("dataplane: %d inboxes fell back to MPSC on a single-producer chain", spsc.MPSCInboxes)
	}
	if spsc.SPSCInboxes != dr.Depth {
		return fmt.Errorf("dataplane: %d ring inboxes, want %d", spsc.SPSCInboxes, dr.Depth)
	}
	return nil
}

// String renders the comparison.
func (r *DataplaneResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Dataplane transports — %d-operator single-producer chain, no service padding\n", r.Depth)
	b.WriteString("transport   tuples/s      vs tuple  vs batch  spsc-inboxes\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-10s  %12.0f  %7.2fx  %7.2fx  %d/%d\n",
			row.Transport, row.Throughput, row.SpeedupVsTuple, row.SpeedupVsBatch,
			row.SPSCInboxes, row.SPSCInboxes+row.MPSCInboxes)
	}
	return b.String()
}

// Header implements Tabular.
func (r *DataplaneResult) Header() []string {
	return []string{"transport", "tuples_per_sec", "speedup_vs_tuple", "speedup_vs_batch",
		"spsc_inboxes", "mpsc_inboxes", "conserved"}
}

// TableRows implements Tabular.
func (r *DataplaneResult) TableRows() [][]string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			row.Transport, f(row.Throughput), f(row.SpeedupVsTuple), f(row.SpeedupVsBatch),
			d(row.SPSCInboxes), d(row.MPSCInboxes), fmt.Sprintf("%t", row.Conserved),
		})
	}
	return rows
}
