// Package experiments contains one driver per table and figure of the
// paper's evaluation (Section 5), built on the shared testbed of random
// topologies. Each driver returns a result struct whose String method
// renders the same rows/series the paper reports; cmd/ssbench regenerates
// everything and EXPERIMENTS.md records paper-vs-measured.
package experiments

import (
	"fmt"
	"strings"

	"spinstreams/internal/core"
	"spinstreams/internal/qsim"
	"spinstreams/internal/randtopo"
	"spinstreams/internal/stats"
)

// Setup configures the shared testbed and measurement substrate.
type Setup struct {
	// Seed derives the testbed (paper: 50 random topologies).
	Seed uint64
	// Topologies is the testbed size (default 50).
	Topologies int
	// Sim configures the discrete-event measurements; the zero value uses
	// qsim defaults (exponential service, 40 simulated seconds).
	Sim qsim.Config
	// Topo configures topology generation; zero value uses the paper's
	// parameters.
	Topo randtopo.Config
}

func (s Setup) withDefaults() Setup {
	if s.Topologies <= 0 {
		s.Topologies = 50
	}
	if s.Topo.Seed == 0 {
		s.Topo.Seed = s.Seed
	}
	return s
}

// buildTestbed generates the testbed once.
func buildTestbed(s Setup) ([]*randtopo.Generated, error) {
	return randtopo.Testbed(s.Topo, s.Topologies)
}

func (s Setup) simConfig(i int) qsim.Config {
	cfg := s.Sim
	cfg.Seed = s.Seed*1_000_003 + uint64(i)
	return cfg
}

// Fig7Row is one topology's predicted-vs-measured throughput (Figure 7).
type Fig7Row struct {
	Topology  int
	Operators int
	Predicted float64
	Measured  float64
	RelErr    float64
}

// Fig7Result reproduces Figures 7a and 7b: accuracy of the backpressure
// model on the non-optimized testbed.
type Fig7Result struct {
	Rows    []Fig7Row
	ErrStat stats.Summary
}

// Fig7 runs the steady-state prediction and the simulation for every
// testbed topology.
func Fig7(s Setup) (*Fig7Result, error) {
	s = s.withDefaults()
	bed, err := buildTestbed(s)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{}
	errs := make([]float64, 0, len(bed))
	for i, g := range bed {
		a, err := core.SteadyState(g.Topology)
		if err != nil {
			return nil, fmt.Errorf("fig7 topology %d: %w", i+1, err)
		}
		sim, err := qsim.SimulateTopology(g.Topology, nil, s.simConfig(i))
		if err != nil {
			return nil, fmt.Errorf("fig7 topology %d: %w", i+1, err)
		}
		relErr := stats.RelErr(sim.Throughput, a.Throughput())
		res.Rows = append(res.Rows, Fig7Row{
			Topology:  i + 1,
			Operators: g.Topology.Len(),
			Predicted: a.Throughput(),
			Measured:  sim.Throughput,
			RelErr:    relErr,
		})
		errs = append(errs, relErr)
	}
	res.ErrStat = stats.Summarize(errs)
	return res, nil
}

// String renders the Figure 7 series.
func (r *Fig7Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 7 — accuracy of the backpressure model (per topology)\n")
	b.WriteString("topology  ops  predicted(t/s)  measured(t/s)  rel.err\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d  %3d  %14.1f  %13.1f  %6.2f%%\n",
			row.Topology, row.Operators, row.Predicted, row.Measured, row.RelErr*100)
	}
	fmt.Fprintf(&b, "mean error %.2f%%  (stddev %.2f%%, max %.2f%%)\n",
		r.ErrStat.Mean*100, r.ErrStat.StdDev*100, r.ErrStat.Max*100)
	return b.String()
}

// Fig8Result reproduces Figure 8: the per-operator departure-rate
// prediction error over every operator of the testbed.
type Fig8Result struct {
	// Errors holds one relative error per operator across all topologies.
	Errors []float64
	// Operators counts them (paper: 678).
	Operators int
	// Above20 counts operators with error above 20% (paper: a few, all on
	// low-probability paths still far from steady state).
	Above20 int
	ErrStat stats.Summary
}

// Fig8 compares predicted and measured departure rates operator by
// operator.
func Fig8(s Setup) (*Fig8Result, error) {
	s = s.withDefaults()
	bed, err := buildTestbed(s)
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{}
	for i, g := range bed {
		a, err := core.SteadyState(g.Topology)
		if err != nil {
			return nil, fmt.Errorf("fig8 topology %d: %w", i+1, err)
		}
		sim, err := qsim.SimulateTopology(g.Topology, nil, s.simConfig(i))
		if err != nil {
			return nil, fmt.Errorf("fig8 topology %d: %w", i+1, err)
		}
		for op := 0; op < g.Topology.Len(); op++ {
			res.Errors = append(res.Errors, stats.RelErr(sim.Departure[op], a.Delta[op]))
		}
	}
	res.Operators = len(res.Errors)
	for _, e := range res.Errors {
		if e > 0.20 {
			res.Above20++
		}
	}
	res.ErrStat = stats.Summarize(res.Errors)
	return res, nil
}

// String renders the Figure 8 summary.
func (r *Fig8Result) String() string {
	var b strings.Builder
	b.WriteString("Figure 8 — per-operator departure-rate prediction error\n")
	fmt.Fprintf(&b, "operators: %d\n", r.Operators)
	fmt.Fprintf(&b, "mean error %.2f%%  stddev %.2f%%  p50 %.2f%%  p90 %.2f%%  p99 %.2f%%  max %.2f%%\n",
		r.ErrStat.Mean*100, r.ErrStat.StdDev*100, r.ErrStat.P50*100,
		r.ErrStat.P90*100, r.ErrStat.P99*100, r.ErrStat.Max*100)
	fmt.Fprintf(&b, "operators above 20%% error: %d\n", r.Above20)
	return b.String()
}
