package experiments

import (
	"context"
	"fmt"
	"strings"
	"time"

	"spinstreams/internal/core"
	"spinstreams/internal/obs"
	"spinstreams/internal/operators"
	"spinstreams/internal/runtime"
)

// slowStage is a unit-gain stateless operator whose real cost exceeds its
// declared profile: the drift injection that gives the autonomic loop a
// genuine correction to make.
type slowStage struct{ cost time.Duration }

func (s *slowStage) Name() string              { return "slow-stage" }
func (s *slowStage) Meta() operators.Meta      { return operators.Meta{Kind: core.KindStateless} }
func (s *slowStage) Clone() operators.Operator { return &slowStage{cost: s.cost} }

func (s *slowStage) Process(in operators.Tuple, emit operators.Emit) {
	time.Sleep(s.cost)
	emit(in)
}

// AutotuneDemoResult is the live autonomic-loop walkthrough: a deployment
// whose hot operator runs slower than declared is measured, re-optimized,
// and rescaled in-flight, round by round, with no restart between the
// drifted and the repaired configuration.
type AutotuneDemoResult struct {
	// Model is the topology the controller deployed (declared profiles);
	// the hot operator's bound implementation really costs SlowFactor
	// times its declared service time.
	Model      *core.Topology
	SlowFactor float64
	HotOp      string
	// Rounds are the loop's iterations: drift measured, delta proposed,
	// delta applied (or not).
	Rounds []runtime.AutotuneRound
	// Replicas is the per-operator replication after the loop.
	Replicas []int
	// Stalls is the pause-fence duration of every applied change.
	Stalls []time.Duration
	// Metrics covers the final post-apply measurement window.
	Metrics *runtime.Metrics
}

// AutotuneDemo closes the loop the reopt demo leaves open: instead of only
// *printing* the delta plan that would repair the drifted deployment, the
// controller applies it while tuples flow. A stateless stage declared at
// 1 ms really costs slowFactor ms, so the first measured window shows the
// drift, Reoptimize prescribes replicas, ApplyDelta installs them behind a
// pause fence, and the following windows measure the recovered throughput
// — all in one process lifetime.
func AutotuneDemo(ctx context.Context, slowFactor float64, rounds int, opts LiveOptions) (*AutotuneDemoResult, error) {
	if slowFactor <= 1 {
		slowFactor = 3
	}
	if rounds <= 0 {
		rounds = 3
	}
	interval := opts.Duration
	if interval <= 0 {
		interval = 800 * time.Millisecond
	}

	model := core.NewTopology()
	src := model.MustAddOperator(core.Operator{Name: "source", Kind: core.KindSource, ServiceTime: 2e-3})
	hot := model.MustAddOperator(core.Operator{Name: "hot", Kind: core.KindStateless, ServiceTime: 1e-3})
	sink := model.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.2e-3})
	model.MustConnect(src, hot, 1)
	model.MustConnect(hot, sink, 1)

	binding := &runtime.Binding{Ops: map[core.OpID]operators.Operator{
		hot: &slowStage{cost: time.Duration(slowFactor * float64(time.Millisecond))},
	}}
	c, err := runtime.StartTopology(model, nil, binding, runtime.Config{
		Seed:        1,
		Warmup:      interval / 2,
		MailboxSize: opts.MailboxSize,
		Mailbox:     opts.Transport,
		Batch:       opts.Batch,
		Linger:      opts.Linger,
		MaxRestarts: opts.MaxRestarts,
		Obs:         obs.New(),
	})
	if err != nil {
		return nil, fmt.Errorf("autotune demo: start: %w", err)
	}
	rep, aerr := c.Autotune(ctx, runtime.AutotuneOptions{Interval: interval, Rounds: rounds})
	replicas := c.Replicas()
	stalls := c.Stalls()
	m, err := c.Stop()
	if aerr != nil {
		return nil, fmt.Errorf("autotune demo: loop: %w", aerr)
	}
	if err != nil {
		return nil, fmt.Errorf("autotune demo: stop: %w", err)
	}
	return &AutotuneDemoResult{
		Model:      model,
		SlowFactor: slowFactor,
		HotOp:      "hot",
		Rounds:     rep.Rounds,
		Replicas:   replicas,
		Stalls:     stalls,
		Metrics:    m,
	}, nil
}

// Header implements Tabular: one row per autonomic round.
func (r *AutotuneDemoResult) Header() []string {
	return []string{"round", "measured_tps", "model_tps", "throughput_err", "applied", "rescaled", "stall_ms", "migrated_keys"}
}

// TableRows implements Tabular.
func (r *AutotuneDemoResult) TableRows() [][]string {
	rows := make([][]string, 0, len(r.Rounds))
	for _, round := range r.Rounds {
		applied, rescaled, stall, keys := 0, 0, 0.0, 0
		if round.Apply != nil {
			applied = 1
			rescaled = round.Apply.Rescaled
			stall = float64(round.Apply.Stall) / float64(time.Millisecond)
			keys = round.Apply.MigratedKeys
		}
		rows = append(rows, []string{
			d(round.Round),
			f(round.Drift.MeasuredThroughput),
			f(round.Drift.PredictedThroughput),
			f(round.Drift.ThroughputErr),
			d(applied),
			d(rescaled),
			f(stall),
			d(keys),
		})
	}
	return rows
}

// String renders the walkthrough.
func (r *AutotuneDemoResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Autotune walkthrough — %s deployed %.1fx slower than declared, repaired in-flight\n",
		r.HotOp, r.SlowFactor)
	for _, round := range r.Rounds {
		fmt.Fprintf(&b, "round %d: measured %.1f t/s (model %.1f, err %+.1f%%)\n",
			round.Round, round.Drift.MeasuredThroughput, round.Drift.PredictedThroughput,
			100*round.Drift.ThroughputErr)
		switch {
		case round.Apply != nil:
			fmt.Fprintf(&b, "  applied live: epoch %d, stall %s, %d keys migrated\n",
				round.Apply.Epoch, round.Apply.Stall, round.Apply.MigratedKeys)
			b.WriteString(indent(round.Delta.String()))
		case round.Delta != nil && !round.Delta.Empty():
			b.WriteString("  delta proposed but not applied\n")
		default:
			b.WriteString("  deployment already optimal under the measured profiles\n")
		}
	}
	hot, _ := r.Model.Lookup(r.HotOp)
	fmt.Fprintf(&b, "final: %s at %d replica(s), post-apply throughput %.1f t/s\n",
		r.HotOp, r.Replicas[hot], r.Metrics.Throughput)
	return b.String()
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "  " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
