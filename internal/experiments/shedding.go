package experiments

import (
	"fmt"
	"strings"

	"spinstreams/internal/core"
	"spinstreams/internal/qsim"
	"spinstreams/internal/stats"
)

// SheddingRow compares the two communication semantics on one topology.
type SheddingRow struct {
	Topology int
	// BackpressureDelivered and SheddingDelivered are the measured sink
	// rates under each semantics.
	BackpressureDelivered float64
	SheddingDelivered     float64
	// PredictedLoss and MeasuredLoss are the end-to-end loss fractions
	// under shedding.
	PredictedLoss float64
	MeasuredLoss  float64
}

// SheddingResult reproduces the Section 2 trade-off quantitatively:
// backpressure preserves every item by throttling the source, load
// shedding keeps sources at full speed and pays with data loss. The
// shedding steady-state model (SteadyStateShedding) predicts the loss.
type SheddingResult struct {
	Rows []SheddingRow
	// LossErrStat summarizes |measured - predicted| loss across the
	// testbed (absolute, in fraction points).
	LossErrStat stats.Summary
}

// Shedding runs both semantics across the testbed.
func Shedding(s Setup) (*SheddingResult, error) {
	s = s.withDefaults()
	bed, err := buildTestbed(s)
	if err != nil {
		return nil, err
	}
	res := &SheddingResult{}
	var lossErrs []float64
	for i, g := range bed {
		model, err := core.SteadyStateShedding(g.Topology)
		if err != nil {
			return nil, fmt.Errorf("shedding topology %d: %w", i+1, err)
		}
		bp, err := qsim.SimulateTopology(g.Topology, nil, s.simConfig(i))
		if err != nil {
			return nil, err
		}
		shedCfg := s.simConfig(i)
		shedCfg.Shedding = true
		shed, err := qsim.SimulateTopology(g.Topology, nil, shedCfg)
		if err != nil {
			return nil, err
		}
		bpDelivered, shedDelivered := 0.0, 0.0
		for _, sink := range g.Topology.Sinks() {
			bpDelivered += bp.Departure[sink]
			shedDelivered += shed.Departure[sink]
		}
		// Measured loss: compare the shedding run's delivered flow to the
		// loss-free reference (delivered / would-be-delivered).
		measuredLoss := 0.0
		if ideal := model.SinkRate / (1 - model.LossFraction + 1e-12); ideal > 0 {
			measuredLoss = 1 - shedDelivered/ideal
			if measuredLoss < 0 {
				measuredLoss = 0
			}
		}
		row := SheddingRow{
			Topology:              i + 1,
			BackpressureDelivered: bpDelivered,
			SheddingDelivered:     shedDelivered,
			PredictedLoss:         model.LossFraction,
			MeasuredLoss:          measuredLoss,
		}
		res.Rows = append(res.Rows, row)
		diff := row.MeasuredLoss - row.PredictedLoss
		if diff < 0 {
			diff = -diff
		}
		lossErrs = append(lossErrs, diff)
	}
	res.LossErrStat = stats.Summarize(lossErrs)
	return res, nil
}

// String renders the comparison.
func (r *SheddingResult) String() string {
	var b strings.Builder
	b.WriteString("Backpressure vs load shedding (Section 2 trade-off)\n")
	b.WriteString("topology  bp-delivered(t/s)  shed-delivered(t/s)  predicted-loss  measured-loss\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%8d  %17.1f  %19.1f  %13.1f%%  %12.1f%%\n",
			row.Topology, row.BackpressureDelivered, row.SheddingDelivered,
			row.PredictedLoss*100, row.MeasuredLoss*100)
	}
	fmt.Fprintf(&b, "mean |measured-predicted| loss: %.2f points (max %.2f)\n",
		r.LossErrStat.Mean*100, r.LossErrStat.Max*100)
	return b.String()
}

// Header implements Tabular.
func (r *SheddingResult) Header() []string {
	return []string{"topology", "bp_delivered", "shed_delivered", "predicted_loss", "measured_loss"}
}

// TableRows implements Tabular.
func (r *SheddingResult) TableRows() [][]string {
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, []string{
			d(row.Topology), f(row.BackpressureDelivered), f(row.SheddingDelivered),
			f(row.PredictedLoss), f(row.MeasuredLoss),
		})
	}
	return rows
}
