// Scenario registrations: every evaluation driver — the paper figures and
// tables, the ablations, the live walkthroughs, the corpus and the chaos
// soak — enters the registry here, so cmd/ssbench (and any other caller)
// can enumerate, filter and run them uniformly.
package experiments

import (
	"context"

	"spinstreams/internal/core"
)

func init() {
	Register(Scenario{
		Name:    "fig7",
		Tags:    []string{"sim", "paper", "default"},
		Summary: "Figure 7: backpressure-model throughput accuracy on the testbed",
		Run: func(_ context.Context, o Options) (Result, error) {
			return Fig7(o.Setup)
		},
	})
	Register(Scenario{
		Name:    "fig8",
		Tags:    []string{"sim", "paper", "default"},
		Summary: "Figure 8: per-operator departure-rate prediction error",
		Run: func(_ context.Context, o Options) (Result, error) {
			return Fig8(o.Setup)
		},
	})
	Register(Scenario{
		Name:    "fig9",
		Tags:    []string{"sim", "paper", "default"},
		Summary: "Figure 9: throughput after bottleneck elimination (Algorithm 2)",
		Run: func(_ context.Context, o Options) (Result, error) {
			return Fig9(o.Setup)
		},
	})
	Register(Scenario{
		Name:    "fig10",
		Tags:    []string{"sim", "paper", "default"},
		Summary: "Figure 10: fission under replica-budget bounds",
		Run: func(_ context.Context, o Options) (Result, error) {
			return Fig10(o.Setup)
		},
	})
	Register(Scenario{
		Name:    "table1",
		Tags:    []string{"sim", "paper", "default"},
		Summary: "Tables 1/3: operator fusion on the paper example (variant 1)",
		Run: func(_ context.Context, o Options) (Result, error) {
			return Table(o.Setup, core.PaperExampleTable1)
		},
	})
	Register(Scenario{
		Name:    "table2",
		Tags:    []string{"sim", "paper", "default"},
		Summary: "Tables 2/4: operator fusion on the paper example (variant 2)",
		Run: func(_ context.Context, o Options) (Result, error) {
			return Table(o.Setup, core.PaperExampleTable2)
		},
	})
	Register(Scenario{
		Name:    "keypart",
		Tags:    []string{"sim", "ablation", "default"},
		Summary: "key-partitioning ablation: greedy vs consistent-hash pmax",
		Run: func(_ context.Context, o Options) (Result, error) {
			return KeyPartitioningAblation(100, 8, nil)
		},
	})
	Register(Scenario{
		Name:    "buffers",
		Tags:    []string{"sim", "ablation", "default"},
		Summary: "buffer-size ablation: throughput vs mailbox capacity",
		Run: func(_ context.Context, o Options) (Result, error) {
			return BufferSizeAblation(o.Setup, nil)
		},
	})
	Register(Scenario{
		Name:    "latency",
		Tags:    []string{"sim", "ablation", "default"},
		Summary: "queueing-latency accuracy across utilization levels",
		Run: func(_ context.Context, o Options) (Result, error) {
			return Latency(o.Setup, nil)
		},
	})
	Register(Scenario{
		Name:    "shedding",
		Tags:    []string{"sim", "extension", "default"},
		Summary: "load shedding: throughput/drop tradeoff under overload",
		Run: func(_ context.Context, o Options) (Result, error) {
			return Shedding(o.Setup)
		},
	})
	Register(Scenario{
		Name:    "elasticity",
		Tags:    []string{"sim", "extension", "default"},
		Summary: "static optimization vs reactive scaling on one topology",
		Run: func(_ context.Context, o Options) (Result, error) {
			return Elasticity(o.Setup, ElasticityOptions{})
		},
	})
	Register(Scenario{
		Name:    "corpus",
		Tags:    []string{"sim", "paper", "workload", "extension"},
		Summary: "Section 5 corpus: 50 topologies x workloads x {unopt, static, autotune}",
		Run: func(ctx context.Context, o Options) (Result, error) {
			return Corpus(ctx, o.Setup, o.Corpus)
		},
		Check: CheckCorpus,
	})
	Register(Scenario{
		Name:    "estimator",
		Tags:    []string{"sim", "extension", "workload", "default"},
		Summary: "probe-free service-rate estimation vs qsim ground truth",
		Run: func(ctx context.Context, o Options) (Result, error) {
			return Estimator(ctx, o.Estimator)
		},
		Check: CheckEstimator,
	})
	Register(Scenario{
		Name:    "fig7live",
		Tags:    []string{"live", "paper"},
		Summary: "Figure 7 measured on the live goroutine runtime",
		Run: func(ctx context.Context, o Options) (Result, error) {
			return Fig7Live(ctx, o.Setup, o.Live)
		},
	})
	Register(Scenario{
		Name:    "drift",
		Tags:    []string{"live", "extension"},
		Summary: "predict, optimize, run, verify walkthrough on the paper example",
		Run: func(ctx context.Context, o Options) (Result, error) {
			variant := core.PaperExampleTable2
			if o.DriftTable == 1 {
				variant = core.PaperExampleTable1
			}
			return DriftDemo(ctx, variant, o.Live)
		},
	})
	Register(Scenario{
		Name:    "reopt",
		Tags:    []string{"live", "extension"},
		Summary: "drift then reoptimize: delta plan from measured profiles",
		Run: func(ctx context.Context, o Options) (Result, error) {
			return ReoptimizeDemo(ctx, o.SlowFactor, o.Live)
		},
	})
	Register(Scenario{
		Name:    "autotune",
		Tags:    []string{"live", "extension"},
		Summary: "live autonomic loop: measure, re-optimize, apply the delta in-flight",
		Run: func(ctx context.Context, o Options) (Result, error) {
			live := o.Live
			if o.AutotuneInterval > 0 {
				live.Duration = o.AutotuneInterval
			}
			return AutotuneDemo(ctx, o.SlowFactor, o.AutotuneRounds, live)
		},
	})
	Register(Scenario{
		Name:    "dataplane",
		Tags:    []string{"live", "extension"},
		Summary: "dataplane transports: per-tuple vs batched vs analyzer-proven SPSC ring",
		Run: func(ctx context.Context, o Options) (Result, error) {
			return Dataplane(ctx, o.Dataplane)
		},
		Check: CheckDataplane,
	})
	Register(Scenario{
		Name:    "chaos",
		Tags:    []string{"live", "extension"},
		Summary: "fault-injection soak: tuple conservation under panics and stalls",
		Run: func(ctx context.Context, o Options) (Result, error) {
			return Chaos(ctx, o.Setup, o.Chaos)
		},
		Check: CheckChaos,
	})
}
