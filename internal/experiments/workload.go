// Workload shapes extend the paper's steady-arrival evaluation with the
// production-shaped traffic the corpus runner stresses each topology
// with: bursty on/off arrivals, diurnal load curves, and hot-key skew on
// partitioned-stateful operators. A workload is applied in two places:
// its Envelope modulates the qsim source rate over simulated time, and
// its key transform rewrites the deployed topology's key-frequency
// distributions (the declared topology — what the static optimizer sees —
// stays untouched, which is exactly the blind spot the static-vs-autotune
// comparison measures).
package experiments

import (
	"fmt"
	"math"

	"spinstreams/internal/core"
	"spinstreams/internal/qsim"
)

// Workload describes one traffic shape.
type Workload struct {
	// Name is the stable identifier used in corpus rows and flags.
	Name string
	// Envelope modulates the source generation rate over simulated time;
	// nil means steady (identically 1). Mean close to 1 keeps offered
	// load comparable across workloads.
	Envelope func(t float64) float64
	// HotKeyShare, when > 0, rewrites every partitioned-stateful
	// operator's key distribution so one key carries that input fraction
	// (the rest share the remainder evenly).
	HotKeyShare float64
}

// Steady is the paper's workload: constant-rate arrivals.
func Steady() Workload { return Workload{Name: "steady"} }

// Bursty alternates burst-factor and trough generation with the given
// duty cycle, normalized to mean 1: period seconds per cycle, the first
// duty fraction at `burst` times the base rate, the rest at a trough
// level chosen so the time-averaged envelope is 1.
func Bursty(burst, duty, period float64) Workload {
	if burst <= 1 {
		burst = 4
	}
	if duty <= 0 || duty >= 1 {
		duty = 0.25
	}
	if period <= 0 {
		period = 2
	}
	trough := (1 - burst*duty) / (1 - duty)
	if trough < 0.01 {
		trough = 0.01
	}
	return Workload{
		Name: "bursty",
		Envelope: func(t float64) float64 {
			if math.Mod(t, period) < duty*period {
				return burst
			}
			return trough
		},
	}
}

// Diurnal is a sinusoidal load curve with the given amplitude in (0, 1)
// and period in simulated seconds; mean 1 by construction.
func Diurnal(amp, period float64) Workload {
	if amp <= 0 || amp >= 1 {
		amp = 0.6
	}
	if period <= 0 {
		period = 8
	}
	return Workload{
		Name: "diurnal",
		Envelope: func(t float64) float64 {
			return 1 + amp*math.Sin(2*math.Pi*t/period)
		},
	}
}

// HotKeySkew keeps arrivals steady but concentrates the given share of
// every partitioned-stateful operator's traffic onto a single key —
// the skew that caps keypart's achievable pmax.
func HotKeySkew(share float64) Workload {
	if share <= 0 || share >= 1 {
		share = 0.6
	}
	return Workload{Name: "hotkey", HotKeyShare: share}
}

// WorkloadByName resolves the canonical corpus workloads.
func WorkloadByName(name string) (Workload, error) {
	switch name {
	case "steady":
		return Steady(), nil
	case "bursty":
		return Bursty(4, 0.25, 2), nil
	case "diurnal":
		return Diurnal(0.6, 8), nil
	case "hotkey":
		return HotKeySkew(0.6), nil
	}
	return Workload{}, fmt.Errorf("unknown workload %q (have steady, bursty, diurnal, hotkey)", name)
}

// Apply returns the deployed topology under this workload: a clone with
// the key-skew transform applied (or the input itself when the workload
// does not touch keys).
func (w Workload) Apply(t *core.Topology) *core.Topology {
	if w.HotKeyShare <= 0 {
		return t
	}
	out := t.Clone()
	for i := 0; i < out.Len(); i++ {
		op := out.Op(core.OpID(i))
		if op.Kind != core.KindPartitionedStateful || op.Keys == nil || len(op.Keys.Freq) < 2 {
			continue
		}
		n := len(op.Keys.Freq)
		freq := make([]float64, n)
		rest := (1 - w.HotKeyShare) / float64(n-1)
		for k := range freq {
			freq[k] = rest
		}
		freq[0] = w.HotKeyShare
		op.Keys = &core.KeyDistribution{Freq: freq}
	}
	return out
}

// MeanEnvelope is the time-averaged envelope over [from, to], sampled at
// fine steps (the envelopes are piecewise-smooth, so midpoint sampling
// converges quickly).
func (w Workload) MeanEnvelope(from, to float64) float64 {
	if w.Envelope == nil || to <= from {
		return 1
	}
	const steps = 4096
	dt := (to - from) / steps
	sum := 0.0
	for i := 0; i < steps; i++ {
		sum += w.Envelope(from + (float64(i)+0.5)*dt)
	}
	return sum / steps
}

// PredictThroughput extends the steady-state model to modulated arrivals
// with a fluid approximation of the bottleneck queue. The envelope scales
// the source's intrinsic generation rate (1/ServiceTime), not the
// topology throughput: a backpressure-throttled source does not speed up
// during bursts, and troughs only bite once the offered rate drops below
// the downstream capacity. Between those regimes the bottleneck's entry
// mailbox smooths transitions — it keeps the bottleneck fed for a while
// after the offered rate collapses — so the prediction integrates a
// single-queue fluid model over the measurement window instead of
// point-wise clipping.
func PredictThroughput(t *core.Topology, replicas []int, w Workload, cfg qsim.Config) (float64, error) {
	deployed := w.Apply(t)
	if replicas == nil {
		replicas = make([]int, deployed.Len())
		for i := range replicas {
			replicas[i] = 1
		}
	}
	base, err := core.SteadyStateWithReplicas(deployed, replicas, nil)
	if err != nil {
		return 0, err
	}
	if w.Envelope == nil {
		return base.Throughput(), nil
	}
	// Downstream capacity: the throughput with the source arbitrarily
	// fast, i.e. what the rest of the topology can absorb. Under
	// backpressure the sped-up source is throttled to exactly that, so
	// its corrected departure rate is the capacity in source items/s.
	fast := deployed.Clone()
	src := fast.Sources()[0]
	srcRate := 1 / fast.Op(src).ServiceTime
	fast.Op(src).ServiceTime *= 1e-6
	capAnalysis, err := core.SteadyStateWithReplicas(fast, replicas, nil)
	if err != nil {
		return 0, err
	}
	capacity := capAnalysis.Throughput()
	// The bottleneck (highest utilization downstream of the source)
	// buffers work in its entry mailbox; convert its capacity into
	// source-item units via its arrivals-per-source-departure ratio.
	bn, bnRho := -1, 0.0
	for i := range capAnalysis.Rho {
		if core.OpID(i) == src {
			continue
		}
		if capAnalysis.Rho[i] > bnRho {
			bn, bnRho = i, capAnalysis.Rho[i]
		}
	}
	buffer := float64(cfg.BufferSize)
	if buffer <= 0 {
		buffer = 64
	}
	queueCap := 0.0
	if bn >= 0 && capacity > 0 && capAnalysis.Lambda[bn] > 0 {
		queueCap = buffer * capacity / capAnalysis.Lambda[bn]
	}
	horizon := cfg.Horizon
	if horizon <= 0 {
		horizon = 40
	}
	warmup := cfg.Warmup
	if warmup <= 0 || warmup >= horizon {
		warmup = horizon / 4
	}
	// Euler integration from t=0 so the queue state at the start of the
	// measurement window reflects the warmup, like the simulation's.
	const steps = 8192
	dt := horizon / steps
	backlog, delivered := 0.0, 0.0
	for i := 0; i < steps; i++ {
		tm := (float64(i) + 0.5) * dt
		offered := w.Envelope(tm) * srcRate
		out := capacity
		if backlog <= 0 && offered < capacity {
			out = offered
		}
		backlog += (offered - out) * dt
		if backlog > queueCap {
			backlog = queueCap // backpressure: the excess is never generated
		}
		if backlog < 0 {
			backlog = 0
		}
		if tm >= warmup {
			delivered += out * dt
		}
	}
	return delivered / (horizon - warmup), nil
}
