package lint

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spinstreams/internal/xmlio"
)

var update = flag.Bool("update", false, "rewrite corpus goldens")

// corpusDir holds one known-bad topology per diagnostic code, each with a
// byte-stable golden of the text report. Sidecars supply what the XML
// cannot express: `<base>.cfg.json` tunes the lint Config, and
// `<base>.trace.json` is a rewrite trace to replay.
const corpusDir = "../../testdata/lint"

type corpusConfig struct {
	AllowCycles     bool     `json:"allow_cycles"`
	FuseMembers     []string `json:"fuse_members"`
	Replicas        []int    `json:"replicas"`
	ReplicaBudget   int      `json:"replica_budget"`
	MailboxCapacity int      `json:"mailbox_capacity"`
	BurstFactor     float64  `json:"burst_factor"`
	BurstSeconds    float64  `json:"burst_seconds"`
	Drift           *struct {
		Stations []string `json:"stations"`
		Replicas []int    `json:"replicas"`
		Profiles int      `json:"profiles"`
	} `json:"drift"`
}

func TestCorpus(t *testing.T) {
	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".xml") {
			continue
		}
		t.Run(name, func(t *testing.T) {
			base := filepath.Join(corpusDir, strings.TrimSuffix(name, ".xml"))

			var cc corpusConfig
			if data, err := os.ReadFile(base + ".cfg.json"); err == nil {
				if err := json.Unmarshal(data, &cc); err != nil {
					t.Fatalf("cfg sidecar: %v", err)
				}
			}
			cfg := Config{
				File:            name,
				FuseMembers:     cc.FuseMembers,
				Replicas:        cc.Replicas,
				ReplicaBudget:   cc.ReplicaBudget,
				AllowCycles:     cc.AllowCycles,
				MailboxCapacity: cc.MailboxCapacity,
				BurstFactor:     cc.BurstFactor,
				BurstSeconds:    cc.BurstSeconds,
			}
			if trace, err := os.ReadFile(base + ".trace.json"); err == nil {
				cfg.Trace = trace
			}

			src, err := os.ReadFile(base + ".xml")
			if err != nil {
				t.Fatal(err)
			}
			doc, pos, err := xmlio.DecodeDocument(bytes.NewReader(src))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			rep := RunDocument(doc, pos, cfg)
			if cc.Drift != nil {
				top, err := xmlio.FromDocument(doc, nil)
				if err != nil {
					t.Fatalf("drift corpus topology must build: %v", err)
				}
				for _, d := range CheckDrift(top, cc.Drift.Stations, cc.Drift.Replicas, cc.Drift.Profiles) {
					rep.add(d)
				}
			}

			// The filename prefix is the code the corpus entry exists for.
			want := strings.SplitN(name, "-", 2)[0]
			found := false
			for _, d := range rep.Diagnostics {
				if d.Code == want {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("no %s diagnostic; got:\n%s", want, reportText(t, rep))
			}

			golden := base + ".golden"
			got := []byte(reportText(t, rep))
			if *update {
				if err := os.WriteFile(golden, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			wantBytes, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden (run with -update): %v", err)
			}
			if !bytes.Equal(got, wantBytes) {
				t.Errorf("report drifted from golden %s;\n got:\n%s\nwant:\n%s", golden, got, wantBytes)
			}
		})
	}
}

// TestCorpusCoversAllCodes pins the append-only contract in both
// directions: every diagnostic code in the rule table has a known-bad
// corpus entry, and every corpus entry names a registered code — an
// entry for an unregistered code means someone added a diagnostic
// without a Rules row (no SARIF metadata, no docs) and must fail CI.
func TestCorpusCoversAllCodes(t *testing.T) {
	entries, err := os.ReadDir(corpusDir)
	if err != nil {
		t.Fatal(err)
	}
	covered := make(map[string]bool)
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".xml") {
			covered[strings.SplitN(e.Name(), "-", 2)[0]] = true
		}
	}
	for _, r := range Rules {
		if !covered[r.Code] {
			t.Errorf("diagnostic code %s (%s) has no corpus entry", r.Code, r.Name)
		}
	}
	for code := range covered {
		if RuleFor(code).Name == "unknown" {
			t.Errorf("corpus entry for %s names a code missing from the Rules table", code)
		}
	}
}

func reportText(t *testing.T, rep *Report) string {
	t.Helper()
	var buf bytes.Buffer
	if err := rep.Text(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}
