package lint

import (
	"fmt"
	"math"
	"strings"

	"spinstreams/internal/core"
	"spinstreams/internal/xmlio"
)

// probTolerance mirrors core's slack for probability-mass checks.
const probTolerance = 1e-6

// structuralTopology checks the graph-shape invariants on a built
// topology. Edge-level validity (positive probabilities, no self-loops,
// no duplicates) is enforced by core.Connect at construction; what
// remains checkable is the global shape.
func structuralTopology(rep *Report, t *core.Topology, cfg Config) {
	if t.Len() == 0 {
		rep.add(Diagnostic{Code: CodeMalformed, Message: "topology is empty"})
		return
	}
	srcs := t.Sources()
	switch {
	case len(srcs) == 0:
		rep.add(Diagnostic{Code: CodeMalformed, Message: "no source: every operator has input edges"})
	case len(srcs) > 1:
		names := make([]string, len(srcs))
		for i, s := range srcs {
			names[i] = t.Op(s).Name
		}
		rep.add(Diagnostic{Code: CodeMalformed,
			Message: fmt.Sprintf("multiple sources: %s (use a fictitious source to root multi-source graphs)", strings.Join(names, ", "))})
	default:
		if op := t.Op(srcs[0]); op.Kind != core.KindSource {
			rep.add(Diagnostic{Code: CodeMalformed, Operator: op.Name,
				Message: fmt.Sprintf("root %q has kind %s, want source", op.Name, op.Kind)})
		}
	}
	for i := 0; i < t.Len(); i++ {
		op := t.Op(core.OpID(i))
		if op.Kind == core.KindSource && (len(srcs) != 1 || srcs[0] != core.OpID(i)) {
			rep.add(Diagnostic{Code: CodeMalformed, Operator: op.Name,
				Message: fmt.Sprintf("%q is a source but has input edges", op.Name)})
		}
		if op.Kind == core.KindSink && len(t.Out(core.OpID(i))) > 0 {
			rep.add(Diagnostic{Code: CodeMalformed, Operator: op.Name,
				Message: fmt.Sprintf("%q is a sink but has output edges", op.Name)})
		}
		if op.InputSelectivity < 0 || op.OutputSelectivity < 0 {
			rep.add(Diagnostic{Code: CodeSelectivityRange, Severity: SeverityWarning, Operator: op.Name,
				Message: fmt.Sprintf("%q has a negative selectivity, which the gain model silently treats as the default of 1", op.Name)})
		}
		if out := t.Out(core.OpID(i)); len(out) > 0 {
			sum := 0.0
			for _, e := range out {
				sum += e.Prob
			}
			if math.Abs(sum-1) > probTolerance {
				rep.add(Diagnostic{Code: CodeProbabilityMass, Operator: op.Name,
					Message: fmt.Sprintf("output probabilities of %q sum to %v, want 1", op.Name, sum)})
			}
		}
	}
	if _, err := t.TopologicalOrder(); err != nil && !cfg.AllowCycles {
		rep.add(Diagnostic{Code: CodeMalformed,
			Message: "topology has a cycle; pass allow-cycles to analyze feedback loops with the fixed-point solver"})
	}
	if len(srcs) == 1 {
		for _, d := range unreachableFrom(t, srcs[0]) {
			rep.add(d)
		}
	}
}

func unreachableFrom(t *core.Topology, src core.OpID) []Diagnostic {
	seen := make([]bool, t.Len())
	seen[src] = true
	stack := []core.OpID{src}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range t.Out(v) {
			if !seen[e.To] {
				seen[e.To] = true
				stack = append(stack, e.To)
			}
		}
	}
	var ds []Diagnostic
	for i, ok := range seen {
		if !ok {
			name := t.Op(core.OpID(i)).Name
			ds = append(ds, Diagnostic{Code: CodeUnreachable, Operator: name,
				Message: fmt.Sprintf("%q is not reachable from the source", name)})
		}
	}
	return ds
}

// checkReplicas validates the requested replication degrees against the
// operator kinds, key domains and the replica budget.
func checkReplicas(rep *Report, t *core.Topology, cfg Config) {
	if cfg.Replicas == nil {
		return
	}
	if len(cfg.Replicas) != t.Len() {
		rep.add(Diagnostic{Code: CodeMalformed,
			Message: fmt.Sprintf("%d replica degrees for %d operators", len(cfg.Replicas), t.Len())})
		return
	}
	total := 0
	for i, n := range cfg.Replicas {
		op := t.Op(core.OpID(i))
		if n < 1 {
			n = 1
		}
		total += n
		if n == 1 {
			continue
		}
		if !op.Kind.CanReplicate() {
			rep.add(Diagnostic{Code: CodeStatefulFission, Operator: op.Name,
				Message: fmt.Sprintf("%q has kind %s and cannot be replicated (requested %d replicas)", op.Name, op.Kind, n)})
			continue
		}
		if op.Kind == core.KindPartitionedStateful && op.Keys != nil && n > len(op.Keys.Freq) {
			rep.add(Diagnostic{Code: CodeReplicaBudget, Operator: op.Name,
				Message: fmt.Sprintf("%q requests %d replicas but partitions only %d keys; the partitioner will consolidate", op.Name, n, len(op.Keys.Freq))})
		}
	}
	if cfg.ReplicaBudget > 0 && total > cfg.ReplicaBudget {
		rep.add(Diagnostic{Code: CodeReplicaBudget,
			Message: fmt.Sprintf("configuration uses %d replicas, exceeding the budget of %d", total, cfg.ReplicaBudget)})
	}
}

// checkFusionCandidate validates cfg.FuseMembers against the Section 3.3
// fusion preconditions.
func checkFusionCandidate(rep *Report, t *core.Topology, cfg Config) {
	if len(cfg.FuseMembers) == 0 {
		return
	}
	members := make([]core.OpID, 0, len(cfg.FuseMembers))
	for _, name := range cfg.FuseMembers {
		id, ok := t.Lookup(strings.TrimSpace(name))
		if !ok {
			rep.add(Diagnostic{Code: CodeFusionCandidate, Operator: name,
				Message: fmt.Sprintf("fusion candidate names unknown operator %q", name)})
			return
		}
		members = append(members, id)
	}
	if _, err := core.ValidateSubgraph(t, members); err != nil {
		rep.add(Diagnostic{Code: CodeFusionCandidate,
			Message: fmt.Sprintf("fusion candidate {%s}: %v", strings.Join(cfg.FuseMembers, ", "), err)})
	}
}

// structuralDocument checks a raw XML document, attributing every finding
// to the offending element. It intentionally re-implements the shape
// checks rather than delegating to xmlio.Read, so one run reports every
// problem instead of the first.
func structuralDocument(rep *Report, doc *xmlio.Document, pos *xmlio.Positions, cfg Config) {
	if len(doc.Operators) == 0 {
		rep.add(Diagnostic{Code: CodeMalformed, Message: "document has no operators"})
		return
	}
	index := make(map[string]int, len(doc.Operators))
	kinds := make([]core.Kind, len(doc.Operators))
	for i, od := range doc.Operators {
		at := pos.Operator(i)
		if od.Name == "" {
			rep.addAt(at, Diagnostic{Code: CodeMalformed, Message: "operator without a name"})
		} else if _, dup := index[od.Name]; dup {
			rep.addAt(at, Diagnostic{Code: CodeMalformed, Operator: od.Name,
				Message: fmt.Sprintf("duplicate operator name %q", od.Name)})
		} else {
			index[od.Name] = i
		}
		kind, err := parseKind(od.Type)
		if err != nil {
			rep.addAt(at, Diagnostic{Code: CodeMalformed, Operator: od.Name,
				Message: fmt.Sprintf("operator %q: %v", od.Name, err)})
		}
		kinds[i] = kind
		if _, err := xmlio.ParseServiceTime(od.ServiceTime); err != nil {
			rep.addAt(at, Diagnostic{Code: CodeServiceTime, Operator: od.Name,
				Message: fmt.Sprintf("operator %q: %v", od.Name, err)})
		}
		checkDocSelectivity(rep, at, od.Name, "input selectivity", od.InputSelectivity)
		checkDocSelectivity(rep, at, od.Name, "output selectivity", od.OutputSelectivity)
		if kind == core.KindPartitionedStateful {
			checkDocKeys(rep, pos, i, od, cfg)
		}
		if od.Replicas < 0 {
			rep.addAt(at, Diagnostic{Code: CodeMalformed, Operator: od.Name,
				Message: fmt.Sprintf("operator %q has replica degree %d", od.Name, od.Replicas)})
		}
		if od.Replicas > 1 && kind != 0 && !kind.CanReplicate() {
			rep.addAt(at, Diagnostic{Code: CodeStatefulFission, Operator: od.Name,
				Message: fmt.Sprintf("%q has kind %s and cannot be replicated (requested %d replicas)", od.Name, kind, od.Replicas)})
		}
		if od.Replicas > 1 && kind == core.KindPartitionedStateful && len(od.Keys) > 0 && od.Replicas > len(od.Keys) {
			rep.addAt(at, Diagnostic{Code: CodeReplicaBudget, Operator: od.Name,
				Message: fmt.Sprintf("%q requests %d replicas but partitions only %d keys; the partitioner will consolidate", od.Name, od.Replicas, len(od.Keys))})
		}
	}

	// Edges: validity, probability mass, and the adjacency for the graph
	// checks below.
	adj := make([][]int, len(doc.Operators))
	hasInput := make([]bool, len(doc.Operators))
	for i, od := range doc.Operators {
		sum := 0.0
		seenTargets := make(map[string]bool, len(od.Outputs))
		for j, out := range od.Outputs {
			at := pos.Output(i, j)
			ti, known := index[out.To]
			switch {
			case !known:
				rep.addAt(at, Diagnostic{Code: CodeMalformed, Operator: od.Name,
					Message: fmt.Sprintf("operator %q outputs to unknown %q", od.Name, out.To)})
			case out.To == od.Name:
				rep.addAt(at, Diagnostic{Code: CodeMalformed, Operator: od.Name,
					Message: fmt.Sprintf("self-loop on %q", od.Name)})
			case seenTargets[out.To]:
				rep.addAt(at, Diagnostic{Code: CodeMalformed, Operator: od.Name,
					Message: fmt.Sprintf("duplicate edge %q -> %q", od.Name, out.To)})
			default:
				seenTargets[out.To] = true
				adj[i] = append(adj[i], ti)
				hasInput[ti] = true
			}
			if !(out.Probability > 0) || out.Probability > 1+probTolerance {
				rep.addAt(at, Diagnostic{Code: CodeProbabilityMass, Operator: od.Name,
					Message: fmt.Sprintf("edge %q -> %q: probability %v outside (0, 1]", od.Name, out.To, out.Probability)})
			} else {
				sum += out.Probability
			}
		}
		if len(od.Outputs) > 0 && math.Abs(sum-1) > probTolerance {
			rep.addAt(pos.Operator(i), Diagnostic{Code: CodeProbabilityMass, Operator: od.Name,
				Message: fmt.Sprintf("output probabilities of %q sum to %v, want 1", od.Name, sum)})
		}
		if kinds[i] == core.KindSink && len(od.Outputs) > 0 {
			rep.addAt(pos.Operator(i), Diagnostic{Code: CodeMalformed, Operator: od.Name,
				Message: fmt.Sprintf("%q is a sink but has output edges", od.Name)})
		}
	}

	// Graph shape: single rooted source, source kind consistency.
	var roots []int
	for i := range doc.Operators {
		if !hasInput[i] {
			roots = append(roots, i)
		}
		if kinds[i] == core.KindSource && hasInput[i] {
			rep.addAt(pos.Operator(i), Diagnostic{Code: CodeMalformed, Operator: doc.Operators[i].Name,
				Message: fmt.Sprintf("%q is a source but has input edges", doc.Operators[i].Name)})
		}
	}
	switch {
	case len(roots) == 0:
		rep.add(Diagnostic{Code: CodeMalformed, Message: "no source: every operator has input edges"})
	case len(roots) > 1:
		names := make([]string, len(roots))
		for i, r := range roots {
			names[i] = doc.Operators[r].Name
		}
		rep.add(Diagnostic{Code: CodeMalformed,
			Message: fmt.Sprintf("multiple sources: %s (use a fictitious source to root multi-source graphs)", strings.Join(names, ", "))})
	default:
		if kinds[roots[0]] != 0 && kinds[roots[0]] != core.KindSource {
			rep.addAt(pos.Operator(roots[0]), Diagnostic{Code: CodeMalformed, Operator: doc.Operators[roots[0]].Name,
				Message: fmt.Sprintf("root %q has kind %s, want source", doc.Operators[roots[0]].Name, kinds[roots[0]])})
		}
	}

	// Cycles (Kahn) and reachability.
	if hasCycle(adj) && !cfg.AllowCycles {
		rep.add(Diagnostic{Code: CodeMalformed,
			Message: "topology has a cycle; pass allow-cycles to analyze feedback loops with the fixed-point solver"})
	}
	if len(roots) == 1 {
		reach := make([]bool, len(adj))
		reach[roots[0]] = true
		stack := []int{roots[0]}
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range adj[v] {
				if !reach[w] {
					reach[w] = true
					stack = append(stack, w)
				}
			}
		}
		for i, ok := range reach {
			if !ok {
				rep.addAt(pos.Operator(i), Diagnostic{Code: CodeUnreachable, Operator: doc.Operators[i].Name,
					Message: fmt.Sprintf("%q is not reachable from the source", doc.Operators[i].Name)})
			}
		}
	}
}

func checkDocSelectivity(rep *Report, at xmlio.Pos, op, label string, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		rep.addAt(at, Diagnostic{Code: CodeSelectivityRange, Operator: op,
			Message: fmt.Sprintf("operator %q: %s %v, must be a finite value >= 0", op, label, v)})
	}
}

func checkDocKeys(rep *Report, pos *xmlio.Positions, i int, od xmlio.OperatorDoc, cfg Config) {
	at := pos.Operator(i)
	freq := make([]float64, 0, len(od.Keys))
	keyAt := func(j int) xmlio.Pos { return pos.Key(i, j) }
	switch {
	case len(od.Keys) > 0 && od.KeysFile != "":
		rep.addAt(at, Diagnostic{Code: CodeKeyMass, Operator: od.Name,
			Message: fmt.Sprintf("operator %q: both inline keys and keysFile given", od.Name)})
		return
	case len(od.Keys) > 0:
		for _, k := range od.Keys {
			freq = append(freq, k.Frequency)
		}
	case od.KeysFile != "":
		if cfg.KeyLoader == nil {
			return // cannot resolve; xmlio.Read will if a loader exists
		}
		loaded, err := cfg.KeyLoader(od.KeysFile)
		if err != nil {
			rep.addAt(at, Diagnostic{Code: CodeKeyMass, Operator: od.Name,
				Message: fmt.Sprintf("operator %q: keysFile %q: %v", od.Name, od.KeysFile, err)})
			return
		}
		freq = loaded
		keyAt = func(int) xmlio.Pos { return at }
	default:
		rep.addAt(at, Diagnostic{Code: CodeKeyMass, Operator: od.Name,
			Message: fmt.Sprintf("partitioned-stateful operator %q has no key distribution", od.Name)})
		return
	}
	sum, bad := 0.0, false
	for j, f := range freq {
		if !(f > 0) || math.IsInf(f, 1) {
			rep.addAt(keyAt(j), Diagnostic{Code: CodeKeyMass, Operator: od.Name,
				Message: fmt.Sprintf("operator %q: key frequency %d is %v, must be a finite value > 0", od.Name, j, f)})
			bad = true
			continue
		}
		sum += f
	}
	if !bad && math.Abs(sum-1) > probTolerance {
		rep.addAt(at, Diagnostic{Code: CodeKeyMass, Operator: od.Name,
			Message: fmt.Sprintf("operator %q: key frequencies sum to %v, want 1", od.Name, sum)})
	}
}

// parseKind mirrors xmlio's kind parsing; a zero return means unknown.
func parseKind(s string) (core.Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "source":
		return core.KindSource, nil
	case "stateless":
		return core.KindStateless, nil
	case "partitioned-stateful", "partitioned":
		return core.KindPartitionedStateful, nil
	case "stateful":
		return core.KindStateful, nil
	case "sink":
		return core.KindSink, nil
	default:
		return 0, fmt.Errorf("unknown operator type %q", s)
	}
}

// hasCycle runs Kahn's algorithm over the index adjacency.
func hasCycle(adj [][]int) bool {
	n := len(adj)
	indeg := make([]int, n)
	for _, outs := range adj {
		for _, w := range outs {
			indeg[w]++
		}
	}
	var ready []int
	for i, d := range indeg {
		if d == 0 {
			ready = append(ready, i)
		}
	}
	done := 0
	for len(ready) > 0 {
		v := ready[len(ready)-1]
		ready = ready[:len(ready)-1]
		done++
		for _, w := range adj[v] {
			if indeg[w]--; indeg[w] == 0 {
				ready = append(ready, w)
			}
		}
	}
	return done != n
}
