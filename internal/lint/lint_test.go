package lint

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"spinstreams/internal/core"
	"spinstreams/internal/xmlio"
)

// chain builds the minimal clean topology: source -> mid -> sink.
func chain(t *testing.T, midKind core.Kind, midService float64) *core.Topology {
	t.Helper()
	top := core.NewTopology()
	src, _ := top.AddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 1e-3})
	mid, err := top.AddOperator(core.Operator{Name: "mid", Kind: midKind, ServiceTime: midService})
	if err != nil {
		t.Fatal(err)
	}
	sink, _ := top.AddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 1e-4})
	if err := top.Connect(src, mid, 1); err != nil {
		t.Fatal(err)
	}
	if err := top.Connect(mid, sink, 1); err != nil {
		t.Fatal(err)
	}
	return top
}

func TestPaperTopologiesHaveNoErrors(t *testing.T) {
	for _, file := range []string{"../../testdata/paper-table1.xml", "../../testdata/paper-table2.xml"} {
		top, err := xmlio.ReadFile(file)
		if err != nil {
			t.Fatalf("%s: %v", file, err)
		}
		rep := Run(top, Config{File: file})
		if rep.HasErrors() {
			t.Errorf("%s: %v", file, rep.Err())
		}
	}
}

func TestCleanChainIsClean(t *testing.T) {
	rep := Run(chain(t, core.KindStateless, 1e-4), Config{})
	if len(rep.Diagnostics) != 0 {
		t.Fatalf("unexpected diagnostics: %v", rep.Diagnostics)
	}
}

func TestSaturatedStatefulWarns(t *testing.T) {
	rep := Run(chain(t, core.KindStateful, 5e-3), Config{})
	if rep.HasErrors() {
		t.Fatalf("unexpected errors: %v", rep.Err())
	}
	if n := len(rep.Diagnostics); n != 1 || rep.Diagnostics[0].Code != CodeSaturatedNoRemedy {
		t.Fatalf("want one SS1102 warning, got %v", rep.Diagnostics)
	}
}

func TestReplicaChecks(t *testing.T) {
	top := chain(t, core.KindStateful, 1e-4)
	rep := Run(top, Config{Replicas: []int{1, 3, 1}})
	if !rep.HasErrors() {
		t.Fatal("replicating a stateful operator must be an error")
	}
	if rep.Diagnostics[0].Code != CodeStatefulFission {
		t.Fatalf("want SS1004, got %v", rep.Diagnostics[0])
	}

	top = chain(t, core.KindStateless, 1e-4)
	rep = Run(top, Config{Replicas: []int{1, 6, 1}, ReplicaBudget: 4})
	var codes []string
	for _, d := range rep.Diagnostics {
		codes = append(codes, d.Code)
	}
	// The over-budget configuration is the SS1006 warning; the 6-replica
	// deployment additionally demotes mid's exit edge off the SPSC ring,
	// which the transport analysis reports informationally (SS1009).
	if rep.HasErrors() || len(codes) != 2 || codes[0] != CodeReplicaBudget || codes[1] != CodeSPSCDemoted {
		t.Fatalf("want SS1006 warning + SS1009 info, got %v", rep.Diagnostics)
	}

	rep = Run(top, Config{Replicas: []int{1, 2}})
	if !rep.HasErrors() || rep.Diagnostics[0].Code != CodeMalformed {
		t.Fatalf("misaligned replica vector must be SS1000, got %v", rep.Diagnostics)
	}
}

func TestFusionCandidateCheck(t *testing.T) {
	top := chain(t, core.KindStateless, 1e-4)
	rep := Run(top, Config{FuseMembers: []string{"mid", "ghost"}})
	if !rep.HasErrors() || rep.Diagnostics[0].Code != CodeFusionCandidate {
		t.Fatalf("want SS1003 for unknown member, got %v", rep.Diagnostics)
	}
	rep = Run(top, Config{FuseMembers: []string{"mid", "sink"}})
	if rep.HasErrors() {
		t.Fatalf("valid candidate flagged: %v", rep.Err())
	}
}

func TestCheckDrift(t *testing.T) {
	top := chain(t, core.KindStateless, 1e-4)
	if ds := CheckDrift(top, []string{"src", "mid", "sink"}, []int{1, 1, 1}, 3); len(ds) != 0 {
		t.Fatalf("aligned drift flagged: %v", ds)
	}
	ds := CheckDrift(top, []string{"ghost"}, []int{1, 1}, 2)
	if len(ds) != 3 {
		t.Fatalf("want 3 diagnostics, got %v", ds)
	}
	for _, d := range ds {
		if d.Code != CodeDriftMismatch {
			t.Errorf("want SS2002, got %v", d)
		}
	}
}

func TestSeverityJSONRoundTrip(t *testing.T) {
	for _, s := range []Severity{SeverityInfo, SeverityWarning, SeverityError} {
		data, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		var back Severity
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != s {
			t.Errorf("round trip %v -> %s -> %v", s, data, back)
		}
	}
	var s Severity
	if err := json.Unmarshal([]byte(`"fatal"`), &s); err == nil {
		t.Error("unknown severity accepted")
	}
}

func TestOutputFormats(t *testing.T) {
	rep := Run(chain(t, core.KindStateful, 5e-3), Config{File: "chain.xml", Replicas: []int{1, 2, 1}})

	var buf bytes.Buffer
	if err := rep.Text(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "error(s)") {
		t.Errorf("text output missing summary:\n%s", buf.String())
	}

	data, err := rep.JSON()
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		File        string       `json:"file"`
		Diagnostics []Diagnostic `json:"diagnostics"`
		Errors      int          `json:"errors"`
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	// The run yields SS1004 (error: stateful replicated) plus SS1102
	// (warning: saturated with no remedy).
	if decoded.File != "chain.xml" || decoded.Errors != 1 || len(decoded.Diagnostics) != 2 {
		t.Errorf("unexpected JSON payload: %s", data)
	}

	sarif, err := rep.SARIF()
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []Rule `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID string `json:"ruleId"`
				Level  string `json:"level"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(sarif, &log); err != nil {
		t.Fatal(err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("unexpected SARIF shape: %s", sarif)
	}
	if got := log.Runs[0].Tool.Driver.Name; got != "spinstreams-vet" {
		t.Errorf("driver name %q", got)
	}
	if len(log.Runs[0].Tool.Driver.Rules) != len(Rules) {
		t.Errorf("SARIF rules %d, want %d", len(log.Runs[0].Tool.Driver.Rules), len(Rules))
	}
	if len(log.Runs[0].Results) != 2 || log.Runs[0].Results[0].RuleID != CodeStatefulFission {
		t.Errorf("unexpected SARIF results: %s", sarif)
	}
}

func TestErrorRendering(t *testing.T) {
	one := &Error{Diagnostics: []Diagnostic{{Code: CodeMalformed, Severity: SeverityError, Message: "boom"}}}
	if !strings.Contains(one.Error(), "SS1000") {
		t.Errorf("single-diagnostic error: %q", one.Error())
	}
	two := &Error{Diagnostics: []Diagnostic{
		{Code: CodeMalformed, Severity: SeverityError, Message: "a"},
		{Code: CodeUnreachable, Severity: SeverityError, Message: "b"},
	}}
	if !strings.HasPrefix(two.Error(), "2 diagnostics:") {
		t.Errorf("multi-diagnostic error: %q", two.Error())
	}
}

// TestSARIFRuleMetadata pins the per-rule documentation contract: every
// registered code ships a Doc paragraph, and the SARIF rule table carries
// it as fullDescription with a helpUri — code-scanning UIs link findings
// straight to the rationale.
func TestSARIFRuleMetadata(t *testing.T) {
	for _, r := range Rules {
		if r.Doc == "" {
			t.Errorf("rule %s (%s) has no Doc", r.Code, r.Name)
		}
	}
	sarif, err := (&Report{}).SARIF()
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Runs []struct {
			Tool struct {
				Driver struct {
					Rules []struct {
						ID              string `json:"id"`
						FullDescription *struct {
							Text string `json:"text"`
						} `json:"fullDescription"`
						HelpURI string `json:"helpUri"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(sarif, &log); err != nil {
		t.Fatal(err)
	}
	rules := log.Runs[0].Tool.Driver.Rules
	if len(rules) != len(Rules) {
		t.Fatalf("SARIF rules %d, want %d", len(rules), len(Rules))
	}
	for _, r := range rules {
		if r.FullDescription == nil || r.FullDescription.Text == "" {
			t.Errorf("rule %s missing fullDescription", r.ID)
		}
		if !strings.Contains(r.HelpURI, strings.ToLower(r.ID)) {
			t.Errorf("rule %s helpUri %q does not key on the code", r.ID, r.HelpURI)
		}
	}
}
