package lint

import (
	"fmt"

	"spinstreams/internal/core"
)

// costModel dry-runs the steady-state solver and flags configurations
// the optimizer cannot rescue: non-convergent feedback traffic (SS1101)
// and saturation that fission cannot unblock (SS1102). It only runs on
// structurally clean topologies.
func costModel(rep *Report, t *core.Topology, cfg Config) {
	if _, err := t.TopologicalOrder(); err != nil {
		// Feedback edges: the fixed-point traffic equations are the only
		// analysis. Divergence means the cycle re-injects at least as much
		// traffic as it consumes — no static remedy exists.
		if _, err := core.SteadyStateCyclic(t); err != nil {
			rep.add(Diagnostic{Code: CodeNonConvergent,
				Message: fmt.Sprintf("cyclic steady-state analysis failed: %v (a feedback loop re-injects >= 1 item per item entering it)", err)})
		}
		return
	}
	a, err := cfg.solver().SteadyState(t)
	if err != nil {
		rep.add(Diagnostic{Code: CodeNonConvergent,
			Message: fmt.Sprintf("steady-state analysis failed: %v", err)})
		return
	}
	// Theorem 3.2 corrections mark the bottlenecks: each correction is an
	// operator that saturated and forced the source rate down. Fission
	// fixes replicable kinds; for the rest the saturation is permanent.
	seen := make(map[core.OpID]bool, len(a.Corrections))
	for _, c := range a.Corrections {
		if seen[c.Op] {
			continue
		}
		seen[c.Op] = true
		op := t.Op(c.Op)
		switch {
		case !op.Kind.CanReplicate():
			rep.add(Diagnostic{Code: CodeSaturatedNoRemedy, Operator: op.Name,
				Message: fmt.Sprintf("%q (%s) saturates at rho %.3f and its kind cannot be replicated; only fusion-undo or a faster implementation can recover throughput", op.Name, op.Kind, c.Rho)})
		case op.Kind == core.KindPartitionedStateful && op.Keys != nil:
			pmax := 0.0
			for _, f := range op.Keys.Freq {
				if f > pmax {
					pmax = f
				}
			}
			// The most loaded replica serves at least the most frequent
			// key, so fission cannot push utilization below rho*pmax.
			if c.Rho*pmax >= 1 {
				rep.add(Diagnostic{Code: CodeSaturatedNoRemedy, Operator: op.Name,
					Message: fmt.Sprintf("%q saturates at rho %.3f and its most frequent key carries %.1f%% of the load: even maximal fission leaves a replica at rho >= %.3f", op.Name, c.Rho, pmax*100, c.Rho*pmax)})
			}
		}
	}
}
