package lint

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"spinstreams/internal/core"
	"spinstreams/internal/plan"
)

// traceSchema is the rewrite-trace layout lint can replay. The JSON
// schema — not the opt package's Go types — is the contract here, so the
// mirror structs below decode only the fields replay needs and lint
// stays independent of the optimizer.
const traceSchema = "spinstreams/rewrite-trace/v1"

type traceDoc struct {
	Schema           string           `json:"schema"`
	Fingerprint      string           `json:"fingerprint"`
	FinalFingerprint string           `json:"final_fingerprint"`
	Passes           []tracePass      `json:"passes"`
	Transports       *traceTransports `json:"transports"`
}

// traceTransports mirrors the trace's edge-topology transport analysis:
// the per-inbox single-producer proofs the runtime's SPSC ring bindings
// rest on. Replay re-expands the deployed plan and recomputes every
// decision.
type traceTransports struct {
	Replicas []int            `json:"replicas"`
	Stations []traceTransport `json:"stations"`
}

type traceTransport struct {
	Station   string `json:"station"`
	Producers int    `json:"producers"`
	Transport string `json:"transport"`
}

type tracePass struct {
	Pass    string      `json:"pass"`
	Skipped string      `json:"skipped"`
	Steps   []traceStep `json:"steps"`
}

type traceStep struct {
	Action      string   `json:"action"`
	Operator    string   `json:"operator"`
	Members     []string `json:"members"`
	Replicas    int      `json:"replicas"`
	ServiceTime float64  `json:"service_time"`
}

// replayTrace verifies cfg.Trace against t: the schema and input
// fingerprint must match, every recorded rewrite must still apply (in
// order, against the topology as rewritten so far), recomputed fusion
// service times must agree, and the final fingerprint must equal the
// replayed topology's. Every divergence is an SS2001 diagnostic.
func replayTrace(rep *Report, t *core.Topology, cfg Config) {
	var doc traceDoc
	if err := json.Unmarshal(cfg.Trace, &doc); err != nil {
		rep.add(Diagnostic{Code: CodeTraceReplay, Message: fmt.Sprintf("trace is not valid JSON: %v", err)})
		return
	}
	if doc.Schema != traceSchema {
		rep.add(Diagnostic{Code: CodeTraceReplay,
			Message: fmt.Sprintf("trace schema %q, want %q", doc.Schema, traceSchema)})
		return
	}
	if fp := fmt.Sprintf("%016x", t.Fingerprint()); doc.Fingerprint != fp {
		rep.add(Diagnostic{Code: CodeTraceReplay,
			Message: fmt.Sprintf("trace was recorded for topology %s, input is %s", doc.Fingerprint, fp)})
		return
	}
	cur := t.Clone()
	for _, p := range doc.Passes {
		for i, s := range p.Steps {
			if !replayStep(rep, &cur, cfg, p.Pass, i, s) {
				return
			}
		}
	}
	if doc.FinalFingerprint != "" {
		if fp := fmt.Sprintf("%016x", cur.Fingerprint()); doc.FinalFingerprint != fp {
			rep.add(Diagnostic{Code: CodeTraceReplay,
				Message: fmt.Sprintf("replayed topology fingerprint %s, trace records final %s", fp, doc.FinalFingerprint)})
			return
		}
	}
	if doc.Transports != nil {
		replayTransports(rep, cur, cfg, doc.Transports)
	}
}

// replayTransports re-runs the producer-set transport analysis on the
// replayed final topology and checks every recorded per-inbox decision:
// station identity, fan-in, and the derived transport. A divergence
// means the trace's SPSC proofs no longer describe the deployed plan —
// an SS2001 finding like any other stale provenance.
func replayTransports(rep *Report, final *core.Topology, cfg Config, tt *traceTransports) {
	if len(tt.Replicas) != final.Len() {
		rep.add(Diagnostic{Code: CodeTraceReplay,
			Message: fmt.Sprintf("transport analysis records %d replica degrees for %d operators", len(tt.Replicas), final.Len())})
		return
	}
	p, err := plan.Build(final, plan.Options{Replicas: tt.Replicas, AllowCycles: cfg.AllowCycles})
	if err != nil {
		rep.add(Diagnostic{Code: CodeTraceReplay,
			Message: fmt.Sprintf("transport analysis does not replay: plan expansion failed: %v", err)})
		return
	}
	if len(tt.Stations) != len(p.Stations) {
		rep.add(Diagnostic{Code: CodeTraceReplay,
			Message: fmt.Sprintf("transport analysis records %d stations, replayed plan has %d", len(tt.Stations), len(p.Stations))})
		return
	}
	in := plan.FanIn(p)
	ts := plan.Transports(p)
	for i, d := range tt.Stations {
		switch {
		case p.Stations[i].Name != d.Station:
			rep.add(Diagnostic{Code: CodeTraceReplay, Operator: d.Station,
				Message: fmt.Sprintf("transport analysis station %d is %q, replayed plan has %q", i, d.Station, p.Stations[i].Name)})
		case len(in[i]) != d.Producers:
			rep.add(Diagnostic{Code: CodeTraceReplay, Operator: d.Station,
				Message: fmt.Sprintf("transport analysis records %d producers for %q, replayed plan has %d", d.Producers, d.Station, len(in[i]))})
		case ts[i].String() != d.Transport:
			rep.add(Diagnostic{Code: CodeTraceReplay, Operator: d.Station,
				Message: fmt.Sprintf("transport analysis tags %q as %s, replayed plan derives %s", d.Station, d.Transport, ts[i])})
		}
	}
}

// replayStep applies (or checks) one step against *cur; it returns false
// when the replay cannot meaningfully continue.
func replayStep(rep *Report, cur **core.Topology, cfg Config, pass string, i int, s traceStep) bool {
	t := *cur
	lookup := func(name string) (core.OpID, bool) {
		id, ok := t.Lookup(name)
		if !ok {
			rep.add(Diagnostic{Code: CodeTraceReplay, Operator: name,
				Message: fmt.Sprintf("%s step %d (%s) references unknown operator %q", pass, i, s.Action, name)})
		}
		return id, ok
	}
	switch s.Action {
	case "source-correction", "fission-reject", "replica-budget":
		_, ok := lookup(s.Operator)
		return ok
	case "fission":
		id, ok := lookup(s.Operator)
		if !ok {
			return false
		}
		op := t.Op(id)
		if !op.Kind.CanReplicate() {
			rep.add(Diagnostic{Code: CodeTraceReplay, Operator: s.Operator,
				Message: fmt.Sprintf("%s step %d records fission of %q, but its kind %s cannot be replicated", pass, i, s.Operator, op.Kind)})
			return false
		}
		if s.Replicas < 2 {
			rep.add(Diagnostic{Code: CodeTraceReplay, Operator: s.Operator,
				Message: fmt.Sprintf("%s step %d records fission of %q to %d replicas, want >= 2", pass, i, s.Operator, s.Replicas)})
		}
		return true
	case "fuse-reject":
		for _, m := range s.Members {
			if _, ok := lookup(m); !ok {
				return false
			}
		}
		return true
	case "live_apply":
		// A live reconfiguration step: the runtime rescaled an operator's
		// replicas or split a fused station back into its members while
		// the topology kept running. Live steps change the physical plan
		// only, so the replay checks them against the logical topology
		// without mutating it.
		id, ok := lookup(s.Operator)
		if !ok {
			return false
		}
		op := t.Op(id)
		if len(s.Members) > 0 {
			// Fusion undo: the operator must actually be a fused vertex
			// and the recorded members must be its members.
			if len(op.Fused) == 0 {
				rep.add(Diagnostic{Code: CodeTraceReplay, Operator: s.Operator,
					Message: fmt.Sprintf("%s step %d records a live fusion undo of %q, which is not a fused operator", pass, i, s.Operator)})
				return false
			}
			fused := make(map[string]bool, len(op.Fused))
			for _, m := range op.Fused {
				fused[m] = true
			}
			for _, m := range s.Members {
				if !fused[m] {
					rep.add(Diagnostic{Code: CodeTraceReplay, Operator: s.Operator,
						Message: fmt.Sprintf("%s step %d records live unfusing member %q, which %q does not contain", pass, i, m, s.Operator)})
				}
			}
			return true
		}
		if s.Replicas < 1 {
			rep.add(Diagnostic{Code: CodeTraceReplay, Operator: s.Operator,
				Message: fmt.Sprintf("%s step %d records a live rescale of %q to %d replicas, want >= 1", pass, i, s.Operator, s.Replicas)})
		}
		if s.Replicas > 1 && !op.Kind.CanReplicate() {
			rep.add(Diagnostic{Code: CodeTraceReplay, Operator: s.Operator,
				Message: fmt.Sprintf("%s step %d records a live rescale of %q to %d replicas, but its kind %s cannot be replicated", pass, i, s.Operator, s.Replicas, op.Kind)})
			return false
		}
		return true
	case "fuse":
		members := make([]core.OpID, 0, len(s.Members))
		for _, m := range s.Members {
			id, ok := lookup(m)
			if !ok {
				return false
			}
			members = append(members, id)
		}
		fused, report, err := core.FuseWith(t, members, s.Operator, cfg.Solver)
		if err != nil {
			rep.add(Diagnostic{Code: CodeTraceReplay, Operator: s.Operator,
				Message: fmt.Sprintf("%s step %d: fusing {%s} no longer applies: %v", pass, i, strings.Join(s.Members, ", "), err)})
			return false
		}
		if s.ServiceTime > 0 && !approxEqual(report.ServiceTime, s.ServiceTime) {
			rep.add(Diagnostic{Code: CodeTraceReplay, Operator: s.Operator,
				Message: fmt.Sprintf("%s step %d: recomputed service time of %q is %v, trace records %v", pass, i, s.Operator, report.ServiceTime, s.ServiceTime)})
		}
		*cur = fused
		return true
	default:
		rep.add(Diagnostic{Code: CodeTraceReplay,
			Message: fmt.Sprintf("%s step %d has unknown action %q", pass, i, s.Action)})
		return true
	}
}

// approxEqual compares recomputed model quantities against recorded
// ones; replay recomputes with the same code, so only serialization
// round-off is tolerated.
func approxEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-9*math.Max(math.Abs(a), math.Abs(b))
}

// CheckDrift validates that a drift report still describes the deployed
// topology: every measured station must exist, and the replica/profile
// vectors must be index-aligned with the operators. Mismatches — a
// topology redeployed since the report was measured — are SS2002
// diagnostics; opt.Reoptimize refuses such reports instead of computing
// a delta plan against the wrong graph.
func CheckDrift(t *core.Topology, stations []string, replicas []int, profiles int) []Diagnostic {
	var ds []Diagnostic
	for _, name := range stations {
		if _, ok := t.Lookup(name); !ok {
			ds = append(ds, Diagnostic{Code: CodeDriftMismatch, Severity: SeverityError, Operator: name,
				Message: fmt.Sprintf("drift report measures station %q, which the deployed topology does not contain", name)})
		}
	}
	if replicas != nil && len(replicas) != t.Len() {
		ds = append(ds, Diagnostic{Code: CodeDriftMismatch, Severity: SeverityError,
			Message: fmt.Sprintf("drift report carries %d replica degrees for %d operators", len(replicas), t.Len())})
	}
	if profiles != 0 && profiles != t.Len() {
		ds = append(ds, Diagnostic{Code: CodeDriftMismatch, Severity: SeverityError,
			Message: fmt.Sprintf("drift report carries %d measured profiles for %d operators", profiles, t.Len())})
	}
	return ds
}
