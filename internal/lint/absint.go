package lint

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"spinstreams/internal/core"
	"spinstreams/internal/plan"
)

// Bounded-queue abstract interpretation over the physical plan: the
// SS3xxx family. The fluid solver (SS11xx) models unbounded queues, so a
// topology can converge on paper and still wedge under the runtime's
// bounded mailboxes with BAS blocking — any saturated station inside a
// feedback loop eventually propagates back-pressure all the way around
// the loop, and a loop blocked on itself never drains. These checks run
// the plan as a fluid network of finite queues and inspect the fixpoint:
//
//   - SS3001: a waits-on cycle at the fixpoint — stations of a feedback
//     loop all throttled by full mailboxes owned by the same loop;
//   - SS3002: an SPSC ring whose capacity fills before a declared burst
//     envelope ends, pushing back-pressure into the producer mid-burst;
//   - SS3003: a trace-recorded SPSC verdict that the deployed plan's
//     fan-in sets contradict.

// defaultMailboxCapacity mirrors runtime.Config.MailboxSize's default.
const defaultMailboxCapacity = 64

func (cfg Config) mailboxCapacity() int {
	if cfg.MailboxCapacity > 0 {
		return cfg.MailboxCapacity
	}
	return defaultMailboxCapacity
}

// planChecks expands the deployed plan and runs the bounded-queue
// analyses that need physical structure: blocking-cycle detection
// (SS3001) on cyclic plans and burst-capacity feasibility (SS3002) when
// a burst envelope is declared. Structural errors are someone else's
// diagnostics; the expansion failing silently defers to them.
func planChecks(rep *Report, t *core.Topology, cfg Config) {
	cyclic := false
	if _, err := t.TopologicalOrder(); err != nil {
		cyclic = true
	}
	burst := cfg.BurstFactor > 1 && cfg.BurstSeconds > 0
	if !cyclic && !burst {
		return
	}
	p, err := plan.Build(t, plan.Options{Replicas: cfg.Replicas, AllowCycles: cfg.AllowCycles})
	if err != nil {
		return
	}
	if cyclic {
		// A divergent loop (SS1101) wedges a fortiori; the bounded-queue
		// finding would only restate it.
		for _, d := range rep.Diagnostics {
			if d.Code == CodeNonConvergent {
				return
			}
		}
		checkBlockingCycles(rep, t, p, cfg)
	} else if burst {
		checkBurstCapacity(rep, t, p, cfg)
	}
}

// VerifyPlan runs only the plan-level SS3xxx checks against a topology
// and its deployed configuration. The optimizer pipeline calls it as a
// post-pass on the rewritten topology: the pre-pass vets the input, this
// vets the plan the rewrites produced.
func VerifyPlan(t *core.Topology, cfg Config) *Report {
	rep := &Report{File: cfg.File}
	planChecks(rep, t, cfg)
	return rep
}

// fluid is the abstract state of the bounded-queue interpretation: one
// finite fluid queue per station, service as rate mu, routing as
// gain-weighted flow along plan edges, and BAS back-pressure as
// proportional throttling of the producers of any queue that would
// overfill.
type fluid struct {
	p         *plan.Plan
	cap       float64   // mailbox capacity C, in tuples
	mu        []float64 // service rate per station (items/s)
	q         []float64 // queue depth per station, in [0, C]
	producers [][]plan.StationID
}

func newFluid(p *plan.Plan, capacity int) *fluid {
	f := &fluid{
		p:   p,
		cap: float64(capacity),
		mu:  make([]float64, len(p.Stations)),
		q:   make([]float64, len(p.Stations)),
	}
	for i := range p.Stations {
		st := &p.Stations[i]
		if st.ServiceTime > 0 {
			f.mu[i] = 1 / st.ServiceTime
		}
	}
	in := plan.FanIn(p)
	f.producers = make([][]plan.StationID, len(in))
	copy(f.producers, in)
	return f
}

// step advances the fluid state by dt: each station asks to serve
// want = mu*dt (sources) or min(q, mu*dt), then a few relaxation rounds
// scale down the producers of any queue that would exceed capacity —
// the fluid image of a blocked BAS send stalling the whole sequential
// station loop. It returns the realized service.
func (f *fluid) step(dt float64) (serve []float64) {
	n := len(f.p.Stations)
	serve = make([]float64, n)
	for i := range f.p.Stations {
		want := f.mu[i] * dt
		if f.p.Stations[i].Role != plan.RoleSource {
			want = math.Min(f.q[i], want)
		}
		serve[i] = want
	}
	inflow := make([]float64, n)
	for round := 0; round < 8; round++ {
		for j := range inflow {
			inflow[j] = 0
		}
		for i := range f.p.Stations {
			st := &f.p.Stations[i]
			out := serve[i] * st.Gain
			for _, e := range st.Out {
				inflow[e.To] += out * e.Prob
			}
		}
		changed := false
		for j := 0; j < n; j++ {
			if f.p.Stations[j].Role == plan.RoleSource {
				continue
			}
			space := f.cap - f.q[j] + serve[j]
			if space < 0 {
				space = 0
			}
			if inflow[j] <= space*(1+1e-12)+1e-15 {
				continue
			}
			factor := 0.0
			if inflow[j] > 0 {
				factor = space / inflow[j]
			}
			for _, i := range f.producers[j] {
				if serve[i] == 0 {
					continue
				}
				serve[i] *= factor
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for j := range inflow {
		inflow[j] = 0
	}
	for i := range f.p.Stations {
		st := &f.p.Stations[i]
		out := serve[i] * st.Gain
		for _, e := range st.Out {
			inflow[e.To] += out * e.Prob
		}
	}
	for i := 0; i < n; i++ {
		if f.p.Stations[i].Role == plan.RoleSource {
			continue
		}
		f.q[i] += inflow[i] - serve[i]
		if f.q[i] < 0 {
			f.q[i] = 0
		}
		if f.q[i] > f.cap {
			f.q[i] = f.cap
		}
	}
	return serve
}

// checkBlockingCycles interprets a cyclic plan to its bounded-queue
// fixpoint and reports SS3001 for every feedback loop operating against
// a full mailbox of its own: a full inbox inside a cycle blocks, among
// its producers, the loop's own predecessor, so under the runtime's
// blocking BAS semantics the loop wedges as soon as slot scheduling runs
// against it for longer than one mailbox of slack. The fluid solver does
// not see this — its source correction keeps cyclic traffic convergent
// no matter how saturated a loop member is, and the fluid fixpoint here
// models the *fairest* possible slot sharing; a full loop mailbox even
// under fair sharing means the deployment has no safety margin at all.
func checkBlockingCycles(rep *Report, t *core.Topology, p *plan.Plan, cfg Config) {
	f := newFluid(p, cfg.mailboxCapacity())
	maxMu := 0.0
	for _, mu := range f.mu {
		maxMu = math.Max(maxMu, mu)
	}
	if maxMu <= 0 {
		return
	}
	dt := f.cap / (4 * maxMu)

	prev := make([]float64, len(f.q))
	settled := 0
	const maxSteps = 20000
	for s := 0; s < maxSteps; s++ {
		copy(prev, f.q)
		f.step(dt)
		delta := 0.0
		for i := range f.q {
			delta = math.Max(delta, math.Abs(f.q[i]-prev[i]))
		}
		if delta < 1e-9*f.cap {
			settled++
			if settled >= 10 {
				break
			}
		} else {
			settled = 0
		}
	}

	full := func(j plan.StationID) bool { return f.q[j] >= 0.99*f.cap }
	for _, scc := range stronglyConnected(p) {
		var fullMembers []string
		for _, id := range scc {
			if full(id) {
				fullMembers = append(fullMembers, fmt.Sprintf("%q", p.Stations[id].Name))
			}
		}
		if len(fullMembers) == 0 {
			continue
		}
		names := make([]string, len(scc))
		for i, id := range scc {
			names[i] = p.Stations[id].Name
		}
		op := t.Op(p.Stations[scc[0]].Op)
		rep.add(Diagnostic{Code: CodeBlockingCycle, Operator: op.Name,
			Message: fmt.Sprintf("bounded-queue interpretation (capacity %d) wedges the feedback loop %s: the mailbox of %s is full at the fixpoint, so BAS back-pressure blocks the loop's own upstream and the cycle deadlocks once scheduling runs against it; the fluid steady state converges regardless",
				cfg.mailboxCapacity(), strings.Join(names, " -> "), strings.Join(fullMembers, ", "))})
	}
}

// stronglyConnected returns the nontrivial strongly connected components
// of the plan's station graph (size >= 2, or a self-loop), each in
// ascending station order, components ordered by their smallest member.
// Tarjan's algorithm, iterated in index order, already yields
// deterministic output.
func stronglyConnected(p *plan.Plan) [][]plan.StationID {
	n := len(p.Stations)
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = -1
	}
	var stack []int
	var comps [][]plan.StationID
	next := 0
	var visit func(int)
	visit = func(u int) {
		index[u] = next
		low[u] = next
		next++
		stack = append(stack, u)
		onStack[u] = true
		for _, e := range p.Stations[u].Out {
			v := int(e.To)
			if index[v] < 0 {
				visit(v)
				if low[v] < low[u] {
					low[u] = low[v]
				}
			} else if onStack[v] && index[v] < low[u] {
				low[u] = index[v]
			}
		}
		if low[u] != index[u] {
			return
		}
		var comp []plan.StationID
		for {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			onStack[v] = false
			comp = append(comp, plan.StationID(v))
			if v == u {
				break
			}
		}
		if len(comp) == 1 {
			self := false
			for _, e := range p.Stations[comp[0]].Out {
				if e.To == comp[0] {
					self = true
				}
			}
			if !self {
				return
			}
		}
		sort.Slice(comp, func(a, b int) bool { return comp[a] < comp[b] })
		comps = append(comps, comp)
	}
	for u := 0; u < n; u++ {
		if index[u] < 0 {
			visit(u)
		}
	}
	sort.Slice(comps, func(a, b int) bool { return comps[a][0] < comps[b][0] })
	return comps
}

// checkBurstCapacity propagates the declared burst envelope through an
// acyclic plan and reports SS3002 for every SPSC-bound inbox whose ring
// fills before the burst ends: capacity / excess-rate < burst-seconds
// means back-pressure reaches the single producer mid-burst, stalling
// the fast path the ring was chosen for.
func checkBurstCapacity(rep *Report, t *core.Topology, p *plan.Plan, cfg Config) {
	order, ok := stationOrder(p)
	if !ok {
		return
	}
	steady := propagate(p, order, 1)
	burst := propagate(p, order, cfg.BurstFactor)
	ts := plan.Transports(p)
	in := plan.FanIn(p)
	capacity := float64(cfg.mailboxCapacity())
	for _, i := range order {
		st := &p.Stations[i]
		if st.Role == plan.RoleSource || ts[i] != plan.TransportSPSC || len(in[i]) == 0 {
			continue
		}
		mu := 0.0
		if st.ServiceTime > 0 {
			mu = 1 / st.ServiceTime
		}
		if steady[i] >= mu {
			continue // saturated before any burst: SS1102's territory
		}
		excess := burst[i] - mu
		if excess <= 0 {
			continue
		}
		fill := capacity / excess
		if fill >= cfg.BurstSeconds {
			continue
		}
		need := int(math.Ceil(excess * cfg.BurstSeconds))
		op := t.Op(st.Op)
		rep.add(Diagnostic{Code: CodeBurstCapacity, Operator: op.Name,
			Message: fmt.Sprintf("SPSC ring of %q (capacity %d) fills in %.2fs under a %.1fx burst of %.1fs: burst arrivals %.1f/s exceed service %.1f/s; size the mailbox to >= %d or accept BAS throttling mid-burst",
				st.Name, cfg.mailboxCapacity(), fill, cfg.BurstFactor, cfg.BurstSeconds, burst[i], mu, need)})
	}
}

// stationOrder returns a topological order of the plan's station graph,
// or ok == false when it has feedback edges.
func stationOrder(p *plan.Plan) ([]plan.StationID, bool) {
	indeg := make([]int, len(p.Stations))
	for i := range p.Stations {
		for _, e := range p.Stations[i].Out {
			indeg[e.To]++
		}
	}
	var order []plan.StationID
	var ready []plan.StationID
	for i := range indeg {
		if indeg[i] == 0 {
			ready = append(ready, plan.StationID(i))
		}
	}
	for len(ready) > 0 {
		u := ready[0]
		ready = ready[1:]
		order = append(order, u)
		for _, e := range p.Stations[u].Out {
			indeg[e.To]--
			if indeg[e.To] == 0 {
				ready = append(ready, e.To)
			}
		}
	}
	return order, len(order) == len(p.Stations)
}

// propagate pushes source rate x factor through the plan in topological
// order with service capping: each station forwards min(arrivals, mu) x
// gain along its weighted out-edges. The result is each station's
// arrival rate during a sustained burst of that factor.
func propagate(p *plan.Plan, order []plan.StationID, factor float64) []float64 {
	arrive := make([]float64, len(p.Stations))
	for _, i := range order {
		st := &p.Stations[i]
		rate := arrive[i]
		if st.Role == plan.RoleSource {
			if st.ServiceTime > 0 {
				rate = factor / st.ServiceTime
			}
		} else if st.ServiceTime > 0 {
			rate = math.Min(rate, 1/st.ServiceTime)
		}
		out := rate * st.Gain
		for _, e := range st.Out {
			arrive[e.To] += out * e.Prob
		}
	}
	return arrive
}

// checkTransportVerdicts replays the trace's recorded SPSC verdicts
// against the plan as actually deployed (SS3003). SS2001's transport
// replay rebuilds the plan from the replica degrees the trace itself
// recorded; this check closes the remaining gap — a trace internally
// consistent with its own degrees can still license a ring the deployed
// -replicas vector demotes to multi-producer, and binding a ring there
// would break the single-producer proof the zero-copy protocol rests on.
func checkTransportVerdicts(rep *Report, t *core.Topology, cfg Config) {
	var doc traceDoc
	if err := json.Unmarshal(cfg.Trace, &doc); err != nil || doc.Schema != traceSchema || doc.Transports == nil {
		return // replayTrace owns malformed-trace reporting
	}
	fp := fmt.Sprintf("%016x", t.Fingerprint())
	if doc.Fingerprint != fp {
		return // wrong topology entirely: SS2001 already fired
	}
	for _, d := range doc.Transports.Stations {
		want := "mpsc"
		if d.Producers <= 1 {
			want = "spsc"
		}
		if d.Transport != want {
			rep.add(Diagnostic{Code: CodeTransportVerdict, Operator: d.Station,
				Message: fmt.Sprintf("trace records transport %s for %q with %d producers; the fan-in analysis derives %s", d.Transport, d.Station, d.Producers, want)})
		}
	}
	// The deployed re-derivation only makes sense when the trace records
	// no net rewrite: cfg.Replicas is index-aligned with the input
	// topology, and after rewrites the deployed degrees live in the
	// trace's own transport analysis (SS2001 checks those).
	rewritten := doc.FinalFingerprint != fp
	if doc.FinalFingerprint == "" {
		rewritten = false
		for _, p := range doc.Passes {
			if len(p.Steps) > 0 {
				rewritten = true
			}
		}
	}
	if rewritten {
		return
	}
	p, err := plan.Build(t, plan.Options{Replicas: cfg.Replicas, AllowCycles: cfg.AllowCycles})
	if err != nil {
		return
	}
	in := plan.FanIn(p)
	producers := make(map[string]int, len(p.Stations))
	for i := range p.Stations {
		producers[p.Stations[i].Name] = len(in[i])
	}
	for _, d := range doc.Transports.Stations {
		if d.Transport != "spsc" {
			continue // recording mpsc where spsc would do is safe, only slower
		}
		n, ok := producers[d.Station]
		switch {
		case !ok:
			rep.add(Diagnostic{Code: CodeTransportVerdict, Operator: d.Station,
				Message: fmt.Sprintf("trace records an spsc verdict for %q, but the deployed plan has no such station: the recorded single-producer proof does not describe this deployment", d.Station)})
		case n > 1:
			rep.add(Diagnostic{Code: CodeTransportVerdict, Operator: d.Station,
				Message: fmt.Sprintf("trace records an spsc verdict for %q, but the deployed replication gives its inbox %d producers: binding the ring would violate the single-producer proof", d.Station, n)})
		}
	}
}
