package lint

import (
	"fmt"

	"spinstreams/internal/core"
	"spinstreams/internal/plan"
)

// checkTransports reports, informationally, which edges lose their SPSC
// eligibility to the deployed replication (SS1009). The producer-set
// analysis proves an inbox single-producer exactly when at most one
// station holds an out-edge into it; replicating an operator inserts a
// collector whose inbox is fed by every replica, so the operator's exit
// edge — single-producer at degree 1 — runs on the MPSC path instead of
// the lock-free ring. That is the right trade (the replicas buy more
// than the ring does), but the operator sizing replica budgets should
// see what each degree costs the dataplane, so vet surfaces it.
func checkTransports(rep *Report, t *core.Topology, cfg Config) {
	if len(cfg.Replicas) == 0 {
		return
	}
	p, err := plan.Build(t, plan.Options{Replicas: cfg.Replicas, AllowCycles: cfg.AllowCycles})
	if err != nil {
		// Replica-vector problems have their own diagnostics
		// (SS1004/SS1006); nothing transport-specific to add.
		return
	}
	in := plan.FanIn(p)
	for i := range p.Stations {
		st := &p.Stations[i]
		if st.Role != plan.RoleCollector || len(in[i]) <= 1 {
			continue
		}
		op := t.Op(st.Op)
		budget := ""
		if cfg.ReplicaBudget > 0 {
			budget = fmt.Sprintf(" under a budget of %d", cfg.ReplicaBudget)
		}
		rep.add(Diagnostic{Code: CodeSPSCDemoted, Operator: op.Name,
			Message: fmt.Sprintf("%d replicas of %q%s make its collector inbox multi-producer: the edge qualifies for the SPSC ring only at degree 1 and runs on the MPSC path as deployed",
				len(in[i]), op.Name, budget)})
	}
}
