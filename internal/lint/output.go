package lint

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Text writes the report in the one-line-per-diagnostic form, closing
// with a severity summary. The output is deterministic and is the format
// of the corpus goldens.
func (r *Report) Text(w io.Writer) error {
	for _, d := range r.Diagnostics {
		if _, err := fmt.Fprintln(w, d.String()); err != nil {
			return err
		}
	}
	errs, warns, infos := r.Counts()
	_, err := fmt.Fprintf(w, "%d error(s), %d warning(s), %d info(s)\n", errs, warns, infos)
	return err
}

// JSON renders the report as indented JSON with severity counts.
func (r *Report) JSON() ([]byte, error) {
	errs, warns, infos := r.Counts()
	return json.MarshalIndent(struct {
		File        string       `json:"file,omitempty"`
		Diagnostics []Diagnostic `json:"diagnostics"`
		Errors      int          `json:"errors"`
		Warnings    int          `json:"warnings"`
		Infos       int          `json:"infos"`
	}{r.File, r.Diagnostics, errs, warns, infos}, "", "  ")
}

// SARIF schema pointers for the 2.1.0 output.
const (
	sarifVersion = "2.1.0"
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
)

// sarifLevel maps lint severities onto SARIF result levels.
func sarifLevel(s Severity) string {
	switch s {
	case SeverityError:
		return "error"
	case SeverityWarning:
		return "warning"
	default:
		return "note"
	}
}

type sarifText struct {
	Text string `json:"text"`
}

type sarifRule struct {
	ID                   string     `json:"id"`
	Name                 string     `json:"name"`
	ShortDescription     sarifText  `json:"shortDescription"`
	FullDescription      *sarifText `json:"fullDescription,omitempty"`
	HelpURI              string     `json:"helpUri,omitempty"`
	DefaultConfiguration struct {
		Level string `json:"level"`
	} `json:"defaultConfiguration"`
}

// sarifHelpBase anchors every rule's helpUri at the repository's lint
// documentation, one fragment per code.
const sarifHelpBase = "https://github.com/spinstreams/spinstreams/blob/main/DESIGN.md#lint-"

type sarifLocation struct {
	PhysicalLocation struct {
		ArtifactLocation struct {
			URI string `json:"uri"`
		} `json:"artifactLocation"`
		Region *struct {
			StartLine   int `json:"startLine"`
			StartColumn int `json:"startColumn"`
		} `json:"region,omitempty"`
	} `json:"physicalLocation"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifText       `json:"message"`
	Locations []sarifLocation `json:"locations,omitempty"`
}

// SARIF renders the report as a SARIF 2.1.0 log with one run, the full
// rule table, and one result per diagnostic — the format CI uploads for
// code-scanning annotation.
func (r *Report) SARIF() ([]byte, error) {
	rules := make([]sarifRule, len(Rules))
	for i, rule := range Rules {
		rules[i].ID = rule.Code
		rules[i].Name = rule.Name
		rules[i].ShortDescription.Text = rule.Summary
		if rule.Doc != "" {
			rules[i].FullDescription = &sarifText{Text: rule.Doc}
		}
		rules[i].HelpURI = sarifHelpBase + strings.ToLower(rule.Code)
		rules[i].DefaultConfiguration.Level = sarifLevel(rule.Severity)
	}
	results := make([]sarifResult, 0, len(r.Diagnostics))
	for _, d := range r.Diagnostics {
		res := sarifResult{
			RuleID:  d.Code,
			Level:   sarifLevel(d.Severity),
			Message: sarifText{Text: d.Message},
		}
		if d.File != "" {
			var loc sarifLocation
			loc.PhysicalLocation.ArtifactLocation.URI = d.File
			if d.Line > 0 {
				loc.PhysicalLocation.Region = &struct {
					StartLine   int `json:"startLine"`
					StartColumn int `json:"startColumn"`
				}{d.Line, d.Col}
			}
			res.Locations = append(res.Locations, loc)
		}
		results = append(results, res)
	}
	doc := map[string]any{
		"version": sarifVersion,
		"$schema": sarifSchema,
		"runs": []map[string]any{{
			"tool": map[string]any{
				"driver": map[string]any{
					"name":           "spinstreams-vet",
					"informationUri": "https://doi.org/10.1145/3274808.3274814",
					"rules":          rules,
				},
			},
			"results": results,
		}},
	}
	return json.MarshalIndent(doc, "", "  ")
}
