package lint

import (
	"encoding/json"
	"fmt"
	"strings"
	"testing"

	"spinstreams/internal/core"
	"spinstreams/internal/xmlio"
)

// loop builds the retry shape src -> work -> {sink, retry} with retry
// feeding back into work.
func loop(t *testing.T, workService, retryProb float64) *core.Topology {
	t.Helper()
	top := core.NewTopology()
	src := top.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 1e-3})
	work := top.MustAddOperator(core.Operator{Name: "work", Kind: core.KindStateless, ServiceTime: workService})
	retry := top.MustAddOperator(core.Operator{Name: "retry", Kind: core.KindStateless, ServiceTime: 1e-4})
	sink := top.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 1e-4})
	top.MustConnect(src, work, 1)
	top.MustConnect(work, sink, 1-retryProb)
	top.MustConnect(work, retry, retryProb)
	top.MustConnect(retry, work, 1)
	return top
}

func codesOf(rep *Report) []string {
	var codes []string
	for _, d := range rep.Diagnostics {
		codes = append(codes, d.Code)
	}
	return codes
}

func TestVerifyPlanNoopWithoutCycleOrBurst(t *testing.T) {
	rep := VerifyPlan(chain(t, core.KindStateless, 1e-4), Config{})
	if len(rep.Diagnostics) != 0 {
		t.Fatalf("acyclic plan with no burst envelope must verify silently, got %v", rep.Diagnostics)
	}
}

func TestVerifyPlanBurstOverflow(t *testing.T) {
	// mid runs at rho 0.8: fine in steady state, but a 2x burst arrives at
	// 2000/s against 1250/s service — the default 64-slot ring fills in
	// 64/750 s, far inside the declared 1 s envelope.
	top := chain(t, core.KindStateless, 8e-4)
	rep := VerifyPlan(top, Config{BurstFactor: 2, BurstSeconds: 1})
	if codes := codesOf(rep); len(codes) != 1 || codes[0] != CodeBurstCapacity {
		t.Fatalf("want one SS3002, got %v", rep.Diagnostics)
	}
	if msg := rep.Diagnostics[0].Message; !strings.Contains(msg, "mid") || !strings.Contains(msg, ">= 750") {
		t.Errorf("SS3002 should name the station and the required capacity: %s", msg)
	}

	// The suggested capacity is exactly the fix.
	rep = VerifyPlan(top, Config{BurstFactor: 2, BurstSeconds: 1, MailboxCapacity: 750})
	if len(rep.Diagnostics) != 0 {
		t.Fatalf("sized-up mailbox still flagged: %v", rep.Diagnostics)
	}
}

func TestVerifyPlanBurstCleanWhenHeadroom(t *testing.T) {
	// mid at rho 0.2 absorbs a 2x burst without queueing at all.
	rep := VerifyPlan(chain(t, core.KindStateless, 2e-4), Config{BurstFactor: 2, BurstSeconds: 1})
	if len(rep.Diagnostics) != 0 {
		t.Fatalf("burst within service headroom flagged: %v", rep.Diagnostics)
	}
}

func TestBlockingCycleOnOverloadedLoop(t *testing.T) {
	// work demands 1000/(1-0.3) ~= 1429/s against 500/s of service: the
	// loop's mailbox pins at capacity and SS3001 must fire.
	rep := VerifyPlan(loop(t, 2e-3, 0.3), Config{AllowCycles: true})
	if codes := codesOf(rep); len(codes) != 1 || codes[0] != CodeBlockingCycle {
		t.Fatalf("want one SS3001, got %v", rep.Diagnostics)
	}
	if msg := rep.Diagnostics[0].Message; !strings.Contains(msg, "work -> retry") {
		t.Errorf("SS3001 should name the loop members: %s", msg)
	}
}

func TestBlockingCycleCleanOnHealthyLoop(t *testing.T) {
	// Same shape at rho ~0.71: the fixpoint leaves slack in every loop
	// mailbox, so the bounded-queue interpretation stays quiet.
	rep := VerifyPlan(loop(t, 5e-4, 0.3), Config{AllowCycles: true})
	if len(rep.Diagnostics) != 0 {
		t.Fatalf("healthy feedback loop flagged: %v", rep.Diagnostics)
	}
}

func TestBlockingCycleSuppressedByDivergence(t *testing.T) {
	// A divergent loop already wedges in the fluid model (SS1101); the
	// bounded-queue restatement must stay out of the report.
	top, err := xmlio.ReadFile("../../testdata/lint/SS1101-divergent-loop.xml")
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(top, Config{AllowCycles: true})
	codes := codesOf(rep)
	sawDivergent := false
	for _, c := range codes {
		if c == CodeNonConvergent {
			sawDivergent = true
		}
		if c == CodeBlockingCycle {
			t.Fatalf("SS3001 restates SS1101: %v", rep.Diagnostics)
		}
	}
	if !sawDivergent {
		t.Fatalf("corpus divergent loop no longer yields SS1101: %v", rep.Diagnostics)
	}
}

// traceFor builds a minimal consistent rewrite trace for top with the
// given per-station transport verdicts.
func traceFor(t *testing.T, top *core.Topology, stations []map[string]any) []byte {
	t.Helper()
	fp := fmt.Sprintf("%016x", top.Fingerprint())
	doc := map[string]any{
		"schema":            "spinstreams/rewrite-trace/v1",
		"fingerprint":       fp,
		"operators":         top.Len(),
		"edges":             top.NumEdges(),
		"passes":            []any{},
		"final_fingerprint": fp,
		"transports": map[string]any{
			"replicas": []int{1, 1, 1},
			"stations": stations,
		},
	}
	data, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func ss3003Of(rep *Report) []Diagnostic {
	var out []Diagnostic
	for _, d := range rep.Diagnostics {
		if d.Code == CodeTransportVerdict {
			out = append(out, d)
		}
	}
	return out
}

func TestTransportVerdictInternalInconsistency(t *testing.T) {
	top := chain(t, core.KindStateless, 1e-4)
	trace := traceFor(t, top, []map[string]any{
		{"station": "src", "producers": 0, "transport": "spsc"},
		{"station": "mid", "producers": 2, "transport": "spsc"},
		{"station": "sink", "producers": 1, "transport": "spsc"},
	})
	rep := Run(top, Config{Trace: trace})
	ds := ss3003Of(rep)
	if len(ds) != 1 || !strings.Contains(ds[0].Message, "derives mpsc") {
		t.Fatalf("want one SS3003 for the 2-producer spsc verdict, got %v", rep.Diagnostics)
	}
}

func TestTransportVerdictStaleAgainstDeployment(t *testing.T) {
	top := chain(t, core.KindStateless, 1e-4)
	trace := traceFor(t, top, []map[string]any{
		{"station": "src", "producers": 0, "transport": "spsc"},
		{"station": "mid", "producers": 1, "transport": "spsc"},
		{"station": "sink", "producers": 1, "transport": "spsc"},
	})
	// The trace is internally consistent, but deploying mid with three
	// replicas restructures the plan: the station the verdict names is
	// gone (or multi-producer), so binding the recorded ring would break
	// the single-producer proof.
	rep := Run(top, Config{Trace: trace, Replicas: []int{1, 3, 1}})
	ds := ss3003Of(rep)
	if len(ds) == 0 {
		t.Fatalf("deployed replication invalidates the spsc verdict, want SS3003: %v", rep.Diagnostics)
	}
	for _, d := range ds {
		if d.Severity != SeverityError {
			t.Errorf("SS3003 must be error severity, got %s", d.Severity)
		}
	}

	// Matching deployment: no verdict drift.
	rep = Run(top, Config{Trace: trace})
	if ds := ss3003Of(rep); len(ds) != 0 {
		t.Fatalf("consistent trace and deployment flagged: %v", ds)
	}
}

func TestTransportVerdictSkipsRewrittenTrace(t *testing.T) {
	top := chain(t, core.KindStateless, 1e-4)
	trace := traceFor(t, top, []map[string]any{
		{"station": "fused", "producers": 1, "transport": "spsc"},
	})
	// Mark the trace as a net rewrite: the deployed re-derivation keys on
	// input-aligned replica indices, which no longer describe the final
	// topology, so the check must stand down (SS2001 owns that replay).
	var doc map[string]any
	if err := json.Unmarshal(trace, &doc); err != nil {
		t.Fatal(err)
	}
	doc["final_fingerprint"] = "ffffffffffffffff"
	rewritten, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	rep := Run(top, Config{Trace: rewritten, Replicas: []int{1, 3, 1}})
	if ds := ss3003Of(rep); len(ds) != 0 {
		t.Fatalf("rewritten trace must skip the deployed re-derivation, got %v", ds)
	}
}
