// Package lint is "go vet for stream topologies": a static verification
// layer that diagnoses malformed or unoptimizable topologies before they
// reach the solver, the optimizer pipeline or the runtime. Every finding
// carries a stable diagnostic code (SS1xxx structural/cost-model, SS2xxx
// provenance), a severity, and — when the input was an XML document — the
// line and column of the offending element.
//
// Three analyzer families run, mirroring the tool's trust boundaries:
//
//   - structural checks over the graph shape: probability mass, single
//     rooted source, reachability, selectivity and service-time sanity,
//     key-frequency mass, replica/kind consistency (arXiv:0807.1720
//     shows how much of this is decidable up front);
//   - cost-model checks that dry-run the core.Solver: non-convergent
//     feedback traffic, and saturation with no fission remedy (the
//     stateful-operator safety conditions cataloged in arXiv:1901.09716);
//   - provenance checks that replay a spinstreams/rewrite-trace/v1 JSON
//     against the input topology and verify every recorded rewrite still
//     applies and the final fingerprint matches.
//
// Reports render as plain text, JSON, or SARIF 2.1.0 for CI annotation.
package lint

import (
	"fmt"
	"strings"

	"spinstreams/internal/core"
	"spinstreams/internal/xmlio"
)

// Severity grades a diagnostic.
type Severity int

const (
	// SeverityInfo is advisory.
	SeverityInfo Severity = iota + 1
	// SeverityWarning marks configurations that work but will disappoint
	// (budget overruns, saturation with no remedy).
	SeverityWarning
	// SeverityError marks inputs the optimizer must refuse.
	SeverityError
)

// String returns the lower-case severity name.
func (s Severity) String() string {
	switch s {
	case SeverityInfo:
		return "info"
	case SeverityWarning:
		return "warning"
	case SeverityError:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// MarshalJSON encodes the severity as its name.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON decodes a severity name.
func (s *Severity) UnmarshalJSON(data []byte) error {
	switch strings.Trim(string(data), `"`) {
	case "info":
		*s = SeverityInfo
	case "warning":
		*s = SeverityWarning
	case "error":
		*s = SeverityError
	default:
		return fmt.Errorf("lint: unknown severity %s", data)
	}
	return nil
}

// Diagnostic codes. The code set is append-only: codes are stable
// identifiers that corpus goldens, SARIF rules and CI annotations key on.
const (
	// CodeMalformed (SS1000) covers graph-shape violations: duplicate or
	// unknown operators, missing/multiple sources, kind inconsistent with
	// position, self-loops, cycles without -allow-cycles.
	CodeMalformed = "SS1000"
	// CodeProbabilityMass (SS1001): an edge probability outside (0, 1] or
	// a vertex whose output probabilities do not sum to 1.
	CodeProbabilityMass = "SS1001"
	// CodeUnreachable (SS1002): an operator not reachable from the source.
	CodeUnreachable = "SS1002"
	// CodeFusionCandidate (SS1003): a fusion candidate violating the
	// Section 3.3 preconditions (single front-end, acyclic contraction).
	CodeFusionCandidate = "SS1003"
	// CodeStatefulFission (SS1004): a replication degree > 1 requested
	// for an operator whose kind cannot be replicated.
	CodeStatefulFission = "SS1004"
	// CodeSelectivityRange (SS1005): NaN/Inf/negative selectivity.
	CodeSelectivityRange = "SS1005"
	// CodeReplicaBudget (SS1006): requested replicas exceed the budget or
	// the key-domain size of a partitioned-stateful operator.
	CodeReplicaBudget = "SS1006"
	// CodeKeyMass (SS1007): key frequencies missing, non-positive, or not
	// summing to 1.
	CodeKeyMass = "SS1007"
	// CodeServiceTime (SS1008): NaN/Inf/non-positive service time.
	CodeServiceTime = "SS1008"
	// CodeSPSCDemoted (SS1009): an edge that would qualify for the
	// lock-free SPSC ring at replication degree 1, but whose deployed
	// degrees (as shaped by the replica budget) make it multi-producer,
	// demoting it to the MPSC path.
	CodeSPSCDemoted = "SS1009"
	// CodeNonConvergent (SS1101): the steady-state solver cannot converge
	// (feedback loop with gain-weighted cycle traffic >= 1).
	CodeNonConvergent = "SS1101"
	// CodeSaturatedNoRemedy (SS1102): a saturated operator that fission
	// cannot unblock (stateful/sink kind, or partitioned-stateful whose
	// most frequent key alone saturates a replica).
	CodeSaturatedNoRemedy = "SS1102"
	// CodeTraceReplay (SS2001): a rewrite trace that does not replay
	// cleanly against the input topology.
	CodeTraceReplay = "SS2001"
	// CodeDriftMismatch (SS2002): a drift report whose station set no
	// longer matches the deployed topology.
	CodeDriftMismatch = "SS2002"
	// CodeBlockingCycle (SS3001): the bounded-queue abstract interpreter
	// found a blocking cycle — a feedback loop whose stations wedge each
	// other through full mailboxes under BAS back-pressure, even though
	// the fluid solver converges.
	CodeBlockingCycle = "SS3001"
	// CodeBurstCapacity (SS3002): an SPSC ring whose capacity cannot
	// absorb the declared burst envelope before back-pressure reaches the
	// source.
	CodeBurstCapacity = "SS3002"
	// CodeTransportVerdict (SS3003): a trace-recorded SPSC transport
	// verdict that is not re-derivable from the fan-in sets of the plan
	// actually deployed.
	CodeTransportVerdict = "SS3003"
)

// Rule is the metadata of one diagnostic code.
type Rule struct {
	// Code is the stable identifier (SARIF ruleId).
	Code string `json:"code"`
	// Name is the short kebab-case rule name.
	Name string `json:"name"`
	// Severity is the default severity of the rule's diagnostics.
	Severity Severity `json:"severity"`
	// Summary is a one-line description.
	Summary string `json:"summary"`
	// Doc is the longer rule description rendered as the SARIF
	// fullDescription, explaining what the rule proves and how to fix a
	// finding.
	Doc string `json:"doc,omitempty"`
}

// Rules lists every diagnostic code, in code order. The table drives the
// SARIF rule metadata and the DESIGN.md documentation.
var Rules = []Rule{
	{CodeMalformed, "malformed-topology", SeverityError, "graph shape violates the rooted-flow-graph model (Section 3.1)",
		"The topology must be a rooted flow graph: exactly one source, no duplicate or unknown operators, operator kinds consistent with their position, no self-loops, and no cycles unless -allow-cycles is set."},
	{CodeProbabilityMass, "probability-mass", SeverityError, "routing probabilities outside (0, 1] or not summing to 1",
		"Each edge probability must lie in (0, 1] and the outgoing probabilities of every operator must sum to 1, so the routing matrix conserves tuple mass."},
	{CodeUnreachable, "unreachable-operator", SeverityError, "operator not reachable from the source",
		"Every operator must be reachable from the source along forward edges; unreachable operators would idle forever and usually indicate a mis-wired edge."},
	{CodeFusionCandidate, "cycle-in-fusion-candidate", SeverityError, "fusion candidate violates the Section 3.3 preconditions",
		"A fusion candidate must have a single front-end operator and its contraction must leave the surrounding graph acyclic (Section 3.3); otherwise fusing would create a scheduling cycle."},
	{CodeStatefulFission, "stateful-fission-unsafe", SeverityError, "replication requested for a non-replicable operator kind",
		"Replication degrees above 1 are only sound for stateless and partitioned-stateful operators; plain stateful operators and sinks cannot be fissioned without breaking state semantics."},
	{CodeSelectivityRange, "selectivity-range", SeverityError, "selectivity is NaN, infinite, or negative",
		"Operator selectivity scales downstream traffic in the cost model and must be a finite non-negative number."},
	{CodeReplicaBudget, "replica-budget-exceeded", SeverityWarning, "replication degrees exceed the budget or the key-domain size",
		"The requested replication degrees exceed the deployment's worker budget or the key-domain size of a partitioned-stateful operator; the deployment will be silently capped."},
	{CodeKeyMass, "key-frequency-mass", SeverityError, "key frequencies missing, non-positive, or not summing to 1",
		"Partitioned-stateful operators need a key-frequency distribution with positive entries summing to 1 so the balanced-partition analysis (Algorithm 2) is well-defined."},
	{CodeServiceTime, "service-time-range", SeverityError, "service time is NaN, infinite, or not positive",
		"Service times feed the queueing model as rates (1/T) and must be finite positive durations."},
	{CodeSPSCDemoted, "spsc-demoted-by-replication", SeverityInfo, "single-producer edge demoted to the MPSC path by the deployed replication",
		"This edge has a single producer at replication degree 1 and would bind to the lock-free SPSC ring, but the deployed replication degrees give it multiple producers, demoting it to the batched MPSC path."},
	{CodeNonConvergent, "solver-non-convergent", SeverityError, "steady-state analysis does not converge",
		"The gain-weighted traffic around a feedback loop is >= 1, so arrival rates diverge and no steady state exists; reduce the loop gain or selectivities."},
	{CodeSaturatedNoRemedy, "saturated-no-remedy", SeverityWarning, "saturated operator that fission cannot unblock",
		"An operator is saturated (utilization >= 1) and fission cannot help: it is stateful or a sink, or its most frequent key alone saturates one replica of a partitioned-stateful operator."},
	{CodeTraceReplay, "trace-replay-mismatch", SeverityError, "rewrite trace does not replay against the input topology",
		"The spinstreams/rewrite-trace/v1 passes no longer replay cleanly against this topology (fingerprint or structural mismatch); the trace was produced from a different input and must be regenerated."},
	{CodeDriftMismatch, "drift-station-mismatch", SeverityError, "drift report station set no longer matches the topology",
		"The drift report references stations that do not exist in the deployed topology, so re-optimization from it would mis-attribute measured rates."},
	{CodeBlockingCycle, "blocking-cycle", SeverityError, "bounded-queue interpretation finds a back-pressure deadlock cycle",
		"Abstract interpretation of the plan under bounded mailboxes (BAS blocking semantics) reaches a state where the stations of a feedback loop all wait on full downstream queues owned by the same loop. The fluid solver converges, but the deployment wedges: any saturated station inside a cycle eventually propagates blocking all the way around. Break the loop, speed up the saturated station, or enlarge -mailbox-size."},
	{CodeBurstCapacity, "spsc-burst-capacity", SeverityWarning, "SPSC ring capacity cannot absorb the declared burst envelope",
		"Under the declared burst envelope (-burst-factor for -burst-seconds), the excess arrival rate at this single-producer ring fills its capacity before the burst ends, so back-pressure reaches the producer mid-burst. Size the mailbox to at least excess-rate x burst-seconds or accept BAS throttling during bursts."},
	{CodeTransportVerdict, "stale-transport-verdict", SeverityError, "recorded SPSC transport verdict not re-derivable from the deployed plan",
		"The optimizer trace records an SPSC (single-producer) verdict for this station's inbox, but re-deriving the fan-in sets from the plan as actually deployed (replication degrees included) contradicts it. Binding a ring here would violate the single-producer proof; regenerate the trace against the deployed configuration."},
}

// RuleFor returns the metadata of code; unknown codes get an error-level
// placeholder so rendering never drops a diagnostic.
func RuleFor(code string) Rule {
	for _, r := range Rules {
		if r.Code == code {
			return r
		}
	}
	return Rule{Code: code, Name: "unknown", Severity: SeverityError, Summary: "unknown diagnostic code"}
}

// Diagnostic is one finding.
type Diagnostic struct {
	Code     string   `json:"code"`
	Severity Severity `json:"severity"`
	// Operator names the implicated operator, when one exists.
	Operator string `json:"operator,omitempty"`
	Message  string `json:"message"`
	// File/Line/Col locate the finding in the source document; Line is 0
	// when the input was an in-memory topology.
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`
	Col  int    `json:"col,omitempty"`
}

// String renders the diagnostic in the grep-friendly one-line form the
// text output and the corpus goldens use.
func (d Diagnostic) String() string {
	var b strings.Builder
	if d.File != "" {
		b.WriteString(d.File)
		if d.Line > 0 {
			fmt.Fprintf(&b, ":%d:%d", d.Line, d.Col)
		}
		b.WriteString(": ")
	}
	fmt.Fprintf(&b, "%s %s: %s [%s]", d.Code, d.Severity, d.Message, RuleFor(d.Code).Name)
	return b.String()
}

// Report is the outcome of one lint run.
type Report struct {
	// File is the source document path, copied into every diagnostic.
	File string `json:"file,omitempty"`
	// Diagnostics are the findings, in deterministic document order.
	Diagnostics []Diagnostic `json:"diagnostics"`
}

func (r *Report) add(d Diagnostic) {
	if d.Severity == 0 {
		d.Severity = RuleFor(d.Code).Severity
	}
	if d.File == "" {
		d.File = r.File
	}
	r.Diagnostics = append(r.Diagnostics, d)
}

// addAt attaches a document position to the diagnostic.
func (r *Report) addAt(p xmlio.Pos, d Diagnostic) {
	d.Line, d.Col = p.Line, p.Col
	r.add(d)
}

// Counts returns the number of findings per severity.
func (r *Report) Counts() (errs, warns, infos int) {
	for _, d := range r.Diagnostics {
		switch d.Severity {
		case SeverityError:
			errs++
		case SeverityWarning:
			warns++
		default:
			infos++
		}
	}
	return
}

// HasErrors reports whether any finding is error-severity.
func (r *Report) HasErrors() bool {
	errs, _, _ := r.Counts()
	return errs > 0
}

// Err returns nil when the report carries no errors, and an *Error
// wrapping the error-severity diagnostics otherwise.
func (r *Report) Err() error {
	if !r.HasErrors() {
		return nil
	}
	e := &Error{}
	for _, d := range r.Diagnostics {
		if d.Severity == SeverityError {
			e.Diagnostics = append(e.Diagnostics, d)
		}
	}
	return e
}

// Error is a lint failure carrying its diagnostics, so callers (the
// optimizer pipeline, the CLI) can render codes rather than prose.
type Error struct {
	Diagnostics []Diagnostic
}

func (e *Error) Error() string {
	if len(e.Diagnostics) == 1 {
		return e.Diagnostics[0].String()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d diagnostics:", len(e.Diagnostics))
	for _, d := range e.Diagnostics {
		b.WriteString("\n\t")
		b.WriteString(d.String())
	}
	return b.String()
}

// Config tunes a lint run. The zero value checks structure and cost
// model only.
type Config struct {
	// File is the source document path recorded in diagnostics.
	File string
	// KeyLoader resolves keysFile references in document-level runs.
	KeyLoader xmlio.KeyLoader
	// FuseMembers, when non-empty, names a fusion candidate subgraph to
	// verify against the Section 3.3 preconditions (SS1003).
	FuseMembers []string
	// Replicas are the deployed/requested replication degrees,
	// index-aligned with the topology; nil means all ones.
	Replicas []int
	// ReplicaBudget bounds the total worker count (SS1006); 0 = unbounded.
	ReplicaBudget int
	// AllowCycles accepts feedback edges and analyzes them with the
	// fixed-point solver, mirroring opt.Options.AllowCycles.
	AllowCycles bool
	// MailboxCapacity is the bounded mailbox size the SS3xxx abstract
	// interpretation assumes; 0 means the runtime default (64).
	MailboxCapacity int
	// BurstFactor and BurstSeconds declare the burst envelope for the
	// SPSC capacity-feasibility check (SS3002): the source emits at
	// BurstFactor x its declared rate for BurstSeconds. SS3002 only runs
	// when BurstFactor > 1 and BurstSeconds > 0.
	BurstFactor  float64
	BurstSeconds float64
	// Trace, when non-nil, is a spinstreams/rewrite-trace/v1 JSON to
	// replay against the topology (SS2001).
	Trace []byte
	// Solver runs the cost-model dry-run; nil means core.DirectSolver.
	// The optimizer pipeline passes its memoizing cache here so the
	// pre-pass adds no extra solves.
	Solver core.Solver
}

func (cfg Config) solver() core.Solver {
	if cfg.Solver != nil {
		return cfg.Solver
	}
	return core.DirectSolver{}
}

// Run lints an in-memory topology: structural checks, replica/kind
// consistency, the cost-model dry-run, the optional fusion-candidate and
// trace-replay checks.
func Run(t *core.Topology, cfg Config) *Report {
	rep := &Report{File: cfg.File}
	structuralTopology(rep, t, cfg)
	if !rep.HasErrors() {
		extras(rep, t, cfg)
	}
	return rep
}

// RunDocument lints a raw XML document, attributing findings to element
// positions. It does not require the document to survive xmlio.Read:
// document-level checks run first, and the deeper analyses only run when
// the document is structurally sound enough to build.
func RunDocument(doc *xmlio.Document, pos *xmlio.Positions, cfg Config) *Report {
	rep := &Report{File: cfg.File}
	structuralDocument(rep, doc, pos, cfg)
	if rep.HasErrors() {
		return rep
	}
	t, err := xmlio.FromDocument(doc, cfg.KeyLoader)
	if err != nil {
		// The document checks above should subsume build failures; anything
		// left is a malformed-topology finding rather than a crash.
		rep.add(Diagnostic{Code: CodeMalformed, Message: err.Error()})
		return rep
	}
	extras(rep, t, cfg)
	return rep
}

// extras runs the analyses shared by Run and RunDocument once a buildable
// topology exists: replica consistency, fusion-candidate validation, the
// cost-model dry-run, and trace replay.
func extras(rep *Report, t *core.Topology, cfg Config) {
	checkReplicas(rep, t, cfg)
	checkFusionCandidate(rep, t, cfg)
	checkTransports(rep, t, cfg)
	costModel(rep, t, cfg)
	planChecks(rep, t, cfg)
	if cfg.Trace != nil {
		replayTrace(rep, t, cfg)
		checkTransportVerdicts(rep, t, cfg)
	}
}
