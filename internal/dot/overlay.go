package dot

import (
	"fmt"
	"io"
	"strings"

	"spinstreams/internal/core"
	"spinstreams/internal/opt"
)

// WriteOverlay renders an optimizer result as an annotated DOT overlay of
// its final topology: nodes carry the chosen replication degrees and the
// final utilization heat, fused meta-operators are drawn as double-border
// records listing their members, operators that forced a Theorem 3.2
// source correction or resisted fission are flagged with the reason, and
// the graph label summarizes the predicted throughput movement. The
// rewrite trace drives the annotations, so the overlay shows *decisions*,
// not just the resulting graph.
func WriteOverlay(w io.Writer, res *opt.Result, opts Options) error {
	t := res.Final.Topology()
	if err := t.ValidateCyclic(); err != nil {
		return err
	}
	a := res.Analysis
	replicas := res.Replicas()

	// Index trace decisions by operator name (IDs shift across fusion).
	type decor struct {
		fissionRho  float64 // utilization that triggered fission
		rejected    string  // why fission could not unblock it
		budgetFrom  int     // pre-budget degree (0 = untrimmed)
		fusedRound  int     // autofuse round that created this meta-op
		corrections int     // Theorem 3.2 corrections it forced
	}
	decors := map[string]*decor{}
	at := func(name string) *decor {
		d, ok := decors[name]
		if !ok {
			d = &decor{}
			decors[name] = d
		}
		return d
	}
	for _, p := range res.Trace.Passes {
		for _, s := range p.Steps {
			switch s.Action {
			case opt.StepSourceCorrection:
				at(s.Operator).corrections++
			case opt.StepFission:
				at(s.Operator).fissionRho = s.Rho
			case opt.StepFissionReject:
				at(s.Operator).rejected = s.Reason
			case opt.StepReplicaBudget:
				at(s.Operator).budgetFrom = s.FromReplicas
			case opt.StepFuse:
				at(s.Operator).fusedRound = s.Round
			}
		}
	}

	limiting := map[core.OpID]bool{}
	for _, v := range a.Limiting {
		limiting[v] = true
	}

	var b strings.Builder
	name := opts.Name
	if name == "" {
		name = "rewrite-overlay"
	}
	fmt.Fprintf(&b, "digraph %q {\n", name)
	if opts.RankLR {
		b.WriteString("  rankdir=LR;\n")
	}
	fmt.Fprintf(&b, "  label=\"%s\\npredicted throughput: %.1f -> %.1f t/s (trace %s)\";\n",
		escape(name), res.Trace.ThroughputBefore, res.Trace.ThroughputAfter, res.Trace.Fingerprint)
	b.WriteString("  labelloc=t;\n")
	b.WriteString("  node [shape=box, style=\"rounded,filled\", fontname=\"Helvetica\"];\n")
	b.WriteString("  edge [fontname=\"Helvetica\", fontsize=10];\n")

	for i := 0; i < t.Len(); i++ {
		id := core.OpID(i)
		op := t.Op(id)
		d := decors[op.Name]
		label := fmt.Sprintf("%s\\n%s, T=%s", escape(op.Name), op.Kind, formatServiceTime(op.ServiceTime))
		label += fmt.Sprintf("\\nrho=%.2f, out=%.1f/s", a.Rho[i], a.Delta[i])
		if n := replicas[i]; n > 1 {
			line := fmt.Sprintf("\\nx%d replicas", n)
			if d != nil && d.fissionRho > 0 {
				line += fmt.Sprintf(" (was rho=%.2f)", d.fissionRho)
			}
			if a.PMax[i] > 0 {
				line += fmt.Sprintf(", pmax=%.2f", a.PMax[i])
			}
			label += line
		}
		var attrs []string
		if d != nil {
			if d.budgetFrom > 0 {
				label += fmt.Sprintf("\\nbudget-trimmed from x%d", d.budgetFrom)
			}
			if d.fusedRound > 0 {
				label += fmt.Sprintf("\\nfused (round %d): %s", d.fusedRound, escape(strings.Join(op.Fused, "+")))
				attrs = append(attrs, "peripheries=2")
			}
			if d.corrections > 0 {
				label += fmt.Sprintf("\\nforced %d source correction(s)", d.corrections)
			}
			if d.rejected != "" && limiting[id] {
				label += fmt.Sprintf("\\nunresolved: %s", escape(d.rejected))
			}
		} else if len(op.Fused) > 0 {
			// Fused before this run (e.g. a re-optimized deployment).
			label += fmt.Sprintf("\\nfused: %s", escape(strings.Join(op.Fused, "+")))
			attrs = append(attrs, "peripheries=2")
		}
		if limiting[id] {
			attrs = append(attrs, "penwidth=2", "color=\"#b30000\"")
		}
		attrs = append([]string{
			fmt.Sprintf("label=\"%s\"", label),
			fmt.Sprintf("fillcolor=\"%s\"", heat(a.Rho[i])),
		}, attrs...)
		fmt.Fprintf(&b, "  n%d [%s];\n", i, strings.Join(attrs, ", "))
	}
	for i := 0; i < t.Len(); i++ {
		for _, e := range t.Out(core.OpID(i)) {
			if e.Prob == 1 {
				fmt.Fprintf(&b, "  n%d -> n%d;\n", e.From, e.To)
			} else {
				fmt.Fprintf(&b, "  n%d -> n%d [label=\"%.3g\"];\n", e.From, e.To, e.Prob)
			}
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func escape(s string) string {
	return strings.NewReplacer(`"`, `\"`, `\`, `\\`).Replace(s)
}
