package dot

import (
	"bytes"
	"strings"
	"testing"

	"spinstreams/internal/core"
)

func TestWritePlain(t *testing.T) {
	topo, _ := core.PaperExampleTopology(core.PaperExampleTable1)
	var buf bytes.Buffer
	if err := Write(&buf, topo, Options{Name: "paper", RankLR: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph \"paper\"", "rankdir=LR", "op1", "op6",
		"n0 -> n1 [label=\"0.7\"]", "n1 -> n5;",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Balanced braces.
	if strings.Count(out, "{") != strings.Count(out, "}") {
		t.Error("unbalanced braces")
	}
}

func TestWriteWithAnalysis(t *testing.T) {
	topo, _ := core.PaperExampleTopology(core.PaperExampleTable2)
	a, err := core.SteadyState(topo)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, topo, Options{Analysis: a}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "rho=") || !strings.Contains(out, "out=") {
		t.Errorf("analysis annotations missing:\n%s", out)
	}
}

func TestWriteWithReplicas(t *testing.T) {
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "s", Kind: core.KindSource, ServiceTime: 0.001})
	hot := topo.MustAddOperator(core.Operator{Name: "h", Kind: core.KindStateless, ServiceTime: 0.004})
	topo.MustConnect(src, hot, 1)
	res, err := core.EliminateBottlenecks(topo, core.FissionOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Write(&buf, topo, Options{Analysis: res.Analysis}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "x4 replicas") {
		t.Errorf("replica annotation missing:\n%s", buf.String())
	}
}

func TestWriteInvalid(t *testing.T) {
	if err := Write(&bytes.Buffer{}, core.NewTopology(), Options{}); err == nil {
		t.Error("empty topology accepted")
	}
}

func TestHeatBounds(t *testing.T) {
	for _, rho := range []float64{-1, 0, 0.5, 1, 2} {
		c := heat(rho)
		if len(c) != 7 || c[0] != '#' {
			t.Errorf("heat(%v) = %q", rho, c)
		}
	}
	if heat(0) == heat(1) {
		t.Error("heat not varying with utilization")
	}
}

func TestFormatServiceTime(t *testing.T) {
	tests := map[float64]string{
		2:       "2s",
		0.005:   "5ms",
		0.00025: "250us",
	}
	for in, want := range tests {
		if got := formatServiceTime(in); got != want {
			t.Errorf("formatServiceTime(%v) = %q, want %q", in, got, want)
		}
	}
}
