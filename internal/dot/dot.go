// Package dot renders topologies and analyses as Graphviz DOT documents —
// the textual stand-in for the SpinStreams GUI's topology view: operators
// are nodes colored by utilization and annotated with service times,
// replication degrees and kinds; streams are edges labeled with routing
// probabilities.
package dot

import (
	"fmt"
	"io"
	"strings"

	"spinstreams/internal/core"
)

// Options tunes rendering.
type Options struct {
	// Name is the graph title.
	Name string
	// Analysis, when non-nil, colors nodes by utilization and annotates
	// rates and replication degrees.
	Analysis *core.Analysis
	// RankLR lays the graph out left-to-right (the usual orientation for
	// pipelines); default is top-to-bottom.
	RankLR bool
}

// Write renders t as a DOT digraph.
func Write(w io.Writer, t *core.Topology, opts Options) error {
	if err := t.Validate(); err != nil {
		return err
	}
	var b strings.Builder
	name := opts.Name
	if name == "" {
		name = "topology"
	}
	fmt.Fprintf(&b, "digraph %q {\n", name)
	if opts.RankLR {
		b.WriteString("  rankdir=LR;\n")
	}
	b.WriteString("  node [shape=box, style=\"rounded,filled\", fontname=\"Helvetica\"];\n")
	b.WriteString("  edge [fontname=\"Helvetica\", fontsize=10];\n")
	for i := 0; i < t.Len(); i++ {
		id := core.OpID(i)
		op := t.Op(id)
		label := fmt.Sprintf("%s\\n%s, T=%s", op.Name, op.Kind, formatServiceTime(op.ServiceTime))
		if op.Gain() != 1 {
			label += fmt.Sprintf("\\ngain=%.3g", op.Gain())
		}
		fill := "#eeeeee"
		if a := opts.Analysis; a != nil {
			label += fmt.Sprintf("\\nrho=%.2f, out=%.1f/s", a.Rho[i], a.Delta[i])
			if a.Replicas[i] > 1 {
				label += fmt.Sprintf("\\nx%d replicas", a.Replicas[i])
			}
			fill = heat(a.Rho[i])
		}
		fmt.Fprintf(&b, "  n%d [label=\"%s\", fillcolor=\"%s\"];\n", i, label, fill)
	}
	for i := 0; i < t.Len(); i++ {
		for _, e := range t.Out(core.OpID(i)) {
			if e.Prob == 1 {
				fmt.Fprintf(&b, "  n%d -> n%d;\n", e.From, e.To)
			} else {
				fmt.Fprintf(&b, "  n%d -> n%d [label=\"%.3g\"];\n", e.From, e.To, e.Prob)
			}
		}
	}
	b.WriteString("}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// heat maps a utilization factor to a white->red fill color.
func heat(rho float64) string {
	if rho < 0 {
		rho = 0
	}
	if rho > 1 {
		rho = 1
	}
	// Blend from near-white (low) to red (saturated).
	g := int(230 - 160*rho)
	return fmt.Sprintf("#ff%02x%02x", g, g)
}

func formatServiceTime(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.3gs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.3gms", s*1e3)
	default:
		return fmt.Sprintf("%.3gus", s*1e6)
	}
}
