package dot

import (
	"bytes"
	"strings"
	"testing"

	"spinstreams/internal/core"
	"spinstreams/internal/opt"
	"spinstreams/internal/randtopo"
)

func TestWriteOverlayPaperExample(t *testing.T) {
	topo, _ := core.PaperExampleTopology(core.PaperExampleTable1)
	res, err := opt.Run(topo, opt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteOverlay(&buf, res, Options{Name: "paper", RankLR: true}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"digraph \"paper\"",
		"rankdir=LR",
		"predicted throughput:",
		"fused (round 1): op3+op4+op5",
		"peripheries=2",
		"rho=",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("overlay lacks %q:\n%s", want, out)
		}
	}
}

func TestWriteOverlayReplicasAndBottlenecks(t *testing.T) {
	// Seed 42 fissions several operators and leaves bottlenecks resolved;
	// check replica annotations and the fission trigger rho.
	g, err := randtopo.Generate(randtopo.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run(g.Topology, opt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteOverlay(&buf, res, Options{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "replicas (was rho=") {
		t.Errorf("overlay lacks the fission annotation:\n%s", out)
	}
	// A stateful bottleneck: pin the unresolved/limiting rendering.
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "source", Kind: core.KindSource, ServiceTime: 1e-3})
	heavy := topo.MustAddOperator(core.Operator{Name: "heavy", Kind: core.KindStateful, ServiceTime: 4e-3})
	sink := topo.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 1e-4})
	topo.MustConnect(src, heavy, 1)
	topo.MustConnect(heavy, sink, 1)
	res2, err := opt.Run(topo, opt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteOverlay(&buf, res2, Options{}); err != nil {
		t.Fatal(err)
	}
	out = buf.String()
	if !strings.Contains(out, "unresolved: stateful operator cannot be replicated") {
		t.Errorf("overlay lacks the unresolved-bottleneck reason:\n%s", out)
	}
	if !strings.Contains(out, "penwidth=2") {
		t.Errorf("limiting operator not highlighted:\n%s", out)
	}
	if !strings.Contains(out, "source correction(s)") {
		t.Errorf("overlay lacks the source-correction note:\n%s", out)
	}
}
