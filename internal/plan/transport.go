package plan

// Edge-topology transport analysis: which physical inboxes are provably
// single-producer. The proof is purely structural — a station's inbox is
// single-producer exactly when at most one station in the deployed plan
// has an out-edge targeting it — so it already accounts for everything
// plan expansion does to the graph: replica fan-out (an emitter is the
// sole producer of each worker replica, n workers all feed the
// collector), fused meta-stations (members collapse into one producer),
// and shuffle vs keyed routing (the discipline changes which tuples take
// an edge, never which stations hold a sender on it).
//
// The runtime binds provably single-producer inboxes to the lock-free
// SPSC ring and everything else to the MPSC batched transport; the
// optimizer records the same analysis in the rewrite trace so
// `spinstreams vet` can replay it against the deployed plan.

// Transport tags the dataplane mechanism an inbox can run on.
type Transport int

const (
	// TransportMPSC is the multi-producer path (the batched transport).
	TransportMPSC Transport = iota
	// TransportSPSC is the lock-free single-producer ring, legal only
	// for inboxes with at most one producer station.
	TransportSPSC
)

// String returns the trace spelling of the transport.
func (t Transport) String() string {
	if t == TransportSPSC {
		return "spsc"
	}
	return "mpsc"
}

// FanIn returns, for each station, the stations holding an out-edge into
// it, in ascending station order. Duplicate edges between the same pair
// (multi-port routing) still count as one producer: what bounds the
// transport choice is how many goroutines may hold a sender, not how
// many logical edges they multiplex over it.
func FanIn(p *Plan) [][]StationID {
	in := make([][]StationID, len(p.Stations))
	for i := range p.Stations {
		from := StationID(i)
		for _, e := range p.Stations[i].Out {
			dst := in[e.To]
			if n := len(dst); n > 0 && dst[n-1] == from {
				continue // second port on the same edge pair
			}
			in[e.To] = append(dst, from)
		}
	}
	return in
}

// Transports tags each station's inbox with the strongest transport the
// producer-set analysis can prove: the SPSC ring where at most one
// station produces into it (sources trivially qualify — nothing produces
// into them), the MPSC path everywhere else.
func Transports(p *Plan) []Transport {
	in := FanIn(p)
	ts := make([]Transport, len(in))
	for i, producers := range in {
		if len(producers) <= 1 {
			ts[i] = TransportSPSC
		}
	}
	return ts
}
