// Package plan expands a logical SpinStreams topology into the physical
// execution plan the paper's code generator produces for Akka (Section
// 4.2): one executor per operator in the standard case; emitter + replicas
// + collector for operators parallelized by fission; a single meta-operator
// executor for fused subgraphs. Both the discrete-event simulator (qsim)
// and the live goroutine runtime execute plans, which keeps "predicted vs
// measured" comparisons honest — they run the same physical structure.
package plan

import (
	"fmt"

	"spinstreams/internal/core"
	"spinstreams/internal/keypart"
)

// Role classifies a physical station.
type Role int

const (
	// RoleSource generates the input stream.
	RoleSource Role = iota + 1
	// RoleWorker executes a logical operator (or one replica of it).
	RoleWorker
	// RoleEmitter schedules items of a replicated operator to replicas.
	RoleEmitter
	// RoleCollector merges replica outputs and forwards them downstream.
	RoleCollector
)

// String returns the lower-case role name.
func (r Role) String() string {
	switch r {
	case RoleSource:
		return "source"
	case RoleWorker:
		return "worker"
	case RoleEmitter:
		return "emitter"
	case RoleCollector:
		return "collector"
	default:
		return fmt.Sprintf("Role(%d)", int(r))
	}
}

// Discipline selects how a station routes each output item.
type Discipline int

const (
	// Probabilistic samples one target per item from edge probabilities
	// (the logical topology's routing).
	Probabilistic Discipline = iota + 1
	// RoundRobin cycles deterministically over the targets (emitters of
	// stateless replicated operators).
	RoundRobin
	// KeyHash routes by the item's partitioning key through a key->replica
	// assignment (emitters of partitioned-stateful operators).
	KeyHash
)

// StationID indexes a station within a Plan.
type StationID int

// Edge is a physical link to a downstream station.
type Edge struct {
	To StationID
	// Prob is the routing probability under the Probabilistic discipline;
	// under RoundRobin and KeyHash it records the expected load share, so
	// the simulator can treat every discipline as weighted routing.
	Prob float64
	// Port is the index of the corresponding input edge at the target
	// logical operator; multi-input operators (joins) use it to tell
	// their sides apart. Zero for intra-operator links.
	Port int
}

// Station is a sequential executor: one mailbox, one logical thread.
type Station struct {
	ID   StationID
	Name string
	Role Role
	// Op is the logical operator this station belongs to.
	Op core.OpID
	// Replica is the replica index for workers of replicated operators.
	Replica int
	// ServiceTime is the station's mean time per consumed item in seconds.
	ServiceTime float64
	// Gain is the station's rate multiplier (output/input selectivity).
	Gain float64
	// InputSelectivity and OutputSelectivity are carried through for the
	// runtime's operator bindings.
	InputSelectivity, OutputSelectivity float64
	// Out lists the downstream links.
	Out []Edge
	// Discipline selects the routing of output items.
	Discipline Discipline
	// KeyReplica maps key -> replica slot for KeyHash emitters; replica
	// slot i corresponds to Out[i].
	KeyReplica []int
	// KeyFreq is the partitioning-key frequency distribution of a
	// partitioned-stateful operator, carried on its emitter (and on its
	// single worker while unreplicated) so a live reconfiguration can
	// recompute the key->replica assignment without the logical topology.
	KeyFreq []float64
	// Member selects the fused sub-operator a station executes after a
	// live fusion undo split the fused station back into its members.
	// Zero means "not a member station"; otherwise the sub-operator ID
	// is Member-1 in the meta-operator's original subgraph.
	Member int
}

// Plan is a physical execution plan.
type Plan struct {
	Stations []Station
	// SourceID is the unique source station.
	SourceID StationID
	// WorkersOf maps each logical operator to its worker station IDs.
	WorkersOf [][]StationID
	// CollectorOf maps each logical operator to its collector station, or
	// -1 when the operator is not replicated.
	CollectorOf []StationID
	// EntryOf maps each logical operator to the station that receives its
	// input items (the worker itself, or the emitter when replicated).
	EntryOf []StationID
}

// Options tunes plan expansion.
type Options struct {
	// Replicas gives the replication degree per logical operator; nil or
	// an entry < 2 means a single worker. Typically Analysis.Replicas
	// from the optimizer.
	Replicas []int
	// EmitterServiceTime is the mean cost of the scheduling emitters and
	// collectors in seconds (paper: "a few microseconds at most").
	EmitterServiceTime float64
	// Partitioner assigns keys to replicas of partitioned-stateful
	// operators; defaults to keypart.Greedy{}.
	Partitioner keypart.Partitioner
	// AllowCycles relaxes validation to the cyclic analysis's assumptions
	// (Topology.ValidateCyclic); the simulator handles feedback edges,
	// though blocking semantics can deadlock a saturated cycle — pair
	// cyclic plans with ample buffers or shedding.
	AllowCycles bool
}

// DefaultEmitterServiceTime mirrors the paper's observation that emitter
// and collector actors cost a few microseconds per item.
const DefaultEmitterServiceTime = 2e-6

// Build expands the logical topology into a physical plan.
func Build(t *core.Topology, opts Options) (*Plan, error) {
	validate := t.Validate
	if opts.AllowCycles {
		validate = t.ValidateCyclic
	}
	if err := validate(); err != nil {
		return nil, err
	}
	if opts.EmitterServiceTime <= 0 {
		opts.EmitterServiceTime = DefaultEmitterServiceTime
	}
	if opts.Partitioner == nil {
		opts.Partitioner = keypart.Greedy{}
	}
	replicas := func(id core.OpID) int {
		if opts.Replicas == nil || int(id) >= len(opts.Replicas) {
			return 1
		}
		if n := opts.Replicas[id]; n > 1 {
			return n
		}
		return 1
	}

	p := &Plan{
		WorkersOf:   make([][]StationID, t.Len()),
		CollectorOf: make([]StationID, t.Len()),
		EntryOf:     make([]StationID, t.Len()),
		SourceID:    -1,
	}
	for i := range p.CollectorOf {
		p.CollectorOf[i] = -1
		p.EntryOf[i] = -1
	}

	add := func(s Station) StationID {
		s.ID = StationID(len(p.Stations))
		p.Stations = append(p.Stations, s)
		return s.ID
	}

	// First pass: create stations for every logical operator.
	for i := 0; i < t.Len(); i++ {
		id := core.OpID(i)
		op := t.Op(id)
		n := replicas(id)
		if op.Kind == core.KindSource {
			sid := add(Station{
				Name: op.Name, Role: RoleSource, Op: id,
				ServiceTime: op.ServiceTime, Gain: op.Gain(),
				InputSelectivity:  op.InputSelectivity,
				OutputSelectivity: op.OutputSelectivity,
				Discipline:        Probabilistic,
			})
			p.SourceID = sid
			p.WorkersOf[i] = []StationID{sid}
			p.EntryOf[i] = sid
			continue
		}
		if n == 1 {
			sid := add(Station{
				Name: op.Name, Role: RoleWorker, Op: id,
				ServiceTime: op.ServiceTime, Gain: op.Gain(),
				InputSelectivity:  op.InputSelectivity,
				OutputSelectivity: op.OutputSelectivity,
				Discipline:        Probabilistic,
				KeyFreq:           keyFreq(op),
			})
			p.WorkersOf[i] = []StationID{sid}
			p.EntryOf[i] = sid
			continue
		}
		if !op.Kind.CanReplicate() {
			return nil, fmt.Errorf("plan: operator %q of kind %s cannot be replicated", op.Name, op.Kind)
		}
		// Emitter + workers + collector. Partitioned-stateful operators
		// may consolidate to fewer replicas than requested, so partition
		// before creating worker stations.
		var keyReplica []int
		var loads []float64
		discipline := RoundRobin
		if op.Kind == core.KindPartitionedStateful {
			asg, err := opts.Partitioner.Partition(op.Keys.Freq, n)
			if err != nil {
				return nil, fmt.Errorf("plan: partition %q: %w", op.Name, err)
			}
			discipline = KeyHash
			keyReplica = append([]int(nil), asg.Replica...)
			loads = append([]float64(nil), asg.Load...)
			n = asg.Replicas
		}
		if n == 1 {
			// Consolidation collapsed the fission: a single plain worker.
			sid := add(Station{
				Name: op.Name, Role: RoleWorker, Op: id,
				ServiceTime: op.ServiceTime, Gain: op.Gain(),
				InputSelectivity:  op.InputSelectivity,
				OutputSelectivity: op.OutputSelectivity,
				Discipline:        Probabilistic,
				KeyFreq:           keyFreq(op),
			})
			p.WorkersOf[i] = []StationID{sid}
			p.EntryOf[i] = sid
			continue
		}
		emitter := add(Station{
			Name: op.Name + "/emitter", Role: RoleEmitter, Op: id,
			ServiceTime: opts.EmitterServiceTime, Gain: 1,
			Discipline: discipline,
			KeyReplica: keyReplica,
			KeyFreq:    keyFreq(op),
		})
		var workers []StationID
		for r := 0; r < n; r++ {
			workers = append(workers, add(Station{
				Name: fmt.Sprintf("%s/replica%d", op.Name, r), Role: RoleWorker, Op: id, Replica: r,
				ServiceTime: op.ServiceTime, Gain: op.Gain(),
				InputSelectivity:  op.InputSelectivity,
				OutputSelectivity: op.OutputSelectivity,
				Discipline:        Probabilistic,
			}))
		}
		collector := add(Station{
			Name: op.Name + "/collector", Role: RoleCollector, Op: id,
			ServiceTime: opts.EmitterServiceTime, Gain: 1,
			InputSelectivity:  op.InputSelectivity,
			OutputSelectivity: op.OutputSelectivity,
			Discipline:        Probabilistic,
		})
		p.WorkersOf[i] = workers
		p.CollectorOf[i] = collector
		p.EntryOf[i] = emitter

		est := &p.Stations[emitter]
		for r, w := range workers {
			share := 1 / float64(n)
			if loads != nil && r < len(loads) {
				share = loads[r]
			}
			est.Out = append(est.Out, Edge{To: w, Prob: share})
		}
		for _, w := range workers {
			p.Stations[w].Out = []Edge{{To: collector, Prob: 1}}
		}
	}

	// Second pass: wire logical edges from each operator's output side
	// (worker or collector) to the target operator's entry.
	for i := 0; i < t.Len(); i++ {
		id := core.OpID(i)
		outSide := p.WorkersOf[i]
		if c := p.CollectorOf[i]; c >= 0 {
			outSide = []StationID{c}
		}
		for _, s := range outSide {
			st := &p.Stations[s]
			for _, e := range t.Out(id) {
				port := 0
				for idx, in := range t.In(e.To) {
					if in.From == id {
						port = idx
					}
				}
				st.Out = append(st.Out, Edge{To: p.EntryOf[e.To], Prob: e.Prob, Port: port})
			}
		}
	}
	return p, nil
}

// keyFreq copies the key frequency distribution of partitioned-stateful
// operators onto their stations, so live reconfiguration can re-partition
// without consulting the logical topology.
func keyFreq(op *core.Operator) []float64 {
	if op.Kind != core.KindPartitionedStateful || len(op.Keys.Freq) == 0 {
		return nil
	}
	return append([]float64(nil), op.Keys.Freq...)
}

// NumWorkers returns the number of worker stations (replicas included).
func (p *Plan) NumWorkers() int {
	n := 0
	for _, s := range p.Stations {
		if s.Role == RoleWorker {
			n++
		}
	}
	return n
}

// Station returns the station with the given ID, or nil when the ID is
// out of range. IDs come from the plan's own index maps (EntryOf,
// CollectorOf, Edge.To), so nil signals a caller-side bookkeeping bug
// rather than a recoverable condition — but it does so without the
// unbounded-index panic the raw slice access used to produce.
func (p *Plan) Station(id StationID) *Station {
	if id < 0 || int(id) >= len(p.Stations) {
		return nil
	}
	return &p.Stations[id]
}
