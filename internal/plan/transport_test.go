package plan

import (
	"testing"

	"spinstreams/internal/core"
)

func TestFanInReplicated(t *testing.T) {
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 0.001})
	hot := topo.MustAddOperator(core.Operator{Name: "hot", Kind: core.KindStateless, ServiceTime: 0.003})
	sink := topo.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.0001})
	topo.MustConnect(src, hot, 1)
	topo.MustConnect(hot, sink, 1)
	p, err := Build(topo, Options{Replicas: []int{1, 3, 1}})
	if err != nil {
		t.Fatal(err)
	}

	in := FanIn(p)
	ts := Transports(p)
	col := p.CollectorOf[hot]
	if got := in[col]; len(got) != 3 {
		t.Errorf("collector producers = %v, want the 3 workers", got)
	}
	if ts[col] != TransportMPSC {
		t.Errorf("collector transport = %v, want mpsc", ts[col])
	}
	// Everything else in the expanded plan is provably single-producer:
	// source (nothing produces into it), emitter (source only), each
	// worker (emitter only), sink (collector only).
	for i := range p.Stations {
		if StationID(i) == col {
			continue
		}
		if len(in[i]) > 1 {
			t.Errorf("station %q producers = %v, want <= 1", p.Stations[i].Name, in[i])
		}
		if ts[i] != TransportSPSC {
			t.Errorf("station %q transport = %v, want spsc", p.Stations[i].Name, ts[i])
		}
	}
}

func TestFanInBranchJoin(t *testing.T) {
	// src -> f -> {a, b} -> sink: the sink joins two branches, so its
	// inbox has two producers and must stay on the MPSC path.
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 0.001})
	f := topo.MustAddOperator(core.Operator{Name: "f", Kind: core.KindStateless, ServiceTime: 0.001})
	a := topo.MustAddOperator(core.Operator{Name: "a", Kind: core.KindStateless, ServiceTime: 0.001})
	b := topo.MustAddOperator(core.Operator{Name: "b", Kind: core.KindStateless, ServiceTime: 0.001})
	sink := topo.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.001})
	topo.MustConnect(src, f, 1)
	topo.MustConnect(f, a, 0.5)
	topo.MustConnect(f, b, 0.5)
	topo.MustConnect(a, sink, 1)
	topo.MustConnect(b, sink, 1)
	p, err := Build(topo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	in := FanIn(p)
	ts := Transports(p)
	sinkSt := p.EntryOf[sink]
	if len(in[sinkSt]) != 2 || ts[sinkSt] != TransportMPSC {
		t.Errorf("sink: producers %v transport %v, want 2 producers on mpsc", in[sinkSt], ts[sinkSt])
	}
	for _, op := range []core.OpID{src, f, a, b} {
		st := p.EntryOf[op]
		if ts[st] != TransportSPSC {
			t.Errorf("station %q transport = %v, want spsc", p.Stations[st].Name, ts[st])
		}
	}
}

func TestFanInMultiPortDedup(t *testing.T) {
	// Two edges between the same station pair (multi-port routing) are
	// one producer: one goroutine holds both senders.
	p := &Plan{Stations: []Station{
		{ID: 0, Name: "up", Out: []Edge{{To: 1, Prob: 0.5}, {To: 1, Prob: 0.5}}},
		{ID: 1, Name: "down"},
	}}
	in := FanIn(p)
	if len(in[1]) != 1 || in[1][0] != 0 {
		t.Errorf("producers = %v, want exactly [0]", in[1])
	}
	if ts := Transports(p); ts[1] != TransportSPSC {
		t.Errorf("transport = %v, want spsc", ts[1])
	}
	if TransportSPSC.String() != "spsc" || TransportMPSC.String() != "mpsc" {
		t.Error("transport strings wrong")
	}
}
