package plan

import (
	"math"
	"testing"

	"spinstreams/internal/core"
)

func paperPlan(t *testing.T, replicas []int) (*core.Topology, *Plan) {
	t.Helper()
	topo, _ := core.PaperExampleTopology(core.PaperExampleTable1)
	p, err := Build(topo, Options{Replicas: replicas})
	if err != nil {
		t.Fatal(err)
	}
	return topo, p
}

func TestBuildPlain(t *testing.T) {
	topo, p := paperPlan(t, nil)
	if len(p.Stations) != topo.Len() {
		t.Fatalf("stations = %d, want %d", len(p.Stations), topo.Len())
	}
	if p.SourceID != 0 || p.Stations[p.SourceID].Role != RoleSource {
		t.Fatalf("source station = %d (%v)", p.SourceID, p.Stations[p.SourceID].Role)
	}
	// Logical edges preserved with probabilities.
	src := p.Stations[p.SourceID]
	if len(src.Out) != 2 {
		t.Fatalf("source out edges = %d, want 2", len(src.Out))
	}
	sum := 0.0
	for _, e := range src.Out {
		sum += e.Prob
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("source out probabilities sum to %v", sum)
	}
	for op := 0; op < topo.Len(); op++ {
		if p.EntryOf[op] < 0 || len(p.WorkersOf[op]) != 1 || p.CollectorOf[op] != -1 {
			t.Errorf("op %d mapping wrong: entry %d workers %v collector %d",
				op, p.EntryOf[op], p.WorkersOf[op], p.CollectorOf[op])
		}
	}
}

func TestBuildWithStatelessReplicas(t *testing.T) {
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 0.001})
	hot := topo.MustAddOperator(core.Operator{Name: "hot", Kind: core.KindStateless, ServiceTime: 0.003})
	sink := topo.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.0001})
	topo.MustConnect(src, hot, 1)
	topo.MustConnect(hot, sink, 1)

	replicas := []int{1, 3, 1}
	p, err := Build(topo, Options{Replicas: replicas})
	if err != nil {
		t.Fatal(err)
	}
	// src + emitter + 3 replicas + collector + sink = 7 stations.
	if len(p.Stations) != 7 {
		t.Fatalf("stations = %d, want 7", len(p.Stations))
	}
	if len(p.WorkersOf[hot]) != 3 {
		t.Fatalf("workers = %d, want 3", len(p.WorkersOf[hot]))
	}
	emitter := p.Stations[p.EntryOf[hot]]
	if emitter.Role != RoleEmitter || emitter.Discipline != RoundRobin {
		t.Fatalf("emitter = %+v", emitter)
	}
	if len(emitter.Out) != 3 {
		t.Fatalf("emitter out = %d, want 3", len(emitter.Out))
	}
	// Source must route to the emitter, not to a worker.
	if p.Stations[p.SourceID].Out[0].To != p.EntryOf[hot] {
		t.Error("source does not route to the emitter")
	}
	// Workers route to the collector, which routes to the sink's entry.
	col := p.CollectorOf[hot]
	for _, w := range p.WorkersOf[hot] {
		if len(p.Stations[w].Out) != 1 || p.Stations[w].Out[0].To != col {
			t.Errorf("worker %d does not route to collector", w)
		}
	}
	if p.Stations[col].Out[0].To != p.EntryOf[sink] {
		t.Error("collector does not route to the sink")
	}
}

func TestBuildWithKeyedReplicas(t *testing.T) {
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 0.001})
	ps := topo.MustAddOperator(core.Operator{
		Name: "ps", Kind: core.KindPartitionedStateful, ServiceTime: 0.002,
		Keys: &core.KeyDistribution{Freq: []float64{0.4, 0.3, 0.2, 0.1}},
	})
	sink := topo.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.0001})
	topo.MustConnect(src, ps, 1)
	topo.MustConnect(ps, sink, 1)

	p, err := Build(topo, Options{Replicas: []int{1, 2, 1}})
	if err != nil {
		t.Fatal(err)
	}
	emitter := p.Stations[p.EntryOf[ps]]
	if emitter.Discipline != KeyHash {
		t.Fatalf("discipline = %v, want KeyHash", emitter.Discipline)
	}
	if len(emitter.KeyReplica) != 4 {
		t.Fatalf("KeyReplica = %v, want 4 entries", emitter.KeyReplica)
	}
	sum := 0.0
	for _, e := range emitter.Out {
		sum += e.Prob
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("replica load shares sum to %v", sum)
	}
}

func TestBuildKeyedConsolidation(t *testing.T) {
	// One dominant key: the partitioner consolidates to fewer replicas;
	// requesting 3 must not leave dangling worker stations.
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 0.001})
	ps := topo.MustAddOperator(core.Operator{
		Name: "ps", Kind: core.KindPartitionedStateful, ServiceTime: 0.002,
		Keys: &core.KeyDistribution{Freq: []float64{0.5, 0.25, 0.25}},
	})
	sink := topo.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 0.0001})
	topo.MustConnect(src, ps, 1)
	topo.MustConnect(ps, sink, 1)

	p, err := Build(topo, Options{Replicas: []int{1, 3, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.WorkersOf[ps]); got != 2 {
		t.Fatalf("workers = %d, want 2 after consolidation", got)
	}
	for _, s := range p.Stations {
		if s.Role == RoleWorker && s.Op == ps {
			if len(s.Out) == 0 {
				t.Errorf("dangling worker %s", s.Name)
			}
		}
	}
}

func TestBuildRejectsStatefulReplication(t *testing.T) {
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 0.001})
	st := topo.MustAddOperator(core.Operator{Name: "st", Kind: core.KindStateful, ServiceTime: 0.002})
	topo.MustConnect(src, st, 1)
	if _, err := Build(topo, Options{Replicas: []int{1, 2}}); err == nil {
		t.Fatal("stateful replication accepted")
	}
}

func TestBuildRejectsInvalidTopology(t *testing.T) {
	if _, err := Build(core.NewTopology(), Options{}); err == nil {
		t.Fatal("empty topology accepted")
	}
}

func TestRoleAndDisciplineStrings(t *testing.T) {
	if RoleSource.String() != "source" || RoleEmitter.String() != "emitter" {
		t.Error("role strings wrong")
	}
	if Role(99).String() == "" {
		t.Error("unknown role string empty")
	}
}

func TestNumWorkers(t *testing.T) {
	_, p := paperPlan(t, nil)
	// Paper example: source + 4 workers + sink; source and sink are not
	// RoleWorker? The sink is a worker station (it executes an operator).
	if got := p.NumWorkers(); got != 5 {
		t.Fatalf("NumWorkers = %d, want 5", got)
	}
}

func TestBuildAssignsPorts(t *testing.T) {
	// A join receives from two upstreams; the physical edges must carry
	// the input-edge index so the runtime can tell the sides apart.
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 0.001})
	left := topo.MustAddOperator(core.Operator{Name: "left", Kind: core.KindStateless, ServiceTime: 0.0005})
	right := topo.MustAddOperator(core.Operator{Name: "right", Kind: core.KindStateless, ServiceTime: 0.0005})
	join := topo.MustAddOperator(core.Operator{Name: "join", Kind: core.KindStateful, ServiceTime: 0.0005})
	topo.MustConnect(src, left, 0.5)
	topo.MustConnect(src, right, 0.5)
	topo.MustConnect(left, join, 1)
	topo.MustConnect(right, join, 1)

	p, err := Build(topo, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ports := map[string]int{}
	for _, st := range p.Stations {
		for _, e := range st.Out {
			if e.To == p.EntryOf[join] {
				ports[st.Name] = e.Port
			}
		}
	}
	if len(ports) != 2 {
		t.Fatalf("join feeders = %v, want 2", ports)
	}
	if ports["left"] == ports["right"] {
		t.Errorf("both feeders share port %d", ports["left"])
	}
	for name, port := range ports {
		if port != 0 && port != 1 {
			t.Errorf("%s port = %d, want 0 or 1", name, port)
		}
	}
}

func TestStationBounds(t *testing.T) {
	_, p := paperPlan(t, nil)
	if st := p.Station(0); st == nil || st.Role != RoleSource {
		t.Fatalf("Station(0) = %+v, want the source station", st)
	}
	last := StationID(len(p.Stations) - 1)
	if st := p.Station(last); st == nil || st != &p.Stations[last] {
		t.Fatalf("Station(%d) did not return the last station", last)
	}
	for _, id := range []StationID{-1, StationID(len(p.Stations)), math.MaxInt32} {
		if st := p.Station(id); st != nil {
			t.Errorf("Station(%d) = %+v, want nil", id, st)
		}
	}
}
