package mailbox

import (
	"math/rand"
	"sync/atomic"
	"testing"
	"time"
)

// TestSPSCFIFOProperty drives one producer and one consumer through the
// ring with randomized run lengths on both sides (Send vs SendMany,
// Recv vs RecvBatch) and a capacity small enough to wrap the ring
// thousands of times, then asserts exactly-once in-order delivery.
// Run under -race in CI: the only synchronization on the hot path is the
// ring's own index protocol, so this is the memory-model property test.
func TestSPSCFIFOProperty(t *testing.T) {
	const total = 50000
	rng := rand.New(rand.NewSource(1))
	m, err := New[int](Config{Capacity: 7, Mode: SPSC, Batch: 5})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		s := m.NewSender(0)
		prng := rand.New(rand.NewSource(2))
		i := 0
		for i < total {
			if prng.Intn(3) == 0 {
				if s.Send(i, done) != Sent {
					return
				}
				i++
				continue
			}
			n := 1 + prng.Intn(13)
			if i+n > total {
				n = total - i
			}
			run := make([]int, n)
			for k := range run {
				run[k] = i + k
			}
			sent, dropped, ok := s.SendMany(run, done)
			if !ok || dropped != 0 || sent != n {
				return
			}
			i += n
		}
	}()
	next := 0
	for next < total {
		if rng.Intn(3) == 0 {
			v, ok := m.Recv(done)
			if !ok {
				t.Fatal("Recv aborted")
			}
			if v != next {
				t.Fatalf("tuple %d arrived as %d: FIFO violated", next, v)
			}
			next++
			continue
		}
		b, ok := m.RecvBatch(done)
		if !ok {
			t.Fatal("RecvBatch aborted")
		}
		for _, v := range b {
			if v != next {
				t.Fatalf("tuple %d arrived as %d: FIFO violated", next, v)
			}
			next++
		}
		m.Recycle(b)
	}
	if q := m.Pending(); q != 0 {
		t.Fatalf("Pending = %d after exact delivery, want 0", q)
	}
	close(done)
}

// TestSPSCCapacityAccounting samples Queued from a third goroutine while
// the ring churns and asserts the BAS bound is never exceeded: slot
// accounting is tuple accounting, so Queued must stay within
// [0, capacity] at every instant, and Occupancy must agree on the bound.
func TestSPSCCapacityAccounting(t *testing.T) {
	const capacity, total = 5, 30000
	m, err := New[int](Config{Capacity: capacity, Mode: SPSC, Batch: 16})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var consumed atomic.Int64
	var violations atomic.Int64
	stop := make(chan struct{})
	sampler := make(chan struct{})
	go func() {
		defer close(sampler)
		for {
			select {
			case <-stop:
				return
			default:
			}
			q, c := m.Occupancy()
			if q < 0 || q > c || c != capacity {
				violations.Add(1)
			}
		}
	}()
	go func() {
		s := m.NewSender(0)
		buf := make([]int, 0, 9)
		for i := 0; i < total; {
			n := 1 + i%9
			if i+n > total {
				n = total - i
			}
			buf = buf[:0]
			for k := 0; k < n; k++ {
				buf = append(buf, i+k)
			}
			if _, _, ok := s.SendMany(buf, done); !ok {
				return
			}
			i += n
		}
	}()
	for consumed.Load() < total {
		b, ok := m.RecvBatch(done)
		if !ok {
			t.Fatal("RecvBatch aborted")
		}
		consumed.Add(int64(len(b)))
		m.Recycle(b)
	}
	close(stop)
	<-sampler
	if v := violations.Load(); v > 0 {
		t.Fatalf("observed %d occupancy readings outside [0, %d]", v, capacity)
	}
	close(done)
}

// TestSPSCReservePublish drives the zero-copy produce path against a
// concurrent consumer: randomized reservation sizes, partial publishes
// (unpublished slots must be silently returned by the next Reserve, never
// observed by the consumer), and a capacity small enough to wrap the ring
// thousands of times. Asserts exactly-once in-order delivery. Run under
// -race in CI: Reserve/Publish writes ring slots the consumer reads with
// no lock, so this is the reservation protocol's memory-model test.
func TestSPSCReservePublish(t *testing.T) {
	const total = 50000
	m, err := New[int](Config{Capacity: 7, Mode: SPSC, Batch: 5})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		prng := rand.New(rand.NewSource(5))
		i := 0
		for i < total {
			win, ok := m.Reserve(1+prng.Intn(9), done)
			if !ok {
				return
			}
			n := len(win)
			if i+n > total {
				n = total - i
			}
			// One in four reservations publishes a strict prefix; the
			// tail slots must come back from the next Reserve.
			if n > 1 && prng.Intn(4) == 0 {
				n = 1 + prng.Intn(n-1)
			}
			for k := 0; k < n; k++ {
				win[k] = i + k
			}
			// Poison the unpublished tail: if a slot past n ever reaches
			// the consumer, the FIFO check below catches the sentinel.
			for k := n; k < len(win); k++ {
				win[k] = -1
			}
			m.Publish(n)
			i += n
		}
	}()
	rng := rand.New(rand.NewSource(6))
	next := 0
	for next < total {
		switch rng.Intn(3) {
		case 0:
			v, ok := m.Recv(done)
			if !ok {
				t.Fatal("Recv aborted")
			}
			if v != next {
				t.Fatalf("tuple %d arrived as %d: reservation protocol broke FIFO", next, v)
			}
			next++
		case 1:
			b, ok := m.RecvBatch(done)
			if !ok {
				t.Fatal("RecvBatch aborted")
			}
			for _, v := range b {
				if v != next {
					t.Fatalf("tuple %d arrived as %d: reservation protocol broke FIFO", next, v)
				}
				next++
			}
			m.Recycle(b)
		default:
			// The zero-copy consume path, sometimes releasing only a
			// prefix: the unconsumed tail must reappear at the next take.
			win, ok := m.Peek(done)
			if !ok {
				t.Fatal("Peek aborted")
			}
			n := len(win)
			if n > 1 && rng.Intn(4) == 0 {
				n = 1 + rng.Intn(n-1)
			}
			for _, v := range win[:n] {
				if v != next {
					t.Fatalf("tuple %d peeked as %d: consume protocol broke FIFO", next, v)
				}
				next++
			}
			m.Consume(n)
		}
	}
	if q := m.Pending(); q != 0 {
		t.Fatalf("Pending = %d after exact delivery, want 0", q)
	}
	close(done)
}

// TestReserveRequiresSPSC pins the guard: the reservation protocol is
// licensed by the single-producer proof, so Reserve and Publish must
// refuse MPSC mailboxes outright.
func TestReserveRequiresSPSC(t *testing.T) {
	for _, mode := range []Mode{PerTuple, Batched} {
		m, err := New[int](Config{Capacity: 8, Mode: mode, Batch: 4})
		if err != nil {
			t.Fatal(err)
		}
		for name, call := range map[string]func(){
			"Reserve": func() { m.Reserve(1, nil) },
			"Publish": func() { m.Publish(0) },
			"Peek":    func() { m.Peek(nil) },
			"Consume": func() { m.Consume(0) },
		} {
			func() {
				defer func() {
					if recover() == nil {
						t.Errorf("%s on %v mailbox did not panic", name, mode)
					}
				}()
				call()
			}()
		}
	}
}

// TestSPSCConservationUnderShedding round-trips the conservation
// identity through a shedding ring: with a tiny send timeout and a
// deliberately stalling consumer, every produced tuple must end up
// exactly one of delivered, dropped, or drained — and after Drain the
// ring must report empty (credits restored).
func TestSPSCConservationUnderShedding(t *testing.T) {
	const total = 4000
	m, err := New[int](Config{Capacity: 8, Mode: SPSC, Batch: 4})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var sent, dropped atomic.Int64
	produced := make(chan struct{})
	go func() {
		defer close(produced)
		s := m.NewSender(200 * time.Microsecond)
		prng := rand.New(rand.NewSource(3))
		for i := 0; i < total; {
			n := 1 + prng.Intn(6)
			if i+n > total {
				n = total - i
			}
			run := make([]int, n)
			for k := range run {
				run[k] = i + k
			}
			ns, nd, ok := s.SendMany(run, done)
			sent.Add(int64(ns))
			dropped.Add(int64(nd))
			if !ok {
				t.Error("SendMany aborted with done open")
				return
			}
			i += n
		}
	}()
	delivered := 0
	deadline := time.After(30 * time.Second)
	prng := rand.New(rand.NewSource(4))
	for {
		select {
		case <-produced:
			// Producer finished; take what is immediately pending, leave
			// the rest for Drain.
			for m.Pending() > 0 && prng.Intn(4) != 0 {
				b, ok := m.RecvBatch(done)
				if !ok {
					t.Fatal("RecvBatch aborted")
				}
				delivered += len(b)
				m.Recycle(b)
			}
			drained := m.Drain()
			if got := delivered + int(dropped.Load()) + drained; got != total {
				t.Fatalf("conservation violated: delivered %d + dropped %d + drained %d = %d, want %d",
					delivered, dropped.Load(), drained, got, total)
			}
			if int(sent.Load())+int(dropped.Load()) != total {
				t.Fatalf("producer accounting: sent %d + dropped %d != %d", sent.Load(), dropped.Load(), total)
			}
			if q := m.Pending(); q != 0 {
				t.Fatalf("Pending = %d after Drain, want 0", q)
			}
			close(done)
			return
		case <-deadline:
			t.Fatal("conservation test did not complete")
		default:
		}
		// Stall sometimes so the producer's timeout fires and sheds.
		if prng.Intn(3) == 0 {
			time.Sleep(time.Duration(prng.Intn(800)) * time.Microsecond)
			continue
		}
		// Only take from a non-empty ring: a blocking RecvBatch could park
		// past the producer's exit (close(produced) does not wake the
		// ring), and with a single consumer a non-zero Pending guarantees
		// the receive completes without parking.
		if m.Pending() == 0 {
			continue
		}
		b, ok := m.RecvBatch(done)
		if !ok {
			t.Fatal("RecvBatch aborted")
		}
		delivered += len(b)
		m.Recycle(b)
	}
}
