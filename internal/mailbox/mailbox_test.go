package mailbox

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// modes lists every concrete transport; the suites below drive at most
// one producer goroutine at a time, so the SPSC ring is a legal target.
func modes() []Mode { return []Mode{PerTuple, Batched, SPSC} }

// TestBASCapacityExact pins the core BAS invariant for both transports: a
// mailbox of capacity C admits exactly C tuples with no consumer running,
// regardless of batch size, and the C+1-th send blocks.
func TestBASCapacityExact(t *testing.T) {
	for _, mode := range modes() {
		t.Run(mode.String(), func(t *testing.T) {
			const capacity = 5
			// Batch larger than the capacity: credits, not batch-full
			// flushes, must provide the bound.
			m, err := New[int](Config{Capacity: capacity, Mode: mode, Batch: 64, Linger: time.Hour})
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan struct{})
			s := m.NewSender(0)
			for i := 0; i < capacity; i++ {
				if got := s.Send(i, done); got != Sent {
					t.Fatalf("send %d = %v, want Sent", i, got)
				}
			}
			if q := m.Queued(); q != capacity {
				t.Fatalf("Queued = %d, want %d", q, capacity)
			}
			blocked := make(chan SendResult, 1)
			go func() { blocked <- s.Send(capacity, done) }()
			select {
			case r := <-blocked:
				t.Fatalf("send %d returned %v, want block at exactly C queued tuples", capacity, r)
			case <-time.After(50 * time.Millisecond):
			}
			// One Recv frees capacity (per-tuple: one slot; batched: the
			// dequeued batch's credits) and unblocks the sender.
			if _, ok := m.Recv(done); !ok {
				t.Fatal("Recv failed")
			}
			select {
			case r := <-blocked:
				if r != Sent {
					t.Fatalf("unblocked send = %v, want Sent", r)
				}
			case <-time.After(2 * time.Second):
				t.Fatal("sender still blocked after capacity freed")
			}
		})
	}
}

// TestTimeoutDropsOnlyUnadmitted pins the shedding contract: a send
// timeout rejects only the item being admitted — items that already
// entered the mailbox (including a partially filled batch) are never
// dropped and arrive in order.
func TestTimeoutDropsOnlyUnadmitted(t *testing.T) {
	for _, mode := range modes() {
		t.Run(mode.String(), func(t *testing.T) {
			const capacity = 4
			m, err := New[int](Config{Capacity: capacity, Mode: mode, Batch: 3, Linger: time.Hour})
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan struct{})
			s := m.NewSender(5 * time.Millisecond)
			for i := 0; i < capacity; i++ {
				if got := s.Send(i, done); got != Sent {
					t.Fatalf("send %d = %v, want Sent", i, got)
				}
			}
			for i := capacity; i < capacity+3; i++ {
				if got := s.Send(i, done); got != Dropped {
					t.Fatalf("send %d = %v, want Dropped", i, got)
				}
			}
			// Every admitted tuple is delivered exactly once, in order,
			// despite the drops that followed.
			for i := 0; i < capacity; i++ {
				v, ok := m.Recv(done)
				if !ok || v != i {
					t.Fatalf("Recv = %d,%v, want %d,true", v, ok, i)
				}
			}
			if q := m.Queued(); q != 0 {
				t.Fatalf("Queued = %d after drain, want 0", q)
			}
		})
	}
}

// TestBatchFullFlush verifies a full batch reaches the consumer without
// waiting for the linger.
func TestBatchFullFlush(t *testing.T) {
	m, err := New[int](Config{Capacity: 64, Mode: Batched, Batch: 4, Linger: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	s := m.NewSender(0)
	for i := 0; i < 4; i++ {
		if r := s.Send(i, done); r != Sent {
			t.Fatalf("Send(%d) = %v", i, r)
		}
	}
	deadline := time.After(2 * time.Second)
	got := make(chan int, 4)
	go func() {
		for i := 0; i < 4; i++ {
			v, ok := m.Recv(done)
			if !ok {
				return
			}
			got <- v
		}
	}()
	for i := 0; i < 4; i++ {
		select {
		case v := <-got:
			if v != i {
				t.Fatalf("tuple %d = %d, want in-order delivery", i, v)
			}
		case <-deadline:
			t.Fatal("full batch did not flush")
		}
	}
}

// TestLingerFlushesPartialBatch verifies low-rate edges don't stall: a
// partial batch is delivered within the linger bound.
func TestLingerFlushesPartialBatch(t *testing.T) {
	m, err := New[int](Config{Capacity: 64, Mode: Batched, Batch: 1024, Linger: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	s := m.NewSender(0)
	start := time.Now()
	if r := s.Send(7, done); r != Sent {
		t.Fatalf("Send = %v", r)
	}
	v, ok := m.Recv(done)
	if !ok || v != 7 {
		t.Fatalf("Recv = %d,%v", v, ok)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("partial batch took %v to arrive", d)
	}
}

// TestDoneUnblocksBothSides verifies closing done aborts a blocked send
// and a blocked receive.
func TestDoneUnblocksBothSides(t *testing.T) {
	for _, mode := range modes() {
		t.Run(mode.String(), func(t *testing.T) {
			m, err := New[int](Config{Capacity: 1, Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan struct{})
			s := m.NewSender(0)
			if r := s.Send(1, done); r != Sent {
				t.Fatalf("Send = %v", r)
			}
			res := make(chan SendResult, 1)
			recvOK := make(chan bool, 1)
			go func() { res <- s.Send(2, done) }()
			empty, err := New[int](Config{Capacity: 1, Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			go func() { _, ok := empty.Recv(done); recvOK <- ok }()
			time.Sleep(10 * time.Millisecond)
			close(done)
			if r := <-res; r != Closed {
				t.Errorf("blocked send = %v, want Closed", r)
			}
			if ok := <-recvOK; ok {
				t.Error("blocked recv returned ok after done")
			}
		})
	}
}

// TestConcurrentSenders drives many producers through one mailbox in both
// modes and checks exactly-once delivery (run under -race in CI).
func TestConcurrentSenders(t *testing.T) {
	const senders, each = 8, 2000
	// Multi-producer by construction, so only the MPSC transports apply
	// (the SPSC ring's single-producer contract is the analyzer's to
	// prove, not the mailbox's to tolerate).
	for _, mode := range []Mode{PerTuple, Batched} {
		t.Run(mode.String(), func(t *testing.T) {
			m, err := New[int](Config{Capacity: 16, Mode: mode, Batch: 8, Linger: 100 * time.Microsecond})
			if err != nil {
				t.Fatal(err)
			}
			done := make(chan struct{})
			var wg sync.WaitGroup
			for g := 0; g < senders; g++ {
				wg.Add(1)
				go func(g int) {
					defer wg.Done()
					s := m.NewSender(0)
					for i := 0; i < each; i++ {
						if s.Send(g*each+i, done) != Sent {
							t.Errorf("sender %d: unexpected non-Sent", g)
							return
						}
					}
					s.Flush()
				}(g)
			}
			seen := make(map[int]bool, senders*each)
			for len(seen) < senders*each {
				v, ok := m.Recv(done)
				if !ok {
					t.Fatal("Recv aborted")
				}
				if seen[v] {
					t.Fatalf("tuple %d delivered twice", v)
				}
				seen[v] = true
			}
			wg.Wait()
			close(done)
		})
	}
}

func TestParseMode(t *testing.T) {
	for in, want := range map[string]Mode{
		"": PerTuple, "tuple": PerTuple, "per-tuple": PerTuple,
		"batch": Batched, "batched": Batched,
		"spsc": SPSC, "ring": SPSC,
		"auto": Auto, "plan": Auto,
	} {
		got, err := ParseMode(in)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	_, err := ParseMode("bogus")
	if err == nil {
		t.Fatal("ParseMode accepted bogus mode")
	}
	// The error is the flag's usage text: it must enumerate every valid
	// spelling so a typo tells the operator what to type instead.
	for _, mode := range []Mode{PerTuple, Batched, SPSC, Auto} {
		if !strings.Contains(err.Error(), mode.String()) {
			t.Errorf("ParseMode error %q does not mention mode %q", err, mode)
		}
	}
	if PerTuple.String() != "tuple" || Batched.String() != "batch" ||
		SPSC.String() != "spsc" || Auto.String() != "auto" {
		t.Error("Mode.String not canonical")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New[int](Config{Capacity: 0}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := New[int](Config{Capacity: -1}); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := New[int](Config{Capacity: 1, Mode: Mode(42)}); err == nil {
		t.Error("unknown mode accepted")
	}
}
