// The SPSC ring transport: a lock-free bounded queue for inboxes the
// topology analyzer proves have exactly one producer station.
//
// Layout: ring has exactly Capacity slots; head and tail are monotonic
// item counts (never wrapped), so tail-head is the queue depth and a
// full ring is tail-head == Capacity — the BAS bound falls out of the
// slot accounting with no separate credit counter. Each side keeps a
// plain (non-atomic) mirror of its own index plus a cached view of the
// other side's, so the hot path costs one atomic load per *batch* of
// work, not per tuple: the producer re-reads head only when its cached
// view says the ring is full, the consumer re-reads tail only when its
// last view is exhausted.
//
// Publication is batched: SendMany copies a whole run of items into the
// ring (at most two memcpy segments across the wrap) and publishes them
// with a single tail store, then checks the consumer's waiting flag.
// Because every admitted item is published immediately there is no
// partial-batch linger state and Flush is a no-op — which is also what
// makes the cross-epoch producer handoff safe: the ring keeps no
// producer-goroutine-local state (the mirrors live on the mailbox), so a
// reconfiguration can retarget the single producer role to a new station
// as long as the pause fence orders old-producer-stops-before-new-
// producer-starts, which it does.
//
// Blocking uses a waiting-flag + 1-buffered channel handshake per side:
// the waiter sets its flag, re-checks the index, then parks on the
// channel; the releasing side updates its index, swaps the flag false
// and signals. The re-check after flag-set closes the lost-wakeup race,
// and a stale token in the 1-buffered channel only costs a spurious loop
// iteration.
package mailbox

import "time"

// recvRing takes the next run of queued items (at most one pooled
// batch's worth), copies them out of the ring, advances head, and wakes
// a producer blocked on a full ring. It returns a pooled buffer the
// caller must hand back via Recycle; copying out before advancing head
// is what lets the producer overwrite the slots the moment they are
// freed.
func (m *Mailbox[T]) recvRing(done <-chan struct{}) ([]T, bool) {
	h := m.chead
	for {
		if t := m.tail.Load(); t != h {
			n := int(t - h)
			if n > m.batch {
				n = m.batch
			}
			buf := m.pool.Get().([]T)
			if cap(buf) < n {
				// Recycled tails of partially consumed batches can carry
				// a reduced capacity; replace, don't grow in place.
				buf = make([]T, 0, m.batch)
			}
			buf = buf[:n]
			start := int(h % uint64(m.capacity))
			first := m.capacity - start
			if first > n {
				first = n
			}
			copy(buf[:first], m.ring[start:start+first])
			copy(buf[first:], m.ring[:n-first])
			m.chead = h + uint64(n)
			m.head.Store(m.chead)
			if m.prodWait.Load() && m.prodWait.Swap(false) {
				select {
				case m.notFull <- struct{}{}:
				default:
				}
			}
			return buf, true
		}
		// Park: flag first, then re-check tail so a publication racing
		// with the flag store is never missed (the producer re-reads the
		// flag after every tail store).
		m.consWait.Store(true)
		if m.tail.Load() != h {
			m.consWait.Store(false)
			continue
		}
		select {
		case <-m.notEmpty:
		case <-done:
			m.consWait.Store(false)
			return nil, false
		}
	}
}

// publishRing makes the producer's pending writes visible and wakes the
// consumer if it is parked.
func (m *Mailbox[T]) publishRing() {
	m.tail.Store(m.ptail)
	if m.consWait.Load() && m.consWait.Swap(false) {
		select {
		case m.notEmpty <- struct{}{}:
		default:
		}
	}
}

// freeRing returns the producer's view of the free slot count,
// refreshing the cached head from the consumer when the cache says full.
func (m *Mailbox[T]) freeRing() int {
	free := m.capacity - int(m.ptail-m.phead)
	if free == 0 {
		m.phead = m.head.Load()
		free = m.capacity - int(m.ptail-m.phead)
	}
	return free
}

// waitRingSpace blocks the producer until at least one slot frees
// (Sent), the timeout expires (Dropped; zero blocks forever), or done
// closes (Closed). One call is one backpressure episode for Blocked().
func (m *Mailbox[T]) waitRingSpace(timeout time.Duration, done <-chan struct{}) SendResult {
	m.blocked.Add(1)
	var timeoutC <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	for {
		m.prodWait.Store(true)
		m.phead = m.head.Load()
		if m.capacity-int(m.ptail-m.phead) > 0 {
			m.prodWait.Store(false)
			return Sent
		}
		select {
		case <-m.notFull:
		case <-timeoutC:
			m.prodWait.Store(false)
			return Dropped
		case <-done:
			m.prodWait.Store(false)
			return Closed
		}
	}
}

// Reserve hands the single producer a contiguous window of free ring
// slots to fill in place — the zero-copy produce path: the producer
// writes items directly into the ring and makes them visible with one
// Publish call, skipping the staging buffer and memcpy that Send/
// SendMany pay. The window holds at most max slots and never wraps (a
// reservation is one contiguous span; the next Reserve continues past
// the wrap). A full ring blocks under BAS until the consumer frees slots
// or done closes (ok == false; no slots were reserved). Reservations
// ignore the sender-level SendTimeout — callers that shed on timeout
// must use Send/SendMany.
//
// Only the proven single producer may call Reserve, and each Reserve
// must be completed by Publish(n) with n <= len(window) before the next
// Reserve. Unpublished slots are simply returned to the free pool by the
// next reservation — the consumer never observes them. Panics on
// non-SPSC mailboxes: the reservation protocol is exactly what the
// single-producer proof licenses.
func (m *Mailbox[T]) Reserve(max int, done <-chan struct{}) ([]T, bool) {
	if m.mode != SPSC {
		panic("mailbox: Reserve on non-SPSC mailbox")
	}
	free := m.freeRing()
	if free == 0 {
		if m.waitRingSpace(0, done) != Sent {
			return nil, false
		}
		free = m.capacity - int(m.ptail-m.phead)
	}
	n := free
	if n > max {
		n = max
	}
	start := int(m.ptail % uint64(m.capacity))
	if first := m.capacity - start; n > first {
		n = first
	}
	return m.ring[start : start+n : start+n], true
}

// Publish makes the first n slots of the current reservation visible to
// the consumer and wakes it if parked. n == 0 is a no-op reservation
// release.
func (m *Mailbox[T]) Publish(n int) {
	if m.mode != SPSC {
		panic("mailbox: Publish on non-SPSC mailbox")
	}
	if n == 0 {
		return
	}
	m.ptail += uint64(n)
	m.publishRing()
}

// Peek hands the single consumer the next contiguous run of queued items
// in place — the zero-copy consume path, dual to Reserve: the consumer
// reads (or mutates) the items directly in the ring and frees the slots
// with Consume, skipping the copy-out and pooled buffer that Recv/
// RecvBatch pay. The run never wraps (the next Peek continues past the
// wrap) and is not capped at the batch size — whole-run amortization is
// the point. An empty ring blocks exactly like RecvBatch until the
// producer publishes or done closes (ok == false). Panics on non-SPSC
// mailboxes.
//
// The peeked window stays valid until Consume; consuming fewer slots
// than peeked is allowed (the remainder reappears at the next Peek).
func (m *Mailbox[T]) Peek(done <-chan struct{}) ([]T, bool) {
	if m.mode != SPSC {
		panic("mailbox: Peek on non-SPSC mailbox")
	}
	// Serve the in-hand batch a single-item Recv left behind before
	// touching the ring (its slots were already freed at copy-out), so
	// mixing Recv with Peek keeps FIFO — same rule as RecvBatch.
	if m.cur != nil {
		if m.idx < len(m.cur) {
			return m.cur[m.idx:len(m.cur):len(m.cur)], true
		}
		m.pool.Put(m.cur[:0])
		m.cur, m.idx = nil, 0
	}
	h := m.chead
	for {
		if t := m.tail.Load(); t != h {
			n := int(t - h)
			start := int(h % uint64(m.capacity))
			if first := m.capacity - start; n > first {
				n = first
			}
			return m.ring[start : start+n : start+n], true
		}
		// Park exactly as recvRing does: flag, re-check, wait.
		m.consWait.Store(true)
		if m.tail.Load() != h {
			m.consWait.Store(false)
			continue
		}
		select {
		case <-m.notEmpty:
		case <-done:
			m.consWait.Store(false)
			return nil, false
		}
	}
}

// Consume frees the first n slots of the current peek window and wakes a
// producer blocked on a full ring. n == 0 is a no-op.
func (m *Mailbox[T]) Consume(n int) {
	if m.mode != SPSC {
		panic("mailbox: Consume on non-SPSC mailbox")
	}
	if n == 0 {
		return
	}
	// A window served from the in-hand batch advances the batch cursor;
	// its ring slots were freed when Recv copied the batch out.
	if m.cur != nil {
		m.idx += n
		return
	}
	m.chead += uint64(n)
	m.head.Store(m.chead)
	if m.prodWait.Load() && m.prodWait.Swap(false) {
		select {
		case m.notFull <- struct{}{}:
		default:
		}
	}
}

// sendRing admits one item through the ring.
func (s *Sender[T]) sendRing(t T, done <-chan struct{}) SendResult {
	m := s.m
	if m.freeRing() == 0 {
		if r := m.waitRingSpace(s.timeout, done); r != Sent {
			return r
		}
	}
	m.ring[m.ptail%uint64(m.capacity)] = t
	m.ptail++
	m.publishRing()
	return Sent
}

// sendManyRing admits a slice of items with the exact per-tuple
// semantics of repeated Send calls: a full ring blocks at the same queue
// depth, and with a timeout each blocked tuple gets its own timeout
// window and is shed individually. Free slots are taken in whole runs —
// one two-segment copy and one tail publication per run.
func (s *Sender[T]) sendManyRing(ts []T, done <-chan struct{}) (sent, dropped int, ok bool) {
	m := s.m
	i := 0
	for i < len(ts) {
		free := m.freeRing()
		if free == 0 {
			switch m.waitRingSpace(s.timeout, done) {
			case Sent:
				continue
			case Dropped:
				dropped++
				i++
				continue
			default:
				return sent, dropped, false
			}
		}
		n := len(ts) - i
		if n > free {
			n = free
		}
		start := int(m.ptail % uint64(m.capacity))
		first := m.capacity - start
		if first > n {
			first = n
		}
		copy(m.ring[start:start+first], ts[i:i+first])
		copy(m.ring[:n-first], ts[i+first:i+n])
		m.ptail += uint64(n)
		m.publishRing()
		sent += n
		i += n
	}
	return sent, dropped, true
}
