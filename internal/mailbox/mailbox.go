// Package mailbox is the runtime's dataplane: a bounded, tuple-capacity-
// accounted queue connecting one producer set to a single consumer actor.
// It offers three interchangeable transports behind one API:
//
//   - PerTuple: each item is one bounded-channel operation — the classic
//     Akka BoundedMailbox analog the cost models were validated against.
//   - Batched: senders accumulate items into pooled micro-batches (flushed
//     on batch-full or after a linger timeout so low-rate edges don't
//     stall) and the consumer drains whole batches, amortizing the
//     synchronization cost of a queue operation over many tuples.
//   - SPSC: a lock-free cached-index ring for inboxes the topology
//     analyzer proves have a single producer station — no mutex, no
//     channel, no credit CAS on the hot path; the ring's slot count is
//     the capacity, so slot accounting is tuple accounting (see spsc.go).
//
// All transports preserve Blocking-After-Service semantics exactly: a
// mailbox of capacity C admits at most C tuples before senders block
// (or, with a send timeout, shed), regardless of batch size. Capacity is
// accounted in tuples via a credit token per admitted item (a ring slot
// in SPSC mode), never in batches, so the steady-state model's
// predictions remain valid under any transport. Items already admitted
// (holding a credit) are never dropped — a send timeout can only reject
// the item being admitted.
package mailbox

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Mode selects the transport of a mailbox.
type Mode int

const (
	// PerTuple delivers each item as an individual channel send.
	PerTuple Mode = iota
	// Batched delivers items in pooled micro-batches.
	Batched
	// SPSC delivers items through a lock-free single-producer ring. A
	// mailbox may only run in this mode when exactly one station sends
	// to it; the runtime derives that proof from the deployed plan.
	SPSC
	// Auto is not a transport but a selection policy: the runtime binds
	// each inbox per-edge from the plan's producer-set analysis — the
	// SPSC ring where the inbox is provably single-producer, the batched
	// transport everywhere else. New rejects it; resolve before
	// construction.
	Auto
)

// String returns the canonical flag spelling of the mode.
func (m Mode) String() string {
	switch m {
	case PerTuple:
		return "tuple"
	case Batched:
		return "batch"
	case SPSC:
		return "spsc"
	case Auto:
		return "auto"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ParseMode parses a -mailbox flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "tuple", "per-tuple", "pertuple":
		return PerTuple, nil
	case "batch", "batched":
		return Batched, nil
	case "spsc", "ring":
		return SPSC, nil
	case "auto", "plan":
		return Auto, nil
	default:
		return 0, fmt.Errorf("mailbox: unknown mode %q (valid modes: tuple, batch, spsc, auto)", s)
	}
}

// Transport defaults; a zero Config field selects these.
const (
	// DefaultBatch is the micro-batch size of the batched transport.
	DefaultBatch = 32
	// DefaultLinger bounds how long a partial batch may wait before it is
	// flushed to the consumer.
	DefaultLinger = time.Millisecond
)

// Config sizes a mailbox.
type Config struct {
	// Capacity is the BAS bound: the maximum number of admitted tuples.
	Capacity int
	// Mode selects the transport.
	Mode Mode
	// Batch is the micro-batch size in Batched mode (default DefaultBatch).
	Batch int
	// Linger bounds the wait of a partial batch in Batched mode (default
	// DefaultLinger). It must be positive: partial batches hold capacity
	// credits, so an unbounded linger could stall the consumer forever.
	Linger time.Duration
}

// SendResult reports the outcome of one send.
type SendResult int

const (
	// Sent means the item was admitted into the mailbox.
	Sent SendResult = iota
	// Dropped means the send timeout expired before a capacity credit
	// became available; the item was never admitted.
	Dropped
	// Closed means the done channel fired while the send was blocked.
	Closed
)

// Mailbox is a bounded single-consumer queue. Producers send through
// Sender values (one per producer, from NewSender); the consumer calls
// Recv. The zero value is not usable; construct with New.
type Mailbox[T any] struct {
	mode     Mode
	capacity int
	batch    int
	linger   time.Duration

	// ch is the PerTuple transport.
	ch chan T

	// avail counts free capacity credits; one credit is taken per
	// admitted tuple, so avail == 0 is exactly "C tuples queued" and
	// blocks admission (BAS). An atomic counter (with wake for blocked
	// senders) instead of a token channel keeps the per-tuple admission
	// cost to one CAS and lets the consumer release a whole batch's
	// credits in a single add.
	avail atomic.Int64
	// wake carries at most one pending wakeup for senders blocked on
	// exhausted credits; a woken sender re-signals while credits remain,
	// so one release fans out to every waiter that can proceed.
	wake chan struct{}
	// batches carries flushed micro-batches. Its capacity equals the
	// tuple capacity: every queued batch holds at least one credited
	// tuple, so at most Capacity batches can be outstanding and a flush
	// by a credit-holding sender never blocks.
	batches chan []T
	// blocked counts send episodes that found the mailbox full and had to
	// wait (or shed): the BAS backpressure events the observability layer
	// reports as credit stalls.
	blocked atomic.Uint64
	// pool recycles batch buffers between senders and the consumer.
	pool sync.Pool

	// cur/idx is the consumer-side cursor over the batch in hand; only
	// the single consumer touches them.
	cur []T
	idx int

	// SPSC ring transport state (mode == SPSC); see spsc.go. The ring
	// has exactly capacity slots, so slot accounting is tuple-capacity
	// accounting. head/tail are monotonic positions (not wrapped
	// indices); the pads keep the consumer-written and producer-written
	// fields on separate cache lines so the indices don't ping-pong.
	head  atomic.Uint64 // consumed count; written only by the consumer
	chead uint64        // consumer's mirror of head (plain, consumer-only)
	_     [6]uint64
	tail  atomic.Uint64 // published count; written only by the producer
	ptail uint64        // producer's mirror of tail (plain, producer-only)
	phead uint64        // producer's cached view of head
	_     [5]uint64
	// prodWait/consWait flag a parked side; the releasing side swaps the
	// flag false and signals the matching 1-buffered channel, so a wait
	// never misses a wakeup and a stale token only costs a spurious loop.
	prodWait atomic.Bool
	consWait atomic.Bool
	notFull  chan struct{}
	notEmpty chan struct{}
	// ring is the slot array; written at tail by the producer, read at
	// head by the consumer, never resized.
	ring []T
}

// Mode reports the transport the mailbox was built with; the runtime's
// per-inbox loop dispatch and the reconfiguration controller's demotion
// scan both read it.
func (m *Mailbox[T]) Mode() Mode { return m.mode }

// New builds a mailbox with capacity cfg.Capacity tuples.
func New[T any](cfg Config) (*Mailbox[T], error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("mailbox: capacity %d, want > 0", cfg.Capacity)
	}
	m := &Mailbox[T]{mode: cfg.Mode, capacity: cfg.Capacity}
	switch cfg.Mode {
	case PerTuple:
		m.ch = make(chan T, cfg.Capacity)
	case Batched:
		m.batch = cfg.Batch
		if m.batch <= 0 {
			m.batch = DefaultBatch
		}
		m.linger = cfg.Linger
		if m.linger <= 0 {
			m.linger = DefaultLinger
		}
		m.avail.Store(int64(cfg.Capacity))
		m.wake = make(chan struct{}, 1)
		m.batches = make(chan []T, cfg.Capacity)
		batch := m.batch
		m.pool.New = func() any { return make([]T, 0, batch) }
	case SPSC:
		m.batch = cfg.Batch
		if m.batch <= 0 {
			m.batch = DefaultBatch
		}
		m.ring = make([]T, cfg.Capacity)
		m.notFull = make(chan struct{}, 1)
		m.notEmpty = make(chan struct{}, 1)
		batch := m.batch
		m.pool.New = func() any { return make([]T, 0, batch) }
	case Auto:
		return nil, fmt.Errorf("mailbox: mode auto is a per-edge selection policy; resolve it to a concrete transport before construction")
	default:
		return nil, fmt.Errorf("mailbox: unknown mode %v", cfg.Mode)
	}
	return m, nil
}

// Queued reports the number of admitted tuples not yet taken by the
// consumer (approximate under concurrency; exact when quiescent).
func (m *Mailbox[T]) Queued() int {
	switch m.mode {
	case PerTuple:
		return len(m.ch)
	case SPSC:
		// The two loads are not a consistent snapshot when sampled from
		// a third goroutine; clamp the transient skew so a reading never
		// leaves [0, capacity] (exact whenever either side is quiescent).
		q := int(m.tail.Load() - m.head.Load())
		if q < 0 {
			q = 0
		} else if q > m.capacity {
			q = m.capacity
		}
		return q
	default:
		return m.capacity - int(m.avail.Load())
	}
}

// Capacity returns the BAS bound the mailbox was built with.
func (m *Mailbox[T]) Capacity() int { return m.capacity }

// Occupancy reports the instantaneous depth together with the BAS bound
// in one call — the sampling hook the online service-rate estimator
// polls. Like Queued it is a single atomic read (channel length or credit
// counter) in either transport mode, so a high-frequency sampler costs
// the dataplane nothing.
func (m *Mailbox[T]) Occupancy() (queued, capacity int) {
	return m.Queued(), m.capacity
}

// Pending reports how many tuples the consumer can still receive: the
// queued tuples plus, in batched mode, the unread tail of the batch the
// consumer is part-way through (whose credits were already released at
// receive time, so Queued misses it). It may only be called from the
// consumer's goroutine; the runtime's drain-before-pause protocol uses it
// to decide when a station has fully quiesced.
func (m *Mailbox[T]) Pending() int {
	n := m.Queued()
	if m.mode != PerTuple && m.cur != nil {
		n += len(m.cur) - m.idx
	}
	return n
}

// Blocked returns the number of send episodes that found the mailbox at
// capacity and had to wait for a credit (or shed on timeout) — one count
// per stall, not per tuple. It is the mailbox's backpressure signal.
func (m *Mailbox[T]) Blocked() uint64 { return m.blocked.Load() }

// Drain removes and counts every tuple still queued — including the
// remainder of a batch the consumer was part-way through — returning
// their capacity credits so the mailbox ends back at full capacity.
// It must only be called once all producers and the consumer have
// stopped; the runtime's drain-on-shutdown pass uses it to account for
// in-flight tuples, and Queued() == 0 afterwards is the "credits
// restored" invariant the chaos suite checks.
func (m *Mailbox[T]) Drain() int {
	n := 0
	if m.mode == PerTuple {
		for {
			select {
			case <-m.ch:
				n++
			default:
				return n
			}
		}
	}
	// The consumer's in-hand batch already had its credits released at
	// receive time; only count its unread tail. (The consumer nils cur
	// on exit without resetting idx, so guard on cur, not idx.)
	if m.cur != nil {
		n += len(m.cur) - m.idx
	}
	m.cur, m.idx = nil, 0
	if m.mode == SPSC {
		// Quiescent by contract, so head/tail are exact: everything
		// between them is an admitted, undelivered tuple. Advancing head
		// to tail frees every slot, which is the ring's "credits
		// restored" state.
		h, t := m.head.Load(), m.tail.Load()
		n += int(t - h)
		m.chead = t
		m.head.Store(t)
		return n
	}
	for {
		select {
		case b := <-m.batches:
			n += len(b)
			m.release(len(b))
		default:
			return n
		}
	}
}

// tryAcquire takes one capacity credit if any remain.
func (m *Mailbox[T]) tryAcquire() bool {
	for {
		v := m.avail.Load()
		if v <= 0 {
			return false
		}
		if m.avail.CompareAndSwap(v, v-1) {
			return true
		}
	}
}

// tryAcquireN takes up to want credits in one CAS and reports how many it
// got. Capacity stays tuple-accounted: a bulk admission takes exactly what
// is free and the caller blocks for the rest, so BAS blocking occurs at
// the same queue depth as single-credit admission.
func (m *Mailbox[T]) tryAcquireN(want int) int {
	for {
		v := m.avail.Load()
		if v <= 0 {
			return 0
		}
		n := int64(want)
		if n > v {
			n = v
		}
		if m.avail.CompareAndSwap(v, v-n) {
			return int(n)
		}
	}
}

// release returns n credits and wakes one blocked sender; the woken
// sender cascades the wakeup while credits remain.
func (m *Mailbox[T]) release(n int) {
	m.avail.Add(int64(n))
	m.signalWake()
}

func (m *Mailbox[T]) signalWake() {
	select {
	case m.wake <- struct{}{}:
	default:
	}
}

// Recv returns the next tuple, blocking until one is available or done is
// closed (ok == false). Only one goroutine may call Recv.
func (m *Mailbox[T]) Recv(done <-chan struct{}) (t T, ok bool) {
	if m.mode == PerTuple {
		select {
		case t = <-m.ch:
			return t, true
		case <-done:
			return t, false
		}
	}
	for m.idx >= len(m.cur) {
		if m.cur != nil {
			m.pool.Put(m.cur[:0])
			m.cur = nil
		}
		if m.mode == SPSC {
			b, ok := m.recvRing(done)
			if !ok {
				return t, false
			}
			m.cur, m.idx = b, 0
			continue
		}
		select {
		case b := <-m.batches:
			// The whole batch leaves the queue in one operation; its
			// capacity credits are released together, which is what
			// amortizes the queue synchronization over the batch.
			m.release(len(b))
			m.cur, m.idx = b, 0
		case <-done:
			return t, false
		}
	}
	t = m.cur[m.idx]
	m.idx++
	return t, true
}

// RecvBatch returns the next whole micro-batch, blocking like Recv. The
// caller owns the returned slice until it hands it back with Recycle. In
// PerTuple mode it degrades to a single-item batch. Only the consumer
// goroutine may call it; it may be mixed with Recv (a partially consumed
// Recv batch is returned first).
func (m *Mailbox[T]) RecvBatch(done <-chan struct{}) ([]T, bool) {
	if m.mode == PerTuple {
		t, ok := m.Recv(done)
		if !ok {
			return nil, false
		}
		return []T{t}, true
	}
	if m.idx < len(m.cur) {
		b := m.cur[m.idx:]
		m.cur, m.idx = nil, 0
		return b, true
	}
	if m.cur != nil {
		m.pool.Put(m.cur[:0])
		m.cur = nil
	}
	if m.mode == SPSC {
		return m.recvRing(done)
	}
	select {
	case b := <-m.batches:
		// The whole batch leaves the queue in one operation and its
		// capacity credits are released in one add.
		m.release(len(b))
		return b, true
	case <-done:
		return nil, false
	}
}

// Recycle returns a batch obtained from RecvBatch to the buffer pool.
func (m *Mailbox[T]) Recycle(b []T) {
	if m.mode != PerTuple && b != nil {
		m.pool.Put(b[:0])
	}
}

// Sender is one producer's handle on a mailbox. In Batched mode it owns
// the producer's partial batch, so each producing goroutine needs its own
// Sender; a Sender itself is safe against its own linger timer only.
type Sender[T any] struct {
	m *Mailbox[T]
	// timeout bounds how long Send may block on a full mailbox before
	// dropping the item; zero blocks forever (pure backpressure).
	timeout time.Duration

	mu    sync.Mutex
	buf   []T
	timer *time.Timer
}

// NewSender returns a producer handle. A non-zero timeout gives Akka
// BoundedMailbox shedding semantics: Send drops the item (Dropped) when no
// capacity credit frees up within the timeout.
func (m *Mailbox[T]) NewSender(timeout time.Duration) *Sender[T] {
	return &Sender[T]{m: m, timeout: timeout}
}

// Send admits one item, blocking while the mailbox holds its full
// capacity in tuples. done aborts a blocked send (Closed).
func (s *Sender[T]) Send(t T, done <-chan struct{}) SendResult {
	if s.m.mode == PerTuple {
		return s.sendTuple(t, done)
	}
	if s.m.mode == SPSC {
		return s.sendRing(t, done)
	}
	// Admission: one credit per tuple, acquired before the item enters
	// the partial batch. Fast path first: an immediate credit avoids the
	// flush and the timer.
	if !s.m.tryAcquire() {
		if r := s.acquireSlow(done); r != Sent {
			return r
		}
	}
	s.mu.Lock()
	if s.buf == nil {
		s.buf = s.m.pool.Get().([]T)
	}
	s.buf = append(s.buf, t)
	switch {
	case len(s.buf) >= s.m.batch:
		s.flushLocked()
	case len(s.buf) == 1:
		s.armTimerLocked()
	}
	s.mu.Unlock()
	return Sent
}

// acquireSlow blocks for a capacity credit after the fast path failed.
func (s *Sender[T]) acquireSlow(done <-chan struct{}) SendResult {
	// About to block: hand the partial batch to the consumer first, both
	// so it can make progress draining the queue and so the items we
	// already admitted aren't held back by our stall.
	s.Flush()
	return s.m.waitCredit(s.timeout, done)
}

// waitCredit blocks until one capacity credit is acquired (Sent), the
// timeout expires (Dropped; zero timeout blocks forever), or done closes
// (Closed).
func (m *Mailbox[T]) waitCredit(timeout time.Duration, done <-chan struct{}) SendResult {
	m.blocked.Add(1)
	var timeoutC <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timeoutC = timer.C
	}
	for {
		select {
		case <-m.wake:
			got := m.tryAcquire()
			// Pass the wakeup on while credits remain: one bulk release
			// must reach every waiter it can satisfy, and a waiter that
			// lost the race must not strand the token it consumed.
			if m.avail.Load() > 0 {
				m.signalWake()
			}
			if got {
				return Sent
			}
		case <-timeoutC:
			return Dropped
		case <-done:
			return Closed
		}
	}
}

// SendMany admits a slice of items with the exact per-tuple semantics of
// repeated Send calls — capacity is still accounted per tuple, a full
// mailbox blocks at the same queue depth, and with a timeout each blocked
// tuple gets its own timeout window and is shed individually (items
// already admitted are never dropped). What the bulk path buys is
// amortization: free credits are taken in one CAS for a whole run of
// items and the sender's batch lock is taken once per run instead of once
// per tuple.
func (s *Sender[T]) SendMany(ts []T, done <-chan struct{}) (sent, dropped int, ok bool) {
	if s.m.mode == PerTuple {
		for _, t := range ts {
			switch s.sendTuple(t, done) {
			case Sent:
				sent++
			case Dropped:
				dropped++
			default:
				return sent, dropped, false
			}
		}
		return sent, dropped, true
	}
	if s.m.mode == SPSC {
		return s.sendManyRing(ts, done)
	}
	i := 0
	for i < len(ts) {
		n := s.m.tryAcquireN(len(ts) - i)
		if n == 0 {
			// Blocked: hand the partial batch over first, then wait for
			// one credit at a time so shedding stays per-tuple.
			s.Flush()
			switch s.m.waitCredit(s.timeout, done) {
			case Sent:
				n = 1
			case Dropped:
				dropped++
				i++
				continue
			default:
				return sent, dropped, false
			}
		}
		s.mu.Lock()
		for k := 0; k < n; k++ {
			if s.buf == nil {
				s.buf = s.m.pool.Get().([]T)
			}
			s.buf = append(s.buf, ts[i+k])
			if len(s.buf) >= s.m.batch {
				s.flushLocked()
			}
		}
		s.mu.Unlock()
		sent += n
		i += n
	}
	// The caller hands over complete output batches, so anything left in
	// the buffer is the tail of this delivery: push it now rather than
	// waiting for a linger.
	s.Flush()
	return sent, dropped, true
}

// sendTuple is the PerTuple transport: the existing bounded-channel dance.
func (s *Sender[T]) sendTuple(t T, done <-chan struct{}) SendResult {
	select {
	case s.m.ch <- t:
		return Sent
	default:
	}
	s.m.blocked.Add(1)
	if s.timeout > 0 {
		timer := time.NewTimer(s.timeout)
		defer timer.Stop()
		select {
		case s.m.ch <- t:
			return Sent
		case <-timer.C:
			return Dropped
		case <-done:
			return Closed
		}
	}
	select {
	case s.m.ch <- t:
		return Sent
	case <-done:
		return Closed
	}
}

// Flush hands the partial batch to the consumer immediately. A no-op in
// PerTuple mode, on an empty batch, and in SPSC mode (the ring publishes
// every admitted item at send time; there is never a held-back partial).
func (s *Sender[T]) Flush() {
	if s.m.mode != Batched {
		return
	}
	s.mu.Lock()
	s.flushLocked()
	s.mu.Unlock()
}

// flushLocked pushes the batch into the mailbox. Every buffered item
// holds a credit, so at most Capacity batches exist and the channel send
// cannot block (see the batches field).
func (s *Sender[T]) flushLocked() {
	if len(s.buf) > 0 {
		s.m.batches <- s.buf
		s.buf = nil
	}
	if s.timer != nil {
		s.timer.Stop()
	}
}

// armTimerLocked schedules the linger flush for a freshly started batch.
// A stale fire after a batch-full flush only flushes whatever partial
// batch exists then — harmless, just a smaller batch.
func (s *Sender[T]) armTimerLocked() {
	if s.timer == nil {
		s.timer = time.AfterFunc(s.m.linger, s.Flush)
		return
	}
	s.timer.Reset(s.m.linger)
}
