package profiler

import (
	"math"
	"testing"

	"spinstreams/internal/core"
	"spinstreams/internal/operators"
)

func TestMeasureMap(t *testing.T) {
	p, err := Measure(operators.MustBuild(operators.Spec{Impl: "scale"}), Config{Samples: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if p.ServiceTime <= 0 {
		t.Errorf("service time = %v, want > 0", p.ServiceTime)
	}
	if p.Gain != 1 || p.OutputSelectivity != 1 {
		t.Errorf("map gain = %v, out sel = %v, want 1", p.Gain, p.OutputSelectivity)
	}
}

func TestMeasureFilterSelectivity(t *testing.T) {
	p, err := Measure(operators.MustBuild(operators.Spec{Impl: "threshold-filter", Param: 0.5}),
		Config{Samples: 50000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Uniform [0,1) first field, threshold 0.5: measured pass rate ~0.5.
	if math.Abs(p.OutputSelectivity-0.5) > 0.02 {
		t.Errorf("measured selectivity = %v, want ~0.5", p.OutputSelectivity)
	}
}

func TestMeasureWindowedSelectivity(t *testing.T) {
	p, err := Measure(operators.MustBuild(operators.Spec{
		Impl: "wsum", WindowLen: 100, Slide: 10, NumKeys: 4,
	}), Config{Samples: 100000, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Steady-state input selectivity approaches the slide (warmup skews
	// the count a little).
	if p.InputSelectivity < 8 || p.InputSelectivity > 13 {
		t.Errorf("input selectivity = %v, want ~10", p.InputSelectivity)
	}
	if p.OutputSelectivity != 1 {
		t.Errorf("output selectivity = %v, want 1", p.OutputSelectivity)
	}
}

func TestMeasureSplitter(t *testing.T) {
	p, err := Measure(operators.MustBuild(operators.Spec{Impl: "splitter", K: 3}), Config{Samples: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if p.Gain != 3 {
		t.Errorf("splitter gain = %v, want 3", p.Gain)
	}
}

func TestMeasureNil(t *testing.T) {
	if _, err := Measure(nil, Config{}); err == nil {
		t.Fatal("nil operator accepted")
	}
}

func TestAnnotate(t *testing.T) {
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 0.001, Impl: "source"})
	mp := topo.MustAddOperator(core.Operator{Name: "map", Kind: core.KindStateless, ServiceTime: 123, Impl: "scale"})
	fil := topo.MustAddOperator(core.Operator{Name: "fil", Kind: core.KindStateless, ServiceTime: 456, Impl: "threshold-filter"})
	topo.MustConnect(src, mp, 1)
	topo.MustConnect(mp, fil, 1)

	specs := []operators.Spec{
		{Impl: "source"},
		{Impl: "scale", Param: 2},
		{Impl: "threshold-filter", Param: 0.5},
	}
	if err := Annotate(topo, specs, Config{Samples: 20000, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	if topo.Op(src).ServiceTime != 0.001 {
		t.Error("source service time overwritten")
	}
	if topo.Op(mp).ServiceTime >= 123 || topo.Op(mp).ServiceTime <= 0 {
		t.Errorf("map service time = %v, want measured (small, positive)", topo.Op(mp).ServiceTime)
	}
	if s := topo.Op(fil).OutputSelectivity; math.Abs(s-0.5) > 0.05 {
		t.Errorf("filter selectivity = %v, want ~0.5", s)
	}
	// Annotated topology remains analyzable.
	if _, err := core.SteadyState(topo); err != nil {
		t.Fatal(err)
	}
}

func TestAnnotateSpecMismatch(t *testing.T) {
	topo := core.NewTopology()
	topo.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 1})
	if err := Annotate(topo, nil, Config{}); err == nil {
		t.Fatal("spec/operator count mismatch accepted")
	}
}

func TestAnnotateUnknownImpl(t *testing.T) {
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 1})
	bad := topo.MustAddOperator(core.Operator{Name: "bad", Kind: core.KindStateless, ServiceTime: 1})
	topo.MustConnect(src, bad, 1)
	specs := []operators.Spec{{Impl: "source"}, {Impl: "ghost"}}
	if err := Annotate(topo, specs, Config{Samples: 100}); err == nil {
		t.Fatal("unknown impl accepted")
	}
}
