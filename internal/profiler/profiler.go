// Package profiler measures the per-operator quantities the SpinStreams
// cost models consume: mean service time per input item and the
// input/output selectivity, obtained by driving each operator with a
// synthetic sample stream. It replaces the instrumentation libraries the
// paper relies on (Mammut for C++, DiSL for Java) with direct measurement
// of our Go operators.
package profiler

import (
	"errors"
	"fmt"
	"time"

	"spinstreams/internal/core"
	"spinstreams/internal/operators"
)

// Profile is the measured behaviour of one operator.
type Profile struct {
	// ServiceTime is the measured mean wall time per consumed item in
	// seconds.
	ServiceTime float64
	// Consumed and Emitted count the sample items in and out.
	Consumed, Emitted uint64
	// Gain is Emitted/Consumed: the measured rate multiplier.
	Gain float64
	// InputSelectivity and OutputSelectivity split the measured gain
	// according to the operator's declared profile: windowed operators
	// report consumed-per-emitted, expanding/filtering operators report
	// emitted-per-consumed.
	InputSelectivity, OutputSelectivity float64
}

// Config tunes a measurement.
type Config struct {
	// Samples is the number of input items fed to the operator
	// (default 20000; windowed operators need enough to pass warmup).
	Samples int
	// Seed derives the synthetic input stream.
	Seed uint64
	// Generator overrides the default synthetic stream.
	Generator *operators.Generator
}

func (c Config) withDefaults() (Config, error) {
	if c.Samples <= 0 {
		c.Samples = 20000
	}
	if c.Generator == nil {
		g, err := operators.NewGenerator(operators.GeneratorConfig{Seed: c.Seed + 7})
		if err != nil {
			return c, err
		}
		c.Generator = g
	}
	return c, nil
}

// Measure drives op with cfg.Samples synthetic items and reports its
// measured profile.
func Measure(op operators.Operator, cfg Config) (Profile, error) {
	if op == nil {
		return Profile{}, errors.New("profiler: nil operator")
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return Profile{}, err
	}
	var emitted uint64
	emit := func(operators.Tuple) { emitted++ }
	start := time.Now()
	for i := 0; i < cfg.Samples; i++ {
		op.Process(cfg.Generator.Next(), emit)
	}
	elapsed := time.Since(start).Seconds()

	p := Profile{
		ServiceTime: elapsed / float64(cfg.Samples),
		Consumed:    uint64(cfg.Samples),
		Emitted:     emitted,
		Gain:        float64(emitted) / float64(cfg.Samples),
	}
	meta := op.Meta()
	switch {
	case meta.InputSelectivity > 1 && emitted > 0:
		p.InputSelectivity = float64(cfg.Samples) / float64(emitted)
		p.OutputSelectivity = 1
	default:
		p.InputSelectivity = 1
		p.OutputSelectivity = p.Gain
	}
	return p, nil
}

// Apply overwrites each vertex's ServiceTime and selectivities with an
// already-measured profile, index-aligned with OpIDs — the counterpart of
// Annotate for profiles obtained outside the profiler, e.g. rebuilt from a
// live run's registry snapshot (internal/obs). A profile with zero
// ServiceTime means "no measurement" and leaves its vertex untouched.
func Apply(t *core.Topology, profiles []Profile) error {
	if len(profiles) != t.Len() {
		return fmt.Errorf("profiler: %d profiles for %d operators", len(profiles), t.Len())
	}
	for i, p := range profiles {
		if p.ServiceTime <= 0 {
			continue
		}
		v := t.Op(core.OpID(i))
		v.ServiceTime = p.ServiceTime
		if p.InputSelectivity > 0 {
			v.InputSelectivity = p.InputSelectivity
		}
		if p.OutputSelectivity > 0 {
			v.OutputSelectivity = p.OutputSelectivity
		}
	}
	return nil
}

// Annotate profiles every bound operator of a topology and overwrites the
// vertices' ServiceTime and selectivity fields with the measured values —
// the "execute the application as is for a reasonable amount of time"
// step of the paper's workflow (Section 4.1). Vertices without a spec
// (e.g. the source) keep their configured values.
func Annotate(t *core.Topology, specs []operators.Spec, cfg Config) error {
	if len(specs) != t.Len() {
		return fmt.Errorf("profiler: %d specs for %d operators", len(specs), t.Len())
	}
	for i, spec := range specs {
		if spec.Impl == "" || spec.Impl == "source" {
			continue
		}
		op, err := operators.Build(spec)
		if err != nil {
			return fmt.Errorf("profiler: operator %d: %w", i, err)
		}
		sub := cfg
		sub.Seed = cfg.Seed + uint64(i)*0x9e37
		sub.Generator = nil
		p, err := Measure(op, sub)
		if err != nil {
			return fmt.Errorf("profiler: operator %d: %w", i, err)
		}
		v := t.Op(core.OpID(i))
		v.ServiceTime = p.ServiceTime
		v.InputSelectivity = p.InputSelectivity
		v.OutputSelectivity = p.OutputSelectivity
	}
	return nil
}
