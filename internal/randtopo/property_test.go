package randtopo

import (
	"math"
	"sort"
	"testing"

	"spinstreams/internal/core"
	"spinstreams/internal/stats"
)

// TestAlgorithm5Properties sweeps 500 seeds of the generator and asserts
// the structural invariants Algorithm 5 promises: every topology is
// acyclic (it admits a topological order), the vertex count respects the
// configured bounds, and the out-degree cap holds for every non-source
// vertex.
func TestAlgorithm5Properties(t *testing.T) {
	const (
		seeds  = 500
		minOps = 4
		maxOps = 16
		maxOut = 3
	)
	cfg := Config{MinOps: minOps, MaxOps: maxOps, MaxOutDegree: maxOut}
	for seed := uint64(1); seed <= seeds; seed++ {
		cfg.Seed = seed
		g, err := Generate(cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		topo := g.Topology
		if _, err := topo.TopologicalOrder(); err != nil {
			t.Fatalf("seed %d: not acyclic: %v", seed, err)
		}
		if n := topo.Len(); n < minOps || n > maxOps {
			t.Fatalf("seed %d: %d operators, want [%d, %d]", seed, n, minOps, maxOps)
		}
		if e := topo.NumEdges(); e < topo.Len()-1 {
			t.Fatalf("seed %d: %d edges cannot connect %d vertices", seed, e, topo.Len())
		}
		for i := 1; i < topo.Len(); i++ {
			if deg := len(topo.Out(core.OpID(i))); deg > maxOut {
				t.Fatalf("seed %d: vertex %d out-degree %d exceeds cap %d", seed, i, deg, maxOut)
			}
		}
	}
}

// TestMaxOutDegreeKeepsUncappedGenerationStable pins that introducing the
// cap did not change uncapped generation: the cap-free config must keep
// producing the golden-fingerprinted instances (TestGenerateGolden covers
// the exact hashes; here we cross-check cap=0 and a cap too large to bind
// agree edge for edge).
func TestMaxOutDegreeKeepsUncappedGenerationStable(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		a, err := Generate(Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(Config{Seed: seed, MaxOutDegree: 100})
		if err != nil {
			t.Fatal(err)
		}
		if a.Topology.String() != b.Topology.String() {
			t.Fatalf("seed %d: a non-binding out-degree cap changed the topology", seed)
		}
	}
}

// zipfExponent recovers the scaling exponent from one vertex's routing
// probabilities. The generator draws them from an exact (finite) ZipF law
// and shuffles: sorting descending restores p_k proportional to k^-s, so
// s = log(p_1/p_2)/log(2).
func zipfExponent(probs []float64) float64 {
	sorted := append([]float64(nil), probs...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	return math.Log(sorted[0]/sorted[1]) / math.Ln2
}

// TestZipfEdgeProbabilitiesMatchExponent asserts the edge-probability
// distributions follow the configured ZipF law. With the exponent pinned
// to a single value, every multi-output vertex's sorted probabilities
// must reproduce stats.ZipfWeights exactly; with the default range, every
// recovered exponent must land inside it.
func TestZipfEdgeProbabilitiesMatchExponent(t *testing.T) {
	const alpha = 1.7
	pinned := Config{ZipfExpMin: alpha, ZipfExpMax: alpha}
	checked := 0
	for seed := uint64(1); seed <= 200; seed++ {
		pinned.Seed = seed
		g, err := Generate(pinned)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.Topology.Len(); i++ {
			out := g.Topology.Out(core.OpID(i))
			if len(out) < 2 {
				continue
			}
			probs := make([]float64, len(out))
			for j, e := range out {
				probs[j] = e.Prob
			}
			sort.Sort(sort.Reverse(sort.Float64Slice(probs)))
			want := stats.ZipfWeights(len(probs), alpha)
			for k := range want {
				if math.Abs(probs[k]-want[k]) > 1e-9 {
					t.Fatalf("seed %d vertex %d: rank-%d probability %v, want ZipF(%v) weight %v",
						seed, i, k+1, probs[k], alpha, want[k])
				}
			}
			checked++
		}
	}
	if checked < 100 {
		t.Fatalf("only %d multi-output vertices checked; sweep too small to be meaningful", checked)
	}

	ranged := Config{} // defaults: exponent drawn in [1.1, 2.5]
	const tol = 1e-6
	for seed := uint64(1); seed <= 200; seed++ {
		ranged.Seed = seed
		g, err := Generate(ranged)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.Topology.Len(); i++ {
			out := g.Topology.Out(core.OpID(i))
			if len(out) < 2 {
				continue
			}
			probs := make([]float64, len(out))
			for j, e := range out {
				probs[j] = e.Prob
			}
			if s := zipfExponent(probs); s < 1.1-tol || s > 2.5+tol {
				t.Fatalf("seed %d vertex %d: recovered exponent %v outside configured [1.1, 2.5]", seed, i, s)
			}
		}
	}
}

// TestMaxOutDegreeSettlesForAchievableEdges asserts a tight cap degrades
// gracefully: generation still succeeds and stays connected, just sparser.
func TestMaxOutDegreeSettlesForAchievableEdges(t *testing.T) {
	for seed := uint64(1); seed <= 100; seed++ {
		g, err := Generate(Config{Seed: seed, MaxOutDegree: 1, BetaMin: 1.2, BetaMax: 1.2})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := g.Topology.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := 1; i < g.Topology.Len(); i++ {
			if deg := len(g.Topology.Out(core.OpID(i))); deg > 1 {
				t.Fatalf("seed %d: vertex %d out-degree %d under cap 1", seed, i, deg)
			}
		}
	}
}
