package randtopo

import (
	"fmt"
	"hash/fnv"
	"testing"

	"spinstreams/internal/core"
	"spinstreams/internal/operators"
)

func TestGenerateValid(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		g, err := Generate(Config{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		topo := g.Topology
		if err := topo.Validate(); err != nil {
			t.Fatalf("seed %d: invalid topology: %v", seed, err)
		}
		if topo.Len() < 2 || topo.Len() > 20 {
			t.Fatalf("seed %d: %d vertices, want [2, 20]", seed, topo.Len())
		}
		if len(g.Specs) != topo.Len() {
			t.Fatalf("seed %d: %d specs for %d vertices", seed, len(g.Specs), topo.Len())
		}
		if topo.Source() != 0 {
			t.Fatalf("seed %d: source is %d, want 0", seed, topo.Source())
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if a.Topology.String() != b.Topology.String() {
		t.Fatal("same seed produced different topologies")
	}
}

func TestGenerateEdgeBounds(t *testing.T) {
	for seed := uint64(100); seed < 160; seed++ {
		g, err := Generate(Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		v := g.Topology.Len()
		e := g.Topology.NumEdges()
		if e < v-1 {
			t.Fatalf("seed %d: %d edges for %d vertices, want >= v-1", seed, e, v)
		}
		if e > v*(v-1)/2 {
			t.Fatalf("seed %d: %d edges exceed the DAG maximum", seed, e)
		}
	}
}

func TestGenerateSizedBounds(t *testing.T) {
	if _, err := GenerateSized(Config{Seed: 1}, 5, 11); err == nil {
		t.Error("too many edges accepted")
	}
	if _, err := GenerateSized(Config{Seed: 1}, 5, 3); err == nil {
		t.Error("too few edges accepted")
	}
	g, err := GenerateSized(Config{Seed: 1}, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g.Topology.Len() != 8 {
		t.Fatalf("vertices = %d, want 8", g.Topology.Len())
	}
	if g.Topology.NumEdges() < 9 {
		t.Fatalf("edges = %d, want >= 9", g.Topology.NumEdges())
	}
}

func TestJoinPlacementConstraint(t *testing.T) {
	// Band-joins may only sit on vertices with >= 2 input edges.
	for seed := uint64(0); seed < 200; seed++ {
		g, err := Generate(Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.Topology.Len(); i++ {
			if g.Specs[i].Impl == "bandjoin" && len(g.Topology.In(core.OpID(i))) < 2 {
				t.Fatalf("seed %d: bandjoin on vertex %d with %d inputs",
					seed, i, len(g.Topology.In(core.OpID(i))))
			}
		}
	}
}

func TestSpecsAreBuildable(t *testing.T) {
	g, err := Generate(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range g.Specs {
		if spec.Impl == "source" {
			continue
		}
		op, err := operators.Build(spec)
		if err != nil {
			t.Errorf("vertex %d: %v", i, err)
			continue
		}
		// The topology's static profile must agree with the operator's.
		meta := op.Meta()
		tOp := g.Topology.Op(core.OpID(i))
		if meta.Kind != tOp.Kind {
			t.Errorf("vertex %d: kind mismatch %v vs %v", i, meta.Kind, tOp.Kind)
		}
		if meta.InputSelectivity != tOp.InputSelectivity {
			t.Errorf("vertex %d: input selectivity mismatch", i)
		}
	}
}

func TestPartitionedOperatorsHaveKeys(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		g, err := Generate(Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.Topology.Len(); i++ {
			op := g.Topology.Op(core.OpID(i))
			if op.Kind == core.KindPartitionedStateful {
				if op.Keys == nil {
					t.Fatalf("seed %d vertex %d: partitioned-stateful without keys", seed, i)
				}
				if err := op.Keys.Validate(); err != nil {
					t.Fatalf("seed %d vertex %d: %v", seed, i, err)
				}
			}
		}
	}
}

func TestSourceFasterThanFastestOperator(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		g, err := Generate(Config{Seed: seed, SourceFactor: 1.33})
		if err != nil {
			t.Fatal(err)
		}
		srcRate := g.Topology.Op(0).Rate()
		fastest := 0.0
		for i := 1; i < g.Topology.Len(); i++ {
			if r := g.Topology.Op(core.OpID(i)).Rate(); r > fastest {
				fastest = r
			}
		}
		if srcRate < fastest {
			t.Fatalf("seed %d: source rate %v below fastest operator %v", seed, srcRate, fastest)
		}
	}
}

func TestEveryGeneratedTopologyIsAnalyzable(t *testing.T) {
	bed, err := Testbed(Config{Seed: 42}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(bed) != 50 {
		t.Fatalf("testbed size = %d, want 50", len(bed))
	}
	bottlenecked := 0
	for i, g := range bed {
		a, err := core.SteadyState(g.Topology)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if a.Throughput() <= 0 {
			t.Fatalf("entry %d: throughput %v", i, a.Throughput())
		}
		if a.Bottlenecked() {
			bottlenecked++
		}
	}
	// With the source 33% faster than the fastest operator, every topology
	// should experience backpressure somewhere.
	if bottlenecked < len(bed)*9/10 {
		t.Errorf("only %d/%d topologies bottlenecked; setup should force backpressure", bottlenecked, len(bed))
	}
}

func TestTestbedEntriesDiffer(t *testing.T) {
	bed, err := Testbed(Config{Seed: 7}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(bed); i++ {
		if bed[i].Topology.String() == bed[0].Topology.String() {
			t.Fatalf("entries 0 and %d identical", i)
		}
	}
}

// fingerprint reduces a generated instance to an FNV-1a hash of its
// canonical rendering (topology string plus every operator spec), so a
// change to any structural or stochastic decision shows up as a
// mismatch.
func fingerprint(g *Generated) uint64 {
	h := fnv.New64a()
	fmt.Fprint(h, g.Topology.String())
	for _, s := range g.Specs {
		fmt.Fprintf(h, "%+v\n", s)
	}
	return h.Sum64()
}

// TestGenerateGolden pins exact generator output for fixed seeds. The
// testbed, the chaos suites, and the recorded experiment numbers all
// assume seed-stable generation: an intentional change to the generator
// or its RNG must update these fingerprints (and expect re-recorded
// experiment baselines); an accidental one must fail here.
func TestGenerateGolden(t *testing.T) {
	golden := []struct {
		seed  uint64
		ops   int
		edges int
		hash  uint64
	}{
		{seed: 1, ops: 11, edges: 13, hash: 0x55e3987ab2a02a4b},
		{seed: 7, ops: 7, edges: 8, hash: 0x7cab7a3c6fed4417},
		{seed: 42, ops: 11, edges: 14, hash: 0x74f422eca871790c},
		{seed: 1234, ops: 10, edges: 14, hash: 0xd6f9439317b8a0f8},
	}
	for _, want := range golden {
		g, err := Generate(Config{Seed: want.seed})
		if err != nil {
			t.Fatalf("seed %d: %v", want.seed, err)
		}
		if got := g.Topology.Len(); got != want.ops {
			t.Errorf("seed %d: %d operators, want %d", want.seed, got, want.ops)
		}
		if got := g.Topology.NumEdges(); got != want.edges {
			t.Errorf("seed %d: %d edges, want %d", want.seed, got, want.edges)
		}
		if got := fingerprint(g); got != want.hash {
			t.Errorf("seed %d: fingerprint %#x, want %#x\n%s",
				want.seed, got, want.hash, g.Topology.String())
		}
	}
}
