package randtopo

import (
	"testing"

	"spinstreams/internal/core"
	"spinstreams/internal/operators"
)

func TestGenerateValid(t *testing.T) {
	for seed := uint64(0); seed < 100; seed++ {
		g, err := Generate(Config{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		topo := g.Topology
		if err := topo.Validate(); err != nil {
			t.Fatalf("seed %d: invalid topology: %v", seed, err)
		}
		if topo.Len() < 2 || topo.Len() > 20 {
			t.Fatalf("seed %d: %d vertices, want [2, 20]", seed, topo.Len())
		}
		if len(g.Specs) != topo.Len() {
			t.Fatalf("seed %d: %d specs for %d vertices", seed, len(g.Specs), topo.Len())
		}
		if topo.Source() != 0 {
			t.Fatalf("seed %d: source is %d, want 0", seed, topo.Source())
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(Config{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{Seed: 77})
	if err != nil {
		t.Fatal(err)
	}
	if a.Topology.String() != b.Topology.String() {
		t.Fatal("same seed produced different topologies")
	}
}

func TestGenerateEdgeBounds(t *testing.T) {
	for seed := uint64(100); seed < 160; seed++ {
		g, err := Generate(Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		v := g.Topology.Len()
		e := g.Topology.NumEdges()
		if e < v-1 {
			t.Fatalf("seed %d: %d edges for %d vertices, want >= v-1", seed, e, v)
		}
		if e > v*(v-1)/2 {
			t.Fatalf("seed %d: %d edges exceed the DAG maximum", seed, e)
		}
	}
}

func TestGenerateSizedBounds(t *testing.T) {
	if _, err := GenerateSized(Config{Seed: 1}, 5, 11); err == nil {
		t.Error("too many edges accepted")
	}
	if _, err := GenerateSized(Config{Seed: 1}, 5, 3); err == nil {
		t.Error("too few edges accepted")
	}
	g, err := GenerateSized(Config{Seed: 1}, 8, 9)
	if err != nil {
		t.Fatal(err)
	}
	if g.Topology.Len() != 8 {
		t.Fatalf("vertices = %d, want 8", g.Topology.Len())
	}
	if g.Topology.NumEdges() < 9 {
		t.Fatalf("edges = %d, want >= 9", g.Topology.NumEdges())
	}
}

func TestJoinPlacementConstraint(t *testing.T) {
	// Band-joins may only sit on vertices with >= 2 input edges.
	for seed := uint64(0); seed < 200; seed++ {
		g, err := Generate(Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.Topology.Len(); i++ {
			if g.Specs[i].Impl == "bandjoin" && len(g.Topology.In(core.OpID(i))) < 2 {
				t.Fatalf("seed %d: bandjoin on vertex %d with %d inputs",
					seed, i, len(g.Topology.In(core.OpID(i))))
			}
		}
	}
}

func TestSpecsAreBuildable(t *testing.T) {
	g, err := Generate(Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i, spec := range g.Specs {
		if spec.Impl == "source" {
			continue
		}
		op, err := operators.Build(spec)
		if err != nil {
			t.Errorf("vertex %d: %v", i, err)
			continue
		}
		// The topology's static profile must agree with the operator's.
		meta := op.Meta()
		tOp := g.Topology.Op(core.OpID(i))
		if meta.Kind != tOp.Kind {
			t.Errorf("vertex %d: kind mismatch %v vs %v", i, meta.Kind, tOp.Kind)
		}
		if meta.InputSelectivity != tOp.InputSelectivity {
			t.Errorf("vertex %d: input selectivity mismatch", i)
		}
	}
}

func TestPartitionedOperatorsHaveKeys(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		g, err := Generate(Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < g.Topology.Len(); i++ {
			op := g.Topology.Op(core.OpID(i))
			if op.Kind == core.KindPartitionedStateful {
				if op.Keys == nil {
					t.Fatalf("seed %d vertex %d: partitioned-stateful without keys", seed, i)
				}
				if err := op.Keys.Validate(); err != nil {
					t.Fatalf("seed %d vertex %d: %v", seed, i, err)
				}
			}
		}
	}
}

func TestSourceFasterThanFastestOperator(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		g, err := Generate(Config{Seed: seed, SourceFactor: 1.33})
		if err != nil {
			t.Fatal(err)
		}
		srcRate := g.Topology.Op(0).Rate()
		fastest := 0.0
		for i := 1; i < g.Topology.Len(); i++ {
			if r := g.Topology.Op(core.OpID(i)).Rate(); r > fastest {
				fastest = r
			}
		}
		if srcRate < fastest {
			t.Fatalf("seed %d: source rate %v below fastest operator %v", seed, srcRate, fastest)
		}
	}
}

func TestEveryGeneratedTopologyIsAnalyzable(t *testing.T) {
	bed, err := Testbed(Config{Seed: 42}, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(bed) != 50 {
		t.Fatalf("testbed size = %d, want 50", len(bed))
	}
	bottlenecked := 0
	for i, g := range bed {
		a, err := core.SteadyState(g.Topology)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if a.Throughput() <= 0 {
			t.Fatalf("entry %d: throughput %v", i, a.Throughput())
		}
		if a.Bottlenecked() {
			bottlenecked++
		}
	}
	// With the source 33% faster than the fastest operator, every topology
	// should experience backpressure somewhere.
	if bottlenecked < len(bed)*9/10 {
		t.Errorf("only %d/%d topologies bottlenecked; setup should force backpressure", bottlenecked, len(bed))
	}
}

func TestTestbedEntriesDiffer(t *testing.T) {
	bed, err := Testbed(Config{Seed: 7}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(bed); i++ {
		if bed[i].Topology.String() == bed[0].Topology.String() {
			t.Fatalf("entries 0 and %d identical", i)
		}
	}
}
