// Package randtopo implements Algorithm 5 of the paper: generation of the
// random rooted-acyclic topologies the evaluation testbed is made of.
//
// A generated topology numbers its vertices in a topological order with the
// source first, connects them with V-1 ordered random edges plus extras up
// to E = (V-1)*beta (beta in [1, 1.2] yields the loosely-coupled sparse
// graphs typical of streaming applications), repairs any orphan vertex with
// an edge from the source, assigns real-world operators to vertices under
// placement constraints (band-joins only on vertices with at least two
// input edges), and draws the routing probabilities of multi-output
// vertices from randomly-skewed ZipF laws.
package randtopo

import (
	"fmt"
	"math"

	"spinstreams/internal/core"
	"spinstreams/internal/operators"
	"spinstreams/internal/stats"
)

// Config tunes the generator. The zero value reproduces the paper's
// setup (scaled to simulation-friendly service times).
type Config struct {
	// Seed drives all randomness; same seed, same topology.
	Seed uint64
	// MinOps and MaxOps bound the vertex count (paper: [2, 20]).
	MinOps, MaxOps int
	// BetaMin and BetaMax bound the connecting factor (paper: [1, 1.2]).
	BetaMin, BetaMax float64
	// ServiceTimeMin and ServiceTimeMax bound the per-operator profiled
	// service times in seconds, drawn log-uniformly. The paper's operators
	// range from hundreds of microseconds to hundreds of milliseconds;
	// the defaults scale that down to keep live experiments short.
	ServiceTimeMin, ServiceTimeMax float64
	// SourceFactor sets the source service rate to SourceFactor times the
	// rate of the fastest non-source operator. The paper uses 1.33 for
	// the bottleneck-elimination experiments ("33% higher than the
	// fastest operator") so every topology starts bottlenecked.
	SourceFactor float64
	// ZipfExpMin and ZipfExpMax bound the scaling exponent of the edge
	// probability distributions (paper: alpha > 1, random).
	ZipfExpMin, ZipfExpMax float64
	// KeySkewMin and KeySkewMax bound the ZipF exponent of the key
	// frequency distributions of partitioned-stateful operators. The
	// defaults are mild: the paper's bottleneck-elimination experiment
	// parallelizes partitioned-stateful operators successfully on 43/50
	// topologies, which requires key domains that usually admit an even
	// split.
	KeySkewMin, KeySkewMax float64
	// StatefulFraction is the probability that a vertex hosts a
	// monolithic stateful (non-replicable) operator; the paper's testbed
	// leaves most topologies fully parallelizable.
	StatefulFraction float64
	// MaxKeys bounds the key-domain size of partitioned-stateful
	// operators (drawn uniformly in [8, MaxKeys]).
	MaxKeys int
	// MaxOutDegree, when > 0, caps the out-degree of non-source vertices
	// during the edge top-up phase. The source is exempt: phase 1 and the
	// orphan repair may route any vertex from it, so its fan-out must stay
	// unbounded for single-source reachability. When the cap makes the
	// requested edge count unreachable, the generator settles for the
	// achievable maximum.
	MaxOutDegree int
}

// validate rejects configurations whose float fields are NaN or infinite.
// withDefaults replaces non-positive values but compares with `<=`, which
// NaN fails both ways — without this gate a NaN ServiceTimeMin would flow
// straight into every generated operator.
func (c Config) validate() error {
	fields := []struct {
		name string
		v    float64
	}{
		{"BetaMin", c.BetaMin}, {"BetaMax", c.BetaMax},
		{"ServiceTimeMin", c.ServiceTimeMin}, {"ServiceTimeMax", c.ServiceTimeMax},
		{"SourceFactor", c.SourceFactor},
		{"ZipfExpMin", c.ZipfExpMin}, {"ZipfExpMax", c.ZipfExpMax},
		{"KeySkewMin", c.KeySkewMin}, {"KeySkewMax", c.KeySkewMax},
		{"StatefulFraction", c.StatefulFraction},
	}
	for _, f := range fields {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("randtopo: config field %s is %v, must be finite", f.name, f.v)
		}
	}
	if c.StatefulFraction > 1 {
		return fmt.Errorf("randtopo: config field StatefulFraction is %v, must be <= 1", c.StatefulFraction)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.MinOps <= 0 {
		c.MinOps = 2
	}
	if c.MaxOps <= 0 {
		c.MaxOps = 20
	}
	if c.MaxOps < c.MinOps {
		c.MaxOps = c.MinOps
	}
	if c.BetaMin <= 0 {
		c.BetaMin = 1.0
	}
	if c.BetaMax < c.BetaMin {
		c.BetaMax = 1.2
	}
	if c.ServiceTimeMin <= 0 {
		c.ServiceTimeMin = 200e-6
	}
	if c.ServiceTimeMax < c.ServiceTimeMin {
		c.ServiceTimeMax = 20e-3
	}
	if c.SourceFactor <= 0 {
		c.SourceFactor = 1.33
	}
	if c.ZipfExpMin <= 1 {
		c.ZipfExpMin = 1.1
	}
	if c.ZipfExpMax < c.ZipfExpMin {
		c.ZipfExpMax = 2.5
	}
	if c.MaxKeys <= 8 {
		c.MaxKeys = 1024
	}
	if c.KeySkewMin <= 0 {
		c.KeySkewMin = 0.05
	}
	if c.KeySkewMax < c.KeySkewMin {
		c.KeySkewMax = 0.5
	}
	if c.StatefulFraction <= 0 {
		c.StatefulFraction = 0.04
	}
	return c
}

// Generated couples a topology with the operator specs realizing each
// vertex, so the same testbed entry can be analyzed (core), simulated
// (qsim) and executed (runtime).
type Generated struct {
	// Topology is the annotated graph the cost models consume.
	Topology *core.Topology
	// Specs holds, per vertex ID, the operator implementation selection;
	// the source vertex has Impl "source".
	Specs []operators.Spec
	// Seed reproduces this exact instance.
	Seed uint64
}

// statelessImpls are catalog operators the generator may place anywhere.
var statelessImpls = []string{
	"identity", "scale", "affine", "magnitude", "normalize",
	"threshold-filter", "range-filter", "sampler", "splitter",
	"projection", "keyby",
}

// partitionedImpls are keyed-state operators.
var partitionedImpls = []string{"wma", "wsum", "wmax", "wmin", "wquantile", "dedup"}

// statefulImpls are monolithic-state operators (non-replicable).
var statefulImpls = []string{"skyline", "topk"}

// Generate builds one random topology per Algorithm 5.
func Generate(cfg Config) (*Generated, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rng := stats.NewRNG(cfg.Seed)

	v := rng.IntBetween(cfg.MinOps, cfg.MaxOps)
	beta := rng.FloatBetween(cfg.BetaMin, cfg.BetaMax)
	e := int(float64(v-1) * beta)
	return generate(cfg, rng, v, e)
}

// GenerateSized builds a topology with exactly v vertices and an expected
// e edges, validating the bounds exactly as Algorithm 5 does.
func GenerateSized(cfg Config, v, e int) (*Generated, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	if e > v*(v-1)/2 {
		return nil, fmt.Errorf("randtopo: too many edges (%d for %d vertices)", e, v)
	}
	if e < v-1 {
		return nil, fmt.Errorf("randtopo: too few edges (%d for %d vertices)", e, v)
	}
	return generate(cfg, stats.NewRNG(cfg.Seed), v, e)
}

type edgeKey struct{ u, v int }

func generate(cfg Config, rng *stats.RNG, v, e int) (*Generated, error) {
	if v < 2 {
		v = 2
	}
	edges := make(map[edgeKey]bool, e)
	// Phase 1: a random edge out of every non-terminal vertex, respecting
	// the vertex numbering as topological order.
	for i := 0; i <= v-2; i++ {
		edges[edgeKey{i, rng.IntBetween(i+1, v-1)}] = true
	}
	// Phase 2: top up to e edges (the repair phase below may add more).
	// With an out-degree cap, the achievable edge count shrinks to what
	// the capped vertices can still emit; the loop bound follows it so a
	// tight cap degrades to the sparsest valid graph instead of spinning.
	outCount := make([]int, v)
	for k := range edges {
		outCount[k.u]++
	}
	capFor := func(u int) int {
		targets := v - 1 - u
		if cfg.MaxOutDegree > 0 && u != 0 && cfg.MaxOutDegree < targets {
			return cfg.MaxOutDegree
		}
		return targets
	}
	maxEdges := 0
	for u := 0; u < v; u++ {
		maxEdges += capFor(u)
	}
	for len(edges) < e && len(edges) < maxEdges {
		u := rng.Intn(v)
		w := rng.Intn(v)
		if u >= w || edges[edgeKey{u, w}] || outCount[u] >= capFor(u) {
			continue
		}
		edges[edgeKey{u, w}] = true
		outCount[u]++
	}
	// Phase 3: single-source repair — any vertex with no input edge gets
	// one from the source.
	hasInput := make([]bool, v)
	for k := range edges {
		hasInput[k.v] = true
	}
	for i := 1; i < v; i++ {
		if !hasInput[i] {
			edges[edgeKey{0, i}] = true
		}
	}

	inDeg := make([]int, v)
	outDeg := make([]int, v)
	for k := range edges {
		inDeg[k.v]++
		outDeg[k.u]++
	}

	// Phase 4: operator assignment under placement constraints.
	gen := &Generated{Topology: core.NewTopology(), Specs: make([]operators.Spec, v), Seed: cfg.Seed}
	serviceTimes := make([]float64, v)
	fastest := 0.0 // highest non-source rate
	for i := 1; i < v; i++ {
		serviceTimes[i] = logUniform(rng, cfg.ServiceTimeMin, cfg.ServiceTimeMax)
		if r := 1 / serviceTimes[i]; r > fastest {
			fastest = r
		}
	}
	serviceTimes[0] = 1 / (cfg.SourceFactor * fastest)

	for i := 0; i < v; i++ {
		var spec operators.Spec
		var op core.Operator
		switch {
		case i == 0:
			spec = operators.Spec{Impl: "source", Seed: rng.Uint64()}
			op = core.Operator{Name: "source", Kind: core.KindSource, ServiceTime: serviceTimes[0], Impl: "source"}
		default:
			spec = pickSpec(cfg, rng, inDeg[i])
			meta := mustMeta(spec)
			name := fmt.Sprintf("op%02d-%s", i, spec.Impl)
			op = core.Operator{
				Name:              name,
				Kind:              meta.Kind,
				ServiceTime:       serviceTimes[i],
				InputSelectivity:  meta.InputSelectivity,
				OutputSelectivity: meta.OutputSelectivity,
				Impl:              spec.Impl,
			}
			if meta.Kind == core.KindPartitionedStateful {
				op.Keys = &core.KeyDistribution{
					Freq: stats.ZipfWeights(spec.NumKeys, rng.FloatBetween(cfg.KeySkewMin, cfg.KeySkewMax)),
				}
			}
		}
		if _, err := gen.Topology.AddOperator(op); err != nil {
			return nil, fmt.Errorf("randtopo: %w", err)
		}
		gen.Specs[i] = spec
	}

	// Routing probabilities: a shuffled ZipF law per multi-output vertex.
	outs := make([][]int, v)
	for k := range edges {
		outs[k.u] = append(outs[k.u], k.v)
	}
	for u, targets := range outs {
		if len(targets) == 0 {
			continue
		}
		sortInts(targets)
		probs := stats.ZipfWeights(len(targets), rng.FloatBetween(cfg.ZipfExpMin, cfg.ZipfExpMax))
		shuffle(rng, probs)
		for i, w := range targets {
			if err := gen.Topology.Connect(core.OpID(u), core.OpID(w), probs[i]); err != nil {
				return nil, fmt.Errorf("randtopo: %w", err)
			}
		}
	}
	if err := gen.Topology.Validate(); err != nil {
		return nil, fmt.Errorf("randtopo: generated invalid topology: %w", err)
	}
	return gen, nil
}

// pickSpec selects a random operator implementation respecting placement
// constraints: band-joins need at least two input edges; the stateless /
// partitioned / stateful mix approximates the paper's 20-operator pool.
func pickSpec(cfg Config, rng *stats.RNG, inDeg int) operators.Spec {
	winLens := []int{1000, 5000, 10000}
	slides := []int{1, 10, 50}
	spec := operators.Spec{
		WindowLen: winLens[rng.Intn(len(winLens))],
		Slide:     slides[rng.Intn(len(slides))],
		Seed:      rng.Uint64(),
		NumKeys:   rng.IntBetween(128, cfg.MaxKeys),
		K:         rng.IntBetween(2, 8),
	}
	roll := rng.Float64()
	statefulCut := 1 - cfg.StatefulFraction
	joinCut := 1 - cfg.StatefulFraction/2
	switch {
	case inDeg >= 2 && roll >= joinCut:
		spec.Impl = "bandjoin"
		spec.Param = 0.001 // keep join output selectivity near 1
		spec.WindowLen = 500
	case roll < 0.60:
		spec.Impl = statelessImpls[rng.Intn(len(statelessImpls))]
		switch spec.Impl {
		case "threshold-filter":
			spec.Param = rng.FloatBetween(0.2, 0.8)
		case "range-filter":
			spec.Param = rng.FloatBetween(0.3, 0.9)
		case "sampler":
			spec.Param = rng.FloatBetween(0.2, 0.9)
		case "scale", "affine":
			spec.Param = rng.FloatBetween(0.5, 3)
		case "splitter":
			spec.K = rng.IntBetween(2, 4)
		}
	case roll < statefulCut:
		spec.Impl = partitionedImpls[rng.Intn(len(partitionedImpls))]
		if spec.Impl == "dedup" {
			spec.Param = rng.FloatBetween(0.4, 0.9)
		}
		if spec.Impl == "wquantile" {
			spec.Param = rng.FloatBetween(0.5, 0.99)
		}
	default:
		spec.Impl = statefulImpls[rng.Intn(len(statefulImpls))]
	}
	return spec
}

func mustMeta(spec operators.Spec) operators.Meta {
	op, err := operators.Build(spec)
	if err != nil {
		panic(fmt.Sprintf("randtopo: %v", err))
	}
	return op.Meta()
}

// Testbed generates n topologies from consecutive sub-seeds of seed,
// mirroring the paper's 50-topology testbed.
func Testbed(cfg Config, n int) ([]*Generated, error) {
	rng := stats.NewRNG(cfg.Seed)
	out := make([]*Generated, 0, n)
	for i := 0; i < n; i++ {
		sub := cfg
		sub.Seed = rng.Uint64()
		g, err := Generate(sub)
		if err != nil {
			return nil, fmt.Errorf("testbed entry %d: %w", i, err)
		}
		out = append(out, g)
	}
	return out, nil
}

// logUniform draws uniformly in log space between lo and hi, producing the
// heavy spread of service times the paper's heterogeneous operators show.
func logUniform(rng *stats.RNG, lo, hi float64) float64 {
	if lo >= hi {
		return lo
	}
	return lo * math.Pow(hi/lo, rng.Float64())
}

func sortInts(xs []int) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func shuffle(rng *stats.RNG, xs []float64) {
	for i := len(xs) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}
