package randtopo

import (
	"math"
	"os"
	"strconv"
	"testing"

	"spinstreams/internal/lint"
)

// TestGeneratedTopologiesLintClean is the generator's contract with the
// vet layer: every seed must produce a topology that passes lint with
// zero errors (warnings are allowed — the testbed intentionally starts
// bottlenecked, so SS1102 may fire, and under the declared burst
// envelope SS3002 may warn about ring sizing). The run includes the
// SS3xxx plan-level checks, both through the full lint entry point and
// through the optimizer's VerifyPlan post-pass, so every seed proves
// the bounded-queue interpretation terminates and finds no deadlock.
// SS_LINT_SEEDS scales the property run (CI uses 500).
func TestGeneratedTopologiesLintClean(t *testing.T) {
	seeds := uint64(200)
	if s := os.Getenv("SS_LINT_SEEDS"); s != "" {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("SS_LINT_SEEDS: %v", err)
		}
		seeds = n
	}
	cfg := lint.Config{BurstFactor: 2, BurstSeconds: 1}
	for seed := uint64(0); seed < seeds; seed++ {
		g, err := Generate(Config{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep := lint.Run(g.Topology, cfg)
		for _, d := range rep.Diagnostics {
			if d.Severity == lint.SeverityError {
				t.Errorf("seed %d: %s", seed, d)
			}
		}
		for _, d := range lint.VerifyPlan(g.Topology, cfg).Diagnostics {
			if d.Severity == lint.SeverityError {
				t.Errorf("seed %d: verify: %s", seed, d)
			}
		}
	}
}

func TestConfigValidateRejectsNaN(t *testing.T) {
	cases := []Config{
		{ServiceTimeMin: math.NaN()},
		{ServiceTimeMax: math.Inf(1)},
		{BetaMin: math.NaN()},
		{SourceFactor: math.Inf(-1)},
		{ZipfExpMax: math.NaN()},
		{KeySkewMin: math.NaN()},
		{StatefulFraction: 1.5},
	}
	for i, cfg := range cases {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: Generate accepted invalid config %+v", i, cfg)
		}
		if _, err := GenerateSized(cfg, 5, 5); err == nil {
			t.Errorf("case %d: GenerateSized accepted invalid config %+v", i, cfg)
		}
	}
}
