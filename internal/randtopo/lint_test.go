package randtopo

import (
	"math"
	"testing"

	"spinstreams/internal/lint"
)

// TestGeneratedTopologiesLintClean is the generator's contract with the
// vet layer: every seed must produce a topology that passes lint with
// zero errors (warnings are allowed — the testbed intentionally starts
// bottlenecked, so SS1102 may fire).
func TestGeneratedTopologiesLintClean(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		g, err := Generate(Config{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep := lint.Run(g.Topology, lint.Config{})
		for _, d := range rep.Diagnostics {
			if d.Severity == lint.SeverityError {
				t.Errorf("seed %d: %s", seed, d)
			}
		}
	}
}

func TestConfigValidateRejectsNaN(t *testing.T) {
	cases := []Config{
		{ServiceTimeMin: math.NaN()},
		{ServiceTimeMax: math.Inf(1)},
		{BetaMin: math.NaN()},
		{SourceFactor: math.Inf(-1)},
		{ZipfExpMax: math.NaN()},
		{KeySkewMin: math.NaN()},
		{StatefulFraction: 1.5},
	}
	for i, cfg := range cases {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: Generate accepted invalid config %+v", i, cfg)
		}
		if _, err := GenerateSized(cfg, 5, 5); err == nil {
			t.Errorf("case %d: GenerateSized accepted invalid config %+v", i, cfg)
		}
	}
}
