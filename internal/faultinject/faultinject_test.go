package faultinject

import (
	"bytes"
	"errors"
	"net"
	"reflect"
	"testing"
	"time"
)

// schedule runs n tuples through one station's fault stream and records
// which tuple indices drew a panic or a slowdown.
func schedule(t *testing.T, seed uint64, station, n int) (panics, slows []int) {
	t.Helper()
	var slept int
	inj := New(Config{
		Seed:         seed,
		PanicProb:    0.05,
		SlowdownProb: 0.05,
		Sleep:        func(time.Duration) { slept++ },
	})
	sf := inj.Station(station)
	for i := 0; i < n; i++ {
		func() {
			defer func() {
				if r := recover(); r != nil {
					var p *Panic
					if err, ok := r.(error); !ok || !errors.As(err, &p) {
						t.Fatalf("unexpected panic value %v", r)
					}
					panics = append(panics, i)
				}
			}()
			before := slept
			sf.OnProcess()
			if slept > before {
				slows = append(slows, i)
			}
		}()
	}
	return panics, slows
}

func TestScheduleDeterministic(t *testing.T) {
	p1, s1 := schedule(t, 42, 3, 5000)
	p2, s2 := schedule(t, 42, 3, 5000)
	if !reflect.DeepEqual(p1, p2) || !reflect.DeepEqual(s1, s2) {
		t.Fatal("same seed produced different fault schedules")
	}
	if len(p1) == 0 || len(s1) == 0 {
		t.Fatalf("schedule is dead: %d panics, %d slowdowns", len(p1), len(s1))
	}
	p3, _ := schedule(t, 43, 3, 5000)
	if reflect.DeepEqual(p1, p3) {
		t.Fatal("different seeds produced identical schedules")
	}
	// Stations get independent streams from the same seed.
	p4, _ := schedule(t, 42, 4, 5000)
	if reflect.DeepEqual(p1, p4) {
		t.Fatal("different stations produced identical schedules")
	}
}

func TestStationStreamIsSingleton(t *testing.T) {
	inj := New(Config{Seed: 1, PanicProb: 0.5})
	if inj.Station(7) != inj.Station(7) {
		t.Fatal("Station(7) returned two different streams")
	}
}

func TestMaxPerStationCapsProcessFaults(t *testing.T) {
	inj := New(Config{
		Seed:          9,
		PanicProb:     0.5,
		SlowdownProb:  0.5,
		MaxPerStation: 3,
		Sleep:         func(time.Duration) {},
	})
	sf := inj.Station(0)
	for i := 0; i < 10000; i++ {
		func() {
			defer func() { recover() }()
			sf.OnProcess()
		}()
	}
	c := inj.Counts()
	if got := c.Panics + c.Slowdowns; got != 3 {
		t.Fatalf("fired %d process faults, cap is 3", got)
	}
}

func TestOnSendDelays(t *testing.T) {
	var total time.Duration
	inj := New(Config{
		Seed:          5,
		SendDelayProb: 0.2,
		SendDelayFor:  time.Millisecond,
		Sleep:         func(d time.Duration) { total += d },
	})
	sf := inj.Station(2)
	for i := 0; i < 1000; i++ {
		sf.OnSend()
	}
	c := inj.Counts()
	if c.SendDelays == 0 {
		t.Fatal("no send delays fired at prob 0.2 over 1000 sends")
	}
	if want := time.Duration(c.SendDelays) * time.Millisecond; total != want {
		t.Fatalf("slept %v, want %v", total, want)
	}
}

// stubConn is a minimal in-memory net.Conn for WrapConn tests.
type stubConn struct {
	net.Conn
	buf    bytes.Buffer
	closed bool
}

func (c *stubConn) Write(p []byte) (int, error) {
	if c.closed {
		return 0, errors.New("stub: closed")
	}
	return c.buf.Write(p)
}

func (c *stubConn) Close() error { c.closed = true; return nil }

func TestWrapConnResets(t *testing.T) {
	inj := New(Config{Seed: 1, ResetEveryWrites: 3, PartialWriteBytes: 2})
	under := &stubConn{}
	conn := inj.WrapConn(17, under)
	payload := []byte("abcdef")
	for i := 1; i <= 2; i++ {
		if n, err := conn.Write(payload); err != nil || n != len(payload) {
			t.Fatalf("write %d: n=%d err=%v", i, n, err)
		}
	}
	n, err := conn.Write(payload)
	if err == nil {
		t.Fatal("third write did not reset")
	}
	if n != 2 {
		t.Fatalf("partial write leaked %d bytes, want 2", n)
	}
	if !under.closed {
		t.Fatal("underlying conn not closed on reset")
	}
	if got := under.buf.String(); got != "abcdefabcdefab" {
		t.Fatalf("stream carries %q", got)
	}
	if inj.Counts().ConnResets != 1 {
		t.Fatalf("ConnResets = %d, want 1", inj.Counts().ConnResets)
	}
}

func TestWrapConnCountsAcrossReconnects(t *testing.T) {
	inj := New(Config{Seed: 1, ResetEveryWrites: 4})
	// First connection takes 2 writes, then "reconnects": the counter
	// must carry over so the 4th write overall still resets.
	c1 := inj.WrapConn(3, &stubConn{})
	for i := 0; i < 2; i++ {
		if _, err := c1.Write([]byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	c2 := inj.WrapConn(3, &stubConn{})
	if _, err := c2.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Write([]byte("x")); err == nil {
		t.Fatal("4th write across reconnects did not reset")
	}
	// A different edge has its own counter.
	other := inj.WrapConn(4, &stubConn{})
	if _, err := other.Write([]byte("x")); err != nil {
		t.Fatalf("fresh edge inherited another edge's counter: %v", err)
	}
}

func TestWrapConnPartialNeverDeliversWholeBuffer(t *testing.T) {
	inj := New(Config{Seed: 1, ResetEveryWrites: 1, PartialWriteBytes: 100})
	under := &stubConn{}
	conn := inj.WrapConn(0, under)
	if n, _ := conn.Write([]byte("abc")); n >= 3 {
		t.Fatalf("partial write delivered the whole %d-byte buffer", n)
	}
}

func TestWrapConnDisabledIsPassThrough(t *testing.T) {
	inj := New(Config{Seed: 1})
	under := &stubConn{}
	if inj.WrapConn(0, under) != net.Conn(under) {
		t.Fatal("WrapConn wrapped despite ResetEveryWrites == 0")
	}
}
