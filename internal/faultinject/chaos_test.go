package faultinject_test

import (
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spinstreams/internal/faultinject"
	"spinstreams/internal/mailbox"
)

// chaosSchedules returns how many randomized fault schedules the chaos
// tests run per case. SS_CHAOS_SCHEDULES overrides the default of 3, so
// CI can run a single-schedule smoke in the fast job and the full sweep
// under -race.
func chaosSchedules(t *testing.T) int {
	t.Helper()
	if s := os.Getenv("SS_CHAOS_SCHEDULES"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad SS_CHAOS_SCHEDULES=%q", s)
		}
		return n
	}
	return 3
}

// TestChaosMailboxConservation hammers one mailbox with multiple
// shedding producers and one consumer, both slowed by injected faults,
// and asserts the dataplane's conservation invariant: every produced
// tuple is admitted, shed, or left queued (then drained) — nothing
// vanishes — and after the drain every capacity credit is back.
func TestChaosMailboxConservation(t *testing.T) {
	const (
		producers   = 4
		perProducer = 3000
		capacity    = 16
	)
	for sched := 0; sched < chaosSchedules(t); sched++ {
		for _, mode := range []mailbox.Mode{mailbox.PerTuple, mailbox.Batched} {
			name := fmt.Sprintf("seed%d/%v", sched, mode)
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				inj := faultinject.New(faultinject.Config{
					Seed:          uint64(1000 + sched),
					SlowdownProb:  0.01,
					SlowdownFor:   50 * time.Microsecond,
					SendDelayProb: 0.01,
					SendDelayFor:  50 * time.Microsecond,
				})
				m, err := mailbox.New[int](mailbox.Config{
					Capacity: capacity,
					Mode:     mode,
					Batch:    8,
					Linger:   200 * time.Microsecond,
				})
				if err != nil {
					t.Fatal(err)
				}
				done := make(chan struct{})
				var sent, shed, consumed atomic.Uint64

				var consumers sync.WaitGroup
				consumers.Add(1)
				go func() {
					defer consumers.Done()
					cf := inj.Station(0)
					for {
						if _, ok := m.Recv(done); !ok {
							return
						}
						cf.OnProcess()
						consumed.Add(1)
					}
				}()

				var wg sync.WaitGroup
				for p := 0; p < producers; p++ {
					wg.Add(1)
					go func(p int) {
						defer wg.Done()
						pf := inj.Station(1 + p)
						snd := m.NewSender(100 * time.Microsecond)
						for i := 0; i < perProducer; i++ {
							pf.OnSend()
							switch snd.Send(i, done) {
							case mailbox.Sent:
								sent.Add(1)
							case mailbox.Dropped:
								shed.Add(1)
							default:
								t.Error("send aborted before shutdown")
								return
							}
						}
						snd.Flush()
					}(p)
				}
				wg.Wait()
				close(done)
				consumers.Wait()
				drained := m.Drain()

				produced := uint64(producers * perProducer)
				got := sent.Load() + shed.Load()
				if got != produced {
					t.Fatalf("admission accounting: sent+shed = %d, produced %d", got, produced)
				}
				if c, d := consumed.Load(), uint64(drained); sent.Load() != c+d {
					t.Fatalf("conservation: sent %d != consumed %d + drained %d", sent.Load(), c, d)
				}
				if q := m.Queued(); q != 0 {
					t.Fatalf("credits not restored after drain: Queued() = %d", q)
				}
				c := inj.Counts()
				if c.Slowdowns == 0 && c.SendDelays == 0 {
					t.Fatal("fault schedule never fired")
				}
			})
		}
	}
}

// TestChaosScheduleParityAcrossModes verifies the injector's sequences
// are a pure function of (seed, station, tuple index): running the same
// schedule against both transports fires the same per-station faults.
func TestChaosScheduleParityAcrossModes(t *testing.T) {
	run := func(mode mailbox.Mode) faultinject.Counts {
		inj := faultinject.New(faultinject.Config{
			Seed:          77,
			SlowdownProb:  0.05,
			SlowdownFor:   time.Microsecond,
			SendDelayProb: 0.05,
			SendDelayFor:  time.Microsecond,
			Sleep:         func(time.Duration) {},
		})
		m, err := mailbox.New[int](mailbox.Config{Capacity: 8, Mode: mode})
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			cf := inj.Station(0)
			for {
				if _, ok := m.Recv(done); !ok {
					return
				}
				cf.OnProcess()
			}
		}()
		snd := m.NewSender(0)
		pf := inj.Station(1)
		for i := 0; i < 2000; i++ {
			pf.OnSend()
			if snd.Send(i, done) != mailbox.Sent {
				t.Fatal("send failed")
			}
		}
		snd.Flush()
		// Let the consumer finish everything so OnProcess sees all 2000.
		for m.Queued() > 0 {
			time.Sleep(time.Millisecond)
		}
		close(done)
		wg.Wait()
		if n := m.Drain(); n < 0 {
			t.Fatalf("Drain = %d", n)
		}
		return inj.Counts()
	}
	perTuple := run(mailbox.PerTuple)
	batched := run(mailbox.Batched)
	if perTuple != batched {
		t.Fatalf("fault schedule differs across transports: %+v vs %+v", perTuple, batched)
	}
	if perTuple.Slowdowns == 0 || perTuple.SendDelays == 0 {
		t.Fatalf("schedule never fired: %+v", perTuple)
	}
}
