// Package faultinject is a deterministic fault-injection layer for the
// SpinStreams runtime. An Injector is built from a seed and a set of
// probabilities; every fault it produces — operator slowdowns, transient
// operator panics, tuple-send delays, and (for the distributed engine)
// connection resets with optional partial writes — is drawn from
// per-station (or per-edge) RNG streams, so the schedule depends only on
// the seed and each station's own tuple sequence, never on goroutine
// interleaving. Two runs with the same seed and the same per-station
// tuple order see exactly the same faults, which is what makes the chaos
// suite's conservation invariants checkable.
//
// The runtime consumes an Injector through three hooks:
//
//   - StationFaults.OnProcess, called once per tuple before the operator
//     executes (may sleep, may panic with a *Panic value);
//   - StationFaults.OnSend, called once per downstream send (may sleep);
//   - Injector.WrapConn, which wraps a dialed net.Conn so that every
//     Nth write is severed, optionally after leaking a partial-frame
//     prefix. Write counts persist per edge across reconnects, so a
//     redialed connection keeps marching toward its next reset.
package faultinject

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"spinstreams/internal/stats"
)

// Config selects the fault schedule. The zero value injects nothing.
type Config struct {
	// Seed derives every per-station and per-edge RNG stream.
	Seed uint64

	// SlowdownProb is the per-tuple probability that the operator pauses
	// for SlowdownFor before processing (models a stalling operator).
	SlowdownProb float64
	// SlowdownFor is the injected stall length (default 200µs).
	SlowdownFor time.Duration

	// PanicProb is the per-tuple probability that the operator panics
	// with a *Panic value before processing the tuple.
	PanicProb float64

	// SendDelayProb is the per-send probability that the sender pauses
	// for SendDelayFor before admitting the tuple downstream.
	SendDelayProb float64
	// SendDelayFor is the injected send delay (default 100µs).
	SendDelayFor time.Duration

	// MaxPerStation caps slowdowns+panics injected into any one station
	// (0 = unlimited). Useful to front-load faults into the start of a
	// run without turning the whole schedule off.
	MaxPerStation int

	// ResetEveryWrites severs a wrapped connection on every Nth write
	// (0 = never). The write counter is per edge and survives
	// reconnects. Gob handshakes and frames each count as writes.
	ResetEveryWrites int
	// PartialWriteBytes, when > 0, leaks up to that many bytes of the
	// severed write before closing, exercising partial-frame handling on
	// the receiver (gob discards incomplete messages atomically).
	PartialWriteBytes int

	// Sleep replaces time.Sleep for slowdown/delay faults; tests use it
	// to run against a virtual clock. Nil means time.Sleep.
	Sleep func(time.Duration)
}

// Counts reports how many faults an Injector actually fired, so tests
// can assert the schedule was live.
type Counts struct {
	Slowdowns  uint64
	Panics     uint64
	SendDelays uint64
	ConnResets uint64
}

// Panic is the value thrown by an injected operator panic. The runtime's
// recovery path treats it like any other operator panic; tests match on
// the type to tell injected faults from real bugs.
type Panic struct {
	Station int
	Tuple   uint64 // 1-based index of the tuple within the station's stream
}

func (p *Panic) Error() string {
	return fmt.Sprintf("faultinject: injected panic at station %d, tuple %d", p.Station, p.Tuple)
}

// Injector owns one run's fault schedule. Build a fresh Injector per run:
// its per-station streams advance as faults are drawn, so reusing one
// across runs would chain their schedules together.
type Injector struct {
	cfg   Config
	sleep func(time.Duration)

	slowdowns  atomic.Uint64
	panics     atomic.Uint64
	sendDelays atomic.Uint64
	connResets atomic.Uint64

	mu       sync.Mutex
	stations map[int]*StationFaults
	edges    map[int]*edgeFaults
}

// New builds an Injector for cfg.
func New(cfg Config) *Injector {
	if cfg.SlowdownFor <= 0 {
		cfg.SlowdownFor = 200 * time.Microsecond
	}
	if cfg.SendDelayFor <= 0 {
		cfg.SendDelayFor = 100 * time.Microsecond
	}
	inj := &Injector{
		cfg:      cfg,
		sleep:    cfg.Sleep,
		stations: make(map[int]*StationFaults),
		edges:    make(map[int]*edgeFaults),
	}
	if inj.sleep == nil {
		inj.sleep = time.Sleep
	}
	return inj
}

// Counts snapshots the number of faults fired so far.
func (inj *Injector) Counts() Counts {
	return Counts{
		Slowdowns:  inj.slowdowns.Load(),
		Panics:     inj.panics.Load(),
		SendDelays: inj.sendDelays.Load(),
		ConnResets: inj.connResets.Load(),
	}
}

// Station returns the fault stream for one station. Calling it twice
// with the same id returns the same stream. The returned StationFaults
// must only be used from the station's own goroutine.
func (inj *Injector) Station(id int) *StationFaults {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if sf, ok := inj.stations[id]; ok {
		return sf
	}
	sf := &StationFaults{
		inj: inj,
		id:  id,
		// Offset the stream so station 0 with seed 0 still gets a
		// distinct, non-degenerate sequence.
		rng: stats.NewRNG(splitmix(inj.cfg.Seed, uint64(id)+0x9e3779b9)),
	}
	inj.stations[id] = sf
	return sf
}

// StationFaults is one station's deterministic fault stream. Not safe
// for concurrent use; the runtime fetches one per station goroutine.
type StationFaults struct {
	inj   *Injector
	id    int
	rng   *stats.RNG
	tuple uint64
	fired int
}

// OnProcess is called once per consumed tuple before the operator runs.
// It may sleep (injected slowdown) or panic with a *Panic (transient
// operator failure). The draw order is fixed — panic first, then
// slowdown — so the schedule is a pure function of (seed, station,
// tuple index).
func (sf *StationFaults) OnProcess() {
	sf.tuple++
	capped := sf.inj.cfg.MaxPerStation > 0 && sf.fired >= sf.inj.cfg.MaxPerStation
	if p := sf.inj.cfg.PanicProb; p > 0 {
		if hit := sf.rng.Float64() < p; hit && !capped {
			sf.fired++
			sf.inj.panics.Add(1)
			panic(&Panic{Station: sf.id, Tuple: sf.tuple})
		}
	}
	if p := sf.inj.cfg.SlowdownProb; p > 0 {
		if hit := sf.rng.Float64() < p; hit && !capped {
			sf.fired++
			sf.inj.slowdowns.Add(1)
			sf.inj.sleep(sf.inj.cfg.SlowdownFor)
		}
	}
}

// OnSend is called once per downstream send from the station goroutine;
// it may sleep to model a slow link or a stalled sender.
func (sf *StationFaults) OnSend() {
	if p := sf.inj.cfg.SendDelayProb; p > 0 && sf.rng.Float64() < p {
		sf.inj.sendDelays.Add(1)
		sf.inj.sleep(sf.inj.cfg.SendDelayFor)
	}
}

// edgeFaults is the persistent write counter for one distributed edge.
// It lives on the Injector, not the conn wrapper, so reconnects keep
// counting toward the next reset.
type edgeFaults struct {
	writes atomic.Uint64
}

// WrapConn wraps a freshly dialed connection for the given edge key. If
// ResetEveryWrites is zero the conn is returned unchanged. Edge keys are
// chosen by the caller (the distributed engine uses from<<16|to).
func (inj *Injector) WrapConn(edge int, conn net.Conn) net.Conn {
	if inj.cfg.ResetEveryWrites <= 0 {
		return conn
	}
	inj.mu.Lock()
	ef, ok := inj.edges[edge]
	if !ok {
		ef = &edgeFaults{}
		inj.edges[edge] = ef
	}
	inj.mu.Unlock()
	return &faultyConn{Conn: conn, inj: inj, ef: ef}
}

// faultyConn severs the underlying connection on every Nth write across
// the edge's lifetime, optionally leaking a partial prefix first.
type faultyConn struct {
	net.Conn
	inj *Injector
	ef  *edgeFaults
}

func (c *faultyConn) Write(p []byte) (int, error) {
	n := c.ef.writes.Add(1)
	every := uint64(c.inj.cfg.ResetEveryWrites)
	if n%every != 0 {
		return c.Conn.Write(p)
	}
	c.inj.connResets.Add(1)
	wrote := 0
	if k := c.inj.cfg.PartialWriteBytes; k > 0 {
		// Never leak the whole buffer: the receiver must see a truncated
		// frame, not a deliverable one, or a write reported as failed
		// would still arrive and the sender's retry would duplicate it.
		if k >= len(p) {
			k = len(p) - 1
		}
		if k > 0 {
			wrote, _ = c.Conn.Write(p[:k])
		}
	}
	c.Conn.Close()
	return wrote, fmt.Errorf("faultinject: injected connection reset after %d writes", n)
}

// splitmix mixes a seed and a stream id into an independent RNG seed
// (splitmix64 finalizer).
func splitmix(seed, stream uint64) uint64 {
	z := seed + stream*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
