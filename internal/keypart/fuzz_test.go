package keypart

import (
	"math"
	"testing"
)

// FuzzGreedyPartition checks the partitioner's invariants on arbitrary
// weight vectors: no panic, every key assigned to a live replica, loads
// consistent, pmax >= the ideal share.
func FuzzGreedyPartition(f *testing.F) {
	f.Add([]byte{10, 20, 30}, uint8(2))
	f.Add([]byte{1}, uint8(8))
	f.Add([]byte{255, 1, 1, 1, 1, 1}, uint8(3))

	f.Fuzz(func(t *testing.T, raw []byte, nRaw uint8) {
		if len(raw) == 0 || len(raw) > 512 {
			return
		}
		freq := make([]float64, len(raw))
		total := 0.0
		for i, b := range raw {
			freq[i] = float64(b) + 1 // strictly positive
			total += freq[i]
		}
		for i := range freq {
			freq[i] /= total
		}
		n := 1 + int(nRaw)%16
		for _, p := range []Partitioner{Greedy{}, ConsistentHash{Seed: 3}} {
			asg, err := p.Partition(freq, n)
			if err != nil {
				t.Fatalf("valid input rejected: %v", err)
			}
			if asg.Replicas < 1 || asg.Replicas > n {
				t.Fatalf("replicas = %d outside [1, %d]", asg.Replicas, n)
			}
			sum := 0.0
			for k, r := range asg.Replica {
				if r < 0 || r >= len(asg.Load) {
					t.Fatalf("key %d -> replica %d out of range", k, r)
				}
				sum += freq[k]
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Fatalf("assigned mass %v != 1", sum)
			}
			if asg.PMax < 1/float64(asg.Replicas)-1e-9 || asg.PMax > 1+1e-9 {
				t.Fatalf("pmax = %v implausible for %d replicas", asg.PMax, asg.Replicas)
			}
		}
	})
}
