// Package keypart implements key-to-replica assignment heuristics for the
// fission of partitioned-stateful operators (Section 3.2 of the paper).
//
// Given the frequency distribution of the partitioning keys and a desired
// replication degree, a partitioner assigns every key to a replica trying to
// keep the most loaded replica as close as possible to an even 1/n share.
// The achieved maximum share (pmax) determines whether the parallelized
// operator is still a bottleneck: it saturates when lambda*pmax > mu.
package keypart

import (
	"fmt"
	"sort"
)

// Assignment is the result of partitioning a key domain over replicas.
type Assignment struct {
	// Replicas is the number of replicas actually used; it may be lower
	// than requested when fewer keys than replicas exist.
	Replicas int
	// PMax is the input fraction received by the most loaded replica.
	PMax float64
	// Replica maps each key index to the replica owning it.
	Replica []int
	// Load is the total input fraction assigned to each replica.
	Load []float64
}

// Partitioner assigns keys (given by their frequency) to n replicas.
type Partitioner interface {
	// Partition distributes len(freq) keys over at most n replicas.
	// Frequencies must be positive; they are treated as weights and need
	// not sum exactly to one.
	Partition(freq []float64, n int) (Assignment, error)
}

func validate(freq []float64, n int) error {
	if n < 1 {
		return fmt.Errorf("keypart: %d replicas, need >= 1", n)
	}
	if len(freq) == 0 {
		return fmt.Errorf("keypart: empty key distribution")
	}
	for i, f := range freq {
		if f <= 0 {
			return fmt.Errorf("keypart: key %d has frequency %v, must be > 0", i, f)
		}
	}
	return nil
}

// Greedy is the default partitioner: longest-processing-time-first greedy
// bin packing. Keys are sorted by decreasing frequency and each is assigned
// to the currently least loaded replica. For skewed (e.g. ZipF) frequency
// distributions this is a strong heuristic for minimizing pmax.
type Greedy struct{}

var _ Partitioner = Greedy{}

// Partition implements Partitioner.
func (Greedy) Partition(freq []float64, n int) (Assignment, error) {
	if err := validate(freq, n); err != nil {
		return Assignment{}, err
	}
	if n > len(freq) {
		n = len(freq)
	}
	idx := make([]int, len(freq))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if freq[idx[a]] != freq[idx[b]] {
			return freq[idx[a]] > freq[idx[b]]
		}
		return idx[a] < idx[b]
	})
	asg := Assignment{
		Replicas: n,
		Replica:  make([]int, len(freq)),
		Load:     make([]float64, n),
	}
	for _, k := range idx {
		best := 0
		for r := 1; r < n; r++ {
			if asg.Load[r] < asg.Load[best] {
				best = r
			}
		}
		asg.Replica[k] = best
		asg.Load[best] += freq[k]
	}
	asg.consolidate()
	asg.trim()
	return asg, nil
}

// consolidate merges the two least-loaded replicas while doing so does not
// increase the maximum load. This mirrors the paper's KeyPartitioning
// contract, which may return fewer replicas than requested: when key skew
// pins pmax (e.g. one key holding 50% of the items), extra replicas that
// cannot lower pmax are wasted and are released instead.
func (a *Assignment) consolidate() {
	for len(a.Load) > 1 {
		maxLoad := 0.0
		for _, l := range a.Load {
			if l > maxLoad {
				maxLoad = l
			}
		}
		// Find the two least-loaded replicas.
		lo1, lo2 := -1, -1
		for r, l := range a.Load {
			switch {
			case lo1 < 0 || l < a.Load[lo1]:
				lo2 = lo1
				lo1 = r
			case lo2 < 0 || l < a.Load[lo2]:
				lo2 = r
			}
		}
		if a.Load[lo1]+a.Load[lo2] > maxLoad+1e-12 {
			return
		}
		// Merge the higher-indexed replica (hi) into the lower one (lo),
		// then drop hi by swapping the last replica into its slot.
		lo, hi := lo1, lo2
		if lo > hi {
			lo, hi = hi, lo
		}
		a.Load[lo] += a.Load[hi]
		last := len(a.Load) - 1
		for k, r := range a.Replica {
			if r == hi {
				a.Replica[k] = lo
			} else if r == last && hi != last {
				a.Replica[k] = hi
			}
		}
		a.Load[hi] = a.Load[last]
		a.Load = a.Load[:last]
	}
}

// ConsistentHash is a baseline partitioner that ignores frequencies and
// assigns keys by hashing them onto replicas, mimicking the default
// key-grouping of most SPSs. With skewed key distributions it yields a much
// larger pmax than Greedy; it exists as the ablation baseline.
type ConsistentHash struct {
	// Seed perturbs the hash, allowing different placements.
	Seed uint64
}

var _ Partitioner = ConsistentHash{}

// Partition implements Partitioner.
func (c ConsistentHash) Partition(freq []float64, n int) (Assignment, error) {
	if err := validate(freq, n); err != nil {
		return Assignment{}, err
	}
	if n > len(freq) {
		n = len(freq)
	}
	asg := Assignment{
		Replicas: n,
		Replica:  make([]int, len(freq)),
		Load:     make([]float64, n),
	}
	for k := range freq {
		r := int(splitmix64(uint64(k)+c.Seed) % uint64(n))
		asg.Replica[k] = r
		asg.Load[r] += freq[k]
	}
	asg.trim()
	return asg, nil
}

// trim drops trailing empty replicas and computes PMax. Empty replicas in
// the middle are kept: replica indices must stay stable for hashing.
func (a *Assignment) trim() {
	last := -1
	for r, l := range a.Load {
		if l > 0 {
			last = r
		}
	}
	a.Load = a.Load[:last+1]
	a.Replicas = last + 1
	total := 0.0
	max := 0.0
	for _, l := range a.Load {
		total += l
		if l > max {
			max = l
		}
	}
	if total > 0 {
		a.PMax = max / total
	}
}

// splitmix64 is the SplitMix64 mixing function; a tiny, high-quality
// integer hash.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
