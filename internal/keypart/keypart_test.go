package keypart

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestGreedyEvenKeys(t *testing.T) {
	freq := make([]float64, 12)
	for i := range freq {
		freq[i] = 1.0 / 12
	}
	asg, err := Greedy{}.Partition(freq, 3)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Replicas != 3 {
		t.Fatalf("Replicas = %d, want 3", asg.Replicas)
	}
	if math.Abs(asg.PMax-1.0/3) > 1e-9 {
		t.Errorf("PMax = %v, want 1/3", asg.PMax)
	}
}

func TestGreedyPaperSkewExample(t *testing.T) {
	// Paper Section 3.2: nopt = 3 but one key holds 50% of the items.
	// The partitioner must fall back to 2 replicas with pmax = 0.5.
	asg, err := Greedy{}.Partition([]float64{0.5, 0.25, 0.25}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Replicas != 2 {
		t.Errorf("Replicas = %d, want 2", asg.Replicas)
	}
	if math.Abs(asg.PMax-0.5) > 1e-12 {
		t.Errorf("PMax = %v, want 0.5", asg.PMax)
	}
}

func TestGreedyFewerKeysThanReplicas(t *testing.T) {
	asg, err := Greedy{}.Partition([]float64{0.6, 0.4}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Replicas > 2 {
		t.Errorf("Replicas = %d, want <= 2", asg.Replicas)
	}
	if math.Abs(asg.PMax-0.6) > 1e-12 {
		t.Errorf("PMax = %v, want 0.6", asg.PMax)
	}
}

func TestGreedySingleReplica(t *testing.T) {
	asg, err := Greedy{}.Partition([]float64{0.3, 0.7}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Replicas != 1 || math.Abs(asg.PMax-1) > 1e-12 {
		t.Errorf("got %+v, want 1 replica with pmax 1", asg)
	}
}

func TestPartitionErrors(t *testing.T) {
	if _, err := (Greedy{}).Partition(nil, 2); err == nil {
		t.Error("empty distribution accepted")
	}
	if _, err := (Greedy{}).Partition([]float64{0.5, -0.5}, 2); err == nil {
		t.Error("negative frequency accepted")
	}
	if _, err := (Greedy{}).Partition([]float64{1}, 0); err == nil {
		t.Error("zero replicas accepted")
	}
	if _, err := (ConsistentHash{}).Partition(nil, 2); err == nil {
		t.Error("consistent hash: empty distribution accepted")
	}
}

func TestConsistentHashCoversAllKeys(t *testing.T) {
	freq := make([]float64, 100)
	for i := range freq {
		freq[i] = 0.01
	}
	asg, err := ConsistentHash{Seed: 42}.Partition(freq, 8)
	if err != nil {
		t.Fatal(err)
	}
	if asg.Replicas < 2 || asg.Replicas > 8 {
		t.Errorf("Replicas = %d, want in [2, 8]", asg.Replicas)
	}
	for k, r := range asg.Replica {
		if r < 0 || r >= len(asg.Load) {
			t.Fatalf("key %d assigned to out-of-range replica %d", k, r)
		}
	}
}

func TestGreedyBeatsHashingOnSkew(t *testing.T) {
	// ZipF-like skewed frequencies: greedy should achieve a pmax no worse
	// than hashing (the ablation claim).
	rng := rand.New(rand.NewSource(5))
	freq := make([]float64, 50)
	sum := 0.0
	for i := range freq {
		freq[i] = 1 / math.Pow(float64(i+1), 1.3)
		sum += freq[i]
	}
	for i := range freq {
		freq[i] /= sum
	}
	g, err := Greedy{}.Partition(freq, 6)
	if err != nil {
		t.Fatal(err)
	}
	h, err := ConsistentHash{Seed: uint64(rng.Int63())}.Partition(freq, 6)
	if err != nil {
		t.Fatal(err)
	}
	if g.PMax > h.PMax+1e-12 {
		t.Errorf("greedy pmax %v worse than hashing %v", g.PMax, h.PMax)
	}
}

// Properties checked for both partitioners on random distributions:
// loads are consistent with assignments, every key is assigned, pmax is
// max(load)/sum(load), and pmax >= 1/replicas.
func TestPartitionProperties(t *testing.T) {
	partitioners := map[string]Partitioner{
		"greedy": Greedy{},
		"hash":   ConsistentHash{Seed: 7},
	}
	for name, p := range partitioners {
		t.Run(name, func(t *testing.T) {
			f := func(seed int64, nRaw uint8) bool {
				rng := rand.New(rand.NewSource(seed))
				nKeys := 1 + rng.Intn(60)
				freq := make([]float64, nKeys)
				total := 0.0
				for i := range freq {
					freq[i] = rng.Float64() + 0.01
					total += freq[i]
				}
				for i := range freq {
					freq[i] /= total
				}
				n := 1 + int(nRaw)%12
				asg, err := p.Partition(freq, n)
				if err != nil {
					return false
				}
				loads := make([]float64, len(asg.Load))
				for k, r := range asg.Replica {
					if r < 0 || r >= len(loads) {
						return false
					}
					loads[r] += freq[k]
				}
				maxLoad, sumLoad := 0.0, 0.0
				for i, l := range loads {
					if math.Abs(l-asg.Load[i]) > 1e-9 {
						return false
					}
					sumLoad += l
					if l > maxLoad {
						maxLoad = l
					}
				}
				if math.Abs(sumLoad-1) > 1e-9 {
					return false
				}
				if math.Abs(asg.PMax-maxLoad) > 1e-9 {
					return false
				}
				return asg.PMax >= 1/float64(asg.Replicas)-1e-9 && asg.Replicas <= n
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
