package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenRegistry builds a registry with fully deterministic contents: every
// counter, histogram sample and gauge is fixed, so the rendered Prometheus
// exposition and Snapshot JSON are byte-stable across runs and platforms.
func goldenRegistry() *Registry {
	r := New()
	sts := r.Bind([]StationInfo{
		{Name: "src", Role: "source", Op: 0, Source: true},
		{Name: "hot/emitter", Role: "emitter", Op: 1},
		{Name: "hot/1", Role: "worker", Op: 1},
		{Name: "hot/2", Role: "worker", Op: 1},
		{Name: "hot/collector", Role: "collector", Op: 1},
		{Name: "sink", Role: "worker", Op: 2, Sink: true},
	})
	for i, st := range sts {
		base := uint64(i+1) * 1000
		st.Consumed.Add(base)
		st.Emitted.Add(base - 10)
		st.Arrived.Add(base + 5)
		st.Dropped.Add(uint64(i))
		st.Failed.Add(uint64(2 * i))
		st.Abandoned.Add(uint64(3 * i))
		st.Drained.Add(uint64(4 * i))
		st.Receives.Add(base / 10)
	}
	sts[3].Restarts.Add(2)
	sts[5].Degraded.Store(true)
	for v := uint64(1); v <= 1<<20; v *= 2 {
		sts[2].Service.Record(v * 1000)
		sts[2].InterArrival.Record(v * 500)
		sts[2].QueueDepth.Record(v % 64)
		sts[2].BatchSize.Record(v % 32)
	}
	r.SetSampler(func(i int) Gauges {
		return Gauges{Queued: uint64(i), Capacity: 64, BlockedSends: uint64(3 * i)}
	})
	r.Edge(0, 1).Wrote.Add(500)
	r.Edge(0, 1).Recvd.Add(498)
	r.Edge(4, 5).Wrote.Add(321)
	r.Edge(4, 5).Recvd.Add(321)
	return r
}

// checkGolden compares got against testdata/<name>; SS_UPDATE_GOLDEN=1
// rewrites the files instead.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("SS_UPDATE_GOLDEN") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with SS_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// stripUptime removes the wall-clock-dependent lines from a Prometheus
// rendering so the remainder is deterministic.
func stripUptime(s string) string {
	var b strings.Builder
	for _, line := range strings.SplitAfter(s, "\n") {
		if strings.HasPrefix(line, "spinstreams_uptime_seconds ") {
			continue
		}
		b.WriteString(line)
	}
	return b.String()
}

// TestPrometheusGolden pins the text-exposition format: metric names,
// label sets and ordering are a stable interface.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	goldenRegistry().WritePrometheus(&buf)
	checkGolden(t, "metrics.prom", []byte(stripUptime(buf.String())))
}

// TestSnapshotJSONGolden pins the Snapshot JSON schema (field names,
// nesting, quantile keys).
func TestSnapshotJSONGolden(t *testing.T) {
	s := goldenRegistry().Snapshot()
	s.UptimeSeconds = 0
	got, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "snapshot.json", append(got, '\n'))
}

// TestSnapshotTotals checks the recomputed lifetime accounting: sources
// feed Generated, sinks feed Delivered, the loss buckets sum per station,
// and undecoded frames count as abandoned.
func TestSnapshotTotals(t *testing.T) {
	tot := goldenRegistry().Snapshot().Totals()
	want := Totals{
		Generated: 1000,     // src consumed
		Delivered: 6000 - 10, // sink emitted
		Shed:      0 + 1 + 2 + 3 + 4 + 5,
		Failed:    2 * (0 + 1 + 2 + 3 + 4 + 5),
		Drained:   4 * (0 + 1 + 2 + 3 + 4 + 5),
		Abandoned: 3*(0+1+2+3+4+5) + 2, // stations + edge 0->1 in-flight loss
	}
	if tot != want {
		t.Errorf("totals = %+v, want %+v", tot, want)
	}
	if got := tot.Sum(); got != tot.Delivered+tot.Shed+tot.Failed+tot.Drained+tot.Abandoned {
		t.Errorf("Sum() = %d, inconsistent with fields %+v", got, tot)
	}
}

// TestHandlerEndpoints drives the HTTP surface end to end: /metrics serves
// the exposition with the right content type, /snapshot serves
// well-formed JSON, /debug/vars includes the expvar publication.
func TestHandlerEndpoints(t *testing.T) {
	srv := httptest.NewServer(goldenRegistry().Handler())
	defer srv.Close()

	get := func(path string) (string, *http.Response) {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return string(body), resp
	}

	body, resp := get("/metrics")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain") {
		t.Errorf("/metrics content type = %q", ct)
	}
	if !strings.Contains(body, "spinstreams_station_consumed_total{station=\"src\"") {
		t.Errorf("/metrics missing station counter:\n%s", body)
	}

	body, resp = get("/snapshot")
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("/snapshot content type = %q", ct)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/snapshot not valid JSON: %v", err)
	}
	if len(snap.Stations) != 6 {
		t.Errorf("/snapshot has %d stations, want 6", len(snap.Stations))
	}

	body, _ = get("/debug/vars")
	if !strings.Contains(body, "\"spinstreams\"") {
		t.Errorf("/debug/vars missing spinstreams publication")
	}
}

// TestServeBindsAndShutsDown exercises the -metrics-addr convenience.
func TestServeBindsAndShutsDown(t *testing.T) {
	addr, shutdown, err := goldenRegistry().Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("GET against Serve address: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	shutdown()
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Error("server still reachable after shutdown")
	}
}

// TestRebindResetsRegistry checks Bind discards a previous run's state.
func TestRebindResetsRegistry(t *testing.T) {
	r := goldenRegistry()
	sts := r.Bind([]StationInfo{{Name: "only", Role: "source", Op: 0, Source: true}})
	if len(sts) != 1 {
		t.Fatalf("rebind returned %d stations", len(sts))
	}
	s := r.Snapshot()
	if len(s.Stations) != 1 || len(s.Edges) != 0 {
		t.Errorf("rebind kept old state: %d stations, %d edges", len(s.Stations), len(s.Edges))
	}
	if s.Stations[0].Consumed != 0 || s.Stations[0].Queued != 0 {
		t.Errorf("rebind kept counters: %+v", s.Stations[0])
	}
	if _, _, _, ok := r.Window(); ok {
		t.Error("rebind kept window marks")
	}
}
