// Package obs is the runtime's observability layer: a low-overhead
// per-station metrics registry the engines route all tuple accounting
// through, with sampled histograms (service time, inter-arrival time,
// queue depth, batch size), pluggable Tracer hooks fired at station
// lifecycle points, point-in-time Snapshots, Prometheus/expvar HTTP
// exposition (prom.go), and a drift reporter that closes the paper's
// measure -> predict -> verify loop (drift.go).
//
// Design: counters are exported atomic fields on Station, written directly
// by the engine's hot paths — the registry adds a pointer indirection, not
// a lock or a map lookup, so routing the accounting through it costs the
// same as the engine-private counters it replaced. Histograms are only
// recorded when a run is bound to a caller-supplied registry, and the
// engine samples them (every receive event in batched mode, every 16th
// tuple in per-tuple mode) so instrumentation stays within the documented
// overhead budget; see DESIGN.md "Observability".
package obs

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"spinstreams/internal/stats"
)

// StationInfo is the immutable identity of one physical station.
type StationInfo struct {
	// Name is the station name (e.g. "hot/replica2").
	Name string `json:"name"`
	// Role is the plan role: "source", "worker", "emitter" or "collector".
	Role string `json:"role"`
	// Op is the logical operator the station belongs to.
	Op int `json:"op"`
	// Source marks the station that generates the input stream.
	Source bool `json:"source,omitempty"`
	// Sink marks stations whose emissions leave the system (no out edges).
	Sink bool `json:"sink,omitempty"`
}

// Station is one physical station's live metrics. The counter fields are
// written directly by the engine (a single atomic add per event — the
// registry is the accounting path, not a copy of it) and may be read at
// any time. Histograms record sampled timings; see the package comment
// for the sampling policy.
type Station struct {
	Info StationInfo

	// Consumed counts tuples taken from the inbox and processed (for the
	// source: tuples generated).
	Consumed atomic.Uint64
	// Emitted counts tuples admitted downstream (for sinks: results that
	// left the system).
	Emitted atomic.Uint64
	// Arrived counts tuples admitted into this station's inbox.
	Arrived atomic.Uint64
	// Dropped counts tuples shed at this station's inbox (send timeout).
	Dropped atomic.Uint64
	// Failed counts tuples lost to operator panics or consumed by a
	// degraded station.
	Failed atomic.Uint64
	// Abandoned counts processed outputs shutdown kept from being admitted
	// downstream.
	Abandoned atomic.Uint64
	// Drained counts tuples still queued when the run stopped.
	Drained atomic.Uint64
	// Restarts counts panic-recovery restarts.
	Restarts atomic.Uint64
	// Receives counts mailbox receive events (batches in batched mode,
	// tuples in per-tuple mode). Maintained only when sampling is active.
	Receives atomic.Uint64
	// Degraded reports whether the station exhausted its restart budget.
	Degraded atomic.Bool
	// Retired reports that a live reconfiguration drained and stopped the
	// station; its lifetime counters stay in the totals, but windowed
	// drift measurements skip it so rates reflect the live structure.
	Retired atomic.Bool

	// Service holds sampled per-tuple service times in nanoseconds. In
	// batched mode one sample is the batch's mean per-tuple time and
	// includes downstream admission stalls (busy + blocked).
	Service *stats.Histogram
	// InterArrival holds sampled per-tuple inter-arrival times in
	// nanoseconds (mean over the sampling window).
	InterArrival *stats.Histogram
	// QueueDepth holds inbox depths sampled at receive events.
	QueueDepth *stats.Histogram
	// BatchSize holds the tuple counts of receive events.
	BatchSize *stats.Histogram
}

// Edge is one cross-node physical edge's frame accounting (distributed
// engine). Wrote counts tuples in successfully encoded frames, Recvd
// tuples in decoded frames; the difference after shutdown is the network
// in-flight loss.
type Edge struct {
	From, To int
	Wrote    atomic.Uint64
	Recvd    atomic.Uint64
}

// Gauges are the point-in-time mailbox figures the engine's sampler
// contributes to snapshots.
type Gauges struct {
	// Queued is the inbox depth in tuples.
	Queued uint64
	// Capacity is the inbox BAS bound.
	Capacity uint64
	// BlockedSends counts send episodes into this inbox that stalled on a
	// full mailbox (backpressure events).
	BlockedSends uint64
}

// Tracer observes station lifecycle events. Implementations must be safe
// for concurrent use and fast — hooks fire from station goroutines on the
// data path. Receive and Serve fire per receive event / served batch (per
// tuple in per-tuple mode); Emit fires per admission call.
type Tracer interface {
	// OnReceive fires when a station takes n tuples from its inbox.
	OnReceive(station, n int)
	// OnServe fires after a station served n tuples taking elapsed.
	OnServe(station, n int, elapsed time.Duration)
	// OnEmit fires when a station admits n tuples downstream (or, for a
	// sink, releases n results).
	OnEmit(station, n int)
	// OnRestart fires when a panicked station restarts; restarts is its
	// new restart count.
	OnRestart(station int, restarts uint64)
	// OnDegrade fires when a station exhausts its restart budget.
	OnDegrade(station int)
}

// Registry is the root of the observability layer: one bound run's
// stations and cross-node edges, plus the tracers and the mailbox sampler.
// A Registry serves one run at a time — the engine (re)binds it at run
// start, which resets stations, edges and window marks. All methods are
// safe for concurrent use; Snapshot may be called while the run is live
// (the HTTP endpoints do).
type Registry struct {
	mu       sync.Mutex
	start    time.Time
	stations []*Station
	edges    []*Edge
	edgeIdx  map[[2]int]*Edge
	tracers  []Tracer
	sampler  func(station int) Gauges

	winBegin, winEnd     *Snapshot
	winBeginAt, winEndAt time.Time
}

// New returns an empty registry.
func New() *Registry {
	return &Registry{start: time.Now()}
}

// Bind (re)initializes the registry for a run with the given stations and
// returns the Station slice the engine writes through. Any previous run's
// stations, edges, sampler and window marks are discarded.
func (r *Registry) Bind(infos []StationInfo) []*Station {
	sts := make([]*Station, len(infos))
	for i := range infos {
		sts[i] = &Station{
			Info:         infos[i],
			Service:      stats.NewHistogram(),
			InterArrival: stats.NewHistogram(),
			QueueDepth:   stats.NewHistogram(),
			BatchSize:    stats.NewHistogram(),
		}
	}
	r.mu.Lock()
	r.start = time.Now()
	r.stations = sts
	r.edges = nil
	r.edgeIdx = nil
	r.sampler = nil
	r.winBegin, r.winEnd = nil, nil
	r.mu.Unlock()
	return sts
}

// Extend appends stations to a bound registry without resetting it; the
// live reconfigurer uses it to register the stations an ApplyDelta
// creates mid-run. It returns the cells for the new stations only.
func (r *Registry) Extend(infos []StationInfo) []*Station {
	sts := make([]*Station, len(infos))
	for i := range infos {
		sts[i] = &Station{
			Info:         infos[i],
			Service:      stats.NewHistogram(),
			InterArrival: stats.NewHistogram(),
			QueueDepth:   stats.NewHistogram(),
			BatchSize:    stats.NewHistogram(),
		}
	}
	r.mu.Lock()
	r.stations = append(r.stations, sts...)
	r.mu.Unlock()
	return sts
}

// Stations returns the bound stations (nil before Bind).
func (r *Registry) Stations() []*Station {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stations
}

// Edge returns the accounting cell for the cross-node edge from -> to,
// creating it on first use.
func (r *Registry) Edge(from, to int) *Edge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.edgeIdx == nil {
		r.edgeIdx = make(map[[2]int]*Edge)
	}
	k := [2]int{from, to}
	if e := r.edgeIdx[k]; e != nil {
		return e
	}
	e := &Edge{From: from, To: to}
	r.edgeIdx[k] = e
	r.edges = append(r.edges, e)
	return e
}

// AddTracer registers a lifecycle tracer. Tracers must be added before the
// run binds the registry to take effect.
func (r *Registry) AddTracer(t Tracer) {
	r.mu.Lock()
	r.tracers = append(r.tracers, t)
	r.mu.Unlock()
}

// Tracers returns the registered tracers.
func (r *Registry) Tracers() []Tracer {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Tracer(nil), r.tracers...)
}

// SetSampler installs the engine's mailbox gauge source; snapshots call it
// per station. The sampler must be safe for concurrent use.
func (r *Registry) SetSampler(f func(station int) Gauges) {
	r.mu.Lock()
	r.sampler = f
	r.mu.Unlock()
}

// MarkWindowBegin snapshots the registry at the start of the engine's
// measurement window (after warmup).
func (r *Registry) MarkWindowBegin() {
	s := r.Snapshot()
	r.mu.Lock()
	r.winBegin, r.winBeginAt = s, time.Now()
	r.winEnd = nil
	r.mu.Unlock()
}

// MarkWindowEnd snapshots the registry at the end of the measurement
// window.
func (r *Registry) MarkWindowEnd() {
	s := r.Snapshot()
	r.mu.Lock()
	r.winEnd, r.winEndAt = s, time.Now()
	r.mu.Unlock()
}

// Window returns the measurement-window snapshots and the window length;
// ok is false until both marks exist.
func (r *Registry) Window() (begin, end *Snapshot, seconds float64, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.winBegin == nil || r.winEnd == nil {
		return nil, nil, 0, false
	}
	return r.winBegin, r.winEnd, r.winEndAt.Sub(r.winBeginAt).Seconds(), true
}

// StationSnapshot is one station's point-in-time figures.
type StationSnapshot struct {
	StationInfo
	Consumed     uint64 `json:"consumed"`
	Emitted      uint64 `json:"emitted"`
	Arrived      uint64 `json:"arrived"`
	Dropped      uint64 `json:"dropped"`
	Failed       uint64 `json:"failed"`
	Abandoned    uint64 `json:"abandoned"`
	Drained      uint64 `json:"drained"`
	Restarts     uint64 `json:"restarts"`
	Receives     uint64 `json:"receives"`
	Degraded     bool   `json:"degraded"`
	Retired      bool   `json:"retired,omitempty"`
	Queued       uint64 `json:"queued"`
	Capacity     uint64 `json:"capacity"`
	BlockedSends uint64 `json:"blocked_sends"`

	Service      stats.HistogramSummary `json:"service_ns"`
	InterArrival stats.HistogramSummary `json:"interarrival_ns"`
	QueueDepth   stats.HistogramSummary `json:"queue_depth"`
	BatchSize    stats.HistogramSummary `json:"batch_size"`
}

// EdgeSnapshot is one cross-node edge's point-in-time frame accounting.
type EdgeSnapshot struct {
	From  int    `json:"from"`
	To    int    `json:"to"`
	Wrote uint64 `json:"wrote"`
	Recvd uint64 `json:"recvd"`
}

// Snapshot is a consistent-enough point-in-time view of a registry:
// counters are loaded atomically per field while the run proceeds, so
// cross-counter identities (conservation) are only exact once the run has
// stopped.
type Snapshot struct {
	// UptimeSeconds is the time since the registry was bound.
	UptimeSeconds float64           `json:"uptime_seconds"`
	Stations      []StationSnapshot `json:"stations"`
	Edges         []EdgeSnapshot    `json:"edges,omitempty"`
}

// Snapshot captures the registry. Safe to call while the run is live.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	sts := r.stations
	edges := append([]*Edge(nil), r.edges...)
	sampler := r.sampler
	start := r.start
	r.mu.Unlock()

	s := &Snapshot{
		UptimeSeconds: time.Since(start).Seconds(),
		Stations:      make([]StationSnapshot, len(sts)),
	}
	for i, st := range sts {
		ss := StationSnapshot{
			StationInfo:  st.Info,
			Consumed:     st.Consumed.Load(),
			Emitted:      st.Emitted.Load(),
			Arrived:      st.Arrived.Load(),
			Dropped:      st.Dropped.Load(),
			Failed:       st.Failed.Load(),
			Abandoned:    st.Abandoned.Load(),
			Drained:      st.Drained.Load(),
			Restarts:     st.Restarts.Load(),
			Receives:     st.Receives.Load(),
			Degraded:     st.Degraded.Load(),
			Retired:      st.Retired.Load(),
			Service:      st.Service.Summary(),
			InterArrival: st.InterArrival.Summary(),
			QueueDepth:   st.QueueDepth.Summary(),
			BatchSize:    st.BatchSize.Summary(),
		}
		if sampler != nil {
			g := sampler(i)
			ss.Queued, ss.Capacity, ss.BlockedSends = g.Queued, g.Capacity, g.BlockedSends
		}
		s.Stations[i] = ss
	}
	for _, e := range edges {
		s.Edges = append(s.Edges, EdgeSnapshot{
			From: e.From, To: e.To,
			Wrote: e.Wrote.Load(), Recvd: e.Recvd.Load(),
		})
	}
	return s
}

// Totals is the registry's recomputation of the run's lifetime tuple
// accounting; it mirrors the runtime's Totals and obeys the same
// conservation identity on unit-gain topologies once the run has stopped:
//
//	Generated == Delivered + Shed + Failed + Drained + Abandoned
type Totals struct {
	Generated uint64 `json:"generated"`
	Delivered uint64 `json:"delivered"`
	Shed      uint64 `json:"shed"`
	Failed    uint64 `json:"failed"`
	Drained   uint64 `json:"drained"`
	Abandoned uint64 `json:"abandoned"`
}

// Totals recomputes the run's lifetime tuple accounting purely from the
// snapshot's station counters and edge frame counters.
func (s *Snapshot) Totals() Totals {
	var t Totals
	for i := range s.Stations {
		ss := &s.Stations[i]
		t.Shed += ss.Dropped
		t.Failed += ss.Failed
		t.Abandoned += ss.Abandoned
		t.Drained += ss.Drained
		if ss.Source {
			t.Generated += ss.Consumed
		} else if ss.Sink {
			t.Delivered += ss.Emitted
		}
	}
	// Network in-flight loss: tuples in frames written but never decoded.
	for _, e := range s.Edges {
		if e.Wrote > e.Recvd {
			t.Abandoned += e.Wrote - e.Recvd
		}
	}
	return t
}

// Sum returns Delivered+Shed+Failed+Drained+Abandoned — the right-hand
// side of the conservation identity.
func (t Totals) Sum() uint64 {
	return t.Delivered + t.Shed + t.Failed + t.Drained + t.Abandoned
}

// String renders the totals on one line.
func (t Totals) String() string {
	return fmt.Sprintf("generated=%d delivered=%d shed=%d failed=%d drained=%d abandoned=%d",
		t.Generated, t.Delivered, t.Shed, t.Failed, t.Drained, t.Abandoned)
}
