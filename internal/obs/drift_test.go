package obs_test

import (
	"context"
	"fmt"
	"math"
	"os"
	"testing"
	"time"

	"spinstreams/internal/core"
	"spinstreams/internal/mailbox"
	"spinstreams/internal/obs"
	"spinstreams/internal/qsim"
	"spinstreams/internal/randtopo"
	"spinstreams/internal/runtime"
	"spinstreams/internal/stats"
)

// Differential validation: on a seeded corpus of random topologies
// (Algorithm 5 testbed), the steady-state prediction, the discrete-event
// simulation and the live runtime's registry-measured rates must agree
// within the documented bands on every non-saturated operator:
//
//   - predicted vs qsim (deterministic service): <= 15% per operator —
//     the simulator realizes exactly the fluid model's assumptions, so
//     disagreement means one of the two implementations drifted;
//   - predicted vs live measured: <= 40% per operator, <= 25% mean —
//     live runs pace service times with real sleeps over a seconds-long
//     window, matching the fig7live experiment's observed spread;
//   - registry vs engine accounting: exact — both read the same atomic
//     cells, so any difference is a double- or under-count.
//
// Saturated operators (rho > 0.95 or limiting) ride the backpressure
// boundary where measured rates carry capacity-dependent variance; the
// paper's validation (Figure 7) excludes them the same way.
//
// The default corpus keeps CI fast; SS_DRIFT_FULL=1 widens it and runs
// both transports on every topology.
const (
	qsimOpTol    = 0.15
	liveOpTol    = 0.40
	liveMeanTol  = 0.25
	rateSkewTol  = 0.05 // window-mark snapshots lag Metrics snapshots by the mark's own capture time
	driftSatRho  = 0.95 // keep in sync with obs.saturationRho
	liveDuration = 1500 * time.Millisecond
)

type driftCase struct {
	seed      uint64
	transport mailbox.Mode
}

func driftCorpus(t *testing.T) []driftCase {
	if os.Getenv("SS_DRIFT_FULL") == "1" {
		var cs []driftCase
		for seed := uint64(1); seed <= 8; seed++ {
			cs = append(cs, driftCase{seed, mailbox.PerTuple}, driftCase{seed, mailbox.Batched})
		}
		return cs
	}
	if testing.Short() {
		t.Skip("live drift suite skipped in -short mode")
	}
	return []driftCase{
		{1, mailbox.PerTuple},
		{2, mailbox.Batched},
		{3, mailbox.PerTuple},
	}
}

// genTopology builds one corpus topology: service times floored at 1ms so
// live pacing is reliable (as in fig7live), sizes kept small so each live
// run stays under two seconds.
func genTopology(t *testing.T, seed uint64) *core.Topology {
	g, err := randtopo.Generate(randtopo.Config{
		Seed:           seed,
		MinOps:         4,
		MaxOps:         8,
		ServiceTimeMin: 1e-3,
		ServiceTimeMax: 8e-3,
	})
	if err != nil {
		t.Fatalf("seed %d: generate: %v", seed, err)
	}
	return g.Topology
}

// nonSaturated reports whether op i should be held to the tolerance bands.
func nonSaturated(a *core.Analysis, i int) bool {
	if a.Rho[i] > driftSatRho {
		return false
	}
	for _, id := range a.Limiting {
		if int(id) == i {
			return false
		}
	}
	return true
}

// TestPredictedVsSimulatedRates pins the model against the simulator on
// the corpus: with deterministic service times the fluid model should be
// nearly exact.
func TestPredictedVsSimulatedRates(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		topo := genTopology(t, seed)
		a, err := core.SteadyState(topo)
		if err != nil {
			t.Fatalf("seed %d: steady state: %v", seed, err)
		}
		sim, err := qsim.SimulateTopology(topo, nil, qsim.Config{
			Seed: seed, Horizon: 40, Service: qsim.Deterministic,
		})
		if err != nil {
			t.Fatalf("seed %d: simulate: %v", seed, err)
		}
		for i := 0; i < topo.Len(); i++ {
			if !nonSaturated(a, i) {
				continue
			}
			if e := stats.RelErr(sim.Departure[i], a.Delta[i]); e > qsimOpTol {
				t.Errorf("seed %d op %d (%s): qsim departure %.1f vs predicted %.1f (err %.1f%% > %.0f%%)",
					seed, i, topo.Op(core.OpID(i)).Name, sim.Departure[i], a.Delta[i], e*100, qsimOpTol*100)
			}
		}
	}
}

// TestLiveDriftAgainstModel runs each corpus topology on the live runtime
// with a registry bound, then checks the three-way agreement: the drift
// report's per-operator errors stay inside the live band, the registry's
// window rates match the engine's Metrics, and the registry's recomputed
// totals equal the engine's exactly (any difference is a tuple counted
// twice or not at all).
func TestLiveDriftAgainstModel(t *testing.T) {
	for _, tc := range driftCorpus(t) {
		tc := tc
		t.Run(fmt.Sprintf("seed%d_%v", tc.seed, tc.transport), func(t *testing.T) {
			topo := genTopology(t, tc.seed)
			reg := obs.New()
			m, err := runtime.RunTopology(context.Background(), topo, nil, nil, runtime.Config{
				Seed:        tc.seed,
				Duration:    liveDuration,
				Warmup:      liveDuration / 3,
				MailboxSize: 8,
				Mailbox:     tc.transport,
				Obs:         reg,
			})
			if err != nil {
				t.Fatalf("run: %v", err)
			}

			rep, err := obs.Drift(topo, nil, reg)
			if err != nil {
				t.Fatalf("drift: %v", err)
			}
			var errSum float64
			var errN int
			for _, row := range rep.Rows {
				if row.Saturated {
					continue
				}
				// Relative bands need enough expected tuples in the
				// window to be meaningful; a windowed operator predicted
				// at under ~20 departures per window is all shot noise.
				if row.Predicted*rep.Seconds < 20 {
					continue
				}
				errSum += row.RelErr
				errN++
				if row.RelErr > liveOpTol {
					t.Errorf("op %d (%s): measured %.1f t/s vs predicted %.1f (err %.1f%% > %.0f%%)",
						row.Op, row.Name, row.Measured, row.Predicted, row.RelErr*100, liveOpTol*100)
				}
				if row.MeasuredRho < 0 || row.MeasuredRho > 1.5 {
					t.Errorf("op %d (%s): implausible measured rho %.3f", row.Op, row.Name, row.MeasuredRho)
				}
			}
			if errN > 0 {
				if mean := errSum / float64(errN); mean > liveMeanTol {
					t.Errorf("mean departure error %.1f%% > %.0f%% over %d non-saturated operators",
						mean*100, liveMeanTol*100, errN)
				}
			}
			if rep.Reanalyzed == nil {
				t.Error("drift report missing re-analysis on measured profiles")
			} else if math.IsNaN(rep.RepredictionErr) || rep.RepredictedThroughput <= 0 {
				t.Errorf("re-analysis implausible: throughput %.1f err %v",
					rep.RepredictedThroughput, rep.RepredictionErr)
			}

			// Registry window rates vs the engine's own Metrics: same
			// counters, snapshots taken back to back, so only capture
			// skew separates them.
			rates, err := reg.WindowRates()
			if err != nil {
				t.Fatalf("window rates: %v", err)
			}
			if len(rates.Departure) != len(m.Departure) {
				t.Fatalf("registry rates cover %d ops, Metrics %d", len(rates.Departure), len(m.Departure))
			}
			for i := range m.Departure {
				if !ratesClose(rates.Departure[i], m.Departure[i], rates.Seconds) {
					t.Errorf("op %d: registry departure %.1f t/s vs Metrics %.1f t/s",
						i, rates.Departure[i], m.Departure[i])
				}
				if !ratesClose(rates.Arrival[i], m.Arrival[i], rates.Seconds) {
					t.Errorf("op %d: registry arrival %.1f t/s vs Metrics %.1f t/s",
						i, rates.Arrival[i], m.Arrival[i])
				}
			}
			if !ratesClose(rates.Throughput, m.Throughput, rates.Seconds) {
				t.Errorf("registry throughput %.1f t/s vs Metrics %.1f t/s", rates.Throughput, m.Throughput)
			}

			// Exact accounting: the registry recomputes the run's totals
			// purely from its own cells; the engine's Metrics view reads
			// the same cells, so the two must agree to the tuple.
			got := reg.Snapshot().Totals()
			want := obs.Totals{
				Generated: m.Totals.Generated,
				Delivered: m.Totals.Delivered,
				Shed:      m.Totals.Shed,
				Failed:    m.Totals.Failed,
				Drained:   m.Totals.Drained,
				Abandoned: m.Totals.Abandoned,
			}
			if got != want {
				t.Errorf("registry totals %v != engine totals %v (tuple under/over-count)", got, want)
			}
		})
	}
}

// ratesClose allows the documented snapshot-capture skew plus a few
// tuples of absolute slack for very low-rate operators.
func ratesClose(a, b, seconds float64) bool {
	if math.Abs(a-b)*seconds <= 8 {
		return true
	}
	return stats.RelErr(a, b) <= rateSkewTol
}

// TestProfilesRoundTrip checks Snapshot.Profiles against hand-built
// counters: service means, gains and the worker/collector aggregation.
func TestProfilesRoundTrip(t *testing.T) {
	r := obs.New()
	sts := r.Bind([]obs.StationInfo{
		{Name: "src", Role: "source", Op: 0, Source: true},
		{Name: "f/emitter", Role: "emitter", Op: 1},
		{Name: "f/1", Role: "worker", Op: 1},
		{Name: "f/2", Role: "worker", Op: 1},
		{Name: "f/collector", Role: "collector", Op: 1},
		{Name: "sink", Role: "worker", Op: 2, Sink: true},
	})
	sts[0].Consumed.Add(1000)
	// Workers: 600 + 400 consumed, collector emits 500 (gain 0.5).
	sts[2].Consumed.Add(600)
	sts[3].Consumed.Add(400)
	sts[4].Emitted.Add(500)
	// Per-tuple service samples: worker 1 at 2ms, worker 2 at 4ms.
	for i := 0; i < 10; i++ {
		sts[2].Service.Record(2_000_000)
	}
	for i := 0; i < 10; i++ {
		sts[3].Service.Record(4_000_000)
	}
	sts[5].Consumed.Add(500)
	sts[5].Emitted.Add(500)

	profiles, err := r.Snapshot().Profiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != 3 {
		t.Fatalf("got %d profiles, want 3", len(profiles))
	}
	p := profiles[1]
	if p.Consumed != 1000 || p.Emitted != 500 {
		t.Errorf("op 1 consumed/emitted = %d/%d, want 1000/500", p.Consumed, p.Emitted)
	}
	if got, want := p.ServiceTime, 3e-3; math.Abs(got-want)/want > HistogramRoundTripTol() {
		t.Errorf("op 1 service time %.4fms, want ~3ms", got*1e3)
	}
	if math.Abs(p.Gain-0.5) > 1e-9 {
		t.Errorf("op 1 gain %.3f, want 0.5", p.Gain)
	}
	if profiles[0].Consumed != 1000 {
		t.Errorf("source consumed %d, want 1000", profiles[0].Consumed)
	}
}

// HistogramRoundTripTol is the histogram's documented mean error: Sum is
// exact, so the mean carries no bucketing error at all — only float
// conversion.
func HistogramRoundTripTol() float64 { return 1e-9 }
