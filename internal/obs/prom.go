package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"sync"
)

// Prometheus text-exposition of a registry. Metric names and labels are a
// stable interface (golden-tested): station counters are
// spinstreams_station_<counter>_total{station,role,op}, mailbox gauges are
// spinstreams_station_queue_{depth,capacity}, histograms export as
// summaries (_sum/_count plus quantile series), and cross-node edges as
// spinstreams_edge_{wrote,recvd}_total{from,to}.

// promCounter is one exported station counter.
type promCounter struct {
	name string
	get  func(*StationSnapshot) uint64
}

var promCounters = []promCounter{
	{"consumed", func(s *StationSnapshot) uint64 { return s.Consumed }},
	{"emitted", func(s *StationSnapshot) uint64 { return s.Emitted }},
	{"arrived", func(s *StationSnapshot) uint64 { return s.Arrived }},
	{"shed", func(s *StationSnapshot) uint64 { return s.Dropped }},
	{"failed", func(s *StationSnapshot) uint64 { return s.Failed }},
	{"abandoned", func(s *StationSnapshot) uint64 { return s.Abandoned }},
	{"drained", func(s *StationSnapshot) uint64 { return s.Drained }},
	{"restarts", func(s *StationSnapshot) uint64 { return s.Restarts }},
	{"receives", func(s *StationSnapshot) uint64 { return s.Receives }},
	{"blocked_sends", func(s *StationSnapshot) uint64 { return s.BlockedSends }},
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4).
func (r *Registry) WritePrometheus(w io.Writer) {
	s := r.Snapshot()
	s.WritePrometheus(w)
}

// WritePrometheus renders a snapshot in the Prometheus text exposition
// format. Output ordering is deterministic: metrics in catalogue order,
// stations in plan order.
func (s *Snapshot) WritePrometheus(w io.Writer) {
	fmt.Fprintf(w, "# TYPE spinstreams_uptime_seconds gauge\nspinstreams_uptime_seconds %g\n", s.UptimeSeconds)
	for _, c := range promCounters {
		fmt.Fprintf(w, "# TYPE spinstreams_station_%s_total counter\n", c.name)
		for i := range s.Stations {
			ss := &s.Stations[i]
			fmt.Fprintf(w, "spinstreams_station_%s_total{%s} %d\n", c.name, promLabels(ss), c.get(ss))
		}
	}
	for _, g := range []struct {
		name string
		get  func(*StationSnapshot) uint64
	}{
		{"queue_depth", func(ss *StationSnapshot) uint64 { return ss.Queued }},
		{"queue_capacity", func(ss *StationSnapshot) uint64 { return ss.Capacity }},
		{"degraded", func(ss *StationSnapshot) uint64 {
			if ss.Degraded {
				return 1
			}
			return 0
		}},
	} {
		fmt.Fprintf(w, "# TYPE spinstreams_station_%s gauge\n", g.name)
		for i := range s.Stations {
			ss := &s.Stations[i]
			fmt.Fprintf(w, "spinstreams_station_%s{%s} %d\n", g.name, promLabels(ss), g.get(ss))
		}
	}
	// First-class mailbox occupancy gauge: the signal the online
	// service-rate estimator samples, exported under its own stable name so
	// dashboards can watch exactly what the estimator sees
	// (spinstreams_station_queue_depth remains the legacy alias).
	fmt.Fprintf(w, "# TYPE ss_mailbox_depth gauge\n")
	for i := range s.Stations {
		ss := &s.Stations[i]
		fmt.Fprintf(w, "ss_mailbox_depth{%s} %d\n", promLabels(ss), ss.Queued)
	}
	for _, h := range []struct {
		name string
		get  func(*StationSnapshot) *HistSummaryRef
	}{
		{"service_time_ns", func(ss *StationSnapshot) *HistSummaryRef {
			return &HistSummaryRef{ss.Service.Count, ss.Service.Sum, ss.Service.P50, ss.Service.P90, ss.Service.P99}
		}},
		{"interarrival_ns", func(ss *StationSnapshot) *HistSummaryRef {
			return &HistSummaryRef{ss.InterArrival.Count, ss.InterArrival.Sum, ss.InterArrival.P50, ss.InterArrival.P90, ss.InterArrival.P99}
		}},
		{"queue_depth_sampled", func(ss *StationSnapshot) *HistSummaryRef {
			return &HistSummaryRef{ss.QueueDepth.Count, ss.QueueDepth.Sum, ss.QueueDepth.P50, ss.QueueDepth.P90, ss.QueueDepth.P99}
		}},
		{"batch_size", func(ss *StationSnapshot) *HistSummaryRef {
			return &HistSummaryRef{ss.BatchSize.Count, ss.BatchSize.Sum, ss.BatchSize.P50, ss.BatchSize.P90, ss.BatchSize.P99}
		}},
	} {
		fmt.Fprintf(w, "# TYPE spinstreams_station_%s summary\n", h.name)
		for i := range s.Stations {
			ss := &s.Stations[i]
			v := h.get(ss)
			if v.Count == 0 {
				continue
			}
			labels := promLabels(ss)
			for _, q := range []struct {
				q string
				v float64
			}{{"0.5", v.P50}, {"0.9", v.P90}, {"0.99", v.P99}} {
				fmt.Fprintf(w, "spinstreams_station_%s{%s,quantile=%q} %g\n", h.name, labels, q.q, q.v)
			}
			fmt.Fprintf(w, "spinstreams_station_%s_sum{%s} %d\n", h.name, labels, v.Sum)
			fmt.Fprintf(w, "spinstreams_station_%s_count{%s} %d\n", h.name, labels, v.Count)
		}
	}
	if len(s.Edges) > 0 {
		fmt.Fprintf(w, "# TYPE spinstreams_edge_wrote_total counter\n")
		for _, e := range s.Edges {
			fmt.Fprintf(w, "spinstreams_edge_wrote_total{from=\"%d\",to=\"%d\"} %d\n", e.From, e.To, e.Wrote)
		}
		fmt.Fprintf(w, "# TYPE spinstreams_edge_recvd_total counter\n")
		for _, e := range s.Edges {
			fmt.Fprintf(w, "spinstreams_edge_recvd_total{from=\"%d\",to=\"%d\"} %d\n", e.From, e.To, e.Recvd)
		}
	}
}

// HistSummaryRef is the slice of a histogram summary the Prometheus
// exposition needs.
type HistSummaryRef struct {
	Count, Sum    uint64
	P50, P90, P99 float64
}

// promLabels renders the station label set.
func promLabels(ss *StationSnapshot) string {
	return fmt.Sprintf("station=%q,role=%q,op=\"%d\"", ss.Name, ss.Role, ss.Op)
}

// Handler returns an HTTP handler exposing the registry:
//
//	/metrics      Prometheus text exposition
//	/snapshot     the full Snapshot as JSON
//	/debug/vars   expvar (includes the snapshot under "spinstreams")
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/snapshot", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	})
	r.publishExpvar()
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// expvarOnce guards the process-global expvar name: expvar.Publish panics
// on duplicates, and tests (or repeated runs) build many registries.
var (
	expvarOnce sync.Once
	expvarCur  struct {
		mu  sync.Mutex
		reg *Registry
	}
)

// publishExpvar exposes the registry's snapshot as the expvar variable
// "spinstreams"; the latest registry to publish wins.
func (r *Registry) publishExpvar() {
	expvarCur.mu.Lock()
	expvarCur.reg = r
	expvarCur.mu.Unlock()
	expvarOnce.Do(func() {
		expvar.Publish("spinstreams", expvar.Func(func() any {
			expvarCur.mu.Lock()
			reg := expvarCur.reg
			expvarCur.mu.Unlock()
			if reg == nil {
				return nil
			}
			return reg.Snapshot()
		}))
	})
}

// Serve starts an HTTP server for the registry on addr and returns the
// bound address (useful with ":0") plus a shutdown func. It is the
// convenience the CLI and generated programs use for -metrics-addr.
func (r *Registry) Serve(addr string) (string, func(), error) {
	srv := &http.Server{Addr: addr, Handler: r.Handler()}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), func() { _ = srv.Close() }, nil
}
