package obs_test

import (
	"math"
	"sync"
	"testing"

	"spinstreams/internal/core"
	"spinstreams/internal/obs"
	"spinstreams/internal/profiler"
)

// Property tests for the online service-rate estimator: it must never
// invent a rate for a station without occupancy evidence, must degrade to
// low confidence (not garbage) under full saturation, and its confidence
// must grow monotonically with the sample window. Run race-enabled in CI.

// estTick is the synthetic sampling period used by these tests.
const estTick = 0.01

// pipeInfos is a 3-operator pipeline's station identity set: one station
// per op, all single-replica.
func pipeInfos() []obs.StationInfo {
	return []obs.StationInfo{
		{Name: "src", Role: "source", Op: 0, Source: true},
		{Name: "work", Role: "worker", Op: 1},
		{Name: "sink", Role: "worker", Op: 2, Sink: true},
	}
}

// pipeTopology is the declared model matching pipeInfos.
func pipeTopology(t *testing.T) *core.Topology {
	t.Helper()
	topo := core.NewTopology()
	src := topo.MustAddOperator(core.Operator{Name: "src", Kind: core.KindSource, ServiceTime: 2e-3})
	work := topo.MustAddOperator(core.Operator{Name: "work", Kind: core.KindStateless, ServiceTime: 4e-3})
	sink := topo.MustAddOperator(core.Operator{Name: "sink", Kind: core.KindSink, ServiceTime: 1e-3})
	topo.MustConnect(src, work, 1)
	topo.MustConnect(work, sink, 1)
	return topo
}

// TestEstimatorZeroOccupancyNoRate: a station whose queue never holds a
// tuple yields no busy intervals, so the estimator reports no rate for it
// (service time 0, confidence 0) and profiler.Apply keeps the declared
// profile untouched.
func TestEstimatorZeroOccupancyNoRate(t *testing.T) {
	infos := pipeInfos()
	est := obs.NewEstimator(obs.EstimatorConfig{})
	var consumed uint64
	for tick := 0; tick < 50; tick++ {
		samples := []obs.StationSample{
			{Info: infos[0], Consumed: consumed, Emitted: consumed},
			// work and sink drain instantly: depth pinned at zero.
			{Info: infos[1], Queued: 0, Capacity: 64, Consumed: consumed, Emitted: consumed, Arrived: consumed},
			{Info: infos[2], Queued: 0, Capacity: 64, Consumed: consumed, Emitted: consumed, Arrived: consumed},
		}
		if err := est.Observe(estTick, samples); err != nil {
			t.Fatalf("Observe: %v", err)
		}
		consumed += 10
	}
	m, err := est.Measure()
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	for _, op := range []int{1, 2} {
		e := m.Estimates[op]
		if e.BusySamples != 0 || e.Rate != 0 || e.ServiceTime != 0 || e.Confidence != 0 {
			t.Fatalf("op %d with zero occupancy reported busy=%d rate=%g st=%g conf=%g; want all zero",
				op, e.BusySamples, e.Rate, e.ServiceTime, e.Confidence)
		}
	}
	// The source always has work: it must be estimated (10 tuples per 10ms
	// tick = 1000 t/s).
	if src := m.Estimates[0]; math.Abs(src.Rate-1000) > 1e-6 || src.Confidence <= 0 {
		t.Fatalf("source estimate = %+v; want rate 1000 with positive confidence", src)
	}
	// Declared profiles survive the zero-evidence operators.
	topo := pipeTopology(t)
	if err := profiler.Apply(topo, m.Profiles); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if st := topo.Op(core.OpID(1)).ServiceTime; st != 4e-3 {
		t.Fatalf("work declared service time overwritten to %g despite zero evidence", st)
	}
	if st := topo.Op(core.OpID(0)).ServiceTime; math.Abs(st-1e-3) > 1e-12 {
		t.Fatalf("source service time = %g; want measured 1e-3", st)
	}
}

// TestEstimatorSaturationLowConfidence: with every mailbox pinned at
// capacity and every producer stalled on a full downstream buffer, the
// estimator must degrade to "no evidence" — zero rates at zero confidence,
// saturation visible in the sample counts — rather than emitting garbage.
func TestEstimatorSaturationLowConfidence(t *testing.T) {
	infos := pipeInfos()
	est := obs.NewEstimator(obs.EstimatorConfig{})
	for tick := 0; tick < 40; tick++ {
		samples := []obs.StationSample{
			{Info: infos[0], Consumed: 500, Emitted: 500, Blocked: true},
			{Info: infos[1], Queued: 64, Capacity: 64, Consumed: 400, Arrived: 464, Blocked: true},
			// Gridlocked sink: full queue, nothing moving.
			{Info: infos[2], Queued: 64, Capacity: 64, Consumed: 300, Arrived: 364},
		}
		if err := est.Observe(estTick, samples); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	m, err := est.Measure()
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	for op, e := range m.Estimates {
		if e.Rate != 0 || e.ServiceTime != 0 || e.Confidence != 0 {
			t.Fatalf("op %d under saturation reported rate=%g st=%g conf=%g; want zeros", op, e.Rate, e.ServiceTime, e.Confidence)
		}
	}
	if m.Estimates[1].SaturatedSamples == 0 || m.Estimates[2].SaturatedSamples == 0 {
		t.Fatalf("saturation not recorded: %+v", m.Estimates)
	}
	if m.Estimates[0].BlockedSamples == 0 || m.Estimates[1].BlockedSamples == 0 {
		t.Fatalf("blocked regime not recorded: %+v", m.Estimates)
	}
	topo := pipeTopology(t)
	if err := profiler.Apply(topo, m.Profiles); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	for i, want := range []float64{2e-3, 4e-3, 1e-3} {
		if st := topo.Op(core.OpID(i)).ServiceTime; st != want {
			t.Fatalf("op %d service time %g; want declared %g preserved under saturation", i, st, want)
		}
	}
}

// TestEstimatorBlockedExclusion: consumption during backpressure-throttled
// intervals must not dilute the non-blocking rate — the Beard &
// Chamberlain core property. The worker alternates runs of busy ticks
// (10 tuples per tick) and blocked runs (2 tuples per tick); the estimate
// must recover the busy-only rate, not the throughput average.
func TestEstimatorBlockedExclusion(t *testing.T) {
	infos := pipeInfos()
	est := obs.NewEstimator(obs.EstimatorConfig{})
	var consumed uint64
	blockedPhase := false
	for run := 0; run < 8; run++ {
		for tick := 0; tick < 10; tick++ {
			if blockedPhase {
				consumed += 2
			} else {
				consumed += 10
			}
			samples := []obs.StationSample{
				{Info: infos[0], Consumed: consumed, Emitted: consumed},
				{Info: infos[1], Queued: 5, Capacity: 64, Consumed: consumed, Emitted: consumed, Arrived: consumed + 5, Blocked: blockedPhase},
				{Info: infos[2], Queued: 1, Capacity: 64, Consumed: consumed, Emitted: consumed, Arrived: consumed},
			}
			if err := est.Observe(estTick, samples); err != nil {
				t.Fatalf("Observe: %v", err)
			}
		}
		blockedPhase = !blockedPhase
	}
	m, err := est.Measure()
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	// Phase-transition intervals (busy start, blocked end) are credited at
	// the midpoint, so the boundary tick's throttled consumption leaks a
	// few percent into the pool; the estimate must still sit at the busy
	// rate, nowhere near the throughput average.
	work := m.Estimates[1]
	if math.Abs(work.Rate-1000) > 50 {
		t.Fatalf("non-blocking rate = %g; want ~1000 (busy intervals only)", work.Rate)
	}
	// The contaminated average the estimator must NOT report.
	naive := m.Rates.Consumed[1]
	if naive >= 900 {
		t.Fatalf("windowed consumption rate %g should sit well below the non-blocking rate (test is vacuous)", naive)
	}
	if work.BlockedSamples == 0 {
		t.Fatalf("expected blocked intervals to be recorded: %+v", work)
	}
}

// TestEstimatorConvergenceMonotone: under a steady synthetic feed the
// confidence grows monotonically with the number of busy intervals and the
// rate estimate stays pinned on the true value at every window size.
func TestEstimatorConvergenceMonotone(t *testing.T) {
	infos := pipeInfos()
	est := obs.NewEstimator(obs.EstimatorConfig{})
	var consumed uint64
	lastConf := -1.0
	for tick := 0; tick < 60; tick++ {
		consumed += 10
		samples := []obs.StationSample{
			{Info: infos[0], Consumed: consumed, Emitted: consumed},
			{Info: infos[1], Queued: 3, Capacity: 64, Consumed: consumed, Emitted: consumed, Arrived: consumed + 3},
			{Info: infos[2], Queued: 1, Capacity: 64, Consumed: consumed, Emitted: consumed, Arrived: consumed},
		}
		if err := est.Observe(estTick, samples); err != nil {
			t.Fatalf("Observe: %v", err)
		}
		if tick < 2 {
			continue // window not primed until the second sample
		}
		m, err := est.Measure()
		if err != nil {
			t.Fatalf("Measure at tick %d: %v", tick, err)
		}
		work := m.Estimates[1]
		if math.Abs(work.Rate-1000) > 1e-6 {
			t.Fatalf("tick %d: rate %g; want 1000 at every window size", tick, work.Rate)
		}
		if work.Confidence < lastConf {
			t.Fatalf("tick %d: confidence %g < previous %g; must be monotone", tick, work.Confidence, lastConf)
		}
		lastConf = work.Confidence
	}
	if lastConf < 0.8 {
		t.Fatalf("final confidence %g; want > 0.8 after 60 busy intervals", lastConf)
	}
}

// TestEstimatorRetiredFreeze: a station flagged retired mid-window stops
// contributing — its post-retirement counter movement must not leak into
// the op estimate, while a carried replica keeps the estimate alive.
func TestEstimatorRetiredFreeze(t *testing.T) {
	infos := []obs.StationInfo{
		{Name: "src", Role: "source", Op: 0, Source: true},
		{Name: "work/em", Role: "emitter", Op: 1},
		{Name: "work/1", Role: "worker", Op: 1},
		{Name: "work/2", Role: "worker", Op: 1},
		{Name: "work/col", Role: "collector", Op: 1},
		{Name: "sink", Role: "worker", Op: 2, Sink: true},
	}
	est := obs.NewEstimator(obs.EstimatorConfig{})
	var c1, c2 uint64
	feed := func(retired bool) {
		samples := []obs.StationSample{
			{Info: infos[0], Consumed: c1 + c2, Emitted: c1 + c2},
			{Info: infos[1], Queued: 1, Capacity: 64, Consumed: c1 + c2, Emitted: c1 + c2, Arrived: c1 + c2},
			{Info: infos[2], Queued: 4, Capacity: 64, Consumed: c1},
			{Info: infos[3], Queued: 4, Capacity: 64, Consumed: c2, Retired: retired},
			{Info: infos[4], Queued: 0, Capacity: 64, Consumed: c1 + c2, Emitted: c1 + c2},
			{Info: infos[5], Queued: 1, Capacity: 64, Consumed: c1 + c2, Emitted: c1 + c2},
		}
		if err := est.Observe(estTick, samples); err != nil {
			t.Fatalf("Observe: %v", err)
		}
	}
	for tick := 0; tick < 20; tick++ {
		c1 += 10
		c2 += 10
		feed(false)
	}
	// Retire work/2; its counter then jumps absurdly (as if re-read after a
	// redeploy) — none of it may count.
	for tick := 0; tick < 20; tick++ {
		c1 += 10
		c2 += 100000
		feed(true)
	}
	m, err := est.Measure()
	if err != nil {
		t.Fatalf("Measure: %v", err)
	}
	work := m.Estimates[1]
	if math.Abs(work.Rate-1000) > 1e-6 {
		t.Fatalf("pooled rate %g; want 1000 — retired replica's counters leaked in", work.Rate)
	}
	if work.Workers != 1 {
		t.Fatalf("live workers = %d; want 1 after retirement", work.Workers)
	}
}

// TestEstimatorStationGrowth: the station set is append-only (live
// reconfigurations extend it); growing mid-window works, shrinking is an
// error.
func TestEstimatorStationGrowth(t *testing.T) {
	infos := pipeInfos()
	est := obs.NewEstimator(obs.EstimatorConfig{})
	base := func(n int) []obs.StationSample {
		s := make([]obs.StationSample, 0, n)
		for i := 0; i < n; i++ {
			s = append(s, obs.StationSample{Info: infos[i], Queued: 2, Capacity: 64})
		}
		return s
	}
	if err := est.Observe(estTick, base(2)); err != nil {
		t.Fatalf("Observe(2): %v", err)
	}
	if err := est.Observe(estTick, base(3)); err != nil {
		t.Fatalf("Observe(3) after growth: %v", err)
	}
	if err := est.Observe(estTick, base(2)); err == nil {
		t.Fatal("Observe(2) after 3: want error on shrinking station set")
	}
}

// TestEstimatorConcurrentObserveMeasure exercises the estimator's locking
// under the race detector: a sampler goroutine feeding ticks while another
// measures and rolls windows.
func TestEstimatorConcurrentObserveMeasure(t *testing.T) {
	infos := pipeInfos()
	est := obs.NewEstimator(obs.EstimatorConfig{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		var consumed uint64
		for tick := 0; tick < 2000; tick++ {
			consumed += 5
			_ = est.Observe(estTick, []obs.StationSample{
				{Info: infos[0], Consumed: consumed, Emitted: consumed},
				{Info: infos[1], Queued: 2, Capacity: 64, Consumed: consumed, Emitted: consumed, Arrived: consumed},
				{Info: infos[2], Queued: 1, Capacity: 64, Consumed: consumed, Emitted: consumed, Arrived: consumed},
			})
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			_, _ = est.Measure()
			if i%50 == 49 {
				est.BeginWindow()
			}
		}
	}()
	wg.Wait()
	// The measurer may have rolled the window after the feed ended; two
	// more ticks guarantee a non-empty window for the final check.
	for tick := 0; tick < 2; tick++ {
		_ = est.Observe(estTick, []obs.StationSample{
			{Info: infos[0], Consumed: 99999, Emitted: 99999},
			{Info: infos[1], Queued: 2, Capacity: 64, Consumed: 99999, Emitted: 99999, Arrived: 99999},
			{Info: infos[2], Queued: 1, Capacity: 64, Consumed: 99999, Emitted: 99999, Arrived: 99999},
		})
	}
	if _, err := est.Measure(); err != nil {
		t.Fatalf("final Measure: %v", err)
	}
}
