package obs_test

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"testing"

	"spinstreams/internal/core"
	"spinstreams/internal/experiments"
	"spinstreams/internal/obs"
	"spinstreams/internal/opt"
	"spinstreams/internal/plan"
	"spinstreams/internal/profiler"
	"spinstreams/internal/qsim"
)

// Differential validation of the online service-rate estimator against
// qsim ground truth (the probe-free analogue of TestLiveDriftAgainstModel).
//
// Each corpus run builds a random topology, simulates its plan with qsim's
// periodic occupancy sampling enabled, and feeds every sample into an
// obs.Estimator exactly the way the runtime's sampler goroutine would —
// mailbox depth, cumulative counters, blocked-downstream regime — with no
// access to qsim's internal service clocks (the live estimator has no
// probes either). The reconstructed per-operator service rate is then
// compared with the rate the simulator was actually configured with
// (1/ServiceTime): the busy-interval conditioning must recover the
// non-blocking rate even for operators that are idle or backpressured
// most of the window (Beard & Chamberlain's mean-queue/regime argument).
//
// Documented error bounds, pooled over the whole corpus (>= 100 seed x
// workload runs, steady/bursty/hotkey envelopes), confident non-source
// operators only:
//
//   - per-operator service-rate relative error: median <= 10%, p95 <= 25%.
//     The tail is evidence scarcity: a lightly loaded operator's busy
//     evidence comes from rare residual-life episodes (one waiting tuple,
//     one completion, a heavily skewed random duration), so its estimate
//     converges like 1/sqrt(completions). The confidence floor is
//     calibrated to that: with confidence n/(n+8) on n = min(evidence
//     intervals, completions), a floor of 0.60 admits only estimates
//     backed by >= 12 completions (~30% standard error for a single
//     estimate, consistent with a 25% p95 over the pool).
//
// On top of the rate bound, re-optimization must be insensitive to the
// substitution: opt.Reoptimize fed the estimated profiles (with their
// confidences) must identify the same bottleneck operator as when fed the
// exact profiles, on >= 90% of runs, starting from a deliberately
// *misdeclared* topology (declared service times perturbed by a seeded
// factor in [0.6, 1.8]) so agreement cannot come from the declaration
// leaking through the blend. The comparison ranges over non-source
// operators — fission cannot replicate a source, and a source's estimated
// rate deliberately tracks the envelope-modulated offered load (a source
// idling through a burst trough is indistinguishable from a slow one
// without probes). Two operators within 10% utilization of each other
// count as a tie: at that separation the est-fed and true-fed runs pick
// interchangeable bottlenecks, and so would two probe runs.
const (
	estDiffMedianTol  = 0.10 // pooled per-operator rate error, median
	estDiffP95Tol     = 0.25 // pooled per-operator rate error, p95
	estDiffOrderAgree = 0.90 // fraction of runs with matching bottleneck
	estDiffRhoTie     = 0.10 // bottleneck tie tolerance on true rho
	estDiffConfFloor  = 0.60 // >= 12 completions of evidence (see calibration above)
	estDiffSample     = 1e-3 // qsim sampling tick (seconds), as the runtime default
	estDiffHorizon    = 8.0  // simulated seconds per run
	estDiffSeeds      = 34   // x3 workloads = 102 runs
)

// estDiffWorkloads is the envelope sweep: steady load, 4x bursts at 25%
// duty, and hot-key skew (exercises the partitioned-stateful frequency
// rewrite; with single replicas it must be rate-neutral).
func estDiffWorkloads() []experiments.Workload {
	return []experiments.Workload{
		experiments.Steady(),
		experiments.Bursty(4, 0.25, 2),
		experiments.HotKeySkew(0.6),
	}
}

// estDiffRun is one seed x workload outcome.
type estDiffRun struct {
	errs       []float64 // rate errors of confident non-source operators
	lowConf    int       // operators excluded by the confidence floor
	orderOK    bool      // est-fed and true-fed Reoptimize agree on the bottleneck
	confident  int
	totalOps   int
}

// simulateEstimator runs qsim over the deployed topology's plan and feeds
// the sampling stream into a fresh estimator, returning its measurement.
func simulateEstimator(t *testing.T, deployed *core.Topology, w experiments.Workload, seed uint64) *obs.Measurement {
	t.Helper()
	p, err := plan.Build(deployed, plan.Options{})
	if err != nil {
		t.Fatalf("seed %d/%s: plan: %v", seed, w.Name, err)
	}
	// The same station descriptors the runtime hands the registry: the
	// estimator groups and pools by Info, not by qsim internals.
	infos := make([]obs.StationInfo, len(p.Stations))
	for i := range p.Stations {
		st := &p.Stations[i]
		infos[i] = obs.StationInfo{
			Name:   st.Name,
			Role:   st.Role.String(),
			Op:     int(st.Op),
			Source: st.Role == plan.RoleSource,
			Sink:   len(st.Out) == 0,
		}
	}
	est := obs.NewEstimator(obs.EstimatorConfig{})
	prev := 0.0
	var buf []obs.StationSample
	var observeErr error
	cfg := qsim.Config{
		Seed:         seed,
		Horizon:      estDiffHorizon,
		SampleEvery:  estDiffSample,
		RateEnvelope: w.Envelope,
		OnSample: func(now float64, sts []qsim.Sample) {
			dt := now - prev
			prev = now
			if dt <= 0 {
				return
			}
			buf = buf[:0]
			for _, s := range sts {
				buf = append(buf, obs.StationSample{
					Info:     infos[s.Station],
					Queued:   uint64(s.Queued),
					Capacity: uint64(s.Capacity),
					Consumed: s.Consumed,
					Emitted:  s.Emitted,
					Arrived:  s.Arrived,
					Dropped:  s.Dropped,
					Blocked:  s.Blocked,
				})
			}
			if err := est.Observe(dt, buf); err != nil && observeErr == nil {
				observeErr = err
			}
		},
	}
	if _, err := qsim.Simulate(p, cfg); err != nil {
		t.Fatalf("seed %d/%s: simulate: %v", seed, w.Name, err)
	}
	if observeErr != nil {
		t.Fatalf("seed %d/%s: observe: %v", seed, w.Name, observeErr)
	}
	m, err := est.Measure()
	if err != nil {
		t.Fatalf("seed %d/%s: measure: %v", seed, w.Name, err)
	}
	return m
}

// misdeclare clones the topology with each operator's declared service
// time scaled by a seeded factor in [0.6, 1.8] — the "model drifted from
// reality" starting point the estimator exists to correct.
func misdeclare(topo *core.Topology, seed uint64) *core.Topology {
	mis := topo.Clone()
	rng := rand.New(rand.NewSource(int64(seed)*2654435761 + 97))
	for i := 0; i < mis.Len(); i++ {
		mis.Op(core.OpID(i)).ServiceTime *= 0.6 + 1.2*rng.Float64()
	}
	return mis
}

// bottleneckOf returns the non-source operator with the highest baseline
// utilization in a re-optimization result (replicas all one on the
// reprofiled input) — the operator fission would attack first.
func bottleneckOf(res *opt.Result, topo *core.Topology) int {
	best, bestRho := -1, -1.0
	for i, rho := range res.Baseline.Rho {
		if topo.Op(core.OpID(i)).Kind == core.KindSource {
			continue
		}
		if rho > bestRho {
			best, bestRho = i, rho
		}
	}
	return best
}

func runEstimatorDifferential(t *testing.T, seed uint64, w experiments.Workload) estDiffRun {
	t.Helper()
	deployed := w.Apply(genTopology(t, seed))
	m := simulateEstimator(t, deployed, w, seed)

	run := estDiffRun{totalOps: deployed.Len()}
	for i := 0; i < deployed.Len(); i++ {
		op := deployed.Op(core.OpID(i))
		if op.Kind == core.KindSource {
			// A source's busy rate tracks the envelope-modulated offered
			// load, not 1/ServiceTime; sources are profiled, not bounded.
			continue
		}
		if m.Confidence[i] < estDiffConfFloor {
			run.lowConf++
			continue
		}
		run.confident++
		trueRate := 1 / op.ServiceTime
		run.errs = append(run.errs, math.Abs(m.Estimates[i].Rate-trueRate)/trueRate)
	}

	// Bottleneck agreement under misdeclaration: feed Reoptimize the
	// estimated profiles (confidence-blended against the *wrong* declared
	// times) and the exact profiles, and compare which operator each run
	// crowns the bottleneck.
	mis := misdeclare(deployed, seed)
	repEst, err := obs.DriftFromProfiles(mis, nil, m.Rates, m.Profiles, m.Confidence)
	if err != nil {
		t.Fatalf("seed %d/%s: drift (estimated): %v", seed, w.Name, err)
	}
	deltaEst, err := opt.Reoptimize(opt.NewSnapshot(mis), repEst, opt.Options{})
	if err != nil {
		t.Fatalf("seed %d/%s: reoptimize (estimated): %v", seed, w.Name, err)
	}
	trueProfiles := make([]profiler.Profile, deployed.Len())
	for i := range trueProfiles {
		trueProfiles[i].ServiceTime = deployed.Op(core.OpID(i)).ServiceTime
	}
	repTrue, err := obs.DriftFromProfiles(mis, nil, m.Rates, trueProfiles, nil)
	if err != nil {
		t.Fatalf("seed %d/%s: drift (true): %v", seed, w.Name, err)
	}
	deltaTrue, err := opt.Reoptimize(opt.NewSnapshot(mis), repTrue, opt.Options{})
	if err != nil {
		t.Fatalf("seed %d/%s: reoptimize (true): %v", seed, w.Name, err)
	}
	estTop, trueTop := bottleneckOf(deltaEst.Result, mis), bottleneckOf(deltaTrue.Result, mis)
	trueRho := deltaTrue.Result.Baseline.Rho
	run.orderOK = estTop == trueTop ||
		(estTop >= 0 && trueTop >= 0 && trueRho[estTop] >= trueRho[trueTop]*(1-estDiffRhoTie))
	return run
}

// TestEstimatorDifferentialQsim sweeps the corpus and holds the pooled
// errors and the bottleneck-agreement rate to the documented bounds.
func TestEstimatorDifferentialQsim(t *testing.T) {
	if testing.Short() {
		t.Skip("estimator differential corpus skipped in -short mode")
	}
	seeds := uint64(estDiffSeeds)
	if os.Getenv("SS_ESTIMATOR_SMOKE") == "1" {
		seeds = 4 // race-enabled CI slice: coverage, not statistics
	}
	var pooled []float64
	runs, agree := 0, 0
	confident, lowConf := 0, 0
	for seed := uint64(1); seed <= seeds; seed++ {
		for _, w := range estDiffWorkloads() {
			w := w
			run := runEstimatorDifferential(t, seed, w)
			pooled = append(pooled, run.errs...)
			runs++
			if run.orderOK {
				agree++
			}
			confident += run.confident
			lowConf += run.lowConf
		}
	}
	if seeds == estDiffSeeds && runs < 100 {
		t.Fatalf("corpus too small: %d runs, want >= 100", runs)
	}
	if len(pooled) < runs {
		// The bounds are only meaningful if the floor is not silently
		// excluding the corpus: demand at least one confident operator
		// per run on average.
		t.Fatalf("only %d confident operator estimates over %d runs (%d below confidence floor %.2f)",
			len(pooled), runs, lowConf, estDiffConfFloor)
	}
	sort.Float64s(pooled)
	median := pooled[len(pooled)/2]
	p95 := pooled[(len(pooled)*95)/100]
	t.Logf("corpus: %d runs, %d confident ops (%d below floor); rate error median %.2f%% p95 %.2f%% max %.2f%%; bottleneck agreement %d/%d",
		runs, confident, lowConf, median*100, p95*100, pooled[len(pooled)-1]*100, agree, runs)
	if median > estDiffMedianTol {
		t.Errorf("median service-rate error %.2f%% > %.0f%%", median*100, estDiffMedianTol*100)
	}
	if p95 > estDiffP95Tol {
		t.Errorf("p95 service-rate error %.2f%% > %.0f%%", p95*100, estDiffP95Tol*100)
	}
	if frac := float64(agree) / float64(runs); frac < estDiffOrderAgree {
		t.Errorf("bottleneck agreement %.1f%% (%d/%d) < %.0f%%", frac*100, agree, runs, estDiffOrderAgree*100)
	}
}

// TestEstimatorDifferentialNoProbes pins the probe-free claim on the
// differential path itself: the estimator's profiles must carry service
// times reconstructed purely from occupancy samples — the qsim feed has
// no Service histogram at all, so a regression that silently falls back
// to probe data would surface here as zero service times everywhere.
func TestEstimatorDifferentialNoProbes(t *testing.T) {
	w := experiments.Steady()
	deployed := w.Apply(genTopology(t, 1))
	m := simulateEstimator(t, deployed, w, 1)
	withRate := 0
	for i := range m.Profiles {
		if m.Profiles[i].ServiceTime > 0 {
			withRate++
			if m.Confidence[i] <= 0 {
				t.Errorf("op %d: service time %.4fms with zero confidence", i, m.Profiles[i].ServiceTime*1e3)
			}
		}
	}
	if withRate == 0 {
		t.Fatal("no operator got an occupancy-derived service time")
	}
	if fmt.Sprint(m.Seconds) == "0" || m.Seconds < estDiffHorizon/2 {
		t.Errorf("window covered %.2fs of the %.0fs horizon", m.Seconds, estDiffHorizon)
	}
}
