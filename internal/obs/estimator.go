package obs

import (
	"errors"
	"fmt"
	"sync"

	"spinstreams/internal/profiler"
)

// Online service-rate estimation, after Beard & Chamberlain ("Run Time
// Approximation of Non-blocking Service Rates for Streaming Systems"):
// instead of timing individual tuple services (the probe path) or running
// an offline profiling pass, the estimator periodically samples every
// station's mailbox occupancy — a cheap atomic read the dataplane already
// accounts — and classifies each inter-sample interval into a regime:
//
//	busy     the station entered the interval with queued work and was not
//	         throttled by downstream backpressure; tuples consumed during
//	         busy intervals ran at the station's true non-blocking rate
//	idle     the queue was dry when the interval began; the station may
//	         have been starved, so its consumption rate says nothing
//	         about its service capacity
//	blocked  a downstream mailbox was full when the interval began;
//	         consumption was paced by the bottleneck, not by this station
//
// Classification conditions on the interval's *start* state only. That is
// deliberate: selecting intervals on their end state is anti-causal and
// length-biases the pool — a completion typically drains the queue, so
// requiring the queue non-empty at both endpoints systematically discards
// exactly the intervals that carry completions and keeps mid-service
// slivers, underestimating the rate badly on moderately loaded stations.
// A start-conditioned (previsible) selection cannot bias the completion
// rate: a station that begins an interval with queued work serves
// continuously through it, up to a possible backpressure onset — which is
// corrected by halving the interval's busy-time credit when the end
// sample is blocked (midpoint estimate of the stall onset).
//
// Two further refinements harden the pool against live-runtime regimes:
//
//   - Rate evidence requires a busy RUN of at least two intervals. With
//     near-deterministic service and phase-locked arrivals (a replica fed
//     round-robin below saturation), the queue is non-empty only in short
//     slivers immediately before a completion; sampling inside such a
//     sliver all but guarantees a completion in the next tick, inflating
//     the rate. Requiring the prior interval to have been busy too —
//     still a condition on the past — admits only sustained congestion,
//     where the completion rate over the credited time is the service
//     rate for any service distribution.
//
//   - Evidence persists across measurement windows with exponential decay
//     (CarryDecay per BeginWindow), pooled over all of an operator's
//     stations including retired ones. The service capacity is a property
//     of the operator, not of a particular epoch's stations: after a
//     rescale halves each replica's load, a single window may hold almost
//     no fresh busy evidence, and without carry the autotune loop would
//     re-trust the (wrong) declared profile and oscillate.
//
// The non-blocking service rate is then reconstructed as the tuples
// consumed during busy intervals divided by the busy time, pooled over a
// logical operator's worker stations; selectivities fall out of the
// windowed consumed/emitted counter deltas, which need no regime filter.
// Each estimate carries a confidence in [0,1) that grows with the number
// of busy intervals observed — an operator that never accumulates queue
// (or is always saturated) yields confidence 0 and service time 0, which
// profiler.Apply treats as "keep the declared profile", so the estimator
// degrades to the static model instead of to garbage.

// StationSample is one periodic observation of one station: identity,
// instantaneous mailbox gauges, and cumulative tuple counters.
type StationSample struct {
	// Info is the station's identity; it must be stable per index across
	// Observe calls (station indices are append-only, like the registry's).
	Info StationInfo
	// Queued and Capacity are the station inbox's instantaneous depth and
	// BAS bound in tuples.
	Queued, Capacity uint64
	// Consumed, Emitted, Arrived and Dropped are the station's cumulative
	// (lifetime) tuple counters at sample time.
	Consumed, Emitted, Arrived, Dropped uint64
	// Blocked reports that at sample time the station's output was
	// throttled: some downstream inbox it sends into was full.
	Blocked bool
	// Retired reports that a live reconfiguration drained and stopped the
	// station; the estimator freezes its accumulators.
	Retired bool
}

// EstimatorConfig tunes the regime classifier and the confidence model.
type EstimatorConfig struct {
	// BusyDepth is the minimum queue depth at the start of an interval for
	// the interval to count as busy (default 1).
	BusyDepth uint64
	// SaturationFrac is the fraction of capacity above which a sample
	// counts as saturated (default: the drift report's saturation band).
	SaturationFrac float64
	// ConfidencePrior is the pseudo-count K in the confidence model
	// evidence/(evidence+K) (default 8): how many evidence intervals an
	// estimate needs before it outweighs the declared profile.
	ConfidencePrior float64
	// CarryDecay is the fraction of accumulated rate evidence BeginWindow
	// carries into the next window (default 0.5; negative for 0 — strict
	// per-window evidence; values above 1 clamp to 1 — never forget).
	CarryDecay float64
}

func (c EstimatorConfig) withDefaults() EstimatorConfig {
	if c.BusyDepth == 0 {
		c.BusyDepth = 1
	}
	if c.SaturationFrac <= 0 {
		c.SaturationFrac = saturationRho
	}
	if c.ConfidencePrior <= 0 {
		c.ConfidencePrior = 8
	}
	switch {
	case c.CarryDecay < 0:
		c.CarryDecay = 0
	case c.CarryDecay == 0:
		c.CarryDecay = 0.5
	case c.CarryDecay > 1:
		c.CarryDecay = 1
	}
	return c
}

// estStation accumulates one station's regime statistics over the current
// measurement window.
type estStation struct {
	info    StationInfo
	seen    bool
	retired bool
	// prev is the latest sample; base holds the cumulative counters at the
	// start of the window (or at first sight, for stations added mid-window
	// by a live reconfiguration).
	prev, base StationSample

	// busyRun counts consecutive busy-classified intervals ending at prev;
	// only the second and later intervals of a run contribute evidence.
	busyRun int

	// Rate evidence: busy time, completions during it and evidence-interval
	// count. Carried (decayed) across windows, frozen on retirement.
	evSeconds  float64
	evConsumed float64
	evSamples  float64

	// Per-window regime diagnostics.
	samples          int
	busySamples      int
	blockedSamples   int
	saturatedSamples int
}

// Estimator reconstructs non-blocking service rates and selectivities from
// periodic occupancy samples. All methods are safe for concurrent use; the
// runtime's sampler goroutine feeds Observe while the autotune loop calls
// BeginWindow/Measure.
type Estimator struct {
	cfg EstimatorConfig

	mu            sync.Mutex
	sts           []*estStation
	primed        bool
	windowSeconds float64
}

// NewEstimator returns an estimator with the given configuration (zero
// value for defaults).
func NewEstimator(cfg EstimatorConfig) *Estimator {
	return &Estimator{cfg: cfg.withDefaults()}
}

// Observe ingests one sampling tick: samples[i] describes station i,
// dtSeconds is the time since the previous tick. Station indices are
// append-only — the slice may grow between calls (live reconfiguration
// adding stations) but never shrink; new stations start accumulating from
// their first sample.
func (e *Estimator) Observe(dtSeconds float64, samples []StationSample) error {
	if dtSeconds <= 0 {
		return fmt.Errorf("obs: non-positive sampling interval %v", dtSeconds)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if len(samples) < len(e.sts) {
		return fmt.Errorf("obs: estimator observed %d stations, previously %d", len(samples), len(e.sts))
	}
	for len(e.sts) < len(samples) {
		e.sts = append(e.sts, &estStation{})
	}
	if e.primed {
		e.windowSeconds += dtSeconds
	}
	for i := range samples {
		s := samples[i]
		st := e.sts[i]
		if !st.seen {
			st.seen = true
			st.info = s.Info
			st.prev, st.base = s, s
			st.retired = s.Retired
			continue
		}
		if s.Retired {
			// Freeze: the station drained and stopped; its counters stay in
			// lifetime totals but contribute no further regime statistics.
			st.retired = true
			st.prev = s
			continue
		}
		busy := !st.prev.Blocked
		if !s.Info.Source {
			busy = busy && st.prev.Queued >= e.cfg.BusyDepth
		}
		st.samples++
		if st.prev.Blocked || s.Blocked {
			st.blockedSamples++
		}
		if busy {
			st.busySamples++
			st.busyRun++
			// Only the second and later intervals of a busy run carry rate
			// evidence: a one-interval run is a congestion sliver whose
			// sampling is correlated with an imminent completion.
			if st.busyRun >= 2 {
				st.evSamples++
				if s.Blocked {
					// Backpressure set in mid-interval: the station served only
					// part of it. The onset instant is unobservable; credit the
					// midpoint. Completions still count in full — they can only
					// have happened while serving.
					st.evSeconds += dtSeconds / 2
				} else {
					st.evSeconds += dtSeconds
				}
				// Counters are monotone (registry cells survive restarts and
				// epoch swaps); guard the delta anyway — a wrapped uint64 here
				// would poison the whole window's rate.
				if s.Consumed > st.prev.Consumed {
					st.evConsumed += float64(s.Consumed - st.prev.Consumed)
				}
			}
		} else {
			st.busyRun = 0
		}
		if s.Capacity > 0 && float64(s.Queued) >= e.cfg.SaturationFrac*float64(s.Capacity) {
			st.saturatedSamples++
		}
		st.prev = s
	}
	e.primed = true
	return nil
}

// BeginWindow starts a new measurement window: counter baselines move to
// each station's latest sample, the regime diagnostics reset, and the rate
// evidence decays by CarryDecay. The autotune loop calls it at the start of
// each measurement round.
func (e *Estimator) BeginWindow() {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.windowSeconds = 0
	for _, st := range e.sts {
		if !st.seen {
			continue
		}
		st.base = st.prev
		// Rate evidence ages out instead of vanishing: the service capacity
		// it measures is a property of the operator, not of the window.
		st.evSeconds *= e.cfg.CarryDecay
		st.evConsumed *= e.cfg.CarryDecay
		st.evSamples *= e.cfg.CarryDecay
		st.samples = 0
		st.busySamples = 0
		st.blockedSamples = 0
		st.saturatedSamples = 0
	}
}

// RateEstimate is one logical operator's reconstructed figures.
type RateEstimate struct {
	// Op is the logical operator; Name is its first worker station's name.
	Op   int
	Name string
	// Rate is the estimated per-replica non-blocking service rate in
	// tuples/s (0 when no busy intervals were observed); ServiceTime is its
	// reciprocal in seconds.
	Rate, ServiceTime float64
	// Gain is the windowed emitted/consumed ratio (measured selectivity).
	Gain float64
	// Confidence in [0,1) grows with the number of evidence intervals:
	// n/(n+K). 0 means "no evidence — keep the declared profile".
	Confidence float64
	// BusySeconds is the accumulated (carry-decayed) rate-evidence time
	// pooled across all of the operator's stations, including retired ones;
	// Samples/BusySamples/BlockedSamples/SaturatedSamples count the current
	// window's classified intervals on live stations (saturation overlaps
	// the other regimes).
	BusySeconds                                            float64
	Samples, BusySamples, BlockedSamples, SaturatedSamples int
	// Workers is the number of live worker stations pooled.
	Workers int
}

// Measurement is one window's estimator output: the same per-operator
// measured rates the registry's window marks produce, plus reconstructed
// profiles with per-operator confidences, ready for DriftFromProfiles.
type Measurement struct {
	// Seconds is the accumulated sampling time in the window.
	Seconds float64
	// Rates are per-operator windowed counter rates (probe-free — derived
	// purely from sampled cumulative counters).
	Rates *MeasuredRates
	// Profiles are the reconstructed per-operator profiles; ServiceTime is
	// 0 for operators with no busy evidence (profiler.Apply keeps the
	// declared value).
	Profiles []profiler.Profile
	// Confidence is the per-operator confidence, aligned with Profiles.
	Confidence []float64
	// Estimates is the full per-operator detail.
	Estimates []RateEstimate
}

// Measure reconstructs the window's measurement. It never invents rates:
// operators without busy evidence get ServiceTime 0 and confidence 0.
func (e *Estimator) Measure() (*Measurement, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.windowSeconds <= 0 {
		return nil, errors.New("obs: estimator has no completed sampling intervals in this window")
	}
	begin := &Snapshot{Stations: make([]StationSnapshot, len(e.sts))}
	end := &Snapshot{Stations: make([]StationSnapshot, len(e.sts))}
	for i, st := range e.sts {
		begin.Stations[i] = syntheticSnapshot(st.info, st.base, st.retired)
		end.Stations[i] = syntheticSnapshot(st.info, st.prev, st.retired)
	}
	rates, err := RatesBetween(begin, end, e.windowSeconds)
	if err != nil {
		return nil, err
	}
	groups, err := groupOps(end.Stations)
	if err != nil {
		return nil, err
	}
	m := &Measurement{
		Seconds:    e.windowSeconds,
		Rates:      rates,
		Profiles:   make([]profiler.Profile, len(groups)),
		Confidence: make([]float64, len(groups)),
		Estimates:  make([]RateEstimate, len(groups)),
	}
	// Rate evidence pools over every station the operator has ever run,
	// retired ones included: the non-blocking service rate is replica- and
	// epoch-invariant, and after a rescale the freshly underloaded replicas
	// may take several windows to accumulate busy runs of their own.
	evSec := make([]float64, len(groups))
	evCons := make([]float64, len(groups))
	evN := make([]float64, len(groups))
	for _, st := range e.sts {
		if !st.seen || st.info.Op < 0 || st.info.Op >= len(groups) {
			continue
		}
		if st.info.Role != "source" && st.info.Role != "worker" {
			continue
		}
		evSec[st.info.Op] += st.evSeconds
		evCons[st.info.Op] += st.evConsumed
		evN[st.info.Op] += st.evSamples
	}
	for op, g := range groups {
		est := &m.Estimates[op]
		est.Op = op
		est.Workers = len(g.workers)
		est.BusySeconds = evSec[op]
		var consumed, emitted uint64
		for _, i := range g.workers {
			st := e.sts[i]
			est.Samples += st.samples
			est.BusySamples += st.busySamples
			est.BlockedSamples += st.blockedSamples
			est.SaturatedSamples += st.saturatedSamples
			consumed += st.prev.Consumed - st.base.Consumed
		}
		for _, i := range g.outSide {
			st := e.sts[i]
			emitted += st.prev.Emitted - st.base.Emitted
		}
		if len(g.workers) > 0 {
			est.Name = end.Stations[g.workers[0]].Name
		}
		if evSec[op] > 0 && evCons[op] > 0 {
			est.Rate = evCons[op] / evSec[op]
			est.ServiceTime = 1 / est.Rate
			// The rate is a completion count over an observed exposure; its
			// relative error shrinks with both, so confidence is gated on
			// whichever is scarcer (many near-empty intervals prove as
			// little as one long one).
			n := evN[op]
			if evCons[op] < n {
				n = evCons[op]
			}
			est.Confidence = n / (n + e.cfg.ConfidencePrior)
		}
		if consumed > 0 {
			est.Gain = float64(emitted) / float64(consumed)
		}
		p := &m.Profiles[op]
		p.ServiceTime = est.ServiceTime
		p.Consumed, p.Emitted = consumed, emitted
		p.Gain = est.Gain
		p.InputSelectivity = 1
		p.OutputSelectivity = est.Gain
		m.Confidence[op] = est.Confidence
	}
	return m, nil
}

// Estimates returns the current window's per-operator estimates (a
// convenience wrapper over Measure for displays and tests).
func (e *Estimator) Estimates() ([]RateEstimate, error) {
	m, err := e.Measure()
	if err != nil {
		return nil, err
	}
	return m.Estimates, nil
}

// WindowSeconds returns the accumulated sampling time in the current
// window.
func (e *Estimator) WindowSeconds() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.windowSeconds
}

// syntheticSnapshot lifts a station sample into the snapshot shape the
// rate/profile machinery consumes (counters and gauges only — histogram
// summaries stay empty: the whole point is that no per-tuple timing
// exists).
func syntheticSnapshot(info StationInfo, s StationSample, retired bool) StationSnapshot {
	return StationSnapshot{
		StationInfo: info,
		Consumed:    s.Consumed,
		Emitted:     s.Emitted,
		Arrived:     s.Arrived,
		Dropped:     s.Dropped,
		Retired:     retired,
		Queued:      s.Queued,
		Capacity:    s.Capacity,
	}
}
