package obs

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"spinstreams/internal/core"
	"spinstreams/internal/profiler"
	"spinstreams/internal/stats"
)

// Drift reporting closes the paper's workflow loop: the static optimizer
// consumes profiled service times and selectivities (Section 4.1), the
// steady-state analysis predicts per-operator rates (Algorithm 1), and the
// registry measures what the live runtime actually did. DriftReport puts
// the three side by side — predicted vs measured departure rates and
// utilizations per logical operator — and re-runs the analysis on profiles
// rebuilt from the measurements, so a model that drifted from reality is
// caught by its own numbers.

// MeasuredRates are per-logical-operator rates measured over a window,
// aggregated from station counters exactly like the runtime's Metrics
// view (collector emissions for replicated operators, entry-station
// arrivals).
type MeasuredRates struct {
	// Seconds is the window length.
	Seconds float64
	// Departure, Arrival, Dropped and Consumed are items/s per logical
	// operator (indexed by OpID).
	Departure, Arrival, Dropped, Consumed []float64
	// Throughput is the source operator's departure rate.
	Throughput float64
}

// opGroup indexes one logical operator's stations within a snapshot.
type opGroup struct {
	// entry receives the operator's input (emitter when replicated).
	entry int
	// outSide emits the operator's output (the collector when replicated,
	// else the workers).
	outSide []int
	// workers execute the operator (the source station for the source op).
	workers []int
}

// groupOps rebuilds the per-operator station structure from snapshot
// roles. nOps is the number of logical operators.
func groupOps(sts []StationSnapshot) ([]opGroup, error) {
	nOps := 0
	for i := range sts {
		if sts[i].Op+1 > nOps {
			nOps = sts[i].Op + 1
		}
	}
	groups := make([]opGroup, nOps)
	for i := range groups {
		groups[i].entry = -1
	}
	collectors := make([]int, nOps)
	for i := range collectors {
		collectors[i] = -1
	}
	for i := range sts {
		ss := &sts[i]
		if ss.Op < 0 {
			return nil, fmt.Errorf("obs: station %d (%s) has negative op", i, ss.Name)
		}
		if ss.Retired {
			// Stations a live reconfiguration drained and stopped: their
			// lifetime counters stay in Totals, but rates and profiles
			// must reflect the structure currently flowing.
			continue
		}
		g := &groups[ss.Op]
		switch ss.Role {
		case "source", "worker":
			g.workers = append(g.workers, i)
			if g.entry < 0 {
				g.entry = i
			}
		case "emitter":
			g.entry = i
		case "collector":
			collectors[ss.Op] = i
		default:
			return nil, fmt.Errorf("obs: station %d (%s) has unknown role %q", i, ss.Name, ss.Role)
		}
	}
	for op := range groups {
		if c := collectors[op]; c >= 0 {
			groups[op].outSide = []int{c}
		} else {
			groups[op].outSide = groups[op].workers
		}
	}
	return groups, nil
}

// RatesBetween computes per-operator measured rates from two snapshots of
// the same bound registry taken seconds apart (begin may be nil for
// rates since bind).
func RatesBetween(begin, end *Snapshot, seconds float64) (*MeasuredRates, error) {
	if end == nil {
		return nil, errors.New("obs: nil end snapshot")
	}
	if seconds <= 0 {
		return nil, fmt.Errorf("obs: non-positive window %v", seconds)
	}
	if begin != nil && len(begin.Stations) != len(end.Stations) {
		return nil, fmt.Errorf("obs: snapshots cover %d and %d stations",
			len(begin.Stations), len(end.Stations))
	}
	groups, err := groupOps(end.Stations)
	if err != nil {
		return nil, err
	}
	diff := func(get func(*StationSnapshot) uint64, i int) float64 {
		v := get(&end.Stations[i])
		if begin != nil {
			v -= get(&begin.Stations[i])
		}
		return float64(v) / seconds
	}
	m := &MeasuredRates{
		Seconds:   seconds,
		Departure: make([]float64, len(groups)),
		Arrival:   make([]float64, len(groups)),
		Dropped:   make([]float64, len(groups)),
		Consumed:  make([]float64, len(groups)),
	}
	srcOp := -1
	for op, g := range groups {
		for _, i := range g.outSide {
			m.Departure[op] += diff(func(s *StationSnapshot) uint64 { return s.Emitted }, i)
		}
		for _, i := range g.workers {
			m.Consumed[op] += diff(func(s *StationSnapshot) uint64 { return s.Consumed }, i)
			if end.Stations[i].Source {
				srcOp = op
			}
		}
		if g.entry >= 0 {
			m.Arrival[op] = diff(func(s *StationSnapshot) uint64 { return s.Arrived }, g.entry)
			m.Dropped[op] = diff(func(s *StationSnapshot) uint64 { return s.Dropped }, g.entry)
		}
	}
	if srcOp >= 0 {
		m.Throughput = m.Departure[srcOp]
	}
	return m, nil
}

// WindowRates derives the measured rates from the registry's
// measurement-window marks (the engine places them around its
// steady-state window).
func (r *Registry) WindowRates() (*MeasuredRates, error) {
	begin, end, seconds, ok := r.Window()
	if !ok {
		return nil, errors.New("obs: no measurement window marked (run not finished?)")
	}
	return RatesBetween(begin, end, seconds)
}

// Profiles converts the snapshot back into per-operator measured profiles,
// the inverse of the paper's profiling step: ServiceTime is the sampled
// service-time mean of the operator's workers (0 when no samples were
// recorded, e.g. sampling disabled), Consumed/Emitted are the lifetime
// tuple counts, and the measured gain is reported as the output
// selectivity (the cost model only consumes the ratio).
func (s *Snapshot) Profiles() ([]profiler.Profile, error) {
	groups, err := groupOps(s.Stations)
	if err != nil {
		return nil, err
	}
	out := make([]profiler.Profile, len(groups))
	for op, g := range groups {
		p := &out[op]
		var stSum, stCount uint64
		for _, i := range g.workers {
			ss := &s.Stations[i]
			p.Consumed += ss.Consumed
			stSum += ss.Service.Sum
			stCount += ss.Service.Count
		}
		for _, i := range g.outSide {
			p.Emitted += s.Stations[i].Emitted
		}
		if stCount > 0 {
			p.ServiceTime = float64(stSum) / float64(stCount) * 1e-9
		}
		if p.Consumed > 0 {
			p.Gain = float64(p.Emitted) / float64(p.Consumed)
		}
		p.InputSelectivity = 1
		p.OutputSelectivity = p.Gain
	}
	return out, nil
}

// DriftRow is one logical operator's predicted-vs-measured comparison.
type DriftRow struct {
	Op   int
	Name string
	// Predicted and Measured are departure rates in items/s.
	Predicted, Measured float64
	// RelErr is |measured-predicted|/predicted.
	RelErr float64
	// PredictedRho is the model's utilization; MeasuredRho is the measured
	// consume rate times the measured mean service time (0 when no service
	// samples exist).
	PredictedRho, MeasuredRho float64
	// Saturated marks operators the model puts at (or next to) full
	// utilization; their measured rates ride the backpressure boundary and
	// carry more variance than interior operators.
	Saturated bool
}

// DriftReport compares a steady-state prediction against measured rates
// and against a re-analysis on measured profiles.
type DriftReport struct {
	Rows []DriftRow
	// PredictedThroughput vs MeasuredThroughput compare the source rates.
	PredictedThroughput, MeasuredThroughput, ThroughputErr float64
	// MeanErr and MaxErr summarize departure-rate error over non-saturated
	// operators (the acceptance band of the validation suite).
	MeanErr, MaxErr float64
	// Reanalyzed is the steady state recomputed on profiles rebuilt from
	// the measurements; RepredictedThroughput/RepredictionErr compare its
	// throughput back to the measurement, closing the loop.
	Reanalyzed            *core.Analysis
	RepredictedThroughput float64
	RepredictionErr       float64
	// MeasuredProfiles are the per-operator profiles rebuilt from the
	// end-of-window snapshot (nil when no snapshot was supplied). They are
	// what opt.Reoptimize substitutes into the topology before re-running
	// the optimizer.
	MeasuredProfiles []profiler.Profile
	// ProfileConfidence, when non-nil, weights MeasuredProfiles per
	// operator in [0,1]: 1 means trust the measurement outright, 0 means
	// keep the declared profile. The probe path leaves it nil (timed
	// samples are direct measurements); the online estimator fills it so
	// opt.Reoptimize can blend low-evidence estimates toward the declared
	// model instead of acting on noise.
	ProfileConfidence []float64
	// Replicas are the replication degrees the prediction (and the live
	// run) used; nil means all ones.
	Replicas []int
	// Seconds is the measurement window.
	Seconds float64
}

// saturationRho is the utilization above which an operator counts as
// saturated for drift banding.
const saturationRho = 0.95

// Drift runs the full report for a finished run: predicted rates from the
// topology (under the given replication degrees; nil means all ones),
// measured rates from the registry's measurement window, and a re-analysis
// on profiles rebuilt from the end-of-window snapshot.
func Drift(t *core.Topology, replicas []int, r *Registry) (*DriftReport, error) {
	m, err := r.WindowRates()
	if err != nil {
		return nil, err
	}
	_, end, _, _ := r.Window()
	return DriftFrom(t, replicas, m, end)
}

// analyze dispatches to the replica-aware steady state when replication
// degrees are supplied.
func analyze(t *core.Topology, replicas []int) (*core.Analysis, error) {
	if replicas == nil {
		return core.SteadyState(t)
	}
	return core.SteadyStateWithReplicas(t, replicas, nil)
}

// DriftFrom builds the report from explicit measured rates and an optional
// snapshot (used for measured service times and the reprofiled
// re-analysis; nil skips both).
func DriftFrom(t *core.Topology, replicas []int, m *MeasuredRates, snap *Snapshot) (*DriftReport, error) {
	var profiles []profiler.Profile
	if snap != nil {
		var err error
		if profiles, err = snap.Profiles(); err != nil {
			return nil, err
		}
	}
	return DriftFromProfiles(t, replicas, m, profiles, nil)
}

// DriftFromProfiles builds the report from explicit measured rates and
// pre-built measured profiles — the provider seam shared by the probe path
// (profiles rebuilt from snapshot histograms, nil confidence) and the
// online estimator (profiles reconstructed from occupancy samples, with
// per-operator confidences). profiles may be nil to skip the reprofiled
// re-analysis.
func DriftFromProfiles(t *core.Topology, replicas []int, m *MeasuredRates, profiles []profiler.Profile, confidence []float64) (*DriftReport, error) {
	if m == nil {
		return nil, errors.New("obs: nil measured rates")
	}
	a, err := analyze(t, replicas)
	if err != nil {
		return nil, err
	}
	if len(m.Departure) != t.Len() {
		return nil, fmt.Errorf("obs: measured %d operators, topology has %d", len(m.Departure), t.Len())
	}
	if confidence != nil && len(confidence) != len(profiles) {
		return nil, fmt.Errorf("obs: %d confidences for %d profiles", len(confidence), len(profiles))
	}
	rep := &DriftReport{
		PredictedThroughput: a.Throughput(),
		MeasuredThroughput:  m.Throughput,
		ThroughputErr:       stats.RelErr(m.Throughput, a.Throughput()),
		MeasuredProfiles:    profiles,
		ProfileConfidence:   confidence,
		Seconds:             m.Seconds,
	}
	if replicas != nil {
		rep.Replicas = append([]int(nil), replicas...)
	}
	limiting := make(map[core.OpID]bool, len(a.Limiting))
	for _, id := range a.Limiting {
		limiting[id] = true
	}
	var errSum float64
	var errN int
	for i := 0; i < t.Len(); i++ {
		row := DriftRow{
			Op:           i,
			Name:         t.Op(core.OpID(i)).Name,
			Predicted:    a.Delta[i],
			Measured:     m.Departure[i],
			RelErr:       stats.RelErr(m.Departure[i], a.Delta[i]),
			PredictedRho: a.Rho[i],
			Saturated:    a.Rho[i] > saturationRho || limiting[core.OpID(i)],
		}
		if profiles != nil && i < len(profiles) && i < len(m.Consumed) {
			// Consumed is summed over the operator's workers, so divide
			// the aggregate rate across the replication degree.
			row.MeasuredRho = m.Consumed[i] * profiles[i].ServiceTime / float64(a.Replicas[i])
		}
		if !row.Saturated {
			errSum += row.RelErr
			errN++
			if row.RelErr > rep.MaxErr {
				rep.MaxErr = row.RelErr
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	if errN > 0 {
		rep.MeanErr = errSum / float64(errN)
	}
	if profiles != nil {
		if re, err := reanalyze(t, replicas, profiles); err == nil {
			rep.Reanalyzed = re
			rep.RepredictedThroughput = re.Throughput()
			rep.RepredictionErr = stats.RelErr(re.Throughput(), m.Throughput)
		}
	}
	return rep, nil
}

// reanalyze applies measured profiles to a clone of the topology and
// re-runs the steady-state analysis.
func reanalyze(t *core.Topology, replicas []int, profiles []profiler.Profile) (*core.Analysis, error) {
	clone := t.Clone()
	if err := profiler.Apply(clone, profiles); err != nil {
		return nil, err
	}
	return analyze(clone, replicas)
}

// String renders the report as the table the CLI prints.
func (r *DriftReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Model-vs-measured drift (%.2fs window)\n", r.Seconds)
	b.WriteString("op  name                 predicted(t/s)  measured(t/s)  rel.err   rho(pred)  rho(meas)\n")
	for _, row := range r.Rows {
		mark := " "
		if row.Saturated {
			mark = "*"
		}
		relErr := row.RelErr * 100
		if math.IsInf(relErr, 0) {
			relErr = -1
		}
		fmt.Fprintf(&b, "%2d%s %-20s %14.1f  %13.1f  %6.2f%%  %9.3f  %9.3f\n",
			row.Op, mark, row.Name, row.Predicted, row.Measured, relErr,
			row.PredictedRho, row.MeasuredRho)
	}
	fmt.Fprintf(&b, "throughput: predicted %.1f t/s, measured %.1f t/s (err %.2f%%)\n",
		r.PredictedThroughput, r.MeasuredThroughput, r.ThroughputErr*100)
	if errN := len(r.Rows); errN > 0 {
		fmt.Fprintf(&b, "departure error over non-saturated operators (*): mean %.2f%%, max %.2f%%\n",
			r.MeanErr*100, r.MaxErr*100)
	}
	if r.Reanalyzed != nil {
		fmt.Fprintf(&b, "re-analysis on measured profiles: %.1f t/s (err vs measured %.2f%%)\n",
			r.RepredictedThroughput, r.RepredictionErr*100)
	}
	return b.String()
}
