package xmlio_test

import (
	"bytes"
	"path/filepath"
	"testing"

	"spinstreams/internal/core"
	"spinstreams/internal/opt"
	"spinstreams/internal/randtopo"
	"spinstreams/internal/xmlio"
)

// roundTrip writes t (+replicas) and reads it back.
func roundTrip(t *testing.T, topo *core.Topology, replicas []int) (*core.Topology, []int) {
	t.Helper()
	var buf bytes.Buffer
	if err := xmlio.WriteOptimized(&buf, "roundtrip", topo, replicas); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, reps, err := xmlio.ReadOptimized(&buf)
	if err != nil {
		t.Fatalf("read back: %v\nxml:\n%s", err, buf.String())
	}
	return got, reps
}

// sameTopology asserts bit-exact equality via the fingerprint (which
// covers names, kinds, exact service-time/selectivity/probability bits,
// key distributions, impl references, fused members and edges), plus a
// structural spot check so a fingerprint bug cannot mask a mismatch.
func sameTopology(t *testing.T, want, got *core.Topology) {
	t.Helper()
	if want.Len() != got.Len() || want.NumEdges() != got.NumEdges() {
		t.Fatalf("shape differs: %d ops/%d edges vs %d/%d",
			got.Len(), got.NumEdges(), want.Len(), want.NumEdges())
	}
	if want.String() != got.String() {
		t.Errorf("topology differs:\n--- want\n%s--- got\n%s", want.String(), got.String())
	}
	if want.Fingerprint() != got.Fingerprint() {
		t.Errorf("fingerprint %016x != %016x", got.Fingerprint(), want.Fingerprint())
	}
}

// TestRoundTripCorpus: Read(xmlio.Write(t)) ≡ t over the shipped corpus (the
// fuzz seed set).
func TestRoundTripCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.xml"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no corpus: %v", err)
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			topo, err := xmlio.ReadFile(path)
			if err != nil {
				t.Fatalf("read corpus file: %v", err)
			}
			got, reps, err := func() (*core.Topology, []int, error) {
				var buf bytes.Buffer
				if err := xmlio.Write(&buf, "corpus", topo); err != nil {
					return nil, nil, err
				}
				return xmlio.ReadOptimized(&buf)
			}()
			if err != nil {
				t.Fatal(err)
			}
			sameTopology(t, topo, got)
			for i, n := range reps {
				if n != 1 {
					t.Errorf("plain write produced replica degree %d at %d", n, i)
				}
			}
		})
	}
}

// TestRoundTripRandtopo: the property over generated graphs, which
// exercise partitioned-stateful key distributions, skewed probabilities
// and every operator kind.
func TestRoundTripRandtopo(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		g, err := randtopo.Generate(randtopo.Config{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		got, _ := roundTrip(t, g.Topology, nil)
		sameTopology(t, g.Topology, got)
	}
}

// TestRoundTripOptimized: a pipeline-optimized topology — fused
// meta-operators plus fission replica degrees — survives the trip.
func TestRoundTripOptimized(t *testing.T) {
	for _, variant := range []core.PaperExampleVariant{core.PaperExampleTable1, core.PaperExampleTable2} {
		topo, _ := core.PaperExampleTopology(variant)
		res, err := opt.Run(topo, opt.Options{})
		if err != nil {
			t.Fatal(err)
		}
		final := res.Final.Topology()
		got, reps := roundTrip(t, final, res.Replicas())
		sameTopology(t, final, got)
		for i, n := range res.Replicas() {
			if reps[i] != n {
				t.Errorf("variant %v: operator %d replicas %d != %d", variant, i, reps[i], n)
			}
		}
	}

	// A replicated randtopo graph, bottlenecked so fission kicks in.
	g, err := randtopo.Generate(randtopo.Config{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	res, err := opt.Run(g.Topology, opt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	replicated := false
	for _, n := range res.Replicas() {
		if n > 1 {
			replicated = true
		}
	}
	if !replicated {
		t.Fatal("seed 42 produced no replication; pick another seed")
	}
	final := res.Final.Topology()
	got, reps := roundTrip(t, final, res.Replicas())
	sameTopology(t, final, got)
	for i, n := range res.Replicas() {
		if reps[i] != n {
			t.Errorf("operator %d replicas %d != %d", i, reps[i], n)
		}
	}
}

// TestRoundTripRejectsBadReplicas pins the validation paths.
func TestRoundTripRejectsBadReplicas(t *testing.T) {
	topo, _ := core.PaperExampleTopology(core.PaperExampleTable1)
	var buf bytes.Buffer
	if err := xmlio.WriteOptimized(&buf, "bad", topo, []int{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := xmlio.WriteOptimized(&buf, "bad", topo, []int{0, 1, 1, 1, 1, 1}); err == nil {
		t.Error("zero replica degree accepted")
	}
}
