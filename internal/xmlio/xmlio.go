// Package xmlio reads and writes the XML topology formalism SpinStreams
// accepts as input (Section 4.1): operators with their name, type, profiled
// service time (with time unit), implementation reference, selectivity
// parameters and — for partitioned-stateful operators — the key frequency
// distribution (inline or in a side file); plus the output edges with their
// routing probabilities.
package xmlio

import (
	"bufio"
	"encoding/xml"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"spinstreams/internal/core"
)

// Document is the XML representation of a topology.
type Document struct {
	XMLName   xml.Name      `xml:"topology"`
	Name      string        `xml:"name,attr"`
	Operators []OperatorDoc `xml:"operator"`
}

// OperatorDoc is one operator element.
type OperatorDoc struct {
	Name string `xml:"name,attr"`
	// Type is one of source, stateless, partitioned-stateful, stateful,
	// sink.
	Type string `xml:"type,attr"`
	// ServiceTime accepts Go duration syntax ("1.2ms", "300us") or a
	// plain float in seconds ("0.0012").
	ServiceTime string `xml:"serviceTime,attr"`
	// Impl references the implementation (the paper's .class pathname);
	// see operators.Catalog for the built-in names.
	Impl              string  `xml:"impl,attr,omitempty"`
	InputSelectivity  float64 `xml:"inputSelectivity,attr,omitempty"`
	OutputSelectivity float64 `xml:"outputSelectivity,attr,omitempty"`
	// Replicas is the replication degree the optimizer chose; 0 or 1
	// both mean "not replicated". Only written by the optimized-topology
	// writers.
	Replicas int      `xml:"replicas,attr,omitempty"`
	KeysFile string   `xml:"keysFile,attr,omitempty"`
	Keys     []KeyDoc `xml:"key,omitempty"`
	// Fused lists the original operators a fusion meta-operator replaced,
	// in topological order, so code generation can reconstruct the
	// internal routing.
	Fused   []FusedDoc  `xml:"fused,omitempty"`
	Outputs []OutputDoc `xml:"output,omitempty"`
}

// FusedDoc names one member of a fused meta-operator.
type FusedDoc struct {
	Name string `xml:"name,attr"`
}

// KeyDoc is one inline key-frequency entry.
type KeyDoc struct {
	Frequency float64 `xml:"frequency,attr"`
}

// OutputDoc is one output edge.
type OutputDoc struct {
	To          string  `xml:"to,attr"`
	Probability float64 `xml:"probability,attr"`
}

// KeyLoader resolves a keysFile reference to its frequency vector.
type KeyLoader func(path string) ([]float64, error)

// Option customizes Read.
type Option func(*options)

type options struct {
	keyLoader KeyLoader
}

// WithKeyLoader supplies the resolver for keysFile attributes; without it,
// topologies referencing key files are rejected.
func WithKeyLoader(l KeyLoader) Option {
	return func(o *options) { o.keyLoader = l }
}

// Read parses a topology document from r and builds the validated graph.
// Validation errors point at the offending element's line and column.
func Read(r io.Reader, opts ...Option) (*core.Topology, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	doc, pos, err := DecodeDocument(r)
	if err != nil {
		return nil, err
	}
	return fromDocument(doc, pos, o.keyLoader)
}

// ReadFile parses path; keysFile references resolve relative to its
// directory unless an explicit loader is given.
func ReadFile(path string, opts ...Option) (*core.Topology, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("xmlio: %w", err)
	}
	defer f.Close()
	all := append([]Option{WithKeyLoader(func(ref string) ([]float64, error) {
		return LoadKeyFile(filepath.Join(filepath.Dir(path), ref))
	})}, opts...)
	return Read(f, all...)
}

// FromDocument builds and validates the topology described by doc.
func FromDocument(doc *Document, loader KeyLoader) (*core.Topology, error) {
	return fromDocument(doc, nil, loader)
}

// checkSelectivity rejects NaN/Inf/negative selectivity attributes before
// they flow into the gain model (zero means "default of 1" and is fine).
func checkSelectivity(label string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return fmt.Errorf("%s %v, must be a finite value >= 0", label, v)
	}
	return nil
}

func fromDocument(doc *Document, pos *Positions, loader KeyLoader) (*core.Topology, error) {
	if len(doc.Operators) == 0 {
		return nil, errors.New("xmlio: document has no operators")
	}
	t := core.NewTopology()
	for i, od := range doc.Operators {
		at := pos.Operator(i)
		kind, err := parseKind(od.Type)
		if err != nil {
			return nil, fmt.Errorf("xmlio: %w", errAt(at, "operator %q: %v", od.Name, err))
		}
		st, err := ParseServiceTime(od.ServiceTime)
		if err != nil {
			return nil, fmt.Errorf("xmlio: %w", errAt(at, "operator %q: %v", od.Name, err))
		}
		if err := checkSelectivity("input selectivity", od.InputSelectivity); err != nil {
			return nil, fmt.Errorf("xmlio: %w", errAt(at, "operator %q: %v", od.Name, err))
		}
		if err := checkSelectivity("output selectivity", od.OutputSelectivity); err != nil {
			return nil, fmt.Errorf("xmlio: %w", errAt(at, "operator %q: %v", od.Name, err))
		}
		op := core.Operator{
			Name:              od.Name,
			Kind:              kind,
			ServiceTime:       st,
			InputSelectivity:  od.InputSelectivity,
			OutputSelectivity: od.OutputSelectivity,
			Impl:              od.Impl,
		}
		if kind == core.KindPartitionedStateful {
			freq, err := keysOf(od, loader)
			if err != nil {
				return nil, fmt.Errorf("xmlio: %w", errAt(at, "operator %q: %v", od.Name, err))
			}
			for j, f := range freq {
				if !(f > 0) || math.IsInf(f, 1) {
					return nil, fmt.Errorf("xmlio: %w", errAt(pos.Key(i, j),
						"operator %q: key frequency %d is %v, must be a finite value > 0", od.Name, j, f))
				}
			}
			op.Keys = &core.KeyDistribution{Freq: freq}
		}
		for _, f := range od.Fused {
			op.Fused = append(op.Fused, f.Name)
		}
		if _, err := t.AddOperator(op); err != nil {
			return nil, fmt.Errorf("xmlio: %w", errAt(at, "%v", err))
		}
	}
	for i, od := range doc.Operators {
		from, _ := t.Lookup(od.Name)
		for j, out := range od.Outputs {
			at := pos.Output(i, j)
			to, ok := t.Lookup(out.To)
			if !ok {
				return nil, fmt.Errorf("xmlio: %w", errAt(at, "operator %q outputs to unknown %q", od.Name, out.To))
			}
			if !(out.Probability > 0) || out.Probability > 1+1e-6 {
				return nil, fmt.Errorf("xmlio: %w", errAt(at,
					"operator %q -> %q: probability %v outside (0, 1]", od.Name, out.To, out.Probability))
			}
			if err := t.Connect(from, to, out.Probability); err != nil {
				return nil, fmt.Errorf("xmlio: %w", errAt(at, "%v", err))
			}
		}
	}
	// Format-level validation accepts feedback edges (the cyclic analysis
	// handles them); the acyclic algorithms re-validate on entry.
	if err := t.ValidateCyclic(); err != nil {
		return nil, fmt.Errorf("xmlio: invalid topology: %w", err)
	}
	return t, nil
}

func keysOf(od OperatorDoc, loader KeyLoader) ([]float64, error) {
	switch {
	case len(od.Keys) > 0 && od.KeysFile != "":
		return nil, errors.New("both inline keys and keysFile given")
	case len(od.Keys) > 0:
		freq := make([]float64, len(od.Keys))
		for i, k := range od.Keys {
			freq[i] = k.Frequency
		}
		return freq, nil
	case od.KeysFile != "":
		if loader == nil {
			return nil, fmt.Errorf("keysFile %q given but no key loader configured", od.KeysFile)
		}
		return loader(od.KeysFile)
	default:
		return nil, errors.New("partitioned-stateful operator without key distribution")
	}
}

// LoadKeyFile reads a key-frequency file: one positive frequency per line,
// blank lines and #-comments ignored.
func LoadKeyFile(path string) ([]float64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var freq []float64
	sc := bufio.NewScanner(f)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		v, err := strconv.ParseFloat(text, 64)
		if err != nil {
			return nil, fmt.Errorf("%s:%d: %w", path, line, err)
		}
		freq = append(freq, v)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return freq, nil
}

// ParseServiceTime accepts Go duration syntax or a float in seconds.
func ParseServiceTime(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, errors.New("missing serviceTime")
	}
	if d, err := time.ParseDuration(s); err == nil {
		if d <= 0 {
			return 0, fmt.Errorf("service time %q not positive", s)
		}
		return d.Seconds(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("service time %q: want a duration (\"1.2ms\") or seconds (\"0.0012\")", s)
	}
	// !(v > 0) also rejects NaN, which strconv.ParseFloat accepts.
	if !(v > 0) || math.IsInf(v, 1) {
		return 0, fmt.Errorf("service time %q not a finite positive value", s)
	}
	return v, nil
}

func parseKind(s string) (core.Kind, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "source":
		return core.KindSource, nil
	case "stateless":
		return core.KindStateless, nil
	case "partitioned-stateful", "partitioned":
		return core.KindPartitionedStateful, nil
	case "stateful":
		return core.KindStateful, nil
	case "sink":
		return core.KindSink, nil
	default:
		return 0, fmt.Errorf("unknown operator type %q", s)
	}
}

// ToDocument converts a topology back to its XML representation; key
// distributions are inlined.
func ToDocument(name string, t *core.Topology) *Document {
	doc := &Document{Name: name}
	for i := 0; i < t.Len(); i++ {
		id := core.OpID(i)
		op := t.Op(id)
		od := OperatorDoc{
			Name:              op.Name,
			Type:              op.Kind.String(),
			ServiceTime:       formatSeconds(op.ServiceTime),
			Impl:              op.Impl,
			InputSelectivity:  op.InputSelectivity,
			OutputSelectivity: op.OutputSelectivity,
		}
		if op.Keys != nil {
			for _, f := range op.Keys.Freq {
				od.Keys = append(od.Keys, KeyDoc{Frequency: f})
			}
		}
		for _, m := range op.Fused {
			od.Fused = append(od.Fused, FusedDoc{Name: m})
		}
		for _, e := range t.Out(id) {
			od.Outputs = append(od.Outputs, OutputDoc{
				To:          t.Op(e.To).Name,
				Probability: e.Prob,
			})
		}
		doc.Operators = append(doc.Operators, od)
	}
	return doc
}

// Write serializes the topology as indented XML.
func Write(w io.Writer, name string, t *core.Topology) error {
	return writeDoc(w, ToDocument(name, t))
}

// WriteFile writes the topology to path.
func WriteFile(path, name string, t *core.Topology) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("xmlio: %w", err)
	}
	if err := Write(f, name, t); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ToDocumentOptimized is ToDocument plus per-operator replication
// degrees (index-aligned with OpIDs; nil means all ones). Degrees of one
// are omitted from the XML.
func ToDocumentOptimized(name string, t *core.Topology, replicas []int) (*Document, error) {
	if replicas != nil && len(replicas) != t.Len() {
		return nil, fmt.Errorf("xmlio: %d replica degrees for %d operators", len(replicas), t.Len())
	}
	doc := ToDocument(name, t)
	for i := range doc.Operators {
		if replicas == nil {
			continue
		}
		if n := replicas[i]; n > 1 {
			doc.Operators[i].Replicas = n
		} else if n < 1 {
			return nil, fmt.Errorf("xmlio: operator %q has replica degree %d", doc.Operators[i].Name, n)
		}
	}
	return doc, nil
}

// FromDocumentOptimized is FromDocument plus the replication degrees
// recorded in the document (omitted/zero degrees read as one).
func FromDocumentOptimized(doc *Document, loader KeyLoader) (*core.Topology, []int, error) {
	return fromDocumentOptimized(doc, nil, loader)
}

func fromDocumentOptimized(doc *Document, pos *Positions, loader KeyLoader) (*core.Topology, []int, error) {
	t, err := fromDocument(doc, pos, loader)
	if err != nil {
		return nil, nil, err
	}
	replicas := make([]int, len(doc.Operators))
	for i, od := range doc.Operators {
		switch {
		case od.Replicas < 0:
			return nil, nil, fmt.Errorf("xmlio: operator %q has replica degree %d", od.Name, od.Replicas)
		case od.Replicas <= 1:
			replicas[i] = 1
		default:
			replicas[i] = od.Replicas
		}
	}
	return t, replicas, nil
}

// WriteOptimized serializes an optimized topology — fused meta-operators
// travel in the operator elements, replication degrees as replicas
// attributes — such that ReadOptimized(WriteOptimized(t)) reproduces the
// topology bit-exactly (equal Fingerprint) along with the degrees.
func WriteOptimized(w io.Writer, name string, t *core.Topology, replicas []int) error {
	doc, err := ToDocumentOptimized(name, t, replicas)
	if err != nil {
		return err
	}
	return writeDoc(w, doc)
}

// WriteFileOptimized writes an optimized topology to path.
func WriteFileOptimized(path, name string, t *core.Topology, replicas []int) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("xmlio: %w", err)
	}
	if err := WriteOptimized(f, name, t, replicas); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadOptimized parses a topology document along with the recorded
// replication degrees (all ones when the document carries none).
func ReadOptimized(r io.Reader, opts ...Option) (*core.Topology, []int, error) {
	var o options
	for _, opt := range opts {
		opt(&o)
	}
	doc, pos, err := DecodeDocument(r)
	if err != nil {
		return nil, nil, err
	}
	return fromDocumentOptimized(doc, pos, o.keyLoader)
}

// ReadFileOptimized parses path with replica degrees; keysFile
// references resolve relative to its directory.
func ReadFileOptimized(path string, opts ...Option) (*core.Topology, []int, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, fmt.Errorf("xmlio: %w", err)
	}
	defer f.Close()
	all := append([]Option{WithKeyLoader(func(ref string) ([]float64, error) {
		return LoadKeyFile(filepath.Join(filepath.Dir(path), ref))
	})}, opts...)
	return ReadOptimized(f, all...)
}

func writeDoc(w io.Writer, doc *Document) error {
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("xmlio: encode: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// formatSeconds renders a service time with a readable unit when the
// nanosecond-granular duration form is exact, and as full-precision float
// seconds otherwise (profiled times must round-trip bit-exactly: steady-
// state corrections multiply them into the predicted throughput).
func formatSeconds(s float64) string {
	d := time.Duration(s * float64(time.Second))
	if d.Seconds() == s {
		return d.String()
	}
	return strconv.FormatFloat(s, 'g', -1, 64)
}
