package xmlio

import (
	"bytes"
	"encoding/xml"
	"fmt"
	"io"
)

// Pos is a 1-based line/column location in a topology document. The zero
// value means "position unknown".
type Pos struct {
	Line, Col int
}

func (p Pos) known() bool { return p.Line > 0 }

// OperatorPos locates one operator element and its children.
type OperatorPos struct {
	// Start is the position of the <operator> start tag.
	Start Pos
	// Outputs and Keys hold the positions of the operator's <output> and
	// <key> child elements, in document order.
	Outputs []Pos
	Keys    []Pos
}

// Positions locates the elements of a decoded Document, index-aligned
// with Document.Operators, so validation errors and lint diagnostics can
// point at the offending line and column.
type Positions struct {
	Operators []OperatorPos
}

// Operator returns the position of operator i, or the zero Pos when
// positions are unavailable or out of range.
func (p *Positions) Operator(i int) Pos {
	if p == nil || i < 0 || i >= len(p.Operators) {
		return Pos{}
	}
	return p.Operators[i].Start
}

// Output returns the position of operator i's j-th output edge.
func (p *Positions) Output(i, j int) Pos {
	if p == nil || i < 0 || i >= len(p.Operators) {
		return Pos{}
	}
	if outs := p.Operators[i].Outputs; j >= 0 && j < len(outs) {
		return outs[j]
	}
	return p.Operators[i].Start
}

// Key returns the position of operator i's j-th inline key entry.
func (p *Positions) Key(i, j int) Pos {
	if p == nil || i < 0 || i >= len(p.Operators) {
		return Pos{}
	}
	if keys := p.Operators[i].Keys; j >= 0 && j < len(keys) {
		return keys[j]
	}
	return p.Operators[i].Start
}

// ParseError is a topology-document validation error with the position
// of the offending element, when known.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string {
	if e.Pos.known() {
		return fmt.Sprintf("%d:%d: %s", e.Pos.Line, e.Pos.Col, e.Msg)
	}
	return e.Msg
}

// errAt builds a positioned validation error.
func errAt(p Pos, format string, args ...any) error {
	return &ParseError{Pos: p, Msg: fmt.Sprintf(format, args...)}
}

// DecodeDocument reads the raw XML document from r without any semantic
// validation and returns element positions alongside it. It is the entry
// point for the lint analyzers, which want to diagnose documents that
// Read would reject outright.
func DecodeDocument(r io.Reader) (*Document, *Positions, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, nil, fmt.Errorf("xmlio: %w", err)
	}
	var doc Document
	if err := xml.Unmarshal(data, &doc); err != nil {
		return nil, nil, fmt.Errorf("xmlio: parse: %w", err)
	}
	pos := scanPositions(data)
	if pos != nil && len(pos.Operators) != len(doc.Operators) {
		// The token scan disagreed with the decoder (should not happen);
		// drop the positions rather than misattribute them.
		pos = nil
	}
	return &doc, pos, nil
}

// scanPositions re-tokenizes data recording where each <operator>,
// <output> and <key> start tag begins. The scan mirrors the order
// encoding/xml decodes the elements in, so indices align with the
// decoded Document.
func scanPositions(data []byte) *Positions {
	dec := xml.NewDecoder(bytes.NewReader(data))
	pos := &Positions{}
	var cur *OperatorPos
	depth := 0
	for {
		start := dec.InputOffset()
		tok, err := dec.Token()
		if err != nil {
			if err == io.EOF {
				return pos
			}
			return nil
		}
		switch t := tok.(type) {
		case xml.StartElement:
			depth++
			p := lineCol(data, start)
			switch {
			case depth == 2 && t.Name.Local == "operator":
				pos.Operators = append(pos.Operators, OperatorPos{Start: p})
				cur = &pos.Operators[len(pos.Operators)-1]
			case depth == 3 && cur != nil && t.Name.Local == "output":
				cur.Outputs = append(cur.Outputs, p)
			case depth == 3 && cur != nil && t.Name.Local == "key":
				cur.Keys = append(cur.Keys, p)
			}
		case xml.EndElement:
			depth--
			if depth < 2 {
				cur = nil
			}
		}
	}
}

// lineCol converts a byte offset into a 1-based line/column pair. The
// offset points at the '<' of a start tag, which token scanning
// guarantees: offsets are taken before each Token call, and markup
// always starts a fresh token.
func lineCol(data []byte, off int64) Pos {
	if off < 0 || off > int64(len(data)) {
		return Pos{}
	}
	line := 1 + bytes.Count(data[:off], []byte{'\n'})
	col := int(off) - bytes.LastIndexByte(data[:off], '\n')
	return Pos{Line: line, Col: col}
}
