package xmlio

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// FuzzRead exercises the XML topology parser with arbitrary input: it must
// never panic, and anything it accepts must round-trip through Write/Read
// to an equally valid topology.
func FuzzRead(f *testing.F) {
	// Seed with every real topology shipped in testdata/, so the fuzzer
	// starts from documents that exercise the full schema (selectivities,
	// probabilities, retry loops) rather than only the inline minimal
	// cases below.
	docs, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.xml"))
	if err != nil {
		f.Fatal(err)
	}
	if len(docs) == 0 {
		f.Fatal("no testdata/*.xml corpus found")
	}
	for _, path := range docs {
		raw, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(string(raw))
	}
	f.Add(sampleXML)
	f.Add(`<topology name="t">
  <operator name="a" type="source" serviceTime="1ms"><output to="b" probability="1"/></operator>
  <operator name="b" type="sink" serviceTime="1ms"/>
</topology>`)
	f.Add(`<topology><operator name="x" type="stateful" serviceTime="0.5"/></topology>`)
	f.Add(`<topology></topology>`)
	f.Add(`not xml at all`)
	f.Add(`<topology><operator name="a" type="partitioned-stateful" serviceTime="1ms">
  <key frequency="0.5"/><key frequency="0.5"/></operator></topology>`)

	f.Fuzz(func(t *testing.T, doc string) {
		topo, err := Read(strings.NewReader(doc))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, "fuzz", topo); err != nil {
			t.Fatalf("accepted topology failed to serialize: %v", err)
		}
		back, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("round trip failed: %v\ninput: %q\nxml: %s", err, doc, buf.String())
		}
		if back.Len() != topo.Len() || back.NumEdges() != topo.NumEdges() {
			t.Fatalf("round trip changed shape: %d/%d ops, %d/%d edges",
				back.Len(), topo.Len(), back.NumEdges(), topo.NumEdges())
		}
	})
}
