package xmlio

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spinstreams/internal/core"
	"spinstreams/internal/randtopo"
)

const sampleXML = `<?xml version="1.0"?>
<topology name="sample">
  <operator name="src" type="source" serviceTime="1ms" impl="source">
    <output to="map" probability="0.7"/>
    <output to="agg" probability="0.3"/>
  </operator>
  <operator name="map" type="stateless" serviceTime="500us" impl="scale">
    <output to="sink" probability="1"/>
  </operator>
  <operator name="agg" type="partitioned-stateful" serviceTime="2ms" impl="wsum" inputSelectivity="10">
    <key frequency="0.5"/>
    <key frequency="0.3"/>
    <key frequency="0.2"/>
    <output to="sink" probability="1"/>
  </operator>
  <operator name="sink" type="sink" serviceTime="0.0001"/>
</topology>
`

func TestReadSample(t *testing.T) {
	topo, err := Read(strings.NewReader(sampleXML))
	if err != nil {
		t.Fatal(err)
	}
	if topo.Len() != 4 {
		t.Fatalf("operators = %d, want 4", topo.Len())
	}
	src, ok := topo.Lookup("src")
	if !ok || topo.Op(src).Kind != core.KindSource {
		t.Fatal("source not parsed")
	}
	if got := topo.Op(src).ServiceTime; math.Abs(got-0.001) > 1e-12 {
		t.Errorf("source service time = %v, want 0.001", got)
	}
	mp, _ := topo.Lookup("map")
	if got := topo.Op(mp).ServiceTime; math.Abs(got-0.0005) > 1e-12 {
		t.Errorf("map service time = %v (500us)", got)
	}
	agg, _ := topo.Lookup("agg")
	aggOp := topo.Op(agg)
	if aggOp.Kind != core.KindPartitionedStateful || aggOp.Keys == nil || len(aggOp.Keys.Freq) != 3 {
		t.Fatalf("agg parsed wrong: %+v", aggOp)
	}
	if aggOp.InputSelectivity != 10 {
		t.Errorf("agg input selectivity = %v", aggOp.InputSelectivity)
	}
	if len(topo.Out(src)) != 2 || topo.Out(src)[0].Prob != 0.7 {
		t.Errorf("source edges wrong: %+v", topo.Out(src))
	}
	// The parsed topology is immediately analyzable.
	if _, err := core.SteadyState(topo); err != nil {
		t.Fatal(err)
	}
}

func TestRoundTrip(t *testing.T) {
	topo, _ := core.PaperExampleTopology(core.PaperExampleTable1)
	var buf bytes.Buffer
	if err := Write(&buf, "paper", topo); err != nil {
		t.Fatal(err)
	}
	back, err := Read(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-read: %v\n%s", err, buf.String())
	}
	if back.Len() != topo.Len() || back.NumEdges() != topo.NumEdges() {
		t.Fatalf("round trip changed shape: %d/%d ops, %d/%d edges",
			back.Len(), topo.Len(), back.NumEdges(), topo.NumEdges())
	}
	a1, err := core.SteadyState(topo)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := core.SteadyState(back)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a1.Throughput()-a2.Throughput()) > 1e-6*a1.Throughput() {
		t.Errorf("throughput changed: %v -> %v", a1.Throughput(), a2.Throughput())
	}
}

func TestRoundTripRandomTopologies(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		g, err := randtopo.Generate(randtopo.Config{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Write(&buf, "rand", g.Topology); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		back, err := Read(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		a1, err := core.SteadyState(g.Topology)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		a2, err := core.SteadyState(back)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for i := range a1.Delta {
			j, ok := back.Lookup(g.Topology.Op(core.OpID(i)).Name)
			if !ok {
				t.Fatalf("seed %d: operator lost in round trip", seed)
			}
			if math.Abs(a1.Delta[i]-a2.Delta[j]) > 1e-6*(a1.Delta[i]+1) {
				t.Fatalf("seed %d: delta changed for op %d", seed, i)
			}
		}
	}
}

func TestKeysFile(t *testing.T) {
	dir := t.TempDir()
	keysPath := filepath.Join(dir, "keys.txt")
	if err := os.WriteFile(keysPath, []byte("# comment\n0.6\n\n0.4\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	xmlPath := filepath.Join(dir, "topo.xml")
	doc := `<topology name="t">
  <operator name="src" type="source" serviceTime="1ms">
    <output to="agg" probability="1"/>
  </operator>
  <operator name="agg" type="partitioned-stateful" serviceTime="2ms" keysFile="keys.txt"/>
</topology>`
	if err := os.WriteFile(xmlPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	topo, err := ReadFile(xmlPath)
	if err != nil {
		t.Fatal(err)
	}
	agg, _ := topo.Lookup("agg")
	freq := topo.Op(agg).Keys.Freq
	if len(freq) != 2 || freq[0] != 0.6 || freq[1] != 0.4 {
		t.Fatalf("keys = %v", freq)
	}
}

func TestReadErrors(t *testing.T) {
	cases := map[string]string{
		"not xml":               "nope",
		"empty topology":        `<topology name="t"></topology>`,
		"unknown type":          `<topology><operator name="a" type="alien" serviceTime="1ms"/></topology>`,
		"bad service time":      `<topology><operator name="a" type="source" serviceTime="fast"/></topology>`,
		"negative service time": `<topology><operator name="a" type="source" serviceTime="-1ms"/></topology>`,
		"unknown target": `<topology>
			<operator name="a" type="source" serviceTime="1ms"><output to="ghost" probability="1"/></operator>
		</topology>`,
		"partitioned without keys": `<topology>
			<operator name="a" type="source" serviceTime="1ms"><output to="b" probability="1"/></operator>
			<operator name="b" type="partitioned-stateful" serviceTime="1ms"/>
		</topology>`,
		"keysFile without loader": `<topology>
			<operator name="a" type="source" serviceTime="1ms"><output to="b" probability="1"/></operator>
			<operator name="b" type="partitioned-stateful" serviceTime="1ms" keysFile="x.txt"/>
		</topology>`,
		"probabilities not 1": `<topology>
			<operator name="a" type="source" serviceTime="1ms"><output to="b" probability="0.5"/></operator>
			<operator name="b" type="sink" serviceTime="1ms"/>
		</topology>`,
	}
	for name, doc := range cases {
		if _, err := Read(strings.NewReader(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestReadCyclicTopology(t *testing.T) {
	// Feedback edges are legal at the format level (the cyclic analysis
	// consumes them); the acyclic algorithms still reject them.
	doc := `<topology>
		<operator name="a" type="source" serviceTime="1ms"><output to="b" probability="1"/></operator>
		<operator name="b" type="stateless" serviceTime="1ms"><output to="c" probability="0.5"/><output to="d" probability="0.5"/></operator>
		<operator name="c" type="stateless" serviceTime="1ms"><output to="b" probability="1"/></operator>
		<operator name="d" type="sink" serviceTime="1ms"/>
	</topology>`
	topo, err := Read(strings.NewReader(doc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.SteadyState(topo); !errors.Is(err, core.ErrCyclic) {
		t.Errorf("acyclic analysis: got %v, want ErrCyclic", err)
	}
	if _, err := core.SteadyStateCyclic(topo); err != nil {
		t.Errorf("cyclic analysis failed: %v", err)
	}
}

func TestParseServiceTime(t *testing.T) {
	tests := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"1ms", 0.001, true},
		{"300us", 0.0003, true},
		{"2s", 2, true},
		{"0.0012", 0.0012, true},
		{" 5ms ", 0.005, true},
		{"", 0, false},
		{"-1ms", 0, false},
		{"0", 0, false},
		{"abc", 0, false},
	}
	for _, tc := range tests {
		got, err := ParseServiceTime(tc.in)
		if (err == nil) != tc.ok {
			t.Errorf("ParseServiceTime(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("ParseServiceTime(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestLoadKeyFileErrors(t *testing.T) {
	if _, err := LoadKeyFile(filepath.Join(t.TempDir(), "missing.txt")); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("0.5\nnot-a-number\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadKeyFile(bad); err == nil {
		t.Error("malformed file accepted")
	}
}

func TestWriteFile(t *testing.T) {
	topo, _ := core.PaperExampleTopology(core.PaperExampleTable1)
	path := filepath.Join(t.TempDir(), "out.xml")
	if err := WriteFile(path, "paper", topo); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != topo.Len() {
		t.Fatal("file round trip changed topology")
	}
}
