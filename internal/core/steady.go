package core

import (
	"fmt"
	"math"
)

// rhoTolerance absorbs floating-point drift when deciding whether a vertex
// is a bottleneck: after a source correction the re-visited vertex has
// utilization exactly 1 in exact arithmetic.
const rhoTolerance = 1e-9

// Analysis is the result of the steady-state analysis (Algorithm 1) or of
// the bottleneck-elimination pass (Algorithm 2): the input graph annotated
// with per-operator steady-state figures. Slices are indexed by OpID.
type Analysis struct {
	// Lambda is the steady-state arrival rate per operator (items/s).
	Lambda []float64
	// Rho is the utilization factor per operator after backpressure has
	// been accounted for; always <= 1 (within tolerance).
	Rho []float64
	// Delta is the steady-state departure rate per operator (items/s).
	Delta []float64
	// Replicas is the replication degree per operator; all ones for the
	// plain steady-state analysis.
	Replicas []int
	// PMax is, for partitioned-stateful operators that were replicated,
	// the fraction of input items routed to the most loaded replica; 0 for
	// everything else.
	PMax []float64
	// Limiting lists the operators whose saturation forced a correction of
	// the source departure rate (the surviving bottlenecks, ordered by
	// discovery). Empty when the source itself limits throughput.
	Limiting []OpID
	// SourceRate is the corrected departure rate of the source: the rate
	// at which the topology ingests items at steady state. The paper
	// reports this as the topology's throughput.
	SourceRate float64
	// SinkRate is the total departure rate of the sink operators.
	SinkRate float64
	// Restarts counts how many times the traversal was restarted after a
	// source correction; a measure of the algorithm's work.
	Restarts int
	// Corrections records every Theorem 3.2 source correction in discovery
	// order: which saturated vertex forced it, its utilization at that
	// moment (the correction divides the source departure rate by this
	// factor) and the corrected source rate. Populated by the restart-based
	// traversal (SteadyState, SteadyStateWithReplicas, the fission pass);
	// the single-pass ablation variants leave it nil.
	Corrections []Correction
}

// Correction is one Theorem 3.2 source-rate correction.
type Correction struct {
	// Op is the saturated vertex that forced the correction.
	Op OpID
	// Rho is the vertex's utilization when discovered; the source departure
	// rate is divided by it.
	Rho float64
	// SourceRate is the corrected source departure rate after this step.
	SourceRate float64
}

// Throughput returns the topology throughput at steady state, defined as in
// the paper: the source departure rate (items ingested per second).
func (a *Analysis) Throughput() float64 { return a.SourceRate }

// Bottlenecked reports whether any operator other than the source limits
// the steady-state throughput.
func (a *Analysis) Bottlenecked() bool { return len(a.Limiting) > 0 }

// SteadyState runs Algorithm 1: it computes the steady-state departure rate
// of every operator under Blocking-After-Service backpressure, correcting
// the source departure rate by 1/rho each time a saturated operator is
// discovered (Theorem 3.2). Selectivity parameters are honored as in
// Section 3.4: an operator's departure rate is min(lambda, mu) scaled by
// OutputSelectivity/InputSelectivity.
//
// The topology must satisfy Validate; the returned analysis has utilization
// factors <= 1 everywhere (Invariant 3.1 at termination).
func SteadyState(t *Topology) (*Analysis, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	order, err := t.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	a := newAnalysis(t.Len())
	if err := a.propagate(t, order, nil); err != nil {
		return nil, err
	}
	a.finish(t)
	return a, nil
}

// SteadyStateFast computes the same steady-state figures as SteadyState in
// two linear passes instead of Algorithm 1's restart-based traversal. At
// the fixed point every non-limiting operator forwards its arrivals
// unclamped, so arrival rates are linear in the source departure rate: one
// demand pass with the source at full speed finds the binding constraint,
// and a second pass evaluates the scaled solution. It exists as the
// ablation counterpart of the paper's algorithm (see DESIGN.md); both
// implementations must agree on every output.
func SteadyStateFast(t *Topology) (*Analysis, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	order, err := t.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	src := order[0]
	srcOp := t.Op(src)

	// Demand pass: unit source departure rate, no capacity clamps.
	demand := make([]float64, t.Len())
	demand[src] = 1
	factor := 1.0
	var limiting []OpID
	for _, v := range order[1:] {
		lambda := 0.0
		for _, e := range t.in[v] {
			lambda += demand[e.From] * e.Prob
		}
		// Capacity constraint: delta1 * lambda <= mu_v.
		if full := srcOp.Rate() * srcOp.Gain() * lambda; full > t.Op(v).Rate()*(1+rhoTolerance) {
			f := t.Op(v).Rate() / full
			switch {
			case f < factor-rhoTolerance:
				factor = f
				limiting = []OpID{v}
			case f <= factor+rhoTolerance:
				limiting = append(limiting, v)
			}
		}
		demand[v] = lambda * t.Op(v).Gain()
	}

	// Evaluation pass at the corrected source rate.
	a := newAnalysis(t.Len())
	delta1 := srcOp.Rate() * srcOp.Gain() * factor
	a.Delta[src] = delta1
	a.Rho[src] = factor
	a.Lambda[src] = delta1 / srcOp.Gain()
	for _, v := range order[1:] {
		lambda := 0.0
		for _, e := range t.in[v] {
			lambda += a.Delta[e.From] * e.Prob
		}
		a.Lambda[v] = lambda
		mu := t.Op(v).Rate()
		a.Rho[v] = lambda / mu
		a.Delta[v] = math.Min(lambda, mu) * t.Op(v).Gain()
	}
	a.Limiting = limiting
	a.finish(t)
	return a, nil
}

func newAnalysis(n int) *Analysis {
	a := &Analysis{
		Lambda:   make([]float64, n),
		Rho:      make([]float64, n),
		Delta:    make([]float64, n),
		Replicas: make([]int, n),
		PMax:     make([]float64, n),
	}
	for i := range a.Replicas {
		a.Replicas[i] = 1
	}
	return a
}

// capacity returns the effective service rate of vertex v given its
// replication degree and, for partitioned-stateful operators, the load skew
// of the most loaded replica: saturation occurs when the most loaded
// replica saturates.
func (a *Analysis) capacity(t *Topology, v OpID) float64 {
	op := t.Op(v)
	mu := op.Rate()
	n := a.Replicas[v]
	if n <= 1 {
		return mu
	}
	if op.Kind == KindPartitionedStateful && a.PMax[v] > 0 {
		// The most loaded replica receives fraction pmax of the input;
		// it saturates when lambda*pmax = mu.
		return mu / a.PMax[v]
	}
	return mu * float64(n)
}

// propagate performs the ordered traversal with source-rate corrections.
// If onBottleneck is non-nil it is invoked when a saturated vertex is
// discovered and may resolve it (by raising the vertex's capacity through
// a.Replicas/a.PMax, returning true); otherwise the source rate is lowered
// per Theorem 3.2 and the traversal restarts. This shared core implements
// both Algorithm 1 (onBottleneck nil) and Algorithm 2.
func (a *Analysis) propagate(t *Topology, order []OpID, onBottleneck func(v OpID, lambda float64) bool) error {
	src := order[0]
	srcOp := t.Op(src)
	a.Delta[src] = srcOp.Rate() * srcOp.Gain()
	a.Rho[src] = 1
	a.Lambda[src] = srcOp.Rate()
	a.Limiting = a.Limiting[:0]
	a.Restarts = 0
	a.Corrections = a.Corrections[:0]
	// Each source correction permanently pins one vertex at utilization 1,
	// so at most |V| restarts occur; guard against float pathologies.
	maxRestarts := t.Len() + 1

	delta1 := a.Delta[src]
	for i := 1; i < len(order); {
		v := order[i]
		lambda := 0.0
		for _, e := range t.in[v] {
			lambda += a.Delta[e.From] * e.Prob
		}
		a.Lambda[v] = lambda
		cap := a.capacity(t, v)
		rho := lambda / cap
		if rho <= 1+rhoTolerance {
			a.Rho[v] = rho
			a.Delta[v] = math.Min(lambda, cap) * t.Op(v).Gain()
			i++
			continue
		}
		if onBottleneck != nil && onBottleneck(v, lambda) {
			// Capacity was raised (fission); re-evaluate the same vertex.
			continue
		}
		// Theorem 3.2: lower the source departure rate by 1/rho and
		// restart the traversal from the beginning.
		a.Restarts++
		if a.Restarts > maxRestarts {
			return fmt.Errorf("steady state: correction did not converge after %d restarts", a.Restarts)
		}
		delta1 /= rho
		a.Delta[src] = delta1
		a.Rho[src] = delta1 / (srcOp.Rate() * srcOp.Gain())
		a.Lambda[src] = delta1 / srcOp.Gain()
		a.noteLimiting(v)
		a.Corrections = append(a.Corrections, Correction{Op: v, Rho: rho, SourceRate: delta1})
		i = 1
	}
	return nil
}

func (a *Analysis) noteLimiting(v OpID) {
	for _, x := range a.Limiting {
		if x == v {
			return
		}
	}
	a.Limiting = append(a.Limiting, v)
}

func (a *Analysis) finish(t *Topology) {
	src := t.Source()
	a.SourceRate = a.Delta[src]
	a.SinkRate = 0
	for _, s := range t.Sinks() {
		a.SinkRate += a.Delta[s]
	}
}
