package core

import (
	"errors"
	"math"
	"testing"
)

func mustPipeline(t *testing.T, times ...float64) (*Topology, []OpID) {
	t.Helper()
	topo := NewTopology()
	ids := make([]OpID, len(times))
	for i, st := range times {
		kind := KindStateless
		switch i {
		case 0:
			kind = KindSource
		case len(times) - 1:
			kind = KindSink
		}
		ids[i] = topo.MustAddOperator(Operator{
			Name:        "op" + string(rune('A'+i)),
			Kind:        kind,
			ServiceTime: st,
		})
		if i > 0 {
			topo.MustConnect(ids[i-1], ids[i], 1.0)
		}
	}
	return topo, ids
}

func TestAddOperatorErrors(t *testing.T) {
	tests := []struct {
		name string
		op   Operator
	}{
		{"empty name", Operator{Kind: KindStateless, ServiceTime: 1}},
		{"zero service time", Operator{Name: "x", Kind: KindStateless}},
		{"negative service time", Operator{Name: "x", Kind: KindStateless, ServiceTime: -1}},
		{"invalid kind", Operator{Name: "x", ServiceTime: 1}},
		{"partitioned without keys", Operator{Name: "x", Kind: KindPartitionedStateful, ServiceTime: 1}},
		{"partitioned bad keys", Operator{Name: "x", Kind: KindPartitionedStateful, ServiceTime: 1,
			Keys: &KeyDistribution{Freq: []float64{0.5, 0.4}}}},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			topo := NewTopology()
			if _, err := topo.AddOperator(tc.op); err == nil {
				t.Fatalf("AddOperator(%+v) succeeded, want error", tc.op)
			}
		})
	}
}

func TestAddOperatorDuplicateName(t *testing.T) {
	topo := NewTopology()
	topo.MustAddOperator(Operator{Name: "a", Kind: KindSource, ServiceTime: 1})
	if _, err := topo.AddOperator(Operator{Name: "a", Kind: KindSink, ServiceTime: 1}); err == nil {
		t.Fatal("duplicate operator name accepted")
	}
}

func TestConnectErrors(t *testing.T) {
	topo := NewTopology()
	a := topo.MustAddOperator(Operator{Name: "a", Kind: KindSource, ServiceTime: 1})
	b := topo.MustAddOperator(Operator{Name: "b", Kind: KindSink, ServiceTime: 1})
	if err := topo.Connect(a, a, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := topo.Connect(a, b, 0); err == nil {
		t.Error("zero probability accepted")
	}
	if err := topo.Connect(a, b, 1.5); err == nil {
		t.Error("probability > 1 accepted")
	}
	if err := topo.Connect(a, OpID(99), 1); err == nil {
		t.Error("out-of-range target accepted")
	}
	topo.MustConnect(a, b, 1)
	if err := topo.Connect(a, b, 0.5); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestValidateOK(t *testing.T) {
	topo, _ := mustPipeline(t, 0.001, 0.002, 0.001)
	if err := topo.Validate(); err != nil {
		t.Fatalf("Validate() = %v, want nil", err)
	}
}

func TestValidateErrors(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		if err := NewTopology().Validate(); !errors.Is(err, ErrEmpty) {
			t.Fatalf("got %v, want ErrEmpty", err)
		}
	})
	t.Run("multiple sources", func(t *testing.T) {
		topo := NewTopology()
		a := topo.MustAddOperator(Operator{Name: "a", Kind: KindSource, ServiceTime: 1})
		b := topo.MustAddOperator(Operator{Name: "b", Kind: KindSource, ServiceTime: 1})
		c := topo.MustAddOperator(Operator{Name: "c", Kind: KindSink, ServiceTime: 1})
		topo.MustConnect(a, c, 1)
		topo.MustConnect(b, c, 1)
		if err := topo.Validate(); !errors.Is(err, ErrMultipleSources) {
			t.Fatalf("got %v, want ErrMultipleSources", err)
		}
	})
	t.Run("root not a source kind", func(t *testing.T) {
		topo := NewTopology()
		a := topo.MustAddOperator(Operator{Name: "a", Kind: KindStateless, ServiceTime: 1})
		b := topo.MustAddOperator(Operator{Name: "b", Kind: KindSink, ServiceTime: 1})
		topo.MustConnect(a, b, 1)
		if err := topo.Validate(); !errors.Is(err, ErrBadKind) {
			t.Fatalf("got %v, want ErrBadKind", err)
		}
	})
	t.Run("bad probability sum", func(t *testing.T) {
		topo := NewTopology()
		a := topo.MustAddOperator(Operator{Name: "a", Kind: KindSource, ServiceTime: 1})
		b := topo.MustAddOperator(Operator{Name: "b", Kind: KindSink, ServiceTime: 1})
		c := topo.MustAddOperator(Operator{Name: "c", Kind: KindSink, ServiceTime: 1})
		topo.MustConnect(a, b, 0.5)
		topo.MustConnect(a, c, 0.3)
		if err := topo.Validate(); !errors.Is(err, ErrBadProbability) {
			t.Fatalf("got %v, want ErrBadProbability", err)
		}
	})
	t.Run("cycle", func(t *testing.T) {
		topo := NewTopology()
		a := topo.MustAddOperator(Operator{Name: "a", Kind: KindSource, ServiceTime: 1})
		b := topo.MustAddOperator(Operator{Name: "b", Kind: KindStateless, ServiceTime: 1})
		c := topo.MustAddOperator(Operator{Name: "c", Kind: KindStateless, ServiceTime: 1})
		topo.MustConnect(a, b, 1)
		topo.MustConnect(b, c, 1)
		topo.MustConnect(c, b, 1)
		if err := topo.Validate(); !errors.Is(err, ErrCyclic) {
			t.Fatalf("got %v, want ErrCyclic", err)
		}
	})
}

func TestTopologicalOrder(t *testing.T) {
	topo, ids := PaperExampleTopology(PaperExampleTable1)
	order, err := topo.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != topo.Len() {
		t.Fatalf("order has %d vertices, want %d", len(order), topo.Len())
	}
	pos := make(map[OpID]int, len(order))
	for i, v := range order {
		pos[v] = i
	}
	for i := 0; i < topo.Len(); i++ {
		for _, e := range topo.Out(OpID(i)) {
			if pos[e.From] >= pos[e.To] {
				t.Errorf("edge %d->%d violates topological order", e.From, e.To)
			}
		}
	}
	_ = ids
}

func TestCloneIsDeep(t *testing.T) {
	topo := NewTopology()
	src := topo.MustAddOperator(Operator{Name: "src", Kind: KindSource, ServiceTime: 1})
	ps := topo.MustAddOperator(Operator{
		Name: "ps", Kind: KindPartitionedStateful, ServiceTime: 1,
		Keys: &KeyDistribution{Freq: []float64{0.5, 0.5}},
	})
	topo.MustConnect(src, ps, 1)

	c := topo.Clone()
	c.Op(ps).Keys.Freq[0] = 0.9
	c.Op(src).ServiceTime = 42
	if topo.Op(ps).Keys.Freq[0] != 0.5 {
		t.Error("clone shares key distribution with original")
	}
	if topo.Op(src).ServiceTime != 1 {
		t.Error("clone shares operator storage with original")
	}
	if err := c.Connect(src, ps, 0.5); err == nil {
		t.Error("clone allowed duplicate edge; adjacency not copied correctly")
	}
	if topo.NumEdges() != 1 || c.NumEdges() != 1 {
		t.Errorf("edges: original %d, clone %d, want 1 and 1", topo.NumEdges(), c.NumEdges())
	}
}

func TestLookupAndAccessors(t *testing.T) {
	topo, ids := mustPipeline(t, 1, 2, 3)
	id, ok := topo.Lookup("opB")
	if !ok || id != ids[1] {
		t.Fatalf("Lookup(opB) = %v, %v", id, ok)
	}
	if _, ok := topo.Lookup("nope"); ok {
		t.Fatal("Lookup(nope) succeeded")
	}
	if got := topo.Op(ids[1]).Rate(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("Rate() = %v, want 0.5", got)
	}
	if got := len(topo.Sinks()); got != 1 {
		t.Errorf("Sinks() len = %d, want 1", got)
	}
	if got := len(topo.Sources()); got != 1 {
		t.Errorf("Sources() len = %d, want 1", got)
	}
	if topo.String() == "" {
		t.Error("String() empty")
	}
}

func TestGainDefaults(t *testing.T) {
	op := Operator{}
	if op.Gain() != 1 {
		t.Errorf("zero-value Gain() = %v, want 1", op.Gain())
	}
	op = Operator{InputSelectivity: 4, OutputSelectivity: 2}
	if op.Gain() != 0.5 {
		t.Errorf("Gain() = %v, want 0.5", op.Gain())
	}
}

func TestAddFictitiousSource(t *testing.T) {
	topo := NewTopology()
	a := topo.MustAddOperator(Operator{Name: "a", Kind: KindSource, ServiceTime: 0.001}) // 1000/s
	b := topo.MustAddOperator(Operator{Name: "b", Kind: KindSource, ServiceTime: 0.004}) // 250/s
	c := topo.MustAddOperator(Operator{Name: "c", Kind: KindSink, ServiceTime: 0.0001})
	topo.MustConnect(a, c, 1)
	topo.MustConnect(b, c, 1)

	src, err := topo.AddFictitiousSource("root")
	if err != nil {
		t.Fatal(err)
	}
	if err := topo.Validate(); err != nil {
		t.Fatalf("Validate after transform: %v", err)
	}
	if got := topo.Op(src).Rate(); math.Abs(got-1250) > 1e-6 {
		t.Errorf("fictitious source rate = %v, want 1250", got)
	}
	a2, err := SteadyState(topo)
	if err != nil {
		t.Fatal(err)
	}
	// Per-root arrival rates must be preserved: a sees 1000/s, b 250/s.
	if math.Abs(a2.Lambda[a]-1000) > 1e-6 || math.Abs(a2.Lambda[b]-250) > 1e-6 {
		t.Errorf("root arrival rates = %v, %v, want 1000, 250", a2.Lambda[a], a2.Lambda[b])
	}
	// Transform on a single-source topology must fail.
	single, _ := mustPipeline(t, 1, 1)
	if _, err := single.AddFictitiousSource("x"); err == nil {
		t.Error("AddFictitiousSource on single-source topology succeeded")
	}
}
