package core

import "math"

// SheddingAnalysis is the steady state under load shedding, the
// alternative communication semantics Section 2 of the paper contrasts
// with backpressure: instead of stalling producers, a full buffer discards
// the excess items. Without backpressure the source is never throttled, so
// each operator simply forwards min(lambda, mu) and drops the rest.
type SheddingAnalysis struct {
	// Lambda is the offered arrival rate per operator (items/s).
	Lambda []float64
	// Delta is the departure rate per operator.
	Delta []float64
	// Dropped is the rate of discarded items per operator (items/s).
	Dropped []float64
	// SourceRate is the source's (unthrottled) departure rate.
	SourceRate float64
	// SinkRate is the total departure rate of the sinks: the surviving
	// throughput.
	SinkRate float64
	// LossFraction is the end-to-end fraction of the source's items (and
	// their derivatives) that never reach a sink: 1 - delivered/offered,
	// weighted by the unit-selectivity flow. For topologies with non-unit
	// gains it compares against the no-loss fluid flow.
	LossFraction float64
}

// SteadyStateShedding evaluates the topology under load-shedding
// semantics. The model is the same flow propagation as Algorithm 1 but
// without Theorem 3.2's source correction: saturated operators clip their
// input instead of pushing back.
func SteadyStateShedding(t *Topology) (*SheddingAnalysis, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	order, err := t.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	n := t.Len()
	a := &SheddingAnalysis{
		Lambda:  make([]float64, n),
		Delta:   make([]float64, n),
		Dropped: make([]float64, n),
	}
	// Loss-free reference flow, to compute the end-to-end loss fraction.
	ideal := make([]float64, n)

	src := order[0]
	srcOp := t.Op(src)
	a.Delta[src] = srcOp.Rate() * srcOp.Gain()
	a.Lambda[src] = srcOp.Rate()
	ideal[src] = a.Delta[src]
	a.SourceRate = a.Delta[src]

	idealSinks, realSinks := 0.0, 0.0
	if len(t.Out(src)) == 0 {
		idealSinks, realSinks = ideal[src], a.Delta[src]
	}
	for _, v := range order[1:] {
		lambda, lambdaIdeal := 0.0, 0.0
		for _, e := range t.in[v] {
			lambda += a.Delta[e.From] * e.Prob
			lambdaIdeal += ideal[e.From] * e.Prob
		}
		a.Lambda[v] = lambda
		op := t.Op(v)
		served := math.Min(lambda, op.Rate())
		a.Dropped[v] = lambda - served
		a.Delta[v] = served * op.Gain()
		ideal[v] = lambdaIdeal * op.Gain()
		if len(t.Out(v)) == 0 {
			idealSinks += ideal[v]
			realSinks += a.Delta[v]
		}
	}
	a.SinkRate = realSinks
	if idealSinks > 0 {
		a.LossFraction = 1 - realSinks/idealSinks
		if a.LossFraction < 0 {
			a.LossFraction = 0
		}
	}
	return a, nil
}
